package dsmtx_test

import (
	"fmt"

	"dsmtx"
)

// counterProg doubles every input element through a two-stage pipeline.
type counterProg struct {
	n       uint64
	in, out dsmtx.Addr
}

func (p *counterProg) Setup(ctx *dsmtx.SeqCtx) {
	p.in = ctx.AllocWords(int(p.n))
	p.out = ctx.AllocWords(int(p.n))
	for k := uint64(0); k < p.n; k++ {
		ctx.Store(p.in+dsmtx.Addr(k*8), k)
	}
}

func (p *counterProg) Stage(ctx *dsmtx.Ctx, stage int, iter uint64) bool {
	switch stage {
	case 0: // sequential: stream the inputs
		if iter >= p.n {
			return false
		}
		ctx.Produce(1, ctx.Load(p.in+dsmtx.Addr(iter*8)))
	case 1: // parallel: compute, commit the result
		ctx.Compute(10000)
		ctx.WriteCommit(p.out+dsmtx.Addr(iter*8), 2*ctx.Consume(0))
	}
	return true
}

func (p *counterProg) SeqIter(ctx *dsmtx.SeqCtx, iter uint64) {
	ctx.Compute(10000)
	ctx.Store(p.out+dsmtx.Addr(iter*8), 2*ctx.Load(p.in+dsmtx.Addr(iter*8)))
}

// ExampleNewSystem runs a small pipelined loop on a simulated 10-core
// cluster slice and reads the committed results back.
func ExampleNewSystem() {
	prog := &counterProg{n: 8}
	cfg := dsmtx.DefaultConfig(10, dsmtx.SpecDSWP("S", "DOALL"))
	sys, err := dsmtx.NewSystem(cfg, prog, nil)
	if err != nil {
		panic(err)
	}
	res, err := sys.Run()
	if err != nil {
		panic(err)
	}
	img := sys.CommitImage()
	fmt.Println("committed:", res.Committed, "misspeculations:", res.Misspecs)
	fmt.Println("out[7] =", img.Load(prog.out+7*8))
	// Output:
	// committed: 8 misspeculations: 0
	// out[7] = 14
}

// ExampleRunSequential measures the baseline the speedups are computed
// against.
func ExampleRunSequential() {
	prog := &counterProg{n: 8}
	cfg := dsmtx.DefaultConfig(4, dsmtx.SpecDSWP("S", "DOALL"))
	_, img, err := dsmtx.RunSequential(cfg, prog, prog.n, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("out[3] =", img.Load(prog.out+3*8))
	// Output:
	// out[3] = 6
}
