#!/usr/bin/env bash
# Tier-1 verification: formatting, vet, build, full test suite, and the
# race detector over the packages that run real goroutines. CI and
# pre-commit both run this (or `make verify`).
set -euo pipefail
cd "$(dirname "$0")"

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
# The sim kernel hosts processes on real goroutines; everything above it is
# cooperative, but the handoff protocol itself must stay race-clean.
go test -race ./internal/sim/
# The experiment scheduler fans whole simulations across host goroutines, so
# the scheduler, the harness that feeds it, the workloads' shared caches, and
# the CLI run under the race detector too (short mode keeps it a smoke test).
go test -race -short ./internal/expsched/ ./internal/harness/ ./internal/workloads/ ./cmd/dsmtxbench/
# Fault plans are compiled once and then read concurrently by every rank of
# every parallel point, so the injector must stay race-clean.
go test -race ./internal/faults/
# The job engine multiplexes concurrent submissions over shared admission
# state, a singleflight table, and warm pools; its storm test and the
# dsmtxd/dsmtxload serving-path tests run under the race detector.
go test -race ./internal/engine/ ./cmd/dsmtxd/ ./cmd/dsmtxload/
# The host backend runs the whole DSMTX protocol on live goroutines; the
# platform tests and the backend-equivalence tests (vtime and host must both
# reproduce the sequential checksum with equal committed counts) are the
# data-race audit of the runtime itself. The platform sweep includes the net
# package (mesh, reconnect replay, generation buffering) and the delivery
# conformance suite run against both host and net mailboxes.
go test -race ./internal/platform/... ./cmd/dsmtxrun/
# Backend equivalence covers vtime, host, and net: the Net tests re-exec
# the (race-instrumented) test binary as a two-daemon loopback fleet, so
# real multi-process TCP runs of crc32/blackscholes/164.gzip must reach the
# sequential checksum with committed/misspec counts equal to vtime.
go test -race ./internal/workloads/ -run TestBackendEquivalence
# The wire codec feeds the net transport; a short fuzz pass keeps the frame
# decoder total on junk (round-trip identity is seeded in the corpus).
go test -run=NONE -fuzz FuzzWireRoundTrip -fuzztime 10s ./internal/wire/
# The sharded commit pipeline adds AnySource control mailboxes and the
# cross-shard vote protocol to the live-goroutine surface; its dedicated
# tests run under the race detector too.
go test -race ./internal/core/ -run TestCrossShard
# The lock-free mailbox rings and the sharded page service behave differently
# under different scheduler pressure: GOMAXPROCS=2 forces heavy contention and
# parking (producers outnumber cores), GOMAXPROCS=8 maximises true parallelism.
# Pinning both in CI surfaces interleaving-dependent bugs here rather than on a
# loaded box. The backend-equivalence pattern includes the CommitShards
# sweep, and the core cross-shard tests ride along at both widths.
GOMAXPROCS=2 go test -race -count=1 ./internal/workloads/ ./internal/core/ -run 'TestBackendEquivalence|TestCrossShard'
GOMAXPROCS=8 go test -race -count=1 ./internal/workloads/ ./internal/core/ -run 'TestBackendEquivalence|TestCrossShard'
echo "verify: OK"
