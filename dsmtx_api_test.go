package dsmtx_test

import (
	"testing"

	"dsmtx"
)

// apiProg exercises the public facade end to end: a two-stage pipeline
// summing squares, with validated reads and committed output.
type apiProg struct {
	n       uint64
	in, out dsmtx.Addr
}

func (p *apiProg) Setup(ctx *dsmtx.SeqCtx) {
	p.in = ctx.AllocWords(int(p.n))
	p.out = ctx.AllocWords(int(p.n))
	for k := uint64(0); k < p.n; k++ {
		ctx.Store(p.in+dsmtx.Addr(k*8), k+2)
	}
}

func (p *apiProg) Stage(ctx *dsmtx.Ctx, stage int, iter uint64) bool {
	switch stage {
	case 0:
		if iter >= p.n {
			return false
		}
		ctx.Produce(1, ctx.Load(p.in+dsmtx.Addr(iter*8)))
	case 1:
		v := ctx.Consume(0)
		ctx.Compute(90000) // the parallel stage carries the work
		ctx.WriteCommit(p.out+dsmtx.Addr(iter*8), v*v)
	}
	return true
}

func (p *apiProg) SeqIter(ctx *dsmtx.SeqCtx, iter uint64) {
	v := ctx.Load(p.in + dsmtx.Addr(iter*8))
	ctx.Compute(90000)
	ctx.Store(p.out+dsmtx.Addr(iter*8), v*v)
}

func TestPublicAPIEndToEnd(t *testing.T) {
	prog := &apiProg{n: 60}
	plan := dsmtx.SpecDSWP("S", "DOALL")
	seqTime, seqImg, err := dsmtx.RunSequential(dsmtx.DefaultConfig(4, plan), prog, prog.n, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dsmtx.NewSystem(dsmtx.DefaultConfig(8, plan), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != prog.n {
		t.Fatalf("Committed = %d, want %d", res.Committed, prog.n)
	}
	if res.Elapsed >= seqTime {
		t.Fatalf("parallel (%v) not faster than sequential (%v)", res.Elapsed, seqTime)
	}
	img := sys.CommitImage()
	for k := uint64(0); k < prog.n; k++ {
		want := seqImg.Load(p0(prog) + dsmtx.Addr(k*8))
		if got := img.Load(p0(prog) + dsmtx.Addr(k*8)); got != want {
			t.Fatalf("out[%d] = %d, want %d", k, got, want)
		}
	}
}

func p0(p *apiProg) dsmtx.Addr { return p.out }

func TestPlanConstructors(t *testing.T) {
	if got := dsmtx.SpecDSWP("S", "DOALL", "S").Name; got != "Spec-DSWP+[S,DOALL,S]" {
		t.Fatalf("SpecDSWP name = %q", got)
	}
	if got := dsmtx.DSWP("Spec-DOALL", "S").Name; got != "DSWP+[Spec-DOALL,S]" {
		t.Fatalf("DSWP name = %q", got)
	}
	if p := dsmtx.SpecDOALL(); p.MinWorkers() != 1 {
		t.Fatalf("SpecDOALL MinWorkers = %d", p.MinWorkers())
	}
	tls := dsmtx.TLSPlan()
	if !tls.Sync || tls.Name != "TLS" {
		t.Fatalf("TLSPlan = %+v", tls)
	}
}

func TestDefaultConfigValidates(t *testing.T) {
	cfg := dsmtx.DefaultConfig(16, dsmtx.SpecDOALL())
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Workers() != 14 {
		t.Fatalf("Workers = %d, want 14", cfg.Workers())
	}
	bad := dsmtx.DefaultConfig(2, dsmtx.SpecDOALL()) // 0 workers
	if err := bad.Validate(); err == nil {
		t.Fatal("2-core config accepted")
	}
}

func TestNewImageUsable(t *testing.T) {
	img := dsmtx.NewImage()
	img.Store(dsmtx.Addr(4096), 7)
	if img.Load(dsmtx.Addr(4096)) != 7 {
		t.Fatal("image round trip failed")
	}
}
