package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"dsmtx/internal/cli/clitest"
)

func TestParseFlagsErrors(t *testing.T) {
	clitest.RejectAll(t, parseFlags, []clitest.RejectCase{
		{Args: []string{"stray"}, Want: "unexpected arguments"},
		{Args: []string{"-no-such-flag"}, Want: "flag provided but not defined"},
		{Args: []string{"serve", "stray"}, Want: "unexpected arguments"},
		{Args: []string{"serve", "-listen", ""}, Want: "serve needs -listen"},
		{Args: []string{"serve", "-backend", "net"}, Want: "unknown -backend"},
		{Args: []string{"serve", "-max-jobs", "-1"}, Want: ">= 0"},
		{Args: []string{"serve", "-queue-depth", "-1"}, Want: ">= 0"},
	})
}

func TestParseFlagsRoles(t *testing.T) {
	o, err := parseFlags([]string{"-listen", "10.0.0.1:7000"})
	if err != nil {
		t.Fatal(err)
	}
	if o.serve || o.listen != "10.0.0.1:7000" {
		t.Fatalf("daemon role: %+v", o)
	}
	o, err = parseFlags([]string{"serve"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.serve || o.listen != "127.0.0.1:7800" || o.backend != "host" || o.queueDepth != 64 {
		t.Fatalf("serve defaults: %+v", o)
	}
}

// TestServeLifecycle boots `dsmtxd serve` on an ephemeral port, submits a
// synchronous job and a detached one over HTTP, reads /stats, then closes
// the stop channel and requires a clean drain.
func TestServeLifecycle(t *testing.T) {
	o, err := parseFlags([]string{"serve", "-listen", "127.0.0.1:0", "-backend", "vtime", "-cache-off"})
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	o.onReady = func(addr string) { ready <- addr }
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run(o, stop) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// Synchronous job with verification.
	resp, err := http.Post(base+"/jobs?wait=1", "application/json",
		strings.NewReader(`{"bench":"crc32","cores":8,"verify":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Verified bool   `json:"verified"`
		Source   string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !res.Verified || res.Source != "run" {
		t.Fatalf("sync job: status %d, %+v", resp.StatusCode, res)
	}

	// Detached job: 202 with an id, then poll /jobs/{id} until done.
	resp, err = http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"bench":"crc32","cores":8}`))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || acc.ID == 0 {
		t.Fatalf("detached job: status %d, id %d", resp.StatusCode, acc.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, acc.ID))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" {
			t.Fatalf("detached job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("detached job stuck in state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Stats reflect the work.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Engine struct {
			Completed uint64 `json:"completed"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Engine.Completed < 2 {
		t.Fatalf("completed = %d, want >= 2", stats.Engine.Completed)
	}

	// Graceful drain.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
	// The listener is gone: new submissions fail at the TCP layer.
	if _, err := http.Post(base+"/jobs?wait=1", "application/json",
		strings.NewReader(`{"bench":"crc32"}`)); err == nil {
		t.Fatal("submission accepted after drain")
	}
}

// TestServeRejectsBadSpec: spec errors are 400s with a useful message.
func TestServeRejectsBadSpec(t *testing.T) {
	o, err := parseFlags([]string{"serve", "-listen", "127.0.0.1:0", "-cache-off"})
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	o.onReady = func(addr string) { ready <- addr }
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run(o, stop) }()
	addr := <-ready
	defer func() { close(stop); <-done }()

	for body, want := range map[string]string{
		`{"bench":"nope","cores":8}`:     "unknown benchmark",
		`{"bench":"crc32","cores":-2}`:   "cores",
		`{"bench":"crc32","bogus":true}`: "bad job spec",
	} {
		resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), want) {
			t.Errorf("%s: status %d, body %s (want 400 with %q)", body, resp.StatusCode, buf.String(), want)
		}
	}
}
