// Command dsmtxd is the net-backend daemon: one process hosting a
// contiguous range of DSMTX ranks. A coordinator (dsmtxrun -backend net
// -net-join) distributes the job spec over the control connection; daemons
// dial each other directly for rank-to-rank traffic and run the unmodified
// core runtime over TCP.
//
// Usage:
//
//	dsmtxd -listen 10.0.0.1:7000      # on each cluster node
//	dsmtxrun -bench 164.gzip -cores 32 -backend net \
//	    -net-join 10.0.0.1:7000,10.0.0.2:7000
//
// Each invocation of dsmtxd serves exactly one job and exits; daemon order
// in -net-join is rank order, and the last address hosts the commit unit.
// With no -listen flag the daemon binds a loopback ephemeral port and
// advertises it on stdout (the spawn-local mode dsmtxrun uses internally).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"dsmtx/internal/netrun"
	_ "dsmtx/internal/workloads" // registers the benchmark provider
)

func main() {
	if os.Getenv(netrun.DaemonEnv) == "1" {
		os.Exit(netrun.DaemonMain())
	}
	log.SetFlags(0)
	log.SetPrefix("dsmtxd: ")
	addr := flag.String("listen", "", "address to serve ranks on (default loopback ephemeral, advertised on stdout)")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *addr == "" {
		os.Exit(netrun.DaemonMain())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dsmtxd: serving one job on %s\n", ln.Addr())
	os.Exit(netrun.Serve(ln))
}
