// Command dsmtxd serves DSMTX jobs, in two roles.
//
// As the net-backend rank daemon it hosts a contiguous range of DSMTX
// ranks: a coordinator (dsmtxrun -backend net -net-join) distributes the
// job spec over the control connection; daemons dial each other directly
// for rank-to-rank traffic and run the unmodified core runtime over TCP.
// Daemons are persistent — they accept successive jobs from successive
// coordinators until stopped:
//
//	dsmtxd -listen 10.0.0.1:7000      # on each cluster node
//	dsmtxrun -bench 164.gzip -cores 32 -backend net \
//	    -net-join 10.0.0.1:7000,10.0.0.2:7000
//
// Daemon order in -net-join is rank order, and the last address hosts the
// commit unit. With no flags at all the daemon binds a loopback ephemeral
// port, advertises it on stdout, and serves one coordinator session (the
// spawn-local mode dsmtxrun uses internally).
//
// As a job server (`dsmtxd serve`) it exposes the job engine over
// JSON/HTTP: bounded admission, warm worker pools, and a
// content-addressed result cache behind three endpoints (POST /jobs,
// GET /jobs/{id}, GET /stats — see internal/engine.Server):
//
//	dsmtxd serve -listen 127.0.0.1:7800
//	curl -s -XPOST 'localhost:7800/jobs?wait=1' \
//	    -d '{"bench":"crc32","cores":8,"verify":true}'
//
// Both roles drain gracefully on SIGINT/SIGTERM: listeners close, new
// submissions are rejected with a clear error, in-flight jobs finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"

	"dsmtx/internal/cli"
	"dsmtx/internal/engine"
	"dsmtx/internal/expsched"
	"dsmtx/internal/harness"
	"dsmtx/internal/netrun"
	"dsmtx/internal/trace"
	_ "dsmtx/internal/workloads" // registers the benchmark provider
)

// options are the parsed, validated command-line settings for both roles.
type options struct {
	serve  bool   // `dsmtxd serve`: the HTTP job server
	listen string // both roles; empty in daemon role = spawn-local mode

	// serve-role engine sizing.
	backend     string
	maxJobs     int
	queueDepth  int
	coreBudget  int
	pool        int
	cacheDir    string
	cacheOff    bool
	metricsAddr string

	// onReady, when set (tests), receives the bound listen address.
	onReady func(addr string)
}

// defaultCacheDir places the serve-role result cache under the user cache
// directory; empty (caching disabled) when that cannot be determined.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "dsmtxd")
}

// parseFlags parses and validates args (without the program name). The
// first argument may be the "serve" subcommand; everything else is the
// net-backend daemon role.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	if len(args) > 0 && args[0] == "serve" {
		o.serve = true
		fs := flag.NewFlagSet("dsmtxd serve", flag.ContinueOnError)
		fs.StringVar(&o.listen, "listen", "127.0.0.1:7800", "address to serve the JSON job API on")
		fs.StringVar(&o.backend, "backend", "host", "backend for jobs that do not name one: host (live goroutines) or vtime (deterministic simulator)")
		fs.IntVar(&o.maxJobs, "max-jobs", runtime.GOMAXPROCS(0), "jobs running concurrently (0 = unlimited)")
		fs.IntVar(&o.queueDepth, "queue-depth", 64, "jobs waiting for a slot before submissions are rejected with 503")
		fs.IntVar(&o.coreBudget, "core-budget", 0, "bound on the summed cores of running jobs (0 = unlimited)")
		fs.IntVar(&o.pool, "pool", 2, "idle warm worker sets kept per job shape")
		fs.StringVar(&o.cacheDir, "cache", defaultCacheDir(), "directory for the content-addressed result cache (\"\" disables)")
		fs.BoolVar(&o.cacheOff, "cache-off", false, "disable the result cache")
		fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve a live JSON metrics snapshot at http://ADDR/metrics (e.g. 127.0.0.1:9090)")
		if err := fs.Parse(args[1:]); err != nil {
			return nil, err
		}
		if len(fs.Args()) > 0 {
			return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
		}
		if o.listen == "" {
			return nil, fmt.Errorf("serve needs -listen")
		}
		switch o.backend {
		case "host", "vtime":
		default:
			return nil, fmt.Errorf("unknown -backend %q (have host, vtime; net jobs name their own fleet)", o.backend)
		}
		if o.maxJobs < 0 || o.queueDepth < 0 || o.coreBudget < 0 || o.pool < 0 {
			return nil, fmt.Errorf("-max-jobs, -queue-depth, -core-budget and -pool must be >= 0")
		}
		return o, nil
	}
	fs := flag.NewFlagSet("dsmtxd", flag.ContinueOnError)
	fs.StringVar(&o.listen, "listen", "", "address to serve ranks on (default loopback ephemeral, advertised on stdout)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return o, nil
}

func main() {
	if os.Getenv(netrun.DaemonEnv) == "1" {
		os.Exit(netrun.DaemonMain())
	}
	cli.Main("dsmtxd", parseFlags, func(o *options) error {
		stop := make(chan struct{})
		go func() {
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			<-sig
			close(stop)
		}()
		return run(o, stop)
	})
}

// run executes the selected role, draining gracefully when stop closes.
func run(o *options, stop <-chan struct{}) error {
	if o.serve {
		return runServe(o, stop)
	}
	if o.listen == "" {
		// Spawn-local: one coordinator session, lifetime bound to it.
		if code := netrun.DaemonMain(); code != 0 {
			return fmt.Errorf("daemon exited with code %d", code)
		}
		return nil
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("dsmtxd: serving jobs on %s\n", ln.Addr())
	if o.onReady != nil {
		o.onReady(ln.Addr().String())
	}
	if code := netrun.ServeLoop(ln, stop); code != 0 {
		return fmt.Errorf("daemon exited with code %d", code)
	}
	fmt.Println("dsmtxd: drained")
	return nil
}

// runServe runs the HTTP job server until stop closes, then drains:
// the listener closes, queued and running jobs finish, late submissions
// get the engine's typed draining rejection.
func runServe(o *options, stop <-chan struct{}) error {
	cfg := engine.Config{
		MaxConcurrent: o.maxJobs,
		QueueDepth:    o.queueDepth,
		CoreBudget:    o.coreBudget,
		PoolPerKey:    o.pool,
	}
	if !o.cacheOff && o.cacheDir != "" {
		fp, err := harness.ResultFingerprint()
		if err == nil {
			cfg.Cache, err = expsched.OpenCache(o.cacheDir, fp)
		}
		if err != nil {
			// A broken cache must never keep the server from running.
			fmt.Fprintf(os.Stderr, "dsmtxd: result cache disabled: %v\n", err)
			cfg.Cache = nil
		}
	}
	var stopMetrics func()
	if o.metricsAddr != "" {
		tr := trace.NewMetricsOnly()
		cfg.Metrics = tr.Metrics()
		var err error
		stopMetrics, err = cli.ServeMetrics(o.metricsAddr, tr)
		if err != nil {
			return err
		}
		defer stopMetrics()
		fmt.Printf("dsmtxd: metrics at http://%s/metrics\n", o.metricsAddr)
	}
	eng := engine.New(cfg)
	srv := engine.NewServer(eng)
	srv.DefaultBackend = o.backend

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("dsmtxd: serving jobs on http://%s\n", ln.Addr())
	if o.onReady != nil {
		o.onReady(ln.Addr().String())
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-stop:
	}
	fmt.Println("dsmtxd: draining (in-flight jobs finish, new submissions are rejected)")
	// Shutdown closes the listener and waits for in-flight handlers, whose
	// Submits the engine finishes; detached jobs drain via the server.
	shutdownDone := make(chan struct{})
	go func() {
		_ = hs.Shutdown(context.Background())
		close(shutdownDone)
	}()
	eng.Drain()
	srv.Drain()
	<-shutdownDone
	eng.Close()
	fmt.Println("dsmtxd: drained")
	return nil
}
