// Command dsmtxrun executes one benchmark configuration and reports its
// statistics: speedup over the sequential baseline, traffic, commit and
// recovery behaviour, and output verification.
//
// Usage:
//
//	dsmtxrun -bench 456.hmmer -cores 64
//	dsmtxrun -bench 130.li -cores 32 -paradigm tls
//	dsmtxrun -bench crc32 -cores 96 -misspec 0.001
//	dsmtxrun -bench 164.gzip -cores 32 -trace out.json -metrics
//	dsmtxrun -bench 164.gzip -cores 32 -faults drop=0.001,crash=r1@2ms+500us
//	dsmtxrun -bench crc32 -cores 32 -faults drop=0.01 -fault-seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"dsmtx/internal/core"
	"dsmtx/internal/faults"
	"dsmtx/internal/harness"
	"dsmtx/internal/stats"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

// writeMTXTrace dumps MTX lifecycle events as JSON lines for external
// tooling (the Fig. 3c timeline mechanism).
func writeMTXTrace(path string, events []core.TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range events {
		rec := map[string]any{
			"kind": e.Kind.String(), "mtx": e.MTX,
			"start_ns": int64(e.Start), "end_ns": int64(e.End),
		}
		if e.Kind == core.TraceSubTX {
			rec["stage"] = e.Stage
			rec["worker"] = e.Tid
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// writeChromeTrace exports the virtual-time timeline as Chrome trace-event
// JSON (load in Perfetto / chrome://tracing: ranks appear as threads, virtual
// nanoseconds as timestamps).
func writeChromeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsmtxrun: ")
	var (
		bench    = flag.String("bench", "", "benchmark name (see dsmtxbench -table 2); empty lists them")
		cores    = flag.Int("cores", 32, "total cores (workers + try-commit + commit)")
		paradigm = flag.String("paradigm", "dsmtx", "dsmtx or tls")
		misspec  = flag.Float64("misspec", 0, "input misspeculation rate (e.g. 0.001)")
		scale    = flag.Int("scale", 1, "problem-size multiplier")
		seed     = flag.Uint64("seed", 42, "input generation seed")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) to this file")
		metrics  = flag.Bool("metrics", false, "print the metrics registry and per-rank stall attribution")
		mtxTrace = flag.String("mtxtrace", "", "write the MTX lifecycle trace to this JSON-lines file")
		faultArg = flag.String("faults", "", "deterministic fault plan, e.g. drop=0.001,crash=r1@2ms+500us (see internal/faults)")
		faultSd  = flag.Uint64("fault-seed", 0, "override the fault plan's seed (with -faults)")
	)
	flag.Parse()

	if *bench == "" {
		fmt.Println(harness.RenderTable2())
		return
	}
	b, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	in := workloads.Input{Scale: *scale, Seed: *seed, MisspecRate: *misspec}

	p := workloads.DSMTX
	if *paradigm == "tls" {
		p = workloads.TLS
	}

	seqTime, seqCheck, err := workloads.RunSequentialRef(b, in)
	if err != nil {
		log.Fatal(err)
	}
	// The tracer is shared across invocations; BindKernel stitches each
	// invocation's virtual clock onto one monotonic timeline.
	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New()
	} else if *metrics {
		tr = trace.NewMetricsOnly()
	}
	var plan *faults.Plan
	if *faultArg != "" {
		p, err := faults.Parse(*faultArg)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		if *faultSd != 0 {
			p.Seed = *faultSd
		}
		plan = &p
	} else if *faultSd != 0 {
		log.Fatal("-fault-seed needs -faults")
	}
	var tune func(*core.Config)
	if tr != nil || *mtxTrace != "" || plan != nil {
		mtx := *mtxTrace != ""
		tune = func(cfg *core.Config) {
			cfg.Trace = mtx
			cfg.Tracer = tr
			cfg.Faults = plan
		}
	}
	res, err := workloads.RunParallel(b, in, p, *cores, tune)
	if err != nil {
		log.Fatal(err)
	}
	if *mtxTrace != "" {
		if err := writeMTXTrace(*mtxTrace, res.Trace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mtxtrace: %d events -> %s\n", len(res.Trace), *mtxTrace)
	}
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", len(tr.Events()), *traceOut)
	}

	fmt.Printf("%s (%s), %d cores, paradigm %s\n", b.Name, b.Paradigm, *cores, p)
	fmt.Printf("  sequential      %v\n", seqTime)
	fmt.Printf("  parallel        %v\n", res.Elapsed)
	fmt.Printf("  speedup         %s\n", stats.FormatSpeedup(seqTime.Seconds()/res.Elapsed.Seconds()))
	fmt.Printf("  MTXs committed  %d (misspeculations: %d)\n", res.Committed, res.Misspecs)
	fmt.Printf("  wire traffic    %.2f MB (%.1f MB/s)\n", float64(res.Bytes)/1e6, res.Bandwidth()/1e6)
	if tr != nil {
		t := res.Traffic
		fmt.Printf("  traffic classes queue %.2f MB (%d msgs), COA pages %.2f MB (%d msgs), control %.2f MB (%d msgs)\n",
			float64(t.QueueBytes)/1e6, t.QueueMessages,
			float64(t.PageBytes)/1e6, t.PageMessages,
			float64(t.ControlBytes)/1e6, t.ControlMessages)
	}
	if res.Misspecs > 0 {
		fmt.Printf("  recovery        ERM %v  FLQ %v  SEQ %v  RFP %v\n", res.ERM, res.FLQ, res.SEQ, res.RFP)
	}
	if plan != nil {
		t := res.Traffic
		fmt.Printf("  fault plan      %s\n", plan.Format())
		fmt.Printf("  resilience      dropped %d msgs, retransmitted %d (%.2f MB), acks %d (%.2f MB)\n",
			t.DroppedMessages, t.RetransMessages, float64(t.RetransBytes)/1e6,
			t.AckMessages, float64(t.AckBytes)/1e6)
		if res.Crashes > 0 {
			fmt.Printf("  crash recovery  %d crash(es) survived, re-dispatch %v\n", res.Crashes, res.Redispatch)
		}
	}
	if res.Checksum == seqCheck {
		fmt.Printf("  output          VERIFIED (checksum %#x matches sequential)\n", res.Checksum)
	} else {
		fmt.Printf("  output          MISMATCH: parallel %#x, sequential %#x\n", res.Checksum, seqCheck)
	}
	if *metrics {
		fmt.Printf("\nStall attribution (per rank):\n%s\n", res.Stalls.Table())
		fmt.Printf("\nStall attribution (per stage):\n%s\n", res.Stalls.StageTable())
		fmt.Printf("\nMetrics:\n%s\n", tr.Metrics().Table())
	}
}
