// Command dsmtxrun executes one benchmark configuration and reports its
// statistics: speedup over the sequential baseline, traffic, commit and
// recovery behaviour, and output verification.
//
// Usage:
//
//	dsmtxrun -bench 456.hmmer -cores 64
//	dsmtxrun -bench 130.li -cores 32 -paradigm tls
//	dsmtxrun -bench crc32 -cores 96 -misspec 0.001
//	dsmtxrun -bench 164.gzip -cores 32 -trace out.json -metrics
//	dsmtxrun -bench 164.gzip -cores 32 -faults drop=0.001,crash=r1@2ms+500us
//	dsmtxrun -bench crc32 -cores 32 -faults drop=0.01 -fault-seed 7
//	dsmtxrun -bench crc32 -cores 8 -backend host
//	dsmtxrun -bench crc32 -cores 16 -commit-shards 4 -backend host
//	dsmtxrun -bench crc32 -cores 8 -backend host -trace host.json -metrics
//	dsmtxrun -bench 164.gzip -cores 32 -backend host -metrics-addr 127.0.0.1:9090
//
// The -backend flag selects the execution platform: "vtime" (the default)
// runs on the deterministic virtual-time simulator with the paper's cost
// model; "host" runs the same protocol live on host goroutines, measuring
// wall-clock time. The host backend verifies the identical checksum but
// models no instruction or wire costs, so no speedup is reported. Tracing
// and metrics work on both backends (host spans carry wall-clock
// timestamps and add delivery-layer instrumentation); only -faults is
// vtime-only. -commit-shards partitions the commit pipeline across N
// consistent-hashed commit units (cross-shard MTXs commit through an
// ordered two-phase vote); the default 1 is the paper's single commit
// unit. -metrics-addr serves the live metrics registry as JSON at
// /metrics while the run executes.
//
// Results go to stdout; errors go to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dsmtx/internal/cli"
	"dsmtx/internal/core"
	"dsmtx/internal/engine"
	"dsmtx/internal/faults"
	"dsmtx/internal/harness"
	"dsmtx/internal/netrun"
	"dsmtx/internal/platform"
	"dsmtx/internal/stats"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

// options are the parsed, validated command-line settings.
type options struct {
	bench       string
	cores       int
	shards      int
	paradigm    workloads.Paradigm
	backend     core.Backend
	misspec     float64
	scale       int
	seed        uint64
	traceOut    string
	metrics     bool
	metricsAddr string
	mtxTrace    string
	plan        *faults.Plan
	netDaemons  int
	netJoin     string
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("dsmtxrun", flag.ContinueOnError)
	fs.StringVar(&o.bench, "bench", "", "benchmark name (see dsmtxbench -table 2); empty lists them")
	fs.IntVar(&o.cores, "cores", 32, "total cores (workers + try-commit + commit)")
	fs.IntVar(&o.shards, "commit-shards", 1, "commit units partitioning the page space (1 = the paper's single commit unit)")
	paradigm := fs.String("paradigm", "dsmtx", "dsmtx or tls")
	backend := fs.String("backend", "vtime", "execution platform: vtime (deterministic simulator) or host (live goroutines, wall clock)")
	fs.Float64Var(&o.misspec, "misspec", 0, "input misspeculation rate (e.g. 0.001)")
	fs.IntVar(&o.scale, "scale", 1, "problem-size multiplier")
	fs.Uint64Var(&o.seed, "seed", 42, "input generation seed")
	fs.StringVar(&o.traceOut, "trace", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) to this file")
	fs.BoolVar(&o.metrics, "metrics", false, "print the metrics registry and per-rank stall attribution")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve a live JSON metrics snapshot at http://ADDR/metrics during the run (e.g. 127.0.0.1:9090)")
	fs.StringVar(&o.mtxTrace, "mtxtrace", "", "write the MTX lifecycle trace to this JSON-lines file")
	faultArg := fs.String("faults", "", "deterministic fault plan, e.g. drop=0.001,crash=r1@2ms+500us (see internal/faults)")
	faultSd := fs.Uint64("fault-seed", 0, "override the fault plan's seed (with -faults)")
	fs.IntVar(&o.netDaemons, "net-daemons", 2, "with -backend net: spawn this many loopback daemon processes")
	fs.StringVar(&o.netJoin, "net-join", "", "with -backend net: comma-separated dsmtxd addresses to join instead of spawning (last hosts the commit unit)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	switch *paradigm {
	case "dsmtx":
		o.paradigm = workloads.DSMTX
	case "tls":
		o.paradigm = workloads.TLS
	default:
		return nil, fmt.Errorf("unknown -paradigm %q (have dsmtx, tls)", *paradigm)
	}
	b, err := core.ParseBackend(*backend)
	if err != nil {
		return nil, err
	}
	o.backend = b

	if *faultArg != "" {
		p, err := faults.Parse(*faultArg)
		if err != nil {
			return nil, fmt.Errorf("-faults: %v", err)
		}
		if *faultSd != 0 {
			p.Seed = *faultSd
		}
		o.plan = &p
	} else if *faultSd != 0 {
		return nil, fmt.Errorf("-fault-seed needs -faults")
	}

	if o.backend == core.BackendHost && o.plan != nil {
		// Fault injection is built on the virtual-time kernel; tracing and
		// metrics are backend-agnostic.
		return nil, fmt.Errorf("-faults requires -backend vtime")
	}
	if o.backend == core.BackendNet {
		// The coordinator only orchestrates; observability instruments live
		// in the daemon processes (each reuses the host delivery layer), so
		// the coordinator-side flags have nothing to attach to.
		switch {
		case o.plan != nil:
			return nil, fmt.Errorf("-faults requires -backend vtime")
		case o.traceOut != "" || o.mtxTrace != "" || o.metrics || o.metricsAddr != "":
			return nil, fmt.Errorf("-trace/-mtxtrace/-metrics/-metrics-addr run in-process; on -backend net they belong to the daemons, not the coordinator")
		case o.shards != 1:
			return nil, fmt.Errorf("-commit-shards requires -backend vtime or host (shards share an in-process image arena)")
		case o.paradigm != workloads.DSMTX:
			return nil, fmt.Errorf("-backend net runs the dsmtx paradigm only")
		case o.netJoin == "" && o.netDaemons < 1:
			return nil, fmt.Errorf("-net-daemons must be at least 1")
		}
	} else if o.netJoin != "" {
		return nil, fmt.Errorf("-net-join requires -backend net")
	}
	return o, nil
}

// writeMTXTrace dumps MTX lifecycle events as JSON lines for external
// tooling (the Fig. 3c timeline mechanism).
func writeMTXTrace(path string, events []core.TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range events {
		rec := map[string]any{
			"kind": e.Kind.String(), "mtx": e.MTX,
			"start_ns": int64(e.Start), "end_ns": int64(e.End),
		}
		if e.Kind == core.TraceSubTX {
			rec["stage"] = e.Stage
			rec["worker"] = e.Tid
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// writeChromeTrace exports the virtual-time timeline as Chrome trace-event
// JSON (load in Perfetto / chrome://tracing: ranks appear as threads, virtual
// nanoseconds as timestamps).
func writeChromeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	if os.Getenv(netrun.DaemonEnv) == "1" {
		// Re-exec'd by a -backend net coordinator (possibly ourselves):
		// become a daemon before any flag parsing.
		os.Exit(netrun.DaemonMain())
	}
	cli.Main("dsmtxrun", parseFlags, func(o *options) error { return run(o, os.Stdout) })
}

// runNet executes the benchmark as a real distributed job: ranks live in
// dsmtxd daemon processes (spawned on loopback, or joined via -net-join)
// and talk over TCP; the engine launches or joins the fleet, the netrun
// coordinator under it distributes the spec and drives the invocation
// barrier, and the collected checksum is verified against the sequential
// reference.
func runNet(eng *engine.Engine, o *options, bench string, seqTime platform.Duration, seqCheck uint64, stdout io.Writer) error {
	var join []string
	if o.netJoin != "" {
		join = strings.Split(o.netJoin, ",")
	}
	res, err := eng.SubmitOpts(context.Background(), engine.JobSpec{
		Bench:   bench,
		Backend: core.BackendNet.String(),
		Cores:   o.cores,
		Scale:   o.scale,
		Seed:    o.seed,
		Rate:    o.misspec,
	}, engine.Options{NetDaemons: o.netDaemons, NetJoin: join})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s, %d cores, paradigm %s, backend net (%d daemons)\n", bench, o.cores, o.paradigm, res.Daemons)
	fmt.Fprintf(stdout, "  sequential      %v (vtime reference)\n", seqTime)
	fmt.Fprintf(stdout, "  parallel        %v wall clock\n", res.Elapsed)
	fmt.Fprintf(stdout, "  MTXs committed  %d (misspeculations: %d)\n", res.Committed, res.Misspecs)
	fmt.Fprintf(stdout, "  wire traffic    %.2f MB (%d msgs, modelled)\n", float64(res.Traffic.Bytes)/1e6, res.Traffic.Messages)
	if res.Checksum == seqCheck {
		fmt.Fprintf(stdout, "  output          VERIFIED (checksum %#x matches sequential)\n", res.Checksum)
	} else {
		fmt.Fprintf(stdout, "  output          MISMATCH: parallel %#x, sequential %#x\n", res.Checksum, seqCheck)
	}
	return nil
}

// shardSuffix renders the commit-shard count in the report header when the
// pipeline is sharded; the default single unit stays silent so existing
// output is unchanged.
func shardSuffix(n int) string {
	if n <= 1 {
		return ""
	}
	return fmt.Sprintf(", commit shards %d", n)
}

// run executes the configured benchmark and writes the report to stdout.
func run(o *options, stdout io.Writer) error {
	if o.bench == "" {
		fmt.Fprintln(stdout, harness.RenderTable2())
		return nil
	}
	b, err := workloads.ByName(o.bench)
	if err != nil {
		return err
	}

	// Every execution routes through the job engine: the report below is
	// one Submit for the sequential reference and one for the parallel run
	// (unbounded admission — a CLI invocation is its own client).
	eng := engine.New(engine.Config{})
	defer eng.Close()

	// The sequential reference always runs in virtual time: it is the cost
	// model's baseline and, for the host backend, the checksum oracle.
	seqRes, err := eng.Submit(context.Background(), engine.JobSpec{
		Kind: engine.KindSeq, Bench: b.Name, Scale: o.scale, Seed: o.seed, Rate: o.misspec,
	})
	if err != nil {
		return err
	}
	seqTime, seqCheck := seqRes.SeqTime, seqRes.SeqCheck
	if o.backend == core.BackendNet {
		return runNet(eng, o, b.Name, seqTime, seqCheck, stdout)
	}
	// The tracer is shared across invocations; binding stitches each
	// invocation's clock (virtual or wall) onto one monotonic timeline.
	var tr *trace.Tracer
	if o.traceOut != "" {
		tr = trace.New()
	} else if o.metrics || o.metricsAddr != "" {
		tr = trace.NewMetricsOnly()
	}
	if o.metricsAddr != "" {
		stop, err := cli.ServeMetrics(o.metricsAddr, tr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(stdout, "metrics: serving http://%s/metrics\n", o.metricsAddr)
	}
	res, err := eng.SubmitOpts(context.Background(), engine.JobSpec{
		Bench:        b.Name,
		Paradigm:     o.paradigm.String(),
		Backend:      o.backend.String(),
		Cores:        o.cores,
		Scale:        o.scale,
		Seed:         o.seed,
		Rate:         o.misspec,
		Faults:       o.plan.Format(),
		CommitShards: o.shards,
	}, engine.Options{Tracer: tr, MTXTrace: o.mtxTrace != ""})
	if err != nil {
		return err
	}
	if o.mtxTrace != "" {
		if err := writeMTXTrace(o.mtxTrace, res.Trace); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "mtxtrace: %d events -> %s\n", len(res.Trace), o.mtxTrace)
	}
	if o.traceOut != "" {
		if err := writeChromeTrace(o.traceOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace: %d events -> %s\n", len(tr.Events()), o.traceOut)
	}

	if o.backend == core.BackendHost {
		fmt.Fprintf(stdout, "%s (%s), %d cores, paradigm %s, backend host%s\n", b.Name, b.Paradigm, o.cores, o.paradigm, shardSuffix(o.shards))
		fmt.Fprintf(stdout, "  sequential      %v (vtime reference)\n", seqTime)
		fmt.Fprintf(stdout, "  parallel        %v wall clock\n", res.Elapsed)
	} else {
		fmt.Fprintf(stdout, "%s (%s), %d cores, paradigm %s%s\n", b.Name, b.Paradigm, o.cores, o.paradigm, shardSuffix(o.shards))
		fmt.Fprintf(stdout, "  sequential      %v\n", seqTime)
		fmt.Fprintf(stdout, "  parallel        %v\n", res.Elapsed)
		fmt.Fprintf(stdout, "  speedup         %s\n", stats.FormatSpeedup(seqTime.Seconds()/res.Elapsed.Seconds()))
	}
	fmt.Fprintf(stdout, "  MTXs committed  %d (misspeculations: %d)\n", res.Committed, res.Misspecs)
	fmt.Fprintf(stdout, "  wire traffic    %.2f MB (%.1f MB/s)\n", float64(res.Bytes)/1e6, res.Bandwidth()/1e6)
	if tr != nil {
		t := res.Traffic
		fmt.Fprintf(stdout, "  traffic classes queue %.2f MB (%d msgs), COA pages %.2f MB (%d msgs), control %.2f MB (%d msgs)\n",
			float64(t.QueueBytes)/1e6, t.QueueMessages,
			float64(t.PageBytes)/1e6, t.PageMessages,
			float64(t.ControlBytes)/1e6, t.ControlMessages)
	}
	if res.Misspecs > 0 {
		fmt.Fprintf(stdout, "  recovery        ERM %v  FLQ %v  SEQ %v  RFP %v\n", res.ERM, res.FLQ, res.SEQ, res.RFP)
	}
	if o.plan != nil {
		t := res.Traffic
		fmt.Fprintf(stdout, "  fault plan      %s\n", o.plan.Format())
		fmt.Fprintf(stdout, "  resilience      dropped %d msgs, retransmitted %d (%.2f MB), acks %d (%.2f MB)\n",
			t.DroppedMessages, t.RetransMessages, float64(t.RetransBytes)/1e6,
			t.AckMessages, float64(t.AckBytes)/1e6)
		if res.Crashes > 0 {
			fmt.Fprintf(stdout, "  crash recovery  %d crash(es) survived, re-dispatch %v\n", res.Crashes, res.Redispatch)
		}
	}
	if res.Checksum == seqCheck {
		fmt.Fprintf(stdout, "  output          VERIFIED (checksum %#x matches sequential)\n", res.Checksum)
	} else {
		fmt.Fprintf(stdout, "  output          MISMATCH: parallel %#x, sequential %#x\n", res.Checksum, seqCheck)
	}
	if o.metrics {
		fmt.Fprintf(stdout, "\nStall attribution (per rank):\n%s\n", res.Stalls.Table())
		fmt.Fprintf(stdout, "\nStall attribution (per stage):\n%s\n", res.Stalls.StageTable())
		fmt.Fprintf(stdout, "\nMetrics:\n%s\n", tr.Metrics().Table())
	}
	return nil
}
