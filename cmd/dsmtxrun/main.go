// Command dsmtxrun executes one benchmark configuration and reports its
// statistics: speedup over the sequential baseline, traffic, commit and
// recovery behaviour, and output verification.
//
// Usage:
//
//	dsmtxrun -bench 456.hmmer -cores 64
//	dsmtxrun -bench 130.li -cores 32 -paradigm tls
//	dsmtxrun -bench crc32 -cores 96 -misspec 0.001
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"dsmtx/internal/core"
	"dsmtx/internal/harness"
	"dsmtx/internal/stats"
	"dsmtx/internal/workloads"
)

// writeTrace dumps events as JSON lines for external tooling.
func writeTrace(path string, events []core.TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range events {
		rec := map[string]any{
			"kind": e.Kind.String(), "mtx": e.MTX,
			"start_ns": int64(e.Start), "end_ns": int64(e.End),
		}
		if e.Kind == core.TraceSubTX {
			rec["stage"] = e.Stage
			rec["worker"] = e.Tid
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsmtxrun: ")
	var (
		bench    = flag.String("bench", "", "benchmark name (see dsmtxbench -table 2); empty lists them")
		cores    = flag.Int("cores", 32, "total cores (workers + try-commit + commit)")
		paradigm = flag.String("paradigm", "dsmtx", "dsmtx or tls")
		misspec  = flag.Float64("misspec", 0, "input misspeculation rate (e.g. 0.001)")
		scale    = flag.Int("scale", 1, "problem-size multiplier")
		seed     = flag.Uint64("seed", 42, "input generation seed")
		trace    = flag.String("trace", "", "write the MTX lifecycle trace to this JSON-lines file")
	)
	flag.Parse()

	if *bench == "" {
		fmt.Println(harness.RenderTable2())
		return
	}
	b, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	in := workloads.Input{Scale: *scale, Seed: *seed, MisspecRate: *misspec}

	p := workloads.DSMTX
	if *paradigm == "tls" {
		p = workloads.TLS
	}

	seqTime, seqCheck, err := workloads.RunSequentialRef(b, in)
	if err != nil {
		log.Fatal(err)
	}
	var tune func(*core.Config)
	if *trace != "" {
		tune = func(cfg *core.Config) { cfg.Trace = true }
	}
	res, err := workloads.RunParallel(b, in, p, *cores, tune)
	if err != nil {
		log.Fatal(err)
	}
	if *trace != "" {
		if err := writeTrace(*trace, res.Trace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", len(res.Trace), *trace)
	}

	fmt.Printf("%s (%s), %d cores, paradigm %s\n", b.Name, b.Paradigm, *cores, p)
	fmt.Printf("  sequential      %v\n", seqTime)
	fmt.Printf("  parallel        %v\n", res.Elapsed)
	fmt.Printf("  speedup         %s\n", stats.FormatSpeedup(seqTime.Seconds()/res.Elapsed.Seconds()))
	fmt.Printf("  MTXs committed  %d (misspeculations: %d)\n", res.Committed, res.Misspecs)
	fmt.Printf("  wire traffic    %.2f MB (%.1f MB/s)\n", float64(res.Bytes)/1e6, res.Bandwidth()/1e6)
	if res.Misspecs > 0 {
		fmt.Printf("  recovery        ERM %v  FLQ %v  SEQ %v  RFP %v\n", res.ERM, res.FLQ, res.SEQ, res.RFP)
	}
	if res.Checksum == seqCheck {
		fmt.Printf("  output          VERIFIED (checksum %#x matches sequential)\n", res.Checksum)
	} else {
		fmt.Printf("  output          MISMATCH: parallel %#x, sequential %#x\n", res.Checksum, seqCheck)
	}
}
