package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmtx/internal/cli/clitest"
	"dsmtx/internal/core"
	"dsmtx/internal/workloads"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.bench != "" || o.cores != 32 || o.paradigm != workloads.DSMTX || o.backend != core.BackendVTime {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}

func TestParseFlagsBackends(t *testing.T) {
	o, err := parseFlags([]string{"-bench", "crc32", "-backend", "host"})
	if err != nil {
		t.Fatal(err)
	}
	if o.backend != core.BackendHost {
		t.Fatalf("backend = %v, want host", o.backend)
	}
	if _, err := parseFlags([]string{"-backend", "qemu"}); err == nil {
		t.Fatal("accepted unknown backend")
	}
}

func TestParseFlagsErrors(t *testing.T) {
	clitest.RejectAll(t, parseFlags, []clitest.RejectCase{
		{Args: []string{"stray-positional"}, Want: "unexpected arguments"},
		{Args: []string{"-paradigm", "openmp"}, Want: "unknown -paradigm"},
		{Args: []string{"-fault-seed", "7"}, Want: "-fault-seed needs -faults"},
		{Args: []string{"-faults", "drop=notanumber"}, Want: "-faults"},
		// vtime-only features on the host backend
		{Args: []string{"-backend", "host", "-faults", "drop=0.01"}, Want: "vtime"},
	})
}

// TestParseFlagsHostObservability pins the lifted restriction: tracing and
// metrics are backend-agnostic now, so the host backend accepts them.
func TestParseFlagsHostObservability(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "crc32", "-backend", "host", "-trace", "out.json"},
		{"-bench", "crc32", "-backend", "host", "-metrics"},
		{"-bench", "crc32", "-backend", "host", "-metrics-addr", "127.0.0.1:0"},
	} {
		if _, err := parseFlags(args); err != nil {
			t.Errorf("parseFlags(%v): %v", args, err)
		}
	}
}

func TestParseFlagsFaultPlan(t *testing.T) {
	o, err := parseFlags([]string{"-bench", "crc32", "-faults", "drop=0.01", "-fault-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if o.plan == nil || o.plan.Seed != 7 {
		t.Fatalf("plan = %+v, want seed 7", o.plan)
	}
}

// TestRunOutputByteIdentical pins the refactored run(): the vtime report is
// a pure function of the options, so two runs must produce identical bytes.
func TestRunOutputByteIdentical(t *testing.T) {
	o, err := parseFlags([]string{"-bench", "crc32", "-cores", "8"})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := run(o, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("vtime output not byte-identical:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"crc32", "speedup", "MTXs committed", "VERIFIED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunHostBackend executes a real host-backend run end to end: the
// checksum must verify against the vtime sequential reference, and no
// modelled speedup is reported (wall clock is not comparable to virtual
// time).
func TestRunHostBackend(t *testing.T) {
	o, err := parseFlags([]string{"-bench", "crc32", "-cores", "8", "-backend", "host"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "backend host") || !strings.Contains(out, "VERIFIED") {
		t.Errorf("host run output unexpected:\n%s", out)
	}
	if strings.Contains(out, "speedup") {
		t.Errorf("host run reported a speedup:\n%s", out)
	}
}

// TestRunHostBackendTraced runs the host backend with the wall-clock tracer
// attached end to end: the Chrome trace must be valid JSON carrying the
// "clock":"wall" marker, and the stall tables must grow the host delivery
// columns.
func TestRunHostBackendTraced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "host.json")
	o, err := parseFlags([]string{"-bench", "crc32", "-cores", "8", "-backend", "host",
		"-trace", path, "-metrics"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "VERIFIED") {
		t.Errorf("traced host run did not verify:\n%s", out)
	}
	for _, col := range []string{"park", "spill", "shard-q"} {
		if !strings.Contains(out, col) {
			t.Errorf("stall tables missing host column %q:\n%s", col, out)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Clock       string           `json:"clock"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Clock != "wall" {
		t.Errorf("trace clock = %q, want wall", doc.Clock)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}

func TestRunListsBenchmarksWithoutBench(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "164.gzip") {
		t.Errorf("benchmark listing missing 164.gzip:\n%s", buf.String())
	}
}
