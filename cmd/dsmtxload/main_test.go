package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmtx/internal/cli/clitest"
	"dsmtx/internal/engine"
)

// serveForTest binds an engine.Server to a loopback ephemeral port.
func serveForTest(t *testing.T, srv *engine.Server) (*http.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return hs, ln.Addr().String()
}

func TestParseFlagsErrors(t *testing.T) {
	clitest.RejectAll(t, parseFlags, []clitest.RejectCase{
		{Args: nil, Want: "-addr is required"},
		{Args: []string{"-addr", "x:1", "stray"}, Want: "unexpected arguments"},
		{Args: []string{"-addr", "x:1", "-jobs", "0"}, Want: ">= 1"},
		{Args: []string{"-addr", "x:1", "-clients", "0"}, Want: ">= 1"},
		{Args: []string{"-addr", "x:1", "-rate", "-3"}, Want: "-rate"},
		{Args: []string{"-addr", "x:1", "-distinct", "0"}, Want: "-distinct"},
		{Args: []string{"-addr", "x:1", "-bench", "nope"}, Want: "unknown benchmark"},
		{Args: []string{"-no-such-flag"}, Want: "flag provided but not defined"},
	})
}

func TestParseFlagsBenchMix(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:7800", "-bench", "crc32, 164.gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.benches) != 2 || o.benches[0] != "crc32" || o.benches[1] != "164.gzip" {
		t.Fatalf("benches = %v", o.benches)
	}
}

// TestRunAgainstLiveEngine stands up a real engine.Server over HTTP and
// drives a small mixed closed-loop load through the full dsmtxload path:
// every checksum must verify, duplicates (jobs > distinct specs) must be
// served by the cache or coalescer, and the report must carry the
// percentile and VERIFIED lines.
func TestRunAgainstLiveEngine(t *testing.T) {
	eng := engine.New(engine.Config{MaxConcurrent: 4, QueueDepth: 256})
	defer eng.Close()
	srv := engine.NewServer(eng)
	hs, addr := serveForTest(t, srv)
	defer hs.Close()

	o, err := parseFlags([]string{"-addr", addr, "-jobs", "24", "-clients", "6",
		"-bench", "crc32", "-cores", "4", "-distinct", "3"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"p50", "p99", "p999", "VERIFIED (24/24"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// 24 jobs over 3 distinct specs: at least some duplicates must have
	// been answered without recomputation.
	st := eng.Stats()
	if st.CacheHits+st.Coalesced == 0 {
		t.Errorf("no cache hits or coalesced jobs across duplicate specs: %+v", st)
	}
}

// TestRunAppendsBenchRow: -out writes a well-formed BENCH_host.json entry
// and preserves existing ones.
func TestRunAppendsBenchRow(t *testing.T) {
	eng := engine.New(engine.Config{})
	defer eng.Close()
	hs, addr := serveForTest(t, engine.NewServer(eng))
	defer hs.Close()

	path := filepath.Join(t.TempDir(), "BENCH_host.json")
	seed := map[string]any{"comment": "c", "entries": []any{map[string]any{"label": "old"}}}
	raw, _ := json.Marshal(seed)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	o, err := parseFlags([]string{"-addr", addr, "-jobs", "4", "-clients", "2",
		"-bench", "crc32", "-cores", "4", "-out", path, "-label", "loadtest"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Comment string `json:"comment"`
		Entries []struct {
			Label string         `json:"label"`
			Load  map[string]any `json:"load"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("appended file is not valid JSON: %v\n%s", err, got)
	}
	if doc.Comment != "c" || len(doc.Entries) != 2 || doc.Entries[0].Label != "old" {
		t.Fatalf("existing content not preserved: %+v", doc)
	}
	row := doc.Entries[1]
	if row.Label != "loadtest" {
		t.Fatalf("row label = %q", row.Label)
	}
	for _, key := range []string{"throughput_jobs_per_sec", "p50_ms", "p99_ms", "p999_ms", "cache_hits", "verified"} {
		if _, ok := row.Load[key]; !ok {
			t.Errorf("bench row missing %q: %v", key, row.Load)
		}
	}
}

// TestRunReportsFailure: an unreachable server is an error, not a hang.
func TestRunUnreachableServer(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:1", "-jobs", "1", "-clients", "1"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(o, &out); err == nil || !strings.Contains(err.Error(), "not reachable") {
		t.Fatalf("err = %v", err)
	}
}
