// Command dsmtxload drives a live dsmtxd job server: open-loop Poisson
// (or closed-loop) arrivals from N concurrent clients over a mix of
// benchmarks, reporting sustained throughput, latency percentiles
// (p50/p99/p999), verification, and result-cache behaviour.
//
// Usage:
//
//	dsmtxd serve -listen 127.0.0.1:7800 &
//	dsmtxload -addr 127.0.0.1:7800 -jobs 200 -clients 120
//	dsmtxload -addr 127.0.0.1:7800 -rate 50 -bench crc32,164.gzip
//	dsmtxload -addr 127.0.0.1:7800 -out BENCH_host.json -label pr10
//
// Every job is submitted with verify=true, so the server checks each
// parallel checksum against the sequential vtime reference; dsmtxload
// exits nonzero if any job fails or any checksum mismatches. -distinct
// bounds the number of distinct specs, so a longer run resubmits
// duplicates and exercises the server's result cache and coalescer.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsmtx/internal/cli"
	"dsmtx/internal/engine"
	"dsmtx/internal/workloads"
)

// options are the parsed, validated command-line settings.
type options struct {
	addr     string
	jobs     int
	clients  int
	rate     float64 // arrivals/sec; 0 = closed loop
	benches  []string
	cores    int
	scale    int
	distinct int
	loadSeed int64
	out      string
	label    string
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("dsmtxload", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "", "dsmtxd serve address (host:port), required")
	fs.IntVar(&o.jobs, "jobs", 200, "total jobs to submit")
	fs.IntVar(&o.clients, "clients", 120, "concurrent client connections")
	fs.Float64Var(&o.rate, "rate", 0, "open-loop Poisson arrival rate in jobs/sec (0 = closed loop: clients submit back to back)")
	bench := fs.String("bench", "crc32", "comma-separated benchmark mix, cycled across jobs")
	fs.IntVar(&o.cores, "cores", 4, "cores per job")
	fs.IntVar(&o.scale, "scale", 1, "problem-size multiplier per job")
	fs.IntVar(&o.distinct, "distinct", 16, "distinct seeds per benchmark; more jobs than distinct specs means duplicates that exercise the server's cache")
	fs.Int64Var(&o.loadSeed, "load-seed", 1, "seed for the arrival-time and mix shuffle randomness")
	fs.StringVar(&o.out, "out", "", "append a summary row to this BENCH_host.json-format file")
	fs.StringVar(&o.label, "label", "load", "label for the -out summary row")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.addr == "" {
		return nil, fmt.Errorf("-addr is required (start one with: dsmtxd serve)")
	}
	if o.jobs < 1 || o.clients < 1 {
		return nil, fmt.Errorf("-jobs and -clients must be >= 1")
	}
	if o.rate < 0 {
		return nil, fmt.Errorf("-rate must be >= 0")
	}
	if o.distinct < 1 {
		return nil, fmt.Errorf("-distinct must be >= 1")
	}
	for _, name := range strings.Split(*bench, ",") {
		name = strings.TrimSpace(name)
		if _, err := workloads.ByName(name); err != nil {
			return nil, err
		}
		o.benches = append(o.benches, name)
	}
	return o, nil
}

func main() {
	cli.Main("dsmtxload", parseFlags, func(o *options) error { return run(o, os.Stdout) })
}

// jobOutcome is one job's client-side measurement.
type jobOutcome struct {
	latency  time.Duration
	source   string
	verified bool
	err      error
}

// serverStats mirrors the engine section of dsmtxd's /stats reply.
type serverStats struct {
	Engine engine.Stats `json:"engine"`
	Cache  *struct {
		Entries int   `json:"entries"`
		Bytes   int64 `json:"bytes"`
	} `json:"cache"`
}

// jobReply is the subset of the server's Result body dsmtxload reads.
type jobReply struct {
	Checksum uint64 `json:"Checksum"`
	SeqCheck uint64 `json:"seq_check"`
	Verified bool   `json:"verified"`
	Source   string `json:"source"`
}

// run generates the load and writes the report to stdout.
func run(o *options, stdout io.Writer) error {
	base := "http://" + o.addr
	client := &http.Client{}

	before, err := fetchStats(client, base)
	if err != nil {
		return fmt.Errorf("server not reachable: %w", err)
	}

	// The job list: benchmarks cycled, seeds bounded by -distinct so the
	// tail of a long run re-requests specs the server has already computed.
	rng := rand.New(rand.NewSource(o.loadSeed))
	specs := make([]engine.JobSpec, o.jobs)
	for i := range specs {
		specs[i] = engine.JobSpec{
			Bench:       o.benches[i%len(o.benches)],
			Cores:       o.cores,
			Scale:       o.scale,
			Seed:        uint64(1 + i%o.distinct),
			Invocations: 1,
			Verify:      true,
		}
	}
	rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	// Arrival offsets: exponential inter-arrival gaps for the open-loop
	// Poisson process; all-zero for the closed loop (latency then measures
	// from the moment a client becomes free).
	arrivals := make([]time.Duration, o.jobs)
	if o.rate > 0 {
		var at time.Duration
		for i := range arrivals {
			at += time.Duration(rng.ExpFloat64() / o.rate * float64(time.Second))
			arrivals[i] = at
		}
	}

	// A poller samples the server's in-flight depth (running + queued)
	// while the load runs.
	var maxServerInflight atomic.Int64
	pollDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-pollDone:
				return
			case <-tick.C:
				if st, err := fetchStats(client, base); err == nil {
					depth := int64(st.Engine.Running + st.Engine.Queued)
					if depth > maxServerInflight.Load() {
						maxServerInflight.Store(depth)
					}
				}
			}
		}
	}()

	var inflight, maxInflight atomic.Int64
	outcomes := make([]jobOutcome, o.jobs)
	next := make(chan int)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if d := arrivals[i]; d > 0 {
					if wait := d - time.Since(start); wait > 0 {
						time.Sleep(wait)
					}
				}
				cur := inflight.Add(1)
				if cur > maxInflight.Load() {
					maxInflight.Store(cur)
				}
				// Open-loop latency runs from the job's scheduled arrival,
				// so queueing delay counts against the server; closed-loop
				// latency runs from the actual request.
				issued := time.Now()
				if o.rate > 0 {
					issued = start.Add(arrivals[i])
				}
				reply, err := submit(client, base, specs[i])
				inflight.Add(-1)
				outcomes[i] = jobOutcome{
					latency:  time.Since(issued),
					source:   reply.Source,
					verified: reply.Verified && reply.Checksum == reply.SeqCheck,
					err:      err,
				}
			}
		}()
	}
	for i := 0; i < o.jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	close(pollDone)

	after, err := fetchStats(client, base)
	if err != nil {
		return fmt.Errorf("server stats after run: %w", err)
	}
	return report(o, stdout, outcomes, elapsed, before, after,
		int(maxInflight.Load()), int(maxServerInflight.Load()))
}

// submit posts one synchronous job.
func submit(client *http.Client, base string, spec engine.JobSpec) (jobReply, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return jobReply{}, err
	}
	resp, err := client.Post(base+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobReply{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobReply{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return jobReply{}, fmt.Errorf("%s: HTTP %d: %s", spec.Bench, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var reply jobReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return jobReply{}, err
	}
	return reply, nil
}

func fetchStats(client *http.Client, base string) (serverStats, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return serverStats{}, err
	}
	defer resp.Body.Close()
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serverStats{}, err
	}
	return st, nil
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// report renders the summary and optionally appends the BENCH row. It
// fails (nonzero exit through cli.Main) when any job errored or any
// checksum mismatched.
func report(o *options, stdout io.Writer, outcomes []jobOutcome, elapsed time.Duration,
	before, after serverStats, maxClient, maxServer int) error {
	var latencies []time.Duration
	var failed, verified int
	sources := map[string]int{}
	for _, out := range outcomes {
		if out.err != nil {
			failed++
			continue
		}
		latencies = append(latencies, out.latency)
		sources[out.source]++
		if out.verified {
			verified++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := percentile(latencies, 0.50)
	p99 := percentile(latencies, 0.99)
	p999 := percentile(latencies, 0.999)
	throughput := float64(len(latencies)) / elapsed.Seconds()
	cacheHits := after.Engine.CacheHits - before.Engine.CacheHits
	coalesced := after.Engine.Coalesced - before.Engine.Coalesced

	mode := "closed loop"
	if o.rate > 0 {
		mode = fmt.Sprintf("open loop, %.1f jobs/s Poisson", o.rate)
	}
	fmt.Fprintf(stdout, "dsmtxload: %d jobs via %d clients (%s) against %s\n", o.jobs, o.clients, mode, o.addr)
	fmt.Fprintf(stdout, "  mix             %s, %d cores/job, %d distinct specs\n", strings.Join(o.benches, ","), o.cores, o.distinct*len(o.benches))
	fmt.Fprintf(stdout, "  throughput      %.1f jobs/s (%d jobs in %v)\n", throughput, len(latencies), elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  latency         p50 %v  p99 %v  p999 %v\n",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), p999.Round(time.Microsecond))
	fmt.Fprintf(stdout, "  sources         run %d, cache %d, coalesced %d (server: +%d cache hits, +%d coalesced)\n",
		sources["run"], sources["cache"], sources["coalesced"], cacheHits, coalesced)
	fmt.Fprintf(stdout, "  max in-flight   %d at the clients, %d at the server\n", maxClient, maxServer)
	if after.Cache != nil {
		fmt.Fprintf(stdout, "  server cache    %d entries, %.1f KB on disk\n", after.Cache.Entries, float64(after.Cache.Bytes)/1e3)
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "  output          FAILED (%d of %d jobs errored)\n", failed, o.jobs)
		for _, out := range outcomes {
			if out.err != nil {
				return fmt.Errorf("%d jobs failed; first: %v", failed, out.err)
			}
		}
	}
	if verified != len(latencies) {
		fmt.Fprintf(stdout, "  output          MISMATCH (%d/%d checksums match sequential)\n", verified, len(latencies))
		return fmt.Errorf("%d of %d jobs did not verify", len(latencies)-verified, len(latencies))
	}
	fmt.Fprintf(stdout, "  output          VERIFIED (%d/%d checksums match sequential)\n", verified, len(latencies))

	if o.out != "" {
		row := map[string]any{
			"jobs": o.jobs, "clients": o.clients, "benches": strings.Join(o.benches, ","),
			"cores_per_job": o.cores, "throughput_jobs_per_sec": round2(throughput),
			"p50_ms": roundMs(p50), "p99_ms": roundMs(p99), "p999_ms": roundMs(p999),
			"cache_hits": cacheHits, "coalesced": coalesced,
			"max_inflight_server": maxServer, "verified": verified,
		}
		if err := appendBenchRow(o.out, o.label, row); err != nil {
			return fmt.Errorf("-out: %w", err)
		}
		fmt.Fprintf(stdout, "  bench row       %q appended to %s\n", o.label, o.out)
	}
	return nil
}

func round2(v float64) float64        { return math.Round(v*100) / 100 }
func roundMs(d time.Duration) float64 { return math.Round(d.Seconds()*1e5) / 100 }

// appendBenchRow appends one labelled entry to a BENCH_host.json-format
// file (creating it if missing), preserving unknown fields in existing
// entries by decoding loosely.
func appendBenchRow(path, label string, load map[string]any) error {
	doc := map[string]any{
		"comment": "Host wall-clock per figure-harness run, one labelled entry per PR; written by tools/benchhost (make bench-host).",
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	entries, _ := doc["entries"].([]any)
	entries = append(entries, map[string]any{
		"label":      label,
		"date":       time.Now().Format("2006-01-02"),
		"go_version": runtime.Version(),
		"load":       load,
	})
	doc["entries"] = entries
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
