// Command dsmtxbench regenerates the paper's evaluation (§5): every figure
// and table, printed as terminal tables and ASCII charts.
//
// Usage:
//
//	dsmtxbench -figure 4                 # all Fig. 4 panels + geomean
//	dsmtxbench -figure 4 -bench 164.gzip # one panel
//	dsmtxbench -figure 5a | -figure 5b | -figure 6 | -figure 1
//	dsmtxbench -table 2
//	dsmtxbench -micro                    # §5.3 queue-vs-MPI bandwidth
//	dsmtxbench -all
//	dsmtxbench -quick                    # coarser core counts
//
// Host-performance introspection (the simulator's own cost, not the
// simulated machine's):
//
//	dsmtxbench -benchhost                      # wall-clock/allocs per run
//	dsmtxbench -figure 4 -cpuprofile cpu.out   # profile any mode
//	dsmtxbench -benchhost -memprofile mem.out
//
// Virtual-time timeline export (load the file in Perfetto):
//
//	dsmtxbench -trace out.json -bench 164.gzip -cores 32
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dsmtx/internal/core"
	"dsmtx/internal/harness"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsmtxbench: ")
	var (
		figure   = flag.String("figure", "", "figure to regenerate: 1, 3, 4, 5a, 5b or 6")
		table    = flag.Int("table", 0, "table to regenerate: 2")
		micro    = flag.Bool("micro", false, "run the §5.3 queue-vs-MPI micro-benchmark")
		manycore = flag.Bool("manycore", false, "run the §7 coherence-free manycore comparison")
		all      = flag.Bool("all", false, "regenerate everything")
		bench    = flag.String("bench", "", "restrict to one benchmark (or \"geomean\")")
		quick    = flag.Bool("quick", false, "coarse core counts (8,16,32,64,96,128)")
		coreArg  = flag.String("cores", "", "comma-separated core counts (overrides -quick)")
		rate     = flag.Float64("rate", 0.001, "misspeculation rate for figure 6")
		scale    = flag.Int("scale", 1, "problem-size multiplier")
		seed     = flag.Uint64("seed", 42, "input generation seed")

		traceOut   = flag.String("trace", "", "run one configuration (honors -bench, -cores) and write a Chrome trace-event JSON timeline to this file")
		benchhost  = flag.Bool("benchhost", false, "measure host wall-clock and allocations per simulated run (honors -bench, -cores, -benchn)")
		benchN     = flag.Int("benchn", 3, "repetitions for -benchhost")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
		}()
	}

	in := workloads.Input{Scale: *scale, Seed: *seed}
	cores := harness.DefaultCores()
	if *quick {
		cores = harness.QuickCores()
	}
	if *coreArg != "" {
		cores = nil
		for _, f := range strings.Split(*coreArg, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				log.Fatalf("bad -cores: %v", err)
			}
			cores = append(cores, c)
		}
	}

	ran := false
	if *traceOut != "" {
		c := 32
		if *coreArg != "" {
			c = cores[0]
		}
		in := in
		in.MisspecRate = *rate
		runTrace(in, *bench, c, *traceOut)
		ran = true
	}
	if *benchhost {
		c := 32
		if *coreArg != "" {
			c = cores[0]
		}
		runBenchHost(in, *bench, c, *benchN)
		ran = true
	}
	if *all || *figure == "1" {
		runFigure1()
		ran = true
	}
	if *all || *table == 2 {
		fmt.Println(harness.RenderTable2())
		ran = true
	}
	if *all || *micro {
		fmt.Println(harness.RenderMicro(harness.RunMicroQueue()))
		ran = true
	}
	if *all || *figure == "3" {
		r, err := harness.RunFigure3()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(harness.RenderFigure3(r))
		ran = true
	}
	if *all || *manycore {
		runManycore(in, *bench)
		ran = true
	}
	if *all || *figure == "4" {
		runFigure4(in, cores, *bench)
		ran = true
	}
	if *all || *figure == "5a" {
		runFigure5a(in, *bench)
		ran = true
	}
	if *all || *figure == "5b" {
		runFigure5b(in, *bench)
		ran = true
	}
	if *all || *figure == "6" {
		runFigure6(in, *rate, cores)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runTrace executes one configuration with the virtual-time tracer attached
// and writes the Perfetto-loadable Chrome trace.
func runTrace(in workloads.Input, bench string, cores int, path string) {
	name := bench
	if name == "" || name == "geomean" {
		name = "164.gzip"
	}
	b, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	tr := trace.New()
	res, err := workloads.RunParallel(b, in, workloads.DSMTX, cores,
		func(cfg *core.Config) { cfg.Tracer = tr })
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s on %d cores, %v virtual time, %d events -> %s\n",
		name, cores, res.Elapsed, len(tr.Events()), path)
}

// runBenchHost times complete simulated-cluster runs on the host — the
// same measurement as the BenchmarkHost* functions, without the testing
// harness, so it composes with -cpuprofile/-memprofile.
func runBenchHost(in workloads.Input, bench string, cores, n int) {
	name := bench
	if name == "" || name == "geomean" {
		name = "164.gzip"
	}
	b, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	if n < 1 {
		n = 1
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		res, err := workloads.RunParallel(b, in, workloads.DSMTX, cores, nil)
		if err != nil {
			log.Fatal(err)
		}
		if res.Committed == 0 {
			log.Fatalf("%s: no commits", name)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	un := uint64(n)
	fmt.Printf("benchhost %s DSMTX %d cores: %d ns/op  %d B/op  %d allocs/op  (%d runs)\n",
		name, cores, wall.Nanoseconds()/int64(n),
		(after.TotalAlloc-before.TotalAlloc)/un, (after.Mallocs-before.Mallocs)/un, n)
}

func selected(name string) []*workloads.Benchmark {
	if name == "" || name == "geomean" {
		return workloads.All()
	}
	b, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return []*workloads.Benchmark{b}
}

func runManycore(in workloads.Input, bench string) {
	names := []string{"456.hmmer", "crc32", "blackscholes"}
	if bench != "" && bench != "geomean" {
		names = []string{bench}
	}
	var rows []harness.ManycoreRow
	for _, name := range names {
		b, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		row, err := harness.RunManycore(b, in)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
	}
	fmt.Println(harness.RenderManycore(rows))
}

func runFigure1() {
	var results []harness.Fig1Result
	for _, lat := range []int{1, 2, 4, 8} {
		results = append(results, harness.RunFigure1(lat))
	}
	fmt.Println(harness.RenderFigure1(results))
}

func runFigure4(in workloads.Input, cores []int, bench string) {
	var series []harness.Fig4Series
	for _, b := range selected(bench) {
		s, err := harness.RunFigure4(b, in, cores)
		if err != nil {
			log.Fatal(err)
		}
		if bench != "geomean" {
			fmt.Println(harness.RenderFigure4(s))
		}
		series = append(series, s)
	}
	if bench == "" || bench == "geomean" {
		fmt.Println(harness.RenderGeomean(harness.Geomean(series)))
	}
}

func runFigure5a(in workloads.Input, bench string) {
	var rows []harness.Fig5aRow
	for _, b := range selected(bench) {
		row, err := harness.RunFigure5a(b, in)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
	}
	fmt.Println(harness.RenderFigure5a(rows))
}

func runFigure5b(in workloads.Input, bench string) {
	var rows []harness.Fig5bRow
	for _, b := range selected(bench) {
		row, err := harness.RunFigure5b(b, in, 128)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
	}
	fmt.Println(harness.RenderFigure5b(rows))
}

func runFigure6(in workloads.Input, rate float64, cores []int) {
	if len(cores) > 4 {
		cores = []int{32, 64, 96, 128} // the paper's Fig. 6 core counts
	}
	var rows []harness.Fig6Row
	for _, name := range harness.Fig6Benches() {
		b, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range cores {
			row, err := harness.RunFigure6(b, in, rate, c)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, row)
		}
	}
	fmt.Println(harness.RenderFigure6(rows))
}
