// Command dsmtxbench regenerates the paper's evaluation (§5): every figure
// and table, printed as terminal tables and ASCII charts.
//
// Usage:
//
//	dsmtxbench -figure 4                 # all Fig. 4 panels + geomean
//	dsmtxbench -figure 4 -bench 164.gzip # one panel
//	dsmtxbench -figure 5a | -figure 5b | -figure 6 | -figure 1
//	dsmtxbench -figure r                 # resilience: speedup under injected faults
//	dsmtxbench -figure s                 # commit-shard sweep at 512-1024 cores
//	dsmtxbench -table 2
//	dsmtxbench -micro                    # §5.3 queue-vs-MPI bandwidth
//	dsmtxbench -all
//	dsmtxbench -quick                    # coarser core counts
//
// Experiment points (workload × cores × mode) are independent
// deterministic simulations, so they are scheduled across host CPUs and
// cached on disk, content-addressed by their full configuration plus a
// fingerprint of the simulator sources:
//
//	dsmtxbench -all -parallel 8          # fan points over 8 host CPUs
//	dsmtxbench -all -parallel 1          # sequential; output is byte-identical
//	dsmtxbench -all -cache /tmp/points   # reuse results across runs
//	dsmtxbench -all -cache-off           # always simulate
//
// Figures and tables go to stdout; progress, logs and the scheduler
// summary go to stderr, so stdout stays machine-parseable.
//
// Host-performance introspection (the simulator's own cost, not the
// simulated machine's):
//
//	dsmtxbench -benchhost                      # wall-clock/allocs per run
//	dsmtxbench -figure 4 -cpuprofile cpu.out   # profile any mode
//	dsmtxbench -benchhost -memprofile mem.out
//
// Virtual-time timeline export (load the file in Perfetto):
//
//	dsmtxbench -trace out.json -bench 164.gzip -cores 32
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dsmtx/internal/cli"
	"dsmtx/internal/core"
	"dsmtx/internal/expsched"
	"dsmtx/internal/harness"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

// options are the parsed, validated command-line settings.
type options struct {
	figure   string
	table    int
	micro    bool
	manycore bool
	all      bool
	bench    string
	quick    bool
	coreArg  string
	rate     float64
	scale    int
	seed     uint64

	parallel int
	cacheDir string
	cacheOff bool

	traceOut   string
	benchhost  bool
	benchN     int
	cpuprofile string
	memprofile string

	cores []int // resolved from quick/coreArg
}

// defaultCacheDir places the point cache under the user cache directory;
// empty (caching disabled by default) when that cannot be determined.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "dsmtxbench")
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("dsmtxbench", flag.ContinueOnError)
	fs.StringVar(&o.figure, "figure", "", "figure to regenerate: 1, 3, 4, 5a, 5b, 6, r (resilience) or s (commit sharding)")
	fs.IntVar(&o.table, "table", 0, "table to regenerate: 2")
	fs.BoolVar(&o.micro, "micro", false, "run the §5.3 queue-vs-MPI micro-benchmark")
	fs.BoolVar(&o.manycore, "manycore", false, "run the §7 coherence-free manycore comparison")
	fs.BoolVar(&o.all, "all", false, "regenerate everything")
	fs.StringVar(&o.bench, "bench", "", "restrict to one benchmark (or \"geomean\")")
	fs.BoolVar(&o.quick, "quick", false, "coarse core counts (8,16,32,64,96,128)")
	fs.StringVar(&o.coreArg, "cores", "", "comma-separated core counts (overrides -quick)")
	fs.Float64Var(&o.rate, "rate", 0.001, "misspeculation rate for figure 6")
	fs.IntVar(&o.scale, "scale", 1, "problem-size multiplier")
	fs.Uint64Var(&o.seed, "seed", 42, "input generation seed")

	fs.IntVar(&o.parallel, "parallel", runtime.GOMAXPROCS(0), "host CPUs to schedule experiment points across (1 = sequential)")
	fs.StringVar(&o.cacheDir, "cache", defaultCacheDir(), "directory for the content-addressed point-result cache (\"\" disables)")
	fs.BoolVar(&o.cacheOff, "cache-off", false, "disable the point-result cache")

	fs.StringVar(&o.traceOut, "trace", "", "run one configuration (honors -bench, -cores) and write a Chrome trace-event JSON timeline to this file")
	fs.BoolVar(&o.benchhost, "benchhost", false, "measure host wall-clock and allocations per simulated run (honors -bench, -cores, -benchn)")
	fs.IntVar(&o.benchN, "benchn", 3, "repetitions for -benchhost")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	switch o.figure {
	case "", "1", "3", "4", "5a", "5b", "6", "r", "s":
	default:
		return nil, fmt.Errorf("unknown -figure %q (have 1, 3, 4, 5a, 5b, 6, r, s)", o.figure)
	}
	if o.table != 0 && o.table != 2 {
		return nil, fmt.Errorf("unknown -table %d (have 2)", o.table)
	}
	if o.bench != "" && o.bench != "geomean" {
		if _, err := workloads.ByName(o.bench); err != nil {
			return nil, err
		}
	}

	o.cores = harness.DefaultCores()
	if o.quick {
		o.cores = harness.QuickCores()
	}
	if o.coreArg != "" {
		o.cores = nil
		for _, f := range strings.Split(o.coreArg, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad -cores: %v", err)
			}
			if c < 1 {
				return nil, fmt.Errorf("bad -cores: %d is not a positive core count", c)
			}
			o.cores = append(o.cores, c)
		}
	}
	return o, nil
}

func main() {
	cli.Main("dsmtxbench", parseFlags, func(o *options) error { return run(o, os.Stdout, os.Stderr) })
}

// run executes the selected sections. Figures and tables are written to
// stdout only; progress and diagnostics go to stderr.
func run(o *options, stdout, stderr io.Writer) error {
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if o.memprofile != "" {
		defer func() {
			f, err := os.Create(o.memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "dsmtxbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "dsmtxbench: -memprofile: %v\n", err)
			}
		}()
	}

	in := workloads.Input{Scale: o.scale, Seed: o.seed}
	runner := newRunner(o, stderr)

	start := time.Now()
	specs := prefetchSpecs(o, in)
	if len(specs) > 0 && runner.Workers > 1 {
		if err := runner.Prefetch(specs); err != nil {
			return err
		}
	}

	ran := false
	if o.traceOut != "" {
		tin := in
		tin.MisspecRate = o.rate
		if err := runTrace(tin, o.bench, o.oneCoreCount(), o.traceOut, stderr); err != nil {
			return err
		}
		ran = true
	}
	if o.benchhost {
		if err := runBenchHost(in, o.bench, o.oneCoreCount(), o.benchN, stdout); err != nil {
			return err
		}
		ran = true
	}
	if o.all || o.figure == "1" {
		runFigure1(stdout)
		ran = true
	}
	if o.all || o.table == 2 {
		fmt.Fprintln(stdout, harness.RenderTable2())
		ran = true
	}
	if o.all || o.micro {
		res, err := runner.RunMicroQueue()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, harness.RenderMicro(res))
		ran = true
	}
	if o.all || o.figure == "3" {
		r, err := harness.RunFigure3()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, harness.RenderFigure3(r))
		ran = true
	}
	if o.all || o.manycore {
		if err := runManycore(runner, in, o.bench, stdout); err != nil {
			return err
		}
		ran = true
	}
	if o.all || o.figure == "4" {
		if err := runFigure4(runner, in, o.cores, o.bench, stdout); err != nil {
			return err
		}
		ran = true
	}
	if o.all || o.figure == "5a" {
		if err := runFigure5a(runner, in, o.bench, stdout); err != nil {
			return err
		}
		ran = true
	}
	if o.all || o.figure == "5b" {
		if err := runFigure5b(runner, in, o.bench, stdout); err != nil {
			return err
		}
		ran = true
	}
	if o.all || o.figure == "6" {
		if err := runFigure6(runner, in, o.rate, o.cores, stdout); err != nil {
			return err
		}
		ran = true
	}
	if o.all || o.figure == "r" {
		if err := runFigureR(runner, in, stdout); err != nil {
			return err
		}
		ran = true
	}
	if o.all || o.figure == "s" {
		if err := runFigureS(runner, in, stdout); err != nil {
			return err
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("nothing selected; use -all, -figure, -table, -micro, -manycore, -trace or -benchhost")
	}
	if s := runner.Stats(); s.Computed+s.CacheHits > 0 {
		fmt.Fprintf(stderr, "dsmtxbench: sweep workers=%d points=%d computed=%d cached=%d elapsed=%s\n",
			runner.Workers, s.Computed+s.CacheHits, s.Computed, s.CacheHits,
			time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// newRunner wires the experiment scheduler: worker count, the
// content-addressed cache (unless disabled) and progress to stderr.
func newRunner(o *options, stderr io.Writer) *harness.Runner {
	r := &harness.Runner{Workers: o.parallel}
	if r.Workers < 1 {
		r.Workers = 1
	}
	if !o.cacheOff && o.cacheDir != "" {
		fp, err := harness.ResultFingerprint()
		if err == nil {
			r.Cache, err = expsched.OpenCache(o.cacheDir, fp)
		}
		if err != nil {
			// A broken cache must never fail a run that would otherwise work.
			fmt.Fprintf(stderr, "dsmtxbench: point cache disabled: %v\n", err)
			r.Cache = nil
		}
	}
	r.Progress = func(done, total int, spec harness.PointSpec, source string) {
		fmt.Fprintf(stderr, "dsmtxbench: [%d/%d] %s (%s)\n", done, total, spec, source)
	}
	return r
}

// prefetchSpecs enumerates every experiment point the selected sections
// will resolve, in a deterministic order, for the parallel fan-out.
func prefetchSpecs(o *options, in workloads.Input) []harness.PointSpec {
	var specs []harness.PointSpec
	if o.all || o.micro {
		specs = append(specs, harness.PointsMicro()...)
	}
	if o.all || o.manycore {
		for _, name := range manycoreNames(o.bench) {
			if b, err := workloads.ByName(name); err == nil {
				specs = append(specs, harness.PointsManycore(b, in)...)
			}
		}
	}
	if o.all || o.figure == "4" {
		for _, b := range selected(o.bench) {
			specs = append(specs, harness.PointsFigure4(b, in, o.cores)...)
		}
	}
	if o.all || o.figure == "5a" {
		for _, b := range selected(o.bench) {
			specs = append(specs, harness.PointsFigure5a(b, in)...)
		}
	}
	if o.all || o.figure == "5b" {
		for _, b := range selected(o.bench) {
			specs = append(specs, harness.PointsFigure5b(b, in, 128)...)
		}
	}
	if o.all || o.figure == "6" {
		for _, name := range harness.Fig6Benches() {
			b, err := workloads.ByName(name)
			if err != nil {
				continue
			}
			for _, c := range fig6Cores(o.cores) {
				specs = append(specs, harness.PointsFigure6(b, in, o.rate, c)...)
			}
		}
	}
	if o.all || o.figure == "r" {
		// The crash points are absent here by design: their fault plans
		// derive from the clean runs' elapsed times, so RunFigureR resolves
		// them on demand (still through the disk cache).
		for _, name := range harness.FigRBenches() {
			b, err := workloads.ByName(name)
			if err != nil {
				continue
			}
			for _, c := range harness.FigRCores() {
				specs = append(specs, harness.PointsFigureR(b, in, c)...)
			}
		}
	}
	if o.all || o.figure == "s" {
		for _, name := range harness.FigSBenches() {
			b, err := workloads.ByName(name)
			if err != nil {
				continue
			}
			for _, c := range harness.FigSCores() {
				specs = append(specs, harness.PointsFigureS(b, in, c)...)
			}
		}
	}
	return specs
}

// oneCoreCount picks the core count for single-configuration modes
// (-trace, -benchhost): the first -cores value, else 32.
func (o *options) oneCoreCount() int {
	if o.coreArg != "" {
		return o.cores[0]
	}
	return 32
}

// runTrace executes one configuration with the virtual-time tracer attached
// and writes the Perfetto-loadable Chrome trace.
func runTrace(in workloads.Input, bench string, cores int, path string, stderr io.Writer) error {
	name := bench
	if name == "" || name == "geomean" {
		name = "164.gzip"
	}
	b, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	tr := trace.New()
	res, err := workloads.RunParallel(b, in, workloads.DSMTX, cores,
		func(cfg *core.Config) { cfg.Tracer = tr })
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "dsmtxbench: trace: %s on %d cores, %v virtual time, %d events -> %s\n",
		name, cores, res.Elapsed, len(tr.Events()), path)
	return nil
}

// runBenchHost times complete simulated-cluster runs on the host — the
// same measurement as the BenchmarkHost* functions, without the testing
// harness, so it composes with -cpuprofile/-memprofile.
func runBenchHost(in workloads.Input, bench string, cores, n int, stdout io.Writer) error {
	name := bench
	if name == "" || name == "geomean" {
		name = "164.gzip"
	}
	b, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	if n < 1 {
		n = 1
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		res, err := workloads.RunParallel(b, in, workloads.DSMTX, cores, nil)
		if err != nil {
			return err
		}
		if res.Committed == 0 {
			return fmt.Errorf("%s: no commits", name)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	un := uint64(n)
	fmt.Fprintf(stdout, "benchhost %s DSMTX %d cores: %d ns/op  %d B/op  %d allocs/op  (%d runs)\n",
		name, cores, wall.Nanoseconds()/int64(n),
		(after.TotalAlloc-before.TotalAlloc)/un, (after.Mallocs-before.Mallocs)/un, n)
	return nil
}

// selected resolves the benchmark filter; bench is pre-validated by
// parseFlags.
func selected(name string) []*workloads.Benchmark {
	if name == "" || name == "geomean" {
		return workloads.All()
	}
	b, err := workloads.ByName(name)
	if err != nil {
		return nil
	}
	return []*workloads.Benchmark{b}
}

// manycoreNames are the benchmarks the §7 comparison covers, honoring
// the -bench filter.
func manycoreNames(bench string) []string {
	if bench != "" && bench != "geomean" {
		return []string{bench}
	}
	return []string{"456.hmmer", "crc32", "blackscholes"}
}

// fig6Cores applies the Fig. 6 core-count policy: a full sweep collapses
// to the paper's four counts.
func fig6Cores(cores []int) []int {
	if len(cores) > 4 {
		return []int{32, 64, 96, 128} // the paper's Fig. 6 core counts
	}
	return cores
}

func runManycore(r *harness.Runner, in workloads.Input, bench string, stdout io.Writer) error {
	var rows []harness.ManycoreRow
	for _, name := range manycoreNames(bench) {
		b, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		row, err := r.RunManycore(b, in)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(stdout, harness.RenderManycore(rows))
	return nil
}

func runFigure1(stdout io.Writer) {
	var results []harness.Fig1Result
	for _, lat := range []int{1, 2, 4, 8} {
		results = append(results, harness.RunFigure1(lat))
	}
	fmt.Fprintln(stdout, harness.RenderFigure1(results))
}

func runFigure4(r *harness.Runner, in workloads.Input, cores []int, bench string, stdout io.Writer) error {
	var series []harness.Fig4Series
	for _, b := range selected(bench) {
		s, err := r.RunFigure4(b, in, cores)
		if err != nil {
			return err
		}
		if bench != "geomean" {
			fmt.Fprintln(stdout, harness.RenderFigure4(s))
		}
		series = append(series, s)
	}
	if bench == "" || bench == "geomean" {
		fmt.Fprintln(stdout, harness.RenderGeomean(harness.Geomean(series)))
	}
	return nil
}

func runFigure5a(r *harness.Runner, in workloads.Input, bench string, stdout io.Writer) error {
	var rows []harness.Fig5aRow
	for _, b := range selected(bench) {
		row, err := r.RunFigure5a(b, in)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(stdout, harness.RenderFigure5a(rows))
	return nil
}

func runFigure5b(r *harness.Runner, in workloads.Input, bench string, stdout io.Writer) error {
	var rows []harness.Fig5bRow
	for _, b := range selected(bench) {
		row, err := r.RunFigure5b(b, in, 128)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(stdout, harness.RenderFigure5b(rows))
	return nil
}

func runFigure6(r *harness.Runner, in workloads.Input, rate float64, cores []int, stdout io.Writer) error {
	var rows []harness.Fig6Row
	for _, name := range harness.Fig6Benches() {
		b, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		for _, c := range fig6Cores(cores) {
			row, err := r.RunFigure6(b, in, rate, c)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
	}
	fmt.Fprintln(stdout, harness.RenderFigure6(rows))
	return nil
}

func runFigureR(r *harness.Runner, in workloads.Input, stdout io.Writer) error {
	var rows []harness.FigRRow
	for _, name := range harness.FigRBenches() {
		b, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		for _, c := range harness.FigRCores() {
			row, err := r.RunFigureR(b, in, c)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
	}
	fmt.Fprintln(stdout, harness.RenderFigureR(rows))
	return nil
}

func runFigureS(r *harness.Runner, in workloads.Input, stdout io.Writer) error {
	var rows []harness.FigSRow
	for _, name := range harness.FigSBenches() {
		b, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		for _, c := range harness.FigSCores() {
			row, err := r.RunFigureS(b, in, c)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
	}
	fmt.Fprintln(stdout, harness.RenderFigureS(rows))
	return nil
}
