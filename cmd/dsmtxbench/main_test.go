package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dsmtx/internal/cli/clitest"
)

// TestParseFlagsErrors covers the CLI's rejection paths: unknown figures
// and tables, malformed core lists, benchmarks missing from the
// registry, and stray positional arguments.
func TestParseFlagsErrors(t *testing.T) {
	clitest.RejectAll(t, parseFlags, []clitest.RejectCase{
		{Args: []string{"-figure", "9"}, Want: "unknown -figure"},
		{Args: []string{"-figure", "5c"}, Want: "unknown -figure"},
		{Args: []string{"-table", "3"}, Want: "unknown -table"},
		{Args: []string{"-bench", "999.nope"}, Want: "unknown benchmark"},
		{Args: []string{"-cores", "8,banana"}, Want: "bad -cores"},
		{Args: []string{"-cores", "8,,16"}, Want: "bad -cores"},
		{Args: []string{"-cores", "0"}, Want: "not a positive core count"},
		{Args: []string{"-cores", "-4"}, Want: "bad -cores"},
		{Args: []string{"-all", "extra"}, Want: "unexpected arguments"},
		{Args: []string{"-no-such-flag"}, Want: "flag provided but not defined"},
	})
}

// TestParseFlagsBenchNamesOptions: the unknown-benchmark error names the
// registry so the user can correct the flag without reading source.
func TestParseFlagsBenchNamesOptions(t *testing.T) {
	_, err := parseFlags([]string{"-bench", "nope"})
	if err == nil || !strings.Contains(err.Error(), "164.gzip") {
		t.Fatalf("err = %v, want the benchmark list", err)
	}
}

// TestParseFlagsCores: -cores overrides -quick, tolerating spaces;
// "geomean" passes the bench filter.
func TestParseFlagsCores(t *testing.T) {
	o, err := parseFlags([]string{"-quick", "-cores", " 8, 16 ,32", "-bench", "geomean"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.cores, []int{8, 16, 32}) {
		t.Fatalf("cores = %v", o.cores)
	}
	o, err = parseFlags([]string{"-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.cores, []int{8, 16, 32, 64, 96, 128}) {
		t.Fatalf("quick cores = %v", o.cores)
	}
}

// TestRunNothingSelected: no section flags is an error, not silence.
func TestRunNothingSelected(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run(o, &out, &errb); err == nil || !strings.Contains(err.Error(), "nothing selected") {
		t.Fatalf("run() err = %v", err)
	}
}

// TestRunStdoutStderrSeparation: a cheap real section renders to stdout
// while stderr carries only progress/log lines, so stdout stays
// machine-parseable.
func TestRunStdoutStderrSeparation(t *testing.T) {
	o, err := parseFlags([]string{"-figure", "1", "-cache-off"})
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run(o, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("stdout missing figure:\n%s", out.String())
	}
	if strings.Contains(errb.String(), "Figure 1") {
		t.Errorf("figure leaked to stderr:\n%s", errb.String())
	}
	if strings.Contains(out.String(), "dsmtxbench:") {
		t.Errorf("log line leaked to stdout:\n%s", out.String())
	}
}

// TestRunParallelStdoutByteIdentical: the acceptance invariant at the
// CLI level — -parallel N stdout is byte-identical to -parallel 1 — on a
// small real sweep (micro + one Fig. 5b row), with prefetch progress and
// the sweep summary confined to stderr.
func TestRunParallelStdoutByteIdentical(t *testing.T) {
	render := func(parallel string) (stdout, stderr string) {
		t.Helper()
		o, err := parseFlags([]string{"-micro", "-figure", "5b", "-bench", "crc32", "-parallel", parallel, "-cache-off"})
		if err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		if err := run(o, &out, &errb); err != nil {
			t.Fatal(err)
		}
		return out.String(), errb.String()
	}
	seqOut, _ := render("1")
	parOut, parErr := render("8")
	if seqOut != parOut {
		t.Errorf("stdout differs between -parallel 1 and -parallel 8:\n--- seq ---\n%s\n--- par ---\n%s", seqOut, parOut)
	}
	if !strings.Contains(parErr, "dsmtxbench: sweep workers=8") {
		t.Errorf("stderr missing sweep summary:\n%s", parErr)
	}
	if !strings.Contains(parErr, "[1/") {
		t.Errorf("stderr missing prefetch progress:\n%s", parErr)
	}
}

// TestRunWarmCacheSkipsSimulations: at the CLI level, a second run over
// the same -cache directory reports zero computed points and identical
// stdout.
func TestRunWarmCacheSkipsSimulations(t *testing.T) {
	dir := t.TempDir()
	render := func() (string, string) {
		t.Helper()
		o, err := parseFlags([]string{"-figure", "5b", "-bench", "crc32", "-parallel", "4", "-cache", dir})
		if err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		if err := run(o, &out, &errb); err != nil {
			t.Fatal(err)
		}
		return out.String(), errb.String()
	}
	coldOut, coldErr := render()
	warmOut, warmErr := render()
	if coldOut != warmOut {
		t.Errorf("stdout differs between cold and warm cache:\n%s\nvs\n%s", coldOut, warmOut)
	}
	if !strings.Contains(coldErr, "computed=3 cached=0") {
		t.Errorf("cold stderr: %s", coldErr)
	}
	if !strings.Contains(warmErr, "computed=0 cached=3") {
		t.Errorf("warm rerun must be 100%% cache hits: %s", warmErr)
	}
}
