module dsmtx

go 1.24
