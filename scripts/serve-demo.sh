#!/usr/bin/env bash
# serve-demo: end-to-end exercise of the job-serving path. Builds dsmtxd
# and dsmtxload, starts `dsmtxd serve` on a loopback ephemeral port, drives
# a burst of mixed host-backend jobs through the HTTP API with every
# checksum verified against the sequential reference, then stops the
# server with SIGTERM and requires a clean drain.
#
# Environment knobs (defaults fit CI):
#   JOBS=50 CLIENTS=16 MAXJOBS=16 BENCHES=crc32,164.gzip CORES=8
#   DISTINCT=4  — distinct specs per benchmark; fewer than JOBS means the
#                 tail hits the result cache
#   OUT=        — append a summary row to this BENCH_host.json file
#   LABEL=serve-demo
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-50}
CLIENTS=${CLIENTS:-16}
MAXJOBS=${MAXJOBS:-16}
BENCHES=${BENCHES:-crc32,164.gzip}
CORES=${CORES:-8}
DISTINCT=${DISTINCT:-4}
OUT=${OUT:-}
LABEL=${LABEL:-serve-demo}

work=$(mktemp -d)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/dsmtxd" ./cmd/dsmtxd
go build -o "$work/dsmtxload" ./cmd/dsmtxload

log="$work/dsmtxd.log"
"$work/dsmtxd" serve -listen 127.0.0.1:0 -max-jobs "$MAXJOBS" \
    -queue-depth 512 -cache "$work/cache" >"$log" 2>&1 &
pid=$!

addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^dsmtxd: serving jobs on http://##p' "$log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-demo: server died:" >&2; cat "$log" >&2; exit 1; }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-demo: server never advertised its address:" >&2
    cat "$log" >&2
    exit 1
fi

loadflags=(-addr "$addr" -jobs "$JOBS" -clients "$CLIENTS" \
    -bench "$BENCHES" -cores "$CORES" -distinct "$DISTINCT")
if [ -n "$OUT" ]; then
    loadflags+=(-out "$OUT" -label "$LABEL")
fi
"$work/dsmtxload" "${loadflags[@]}" | tee "$work/load.out"
grep -q 'VERIFIED' "$work/load.out"

kill -TERM "$pid"
wait "$pid"
pid=
cat "$log"
grep -q 'dsmtxd: drained' "$log"
echo "serve-demo: OK"
