# Development entry points. `make verify` is the tier-1 gate; `make
# bench-host` records the host-side perf trajectory in BENCH_host.json;
# `make trace-demo` produces and validates a sample Perfetto timeline;
# `make resilience-demo` runs a faulted configuration and validates its
# timeline (crash/re-dispatch spans included); `make host-demo` runs one
# benchmark live on the host execution backend and checks its checksum;
# `make host-trace-demo` does the same with the wall-clock tracer attached
# and validates the exported timeline; `make shard-demo` does the same with
# the commit pipeline partitioned across four commit shards; `make
# net-demo` runs one benchmark as a real distributed job — ranks split
# across daemon OS processes talking TCP on loopback — and checks the same
# checksum gate; `make serve-demo` boots the dsmtxd job server, drives ~50
# mixed verified jobs through the HTTP API with dsmtxload, and requires a
# clean SIGTERM drain.

.PHONY: verify test bench-host bench-host-baseline trace-demo resilience-demo host-demo host-trace-demo shard-demo net-demo serve-demo

verify:
	./verify.sh

test:
	go test ./...

# Record the host benchmarks under a label (override: make bench-host LABEL=pr2).
# The serving-path load row rides along: a high-concurrency dsmtxload burst
# against a live dsmtxd serve appends throughput, p50/p99/p999 latency, and
# cache behaviour to BENCH_host.json under the same label.
LABEL ?= current
bench-host:
	go run ./tools/benchhost -label $(LABEL)
	JOBS=200 CLIENTS=120 MAXJOBS=0 DISTINCT=8 OUT=BENCH_host.json LABEL=$(LABEL)-load ./scripts/serve-demo.sh

# Generate a sample virtual-time trace from the example compressor and
# validate the Chrome trace-event JSON; load trace-demo.json in Perfetto
# (ui.perfetto.dev) to browse it. CI runs this to keep the export loadable.
trace-demo:
	go run ./examples/compress -trace trace-demo.json
	go run ./tools/tracecheck trace-demo.json

# Run crc32 live on the host backend (real goroutines, wall clock, same
# protocol) with enough misspeculation to force real recovery, and require
# the output checksum to verify against the vtime sequential reference.
# The timeout bounds the run: the host backend has no virtual-time horizon.
host-demo:
	timeout 60 go run ./cmd/dsmtxrun -bench crc32 -cores 8 -misspec 0.02 -backend host | tee /dev/stderr | grep -q VERIFIED

# Same live host run with the wall-clock tracer attached: the exported
# Chrome trace must carry the "clock":"wall" marker, per-track monotone
# timestamps, and only vocabulary names — tracecheck enforces all three.
host-trace-demo:
	timeout 60 go run ./cmd/dsmtxrun -bench crc32 -cores 8 -misspec 0.02 -backend host \
		-trace host-trace-demo.json | tee /dev/stderr | grep -q VERIFIED
	go run ./tools/tracecheck host-trace-demo.json

# Run crc32 live on the host backend with the commit pipeline sharded
# across four commit units (consistent-hash page ownership, ordered
# cross-shard votes) and enough misspeculation to force cross-shard
# recovery; the output checksum must still verify against the vtime
# sequential reference.
shard-demo:
	timeout 60 go run ./cmd/dsmtxrun -bench crc32 -cores 16 -commit-shards 4 -misspec 0.02 -backend host | tee /dev/stderr | grep -q VERIFIED

# Run 164.gzip as a real distributed job on the net backend: the
# coordinator forks two dsmtxd daemon processes on loopback, ranks talk TCP
# through the wire protocol, and the committed checksum must verify against
# the vtime sequential reference.
net-demo:
	timeout 120 go run ./cmd/dsmtxrun -bench 164.gzip -cores 11 -backend net -net-daemons 2 | tee /dev/stderr | grep -q VERIFIED

# Boot the dsmtxd job server on a loopback ephemeral port, drive ~50 mixed
# host-backend jobs through the JSON/HTTP API with dsmtxload (every
# checksum verified against the sequential reference, duplicates served by
# the result cache), then SIGTERM the server and require a clean drain.
serve-demo:
	timeout 300 ./scripts/serve-demo.sh

# Run crc32 under message loss plus a mid-run worker crash, verify the
# output checksum against the sequential reference, and validate the trace:
# the resilience vocabulary (fault.crash, recovery.redispatch, retransmits)
# must survive the Chrome export round-trip.
resilience-demo:
	go run ./cmd/dsmtxrun -bench crc32 -cores 16 \
		-faults drop=0.005,crash=r1@2ms+200us -fault-seed 7 \
		-trace resilience-demo.json
	go run ./tools/tracecheck resilience-demo.json
