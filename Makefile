# Development entry points. `make verify` is the tier-1 gate; `make
# bench-host` records the host-side perf trajectory in BENCH_host.json;
# `make trace-demo` produces and validates a sample Perfetto timeline.

.PHONY: verify test bench-host bench-host-baseline trace-demo

verify:
	./verify.sh

test:
	go test ./...

# Record the host benchmarks under a label (override: make bench-host LABEL=pr2).
LABEL ?= current
bench-host:
	go run ./tools/benchhost -label $(LABEL)

# Generate a sample virtual-time trace from the example compressor and
# validate the Chrome trace-event JSON; load trace-demo.json in Perfetto
# (ui.perfetto.dev) to browse it. CI runs this to keep the export loadable.
trace-demo:
	go run ./examples/compress -trace trace-demo.json
	go run ./tools/tracecheck trace-demo.json
