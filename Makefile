# Development entry points. `make verify` is the tier-1 gate; `make
# bench-host` records the host-side perf trajectory in BENCH_host.json.

.PHONY: verify test bench-host bench-host-baseline

verify:
	./verify.sh

test:
	go test ./...

# Record the host benchmarks under a label (override: make bench-host LABEL=pr2).
LABEL ?= current
bench-host:
	go run ./tools/benchhost -label $(LABEL)
