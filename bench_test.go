// Benchmarks regenerating the paper's evaluation, one per table and figure
// (plus ablations of the design choices DESIGN.md calls out). Each
// iteration runs a full simulated-cluster execution; custom metrics report
// what the paper's figures plot — speedup over sequential, bandwidth,
// recovery overhead — alongside the usual host-side ns/op.
//
// Run: go test -bench=. -benchmem
package dsmtx_test

import (
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/harness"
	"dsmtx/internal/sim"
	"dsmtx/internal/workloads"
)

// benchInput is the evaluation input at scale 1.
func benchInput() workloads.Input { return workloads.DefaultInput() }

// seqTimes caches sequential baselines per benchmark (they are
// deterministic).
var seqTimes = map[string]sim.Time{}

func seqTime(b *testing.B, bench *workloads.Benchmark) sim.Time {
	if t, ok := seqTimes[bench.Name]; ok {
		return t
	}
	t, _, err := workloads.RunSequentialRef(bench, benchInput())
	if err != nil {
		b.Fatal(err)
	}
	seqTimes[bench.Name] = t
	return t
}

// BenchmarkFigure1 regenerates Fig. 1: cycles/iteration for DSWP and
// DOACROSS at communication latencies 1 and 2.
func BenchmarkFigure1(b *testing.B) {
	for _, lat := range []int{1, 2} {
		b.Run(map[int]string{1: "latency1", 2: "latency2"}[lat], func(b *testing.B) {
			var r harness.Fig1Result
			for i := 0; i < b.N; i++ {
				r = harness.RunFigure1(lat)
			}
			b.ReportMetric(r.DOACROSS, "DOACROSS-cyc/iter")
			b.ReportMetric(r.DSWP, "DSWP-cyc/iter")
		})
	}
}

// BenchmarkFigure4 regenerates one point of each Fig. 4 panel: speedup of
// the DSMTX and TLS parallelizations at 64 cores, for every benchmark.
func BenchmarkFigure4(b *testing.B) {
	const cores = 64
	for _, bench := range workloads.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			seq := seqTime(b, bench)
			var dsmtxRes, tlsRes workloads.Result
			for i := 0; i < b.N; i++ {
				var err error
				dsmtxRes, err = workloads.RunParallel(bench, benchInput(), workloads.DSMTX, cores, nil)
				if err != nil {
					b.Fatal(err)
				}
				tlsRes, err = workloads.RunParallel(bench, benchInput(), workloads.TLS, cores, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seq.Seconds()/dsmtxRes.Elapsed.Seconds(), "DSMTX-speedup")
			b.ReportMetric(seq.Seconds()/tlsRes.Elapsed.Seconds(), "TLS-speedup")
		})
	}
}

// BenchmarkFigure5a regenerates Fig. 5(a): the application bandwidth
// requirement under Spec-DSWP, at the plan's minimum core count.
func BenchmarkFigure5a(b *testing.B) {
	for _, name := range []string{"164.gzip", "256.bzip2", "197.parser", "swaptions"} {
		name := name
		b.Run(name, func(b *testing.B) {
			bench, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var row harness.Fig5aRow
			for i := 0; i < b.N; i++ {
				row, err = harness.RunFigure5a(bench, benchInput())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.KBps[0], "kBps")
			b.ReportMetric(row.KBps[len(row.KBps)-1], "kBps-at+3cores")
		})
	}
}

// BenchmarkFigure5b regenerates Fig. 5(b): speedup with batched queues
// versus flushing every produce (direct MPI_Send), at 64 cores.
func BenchmarkFigure5b(b *testing.B) {
	for _, name := range []string{"197.parser", "456.hmmer", "130.li"} {
		name := name
		b.Run(name, func(b *testing.B) {
			bench, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var row harness.Fig5bRow
			for i := 0; i < b.N; i++ {
				row, err = harness.RunFigure5b(bench, benchInput(), 64)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Optimized, "optimized-speedup")
			b.ReportMetric(row.NonOptimized, "nonoptimized-speedup")
		})
	}
}

// BenchmarkFigure6 regenerates Fig. 6: recovery overhead at a 0.1%
// misspeculation rate, 64 cores, reporting the phase breakdown.
func BenchmarkFigure6(b *testing.B) {
	for _, name := range harness.Fig6Benches() {
		name := name
		b.Run(name, func(b *testing.B) {
			bench, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var row harness.Fig6Row
			for i := 0; i < b.N; i++ {
				row, err = harness.RunFigure6(bench, benchInput(), 0.001, 64)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Clean, "clean-speedup")
			b.ReportMetric(row.MIS, "MIS-speedup")
			b.ReportMetric(row.RFP*1e6, "RFP-us")
			b.ReportMetric(row.SEQ*1e6, "SEQ-us")
			b.ReportMetric(row.FLQ*1e6, "FLQ-us")
			b.ReportMetric(row.ERM*1e6, "ERM-us")
		})
	}
}

// BenchmarkQueueBandwidth regenerates the §5.3 micro-measurement behind
// Fig. 5(b): sustained MB/s through a DSMTX queue vs raw MPI primitives
// (paper: 480.7 vs 13.1 / 12.7 / 8.1).
func BenchmarkQueueBandwidth(b *testing.B) {
	var r harness.MicroResult
	for i := 0; i < b.N; i++ {
		r = harness.RunMicroQueue()
	}
	b.ReportMetric(r.QueueMBps, "queue-MBps")
	b.ReportMetric(r.SendMBps, "MPI_Send-MBps")
	b.ReportMetric(r.BsendMBps, "MPI_Bsend-MBps")
	b.ReportMetric(r.IsendMBps, "MPI_Isend-MBps")
}

// BenchmarkTable1Operations measures the Table 1 runtime operations
// themselves: committed MTX throughput of a minimal pipeline — the floor
// under every Fig. 4 curve.
func BenchmarkTable1Operations(b *testing.B) {
	bench, err := workloads.ByName("crc32")
	if err != nil {
		b.Fatal(err)
	}
	var res workloads.Result
	for i := 0; i < b.N; i++ {
		res, err = workloads.RunParallel(bench, benchInput(), workloads.DSMTX, 16, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Committed)/res.Elapsed.Seconds(), "MTX-commits/s")
	b.ReportMetric(float64(res.Events), "sim-events")
}

// --- Ablations (design choices from DESIGN.md §6) ---

// BenchmarkAblationBatchSize sweeps the queue batch threshold — the lever
// behind Fig. 5(b) (bigger batches amortize MPI call overhead) and Fig. 6
// (bigger batches waste more work on rollback).
func BenchmarkAblationBatchSize(b *testing.B) {
	bench, err := workloads.ByName("197.parser")
	if err != nil {
		b.Fatal(err)
	}
	seq := seqTime(b, bench)
	for _, batch := range []int{0, 512, 4096, 32768} {
		batch := batch
		name := map[bool]string{true: "unbatched", false: ""}[batch == 0]
		if name == "" {
			name = "batch" + itoa(batch)
		}
		b.Run(name, func(b *testing.B) {
			var res workloads.Result
			for i := 0; i < b.N; i++ {
				res, err = workloads.RunParallel(bench, benchInput(), workloads.DSMTX, 64,
					func(cfg *core.Config) { cfg.Queue.BatchBytes = batch })
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seq.Seconds()/res.Elapsed.Seconds(), "speedup")
		})
	}
}

// BenchmarkAblationCOAPrefetch sweeps Copy-On-Access read-ahead: 1 page is
// the paper's base mechanism; larger windows amortize round trips for
// streaming access (gzip's input).
func BenchmarkAblationCOAPrefetch(b *testing.B) {
	bench, err := workloads.ByName("164.gzip")
	if err != nil {
		b.Fatal(err)
	}
	seq := seqTime(b, bench)
	for _, pages := range []int{1, 4, 16} {
		pages := pages
		b.Run("pages"+itoa(pages), func(b *testing.B) {
			var res workloads.Result
			for i := 0; i < b.N; i++ {
				res, err = workloads.RunParallel(bench, benchInput(), workloads.DSMTX, 32,
					func(cfg *core.Config) { cfg.COAPrefetch = pages })
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seq.Seconds()/res.Elapsed.Seconds(), "speedup")
		})
	}
}

// BenchmarkAblationCOAGranularity demonstrates §4.2's claim that
// Copy-On-Access "can be prohibitive if done at a word granularity": the
// same run with page-granularity transfers vs 64-byte and 8-byte chunks
// (each chunk a full round trip).
func BenchmarkAblationCOAGranularity(b *testing.B) {
	bench, err := workloads.ByName("197.parser")
	if err != nil {
		b.Fatal(err)
	}
	seq := seqTime(b, bench)
	for _, grain := range []int{0, 64, 8} {
		grain := grain
		name := "page"
		if grain > 0 {
			name = itoa(grain) + "B"
		}
		b.Run(name, func(b *testing.B) {
			var res workloads.Result
			for i := 0; i < b.N; i++ {
				res, err = workloads.RunParallel(bench, benchInput(), workloads.DSMTX, 32,
					func(cfg *core.Config) { cfg.COAGrainBytes = grain })
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seq.Seconds()/res.Elapsed.Seconds(), "speedup")
		})
	}
}

// BenchmarkAblationMarkerFlush sweeps how many iterations of
// validation/commit stream batch per flush — the decoupling of the
// try-commit/commit units from the workers' critical path (§3.2): flushing
// every iteration puts MPI receive overhead on the commit rate.
func BenchmarkAblationMarkerFlush(b *testing.B) {
	bench, err := workloads.ByName("052.alvinn")
	if err != nil {
		b.Fatal(err)
	}
	seq := seqTime(b, bench)
	for _, every := range []int{1, 8, 64} {
		every := every
		b.Run("every"+itoa(every), func(b *testing.B) {
			var res workloads.Result
			for i := 0; i < b.N; i++ {
				res, err = workloads.RunParallel(bench, benchInput(), workloads.DSMTX, 64,
					func(cfg *core.Config) { cfg.MarkerFlushIters = every })
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seq.Seconds()/res.Elapsed.Seconds(), "speedup")
		})
	}
}

// BenchmarkAblationTryCommitShards sweeps the number of try-commit units —
// the §3.2 parallelization of validation ("the algorithms of the
// try-commit unit ... are parallelizable"). The paper found one unit
// sufficient for most benchmarks; the sweep shows where the tradeoff sits
// (each shard takes a core from the worker pool).
func BenchmarkAblationTryCommitShards(b *testing.B) {
	bench, err := workloads.ByName("197.parser")
	if err != nil {
		b.Fatal(err)
	}
	seq := seqTime(b, bench)
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run("shards"+itoa(shards), func(b *testing.B) {
			var res workloads.Result
			for i := 0; i < b.N; i++ {
				res, err = workloads.RunParallel(bench, benchInput(), workloads.DSMTX, 64,
					func(cfg *core.Config) { cfg.TryCommitUnits = shards })
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seq.Seconds()/res.Elapsed.Seconds(), "speedup")
		})
	}
}

// BenchmarkAblationLatency sweeps inter-node latency on a pipelined
// workload: the Spec-DSWP curve should barely move (the Fig. 1 argument at
// application scale).
func BenchmarkAblationLatency(b *testing.B) {
	bench, err := workloads.ByName("456.hmmer")
	if err != nil {
		b.Fatal(err)
	}
	seq := seqTime(b, bench)
	for _, us := range []int{2, 8, 32} {
		us := us
		b.Run("latency"+itoa(us)+"us", func(b *testing.B) {
			var res workloads.Result
			for i := 0; i < b.N; i++ {
				res, err = workloads.RunParallel(bench, benchInput(), workloads.DSMTX, 64,
					func(cfg *core.Config) { cfg.Cluster.InterNodeLatency = sim.Duration(us) * sim.Microsecond })
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seq.Seconds()/res.Elapsed.Seconds(), "speedup")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
