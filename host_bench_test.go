// Host-side performance benchmarks. Unlike the Benchmark* functions in
// bench_test.go — whose interesting output is virtual-time speedup — these
// measure the simulator's own wall-clock and allocation behaviour: the
// metrics the perf trajectory in BENCH_host.json tracks across PRs (run
// `make bench-host`). Bigger simulated machines and inputs are only
// reachable by driving these numbers down.
//
// Run: go test -run '^$' -bench BenchmarkHost -benchmem
package dsmtx_test

import (
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

// hostPoint runs one Figure-4-style point (one full simulated-cluster
// execution) per benchmark iteration, so ns/op and allocs/op describe the
// host cost of a complete run. tune, if non-nil, adjusts each run's config
// (the traced variants attach an observability tracer through it).
func hostPoint(b *testing.B, name string, paradigm workloads.Paradigm, cores int, tune func(*core.Config)) {
	b.Helper()
	bench, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	in := workloads.DefaultInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := workloads.RunParallel(bench, in, paradigm, cores, tune)
		if err != nil {
			b.Fatal(err)
		}
		if res.Committed == 0 {
			b.Fatalf("%s: no commits", name)
		}
	}
}

// BenchmarkHostGzipFigure4Point is the headline host benchmark: 164.gzip
// under Spec-DSWP at 32 cores — the bulk-data pipeline whose word and
// queue traffic dominates Figure 4 sweeps.
func BenchmarkHostGzipFigure4Point(b *testing.B) {
	hostPoint(b, "164.gzip", workloads.DSMTX, 32, nil)
}

// BenchmarkHostGzip128 is the same run at the paper's full 128 cores:
// more processes, more queues, more polling.
func BenchmarkHostGzip128(b *testing.B) {
	hostPoint(b, "164.gzip", workloads.DSMTX, 128, nil)
}

// BenchmarkHostGzip128Traced is BenchmarkHostGzip128 with a metrics-only
// tracer attached: comparing its ns/op against the untraced row bounds the
// cost of the resolved-handle instrumentation on the hot paths (the pr
// acceptance budget is <= 5% overhead).
func BenchmarkHostGzip128Traced(b *testing.B) {
	hostPoint(b, "164.gzip", workloads.DSMTX, 128, func(cfg *core.Config) {
		cfg.Tracer = trace.NewMetricsOnly()
	})
}

// BenchmarkHostBackendGzip32 runs 164.gzip live on the host backend (real
// goroutines, wall clock); the Traced variant adds the wall-clock tracer
// and the delivery-layer instrumentation it enables, so the pair bounds
// host tracing overhead end to end.
func BenchmarkHostBackendGzip32(b *testing.B) {
	hostPoint(b, "164.gzip", workloads.DSMTX, 32, func(cfg *core.Config) {
		cfg.Backend = core.BackendHost
	})
}

func BenchmarkHostBackendGzip32Traced(b *testing.B) {
	hostPoint(b, "164.gzip", workloads.DSMTX, 32, func(cfg *core.Config) {
		cfg.Backend = core.BackendHost
		cfg.Tracer = trace.NewMetricsOnly()
	})
}

// BenchmarkHostCrc32Figure4Point exercises the DSWP+[Spec-DOALL,S] shape:
// block reads with a sequential reduction stage.
func BenchmarkHostCrc32Figure4Point(b *testing.B) {
	hostPoint(b, "crc32", workloads.DSMTX, 32, nil)
}

// BenchmarkHostSwaptionsTLS exercises the TLS runtime's host path.
func BenchmarkHostSwaptionsTLS(b *testing.B) {
	hostPoint(b, "swaptions", workloads.TLS, 32, nil)
}
