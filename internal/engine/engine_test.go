package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"dsmtx/internal/expsched"
	"dsmtx/internal/workloads"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// crc32Spec is the cheap vtime job the behavioural tests run.
func crc32Spec(seed uint64) JobSpec {
	return JobSpec{Bench: "crc32", Cores: 8, Seed: seed}
}

// TestAdmitQueueFull: with one slot running and the queue at depth, the
// next admission is rejected immediately with the typed overload error.
func TestAdmitQueueFull(t *testing.T) {
	e := New(Config{MaxConcurrent: 1, QueueDepth: 2})
	release, err := e.admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		go func() {
			r, err := e.admit(context.Background(), 1)
			if err == nil {
				r()
			}
		}()
	}
	waitFor(t, "queue to fill", func() bool { return e.Stats().Queued == 2 })
	_, err = e.admit(context.Background(), 1)
	var over *ErrOverloaded
	if !errors.As(err, &over) {
		t.Fatalf("err = %v, want *ErrOverloaded", err)
	}
	if e.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d", e.Stats().Rejected)
	}
	release()
	waitFor(t, "queue to drain", func() bool {
		s := e.Stats()
		return s.Queued == 0 && s.Running == 0
	})
}

// TestAdmitCoreBudget: core accounting admits what fits, queues what does
// not, and rejects outright a job bigger than the whole budget.
func TestAdmitCoreBudget(t *testing.T) {
	e := New(Config{CoreBudget: 8})
	if _, err := e.admit(context.Background(), 9); err == nil {
		t.Fatal("9 cores must never fit a budget of 8")
	}
	rel4, err := e.admit(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rel3, err := e.admit(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().CoresInUse; got != 7 {
		t.Fatalf("cores in use = %d, want 7", got)
	}
	// 2 more cores do not fit 7/8: the admission parks in the queue.
	granted := make(chan func(), 1)
	go func() {
		r, err := e.admit(context.Background(), 2)
		if err == nil {
			granted <- r
		}
	}()
	waitFor(t, "2-core job to queue", func() bool { return e.Stats().Queued == 1 })
	select {
	case <-granted:
		t.Fatal("2-core job admitted over budget")
	case <-time.After(20 * time.Millisecond):
	}
	rel3()
	var rel2 func()
	select {
	case rel2 = <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued job not granted after release")
	}
	if got := e.Stats().CoresInUse; got != 6 {
		t.Fatalf("cores in use = %d, want 6 (4 running + 2 granted)", got)
	}
	rel4()
	rel2()
	if got := e.Stats().CoresInUse; got != 0 {
		t.Fatalf("cores in use after release = %d", got)
	}
}

// TestAdmitFIFO: a small job arriving behind a large queued job waits for
// it (head-of-line blocking is the fairness guarantee: a stream of small
// jobs can never starve a large one).
func TestAdmitFIFO(t *testing.T) {
	e := New(Config{CoreBudget: 8})
	rel6, err := e.admit(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	enqueue := func(name string, cores int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := e.admit(context.Background(), cores)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			order <- name
			r()
		}()
	}
	enqueue("big", 8)
	waitFor(t, "big to queue", func() bool { return e.Stats().Queued == 1 })
	enqueue("small", 1)
	waitFor(t, "small to queue", func() bool { return e.Stats().Queued == 2 })
	// The small job fits right now (6+1 <= 8) but must wait behind big —
	// and big needs the whole budget, so the grant order is observable.
	select {
	case name := <-order:
		t.Fatalf("%s admitted past the queue head", name)
	case <-time.After(20 * time.Millisecond):
	}
	rel6()
	wg.Wait()
	if first := <-order; first != "big" {
		t.Fatalf("first grant = %s, want big", first)
	}
}

// TestAdmitCancelledHead: a cancelled ticket at the queue head must not
// block the tickets behind it.
func TestAdmitCancelledHead(t *testing.T) {
	e := New(Config{MaxConcurrent: 1})
	release, err := e.admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, err := e.admit(ctx, 1)
		headErr <- err
	}()
	waitFor(t, "head to queue", func() bool { return e.Stats().Queued == 1 })
	granted := make(chan func(), 1)
	go func() {
		r, err := e.admit(context.Background(), 1)
		if err == nil {
			granted <- r
		}
	}()
	waitFor(t, "second to queue", func() bool { return e.Stats().Queued == 2 })
	cancel()
	if err := <-headErr; err != context.Canceled {
		t.Fatalf("cancelled head err = %v", err)
	}
	release()
	select {
	case r := <-granted:
		r()
	case <-time.After(5 * time.Second):
		t.Fatal("ticket behind a cancelled head never granted")
	}
}

// TestSubmitVTimeMatchesDirect: the engine is a pure refactor of the
// pre-engine call path — a vtime job through Submit returns exactly what
// workloads.RunParallel returns directly.
func TestSubmitVTimeMatchesDirect(t *testing.T) {
	spec := crc32Spec(7).Normalized()
	e := New(Config{})
	defer e.Close()
	got, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.ByName(spec.Bench)
	if err != nil {
		t.Fatal(err)
	}
	want, err := workloads.RunParallel(b, spec.input(), spec.paradigm(), spec.Cores, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, want) {
		t.Fatalf("engine result diverges from direct RunParallel:\n got %+v\nwant %+v", got.Result, want)
	}
	if got.Source != "run" {
		t.Fatalf("source = %q", got.Source)
	}
}

// TestSubmitVerify: a Verify job resolves the sequential reference and
// reports the checksum match.
func TestSubmitVerify(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	spec := crc32Spec(3)
	spec.Verify = true
	res, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.SeqCheck == 0 || res.Checksum != res.SeqCheck {
		t.Fatalf("verify: %+v", res)
	}
	if res.SeqTime == 0 {
		t.Fatal("verify must carry the sequential reference time")
	}
}

// TestSubmitCache: a configured cache serves the second submission of a
// spec without re-running it, bit-exactly.
func TestSubmitCache(t *testing.T) {
	cache, err := expsched.OpenCache(t.TempDir(), "enginetest")
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Cache: cache})
	defer e.Close()
	spec := crc32Spec(5)
	first, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != "cache" {
		t.Fatalf("second source = %q, want cache", second.Source)
	}
	first.Source, second.Source = "", ""
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache round trip not bit-exact:\n got %+v\nwant %+v", second, first)
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.Completed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if cs, ok := e.CacheStats(); !ok || cs.Entries == 0 {
		t.Fatalf("cache stats = %+v, %v", cs, ok)
	}
}

// TestSubmitStorm: a storm of concurrent duplicate submissions — the
// race-detector gate for the engine's admission, singleflight, and stats
// paths. Every submission must succeed with the identical deterministic
// result, and duplicates in flight must coalesce rather than re-run.
func TestSubmitStorm(t *testing.T) {
	e := New(Config{MaxConcurrent: 4, QueueDepth: 256})
	defer e.Close()
	const n = 32
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Two distinct specs interleaved; duplicates of each coalesce.
			results[i], errs[i] = e.Submit(context.Background(), crc32Spec(uint64(i%2)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 2; i < n; i++ {
		if results[i].Checksum != results[i%2].Checksum {
			t.Fatalf("checksum %d diverges: %x vs %x", i, results[i].Checksum, results[i%2].Checksum)
		}
	}
	st := e.Stats()
	if st.Submitted != n || st.Completed != n || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Coalesced == 0 {
		t.Fatalf("no coalescing across %d duplicate submissions: %+v", n, st)
	}
	if st.Running != 0 || st.Queued != 0 || st.CoresInUse != 0 {
		t.Fatalf("engine not quiescent: %+v", st)
	}
}

// TestDrainRejects: after Drain, submissions fail with the typed error.
func TestDrainRejects(t *testing.T) {
	e := New(Config{MaxConcurrent: 1})
	e.Drain()
	if _, err := e.Submit(context.Background(), crc32Spec(1)); err != ErrDraining {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

// TestSubmitValidates: broken specs are rejected before admission.
func TestSubmitValidates(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	for _, spec := range []JobSpec{
		{},                          // no bench
		{Bench: "no-such-bench"},    // unknown bench
		{Bench: "crc32", Cores: -1}, // bad core count
		{Bench: "crc32", Cores: 8, Knob: "warp-drive"},                  // unknown knob
		{Bench: "crc32", Cores: 8, Paradigm: "openmp"},                  // unknown paradigm
		{Bench: "crc32", Cores: 8, Backend: "host", Faults: "drop=0.5"}, // faults are vtime-only
	} {
		if _, err := e.Submit(context.Background(), spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if st := e.Stats(); st.Completed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
