package engine

import (
	"sync"

	"dsmtx/internal/core"
)

// poolKey identifies a warm rank set's shape: everything that decides the
// layout NewSystem built (plan comes with the benchmark+paradigm; cores
// and commit shards fix the rank split). Input scale, seed, and misspec
// rate only shape the program, which Reset swaps freely.
type poolKey struct {
	bench    string
	paradigm string
	cores    int
	shards   int
}

// hostPools parks finished host systems for reuse: a bounded free list per
// key. Systems hold no OS resources (their goroutines have exited), so
// overflow is simply dropped for the GC.
type hostPools struct {
	mu     sync.Mutex
	perKey int
	m      map[poolKey][]*core.System
}

// get pops a warm system for the key, or nil.
func (p *hostPools) get(k poolKey) *core.System {
	p.mu.Lock()
	defer p.mu.Unlock()
	free := p.m[k]
	if len(free) == 0 {
		return nil
	}
	sys := free[len(free)-1]
	p.m[k] = free[:len(free)-1]
	return sys
}

// put parks a finished system, dropping it when the key's list is full.
func (p *hostPools) put(k poolKey, sys *core.System) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[poolKey][]*core.System)
	}
	if len(p.m[k]) >= p.perKey {
		return
	}
	p.m[k] = append(p.m[k], sys)
}

// drop empties every pool.
func (p *hostPools) drop() {
	p.mu.Lock()
	p.m = nil
	p.mu.Unlock()
}
