package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"dsmtx/internal/expsched"
)

// Server exposes an Engine over JSON/HTTP — the `dsmtxd serve` job-serving
// path. The protocol is three endpoints:
//
//	POST /jobs        submit a JobSpec; ?wait=1 blocks for the Result,
//	                  otherwise 202 + {"id": N} and the job runs detached
//	GET  /jobs/{id}   a detached job's status and, once done, its Result
//	GET  /stats       engine counters plus the result cache footprint
//
// Admission rejections map to 503 (clients back off and retry), spec
// errors to 400, execution failures to 500.
type Server struct {
	eng *Engine

	// DefaultBackend, when non-empty, fills a submitted spec's empty
	// Backend field (dsmtxd serve defaults to "host": a job server exists
	// to run live jobs, while the engine's own default is the simulator).
	DefaultBackend string

	mu     sync.Mutex
	nextID uint64
	jobs   map[uint64]*jobStatus
	wg     sync.WaitGroup // detached jobs in flight
}

// jobStatus tracks one detached submission.
type jobStatus struct {
	ID     uint64  `json:"id"`
	Spec   JobSpec `json:"spec"`
	State  string  `json:"state"` // "running", "done", "failed"
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// NewServer wraps an engine.
func NewServer(eng *Engine) *Server {
	return &Server{eng: eng, jobs: make(map[uint64]*jobStatus)}
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobByID)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// Drain waits for every detached job to finish. The caller is responsible
// for first stopping new submissions (http.Server.Shutdown unblocks after
// in-flight handlers return, and the engine itself rejects with ErrDraining
// once Engine.Drain/Close has begun).
func (s *Server) Drain() { s.wg.Wait() }

// statsReply is the /stats body.
type statsReply struct {
	Engine Stats                `json:"engine"`
	Cache  *expsched.CacheStats `json:"cache,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	reply := statsReply{Engine: s.eng.Stats()}
	if st, ok := s.eng.CacheStats(); ok {
		reply.Cache = &st
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JobSpec to /jobs")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	if spec.Backend == "" && spec.Kind != KindSeq && s.DefaultBackend != "" {
		spec.Backend = s.DefaultBackend
	}
	spec = spec.Normalized()
	// Validate before submitting so spec errors are 400s; the engine
	// re-validates but its error would be indistinguishable from an
	// execution failure here.
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	if r.URL.Query().Get("wait") == "1" {
		res, err := s.eng.Submit(r.Context(), spec)
		if err != nil {
			httpError(w, submitStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}

	s.mu.Lock()
	s.nextID++
	st := &jobStatus{ID: s.nextID, Spec: spec, State: "running"}
	s.jobs[st.ID] = st
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Detached jobs outlive their HTTP request, so they are admitted
		// without a cancellation context.
		res, err := s.eng.Submit(context.Background(), st.Spec)
		s.mu.Lock()
		if err != nil {
			st.State = "failed"
			st.Error = err.Error()
		} else {
			st.State = "done"
			st.Result = &res
		}
		s.mu.Unlock()
	}()
	writeJSON(w, http.StatusAccepted, map[string]uint64{"id": st.ID})
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id "+idStr)
		return
	}
	s.mu.Lock()
	st, ok := s.jobs[id]
	var snapshot jobStatus
	if ok {
		snapshot = *st
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, snapshot)
}

// submitStatus maps a Submit error to its HTTP status: admission pressure
// is retryable (503), anything else failed for good (500 — the spec was
// already validated).
func submitStatus(err error) int {
	var over *ErrOverloaded
	if errors.As(err, &over) || errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
