// Package engine owns the job lifecycle that was previously smeared across
// the harness, the netrun coordinator, and the CLIs: a JobSpec names one
// benchmark execution completely (workload, paradigm, backend, input scale,
// config knobs), Engine.Submit runs it with bounded admission, warm
// worker-pool placement, and a content-addressed result cache, and every
// caller — figure sweeps, dsmtxrun, the dsmtxd job server — is a thin
// client of Submit.
package engine

import (
	"encoding/json"
	"fmt"

	"dsmtx/internal/cluster"
	"dsmtx/internal/core"
	"dsmtx/internal/faults"
	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

// Job kinds.
const (
	KindParallel = "parallel" // one parallel benchmark run (the default)
	KindSeq      = "seq"      // the sequential vtime reference
)

// Named configuration variations. A cache key must capture everything that
// changes a result and an opaque tune closure cannot be hashed, so every
// variation a client may request is registered here by name (the harness's
// knob vocabulary).
const (
	KnobNone       = ""
	KnobQueueUnopt = "queue-unopt" // Fig. 5b: flush every produce
	KnobManycore   = "manycore"    // §7: coherence-free manycore machine model
	KnobBigCluster = "bigcluster"  // Figure S: 64 × 16 cores, same InfiniBand
)

// KnobTune resolves a knob name to its configuration hook (nil for
// KnobNone).
func KnobTune(knob string) (func(*core.Config), error) {
	switch knob {
	case KnobNone:
		return nil, nil
	case KnobQueueUnopt:
		return func(cfg *core.Config) { cfg.Queue = cfg.Queue.Unoptimized() }, nil
	case KnobManycore:
		return func(cfg *core.Config) { cfg.Cluster = cluster.ManycoreConfig() }, nil
	case KnobBigCluster:
		return func(cfg *core.Config) { cfg.Cluster = cluster.BigClusterConfig() }, nil
	}
	return nil, fmt.Errorf("engine: unknown config knob %q", knob)
}

// JobSpec is the complete identity of one job: everything that can change
// its result, and nothing else. It is comparable (the singleflight key)
// and marshals to canonical JSON (struct field order is fixed), which —
// prefixed by the source fingerprint — addresses the result cache. It is a
// superset of the harness's PointSpec: the same fields plus the execution
// backend, an invocation override, and the verify flag the serving path
// uses.
type JobSpec struct {
	Kind     string  `json:"kind"`
	Bench    string  `json:"bench,omitempty"`
	Paradigm string  `json:"paradigm,omitempty"`
	Backend  string  `json:"backend,omitempty"`
	Cores    int     `json:"cores,omitempty"`
	Scale    int     `json:"scale,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Knob     string  `json:"knob,omitempty"`
	// Faults is a canonical faults.Plan spec string (faults.Plan.Format),
	// empty for fault-free jobs. Canonical form matters: two spellings of
	// one plan must not split cache entries.
	Faults string `json:"faults,omitempty"`
	// CommitShards partitions the commit pipeline; 0 or 1 is the paper's
	// single commit unit.
	CommitShards int `json:"commit_shards,omitempty"`
	// Invocations overrides the benchmark's invocation count when > 0
	// (load tests use 1 to bound job size).
	Invocations int `json:"invocations,omitempty"`
	// Verify asks the engine to also resolve the sequential vtime
	// reference and report whether the parallel checksum matches — the
	// serving path's correctness gate.
	Verify bool `json:"verify,omitempty"`
}

// Normalized returns the spec in canonical form: defaults made explicit
// where they change identity (kind, paradigm, backend, scale) so
// equivalent submissions share one cache entry and one singleflight slot.
func (s JobSpec) Normalized() JobSpec {
	if s.Kind == "" {
		s.Kind = KindParallel
	}
	if s.Kind == KindSeq {
		// The sequential reference always runs in vtime on one core;
		// paradigm, backend, cores, and shards do not apply.
		s.Paradigm, s.Backend, s.Cores, s.CommitShards, s.Invocations = "", "", 0, 0, 0
		s.Verify = false
	} else {
		if s.Paradigm == "" {
			s.Paradigm = workloads.DSMTX.String()
		}
		if s.Backend == "" {
			s.Backend = core.BackendVTime.String()
		}
		if s.CommitShards == 1 {
			s.CommitShards = 0
		}
	}
	if s.Scale <= 0 {
		s.Scale = 1
	}
	return s
}

// seqSpec derives the sequential-reference spec a Verify job resolves.
func (s JobSpec) seqSpec() JobSpec {
	return JobSpec{Kind: KindSeq, Bench: s.Bench, Scale: s.Scale, Seed: s.Seed,
		Rate: s.Rate, Knob: s.Knob}.Normalized()
}

// Validate rejects specs the engine cannot run. The spec must already be
// normalized.
func (s JobSpec) Validate() error {
	if s.Bench == "" {
		return fmt.Errorf("engine: job needs a benchmark name")
	}
	if _, err := workloads.ByName(s.Bench); err != nil {
		return err
	}
	if _, err := KnobTune(s.Knob); err != nil {
		return err
	}
	switch s.Kind {
	case KindSeq:
		return nil
	case KindParallel:
	default:
		return fmt.Errorf("engine: unknown job kind %q", s.Kind)
	}
	if s.Paradigm != workloads.DSMTX.String() && s.Paradigm != workloads.TLS.String() {
		return fmt.Errorf("engine: unknown paradigm %q (have DSMTX, TLS)", s.Paradigm)
	}
	backend, err := core.ParseBackend(s.Backend)
	if err != nil {
		return err
	}
	if s.Cores < 1 {
		return fmt.Errorf("engine: parallel job needs cores >= 1, got %d", s.Cores)
	}
	if s.Faults != "" {
		if backend != core.BackendVTime {
			return fmt.Errorf("engine: fault plans run on the vtime backend only")
		}
		if _, err := faults.Parse(s.Faults); err != nil {
			return err
		}
	}
	if backend == core.BackendNet {
		if s.CommitShards > 1 {
			return fmt.Errorf("engine: commit shards share an in-process image arena; not available on the net backend")
		}
		if s.Paradigm != workloads.DSMTX.String() {
			return fmt.Errorf("engine: the net backend runs the DSMTX paradigm only")
		}
	}
	return nil
}

// backend parses the spec's backend (vtime for seq jobs). The spec must be
// normalized and validated.
func (s JobSpec) backend() core.Backend {
	if s.Kind == KindSeq {
		return core.BackendVTime
	}
	b, _ := core.ParseBackend(s.Backend)
	return b
}

// paradigm parses the spec's paradigm.
func (s JobSpec) paradigm() workloads.Paradigm {
	if s.Paradigm == workloads.TLS.String() {
		return workloads.TLS
	}
	return workloads.DSMTX
}

// coresNeeded is the job's claim against the engine's core budget.
func (s JobSpec) coresNeeded() int {
	if s.Kind == KindSeq {
		return 1
	}
	return s.Cores
}

// input builds the workload input the spec names.
func (s JobSpec) input() workloads.Input {
	return workloads.Input{Scale: s.Scale, Seed: s.Seed, MisspecRate: s.Rate}
}

// String renders a compact human label.
func (s JobSpec) String() string {
	s = s.Normalized()
	if s.Kind == KindSeq {
		return s.Bench + " seq"
	}
	label := fmt.Sprintf("%s %s@%d/%s", s.Bench, s.Paradigm, s.Cores, s.Backend)
	if s.Knob != "" {
		label += "/" + s.Knob
	}
	if s.Faults != "" {
		label += "/" + s.Faults
	}
	if s.CommitShards > 1 {
		label += fmt.Sprintf("/cs%d", s.CommitShards)
	}
	return label
}

// Options carries per-submission settings that are deliberately not part
// of the job's identity: observability sinks cannot be hashed and
// placement does not change results. Any non-zero observability option
// makes the submission uncacheable and unpoolable.
type Options struct {
	// Tracer attaches the trace/metrics registry to the run.
	Tracer *trace.Tracer
	// MTXTrace collects the MTX lifecycle event log (Result.Trace).
	MTXTrace bool
	// NetDaemons is the loopback fleet size a net-backend job spawns when
	// NetJoin is empty (default 2).
	NetDaemons int
	// NetJoin lists already-running daemon addresses to join instead of
	// spawning (last hosts the commit unit).
	NetJoin []string
}

// plain reports whether the submission carries no observability sinks and
// is therefore cacheable and poolable.
func (o Options) plain() bool { return o.Tracer == nil && !o.MTXTrace }

// Result is a completed job's outcome. For parallel jobs the embedded
// workloads.Result carries the run; for seq jobs SeqTime/SeqCheck do.
type Result struct {
	workloads.Result
	// SeqTime/SeqCheck are the sequential reference (seq jobs always;
	// parallel jobs when the spec asked to Verify).
	SeqTime  platform.Duration `json:"seq_time,omitempty"`
	SeqCheck uint64            `json:"seq_check,omitempty"`
	// Verified is true when Verify was requested and the parallel checksum
	// matches the sequential reference.
	Verified bool `json:"verified,omitempty"`
	// Daemons is the net-backend fleet size (0 otherwise).
	Daemons int `json:"daemons,omitempty"`
	// Source tells how the result was satisfied: "run", "cache", or
	// "coalesced" (another in-flight submission of the same spec).
	Source string `json:"source,omitempty"`
	// PoolWarm is true when the run reused a recycled warm rank set.
	PoolWarm bool `json:"pool_warm,omitempty"`
}

// record is the cacheable subset of Result. Stalls and Trace are always
// empty on cacheable submissions (observability options bypass the cache),
// so the round-trip below is lossless.
type record struct {
	Elapsed    platform.Duration     `json:"elapsed"`
	Checksum   uint64                `json:"checksum"`
	Committed  uint64                `json:"committed"`
	Misspecs   uint64                `json:"misspecs"`
	ERM        platform.Duration     `json:"erm,omitempty"`
	FLQ        platform.Duration     `json:"flq,omitempty"`
	SEQ        platform.Duration     `json:"seq,omitempty"`
	RFP        platform.Duration     `json:"rfp,omitempty"`
	Bytes      uint64                `json:"bytes,omitempty"`
	Events     uint64                `json:"events,omitempty"`
	Crashes    uint64                `json:"crashes,omitempty"`
	Redispatch platform.Duration     `json:"redispatch,omitempty"`
	Traffic    platform.TrafficStats `json:"traffic"`
	SeqTime    platform.Duration     `json:"seq_time,omitempty"`
	SeqCheck   uint64                `json:"seq_check,omitempty"`
	Verified   bool                  `json:"verified,omitempty"`
	Daemons    int                   `json:"daemons,omitempty"`
}

func recordOf(res Result) record {
	r := res.Result
	return record{
		Elapsed: r.Elapsed, Checksum: r.Checksum, Committed: r.Committed,
		Misspecs: r.Misspecs, ERM: r.ERM, FLQ: r.FLQ, SEQ: r.SEQ, RFP: r.RFP,
		Bytes: r.Bytes, Events: r.Events, Crashes: r.Crashes, Redispatch: r.Redispatch,
		Traffic: r.Traffic, SeqTime: res.SeqTime, SeqCheck: res.SeqCheck,
		Verified: res.Verified, Daemons: res.Daemons,
	}
}

func (rec record) toResult() Result {
	return Result{
		Result: workloads.Result{
			Elapsed: rec.Elapsed, Checksum: rec.Checksum, Committed: rec.Committed,
			Misspecs: rec.Misspecs, ERM: rec.ERM, FLQ: rec.FLQ, SEQ: rec.SEQ, RFP: rec.RFP,
			Bytes: rec.Bytes, Events: rec.Events, Crashes: rec.Crashes,
			Redispatch: rec.Redispatch, Traffic: rec.Traffic,
		},
		SeqTime: rec.SeqTime, SeqCheck: rec.SeqCheck, Verified: rec.Verified,
		Daemons: rec.Daemons,
	}
}

// CanonicalJSON renders the normalized spec's canonical cache-key JSON.
func (s JobSpec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s.Normalized())
}
