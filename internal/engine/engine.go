package engine

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"

	"dsmtx/internal/core"
	"dsmtx/internal/expsched"
	"dsmtx/internal/faults"
	"dsmtx/internal/mem"
	"dsmtx/internal/netrun"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

// ErrOverloaded is the typed admission rejection: the queue is full or the
// job can never fit the core budget. Clients are expected to back off and
// retry; the server maps it to 503.
type ErrOverloaded struct {
	Reason string
}

func (e *ErrOverloaded) Error() string { return "engine: overloaded: " + e.Reason }

// ErrDraining rejects submissions arriving after Drain/Close began.
var ErrDraining = fmt.Errorf("engine: draining: not accepting new jobs")

// Config sizes an Engine.
type Config struct {
	// MaxConcurrent bounds jobs running at once; <= 0 is unlimited (the
	// harness's own worker pool already bounds its submissions).
	MaxConcurrent int
	// QueueDepth bounds jobs waiting for a slot beyond the running ones;
	// <= 0 defaults to 64. Ignored when MaxConcurrent and CoreBudget are
	// both unlimited.
	QueueDepth int
	// CoreBudget bounds the summed Cores of running jobs (the machine's
	// core budget); <= 0 is unlimited. A job asking for more cores than
	// the whole budget is rejected outright.
	CoreBudget int
	// Cache, when non-nil, serves duplicate specs from the
	// content-addressed result store instead of re-running them.
	Cache *expsched.Cache
	// PoolPerKey bounds idle warm systems kept per pool key; <= 0
	// defaults to 2.
	PoolPerKey int
	// Exe is the binary net-backend jobs re-exec as spawn-local daemons;
	// empty defaults to os.Args[0] (dsmtxrun, dsmtxd, and test binaries
	// all divert into DaemonMain).
	Exe string
	// Metrics, when non-nil, receives the engine's live instruments
	// (engine.jobs.*, engine.pool.*) for the -metrics-addr machinery.
	Metrics *trace.Metrics
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Submitted  uint64 `json:"submitted"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Rejected   uint64 `json:"rejected"`
	CacheHits  uint64 `json:"cache_hits"`
	Coalesced  uint64 `json:"coalesced"`
	PoolReuses uint64 `json:"pool_reuses"`
	PoolBuilds uint64 `json:"pool_builds"`
	Running    int    `json:"running"`
	Queued     int    `json:"queued"`
	CoresInUse int    `json:"cores_in_use"`
}

// Engine executes jobs: bounded admission in FIFO order with per-job core
// accounting, warm worker pools on the host backend, persistent daemon
// fleets on the net backend, and a request-level result cache. The zero
// value is not usable; construct with New.
type Engine struct {
	cfg   Config
	exe   string
	pools *hostPools

	mu         sync.Mutex
	cond       *sync.Cond // broadcast on job completion (Drain waits on it)
	queue      []*ticket
	running    int
	coresInUse int
	draining   bool
	stats      Stats
	inflight   map[JobSpec]*call
	clusters   map[string]*netCluster

	met *engineMetrics
}

// ticket is one queued admission request.
type ticket struct {
	cores     int
	ready     chan struct{}
	cancelled bool
}

// call is one in-flight cacheable job other submissions of the same spec
// coalesce onto.
type call struct {
	done chan struct{}
	res  Result
	err  error
}

// engineMetrics are the live instruments (nil when Config.Metrics is nil).
type engineMetrics struct {
	cSubmitted *trace.Counter
	cCompleted *trace.Counter
	cFailed    *trace.Counter
	cRejected  *trace.Counter
	cCacheHit  *trace.Counter
	cCoalesced *trace.Counter
	cPoolReuse *trace.Counter
	cPoolBuild *trace.Counter
	gRunning   *trace.Gauge
	gQueued    *trace.Gauge
	gCores     *trace.Gauge
}

// New builds an engine.
func New(cfg Config) *Engine {
	exe := cfg.Exe
	if exe == "" {
		exe = os.Args[0]
	}
	perKey := cfg.PoolPerKey
	if perKey <= 0 {
		perKey = 2
	}
	e := &Engine{
		cfg:      cfg,
		exe:      exe,
		pools:    &hostPools{perKey: perKey},
		inflight: make(map[JobSpec]*call),
		clusters: make(map[string]*netCluster),
	}
	e.cond = sync.NewCond(&e.mu)
	if m := cfg.Metrics; m != nil {
		e.met = &engineMetrics{
			cSubmitted: m.Counter("engine.jobs.submitted"),
			cCompleted: m.Counter("engine.jobs.completed"),
			cFailed:    m.Counter("engine.jobs.failed"),
			cRejected:  m.Counter("engine.jobs.rejected"),
			cCacheHit:  m.Counter("engine.jobs.cachehit"),
			cCoalesced: m.Counter("engine.jobs.coalesced"),
			cPoolReuse: m.Counter("engine.pool.reuse"),
			cPoolBuild: m.Counter("engine.pool.build"),
			gRunning:   m.Gauge("engine.jobs.running"),
			gQueued:    m.Gauge("engine.jobs.queued"),
			gCores:     m.Gauge("engine.cores.inuse"),
		}
	}
	return e
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Running = e.running
	s.Queued = len(e.queue)
	s.CoresInUse = e.coresInUse
	return s
}

// CacheStats reports the result cache's on-disk footprint (zero stats and
// false when no cache is configured).
func (e *Engine) CacheStats() (expsched.CacheStats, bool) {
	if e.cfg.Cache == nil {
		return expsched.CacheStats{}, false
	}
	st, err := e.cfg.Cache.Stats()
	if err != nil {
		return expsched.CacheStats{}, false
	}
	return st, true
}

// queueDepth resolves the configured queue bound.
func (e *Engine) queueDepth() int {
	if e.cfg.QueueDepth <= 0 {
		return 64
	}
	return e.cfg.QueueDepth
}

// bounded reports whether admission control is active at all.
func (e *Engine) bounded() bool { return e.cfg.MaxConcurrent > 0 || e.cfg.CoreBudget > 0 }

// canRunLocked reports whether a job wanting cores fits right now.
func (e *Engine) canRunLocked(cores int) bool {
	if e.cfg.MaxConcurrent > 0 && e.running >= e.cfg.MaxConcurrent {
		return false
	}
	if e.cfg.CoreBudget > 0 && e.coresInUse+cores > e.cfg.CoreBudget {
		return false
	}
	return true
}

// grantLocked accounts a job as running.
func (e *Engine) grantLocked(cores int) {
	e.running++
	e.coresInUse += cores
	if e.met != nil {
		e.met.gRunning.Set(int64(e.running))
		e.met.gCores.Set(int64(e.coresInUse))
	}
}

// dispatchLocked grants queued tickets in strict FIFO order: the head
// blocks everyone behind it until it fits, so a stream of small jobs can
// never starve a large one (FIFO fairness over throughput).
func (e *Engine) dispatchLocked() {
	for len(e.queue) > 0 {
		t := e.queue[0]
		if t.cancelled {
			e.queue = e.queue[1:]
			continue
		}
		if !e.canRunLocked(t.cores) {
			break
		}
		e.queue = e.queue[1:]
		e.grantLocked(t.cores)
		close(t.ready)
	}
	if e.met != nil {
		e.met.gQueued.Set(int64(len(e.queue)))
	}
}

// admit blocks until the job may run (FIFO, within the core budget) and
// returns its release function. Rejections are immediate and typed:
// *ErrOverloaded when the queue is full or the job can never fit,
// ErrDraining after shutdown began.
func (e *Engine) admit(ctx context.Context, cores int) (func(), error) {
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	if !e.bounded() {
		// Unlimited admission: account for Stats/Drain only.
		e.grantLocked(cores)
		e.mu.Unlock()
		return func() { e.release(cores) }, nil
	}
	if e.cfg.CoreBudget > 0 && cores > e.cfg.CoreBudget {
		e.stats.Rejected++
		e.mu.Unlock()
		e.metInc(func(m *engineMetrics) *trace.Counter { return m.cRejected })
		return nil, &ErrOverloaded{Reason: fmt.Sprintf("job needs %d cores, budget is %d", cores, e.cfg.CoreBudget)}
	}
	if len(e.queue) == 0 && e.canRunLocked(cores) {
		e.grantLocked(cores)
		e.mu.Unlock()
		return func() { e.release(cores) }, nil
	}
	if len(e.queue) >= e.queueDepth() {
		e.stats.Rejected++
		e.mu.Unlock()
		e.metInc(func(m *engineMetrics) *trace.Counter { return m.cRejected })
		return nil, &ErrOverloaded{Reason: fmt.Sprintf("%d jobs queued (depth %d)", e.queueDepth(), e.queueDepth())}
	}
	t := &ticket{cores: cores, ready: make(chan struct{})}
	e.queue = append(e.queue, t)
	if e.met != nil {
		e.met.gQueued.Set(int64(len(e.queue)))
	}
	e.mu.Unlock()

	select {
	case <-t.ready:
		return func() { e.release(cores) }, nil
	case <-ctx.Done():
		e.mu.Lock()
		select {
		case <-t.ready:
			// Granted while we were cancelling: release the slot.
			e.mu.Unlock()
			e.release(cores)
		default:
			t.cancelled = true
			// A cancelled head must not block the tickets behind it.
			e.dispatchLocked()
			e.cond.Broadcast()
			e.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// release returns a job's admission slot and wakes the queue.
func (e *Engine) release(cores int) {
	e.mu.Lock()
	e.running--
	e.coresInUse -= cores
	if e.met != nil {
		e.met.gRunning.Set(int64(e.running))
		e.met.gCores.Set(int64(e.coresInUse))
	}
	e.dispatchLocked()
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *Engine) metInc(pick func(*engineMetrics) *trace.Counter) {
	if e.met != nil {
		pick(e.met).Inc()
	}
}

// Submit runs one job to completion: cache first, then coalescing with an
// identical in-flight spec, then bounded admission and execution on a warm
// pool. It blocks until the result is ready; ctx cancels waiting in the
// admission queue (a job already running completes regardless — partial
// speculative state cannot be handed back).
func (e *Engine) Submit(ctx context.Context, spec JobSpec) (Result, error) {
	return e.SubmitOpts(ctx, spec, Options{})
}

// SubmitOpts is Submit with per-submission observability and placement
// options. Submissions carrying observability sinks bypass the cache, the
// coalescer, and the warm pools (tracers bind at system construction).
func (e *Engine) SubmitOpts(ctx context.Context, spec JobSpec, opts Options) (Result, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	e.bump(func(s *Stats) { s.Submitted++ })
	e.metInc(func(m *engineMetrics) *trace.Counter { return m.cSubmitted })

	cacheable := opts.plain()
	if cacheable && e.cfg.Cache != nil {
		var rec record
		if ok, err := e.cfg.Cache.Get(spec, &rec); err == nil && ok {
			e.bump(func(s *Stats) { s.CacheHits++; s.Completed++ })
			e.metInc(func(m *engineMetrics) *trace.Counter { return m.cCacheHit })
			res := rec.toResult()
			res.Source = "cache"
			return res, nil
		}
	}

	if cacheable {
		e.mu.Lock()
		if c, ok := e.inflight[spec]; ok {
			e.stats.Coalesced++
			e.mu.Unlock()
			e.metInc(func(m *engineMetrics) *trace.Counter { return m.cCoalesced })
			select {
			case <-c.done:
				if c.err != nil {
					return Result{}, c.err
				}
				res := c.res
				res.Source = "coalesced"
				e.bump(func(s *Stats) { s.Completed++ })
				return res, nil
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
		c := &call{done: make(chan struct{})}
		e.inflight[spec] = c
		e.mu.Unlock()
		res, err := e.runJob(ctx, spec, opts)
		c.res, c.err = res, err
		e.mu.Lock()
		delete(e.inflight, spec)
		e.mu.Unlock()
		close(c.done)
		return res, err
	}
	return e.runJob(ctx, spec, opts)
}

// bump mutates the stats under the lock.
func (e *Engine) bump(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// runJob admits and executes one job (the singleflight leader's path).
func (e *Engine) runJob(ctx context.Context, spec JobSpec, opts Options) (Result, error) {
	// Resolve the verification reference before taking an admission slot:
	// the seq job takes its own slot, and nesting Submit under a held slot
	// could deadlock a fully-loaded engine.
	var seqTime Result
	if spec.Verify {
		var err error
		seqTime, err = e.Submit(ctx, spec.seqSpec())
		if err != nil {
			return Result{}, fmt.Errorf("engine: %s: sequential reference: %w", spec, err)
		}
	}
	release, err := e.admit(ctx, spec.coresNeeded())
	if err != nil {
		return Result{}, err
	}
	res, err := e.execute(spec, opts)
	release()
	if err != nil {
		e.bump(func(s *Stats) { s.Failed++ })
		e.metInc(func(m *engineMetrics) *trace.Counter { return m.cFailed })
		return Result{}, err
	}
	if spec.Verify {
		res.SeqTime = seqTime.SeqTime
		res.SeqCheck = seqTime.SeqCheck
		res.Verified = res.Checksum == seqTime.SeqCheck
	}
	res.Source = "run"
	if opts.plain() && e.cfg.Cache != nil {
		// Cache write failures are non-fatal: the job ran.
		_ = e.cfg.Cache.Put(spec, recordOf(res))
	}
	e.bump(func(s *Stats) { s.Completed++ })
	e.metInc(func(m *engineMetrics) *trace.Counter { return m.cCompleted })
	return res, nil
}

// execute runs the admitted job on its backend.
func (e *Engine) execute(spec JobSpec, opts Options) (Result, error) {
	b, err := workloads.ByName(spec.Bench)
	if err != nil {
		return Result{}, err
	}
	in := spec.input()
	if spec.Kind == KindSeq {
		tune, err := KnobTune(spec.Knob)
		if err != nil {
			return Result{}, err
		}
		elapsed, check, err := workloads.RunSequentialTuned(b, in, tune)
		if err != nil {
			return Result{}, err
		}
		return Result{SeqTime: elapsed, SeqCheck: check}, nil
	}
	if spec.backend() == core.BackendNet {
		return e.executeNet(spec, opts)
	}
	tune, err := e.buildTune(spec, opts)
	if err != nil {
		return Result{}, err
	}
	if spec.Invocations > 0 {
		shallow := *b
		shallow.Invocations = spec.Invocations
		b = &shallow
	}
	if e.poolable(spec, opts) {
		return e.executePooled(b, in, spec, tune)
	}
	res, err := workloads.RunParallel(b, in, spec.paradigm(), spec.Cores, tune)
	if err != nil {
		return Result{}, err
	}
	return Result{Result: res}, nil
}

// buildTune composes the configuration hook a spec and its options name:
// knob, then faults, then backend/shards, then observability — the same
// composition order the pre-engine callers used.
func (e *Engine) buildTune(spec JobSpec, opts Options) (func(*core.Config), error) {
	knob, err := KnobTune(spec.Knob)
	if err != nil {
		return nil, err
	}
	var plan *faults.Plan
	if spec.Faults != "" {
		p, err := faults.Parse(spec.Faults)
		if err != nil {
			return nil, err
		}
		plan = &p
	}
	backend := spec.backend()
	shards := spec.CommitShards
	if knob == nil && plan == nil && backend == core.BackendVTime && shards <= 1 && opts.plain() {
		// Nothing to tune: hand workloads.RunParallel a nil hook, exactly
		// like the pre-engine callers, so the default-config path is
		// untouched.
		return nil, nil
	}
	mtx := opts.MTXTrace
	tr := opts.Tracer
	return func(cfg *core.Config) {
		if knob != nil {
			knob(cfg)
		}
		if plan != nil {
			cfg.Faults = plan
		}
		cfg.Backend = backend
		if shards > 1 {
			cfg.CommitShards = shards
		}
		if mtx {
			cfg.Trace = true
		}
		if tr != nil {
			cfg.Tracer = tr
		}
	}, nil
}

// poolable reports whether a job may run on a recycled warm rank set:
// plain host-backend runs only. vtime jobs are never pooled — their
// byte-identical determinism is the repo's golden invariant and they hold
// no OS resources worth recycling anyway.
func (e *Engine) poolable(spec JobSpec, opts Options) bool {
	return spec.backend() == core.BackendHost && opts.plain() &&
		spec.Faults == "" && spec.Knob == KnobNone
}

// executePooled runs a host job on a warm system when one is available,
// building (and afterwards parking) one otherwise.
func (e *Engine) executePooled(b *workloads.Benchmark, in workloads.Input, spec JobSpec, tune func(*core.Config)) (Result, error) {
	key := poolKey{bench: spec.Bench, paradigm: spec.Paradigm, cores: spec.Cores, shards: spec.CommitShards}
	var sys *core.System
	warm := false
	tried := false
	factory := func(cfg core.Config, prog workloads.Program, img *mem.Image) (*core.System, error) {
		if sys == nil && !tried {
			tried = true
			if ps := e.pools.get(key); ps != nil {
				if err := ps.Reset(cfg, prog, img); err == nil {
					sys = ps
					warm = true
					return sys, nil
				}
				// Incompatible pooled system (stale plan): drop it.
			}
		} else if sys != nil {
			// Later invocation of this job: recycle the same rank set.
			if err := sys.Reset(cfg, prog, img); err == nil {
				return sys, nil
			}
			sys = nil
		}
		fresh, err := core.NewSystem(cfg, prog, img)
		if err != nil {
			return nil, err
		}
		sys = fresh
		return sys, nil
	}
	res, err := workloads.RunParallelSystems(b, in, spec.paradigm(), spec.Cores, tune, factory)
	if err != nil {
		return Result{}, err
	}
	if warm {
		e.bump(func(s *Stats) { s.PoolReuses++ })
		e.metInc(func(m *engineMetrics) *trace.Counter { return m.cPoolReuse })
	} else {
		e.bump(func(s *Stats) { s.PoolBuilds++ })
		e.metInc(func(m *engineMetrics) *trace.Counter { return m.cPoolBuild })
	}
	if sys != nil {
		e.pools.put(key, sys)
	}
	return Result{Result: res, PoolWarm: warm}, nil
}

// executeNet runs a job across a daemon fleet, reusing a persistent
// cluster per placement (the daemons accept successive Job frames on one
// control session).
func (e *Engine) executeNet(spec JobSpec, opts Options) (Result, error) {
	key, h := e.netClusterFor(opts)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cl == nil {
		var cl *netrun.Cluster
		var err error
		if len(opts.NetJoin) > 0 {
			cl, err = netrun.Connect(opts.NetJoin)
		} else {
			daemons := opts.NetDaemons
			if daemons <= 0 {
				daemons = 2
			}
			cl, err = netrun.LaunchLocal(daemons, e.exe)
		}
		if err != nil {
			return Result{}, err
		}
		h.cl = cl
	} else {
		e.bump(func(s *Stats) { s.PoolReuses++ })
		e.metInc(func(m *engineMetrics) *trace.Counter { return m.cPoolReuse })
	}
	res, err := h.cl.Run(netrun.JobSpec{
		Bench:       spec.Bench,
		Scale:       spec.Scale,
		MisspecRate: spec.Rate,
		Seed:        spec.Seed,
		Cores:       spec.Cores,
		Invocations: spec.Invocations,
	})
	if err != nil {
		// The control session is desynchronized; tear the fleet down so
		// the next job gets a fresh one.
		h.cl.Close()
		h.cl = nil
		e.dropCluster(key)
		return Result{}, err
	}
	return Result{
		Result: workloads.Result{
			Elapsed:   res.Elapsed,
			Checksum:  res.Checksum,
			Committed: res.Committed,
			Misspecs:  res.Misspecs,
			Bytes:     res.Traffic.Bytes,
			Traffic:   res.Traffic,
		},
		Daemons: res.Daemons,
	}, nil
}

// netCluster is one persistent daemon fleet; its mutex serializes jobs on
// the shared control session.
type netCluster struct {
	mu sync.Mutex
	cl *netrun.Cluster
}

// netClusterFor resolves the fleet a submission's placement names.
func (e *Engine) netClusterFor(opts Options) (string, *netCluster) {
	var key string
	if len(opts.NetJoin) > 0 {
		key = "join:" + strings.Join(opts.NetJoin, ",")
	} else {
		daemons := opts.NetDaemons
		if daemons <= 0 {
			daemons = 2
		}
		key = fmt.Sprintf("local:%d", daemons)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.clusters[key]
	if !ok {
		h = &netCluster{}
		e.clusters[key] = h
	}
	return key, h
}

func (e *Engine) dropCluster(key string) {
	e.mu.Lock()
	delete(e.clusters, key)
	e.mu.Unlock()
}

// Drain stops admitting new jobs (ErrDraining) and blocks until every
// running and queued job has finished.
func (e *Engine) Drain() {
	e.mu.Lock()
	e.draining = true
	for e.running > 0 || len(e.queue) > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Close drains the engine and tears down its warm resources (net daemon
// fleets; host pools are plain memory and simply dropped).
func (e *Engine) Close() {
	e.Drain()
	e.mu.Lock()
	clusters := e.clusters
	e.clusters = make(map[string]*netCluster)
	e.mu.Unlock()
	for _, h := range clusters {
		h.mu.Lock()
		if h.cl != nil {
			h.cl.Close()
			h.cl = nil
		}
		h.mu.Unlock()
	}
	e.pools.drop()
}
