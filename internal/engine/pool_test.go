package engine

import (
	"context"
	"testing"
)

// TestWarmPoolDeterminism is the pooling acceptance gate: a host job on a
// recycled warm rank set must produce exactly the outcome a cold build
// produces — same checksum, same committed count, same misspeculation
// count — and the engine must report which path ran.
func TestWarmPoolDeterminism(t *testing.T) {
	e := New(Config{PoolPerKey: 2})
	defer e.Close()
	spec := JobSpec{Bench: "crc32", Cores: 4, Backend: "host", Seed: 11, Rate: 0.02}

	cold, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PoolWarm {
		t.Fatal("first run cannot be warm")
	}
	// Same spec again: sequential submissions do not coalesce, and with no
	// cache configured the job really re-runs — on the parked rank set.
	warm, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.PoolWarm {
		t.Fatal("second run did not reuse the warm pool")
	}
	if warm.Checksum != cold.Checksum {
		t.Errorf("checksum: warm %x vs cold %x", warm.Checksum, cold.Checksum)
	}
	if warm.Committed != cold.Committed {
		t.Errorf("committed: warm %d vs cold %d", warm.Committed, cold.Committed)
	}
	if warm.Misspecs != cold.Misspecs {
		t.Errorf("misspecs: warm %d vs cold %d", warm.Misspecs, cold.Misspecs)
	}
	st := e.Stats()
	if st.PoolBuilds != 1 || st.PoolReuses != 1 {
		t.Fatalf("pool stats = %+v, want 1 build + 1 reuse", st)
	}
}

// TestPoolKeysDoNotMix: different job shapes draw from different pools —
// a parked crc32 system must never serve a different benchmark.
func TestPoolKeysDoNotMix(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	a := JobSpec{Bench: "crc32", Cores: 4, Backend: "host", Seed: 1}
	b := JobSpec{Bench: "164.gzip", Cores: 8, Backend: "host", Seed: 1}
	if _, err := e.Submit(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	res, err := e.Submit(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolWarm {
		t.Fatal("different benchmark reported a warm pool hit")
	}
	st := e.Stats()
	if st.PoolBuilds != 2 || st.PoolReuses != 0 {
		t.Fatalf("pool stats = %+v, want 2 builds", st)
	}
}

// TestVTimeNeverPools: the simulator's byte-identical determinism is the
// repo's golden invariant; pooled reuse must be host-only.
func TestVTimeNeverPools(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	spec := crc32Spec(2)
	for i := 0; i < 2; i++ {
		res, err := e.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.PoolWarm {
			t.Fatal("vtime job reported a warm pool")
		}
	}
	st := e.Stats()
	if st.PoolBuilds != 0 && st.PoolReuses != 0 {
		t.Fatalf("vtime runs touched the pool: %+v", st)
	}
}
