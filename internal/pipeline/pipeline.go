// Package pipeline describes parallelization plans in the paper's
// DSWP+[...] notation and lays them out onto a worker budget.
//
// A Plan is a sequence of pipeline stages, each sequential ("S") or parallel
// ("DOALL"/"Spec-DOALL"). A Layout binds the plan to a concrete number of
// worker threads: each sequential stage gets exactly one worker and the
// parallel stages share the rest — which is how DSWP+ turns an unbalanced
// pipeline into scalable parallelism (Huang et al., §2.1): adding cores
// widens the parallel stage, and the pipeline balance improves naturally.
package pipeline

import "fmt"

// StageKind distinguishes sequential from parallel (replicated) stages.
type StageKind int

// Stage kinds.
const (
	Sequential StageKind = iota // "S": one worker runs every iteration
	Parallel                    // "DOALL"/"Spec-DOALL": iterations spread over a worker pool
)

func (k StageKind) String() string {
	if k == Sequential {
		return "S"
	}
	return "DOALL"
}

// Stage is one pipeline stage.
type Stage struct {
	Kind StageKind
	Name string // optional diagnostic label, e.g. "read", "compress", "write"
}

// Plan is a parallelization scheme: the stages plus any non-adjacent
// forwarding edges the workload needs (for example a first stage routing
// work-distribution decisions directly to the last stage, as 179.art does).
type Plan struct {
	Name       string // paper notation, e.g. "Spec-DSWP+[S,DOALL,S]"
	Stages     []Stage
	ExtraEdges [][2]int // stage pairs (from < to) beyond adjacent ones

	// Sync adds an intra-stage ring of synchronization queues over the
	// (single) parallel stage's pool: worker i forwards to worker i+1.
	// This is how TLS communicates non-speculated cross-iteration
	// dependences — the cyclic, latency-exposed pattern of DOACROSS.
	Sync bool

	// Occupancy makes the sequential stage feeding a parallel stage
	// distribute iterations by outstanding-work occupancy instead of
	// round-robin (the 179.art load-balancing scheme).
	Occupancy bool
}

// Validate reports structural problems with the plan.
func (p Plan) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("pipeline: plan %q has no stages", p.Name)
	}
	for _, e := range p.ExtraEdges {
		if e[0] < 0 || e[1] >= len(p.Stages) || e[0] >= e[1] {
			return fmt.Errorf("pipeline: plan %q has bad edge %v", p.Name, e)
		}
	}
	return nil
}

// MinWorkers reports the smallest worker count the plan can run on.
func (p Plan) MinWorkers() int { return len(p.Stages) }

// ParallelStages reports how many stages are parallel.
func (p Plan) ParallelStages() int {
	n := 0
	for _, s := range p.Stages {
		if s.Kind == Parallel {
			n++
		}
	}
	return n
}

// Edges lists every forwarding edge: adjacent stages plus extras,
// deduplicated, in (from, to) order.
func (p Plan) Edges() [][2]int {
	seen := make(map[[2]int]bool)
	var edges [][2]int
	add := func(e [2]int) {
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	for s := 0; s+1 < len(p.Stages); s++ {
		add([2]int{s, s + 1})
	}
	for _, e := range p.ExtraEdges {
		add(e)
	}
	return edges
}

// Layout binds a plan to a concrete worker budget. Worker thread IDs are
// dense, 0..Workers-1, assigned stage by stage.
type Layout struct {
	Plan    Plan
	Workers int
	Assign  [][]int // stage -> worker tids
	stageOf []int   // tid -> stage
}

// NewLayout distributes workers across the plan's stages: one per
// sequential stage, the remainder split evenly over parallel stages.
func NewLayout(p Plan, workers int) (Layout, error) {
	if err := p.Validate(); err != nil {
		return Layout{}, err
	}
	if workers < p.MinWorkers() {
		return Layout{}, fmt.Errorf("pipeline: plan %q needs >= %d workers, have %d",
			p.Name, p.MinWorkers(), workers)
	}
	l := Layout{Plan: p, Workers: workers, Assign: make([][]int, len(p.Stages)), stageOf: make([]int, workers)}
	spare := workers - len(p.Stages) // beyond the 1-per-stage minimum
	nPar := p.ParallelStages()
	tid := 0
	parSeen := 0
	for s, st := range p.Stages {
		n := 1
		if st.Kind == Parallel && nPar > 0 {
			n += spare / nPar
			if parSeen < spare%nPar {
				n++
			}
			parSeen++
		}
		for i := 0; i < n; i++ {
			l.Assign[s] = append(l.Assign[s], tid)
			l.stageOf[tid] = s
			tid++
		}
	}
	// A plan with no parallel stage cannot use spare workers.
	if tid < workers {
		return Layout{}, fmt.Errorf("pipeline: plan %q has no parallel stage to absorb %d spare workers",
			p.Name, workers-tid)
	}
	return l, nil
}

// StageOf reports the stage a worker tid belongs to.
func (l Layout) StageOf(tid int) int { return l.stageOf[tid] }

// WorkerOf reports the worker executing iteration iter of stage s under the
// default round-robin distribution.
func (l Layout) WorkerOf(s int, iter uint64) int {
	pool := l.Assign[s]
	return pool[int(iter%uint64(len(pool)))]
}

// PoolIndex reports tid's position within its stage's pool.
func (l Layout) PoolIndex(tid int) int {
	for i, w := range l.Assign[l.stageOf[tid]] {
		if w == tid {
			return i
		}
	}
	panic("pipeline: tid not in its own stage pool")
}

// Iterates reports whether worker tid executes iteration iter (always true
// for sequential-stage workers; round-robin membership for parallel ones).
func (l Layout) Iterates(tid int, iter uint64) bool {
	return l.WorkerOf(l.stageOf[tid], iter) == tid
}

// Convenient plan constructors for the paradigms in Table 2.

// SpecDOALL is a one-stage fully parallel plan ("Spec-DOALL").
func SpecDOALL() Plan {
	return Plan{Name: "Spec-DOALL", Stages: []Stage{{Kind: Parallel, Name: "body"}}}
}

// SpecDSWP builds "Spec-DSWP+[...]" from stage kinds, e.g. SpecDSWP("S",
// "DOALL", "S").
func SpecDSWP(kinds ...string) Plan {
	return fromKinds("Spec-DSWP+", kinds)
}

// DSWP builds "DSWP+[...]" (speculation within a stage, not spanning the
// pipeline) from stage kinds.
func DSWP(kinds ...string) Plan {
	return fromKinds("DSWP+", kinds)
}

func fromKinds(prefix string, kinds []string) Plan {
	p := Plan{Name: prefix + "["}
	for i, k := range kinds {
		if i > 0 {
			p.Name += ","
		}
		p.Name += k
		switch k {
		case "S":
			p.Stages = append(p.Stages, Stage{Kind: Sequential})
		case "DOALL", "Spec-DOALL":
			p.Stages = append(p.Stages, Stage{Kind: Parallel})
		default:
			panic(fmt.Sprintf("pipeline: unknown stage kind %q", k))
		}
	}
	p.Name += "]"
	return p
}
