package pipeline

import (
	"testing"
	"testing/quick"
)

func TestSpecDSWPNotation(t *testing.T) {
	p := SpecDSWP("S", "DOALL", "S")
	if p.Name != "Spec-DSWP+[S,DOALL,S]" {
		t.Fatalf("Name = %q", p.Name)
	}
	if len(p.Stages) != 3 || p.Stages[0].Kind != Sequential || p.Stages[1].Kind != Parallel {
		t.Fatalf("stages = %+v", p.Stages)
	}
	if p.MinWorkers() != 3 {
		t.Fatalf("MinWorkers = %d", p.MinWorkers())
	}
}

func TestSpecDOALLPlan(t *testing.T) {
	p := SpecDOALL()
	if p.MinWorkers() != 1 || p.ParallelStages() != 1 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestLayoutSequentialGetsOneWorker(t *testing.T) {
	l, err := NewLayout(SpecDSWP("S", "DOALL", "S"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Assign[0]) != 1 || len(l.Assign[2]) != 1 {
		t.Fatalf("sequential stages got %d, %d workers", len(l.Assign[0]), len(l.Assign[2]))
	}
	if len(l.Assign[1]) != 8 {
		t.Fatalf("parallel stage got %d workers, want 8", len(l.Assign[1]))
	}
}

func TestLayoutAllWorkersAssignedExactlyOnce(t *testing.T) {
	l, err := NewLayout(SpecDSWP("S", "DOALL", "S"), 13)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for s, pool := range l.Assign {
		for _, tid := range pool {
			seen[tid]++
			if l.StageOf(tid) != s {
				t.Errorf("StageOf(%d) = %d, want %d", tid, l.StageOf(tid), s)
			}
		}
	}
	for tid := 0; tid < 13; tid++ {
		if seen[tid] != 1 {
			t.Errorf("tid %d assigned %d times", tid, seen[tid])
		}
	}
}

func TestLayoutTooFewWorkers(t *testing.T) {
	if _, err := NewLayout(SpecDSWP("S", "DOALL", "S"), 2); err == nil {
		t.Fatal("expected error for 2 workers on a 3-stage plan")
	}
}

func TestAllSequentialPlanRejectsSpares(t *testing.T) {
	p := Plan{Name: "seq", Stages: []Stage{{Kind: Sequential}, {Kind: Sequential}}}
	if _, err := NewLayout(p, 5); err == nil {
		t.Fatal("expected error: no parallel stage for spare workers")
	}
	if _, err := NewLayout(p, 2); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
}

func TestWorkerOfRoundRobin(t *testing.T) {
	l, err := NewLayout(SpecDSWP("S", "DOALL", "S"), 6) // pool of 4 in stage 1
	if err != nil {
		t.Fatal(err)
	}
	pool := l.Assign[1]
	for iter := uint64(0); iter < 12; iter++ {
		want := pool[iter%4]
		if got := l.WorkerOf(1, iter); got != want {
			t.Errorf("WorkerOf(1, %d) = %d, want %d", iter, got, want)
		}
		if !l.Iterates(want, iter) {
			t.Errorf("Iterates(%d, %d) = false", want, iter)
		}
	}
	// Sequential stages execute every iteration.
	for iter := uint64(0); iter < 5; iter++ {
		if l.WorkerOf(0, iter) != l.Assign[0][0] {
			t.Errorf("sequential stage rotated workers")
		}
	}
}

func TestEdgesAdjacentPlusExtra(t *testing.T) {
	p := SpecDSWP("S", "DOALL", "S")
	p.ExtraEdges = [][2]int{{0, 2}, {0, 1}} // {0,1} duplicates an adjacent edge
	edges := p.Edges()
	want := map[[2]int]bool{{0, 1}: true, {1, 2}: true, {0, 2}: true}
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		if !want[e] {
			t.Errorf("unexpected edge %v", e)
		}
	}
}

func TestPlanValidateBadEdge(t *testing.T) {
	p := SpecDSWP("S", "DOALL", "S")
	p.ExtraEdges = [][2]int{{2, 1}}
	if err := p.Validate(); err == nil {
		t.Fatal("backward edge accepted")
	}
}

func TestPoolIndex(t *testing.T) {
	l, err := NewLayout(SpecDSWP("S", "DOALL", "S"), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, tid := range l.Assign[1] {
		if got := l.PoolIndex(tid); got != i {
			t.Errorf("PoolIndex(%d) = %d, want %d", tid, got, i)
		}
	}
}

// Property: for any worker budget >= the minimum, every worker lands in
// exactly one stage, parallel pools absorb all spares, and WorkerOf is
// consistent with Iterates.
func TestLayoutProperty(t *testing.T) {
	plans := []Plan{
		SpecDOALL(),
		SpecDSWP("S", "DOALL", "S"),
		SpecDSWP("DOALL", "S"),
		DSWP("Spec-DOALL", "S"),
	}
	f := func(extra uint8, planIdx uint8) bool {
		p := plans[int(planIdx)%len(plans)]
		workers := p.MinWorkers() + int(extra%120)
		l, err := NewLayout(p, workers)
		if err != nil {
			return false
		}
		total := 0
		for _, pool := range l.Assign {
			total += len(pool)
		}
		if total != workers {
			return false
		}
		for iter := uint64(0); iter < 40; iter++ {
			for s := range p.Stages {
				w := l.WorkerOf(s, iter)
				if l.StageOf(w) != s || !l.Iterates(w, iter) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
