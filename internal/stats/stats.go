// Package stats provides the small numeric and formatting toolkit the
// benchmark harness uses: geometric means, speedup series, fixed-width
// tables and ASCII line charts for regenerating the paper's figures in a
// terminal.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs, ignoring non-positive values.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return lo, hi
}

// Series is one named line of (x, y) points, x ascending.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders rows of columns with right-aligned numeric formatting.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns. Columns are sized to the
// widest row, so rows with more cells than the header still align.
func (t *Table) String() string {
	nCols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > nCols {
			nCols = len(row)
		}
	}
	widths := make([]int, nCols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, nCols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Plot renders series as an ASCII chart (the terminal stand-in for the
// paper's speedup graphs). Each series gets a marker; overlapping points
// show the later series' marker.
func Plot(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 64
	}
	if height < 5 {
		height = 20
	}
	var xs, ys []float64
	for _, s := range series {
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return title + ": (no data)\n"
	}
	xlo, xhi := MinMax(xs)
	_, yhi := MinMax(ys)
	ylo := 0.0 // speedup plots anchor at zero, like the paper's
	if yhi <= ylo {
		yhi = ylo + 1
	}
	if xhi <= xlo {
		xhi = xlo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - xlo) / (xhi - xlo) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ylo)/(yhi-ylo)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	for r, line := range grid {
		yval := ylo + (yhi-ylo)*float64(height-1-r)/float64(height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", yval, string(line))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-10.0f%*s\n", "", xlo, width-10, fmt.Sprintf("%.0f", xhi))
	fmt.Fprintf(&b, "%8s  x: %s, y: %s\n", "", xlabel, ylabel)
	return b.String()
}

// FormatSpeedup renders a speedup as the paper writes it ("49x").
func FormatSpeedup(s float64) string {
	if s >= 10 {
		return fmt.Sprintf("%.0fx", s)
	}
	return fmt.Sprintf("%.1fx", s)
}

// SortedKeys returns the sorted keys of a string-keyed map (deterministic
// report ordering).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
