package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %v", g)
	}
	if g := Geomean([]float64{5}); g != 5 {
		t.Fatalf("Geomean(5) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{-1, 0, 4}); g != 4 {
		t.Fatalf("Geomean ignoring non-positives = %v", g)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		lo, hi := MinMax(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := Table{Header: []string{"name", "val"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "1234")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestTableWideRowsAlign(t *testing.T) {
	// Rows wider than the header must still participate in column sizing
	// and render aligned (regression: they were skipped entirely).
	tb := Table{Header: []string{"name", "val"}}
	tb.AddRow("alpha", "1", "extra-wide-cell", "9")
	tb.AddRow("beta", "22", "x", "1234")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("wide rows misaligned:\n%s", out)
	}
	// Separator spans all columns, so rows never extend past it.
	if len(lines[1]) < len(lines[2]) {
		t.Fatalf("separator shorter than widest row:\n%s", out)
	}
	col := strings.Index(lines[2], "extra-wide-cell")
	if col < 0 {
		t.Fatalf("missing cell:\n%s", out)
	}
	// The matching cell in the next row must be right-aligned to the same
	// column block: its last character lines up with the block end.
	end := col + len("extra-wide-cell")
	if lines[3][end-1] != 'x' {
		t.Fatalf("columns not aligned at %d:\n%s", end, out)
	}
}

func TestPlotContainsMarkersAndLabels(t *testing.T) {
	s := Series{Name: "Spec-DSWP"}
	s.Add(8, 4)
	s.Add(128, 60)
	out := Plot("Fig", "cores", "speedup", []Series{s, {Name: "TLS", X: []float64{8}, Y: []float64{2}}}, 60, 12)
	for _, want := range []string{"Fig", "Spec-DSWP", "TLS", "*", "+", "cores", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmpty(t *testing.T) {
	if out := Plot("t", "x", "y", nil, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestFormatSpeedup(t *testing.T) {
	if s := FormatSpeedup(49.2); s != "49x" {
		t.Fatalf("FormatSpeedup(49.2) = %q", s)
	}
	if s := FormatSpeedup(3.14); s != "3.1x" {
		t.Fatalf("FormatSpeedup(3.14) = %q", s)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
