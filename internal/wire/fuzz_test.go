package wire

import (
	"bytes"
	"reflect"
	"testing"

	"dsmtx/internal/platform"
)

// FuzzWireRoundTrip pins the two codec guarantees the net backend depends
// on: (1) a frame the encoder produced decodes back bit-identically, and
// (2) arbitrary byte junk never panics the decoder — every malformed input
// surfaces as an error, and a corrupt length prefix never drives an
// allocation beyond the bytes actually present.
func FuzzWireRoundTrip(f *testing.F) {
	// Seed with one well-formed frame of each type so the fuzzer starts from
	// valid structure and mutates toward the interesting edges.
	var e Encoder
	if err := e.Message(platform.Message{From: 1, To: 2, Tag: 101, Payload: []byte{9, 9}, Bytes: 42, Class: platform.ClassQueue}); err != nil {
		f.Fatal(err)
	}
	f.Add(AppendFrame(nil, FrameMsg, e.Bytes()))
	f.Add(AppendHello(nil, Hello{Role: RoleData, JobID: 7, Peer: 1, LastRecv: 3}))
	f.Add(AppendFrame(nil, FrameAck, binary4(123)))
	f.Add(AppendFrame(nil, FrameGoodbye, nil))
	f.Add(AppendFrame(nil, FrameJob, []byte(`{"bench":"crc32"}`)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x02}) // oversized length prefix
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Defensive pass: walk frames off the input until it errors or runs
		// out. Nothing here may panic, whatever the bytes are.
		rest := data
		for len(rest) > 0 {
			typ, body, r, err := DecodeFrame(rest)
			if err != nil {
				break
			}
			rest = r
			switch typ {
			case FrameHello:
				_, _ = ParseHello(body)
			case FrameMsg:
				d := NewDecoder(body)
				m := d.Message()
				if d.Err() != nil {
					break
				}
				// Round-trip pass: a message that decoded cleanly must
				// re-encode, and re-decode to the same value. (Byte equality
				// with the fuzzer's body is not required — varints have
				// redundant encodings — but encode∘decode must be a fixed
				// point.)
				var e1 Encoder
				if err := e1.Message(m); err != nil {
					t.Fatalf("decoded message failed to re-encode: %v (%+v)", err, m)
				}
				d2 := NewDecoder(e1.Bytes())
				m2 := d2.Message()
				if d2.Err() != nil {
					t.Fatalf("re-encoded message failed to decode: %v", d2.Err())
				}
				if !reflect.DeepEqual(m, m2) {
					t.Fatalf("round trip changed message: %+v vs %+v", m, m2)
				}
				var e2 Encoder
				if err := e2.Message(m2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
					t.Fatalf("canonical encoding not bit-stable: %x vs %x", e1.Bytes(), e2.Bytes())
				}
			default:
				// Control frames carry JSON or fixed words; the frame layer
				// already bounded the body.
				d := NewDecoder(body)
				_ = d.Payload()
			}
		}

		// Raw decoder pass: treat the input as a bare body and exercise every
		// primitive. All reads must stay in bounds.
		d := NewDecoder(data)
		_ = d.Message()
		_ = d.Uvarint()
		_ = d.Blob()
		d.U64s(make([]uint64, 4))
		_, _ = ParseHello(data)
	})
}

func binary4(v uint32) []byte {
	var e Encoder
	e.U32(v)
	return append([]byte(nil), e.Bytes()...)
}
