package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"dsmtx/internal/platform"
)

// testPayload exercises the registry path (kind >= 16) without depending on
// the runtime's registered protocol types.
type testPayload struct {
	A uint64
	B []byte
}

func init() {
	RegisterPayload(200, testPayload{}, "test",
		func(e *Encoder, v any) {
			p := v.(testPayload)
			e.U64(p.A)
			e.Blob(p.B)
		},
		func(d *Decoder) any {
			var p testPayload
			p.A = d.U64()
			b := d.Blob()
			p.B = append([]byte(nil), b...)
			return p
		})
}

func TestPrimitivesRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(math.MaxUint64)
	e.Uvarint(0)
	e.Uvarint(300)
	e.Uvarint(math.MaxUint64)
	e.Blob([]byte("hello"))
	e.U64s([]uint64{1, 2, 1 << 63})

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != math.MaxUint64 {
		t.Errorf("U64 = %#x", v)
	}
	for i, want := range []uint64{0, 300, math.MaxUint64} {
		if v := d.Uvarint(); v != want {
			t.Errorf("Uvarint[%d] = %d, want %d", i, v, want)
		}
	}
	if b := d.Blob(); string(b) != "hello" {
		t.Errorf("Blob = %q", b)
	}
	words := make([]uint64, 3)
	d.U64s(words)
	if words[2] != 1<<63 {
		t.Errorf("U64s = %v", words)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestMessageRoundTrip(t *testing.T) {
	msgs := []platform.Message{
		{From: 0, To: 1, Tag: 5, Payload: nil, Bytes: 8},
		{From: 3, To: 7, Tag: 1 << 30, Payload: uint64(42), Bytes: 16, Class: platform.ClassControl},
		{From: 2, To: 9, Tag: 101, Payload: []byte{1, 2, 3}, Bytes: 19, Class: platform.ClassQueue},
		{From: 1, To: 4, Tag: 3, Payload: testPayload{A: 9, B: []byte("pp")}, Bytes: 4104, Class: platform.ClassPage},
	}
	for _, m := range msgs {
		var e Encoder
		if err := e.Message(m); err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		d := NewDecoder(e.Bytes())
		got := d.Message()
		if d.Err() != nil {
			t.Fatalf("decode %+v: %v", m, d.Err())
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
		// Bit-identical re-encode.
		var e2 Encoder
		if err := e2.Message(got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e.Bytes(), e2.Bytes()) {
			t.Errorf("re-encode differs: %x vs %x", e.Bytes(), e2.Bytes())
		}
	}
}

func TestMessageRejectsUnregisteredPayload(t *testing.T) {
	var e Encoder
	err := e.Message(platform.Message{Payload: struct{ X int }{1}})
	if err == nil {
		t.Fatal("unregistered payload type encoded")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	body := []byte("frame body")
	var buf []byte
	buf = AppendFrame(buf, FrameMsg, body)
	buf = AppendFrame(buf, FrameGoodbye, nil)

	typ, got, rest, err := DecodeFrame(buf)
	if err != nil || typ != FrameMsg || !bytes.Equal(got, body) {
		t.Fatalf("frame 1: typ %d body %q err %v", typ, got, err)
	}
	typ, got, rest, err = DecodeFrame(rest)
	if err != nil || typ != FrameGoodbye || len(got) != 0 {
		t.Fatalf("frame 2: typ %d body %q err %v", typ, got, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}

	// Stream path: ReadFrame must reproduce the same split.
	r := bytes.NewReader(buf)
	typ, got, scratch, err := ReadFrame(r, nil)
	if err != nil || typ != FrameMsg || !bytes.Equal(got, body) {
		t.Fatalf("ReadFrame 1: typ %d body %q err %v", typ, got, err)
	}
	typ, got, _, err = ReadFrame(r, scratch)
	if err != nil || typ != FrameGoodbye || len(got) != 0 {
		t.Fatalf("ReadFrame 2: typ %d body %q err %v", typ, got, err)
	}
}

func TestFrameLengthBound(t *testing.T) {
	// A corrupt prefix claiming MaxFrame+1 bytes must be rejected before any
	// allocation, on both the slice and stream paths.
	hdr := []byte{0xff, 0xff, 0xff, 0xff, byte(FrameMsg)}
	if _, _, _, err := DecodeFrame(hdr); err == nil {
		t.Error("DecodeFrame accepted an oversized length prefix")
	}
	if _, _, _, err := ReadFrame(bytes.NewReader(hdr), nil); err == nil {
		t.Error("ReadFrame accepted an oversized length prefix")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Role: RoleData, JobID: 0xfeedface, Peer: 3, LastRecv: Seq(1 << 31)}
	buf := AppendHello(nil, h)
	typ, body, _, err := DecodeFrame(buf)
	if err != nil || typ != FrameHello {
		t.Fatalf("typ %d err %v", typ, err)
	}
	got, err := ParseHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("got %+v, want %+v", got, h)
	}
}

func TestHelloRejectsGarbage(t *testing.T) {
	if _, err := ParseHello([]byte("not a hello")); err == nil {
		t.Error("garbage hello accepted")
	}
	if _, err := ParseHello(nil); err == nil {
		t.Error("empty hello accepted")
	}
}

func TestSerialNumberArithmetic(t *testing.T) {
	cases := []struct {
		a, b   Seq
		before bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		// Wraparound: maximum serial precedes zero's successor.
		{math.MaxUint32, 0, true},
		{math.MaxUint32, 3, true},
		{0, math.MaxUint32, false},
		// Largest defined forward distance (half the space minus one).
		{0, (1 << 31) - 1, true},
		{(1 << 31) - 1, 0, false},
	}
	for _, c := range cases {
		if got := c.a.Before(c.b); got != c.before {
			t.Errorf("Seq(%d).Before(%d) = %v, want %v", c.a, c.b, got, c.before)
		}
		if c.a != c.b {
			if got := c.b.After(c.a); got != c.before {
				t.Errorf("Seq(%d).After(%d) = %v, want %v", c.b, c.a, got, c.before)
			}
		}
	}
	if s := Seq(math.MaxUint32).Next(); s != 0 {
		t.Errorf("MaxUint32.Next() = %d, want 0 (wrap)", s)
	}
	if d := Seq(2).Diff(Seq(math.MaxUint32)); d != 3 {
		t.Errorf("Diff across wrap = %d, want 3", d)
	}
}

func TestDecoderTruncationIsSticky(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.U64() // truncated
	if d.Err() == nil {
		t.Fatal("truncated U64 not reported")
	}
	// Further reads return zero values without panicking and keep the first
	// error.
	first := d.Err()
	_ = d.Uvarint()
	_ = d.Blob()
	d.U64s(make([]uint64, 4))
	if d.Err() != first {
		t.Errorf("error replaced: %v", d.Err())
	}
}
