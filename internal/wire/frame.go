// Frame layer: every unit on a daemon connection is a length-prefixed
// frame — a 5-byte header (uint32 little-endian body length, one type byte)
// followed by the body. MaxFrame bounds the body so a corrupt or hostile
// length prefix can never drive an unbounded read or allocation.

package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// FrameType discriminates connection frames.
type FrameType uint8

// Frame types. Hello/Msg/Ack/Goodbye flow on data connections between
// daemons; Hello/Job/JobOK/Start/InvDone/Result/Error flow on the control
// connection between the coordinator and each daemon (their bodies are
// JSON — orchestration is rare and debuggable beats compact there).
const (
	FrameHello   FrameType = 1 // handshake: role, job, peer index, last received seq
	FrameMsg     FrameType = 2 // one platform.Message (seq, generation, message)
	FrameAck     FrameType = 3 // cumulative receive ack, trims the sender's replay log
	FrameGoodbye FrameType = 4 // graceful close: peer is done sending
	FrameJob     FrameType = 5 // coordinator -> daemon: JSON job spec
	FrameJobOK   FrameType = 6 // daemon -> coordinator: job accepted, invocation count
	FrameStart   FrameType = 7 // coordinator -> daemon: start invocation N
	FrameInvDone FrameType = 8 // daemon -> coordinator: invocation N finished
	FrameResult  FrameType = 9 // daemon -> coordinator: JSON aggregate result

	// FrameError carries a daemon-side failure as text; either side treats
	// it as fatal for the job.
	FrameError FrameType = 10
)

// MaxFrame bounds a frame body. The largest legitimate frames are
// Copy-On-Access page batches (COAPrefetch pages, tens of KiB) and queue
// batches (batch bytes plus bulk payloads); 16 MiB leaves orders of
// magnitude of headroom while keeping a corrupt prefix from asking for
// gigabytes.
const MaxFrame = 16 << 20

// frameHeaderLen is the fixed header size: 4-byte length + 1-byte type.
const frameHeaderLen = 5

// AppendFrame appends a complete frame (header + body) to dst.
func AppendFrame(dst []byte, typ FrameType, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, byte(typ))
	return append(dst, body...)
}

// FinishFrame patches the header of a frame whose body was encoded in
// place: the caller reserves a header with BeginFrame, encodes the body
// directly into the encoder, then seals it. This is the zero-copy path the
// transport uses — page words are appended straight into the outgoing
// buffer with no intermediate body slice.
func (e *Encoder) BeginFrame(typ FrameType) int {
	start := len(e.buf)
	e.buf = append(e.buf, 0, 0, 0, 0, byte(typ))
	return start
}

// FinishFrame seals the frame opened at start, writing its body length.
func (e *Encoder) FinishFrame(start int) {
	body := len(e.buf) - start - frameHeaderLen
	binary.LittleEndian.PutUint32(e.buf[start:], uint32(body))
}

// ReadFrame reads one frame from r, reusing buf (grown as needed, never
// beyond MaxFrame) for the body. It returns the frame type, the body as a
// subslice of the (possibly grown) buffer, and the buffer for the next
// call. A length prefix above MaxFrame is rejected before any allocation.
func ReadFrame(r io.Reader, buf []byte) (FrameType, []byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, buf, fmt.Errorf("wire: frame length %d exceeds limit %d", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, err
	}
	return FrameType(hdr[4]), body, buf, nil
}

// DecodeFrame splits one frame off the front of b without copying: it
// returns the type, body, and the remaining bytes. Used by tests and the
// fuzz target to exercise the framing on raw byte slices.
func DecodeFrame(b []byte) (FrameType, []byte, []byte, error) {
	if len(b) < frameHeaderLen {
		return 0, nil, b, fmt.Errorf("wire: truncated frame header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if n > MaxFrame {
		return 0, nil, b, fmt.Errorf("wire: frame length %d exceeds limit %d", n, MaxFrame)
	}
	if uint32(len(b)-frameHeaderLen) < n {
		return 0, nil, b, fmt.Errorf("wire: truncated frame body (need %d, have %d)", n, len(b)-frameHeaderLen)
	}
	end := frameHeaderLen + int(n)
	return FrameType(b[4]), b[frameHeaderLen:end], b[end:], nil
}

// Connection roles announced in the Hello handshake.
const (
	RoleControl uint8 = 0 // coordinator -> daemon orchestration stream
	RoleData    uint8 = 1 // daemon <-> daemon message stream
)

// helloMagic guards against a stray client connecting to a daemon port.
const helloMagic = 0x58544d44 // "DMTX"

// helloVersion is bumped on incompatible wire changes.
const helloVersion = 1

// Hello is the first frame on every connection.
type Hello struct {
	Role  uint8
	JobID uint64
	// Peer is the sender's daemon index (data connections; unused for
	// control).
	Peer int
	// LastRecv is the highest in-order data sequence number the sender has
	// received from this peer — on reconnect the receiver of the Hello
	// replays everything after it.
	LastRecv Seq
}

// AppendHello appends a Hello frame to dst.
func AppendHello(dst []byte, h Hello) []byte {
	var e Encoder
	e.U32(helloMagic)
	e.U8(helloVersion)
	e.U8(h.Role)
	e.U64(h.JobID)
	e.Uvarint(uint64(h.Peer))
	e.U32(uint32(h.LastRecv))
	return AppendFrame(dst, FrameHello, e.Bytes())
}

// ParseHello decodes a Hello frame body.
func ParseHello(body []byte) (Hello, error) {
	d := NewDecoder(body)
	if m := d.U32(); d.Err() == nil && m != helloMagic {
		return Hello{}, fmt.Errorf("wire: bad hello magic %#x", m)
	}
	if v := d.U8(); d.Err() == nil && v != helloVersion {
		return Hello{}, fmt.Errorf("wire: hello version %d, want %d", v, helloVersion)
	}
	var h Hello
	h.Role = d.U8()
	h.JobID = d.U64()
	h.Peer = d.Int()
	h.LastRecv = Seq(d.U32())
	return h, d.Err()
}
