// Package wire is the compact binary codec of the net execution backend:
// length-prefixed frames carrying platform messages, Copy-On-Access page
// transfers, and the control/handshake traffic between daemons, plus the
// serial-number arithmetic that gives every connection per-link ordering
// and reconnect-replay.
//
// The format is deliberately simple — little-endian fixed words, unsigned
// varints, and a one-byte payload-kind tag — because the runtime above it
// already guarantees everything hard: commit order is predefined (the
// paper's §3), so the wire layer only has to deliver reliably and in
// per-link order, never agree on ordering. Payload encoding is a registry:
// the nil/uint64/[]byte kinds every message path uses are built in, and the
// runtime's own types (ctrlMsg, pageReq, page batches, queue batches)
// register themselves from internal/core so this package stays free of
// protocol dependencies.
//
// Decoding is defensive end to end: every read is bounds-checked against
// the actual bytes present, a corrupt length prefix can never drive an
// allocation larger than the data that arrived, and malformed input
// surfaces as Decoder.Err, never a panic (FuzzWireRoundTrip pins this).
package wire

import (
	"encoding/binary"
	"fmt"
	"reflect"

	"dsmtx/internal/platform"
)

// Encoder appends the wire encoding of values to an internal buffer. The
// zero value is ready to use; Reset recycles the buffer across frames so
// steady-state encoding does not allocate.
type Encoder struct {
	buf []byte
}

// Reset empties the encoder, keeping its buffer capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded bytes; valid until the next Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width little-endian uint64 (full-range values —
// checksums, speculative data words — where a varint would pessimize).
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Uvarint appends an unsigned varint (ranks, tags, counts, addresses).
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Raw appends b verbatim.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Blob appends a length-prefixed byte string.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.Raw(b)
}

// U64s appends words back to back — the zero-copy page fast path: a 4 KiB
// page encodes as one append of its 512 words with no intermediate buffer.
func (e *Encoder) U64s(words []uint64) {
	n := len(e.buf)
	e.buf = append(e.buf, make([]byte, 8*len(words))...)
	for i, w := range words {
		binary.LittleEndian.PutUint64(e.buf[n+8*i:], w)
	}
}

// Decoder reads the Encoder's format back out of a byte slice. Every read
// is bounds-checked: on truncated or malformed input the decoder records an
// error, returns zero values, and ignores further reads — callers check Err
// once at the end. Blob and U64s return or fill from subslices of the
// input, so a corrupt length prefix can never allocate more than the bytes
// actually present.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b for decoding. The decoder aliases b; the caller must
// not mutate it until decoding finishes.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err reports the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// fail records the first error.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Failf lets registered payload codecs latch a structural error (an invalid
// discriminator, say) with the same first-error-wins semantics as the
// built-in reads.
func (d *Decoder) Failf(format string, args ...any) { d.fail(format, args...) }

// take returns the next n bytes, or nil after recording an error.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail("truncated: need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a fixed-width little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a varint-encoded non-negative int, rejecting values that do not
// fit (a corrupt count must not wrap negative and bypass loop bounds).
func (d *Decoder) Int() int {
	v := d.Uvarint()
	if v > uint64(int(^uint(0)>>1)) {
		d.fail("varint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Blob reads a length-prefixed byte string as a subslice of the input (no
// copy, no allocation — and therefore bounded by what actually arrived).
func (d *Decoder) Blob() []byte {
	n := d.Int()
	return d.take(n)
}

// U64s fills words from the stream (the page fast path's inverse).
func (d *Decoder) U64s(words []uint64) {
	b := d.take(8 * len(words))
	if b == nil {
		return
	}
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
}

// Payload kinds. The first three cover every raw payload the runtime's
// control plane sends; protocol types register kinds >= 16 via
// RegisterPayload (see internal/core's wire codec).
const (
	kindNil   uint8 = 0
	kindU64   uint8 = 1
	kindBytes uint8 = 2
)

// payloadCodec is one registered payload type.
type payloadCodec struct {
	name string
	enc  func(*Encoder, any)
	dec  func(*Decoder) any
}

// Payload registry. Registration happens in package init functions (the
// runtime registers its types from internal/core); lookups after init are
// read-only, so no locking is needed.
var (
	payloadKinds [256]*payloadCodec
	payloadTypes = map[reflect.Type]uint8{}
)

// RegisterPayload installs a codec for the payload type of prototype under
// the given kind byte (>= 16; lower kinds are built in). Call from init
// only — the registry is read-only after program start. enc receives a
// value of the prototype's dynamic type; dec reconstructs one, reporting
// malformed input through the decoder's error state.
func RegisterPayload(kind uint8, prototype any, name string, enc func(*Encoder, any), dec func(*Decoder) any) {
	if kind < 16 {
		panic(fmt.Sprintf("wire: payload kind %d is reserved (register >= 16)", kind))
	}
	if payloadKinds[kind] != nil {
		panic(fmt.Sprintf("wire: payload kind %d registered twice", kind))
	}
	t := reflect.TypeOf(prototype)
	if _, dup := payloadTypes[t]; dup {
		panic(fmt.Sprintf("wire: payload type %v registered twice", t))
	}
	payloadKinds[kind] = &payloadCodec{name: name, enc: enc, dec: dec}
	payloadTypes[t] = kind
}

// Payload appends the kind-tagged encoding of a message payload. Unknown
// types are an error (the net backend can only ship types with codecs), not
// a panic: the transport surfaces it as a platform failure.
func (e *Encoder) Payload(v any) error {
	switch p := v.(type) {
	case nil:
		e.U8(kindNil)
	case uint64:
		e.U8(kindU64)
		e.U64(p)
	case []byte:
		e.U8(kindBytes)
		e.Blob(p)
	default:
		kind, ok := payloadTypes[reflect.TypeOf(v)]
		if !ok {
			return fmt.Errorf("wire: payload type %T has no registered codec", v)
		}
		e.U8(kind)
		payloadKinds[kind].enc(e, v)
	}
	return nil
}

// Payload reads a kind-tagged payload back.
func (d *Decoder) Payload() any {
	switch kind := d.U8(); kind {
	case kindNil:
		return nil
	case kindU64:
		return d.U64()
	case kindBytes:
		b := d.Blob()
		if b == nil {
			return nil
		}
		// Copy out of the frame buffer: payloads outlive the read loop's
		// reusable buffer.
		out := make([]byte, len(b))
		copy(out, b)
		return out
	default:
		c := payloadKinds[kind]
		if c == nil {
			d.fail("unknown payload kind %d", kind)
			return nil
		}
		return c.dec(d)
	}
}

// Message appends the platform.Message fast path: varint routing header,
// class byte, kind-tagged payload. The reliable-layer Seq field is not
// carried — the transport's own per-connection sequence numbers replace it.
func (e *Encoder) Message(m platform.Message) error {
	if m.From < 0 || m.To < 0 || m.Tag < 0 || m.Bytes < 0 {
		return fmt.Errorf("wire: negative message field (from %d, to %d, tag %d, bytes %d)", m.From, m.To, m.Tag, m.Bytes)
	}
	e.Uvarint(uint64(m.From))
	e.Uvarint(uint64(m.To))
	e.Uvarint(uint64(m.Tag))
	e.Uvarint(uint64(m.Bytes))
	e.U8(uint8(m.Class))
	return e.Payload(m.Payload)
}

// Message reads a platform.Message back.
func (d *Decoder) Message() platform.Message {
	var m platform.Message
	m.From = d.Int()
	m.To = d.Int()
	m.Tag = d.Int()
	m.Bytes = d.Int()
	m.Class = platform.MsgClass(d.U8())
	m.Payload = d.Payload()
	return m
}
