// Serial-number arithmetic (RFC 1982 style) for per-connection sequence
// numbers. Every data frame a daemon sends to a peer carries the next
// serial; the receiver admits exactly the successor of its last in-order
// serial, drops duplicates (replay overlap after a reconnect), and treats a
// gap as a transport failure. Comparisons are computed in the two's-
// complement difference, so they stay correct across wraparound — the same
// discipline the vtime cluster's reliable layer uses for retransmit
// ordering, mapped onto a real TCP connection's reconnect-replay.

package wire

// Seq is a 32-bit serial number. The space wraps; Before/After compare
// correctly as long as live serials span less than half the space (the
// replay window is thousands of frames, nowhere near 2^31).
type Seq uint32

// Next returns the successor serial.
func (s Seq) Next() Seq { return s + 1 }

// Before reports whether s precedes o in serial order.
func (s Seq) Before(o Seq) bool { return int32(s-o) < 0 }

// After reports whether s follows o in serial order.
func (s Seq) After(o Seq) bool { return int32(s-o) > 0 }

// Diff reports the signed distance s - o in serial order.
func (s Seq) Diff(o Seq) int32 { return int32(s - o) }
