package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"dsmtx/internal/sim"
)

// fakeClock is a settable wall clock for wall-mode tests.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

func wallTracer(bufCap int) (*Tracer, *fakeClock) {
	tr := New()
	clk := &fakeClock{}
	tr.BindWall(clk, bufCap)
	return tr, clk
}

func TestBindWallRecordsThroughRings(t *testing.T) {
	tr, clk := wallTracer(0)
	if !tr.Wall() {
		t.Fatal("BindWall did not switch to wall mode")
	}
	if tr.SpanFloor() != wallSpanFloor {
		t.Fatalf("SpanFloor = %v, want %v", tr.SpanFloor(), wallSpanFloor)
	}
	tr.SetTrack(0, 0, "worker0")
	clk.t = 100
	start := tr.Now()
	clk.t = 400
	tr.Span(SpanRecvPark, 0, start, 0, 5, 0)
	clk.t = 500
	tr.Instant(InstRingSpill, 0, 0, 5, 2)
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].Start != 100 || ev[0].End != 400 || ev[0].Kind != SpanRecvPark {
		t.Fatalf("span = %+v", ev[0])
	}
	if ev[1].Start != 500 || ev[1].End != 500 {
		t.Fatalf("instant = %+v", ev[1])
	}
	if tr.DroppedSpans() != 0 {
		t.Fatalf("dropped = %d", tr.DroppedSpans())
	}
}

// TestBindWallStitchesInvocations mirrors the BindKernel stitch test: a
// second bind must offset new timestamps past the first clock's final time.
func TestBindWallStitchesInvocations(t *testing.T) {
	tr := New()
	c1 := &fakeClock{}
	tr.BindWall(c1, 0)
	tr.SetTrack(0, 0, "worker0")
	c1.t = 1000
	tr.Instant(InstRingSpill, 0, 0, 1, 0)

	c2 := &fakeClock{}
	tr.BindWall(c2, 0)
	c2.t = 10
	tr.Instant(InstRingSpill, 0, 0, 2, 0)

	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[1].Start != 1000+10 {
		t.Fatalf("stitched start = %v, want 1010", ev[1].Start)
	}
}

// TestWallBufferOverflowCounted fills a tiny span buffer past capacity: the
// excess must be counted (DroppedSpans and the registry counter), never
// grown or blocked on, and the surviving events must be the first bufCap.
func TestWallBufferOverflowCounted(t *testing.T) {
	tr, clk := wallTracer(4)
	tr.SetTrack(0, 0, "worker0")
	for i := 0; i < 10; i++ {
		clk.t = sim.Time(i + 1)
		tr.Instant(InstRingSpill, 0, uint64(i), 0, 0)
	}
	if got := tr.DroppedSpans(); got != 6 {
		t.Fatalf("DroppedSpans = %d, want 6", got)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4 (buffer capacity)", len(ev))
	}
	for i, e := range ev {
		if e.MTX != uint64(i) {
			t.Fatalf("event %d has mtx %d: overflow displaced early events", i, e.MTX)
		}
	}
	if got := tr.Metrics().Counter("trace.spans.dropped").Value(); got != 6 {
		t.Fatalf("trace.spans.dropped = %d, want 6", got)
	}
}

// TestWallUntrackedSpanCounted: wall-mode events on tracks never registered
// have no buffer; they must be counted dropped, not crash or allocate.
func TestWallUntrackedSpanCounted(t *testing.T) {
	tr, clk := wallTracer(0)
	clk.t = 5
	tr.Instant(InstRingSpill, 42, 0, 0, 0)
	if got := tr.DroppedSpans(); got != 1 {
		t.Fatalf("DroppedSpans = %d, want 1", got)
	}
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("untracked event was exported (%d events)", n)
	}
}

// TestWallFlushSortsPerTrack records nested spans (inner ends first, so it
// lands in the buffer before its enclosing span, start-time out of order):
// the flush must restore per-track start order while leaving cross-track
// grouping intact.
func TestWallFlushSortsPerTrack(t *testing.T) {
	tr, clk := wallTracer(0)
	tr.SetTrack(0, 0, "worker0")
	tr.SetTrack(1, 0, "worker1")
	clk.t = 100
	outer := tr.Now()
	clk.t = 150
	inner := tr.Now()
	clk.t = 200
	tr.Span(SpanRecvWait, 0, inner, 0, 1, 0) // recorded first, starts later
	clk.t = 300
	tr.Span(SpanSubTX, 0, outer, 7, 0, 0) // recorded second, starts earlier
	clk.t = 50
	tr.Instant(InstRingSpill, 1, 0, 0, 0)
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d, want 3", len(ev))
	}
	if ev[0].Kind != SpanSubTX || ev[1].Kind != SpanRecvWait {
		t.Fatalf("track 0 not sorted by start: %+v then %+v", ev[0], ev[1])
	}
	if ev[2].Track != 1 {
		t.Fatalf("tracks interleaved after flush: %+v", ev[2])
	}
}

// TestWallConcurrentRecording hammers the per-track buffers from one
// goroutine per track (the host model: a track is written by its own rank's
// goroutine); every event must land, exactly once, on its own track, with
// the export sorted per track. Run with -race this is the data-race audit
// of the wall recording path.
func TestWallConcurrentRecording(t *testing.T) {
	const tracks, perTrack = 8, 500
	tr, clk := wallTracer(perTrack)
	for tk := 0; tk < tracks; tk++ {
		tr.SetTrack(tk, 0, "w")
	}
	clk.t = 1
	var wg sync.WaitGroup
	for tk := 0; tk < tracks; tk++ {
		tk := tk
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perTrack; i++ {
				tr.Instant(InstRingSpill, tk, uint64(i), 0, 0)
			}
		}()
	}
	wg.Wait()
	if d := tr.DroppedSpans(); d != 0 {
		t.Fatalf("dropped %d events with exactly-capacity buffers", d)
	}
	perTrackSeen := make(map[int32]int)
	for _, e := range tr.Events() {
		perTrackSeen[e.Track]++
	}
	for tk := int32(0); tk < tracks; tk++ {
		if perTrackSeen[tk] != perTrack {
			t.Fatalf("track %d exported %d events, want %d", tk, perTrackSeen[tk], perTrack)
		}
	}
}

// TestWallChromeTraceMarker pins the export format: wall traces carry the
// top-level "clock":"wall" key; vtime traces must not (their bytes are
// pinned by determinism tests elsewhere).
func TestWallChromeTraceMarker(t *testing.T) {
	tr, clk := wallTracer(0)
	tr.SetTrack(0, 0, "worker0")
	clk.t = 10
	start := tr.Now()
	clk.t = 2000
	tr.Span(SpanRecvPark, 0, start, 0, 1, 0)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Clock string `json:"clock"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("wall trace not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Clock != "wall" {
		t.Fatalf("clock = %q, want wall", doc.Clock)
	}

	vt := New()
	vt.BindKernel(kernelAt(t, 10))
	vt.SetTrack(0, 0, "worker0")
	vt.Span(SpanSubTX, 0, 0, 1, 0, 0)
	buf.Reset()
	if err := vt.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"clock"`) {
		t.Fatalf("vtime trace grew a clock marker:\n%s", buf.String())
	}
}

// TestMetricsWriteJSON pins the live-endpoint payload: one object with the
// three instrument families, values readable back.
func TestMetricsWriteJSON(t *testing.T) {
	m := NewMetrics()
	m.Counter("c").Add(3)
	m.Gauge("g").Set(7)
	m.Gauge("g").Set(2)
	m.Histogram("h").Observe(10)
	m.Histogram("h").Observe(30)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]struct {
			Value int64 `json:"value"`
			Max   int64 `json:"max"`
		} `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			Sum   int64   `json:"sum"`
			Mean  float64 `json:"mean"`
			Min   int64   `json:"min"`
			Max   int64   `json:"max"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["c"] != 3 {
		t.Errorf("counter c = %d", doc.Counters["c"])
	}
	if g := doc.Gauges["g"]; g.Value != 2 || g.Max != 7 {
		t.Errorf("gauge g = %+v", g)
	}
	if h := doc.Histograms["h"]; h.Count != 2 || h.Sum != 40 || h.Min != 10 || h.Max != 30 {
		t.Errorf("histogram h = %+v", h)
	}
	// A nil registry still writes a valid empty document (the endpoint must
	// not 500 when metrics are disabled).
	buf.Reset()
	var nilm *Metrics
	if err := nilm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil registry JSON invalid: %s", buf.String())
	}
}

// TestStallReportHostColumns: the host columns render only when the report
// carries host data, and Merge propagates both the flag and the columns.
func TestStallReportHostColumns(t *testing.T) {
	base := &StallReport{}
	base.Add(StallRow{Label: "worker0", Stage: "S0", Busy: 100})
	if got := base.Table().String(); strings.Contains(got, "park") {
		t.Fatalf("vtime report grew host columns:\n%s", got)
	}

	host := &StallReport{Host: true}
	host.Add(StallRow{Label: "worker0", Stage: "S0", Busy: 100, Park: 2500, Spills: 3})
	host.Add(StallRow{Label: "pagesrv", Stage: "pagesrv", ShardQueue: 9})
	got := host.Table().String()
	for _, want := range []string{"park", "spill", "shard-q", "2.50us", "9"} {
		if !strings.Contains(got, want) {
			t.Errorf("host table missing %q:\n%s", want, got)
		}
	}

	// Merge into an empty aggregate: flag and values must survive, repeat
	// merges must sum Park/Spills and max ShardQueue.
	agg := &StallReport{}
	agg.Merge(host)
	agg.Merge(host)
	if !agg.Host {
		t.Fatal("Merge dropped the Host flag")
	}
	r := agg.Rows[0]
	if r.Park != 5000 || r.Spills != 6 {
		t.Fatalf("merged row = %+v, want Park 5000 Spills 6", r)
	}
	if agg.Rows[1].ShardQueue != 9 {
		t.Fatalf("merged shard queue = %d, want 9 (max, not sum)", agg.Rows[1].ShardQueue)
	}
	if got := agg.StageTable().String(); !strings.Contains(got, "park") {
		t.Fatalf("merged stage table missing host columns:\n%s", got)
	}
}
