package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"dsmtx/internal/stats"
)

// Metrics is a registry of named instruments. Handles are resolved once —
// at System construction or queue Instrument time — so hot paths hold
// *Counter/*Gauge/*Histogram pointers and never touch the name map.
//
// All instrument methods are nil-receiver-safe: a nil handle (from a nil
// registry) costs one branch, keeping disabled-tracing hot paths
// allocation-free. Instrument updates are atomic, so resolved handles may
// be driven from concurrent goroutines (the host backend); the registry map
// itself is mutex-guarded, so handles may also be resolved concurrently.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter resolves (creating on first use) the named counter. Returns nil
// on a nil registry — safe to use, all ops no-op.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge resolves (creating on first use) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram resolves (creating on first use) the named histogram.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.histograms[name]
	if h == nil {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level that also tracks its high-water mark.
// Under concurrent writers the current value is whichever Set landed last;
// the high-water mark is exact across all of them.
type Gauge struct {
	v, max atomic.Int64
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add shifts the gauge's value by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(d))
}

// Value reports the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max reports the high-water mark (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bit-length i, i.e. [2^(i-1), 2^i). Bucket 0
// holds v <= 0.
const histBuckets = 40

// Histogram accumulates a distribution in fixed power-of-two buckets —
// no per-observation allocation, deterministic snapshots when driven
// single-threaded. Fields update atomically but independently, so a
// snapshot taken mid-run (the live metrics endpoint) may be a few
// observations skewed between count and sum; post-run reads are exact.
type Histogram struct {
	buckets  [histBuckets]atomic.Uint64
	count    atomic.Uint64
	sum      atomic.Int64
	min, max atomic.Int64 // presence-bit encoded (see encMM); 0 = no observation
}

// encMM/decMM pack an extreme value with a presence bit in the low bit, so
// the zero value of the atomic means "no observation yet" and first-observe
// races resolve with plain CAS. The value range shrinks to 63 bits — far
// beyond any duration or size observed here.
func encMM(v int64) int64 { return v<<1 | 1 }
func decMM(e int64) int64 { return e >> 1 }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b].Add(1)
	for {
		e := h.min.Load()
		if (e != 0 && decMM(e) <= v) || h.min.CompareAndSwap(e, encMM(v)) {
			break
		}
	}
	for {
		e := h.max.Load()
		if (e != 0 && decMM(e) >= v) || h.max.CompareAndSwap(e, encMM(v)) {
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean reports the arithmetic mean of observations (0 if none).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(h.count.Load())
}

// Min reports the smallest observation (0 if none).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	e := h.min.Load()
	if e == 0 {
		return 0
	}
	return decMM(e)
}

// Max reports the largest observation (0 if none).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	e := h.max.Load()
	if e == 0 {
		return 0
	}
	return decMM(e)
}

// Table renders the registry as a deterministic report: counters, gauges,
// then histograms, each sorted by name. Zero-valued instruments that were
// registered but never touched are still listed — absence of activity is
// itself a signal.
func (m *Metrics) Table() *stats.Table {
	t := &stats.Table{Header: []string{"metric", "value", "detail"}}
	if m == nil {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range sortedKeys(m.counters) {
		t.AddRow(name, fmt.Sprintf("%d", m.counters[name].Value()), "")
	}
	for _, name := range sortedKeys(m.gauges) {
		g := m.gauges[name]
		t.AddRow(name, fmt.Sprintf("%d", g.Value()), fmt.Sprintf("max %d", g.Max()))
	}
	for _, name := range sortedKeys(m.histograms) {
		h := m.histograms[name]
		detail := "-"
		if h.Count() > 0 {
			detail = fmt.Sprintf("mean %.1f min %d max %d", h.Mean(), h.Min(), h.Max())
		}
		t.AddRow(name, fmt.Sprintf("%d", h.Count()), detail)
	}
	return t
}

// WriteJSON renders a point-in-time snapshot of the registry as one JSON
// object (expvar-style), keyed by instrument family with names sorted
// alphabetically — the payload of dsmtxrun's -metrics-addr endpoint. Safe
// to call while instruments are being updated.
func (m *Metrics) WriteJSON(w io.Writer) error {
	doc := map[string]any{
		"counters":   map[string]any{},
		"gauges":     map[string]any{},
		"histograms": map[string]any{},
	}
	if m != nil {
		counters := map[string]any{}
		gauges := map[string]any{}
		histograms := map[string]any{}
		m.mu.Lock()
		for name, c := range m.counters {
			counters[name] = c.Value()
		}
		for name, g := range m.gauges {
			gauges[name] = map[string]int64{"value": g.Value(), "max": g.Max()}
		}
		for name, h := range m.histograms {
			histograms[name] = map[string]any{
				"count": h.Count(), "sum": h.Sum(), "mean": h.Mean(),
				"min": h.Min(), "max": h.Max(),
			}
		}
		m.mu.Unlock()
		doc["counters"] = counters
		doc["gauges"] = gauges
		doc["histograms"] = histograms
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
