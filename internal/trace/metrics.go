package trace

import (
	"fmt"
	"math/bits"
	"sort"

	"dsmtx/internal/stats"
)

// Metrics is a registry of named instruments. Handles are resolved once —
// at System construction or queue Instrument time — so hot paths hold
// *Counter/*Gauge/*Histogram pointers and never touch the name map.
//
// All instrument methods are nil-receiver-safe: a nil handle (from a nil
// registry) costs one branch, keeping disabled-tracing hot paths
// allocation-free.
type Metrics struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter resolves (creating on first use) the named counter. Returns nil
// on a nil registry — safe to use, all ops no-op.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge resolves (creating on first use) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram resolves (creating on first use) the named histogram.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	h := m.histograms[name]
	if h == nil {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level that also tracks its high-water mark.
type Gauge struct {
	v, max int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the gauge's value by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value reports the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max reports the high-water mark (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bit-length i, i.e. [2^(i-1), 2^i). Bucket 0
// holds v <= 0.
const histBuckets = 40

// Histogram accumulates a distribution in fixed power-of-two buckets —
// no per-observation allocation, deterministic snapshots.
type Histogram struct {
	buckets  [histBuckets]uint64
	count    uint64
	sum      int64
	min, max int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the total of all observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean reports the arithmetic mean of observations (0 if none).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min reports the smallest observation (0 if none).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max reports the largest observation (0 if none).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Table renders the registry as a deterministic report: counters, gauges,
// then histograms, each sorted by name. Zero-valued instruments that were
// registered but never touched are still listed — absence of activity is
// itself a signal.
func (m *Metrics) Table() *stats.Table {
	t := &stats.Table{Header: []string{"metric", "value", "detail"}}
	if m == nil {
		return t
	}
	for _, name := range sortedKeys(m.counters) {
		t.AddRow(name, fmt.Sprintf("%d", m.counters[name].Value()), "")
	}
	for _, name := range sortedKeys(m.gauges) {
		g := m.gauges[name]
		t.AddRow(name, fmt.Sprintf("%d", g.Value()), fmt.Sprintf("max %d", g.Max()))
	}
	for _, name := range sortedKeys(m.histograms) {
		h := m.histograms[name]
		detail := "-"
		if h.Count() > 0 {
			detail = fmt.Sprintf("mean %.1f min %d max %d", h.Mean(), h.Min(), h.Max())
		}
		t.AddRow(name, fmt.Sprintf("%d", h.Count()), detail)
	}
	return t
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
