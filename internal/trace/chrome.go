package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"dsmtx/internal/sim"
)

// WriteChromeTrace renders the recorded timeline as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing. Cluster nodes render as
// processes (pid), simulated ranks as threads (tid), and virtual time as
// the timestamp axis (ts/dur are microseconds in the format; we emit
// fractional microseconds so full nanosecond precision survives).
//
// The output is deterministic: metadata sorted by track id, events in
// recording order (which is itself deterministic under the simulation
// kernel's total event order), and all JSON hand-assembled with fixed
// field order. Wall-clock (host) traces flush their per-track buffers
// first — events come out grouped by track, sorted by start time — and
// carry a top-level "clock":"wall" marker so validators know per-track
// start-time monotonicity is guaranteed (Perfetto ignores the extra key).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.flush()
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	if t != nil {
		tracks := make([]int32, 0, len(t.tracks))
		for id := range t.tracks {
			tracks = append(tracks, id)
		}
		sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
		pidsSeen := make(map[int]bool)
		for _, id := range tracks {
			info := t.tracks[id]
			if !pidsSeen[info.pid] {
				pidsSeen[info.pid] = true
				sep()
				fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"node%d"}}`,
					info.pid, info.pid)
			}
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				info.pid, id, quoteJSON(info.name))
			sep()
			// sort_index keeps rank order stable in the UI regardless of
			// first-event time.
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
				info.pid, id, id)
		}
		for i := range t.events {
			sep()
			t.writeEvent(bw, &t.events[i])
		}
	}
	bw.WriteString("\n]")
	if t.Wall() {
		bw.WriteString(`,"clock":"wall"`)
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

func (t *Tracer) writeEvent(bw *bufio.Writer, e *Event) {
	meta := &kindMeta[e.Kind]
	pid := 0
	if info, ok := t.tracks[e.Track]; ok {
		pid = info.pid
	}
	if e.Start == e.End {
		fmt.Fprintf(bw, `{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%s,"cat":%s`,
			pid, e.Track, usec(e.Start), quoteJSON(meta.name), quoteJSON(meta.cat))
	} else {
		fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s,"cat":%s`,
			pid, e.Track, usec(e.Start), usec(e.End-e.Start), quoteJSON(meta.name), quoteJSON(meta.cat))
	}
	if meta.mtxName != "" || meta.a1 != "" || meta.a2 != "" {
		bw.WriteString(`,"args":{`)
		argFirst := true
		arg := func(name string, v int64) {
			if !argFirst {
				bw.WriteByte(',')
			}
			argFirst = false
			fmt.Fprintf(bw, `"%s":%d`, name, v)
		}
		if meta.mtxName != "" {
			arg(meta.mtxName, int64(e.MTX))
		}
		if meta.a1 != "" {
			arg(meta.a1, e.V1)
		}
		if meta.a2 != "" {
			arg(meta.a2, e.V2)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// usec renders virtual nanoseconds as the trace format's microseconds,
// keeping exact nanosecond precision as a fixed three-decimal fraction.
func usec(ns sim.Time) string {
	if ns < 0 {
		ns = 0
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// quoteJSON escapes a short label as a JSON string. Labels are
// runtime-generated ASCII; the escape set covers the JSON metacharacters.
func quoteJSON(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
