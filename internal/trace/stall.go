package trace

import (
	"fmt"

	"dsmtx/internal/sim"
	"dsmtx/internal/stats"
)

// StallRow attributes one rank's virtual time across the causes that matter
// for pipeline balance (§3.2 of the paper: speculation management must stay
// off the critical path, and Fig. 6's recovery cost is mostly pipeline
// refill — both diagnoses fall out of this split):
//
//	Busy         — executing work (subTX bodies, validation, commit apply)
//	Backpressure — waiting for downstream queue credit (queue full)
//	Starvation   — polling an empty upstream queue
//	VerdictWait  — the commit unit waiting on a try-commit verdict
//	VoteWait     — a coordinator commit shard waiting on cross-shard 2PC
//	               votes (CommitShards > 1 only)
//	Recovery     — inside a misspeculation-recovery window (ERM/FLQ/SEQ
//	               plus refill stall)
//	Crashed      — inside a crash-fault window: a worker's outage + rejoin,
//	               or the commit unit's crash-recovery re-dispatch
//	Blocked      — parked on a message or synchronization primitive
type StallRow struct {
	Track int    // rank (or synthetic track id)
	Label string // "worker3", "trycommit0", "commit", "pagesrv"
	Stage string // aggregation key: "S0".."Sn", "trycommit", "commit", "pagesrv"

	Busy, Backpressure, Starvation, VerdictWait, VoteWait, Recovery, Crashed, Blocked sim.Time

	// Host-delivery columns, populated only on the host backend (the report
	// renders them when StallReport.Host is set). Park is wall time the
	// rank's endpoint spent parked in mailbox waits — attributed at endpoint
	// granularity, so the commit rank's row includes its co-located
	// page-server shards. Spills counts overflow spills into the rank's
	// mailboxes. ShardQueue is the high-water request backlog of a
	// page-server shard (zero on other rows).
	Park       sim.Time
	Spills     uint64
	ShardQueue int64
}

// Total is the row's accounted virtual time.
func (r *StallRow) Total() sim.Time {
	return r.Busy + r.Backpressure + r.Starvation + r.VerdictWait + r.VoteWait + r.Recovery + r.Crashed + r.Blocked
}

// StallReport collects per-rank stall rows for one or more runs. Host marks
// a report carrying host-delivery data; its tables then grow the park /
// spill / shard-q columns. CommitShards marks a report from a sharded
// commit pipeline; its tables then grow the vote-wait column.
type StallReport struct {
	Rows         []StallRow
	Host         bool
	CommitShards bool
}

// Add appends a row.
func (r *StallReport) Add(row StallRow) { r.Rows = append(r.Rows, row) }

// Merge accumulates another report into this one, matching rows by label
// (chained invocations of the same system layout).
func (r *StallReport) Merge(o *StallReport) {
	if o == nil {
		return
	}
	byLabel := make(map[string]int, len(r.Rows))
	for i := range r.Rows {
		byLabel[r.Rows[i].Label] = i
	}
	for _, row := range o.Rows {
		if i, ok := byLabel[row.Label]; ok {
			dst := &r.Rows[i]
			dst.Busy += row.Busy
			dst.Backpressure += row.Backpressure
			dst.Starvation += row.Starvation
			dst.VerdictWait += row.VerdictWait
			dst.VoteWait += row.VoteWait
			dst.Recovery += row.Recovery
			dst.Crashed += row.Crashed
			dst.Blocked += row.Blocked
			dst.Park += row.Park
			dst.Spills += row.Spills
			if row.ShardQueue > dst.ShardQueue {
				dst.ShardQueue = row.ShardQueue
			}
		} else {
			byLabel[row.Label] = len(r.Rows)
			r.Rows = append(r.Rows, row)
		}
	}
	r.Host = r.Host || o.Host
	r.CommitShards = r.CommitShards || o.CommitShards
}

var stallHeader = []string{"rank", "total", "busy", "backpressure", "starvation", "verdict-wait", "recovery", "crashed", "blocked"}

// hostHeader extends stallHeader with the host-delivery columns.
var hostHeader = []string{"park", "spill", "shard-q"}

// header builds the table header, swapping the first column's label,
// inserting the vote-wait column after verdict-wait when the report comes
// from a sharded commit pipeline, and appending the host columns when the
// report carries host data.
func (r *StallReport) header(first string) []string {
	h := append([]string{first}, stallHeader[1:]...)
	if r.CommitShards {
		i := len(h)
		for j, col := range h {
			if col == "verdict-wait" {
				i = j + 1
				break
			}
		}
		h = append(h[:i:i], append([]string{"vote-wait"}, h[i:]...)...)
	}
	if r.Host {
		h = append(h, hostHeader...)
	}
	return h
}

// Table renders the per-rank breakdown; each cause shows time and its share
// of the rank's total.
func (r *StallReport) Table() *stats.Table {
	t := &stats.Table{Header: r.header(stallHeader[0])}
	for i := range r.Rows {
		row := &r.Rows[i]
		t.AddRow(stallCells(row.Label, row, r)...)
	}
	return t
}

// StageTable renders the same breakdown aggregated by pipeline stage — the
// pipeline-balance summary dsmtxrun prints.
func (r *StallReport) StageTable() *stats.Table {
	t := &stats.Table{Header: r.header("stage")}
	agg := make(map[string]*StallRow)
	var order []string
	for i := range r.Rows {
		row := &r.Rows[i]
		a := agg[row.Stage]
		if a == nil {
			a = &StallRow{Stage: row.Stage, Label: row.Stage}
			agg[row.Stage] = a
			order = append(order, row.Stage)
		}
		a.Busy += row.Busy
		a.Backpressure += row.Backpressure
		a.Starvation += row.Starvation
		a.VerdictWait += row.VerdictWait
		a.VoteWait += row.VoteWait
		a.Recovery += row.Recovery
		a.Crashed += row.Crashed
		a.Blocked += row.Blocked
		a.Park += row.Park
		a.Spills += row.Spills
		if row.ShardQueue > a.ShardQueue {
			a.ShardQueue = row.ShardQueue
		}
	}
	for _, stage := range order {
		t.AddRow(stallCells(stage, agg[stage], r)...)
	}
	return t
}

func stallCells(name string, r *StallRow, rep *StallReport) []string {
	total := r.Total()
	cell := func(v sim.Time) string {
		if total == 0 {
			return fmtDur(v)
		}
		return fmt.Sprintf("%s (%4.1f%%)", fmtDur(v), 100*float64(v)/float64(total))
	}
	cells := []string{
		name, fmtDur(total),
		cell(r.Busy), cell(r.Backpressure), cell(r.Starvation),
		cell(r.VerdictWait),
	}
	if rep.CommitShards {
		cells = append(cells, cell(r.VoteWait))
	}
	cells = append(cells, cell(r.Recovery), cell(r.Crashed), cell(r.Blocked))
	if rep.Host {
		cells = append(cells,
			fmtDur(r.Park),
			fmt.Sprintf("%d", r.Spills),
			fmt.Sprintf("%d", r.ShardQueue))
	}
	return cells
}

// fmtDur renders virtual nanoseconds with a human unit.
func fmtDur(t sim.Time) string {
	switch {
	case t >= 1e9:
		return fmt.Sprintf("%.2fs", float64(t)/1e9)
	case t >= 1e6:
		return fmt.Sprintf("%.2fms", float64(t)/1e6)
	case t >= 1e3:
		return fmt.Sprintf("%.2fus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
