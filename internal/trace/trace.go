// Package trace is the virtual-time observability layer under DSMTX: a
// span/event tracer recording per-rank timelines, a registry of named
// counters/gauges/histograms, and a stall-attribution report for the
// pipeline-balance summary.
//
// Everything here is measured in virtual time and recorded deterministically
// — tracing a run never schedules events, never advances the clock, and
// never changes decision points, so a traced run's virtual-time outcome is
// bit-identical to an untraced one (pinned by determinism tests). The other
// direction of the invariant is just as binding: a nil *Tracer is the
// disabled state, and every hook throughout the runtime is a nil-check
// no-op, so tracing-off adds zero allocations to hot paths (pinned by the
// alloc-regression tests in internal/mem and internal/queue).
//
// Timelines are exported as Chrome trace-event JSON (see chrome.go):
// simulated ranks render as threads, nodes as processes, and virtual
// nanoseconds as timestamps — loadable in Perfetto or chrome://tracing.
package trace

import "dsmtx/internal/sim"

// Kind labels a recorded span or instant event.
type Kind uint8

// Span and instant kinds. Spans have duration; Inst* events are points.
const (
	SpanSubTX         Kind = iota // a worker executed one subTX (V1 = stage)
	SpanValidate                  // the try-commit unit validated one MTX (V1 = verdict)
	SpanCommit                    // group commit of one MTX (V1 = entries, V2 = bulk bytes)
	SpanCOA                       // one Copy-On-Access fault round trip (MTX = page, V1 = pages, V2 = wire bytes)
	SpanRecvWait                  // a blocking message receive (V1 = tag)
	SpanRecovery                  // one rank's whole recovery window (MTX = restart iteration)
	SpanERM                       // recovery: enter-recovery-mode barrier (commit unit)
	SpanFLQ                       // recovery: flush-queues barrier (commit unit)
	SpanSEQ                       // recovery: sequential re-execution (commit unit)
	SpanRFP                       // recovery: refill-pipeline, resume to next commit (commit unit)
	InstFlush                     // a queue batch left the sender (V1 = items, V2 = wire bytes)
	InstDrain                     // a queue batch was drained by the consumer (V1 = items)
	InstMisspec                   // a misspeculation marker was emitted (MTX = iteration)
	SpanCrash                     // a worker's crash outage, downtime through rejoin (MTX = rank, V1 = downtime ns)
	SpanRedispatch                // commit-unit crash recovery, detection to resume (MTX = crashed rank, V1 = restart iteration)
	InstDrop                      // the network lost a transmission (MTX = link seq, V1 = bytes, V2 = attempt)
	InstRetransmit                // a sender retransmitted after ack timeout (MTX = link seq, V1 = bytes, V2 = attempt)
	InstHeartbeatMiss             // the commit unit declared a rank dead (MTX = rank, V1 = silence ns)
	numKinds
)

// kindMeta drives the Chrome export: event name, category, and the names of
// the V1/V2 args ("" = omit). mtxName is the args key for the MTX field
// ("" = omit).
var kindMeta = [numKinds]struct {
	name, cat       string
	mtxName, a1, a2 string
}{
	SpanSubTX:         {"subTX", "worker", "mtx", "stage", ""},
	SpanValidate:      {"validate", "trycommit", "mtx", "ok", ""},
	SpanCommit:        {"commit", "commit", "mtx", "entries", "bulk_bytes"},
	SpanCOA:           {"coa.fault", "mem", "page", "pages", "wire_bytes"},
	SpanRecvWait:      {"recv.wait", "mpi", "", "tag", ""},
	SpanRecovery:      {"recovery", "recovery", "restart", "", ""},
	SpanERM:           {"recovery.ERM", "recovery", "mtx", "", ""},
	SpanFLQ:           {"recovery.FLQ", "recovery", "mtx", "", ""},
	SpanSEQ:           {"recovery.SEQ", "recovery", "mtx", "", ""},
	SpanRFP:           {"recovery.RFP", "recovery", "mtx", "", ""},
	InstFlush:         {"queue.flush", "queue", "", "items", "bytes"},
	InstDrain:         {"queue.drain", "queue", "", "items", ""},
	InstMisspec:       {"misspec", "worker", "mtx", "", ""},
	SpanCrash:         {"fault.crash", "fault", "rank", "downtime_ns", ""},
	SpanRedispatch:    {"recovery.redispatch", "recovery", "rank", "restart", ""},
	InstDrop:          {"fault.drop", "fault", "seq", "bytes", "attempt"},
	InstRetransmit:    {"fault.retransmit", "fault", "seq", "bytes", "attempt"},
	InstHeartbeatMiss: {"fault.heartbeat.miss", "fault", "rank", "silence_ns", ""},
}

// KnownEventNames reports every event name the Chrome exporter can emit
// for recorded spans/instants. External validators (tools/tracecheck) use
// it to reject unknown names without hard-coding the list.
func KnownEventNames() []string {
	out := make([]string, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, kindMeta[k].name)
	}
	return out
}

// String reports the kind's event name.
func (k Kind) String() string {
	if k < numKinds {
		return kindMeta[k].name
	}
	return "invalid"
}

// Event is one recorded timeline entry. Start == End denotes an instant.
// V1/V2 are kind-specific arguments (see the Kind constants).
type Event struct {
	Kind       Kind
	Track      int32 // timeline id: the simulated rank (or a synthetic id)
	Start, End sim.Time
	MTX        uint64
	V1, V2     int64
}

// trackInfo labels one timeline for export: Chrome pid (the cluster node)
// and thread name.
type trackInfo struct {
	pid  int
	name string
}

// Tracer records spans and events against a simulation kernel's virtual
// clock. A nil *Tracer is valid and means "tracing disabled": every method
// is a no-op, so hooks cost a nil check and nothing else.
//
// A Tracer may observe several consecutive runs (chained invocations): each
// BindKernel stitches the new kernel's clock after the previous run's end,
// so multi-invocation benchmarks export one continuous timeline.
type Tracer struct {
	k      *sim.Kernel
	base   sim.Time
	spans  bool
	events []Event
	tracks map[int32]trackInfo
	met    *Metrics
}

// New returns a tracer that records spans and metrics.
func New() *Tracer {
	return &Tracer{spans: true, tracks: make(map[int32]trackInfo), met: NewMetrics()}
}

// NewMetricsOnly returns a tracer that maintains the metrics registry but
// records no timeline events — for metrics reports without trace files.
func NewMetricsOnly() *Tracer {
	t := New()
	t.spans = false
	return t
}

// Enabled reports whether timeline recording is active.
func (t *Tracer) Enabled() bool { return t != nil && t.spans }

// Metrics returns the tracer's metric registry (nil for a nil tracer; the
// registry's lookup methods are nil-safe and return nil instruments).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.met
}

// BindKernel attaches the tracer to a (new) kernel's clock. Re-binding
// offsets subsequent timestamps past the previous kernel's final time, so
// chained invocations form one monotonic timeline.
func (t *Tracer) BindKernel(k *sim.Kernel) {
	if t == nil {
		return
	}
	if t.k != nil {
		t.base += t.k.Now()
	}
	t.k = k
}

// SetTrack labels a timeline: pid groups tracks (the cluster node), name is
// the per-track label ("worker3", "commit", ...).
func (t *Tracer) SetTrack(track, pid int, name string) {
	if t == nil {
		return
	}
	t.tracks[int32(track)] = trackInfo{pid: pid, name: name}
}

// Now reports the tracer-relative virtual time — the value to pass as a
// span's start. It returns 0 when recording is off, making the
// capture-then-record pattern free in the disabled state.
func (t *Tracer) Now() sim.Time {
	if t == nil || !t.spans || t.k == nil {
		return 0
	}
	return t.base + t.k.Now()
}

// Span records an interval from start (a value captured with Now) to the
// current virtual time.
func (t *Tracer) Span(kind Kind, track int, start sim.Time, mtx uint64, v1, v2 int64) {
	if t == nil || !t.spans || t.k == nil {
		return
	}
	t.events = append(t.events, Event{
		Kind: kind, Track: int32(track), Start: start, End: t.base + t.k.Now(),
		MTX: mtx, V1: v1, V2: v2,
	})
}

// Instant records a zero-duration event at the current virtual time.
func (t *Tracer) Instant(kind Kind, track int, mtx uint64, v1, v2 int64) {
	if t == nil || !t.spans || t.k == nil {
		return
	}
	now := t.base + t.k.Now()
	t.events = append(t.events, Event{
		Kind: kind, Track: int32(track), Start: now, End: now,
		MTX: mtx, V1: v1, V2: v2,
	})
}

// Events exposes the recorded timeline (tests and custom exporters).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}
