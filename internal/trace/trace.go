// Package trace is the observability layer under DSMTX: a span/event tracer
// recording per-rank timelines, a registry of named counters/gauges/
// histograms, and a stall-attribution report for the pipeline-balance
// summary.
//
// The tracer is backend-agnostic through the Clock abstraction. On the
// virtual-time backend everything is measured in virtual time and recorded
// deterministically — tracing a run never schedules events, never advances
// the clock, and never changes decision points, so a traced run's
// virtual-time outcome is bit-identical to an untraced one (pinned by
// determinism tests). On the host backend (BindWall) spans carry monotonic
// wall time and recording goes through fixed-size per-track lock-free
// buffers — an atomic cursor claim and a slot store, no mutex and no
// allocation — with overflow counted rather than grown, so concurrent
// goroutines can record from delivery hot paths. The other direction of the
// invariant is just as binding: a nil *Tracer is the disabled state, and
// every hook throughout the runtime is a nil-check no-op, so tracing-off
// adds zero allocations to hot paths (pinned by the alloc-regression tests
// in internal/mem, internal/queue and internal/platform/host).
//
// Timelines are exported as Chrome trace-event JSON (see chrome.go):
// simulated ranks render as threads, nodes as processes, and nanoseconds
// (virtual or wall) as timestamps — loadable in Perfetto or chrome://tracing.
package trace

import (
	"sort"
	"sync/atomic"

	"dsmtx/internal/sim"
)

// Kind labels a recorded span or instant event.
type Kind uint8

// Span and instant kinds. Spans have duration; Inst* events are points.
const (
	SpanSubTX         Kind = iota // a worker executed one subTX (V1 = stage)
	SpanValidate                  // the try-commit unit validated one MTX (V1 = verdict)
	SpanCommit                    // group commit of one MTX (V1 = entries, V2 = bulk bytes)
	SpanCOA                       // one Copy-On-Access fault round trip (MTX = page, V1 = pages, V2 = wire bytes)
	SpanRecvWait                  // a blocking message receive (V1 = tag)
	SpanRecovery                  // one rank's whole recovery window (MTX = restart iteration)
	SpanERM                       // recovery: enter-recovery-mode barrier (commit unit)
	SpanFLQ                       // recovery: flush-queues barrier (commit unit)
	SpanSEQ                       // recovery: sequential re-execution (commit unit)
	SpanRFP                       // recovery: refill-pipeline, resume to next commit (commit unit)
	InstFlush                     // a queue batch left the sender (V1 = items, V2 = wire bytes)
	InstDrain                     // a queue batch was drained by the consumer (V1 = items)
	InstMisspec                   // a misspeculation marker was emitted (MTX = iteration)
	SpanCrash                     // a worker's crash outage, downtime through rejoin (MTX = rank, V1 = downtime ns)
	SpanRedispatch                // commit-unit crash recovery, detection to resume (MTX = crashed rank, V1 = restart iteration)
	InstDrop                      // the network lost a transmission (MTX = link seq, V1 = bytes, V2 = attempt)
	InstRetransmit                // a sender retransmitted after ack timeout (MTX = link seq, V1 = bytes, V2 = attempt)
	InstHeartbeatMiss             // the commit unit declared a rank dead (MTX = rank, V1 = silence ns)
	SpanPageServe                 // a page-server shard served one COA request (MTX = start page, V1 = pages, V2 = wire bytes)
	SpanRecvPark                  // host delivery: a receiver parked awaiting a message (V1 = tag)
	InstRingSpill                 // host delivery: a full mailbox ring spilled to the overflow list (V1 = tag, V2 = overflow depth)
	SpanShardCommit               // one commit shard applied its partition of an MTX (V1 = entries, V2 = bulk bytes)
	InstShardVote                 // a participant shard sent its ordered 2PC vote (MTX = iteration, V1 = coordinator shard)
	SpanShardVoteWait             // the coordinator shard awaited cross-shard votes (MTX = iteration, V1 = votes needed)
	numKinds
)

// kindMeta drives the Chrome export: event name, category, and the names of
// the V1/V2 args ("" = omit). mtxName is the args key for the MTX field
// ("" = omit).
var kindMeta = [numKinds]struct {
	name, cat       string
	mtxName, a1, a2 string
}{
	SpanSubTX:         {"subTX", "worker", "mtx", "stage", ""},
	SpanValidate:      {"validate", "trycommit", "mtx", "ok", ""},
	SpanCommit:        {"commit", "commit", "mtx", "entries", "bulk_bytes"},
	SpanCOA:           {"coa.fault", "mem", "page", "pages", "wire_bytes"},
	SpanRecvWait:      {"recv.wait", "mpi", "", "tag", ""},
	SpanRecovery:      {"recovery", "recovery", "restart", "", ""},
	SpanERM:           {"recovery.ERM", "recovery", "mtx", "", ""},
	SpanFLQ:           {"recovery.FLQ", "recovery", "mtx", "", ""},
	SpanSEQ:           {"recovery.SEQ", "recovery", "mtx", "", ""},
	SpanRFP:           {"recovery.RFP", "recovery", "mtx", "", ""},
	InstFlush:         {"queue.flush", "queue", "", "items", "bytes"},
	InstDrain:         {"queue.drain", "queue", "", "items", ""},
	InstMisspec:       {"misspec", "worker", "mtx", "", ""},
	SpanCrash:         {"fault.crash", "fault", "rank", "downtime_ns", ""},
	SpanRedispatch:    {"recovery.redispatch", "recovery", "rank", "restart", ""},
	InstDrop:          {"fault.drop", "fault", "seq", "bytes", "attempt"},
	InstRetransmit:    {"fault.retransmit", "fault", "seq", "bytes", "attempt"},
	InstHeartbeatMiss: {"fault.heartbeat.miss", "fault", "rank", "silence_ns", ""},
	SpanPageServe:     {"pagesrv.shard", "pagesrv", "page", "pages", "wire_bytes"},
	SpanRecvPark:      {"recv.park", "delivery", "", "tag", ""},
	InstRingSpill:     {"ring.spill", "delivery", "", "tag", "overflow"},
	SpanShardCommit:   {"commit.shard", "commit", "mtx", "entries", "bulk_bytes"},
	InstShardVote:     {"commit.shard.vote", "commit", "mtx", "coordinator", ""},
	SpanShardVoteWait: {"commit.shard.votewait", "commit", "mtx", "votes", ""},
}

// KnownEventNames reports every event name the Chrome exporter can emit
// for recorded spans/instants. External validators (tools/tracecheck) use
// it to reject unknown names without hard-coding the list.
func KnownEventNames() []string {
	out := make([]string, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, kindMeta[k].name)
	}
	return out
}

// String reports the kind's event name.
func (k Kind) String() string {
	if k < numKinds {
		return kindMeta[k].name
	}
	return "invalid"
}

// Event is one recorded timeline entry. Start == End denotes an instant.
// V1/V2 are kind-specific arguments (see the Kind constants).
type Event struct {
	Kind       Kind
	Track      int32 // timeline id: the simulated rank (or a synthetic id)
	Start, End sim.Time
	MTX        uint64
	V1, V2     int64
}

// trackInfo labels one timeline for export: Chrome pid (the cluster node)
// and thread name.
type trackInfo struct {
	pid  int
	name string
}

// Clock is the time source spans are stamped against: the virtual-time
// kernel on the vtime backend, the platform's monotonic wall clock on host.
// platform.Platform satisfies it directly (sim.Time aliases platform.Time).
type Clock interface {
	Now() sim.Time
}

// kernelClock adapts a simulation kernel to the Clock interface.
type kernelClock struct{ k *sim.Kernel }

func (c kernelClock) Now() sim.Time { return c.k.Now() }

// DefaultSpanBufCap is the per-track span-buffer capacity in wall-clock
// mode when the caller does not override it (core.Config.HostSpanBufCap):
// 16384 events ≈ 900 KiB per track, allocated once at bind time.
const DefaultSpanBufCap = 1 << 14

// wallSpanFloor is the minimum wall-clock duration a RecvWait-style span
// must reach to be worth recording (see SpanFloor).
const wallSpanFloor sim.Time = 1000 // 1 µs

// spanRing is one track's fixed-size lock-free span buffer for wall-clock
// mode. Writers claim a slot with an atomic fetch-add and store the event;
// claims past capacity are counted as dropped instead of allocating. The
// buffer is read only after every recording goroutine has joined.
type spanRing struct {
	next    atomic.Uint64
	dropped atomic.Uint64
	buf     []Event
}

func (r *spanRing) put(ev Event) {
	i := r.next.Add(1) - 1
	if i >= uint64(len(r.buf)) {
		r.dropped.Add(1)
		return
	}
	r.buf[i] = ev
}

// Tracer records spans and events against a Clock. A nil *Tracer is valid
// and means "tracing disabled": every method is a no-op, so hooks cost a
// nil check and nothing else.
//
// A Tracer may observe several consecutive runs (chained invocations): each
// BindKernel/BindWall stitches the new clock after the previous run's end,
// so multi-invocation benchmarks export one continuous timeline.
//
// In wall-clock mode (BindWall) Span/Instant are safe for concurrent use by
// the goroutines of the tracks registered via SetTrack; everything else —
// binding, track registration, export — is single-threaded by construction
// (it happens between runs, after the platform's goroutines have joined).
type Tracer struct {
	clock  Clock
	base   sim.Time
	spans  bool
	events []Event
	tracks map[int32]trackInfo
	met    *Metrics

	// Wall-clock (concurrent) recording state; unused on vtime.
	wall      bool
	ringCap   int
	rings     []*spanRing // indexed by track id
	flushed   bool
	untracked atomic.Uint64 // wall-mode spans on tracks never registered
}

// New returns a tracer that records spans and metrics.
func New() *Tracer {
	return &Tracer{spans: true, tracks: make(map[int32]trackInfo), met: NewMetrics()}
}

// NewMetricsOnly returns a tracer that maintains the metrics registry but
// records no timeline events — for metrics reports without trace files.
func NewMetricsOnly() *Tracer {
	t := New()
	t.spans = false
	return t
}

// Enabled reports whether timeline recording is active.
func (t *Tracer) Enabled() bool { return t != nil && t.spans }

// Metrics returns the tracer's metric registry (nil for a nil tracer; the
// registry's lookup methods are nil-safe and return nil instruments).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.met
}

// rebind stitches a new clock onto the timeline: subsequent timestamps are
// offset past the previous clock's final time, so chained invocations form
// one monotonic timeline.
func (t *Tracer) rebind(c Clock) {
	if t.clock != nil {
		t.base += t.clock.Now()
	}
	t.clock = c
}

// BindKernel attaches the tracer to a (new) kernel's virtual clock.
func (t *Tracer) BindKernel(k *sim.Kernel) {
	if t == nil {
		return
	}
	if k == nil {
		t.rebind(nil)
		return
	}
	t.rebind(kernelClock{k})
}

// BindWall attaches the tracer to a wall clock (the host platform) and
// switches recording to the concurrent per-track buffers. bufCap is the
// per-track span capacity in events; <= 0 means DefaultSpanBufCap. Buffers
// are allocated lazily by SetTrack and persist across rebinds, so chained
// invocations share one capacity budget per track.
func (t *Tracer) BindWall(c Clock, bufCap int) {
	if t == nil {
		return
	}
	t.rebind(c)
	t.wall = true
	if bufCap > 0 {
		t.ringCap = bufCap
	} else if t.ringCap == 0 {
		t.ringCap = DefaultSpanBufCap
	}
}

// Wall reports whether the tracer records against a wall clock.
func (t *Tracer) Wall() bool { return t != nil && t.wall }

// SpanFloor is the minimum duration a discretionary span (RecvWait) must
// reach to be recorded: 0 in virtual time, where any wait that advanced the
// clock is a modelled event worth keeping, and ~1 µs on the wall clock,
// where every blocking receive takes nonzero real time and recording them
// all would flood the fixed buffers with noise.
func (t *Tracer) SpanFloor() sim.Time {
	if t == nil || !t.wall {
		return 0
	}
	return wallSpanFloor
}

// SetTrack labels a timeline: pid groups tracks (the cluster node), name is
// the per-track label ("worker3", "commit", ...). In wall-clock mode it
// also allocates the track's span buffer, so registration must precede the
// track's first concurrent span.
func (t *Tracer) SetTrack(track, pid int, name string) {
	if t == nil {
		return
	}
	t.tracks[int32(track)] = trackInfo{pid: pid, name: name}
	if t.wall && t.spans && track >= 0 {
		for len(t.rings) <= track {
			t.rings = append(t.rings, nil)
		}
		if t.rings[track] == nil {
			t.rings[track] = &spanRing{buf: make([]Event, t.ringCap)}
		}
	}
}

// Now reports the tracer-relative time — the value to pass as a span's
// start. It returns 0 when recording is off, making the capture-then-record
// pattern free in the disabled state.
func (t *Tracer) Now() sim.Time {
	if t == nil || !t.spans || t.clock == nil {
		return 0
	}
	return t.base + t.clock.Now()
}

// record routes one event to its destination: the shared slice on vtime
// (single-threaded by construction), the track's lock-free buffer on wall.
func (t *Tracer) record(ev Event) {
	if !t.wall {
		t.events = append(t.events, ev)
		return
	}
	tr := int(ev.Track)
	if tr < 0 || tr >= len(t.rings) || t.rings[tr] == nil {
		t.untracked.Add(1)
		return
	}
	t.rings[tr].put(ev)
}

// Span records an interval from start (a value captured with Now) to the
// current clock time.
func (t *Tracer) Span(kind Kind, track int, start sim.Time, mtx uint64, v1, v2 int64) {
	if t == nil || !t.spans || t.clock == nil {
		return
	}
	t.record(Event{
		Kind: kind, Track: int32(track), Start: start, End: t.base + t.clock.Now(),
		MTX: mtx, V1: v1, V2: v2,
	})
}

// Instant records a zero-duration event at the current clock time.
func (t *Tracer) Instant(kind Kind, track int, mtx uint64, v1, v2 int64) {
	if t == nil || !t.spans || t.clock == nil {
		return
	}
	now := t.base + t.clock.Now()
	t.record(Event{
		Kind: kind, Track: int32(track), Start: now, End: now,
		MTX: mtx, V1: v1, V2: v2,
	})
}

// flush folds wall-mode buffers into the export slice, once: each track's
// events sorted by start time (stable, so equal starts keep record order),
// tracks in id order. Recording spans end at the time they are recorded, so
// nested spans land in the buffer before their enclosing span — the sort
// restores per-track start-time monotonicity for export. Must only be
// called after the recording goroutines have joined; a vtime tracer is
// untouched.
func (t *Tracer) flush() {
	if t == nil || !t.wall || t.flushed {
		return
	}
	t.flushed = true
	for _, r := range t.rings {
		if r == nil {
			continue
		}
		n := r.next.Load()
		if n > uint64(len(r.buf)) {
			n = uint64(len(r.buf))
		}
		evs := r.buf[:n]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		t.events = append(t.events, evs...)
	}
	if d := t.DroppedSpans(); d > 0 {
		t.met.Counter("trace.spans.dropped").Add(d)
	}
}

// DroppedSpans reports how many wall-mode events were discarded because a
// track's buffer filled (or its track was never registered).
func (t *Tracer) DroppedSpans() uint64 {
	if t == nil {
		return 0
	}
	d := t.untracked.Load()
	for _, r := range t.rings {
		if r != nil {
			d += r.dropped.Load()
		}
	}
	return d
}

// Events exposes the recorded timeline (tests and custom exporters). In
// wall-clock mode it flushes the per-track buffers first, so it must not be
// called while a run is still recording.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.flush()
	return t.events
}
