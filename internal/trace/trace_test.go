package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dsmtx/internal/sim"
)

// kernelAt builds a kernel and a proc parked at virtual time t.
func kernelAt(t *testing.T, at sim.Time) *sim.Kernel {
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) { p.Advance(at) })
	k.Run(0)
	return k
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.BindKernel(nil)
	tr.SetTrack(0, 0, "x")
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now != 0")
	}
	tr.Span(SpanSubTX, 0, 0, 0, 0, 0)
	tr.Instant(InstFlush, 0, 0, 0, 0)
	if tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	m := tr.Metrics()
	if m != nil {
		t.Fatal("nil tracer has metrics")
	}
	// The whole instrument chain is nil-safe.
	m.Counter("c").Inc()
	m.Gauge("g").Set(3)
	m.Histogram("h").Observe(7)
	if m.Counter("c").Value() != 0 || m.Gauge("g").Max() != 0 || m.Histogram("h").Count() != 0 {
		t.Fatal("nil instruments accumulated values")
	}
	if got := m.Table().String(); !strings.Contains(got, "metric") {
		t.Fatalf("nil metrics table = %q", got)
	}
}

func TestMetricsOnlyRecordsNoSpans(t *testing.T) {
	tr := NewMetricsOnly()
	tr.BindKernel(kernelAt(t, 100))
	if tr.Enabled() {
		t.Fatal("metrics-only tracer reports spans enabled")
	}
	if tr.Now() != 0 {
		t.Fatal("metrics-only Now != 0")
	}
	tr.Span(SpanSubTX, 0, 0, 1, 2, 3)
	if len(tr.Events()) != 0 {
		t.Fatal("metrics-only tracer recorded a span")
	}
	tr.Metrics().Counter("x").Add(2)
	if tr.Metrics().Counter("x").Value() != 2 {
		t.Fatal("metrics-only counter lost the add")
	}
}

func TestSpanAndInstantTimestamps(t *testing.T) {
	tr := New()
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		start := tr.Now()
		p.Advance(250)
		tr.Span(SpanValidate, 3, start, 7, 1, 0)
		p.Advance(50)
		tr.Instant(InstMisspec, 3, 8, 0, 0)
	})
	tr.BindKernel(k)
	k.Run(0)
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Start != 0 || ev[0].End != 250 || ev[0].Track != 3 || ev[0].MTX != 7 {
		t.Fatalf("span = %+v", ev[0])
	}
	if ev[1].Start != 300 || ev[1].End != 300 {
		t.Fatalf("instant = %+v", ev[1])
	}
}

func TestBindKernelStitchesInvocations(t *testing.T) {
	tr := New()
	k1 := sim.NewKernel()
	tr.BindKernel(k1)
	k1.Spawn("p", func(p *sim.Proc) {
		p.Advance(1000)
		tr.Instant(InstFlush, 0, 0, 1, 1)
	})
	k1.Run(0)

	k2 := sim.NewKernel()
	tr.BindKernel(k2)
	k2.Spawn("p", func(p *sim.Proc) {
		p.Advance(10)
		tr.Instant(InstFlush, 0, 0, 2, 2)
	})
	k2.Run(0)

	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[1].Start <= ev[0].Start {
		t.Fatalf("second invocation not stitched after first: %v then %v", ev[0].Start, ev[1].Start)
	}
	if ev[1].Start != 1000+10 {
		t.Fatalf("stitched start = %v, want 1010", ev[1].Start)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := New()
	tr.SetTrack(0, 0, "worker0")
	tr.SetTrack(5, 1, `commit "quoted"`)
	k := sim.NewKernel()
	tr.BindKernel(k)
	k.Spawn("p", func(p *sim.Proc) {
		start := tr.Now()
		p.Advance(1234)
		tr.Span(SpanSubTX, 0, start, 42, 1, 0)
		tr.Instant(InstDrain, 5, 0, 9, 0)
		start = tr.Now()
		p.Advance(567)
		tr.Span(SpanCommit, 5, start, 42, 3, 4096)
	})
	k.Run(0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if e["dur"] == nil {
				t.Fatalf("complete event missing dur: %v", e)
			}
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	// 2 process_name + 2 thread_name + 2 sort_index.
	if meta != 6 || complete != 2 || instants != 1 {
		t.Fatalf("meta=%d complete=%d instants=%d\n%s", meta, complete, instants, buf.String())
	}
	if !strings.Contains(buf.String(), `"ts":1.234`) {
		t.Fatalf("sub-microsecond precision lost:\n%s", buf.String())
	}

	// Deterministic output: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-export differs")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 1024, -5} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Min() != -5 || h.Max() != 1024 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Sum() != 0+1+2+3+1024-5 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestMetricsTableDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Counter("b.count").Add(2)
	m.Counter("a.count").Inc()
	m.Gauge("g").Set(5)
	m.Gauge("g").Set(2)
	m.Histogram("h").Observe(10)
	got := m.Table().String()
	if !strings.Contains(got, "a.count") || !strings.Contains(got, "max 5") {
		t.Fatalf("table = %s", got)
	}
	if strings.Index(got, "a.count") > strings.Index(got, "b.count") {
		t.Fatalf("counters not sorted:\n%s", got)
	}
	if got != m.Table().String() {
		t.Fatal("table not deterministic")
	}
}

func TestStallReportTables(t *testing.T) {
	var r StallReport
	r.Add(StallRow{Track: 0, Label: "worker0", Stage: "S0", Busy: 600, Starvation: 400})
	r.Add(StallRow{Track: 1, Label: "worker1", Stage: "S0", Busy: 1000})
	r.Add(StallRow{Track: 2, Label: "commit", Stage: "commit", VerdictWait: 500, Recovery: 500})
	perRank := r.Table().String()
	for _, want := range []string{"worker0", "worker1", "commit", "60.0%"} {
		if !strings.Contains(perRank, want) {
			t.Fatalf("per-rank table missing %q:\n%s", want, perRank)
		}
	}
	byStage := r.StageTable().String()
	if !strings.Contains(byStage, "S0") || strings.Contains(byStage, "worker0") {
		t.Fatalf("stage table wrong:\n%s", byStage)
	}
	// S0 aggregates both workers: busy 1600 of 2000 = 80%.
	if !strings.Contains(byStage, "80.0%") {
		t.Fatalf("stage aggregation wrong:\n%s", byStage)
	}

	// Merge accumulates by label.
	var r2 StallReport
	r2.Add(StallRow{Track: 0, Label: "worker0", Stage: "S0", Busy: 400})
	r2.Add(StallRow{Track: 9, Label: "pagesrv", Stage: "pagesrv", Blocked: 10})
	r.Merge(&r2)
	if len(r.Rows) != 4 {
		t.Fatalf("merged rows = %d", len(r.Rows))
	}
	if r.Rows[0].Busy != 1000 {
		t.Fatalf("merged worker0 busy = %d", r.Rows[0].Busy)
	}
}

// TestStallReportCommitShardColumn: the vote-wait column renders only for
// sharded-commit reports, one row per commit shard, and Merge propagates
// both the flag and the accumulated wait.
func TestStallReportCommitShardColumn(t *testing.T) {
	base := &StallReport{}
	base.Add(StallRow{Label: "commit", Stage: "commit", Busy: 100})
	if got := base.Table().String(); strings.Contains(got, "vote-wait") {
		t.Fatalf("single-commit-unit report grew a vote-wait column:\n%s", got)
	}

	sharded := &StallReport{CommitShards: true}
	sharded.Add(StallRow{Label: "commit.shard0", Stage: "commit", Busy: 700, VoteWait: 300})
	sharded.Add(StallRow{Label: "commit.shard1", Stage: "commit", Busy: 900, VoteWait: 100})
	got := sharded.Table().String()
	for _, want := range []string{"vote-wait", "commit.shard0", "commit.shard1", "30.0%"} {
		if !strings.Contains(got, want) {
			t.Errorf("sharded table missing %q:\n%s", want, got)
		}
	}

	// VoteWait is part of the accounted total: busy 700 + vote 300 = 70% busy.
	if !strings.Contains(got, "70.0%") {
		t.Errorf("vote-wait not in the row total:\n%s", got)
	}

	agg := &StallReport{}
	agg.Merge(sharded)
	agg.Merge(sharded)
	if !agg.CommitShards {
		t.Fatal("Merge dropped the CommitShards flag")
	}
	if agg.Rows[0].VoteWait != 600 {
		t.Fatalf("merged vote wait = %d, want 600", agg.Rows[0].VoteWait)
	}
	if got := agg.StageTable().String(); !strings.Contains(got, "vote-wait") {
		t.Fatalf("stage table missing vote-wait column:\n%s", got)
	}
}
