// Package netrun orchestrates distributed jobs on the net backend: a
// coordinator process launches (or joins) dsmtxd daemons, distributes the
// job spec, drives the invocation barrier, and collects the result; each
// daemon hosts a contiguous range of ranks on a mesh-bound platform
// (internal/platform/net) and runs the unmodified core runtime over it.
//
// The package is deliberately ignorant of concrete workloads: a provider —
// registered by internal/workloads at init — resolves a JobSpec's benchmark
// name into programs, so daemons embedded in any binary that links the
// workload set (dsmtxd, dsmtxrun, test binaries, benchhost) can serve jobs
// without netrun importing the workload table.
package netrun

import (
	"encoding/json"
	"fmt"
	gonet "net"
	"time"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/platform"
	"dsmtx/internal/wire"
)

// DaemonEnv marks a process as a spawn-local daemon: when set to 1, main
// (and TestMain) divert into DaemonMain before flag parsing, so any binary
// that links netrun can re-exec itself as a daemon fleet.
const DaemonEnv = "DSMTX_NET_DAEMON"

// ListenEnv optionally overrides the spawn-local daemon's listen address
// (default loopback with an ephemeral port).
const ListenEnv = "DSMTX_NET_LISTEN"

// listenLine is the advertisement a daemon prints on stdout once its
// listener is bound; the coordinator scrapes the address after it.
const listenLine = "DSMTXD LISTEN "

// JobSpec is everything a daemon needs to reconstruct the run: the
// benchmark by name plus the runtime knobs. Every daemon builds an
// identical core.Config from it, so rank layout agrees across processes.
type JobSpec struct {
	Bench       string
	Scale       int
	MisspecRate float64
	Seed        uint64
	Cores       int
	// PageServShards overrides core.Config.PageServShards when > 0.
	PageServShards int
	// Invocations overrides the benchmark's invocation count when > 0
	// (tests use 0 = the benchmark's own).
	Invocations int
}

// Program is what a provider yields per invocation: a runnable core
// program that also knows its plan and output checksum.
type Program interface {
	core.Program
	Plan() pipeline.Plan
	Checksum(img *mem.Image) uint64
}

// ProgramSet is one benchmark's invocation chain.
type ProgramSet struct {
	Invocations int
	New         func(inv int) Program
}

// Provider resolves a job spec into programs.
type Provider func(spec JobSpec) (ProgramSet, error)

var provider Provider

// SetProvider installs the workload resolver. Called from an init function
// (internal/workloads registers the benchmark table).
func SetProvider(p Provider) { provider = p }

// Result is the coordinator's aggregate over all daemons and invocations.
type Result struct {
	Checksum  uint64
	Committed uint64
	Misspecs  uint64
	// Elapsed is the commit daemon's summed per-invocation platform time
	// (wall-clock on the net backend).
	Elapsed platform.Duration
	// Traffic sums every daemon's locally-accounted wire traffic.
	Traffic platform.TrafficStats
	Daemons int
}

// Control-plane bodies (JSON: orchestration is rare, debuggable beats
// compact).

type jobWire struct {
	JobID uint64
	Self  int
	Addrs []string
	Spec  JobSpec
}

type jobOKWire struct {
	Invocations int
}

type startWire struct {
	Inv int
}

type invDoneWire struct {
	Inv int
}

type errorWire struct {
	Error string
}

// daemonResult is one daemon's summed contribution. Protocol counters are
// only nonzero on the commit daemon (the commit unit owns them); traffic is
// accounted where the sends happen, so every daemon contributes.
type daemonResult struct {
	Committed   uint64
	Misspecs    uint64
	Elapsed     platform.Duration
	Traffic     platform.TrafficStats
	Checksum    uint64
	HasChecksum bool
}

// writeCtl sends one JSON-bodied control frame.
func writeCtl(conn gonet.Conn, typ wire.FrameType, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > wire.MaxFrame {
		return fmt.Errorf("netrun: control body %d bytes exceeds frame limit", len(body))
	}
	_, err = conn.Write(wire.AppendFrame(nil, typ, body))
	return err
}

// readCtl reads one control frame and unmarshals it into v (pass nil to
// accept any body). It returns the frame type so callers can branch on
// errors and state mismatches.
func readCtl(conn gonet.Conn, want wire.FrameType, v any) error {
	typ, body, _, err := wire.ReadFrame(conn, nil)
	if err != nil {
		return err
	}
	if typ == wire.FrameError {
		var e errorWire
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("netrun: remote: %s", e.Error)
		}
		return fmt.Errorf("netrun: remote error")
	}
	if typ != want {
		return fmt.Errorf("netrun: expected frame %d, got %d", want, typ)
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(body, v)
}

// buildConfig is the one place a net run's core.Config is assembled, so
// coordinator-side validation and every daemon agree on the layout.
func buildConfig(spec JobSpec, plan pipeline.Plan) core.Config {
	cfg := core.DefaultConfig(spec.Cores, plan)
	cfg.Backend = core.BackendNet
	if spec.PageServShards > 0 {
		cfg.PageServShards = spec.PageServShards
	}
	return cfg
}

// handshakeTimeout bounds the control-plane waits that should be instant
// (hello, job acceptance); invocation barriers wait without deadline —
// run time belongs to the workload.
const handshakeTimeout = 20 * time.Second
