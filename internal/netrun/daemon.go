package netrun

import (
	"errors"
	"fmt"
	"io"
	gonet "net"
	"os"
	"sync"
	"time"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/platform"
	netplat "dsmtx/internal/platform/net"
	"dsmtx/internal/wire"
)

// DaemonMain is the spawn-local daemon entry point: bind a listener
// (loopback/ephemeral unless ListenEnv overrides), advertise it on stdout,
// serve one coordinator session (a stream of jobs on one control
// connection), and exit when the coordinator hangs up. Binaries call it
// from main/TestMain when DaemonEnv is set, before any flag parsing.
func DaemonMain() int {
	addr := os.Getenv(ListenEnv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmtxd: %v\n", err)
		return 1
	}
	fmt.Printf("%s%s\n", listenLine, ln.Addr())
	return Serve(ln)
}

// Serve accepts one coordinator session on ln — a control connection
// carrying successive Job frames, plus each job's data connections — and
// returns an exit code when the coordinator disconnects. The listener is
// closed on return. Spawn-local daemons use this: their lifetime is their
// coordinator's.
func Serve(ln gonet.Listener) int {
	d := newDaemon(ln)
	go d.acceptLoop()
	code := <-d.sessionDone
	d.close()
	ln.Close()
	return code
}

// ServeLoop serves coordinator sessions until stop is closed: when one
// coordinator disconnects the daemon stays up and accepts the next — the
// persistent `dsmtxd -listen` fleet mode. On stop it closes the listener
// (new sessions are rejected at the TCP level), waits for the in-flight
// session to finish its current job stream, and returns the last nonzero
// session code (0 when every session succeeded).
func ServeLoop(ln gonet.Listener, stop <-chan struct{}) int {
	d := newDaemon(ln)
	go d.acceptLoop()
	exit := 0
	for {
		select {
		case code := <-d.sessionDone:
			if code != 0 {
				exit = code
			}
		case <-stop:
			ln.Close()
			d.drain()
			d.close()
			return exit
		}
	}
}

// newDaemon builds the serving state.
func newDaemon(ln gonet.Listener) *daemon {
	return &daemon{
		ln:          ln,
		meshes:      make(map[uint64]*netplat.Mesh),
		arrival:     make(map[uint64]chan struct{}),
		finished:    make(map[uint64]bool),
		sessionDone: make(chan int, 1),
	}
}

// daemon is one serving process's state: at most one coordinator session
// at a time, each a stream of jobs; every job owns a mesh, and inbound
// data connections are routed to their job's mesh by the JobID in their
// hello.
type daemon struct {
	ln gonet.Listener

	mu       sync.Mutex
	meshes   map[uint64]*netplat.Mesh
	arrival  map[uint64]chan struct{} // closed when the job's mesh registers
	finished map[uint64]bool          // jobs already torn down (stale data conns)
	ctlBusy  bool
	ctlIdle  *sync.Cond // signalled when ctlBusy drops (drain waits)
	closed   bool

	sessionDone chan int // one code per completed coordinator session
}

// acceptLoop dispatches inbound connections on their first frame: the
// coordinator's control stream runs the job stream; peer data streams park
// until their job's spec has built the mesh, then join it.
func (d *daemon) acceptLoop() {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		go d.dispatch(conn)
	}
}

func (d *daemon) dispatch(conn gonet.Conn) {
	typ, body, _, err := wire.ReadFrame(conn, nil)
	if err != nil || typ != wire.FrameHello {
		conn.Close()
		return
	}
	h, err := wire.ParseHello(body)
	if err != nil {
		conn.Close()
		return
	}
	switch h.Role {
	case wire.RoleControl:
		d.mu.Lock()
		if d.ctlBusy || d.closed {
			d.mu.Unlock()
			// One coordinator at a time; a concurrent second one is
			// rejected by closing its stream.
			conn.Close()
			return
		}
		d.ctlBusy = true
		d.mu.Unlock()
		code := d.control(conn)
		d.mu.Lock()
		d.ctlBusy = false
		// Job tombstones belong to the ended session; a persistent daemon
		// would otherwise accrete one per job forever.
		d.finished = make(map[uint64]bool)
		if d.ctlIdle != nil {
			d.ctlIdle.Broadcast()
		}
		d.mu.Unlock()
		d.sessionDone <- code
	case wire.RoleData:
		// The peer may dial before our own job spec arrives; wait for the
		// job's mesh, then hand over.
		m := d.meshFor(h.JobID)
		if m == nil {
			conn.Close()
			return
		}
		if err := m.AcceptData(conn, h); err != nil {
			fmt.Fprintf(os.Stderr, "dsmtxd: %v\n", err)
		}
	default:
		conn.Close()
	}
}

// registerMesh publishes a job's mesh and wakes data connections parked on
// its JobID.
func (d *daemon) registerMesh(jobID uint64, m *netplat.Mesh) {
	d.mu.Lock()
	d.meshes[jobID] = m
	if ch, ok := d.arrival[jobID]; ok {
		close(ch)
		delete(d.arrival, jobID)
	}
	d.mu.Unlock()
}

// unregisterMesh retires a finished job: its mesh closes and late data
// dials for it are rejected instead of parked.
func (d *daemon) unregisterMesh(jobID uint64) {
	d.mu.Lock()
	m := d.meshes[jobID]
	delete(d.meshes, jobID)
	d.finished[jobID] = true
	if ch, ok := d.arrival[jobID]; ok {
		close(ch)
		delete(d.arrival, jobID)
	}
	d.mu.Unlock()
	if m != nil {
		m.Close()
	}
}

// meshFor resolves the mesh serving jobID, waiting (bounded by the
// handshake timeout) for the job spec to arrive on the control stream. It
// returns nil for unknown-and-never-arriving or already-finished jobs.
func (d *daemon) meshFor(jobID uint64) *netplat.Mesh {
	d.mu.Lock()
	if m, ok := d.meshes[jobID]; ok {
		d.mu.Unlock()
		return m
	}
	if d.finished[jobID] || d.closed {
		d.mu.Unlock()
		return nil
	}
	ch, ok := d.arrival[jobID]
	if !ok {
		ch = make(chan struct{})
		d.arrival[jobID] = ch
	}
	d.mu.Unlock()

	select {
	case <-ch:
		d.mu.Lock()
		m := d.meshes[jobID]
		d.mu.Unlock()
		return m
	case <-time.After(handshakeTimeout):
		return nil
	}
}

// drain blocks until the in-flight coordinator session (if any) finishes.
func (d *daemon) drain() {
	d.mu.Lock()
	if d.ctlIdle == nil {
		d.ctlIdle = sync.NewCond(&d.mu)
	}
	for d.ctlBusy {
		d.ctlIdle.Wait()
	}
	d.mu.Unlock()
}

// close rejects future data waits and wakes parked ones.
func (d *daemon) close() {
	d.mu.Lock()
	d.closed = true
	for id, ch := range d.arrival {
		close(ch)
		delete(d.arrival, id)
	}
	d.mu.Unlock()
}

// control serves one coordinator session: a stream of jobs on one
// connection, ending cleanly when the coordinator closes it. Any job error
// is reported back as a FrameError and ends the session (the stream is
// desynchronized).
func (d *daemon) control(conn gonet.Conn) int {
	defer conn.Close()
	for {
		err := d.serveJob(conn)
		switch {
		case err == nil:
			// Job done; wait for the coordinator's next Job frame.
		case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, gonet.ErrClosed):
			return 0
		default:
			_ = writeCtl(conn, wire.FrameError, errorWire{Error: err.Error()})
			fmt.Fprintf(os.Stderr, "dsmtxd: %v\n", err)
			return 1
		}
	}
}

func (d *daemon) serveJob(conn gonet.Conn) error {
	var job jobWire
	if err := readCtl(conn, wire.FrameJob, &job); err != nil {
		return err
	}
	if provider == nil {
		return fmt.Errorf("netrun: no workload provider registered in this binary")
	}
	set, err := provider(job.Spec)
	if err != nil {
		return err
	}
	invocations := set.Invocations
	if job.Spec.Invocations > 0 {
		invocations = job.Spec.Invocations
	}
	if invocations < 1 {
		invocations = 1
	}

	mesh := netplat.NewMesh(netplat.MeshConfig{
		JobID: job.JobID,
		Self:  job.Self,
		Addrs: job.Addrs,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dsmtxd[%d]: "+format+"\n", append([]any{job.Self}, args...)...)
		},
	})
	d.registerMesh(job.JobID, mesh)
	defer d.unregisterMesh(job.JobID)

	if err := writeCtl(conn, wire.FrameJobOK, jobOKWire{Invocations: invocations}); err != nil {
		return err
	}

	// The commit rank lands on the last daemon (contiguous split), which
	// therefore chains the committed image across invocations and owns the
	// checksum; other daemons rebuild their views through Copy-On-Access.
	commitDaemon := job.Self == len(job.Addrs)-1
	var img *mem.Image
	var agg daemonResult
	var lastProg Program
	for inv := 0; inv < invocations; inv++ {
		var start startWire
		if err := readCtl(conn, wire.FrameStart, &start); err != nil {
			return err
		}
		if start.Inv != inv {
			return fmt.Errorf("netrun: start for invocation %d, expected %d", start.Inv, inv)
		}
		prog := set.New(inv)
		lastProg = prog
		cfg := buildConfig(job.Spec, prog.Plan())
		cfg.Platform = func(ranks int) (platform.Platform, error) {
			return mesh.Platform(uint64(inv), ranks, job.Spec.Cores)
		}
		sys, err := core.NewSystem(cfg, prog, img)
		if err != nil {
			return fmt.Errorf("netrun: %s inv %d: %w", job.Spec.Bench, inv, err)
		}
		res, err := sys.Run()
		if err != nil {
			return fmt.Errorf("netrun: %s inv %d: %w", job.Spec.Bench, inv, err)
		}
		if commitDaemon {
			img = sys.CommitImage()
		}
		agg.Committed += res.Committed
		agg.Misspecs += res.Misspecs
		agg.Elapsed += res.Elapsed
		agg.Traffic.Add(res.Traffic)
		if err := writeCtl(conn, wire.FrameInvDone, invDoneWire{Inv: inv}); err != nil {
			return err
		}
	}
	if commitDaemon {
		agg.Checksum = lastProg.Checksum(img)
		agg.HasChecksum = true
	}
	return writeCtl(conn, wire.FrameResult, agg)
}
