package netrun

import (
	"fmt"
	gonet "net"
	"os"
	"sync"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/platform"
	netplat "dsmtx/internal/platform/net"
	"dsmtx/internal/wire"
)

// DaemonMain is the spawn-local daemon entry point: bind a listener
// (loopback/ephemeral unless ListenEnv overrides), advertise it on stdout,
// serve exactly one job, and exit. Binaries call it from main/TestMain when
// DaemonEnv is set, before any flag parsing.
func DaemonMain() int {
	addr := os.Getenv(ListenEnv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmtxd: %v\n", err)
		return 1
	}
	fmt.Printf("%s%s\n", listenLine, ln.Addr())
	return Serve(ln)
}

// Serve accepts one control connection plus the job's data connections on
// ln, runs the job, and returns an exit code. The listener is closed on
// return.
func Serve(ln gonet.Listener) int {
	d := &daemon{
		ln:        ln,
		meshReady: make(chan struct{}),
		ctlDone:   make(chan int, 1),
	}
	go d.acceptLoop()
	code := <-d.ctlDone
	ln.Close()
	return code
}

// daemon is one serving process's state for its single job.
type daemon struct {
	ln        gonet.Listener
	mesh      *netplat.Mesh
	meshReady chan struct{} // closed once mesh is non-nil; parks early data conns
	ctlOnce   sync.Once
	ctlDone   chan int
}

// acceptLoop dispatches inbound connections on their first frame: the
// coordinator's control stream runs the job; peer data streams park until
// the job spec has built the mesh, then join it.
func (d *daemon) acceptLoop() {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		go d.dispatch(conn)
	}
}

func (d *daemon) dispatch(conn gonet.Conn) {
	typ, body, _, err := wire.ReadFrame(conn, nil)
	if err != nil || typ != wire.FrameHello {
		conn.Close()
		return
	}
	h, err := wire.ParseHello(body)
	if err != nil {
		conn.Close()
		return
	}
	switch h.Role {
	case wire.RoleControl:
		var taken bool
		d.ctlOnce.Do(func() {
			taken = true
			d.ctlDone <- d.control(conn)
		})
		if !taken {
			conn.Close()
		}
	case wire.RoleData:
		// The peer may dial before our own job spec arrives; wait for the
		// mesh, then hand over.
		<-d.meshReady
		if err := d.mesh.AcceptData(conn, h); err != nil {
			fmt.Fprintf(os.Stderr, "dsmtxd: %v\n", err)
		}
	default:
		conn.Close()
	}
}

// control runs the job end to end on the coordinator's stream. Any error is
// reported back as a FrameError and fails the process.
func (d *daemon) control(conn gonet.Conn) int {
	defer conn.Close()
	if err := d.serveJob(conn); err != nil {
		_ = writeCtl(conn, wire.FrameError, errorWire{Error: err.Error()})
		fmt.Fprintf(os.Stderr, "dsmtxd: %v\n", err)
		return 1
	}
	return 0
}

func (d *daemon) serveJob(conn gonet.Conn) error {
	var job jobWire
	if err := readCtl(conn, wire.FrameJob, &job); err != nil {
		return err
	}
	if provider == nil {
		return fmt.Errorf("netrun: no workload provider registered in this binary")
	}
	set, err := provider(job.Spec)
	if err != nil {
		return err
	}
	invocations := set.Invocations
	if job.Spec.Invocations > 0 {
		invocations = job.Spec.Invocations
	}
	if invocations < 1 {
		invocations = 1
	}

	d.mesh = netplat.NewMesh(netplat.MeshConfig{
		JobID: job.JobID,
		Self:  job.Self,
		Addrs: job.Addrs,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dsmtxd[%d]: "+format+"\n", append([]any{job.Self}, args...)...)
		},
	})
	close(d.meshReady)
	defer d.mesh.Close()

	if err := writeCtl(conn, wire.FrameJobOK, jobOKWire{Invocations: invocations}); err != nil {
		return err
	}

	// The commit rank lands on the last daemon (contiguous split), which
	// therefore chains the committed image across invocations and owns the
	// checksum; other daemons rebuild their views through Copy-On-Access.
	commitDaemon := job.Self == len(job.Addrs)-1
	var img *mem.Image
	var agg daemonResult
	var lastProg Program
	for inv := 0; inv < invocations; inv++ {
		var start startWire
		if err := readCtl(conn, wire.FrameStart, &start); err != nil {
			return err
		}
		if start.Inv != inv {
			return fmt.Errorf("netrun: start for invocation %d, expected %d", start.Inv, inv)
		}
		prog := set.New(inv)
		lastProg = prog
		cfg := buildConfig(job.Spec, prog.Plan())
		cfg.Platform = func(ranks int) (platform.Platform, error) {
			return d.mesh.Platform(uint64(inv), ranks, job.Spec.Cores)
		}
		sys, err := core.NewSystem(cfg, prog, img)
		if err != nil {
			return fmt.Errorf("netrun: %s inv %d: %w", job.Spec.Bench, inv, err)
		}
		res, err := sys.Run()
		if err != nil {
			return fmt.Errorf("netrun: %s inv %d: %w", job.Spec.Bench, inv, err)
		}
		if commitDaemon {
			img = sys.CommitImage()
		}
		agg.Committed += res.Committed
		agg.Misspecs += res.Misspecs
		agg.Elapsed += res.Elapsed
		agg.Traffic.Add(res.Traffic)
		if err := writeCtl(conn, wire.FrameInvDone, invDoneWire{Inv: inv}); err != nil {
			return err
		}
	}
	if commitDaemon {
		agg.Checksum = lastProg.Checksum(img)
		agg.HasChecksum = true
	}
	return writeCtl(conn, wire.FrameResult, agg)
}
