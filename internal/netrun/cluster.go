package netrun

import (
	"bufio"
	"fmt"
	"io"
	gonet "net"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"time"

	"dsmtx/internal/platform"
	"dsmtx/internal/wire"
)

// jobCounter makes job IDs unique within a coordinator process; combined
// with the PID they are unique enough across a machine to reject stale
// redials from a previous job.
var jobCounter atomic.Uint64

func newJobID() uint64 {
	return uint64(os.Getpid())<<32 | jobCounter.Add(1)
}

// Cluster is a coordinator's handle on a daemon fleet: either processes it
// spawned on loopback (LaunchLocal) or remote daemons it joined (Connect).
// The control connections persist across Run calls — daemons serve
// successive jobs on the same session — so a warm cluster amortizes spawn
// and dial cost over many jobs.
type Cluster struct {
	addrs []string
	conns []gonet.Conn
	procs []*exec.Cmd
	// sessionID identifies this coordinator's control session; each Run
	// additionally mints a fresh job ID so daemons can tell one job's data
	// connections from a stale redial of the previous job's.
	sessionID uint64
}

// LaunchLocal forks daemons copies of exe (normally os.Args[0]) on
// loopback, reading each one's advertised listener address, and dials
// their control connections. The spawned process must divert into
// DaemonMain when DaemonEnv is set — dsmtxd, dsmtxrun, benchhost, and the
// workloads test binary all do.
func LaunchLocal(daemons int, exe string) (*Cluster, error) {
	if daemons < 1 {
		return nil, fmt.Errorf("netrun: need at least 1 daemon, got %d", daemons)
	}
	c := &Cluster{sessionID: newJobID()}
	for i := 0; i < daemons; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), DaemonEnv+"=1")
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			c.Close()
			return nil, fmt.Errorf("netrun: spawn daemon %d: %w", i, err)
		}
		c.procs = append(c.procs, cmd)
		addr, err := scrapeListenAddr(out)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netrun: daemon %d: %w", i, err)
		}
		c.addrs = append(c.addrs, addr)
		// Keep draining the daemon's stdout so it never blocks on a full
		// pipe; anything after the advertisement is diagnostics.
		go func() { io.Copy(os.Stderr, out) }()
	}
	if err := c.dialControl(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Connect joins already-running daemons (dsmtxd -listen on each host) as
// their coordinator. Daemon order is rank order: the last address hosts
// the commit unit.
func Connect(addrs []string) (*Cluster, error) {
	if len(addrs) < 1 {
		return nil, fmt.Errorf("netrun: need at least one daemon address")
	}
	c := &Cluster{sessionID: newJobID(), addrs: append([]string(nil), addrs...)}
	if err := c.dialControl(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// scrapeListenAddr reads daemon stdout until the listener advertisement.
func scrapeListenAddr(out io.Reader) (string, error) {
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, listenLine) {
			return strings.TrimSpace(strings.TrimPrefix(line, listenLine)), nil
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("daemon exited before advertising a listener")
}

// dialControl opens the control connection to every daemon.
func (c *Cluster) dialControl() error {
	for i, addr := range c.addrs {
		conn, err := gonet.DialTimeout("tcp", addr, handshakeTimeout)
		if err != nil {
			return fmt.Errorf("netrun: control dial daemon %d (%s): %w", i, addr, err)
		}
		hello := wire.Hello{Role: wire.RoleControl, JobID: c.sessionID}
		if _, err := conn.Write(wire.AppendHello(nil, hello)); err != nil {
			conn.Close()
			return fmt.Errorf("netrun: control hello daemon %d: %w", i, err)
		}
		c.conns = append(c.conns, conn)
	}
	return nil
}

// Daemons reports the fleet size.
func (c *Cluster) Daemons() int { return len(c.addrs) }

// Run executes one job across the fleet: distribute the spec, drive the
// per-invocation start/done barrier, and collect every daemon's result.
func (c *Cluster) Run(spec JobSpec) (Result, error) {
	// Validate coordinator-side with the daemons' own config construction so
	// errors surface before any process starts working. The platform factory
	// is a placeholder — daemons build the real mesh-bound one.
	if provider == nil {
		return Result{}, fmt.Errorf("netrun: no workload provider registered in this binary")
	}
	set, err := provider(spec)
	if err != nil {
		return Result{}, err
	}
	cfg := buildConfig(spec, set.New(0).Plan())
	cfg.Platform = func(int) (platform.Platform, error) {
		return nil, fmt.Errorf("netrun: coordinator-side config is validate-only")
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if spec.Cores < len(c.addrs) {
		return Result{}, fmt.Errorf("netrun: %d cores across %d daemons: need at least one rank per daemon", spec.Cores, len(c.addrs))
	}

	// A fresh ID per job: persistent daemons key each job's mesh on it, so
	// successive jobs on one session never adopt each other's (or a stale
	// redial's) data connections.
	jobID := newJobID()
	for i, conn := range c.conns {
		job := jobWire{JobID: jobID, Self: i, Addrs: c.addrs, Spec: spec}
		if err := writeCtl(conn, wire.FrameJob, job); err != nil {
			return Result{}, fmt.Errorf("netrun: job to daemon %d: %w", i, err)
		}
	}
	invocations := 0
	for i, conn := range c.conns {
		var ok jobOKWire
		conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		err := readCtl(conn, wire.FrameJobOK, &ok)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			return Result{}, fmt.Errorf("netrun: daemon %d: %w", i, err)
		}
		if i == 0 {
			invocations = ok.Invocations
		} else if ok.Invocations != invocations {
			return Result{}, fmt.Errorf("netrun: daemon %d plans %d invocations, daemon 0 plans %d", i, ok.Invocations, invocations)
		}
	}

	for inv := 0; inv < invocations; inv++ {
		for i, conn := range c.conns {
			if err := writeCtl(conn, wire.FrameStart, startWire{Inv: inv}); err != nil {
				return Result{}, fmt.Errorf("netrun: start %d to daemon %d: %w", inv, i, err)
			}
		}
		for i, conn := range c.conns {
			var done invDoneWire
			if err := readCtl(conn, wire.FrameInvDone, &done); err != nil {
				return Result{}, fmt.Errorf("netrun: daemon %d invocation %d: %w", i, inv, err)
			}
			if done.Inv != inv {
				return Result{}, fmt.Errorf("netrun: daemon %d finished invocation %d, expected %d", i, done.Inv, inv)
			}
		}
	}

	var res Result
	res.Daemons = len(c.conns)
	gotChecksum := false
	for i, conn := range c.conns {
		var dr daemonResult
		conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		err := readCtl(conn, wire.FrameResult, &dr)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			return Result{}, fmt.Errorf("netrun: result from daemon %d: %w", i, err)
		}
		res.Traffic.Add(dr.Traffic)
		if dr.HasChecksum {
			if gotChecksum {
				return Result{}, fmt.Errorf("netrun: two daemons claim the commit rank")
			}
			gotChecksum = true
			res.Checksum = dr.Checksum
			res.Committed = dr.Committed
			res.Misspecs = dr.Misspecs
			res.Elapsed = dr.Elapsed
		}
	}
	if !gotChecksum {
		return Result{}, fmt.Errorf("netrun: no daemon reported the committed checksum")
	}
	return res, nil
}

// Close tears the fleet down: control connections first (daemons exit when
// their job ends and the stream closes), then the spawned processes.
func (c *Cluster) Close() {
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = nil
	for _, cmd := range c.procs {
		if cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(cmd *exec.Cmd) { cmd.Wait(); close(done) }(cmd)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	c.procs = nil
}
