package tlsrt

import (
	"testing"

	"dsmtx/internal/pipeline"
)

func TestPlanShape(t *testing.T) {
	p := Plan()
	if p.Name != "TLS" {
		t.Fatalf("Name = %q", p.Name)
	}
	if !p.Sync {
		t.Fatal("TLS plan must carry the sync ring")
	}
	if len(p.Stages) != 1 || p.Stages[0].Kind != pipeline.Parallel {
		t.Fatalf("stages = %+v, want one parallel stage", p.Stages)
	}
}

func TestPlanNoSyncShape(t *testing.T) {
	p := PlanNoSync()
	if p.Sync {
		t.Fatal("PlanNoSync must not carry a ring")
	}
	if len(p.Stages) != 1 || p.Stages[0].Kind != pipeline.Parallel {
		t.Fatalf("stages = %+v", p.Stages)
	}
}

func TestPlanLaysOutOnAnyPool(t *testing.T) {
	for _, workers := range []int{1, 2, 30, 126} {
		l, err := pipeline.NewLayout(Plan(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(l.Assign[0]) != workers {
			t.Fatalf("workers=%d: pool size %d", workers, len(l.Assign[0]))
		}
	}
}
