// Package tlsrt captures the TLS-only comparison runtime: thread-level
// speculation in the DOACROSS discipline, built on the same DSMTX substrate.
//
// In TLS each loop iteration is a single-threaded transaction executed
// entirely by one worker, with iterations assigned round-robin across the
// pool (per the STAMPede [27] / Zhai [34] algorithms the paper's baseline
// follows). Loop-carried dependences that cannot be speculated are
// *synchronized*: their values are forwarded from the worker running
// iteration k to the worker running iteration k+1 over a ring of queues —
// a cyclic communication pattern, so the forwarding latency sits on the
// critical path of execution. That cyclic pattern is exactly what limits
// DOACROSS/TLS scalability as inter-core latency grows (Fig. 1), and what
// Spec-DSWP's acyclic pipelines avoid.
//
// An MTX with one subTX degenerates to a single-threaded transaction, so
// the DSMTX runtime supports TLS directly: this package provides the TLS
// plan shape and documents the conventions TLS programs follow. The plan
// carries no execution-platform assumptions — TLS programs run on
// whichever backend (vtime or host) the core.Config selects, like any
// other plan.
package tlsrt

import "dsmtx/internal/pipeline"

// Plan returns the TLS execution plan: one fully parallel stage whose pool
// carries the synchronization ring.
func Plan() pipeline.Plan {
	p := pipeline.SpecDOALL()
	p.Name = "TLS"
	p.Sync = true
	return p
}

// PlanNoSync returns the TLS plan for loops with no synchronized
// dependences (pure Spec-DOALL under TLS — e.g. 052.alvinn and swaptions,
// where the paper notes the TLS and DSMTX parallelizations coincide).
func PlanNoSync() pipeline.Plan {
	p := pipeline.SpecDOALL()
	p.Name = "TLS"
	return p
}

// Conventions TLS programs on this runtime follow:
//
//  1. The stage body receives each synchronized dependence with
//     Ctx.SyncRecv immediately before its first use and forwards it with
//     Ctx.SyncSend immediately after its last def — the optimal placement
//     of Zhai's value-communication optimization. Everything before the
//     recv overlaps with the predecessor iteration; everything between
//     recv and send is the serial section.
//  2. The first iteration after a loop entry or a recovery has no running
//     predecessor; Ctx.EpochFirst selects loading the committed value
//     instead of receiving it.
//  3. Speculated accesses use Ctx.Read / Ctx.Write exactly as under
//     Spec-DSWP; validation and commit are unchanged (single-subTX MTXs).
