package cluster

import (
	"fmt"

	"dsmtx/internal/sim"
	"dsmtx/internal/trace"
)

// Reliable-delivery layer, engaged only when the fault plan can lose
// traffic (drop or ack-drop rate > 0). It models what a lossy interconnect
// forces a real runtime's NIC firmware to do:
//
//   - every inter-node message carries a per-(src,dst)-link sequence
//     number piggybacked on the payload (Message.Seq);
//   - the receiver acks each copy it sees and releases messages to the
//     destination rank strictly in sequence order, holding out-of-order
//     arrivals in a reorder buffer — this subsumes the non-overtaking
//     clamp the plain path gets from lastArrival;
//   - the sender keeps a retransmission timer per in-flight message with
//     exponential backoff (faults.Injector.RTO); an arriving ack cancels
//     it via sim.Kernel.AtCancel, so a cancelled timer can never stretch
//     the run's virtual elapsed time.
//
// Acks are modelled as NIC-hardware acks: latency-only, no sender-side
// serialization (they are 16-byte wire frames riding the reverse link's
// control channel; their bytes count as control traffic so the per-class
// sums still reproduce the totals). Retransmissions re-serialize through
// the NIC like any send — losing a message costs real wire time.
//
// Intra-node traffic never takes this path: those "links" are memory
// backed and lossless, and a (src,dst) pair is always entirely intra- or
// entirely inter-node, so each pair has exactly one ordering mechanism.

// ackWireBytes is the modelled size of one ack frame.
const ackWireBytes = 16

// relLink is the per-(src,dst) reliable-link state: the sender's next
// sequence number and the receiver's reorder buffer.
type relLink struct {
	nextSeq     uint64
	nextDeliver uint64
	held        map[uint64]Message
}

// relState tracks one message in flight: whether any copy has been acked
// and the cancel hook for the currently armed retransmission timer.
type relState struct {
	acked  bool
	cancel func()
}

// sendReliable assigns the link sequence number and launches attempt 0.
func (m *Machine) sendReliable(msg Message) {
	pair := [2]int{msg.From, msg.To}
	link := m.rel[pair]
	if link == nil {
		link = &relLink{held: make(map[uint64]Message)}
		m.rel[pair] = link
	}
	msg.Seq = link.nextSeq
	link.nextSeq++
	m.relAttempt(link, msg, &relState{}, 0)
}

// relAttempt transmits one copy of msg (attempt n) and arms the
// retransmission timer for attempt n+1.
func (m *Machine) relAttempt(link *relLink, msg Message, st *relState, attempt int) {
	now := m.k.Now()
	bytes := uint64(msg.Bytes)
	m.stats.Messages++
	m.stats.Bytes += bytes
	m.stats.InterNodeBytes += bytes
	switch msg.Class {
	case ClassQueue:
		m.stats.QueueMessages++
		m.stats.QueueBytes += bytes
	case ClassPage:
		m.stats.PageMessages++
		m.stats.PageBytes += bytes
	default:
		m.stats.ControlMessages++
		m.stats.ControlBytes += bytes
	}
	if attempt > 0 {
		m.stats.RetransMessages++
		m.stats.RetransBytes += bytes
		m.tr.Instant(trace.InstRetransmit, msg.From, msg.Seq, int64(msg.Bytes), int64(attempt))
	}
	srcNode := m.cfg.NodeOf(msg.From)
	depart := max(now, m.nicFree[srcNode])
	xmit := sim.Duration(float64(msg.Bytes) / m.cfg.bandwidthOf(srcNode) * 1e9)
	m.nicFree[srcNode] = depart + xmit
	if m.inj.DropData(msg.From, msg.To, msg.Seq, attempt) {
		m.stats.DroppedMessages++
		m.stats.DroppedBytes += bytes
		m.tr.Instant(trace.InstDrop, msg.From, msg.Seq, int64(msg.Bytes), int64(attempt))
	} else {
		lat := m.cfg.InterNodeLatency +
			m.inj.ExtraLatency(msg.From, msg.To, msg.Seq, attempt, now, m.cfg.InterNodeLatency)
		m.k.At(depart+xmit+lat, func() { m.relArrive(link, msg, st) })
	}
	next := attempt + 1
	st.cancel = m.k.AtCancel(depart+xmit+m.inj.RTO(attempt), func() {
		if st.acked {
			return
		}
		if next >= m.inj.MaxAttempts() {
			// A plan whose drop rate defeats MaxAttempts retries is a
			// configuration error, not a survivable fault: at the shipped
			// defaults the chance is (rate)^12 per message.
			panic(fmt.Sprintf("cluster: message %d->%d seq %d lost after %d attempts",
				msg.From, msg.To, msg.Seq, next))
		}
		m.relAttempt(link, msg, st, next)
	})
}

// relArrive handles one received copy: ack it, then release every
// in-sequence message to the destination endpoint.
func (m *Machine) relArrive(link *relLink, msg Message, st *relState) {
	// Ack every copy, including duplicates — the ack of an earlier copy
	// may itself have been lost, and the retransmitted copy's ack is what
	// finally silences the sender's timer.
	m.relAck(msg, st)
	if msg.Seq < link.nextDeliver {
		return // duplicate of an already-released message
	}
	if _, dup := link.held[msg.Seq]; dup {
		return
	}
	link.held[msg.Seq] = msg
	dst := m.eps[msg.To]
	for {
		next, ok := link.held[link.nextDeliver]
		if !ok {
			return
		}
		delete(link.held, link.nextDeliver)
		link.nextDeliver++
		dst.deliver(next)
	}
}

// relAck models the reverse-direction ack frame: control-class wire
// bytes, pure latency (no NIC serialization), droppable.
func (m *Machine) relAck(msg Message, st *relState) {
	m.stats.Messages++
	m.stats.Bytes += ackWireBytes
	m.stats.InterNodeBytes += ackWireBytes
	m.stats.ControlMessages++
	m.stats.ControlBytes += ackWireBytes
	m.stats.AckMessages++
	m.stats.AckBytes += ackWireBytes
	m.ackSeq++
	if m.inj.DropAck(msg.To, msg.From, m.ackSeq) {
		m.stats.DroppedMessages++
		m.stats.DroppedBytes += ackWireBytes
		m.tr.Instant(trace.InstDrop, msg.To, msg.Seq, ackWireBytes, 0)
		return
	}
	m.k.After(m.cfg.InterNodeLatency, func() {
		st.acked = true
		if st.cancel != nil {
			st.cancel()
		}
	})
}
