package cluster

import "testing"

func TestManycoreConfig(t *testing.T) {
	cfg := ManycoreConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Ranks() != 48 {
		t.Fatalf("Ranks = %d, want 48 (the §7 part)", cfg.Ranks())
	}
	base := DefaultConfig()
	if cfg.InterNodeLatency >= base.InterNodeLatency {
		t.Fatal("on-die mesh must have lower latency than InfiniBand")
	}
	if cfg.ClockGHz >= base.ClockGHz {
		t.Fatal("SCC-class cores are slower than the cluster's Xeons")
	}
}
