// Package cluster models a commodity cluster: nodes with private memory,
// several cores per node, and a message-passing interconnect with realistic
// latency, per-NIC bandwidth serialization, and per-instruction CPU cost.
//
// The model matches the paper's evaluation platform in structure: 32 nodes
// of 4 cores (Intel Xeon 5160 @ 3.00 GHz) connected by InfiniBand. Ranks
// (0..n-1) map onto (node, core) pairs; messages between ranks on the same
// node take the cheap intra-node path, messages between nodes serialize
// through the sender's NIC and pay wire latency.
package cluster

import (
	"fmt"

	"dsmtx/internal/faults"
	"dsmtx/internal/platform"
	"dsmtx/internal/sim"
	"dsmtx/internal/trace"
)

// Config describes the machine. The zero value is unusable; use
// DefaultConfig and override fields as needed.
type Config struct {
	Nodes        int // number of nodes
	CoresPerNode int // cores (ranks) per node

	InterNodeLatency sim.Duration // one-way wire latency between nodes
	IntraNodeLatency sim.Duration // one-way latency between cores of a node

	LinkBandwidth      float64 // bytes per virtual second through one NIC
	IntraNodeBandwidth float64 // bytes per virtual second between local cores

	// HeadNode, if >= 0, designates a node with HeadBandwidth of outbound
	// bandwidth instead of LinkBandwidth. The DSMTX runtime marks the
	// commit unit's node: it both serves Copy-On-Access pages (the role a
	// storage/NFS server plays in the paper's cluster) and runs the
	// sequential program portions, so it gets the fat pipe a head node
	// would have.
	HeadNode      int
	HeadBandwidth float64

	ClockGHz float64 // core clock; instruction costs are charged at this rate
}

// DefaultConfig mirrors the paper's platform: 32 × 4 cores at 3.0 GHz on
// InfiniBand (≈1.9 µs one-way latency, ≈1.2 GB/s effective per NIC).
func DefaultConfig() Config {
	return Config{
		Nodes:              32,
		CoresPerNode:       4,
		InterNodeLatency:   1900 * sim.Nanosecond,
		IntraNodeLatency:   90 * sim.Nanosecond,
		LinkBandwidth:      2.0e9,
		IntraNodeBandwidth: 24e9,
		HeadNode:           -1,
		HeadBandwidth:      6.0e9,
		ClockGHz:           3.0,
	}
}

// ManycoreConfig models the emerging coherence-free manycore the paper's
// §7 points at (Intel's 48-core SCC-style part [14]): one chip, 48 cores
// with private memory domains, explicit message passing — "the same
// programming challenges as clusters, with the main difference being lower
// communication latency".
func ManycoreConfig() Config {
	return Config{
		Nodes:              48,
		CoresPerNode:       1,
		InterNodeLatency:   200 * sim.Nanosecond, // on-die mesh hop
		IntraNodeLatency:   50 * sim.Nanosecond,
		LinkBandwidth:      5e9, // on-die links
		IntraNodeBandwidth: 24e9,
		HeadNode:           -1,
		HeadBandwidth:      10e9,
		ClockGHz:           1.0, // SCC-class simple cores
	}
}

// BigClusterConfig scales the paper's platform out to 64 nodes of 16 cores
// (1024 ranks) with the same InfiniBand parameters — the machine the
// commit-shard sweep (Figure S) runs on, where a single commit unit is the
// bottleneck the sweep exposes.
func BigClusterConfig() Config {
	c := DefaultConfig()
	c.Nodes = 64
	c.CoresPerNode = 16
	return c
}

// bandwidthOf reports a node's outbound NIC bandwidth.
func (c Config) bandwidthOf(node int) float64 {
	if node == c.HeadNode && c.HeadBandwidth > 0 {
		return c.HeadBandwidth
	}
	return c.LinkBandwidth
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: Nodes = %d, need >= 1", c.Nodes)
	case c.CoresPerNode < 1:
		return fmt.Errorf("cluster: CoresPerNode = %d, need >= 1", c.CoresPerNode)
	case c.LinkBandwidth <= 0 || c.IntraNodeBandwidth <= 0:
		return fmt.Errorf("cluster: bandwidths must be positive")
	case c.InterNodeLatency < 0 || c.IntraNodeLatency < 0:
		return fmt.Errorf("cluster: latencies must be non-negative (inter %v, intra %v)",
			c.InterNodeLatency, c.IntraNodeLatency)
	case c.HeadNode >= c.Nodes:
		return fmt.Errorf("cluster: HeadNode = %d out of range [0,%d) (or negative for none)",
			c.HeadNode, c.Nodes)
	case c.HeadNode >= 0 && c.HeadBandwidth <= 0:
		return fmt.Errorf("cluster: HeadBandwidth = %g must be positive when HeadNode is set",
			c.HeadBandwidth)
	case c.ClockGHz <= 0:
		return fmt.Errorf("cluster: ClockGHz must be positive")
	}
	return nil
}

// Ranks reports the total number of ranks (cores) in the machine.
func (c Config) Ranks() int { return c.Nodes * c.CoresPerNode }

// NodeOf reports the node hosting a rank. Ranks are laid out round-robin
// across nodes (rank r lives on node r % Nodes) so that consecutive ranks —
// which DSMTX places adjacent pipeline stages on — land on different nodes.
// This is the pessimistic placement the paper's latency-tolerance argument
// is about.
func (c Config) NodeOf(rank int) int { return rank % c.Nodes }

// InstrTime converts an instruction count to virtual time at the
// configured clock rate.
func (c Config) InstrTime(instructions int64) sim.Duration {
	if instructions <= 0 {
		return 0
	}
	return sim.Duration(float64(instructions) / c.ClockGHz)
}

// MsgClass labels a message's role for bandwidth attribution; it aliases
// the platform-neutral type so the runtime layers above use the same values
// on every backend.
type MsgClass = platform.MsgClass

// Message classes. The zero value is ClassControl, so untagged sends (the
// default path) count as control traffic.
const (
	ClassControl = platform.ClassControl
	ClassQueue   = platform.ClassQueue
	ClassPage    = platform.ClassPage
)

// Message is one unit of data in flight between ranks.
type Message = platform.Message

// AnySource registers a mailbox that receives messages from every sender
// using a given tag. Register such mailboxes before any traffic flows.
const AnySource = platform.AnySource

// TrafficStats accumulates modelled wire traffic for an entire run; the
// figure-5a bandwidth numbers divide these by execution time.
type TrafficStats = platform.TrafficStats

type mailboxKey struct {
	from int
	tag  int
}

// Machine is a simulated cluster instance bound to a sim.Kernel.
type Machine struct {
	k       *sim.Kernel
	cfg     Config
	nicFree []sim.Time // per-node time at which the NIC is next idle
	// lastArrival enforces MPI's non-overtaking guarantee: two messages
	// between the same (src, dst) pair are never delivered out of order,
	// even when a small message follows a large one on a faster path.
	lastArrival map[[2]int]sim.Time
	eps         []*Endpoint
	stats       TrafficStats

	// Fault-injection state; all nil/false when faults are off, and every
	// faulty-path branch below is gated so the fault-free paths are
	// byte-identical to a machine without an injector.
	inj        *faults.Injector
	tr         *trace.Tracer
	linkFaults bool                // route inter-node traffic through the reliable layer
	latFaults  bool                // consult the injector for spikes/degradation
	rel        map[[2]int]*relLink // per (src,dst) reliable-link state
	sendSeq    uint64              // plain-path per-message identity for latency rolls
	ackSeq     uint64              // unique identity per physical ack for drop rolls
}

// EnableFaults installs a compiled fault injector. Must be called before
// any traffic flows. With link faults in the plan, all inter-node traffic
// switches to the reliable ack/retransmit layer; latency faults alone
// keep the plain path and only stretch deliveries.
func (m *Machine) EnableFaults(inj *faults.Injector) {
	m.inj = inj
	m.linkFaults = inj != nil && inj.LinkFaults()
	m.latFaults = inj != nil && inj.HasLatencyFaults()
	if m.linkFaults {
		m.rel = make(map[[2]int]*relLink)
	}
}

// SetTracer lets the machine record fault instants (drops, retransmits).
// A nil tracer (the default) records nothing.
func (m *Machine) SetTracer(tr *trace.Tracer) { m.tr = tr }

// New builds a machine on the given kernel. It panics on invalid
// configuration (construction-time misuse, per Effective Go).
func New(k *sim.Kernel, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		k:           k,
		cfg:         cfg,
		nicFree:     make([]sim.Time, cfg.Nodes),
		lastArrival: make(map[[2]int]sim.Time),
		eps:         make([]*Endpoint, cfg.Ranks()),
	}
	for r := range m.eps {
		m.eps[r] = &Endpoint{m: m, rank: r, boxes: make(map[mailboxKey]*sim.Chan[Message])}
	}
	return m
}

// Kernel returns the simulation kernel the machine runs on.
func (m *Machine) Kernel() *sim.Kernel { return m.k }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Endpoint returns the communication endpoint for a rank.
func (m *Machine) Endpoint(rank int) *Endpoint {
	if rank < 0 || rank >= len(m.eps) {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, len(m.eps)))
	}
	return m.eps[rank]
}

// Stats returns a snapshot of accumulated traffic.
func (m *Machine) Stats() TrafficStats { return m.stats }

// ResetStats zeroes the traffic accounting (e.g. after warm-up).
func (m *Machine) ResetStats() { m.stats = TrafficStats{} }

// transmit models the wire: serialization through the sender's NIC for
// inter-node messages, a fast path for intra-node ones. It returns the
// arrival time at the destination.
func (m *Machine) transmit(msg Message) sim.Time {
	now := m.k.Now()
	m.stats.Messages++
	m.stats.Bytes += uint64(msg.Bytes)
	switch msg.Class {
	case ClassQueue:
		m.stats.QueueMessages++
		m.stats.QueueBytes += uint64(msg.Bytes)
	case ClassPage:
		m.stats.PageMessages++
		m.stats.PageBytes += uint64(msg.Bytes)
	default:
		m.stats.ControlMessages++
		m.stats.ControlBytes += uint64(msg.Bytes)
	}
	srcNode, dstNode := m.cfg.NodeOf(msg.From), m.cfg.NodeOf(msg.To)
	var arrival sim.Time
	if srcNode == dstNode {
		m.stats.IntraNodeBytes += uint64(msg.Bytes)
		xmit := sim.Duration(float64(msg.Bytes) / m.cfg.IntraNodeBandwidth * 1e9)
		arrival = now + m.cfg.IntraNodeLatency + xmit
	} else {
		m.stats.InterNodeBytes += uint64(msg.Bytes)
		depart := max(now, m.nicFree[srcNode])
		xmit := sim.Duration(float64(msg.Bytes) / m.cfg.bandwidthOf(srcNode) * 1e9)
		m.nicFree[srcNode] = depart + xmit
		arrival = depart + xmit + m.cfg.InterNodeLatency
		if m.latFaults {
			m.sendSeq++
			arrival += m.inj.ExtraLatency(msg.From, msg.To, m.sendSeq, 0, now, m.cfg.InterNodeLatency)
		}
	}
	pair := [2]int{msg.From, msg.To}
	if last := m.lastArrival[pair]; arrival < last {
		arrival = last
	}
	m.lastArrival[pair] = arrival
	return arrival
}

// Endpoint is one rank's attachment to the interconnect. Mailboxes are
// keyed by (source, tag); register any-source mailboxes with
// Mailbox(AnySource, tag) before traffic with that tag flows.
type Endpoint struct {
	m     *Machine
	rank  int
	boxes map[mailboxKey]*sim.Chan[Message]
}

// Rank reports this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Node reports the node hosting this endpoint.
func (e *Endpoint) Node() int { return e.m.cfg.NodeOf(e.rank) }

// Machine returns the owning machine.
func (e *Endpoint) Machine() *Machine { return e.m }

// Mailbox returns (creating if needed) the mailbox for messages from a
// specific source rank (or AnySource) carrying the given tag.
func (e *Endpoint) Mailbox(from, tag int) platform.Mailbox {
	return e.box(from, tag)
}

// box is Mailbox with the concrete channel type, for internal delivery.
func (e *Endpoint) box(from, tag int) *sim.Chan[Message] {
	key := mailboxKey{from, tag}
	box, ok := e.boxes[key]
	if !ok {
		name := fmt.Sprintf("r%d<-%d#%d", e.rank, from, tag)
		box = sim.NewChan[Message](e.m.k, name, 0)
		e.boxes[key] = box
	}
	return box
}

// deliver routes an arrived message to the matching mailbox: an exact
// (from, tag) box if registered, else the any-source box for the tag, else a
// fresh exact box.
func (e *Endpoint) deliver(msg Message) {
	if box, ok := e.boxes[mailboxKey{msg.From, msg.Tag}]; ok {
		box.Push(msg)
		return
	}
	if box, ok := e.boxes[mailboxKey{AnySource, msg.Tag}]; ok {
		box.Push(msg)
		return
	}
	e.box(msg.From, msg.Tag).Push(msg)
}

// Send injects a message into the network; it does not charge CPU time (the
// mpi package layers per-call instruction costs on top). Delivery happens at
// the modelled arrival time.
func (e *Endpoint) Send(to, tag int, payload any, bytes int) {
	e.SendClass(to, tag, payload, bytes, ClassControl)
}

// SendClass is Send with an explicit traffic class for bandwidth
// attribution; the class changes accounting only, never timing.
func (e *Endpoint) SendClass(to, tag int, payload any, bytes int, class MsgClass) {
	if bytes < 0 {
		panic("cluster: negative message size")
	}
	msg := Message{From: e.rank, To: to, Tag: tag, Payload: payload, Bytes: bytes, Class: class}
	dst := e.m.Endpoint(to)
	if e.m.linkFaults && e.m.cfg.NodeOf(msg.From) != e.m.cfg.NodeOf(to) {
		e.m.sendReliable(msg)
		return
	}
	arrival := e.m.transmit(msg)
	e.m.k.At(arrival, func() { dst.deliver(msg) })
}

// Recv blocks p until a message from the given source (or AnySource) with
// the given tag arrives, and returns it.
func (e *Endpoint) Recv(p platform.Proc, from, tag int) Message {
	msg, ok := e.box(from, tag).Recv(p)
	if !ok {
		panic("cluster: mailbox closed")
	}
	return msg
}

// TryRecv returns a pending message without blocking.
func (e *Endpoint) TryRecv(from, tag int) (Message, bool) {
	return e.box(from, tag).TryRecv()
}
