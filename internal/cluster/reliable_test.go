package cluster

import (
	"testing"
	"testing/quick"

	"dsmtx/internal/faults"
	"dsmtx/internal/sim"
)

// faultyMachine builds a machine with a compiled injector installed.
func faultyMachine(t *testing.T, plan faults.Plan) (*sim.Kernel, *Machine) {
	t.Helper()
	k := sim.NewKernel()
	m := New(k, testConfig())
	inj, err := faults.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableFaults(inj)
	return k, m
}

// TestReliableExactlyOnceInOrder is the reliable layer's contract: at a
// drop rate high enough to lose many transmissions and acks, every
// message still arrives exactly once and in send order.
func TestReliableExactlyOnceInOrder(t *testing.T) {
	const n = 400
	k, m := faultyMachine(t, faults.Plan{Seed: 11, DropRate: 0.2, AckDropRate: 0.2})
	var got []int
	k.Spawn("rx", func(p *sim.Proc) {
		for range n {
			msg := m.Endpoint(1).Recv(p, 0, 3)
			got = append(got, msg.Payload.(int))
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		for i := range n {
			m.Endpoint(0).Send(1, 3, i, 64)
			p.Advance(sim.Duration(i % 5))
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range n {
		if got[i] != i {
			t.Fatalf("got[%d] = %d (out of order or duplicated)", i, got[i])
		}
	}
	s := m.Stats()
	if s.DroppedMessages == 0 || s.RetransMessages == 0 || s.AckMessages == 0 {
		t.Fatalf("fault layer never engaged: %+v", s)
	}
	// Resilience traffic must stay inside the class-sum invariant.
	if s.QueueBytes+s.PageBytes+s.ControlBytes != s.Bytes {
		t.Fatalf("class bytes %d+%d+%d != total %d", s.QueueBytes, s.PageBytes, s.ControlBytes, s.Bytes)
	}
	if s.InterNodeBytes+s.IntraNodeBytes != s.Bytes {
		t.Fatalf("locality bytes %d+%d != total %d", s.InterNodeBytes, s.IntraNodeBytes, s.Bytes)
	}
}

// TestReliableIntraNodeUntouched: same-node traffic never takes the
// reliable path, so a pure drop plan cannot delay or duplicate it.
func TestReliableIntraNodeUntouched(t *testing.T) {
	k, m := faultyMachine(t, faults.Plan{Seed: 1, DropRate: 0.5})
	var arrival sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		m.Endpoint(4).Recv(p, 0, 1) // ranks 0 and 4 share node 0 (4 nodes x 2)
		arrival = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) { m.Endpoint(0).Send(4, 1, nil, 0) })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if arrival != testConfig().IntraNodeLatency {
		t.Fatalf("intra-node arrival %v, want bare latency %v", arrival, testConfig().IntraNodeLatency)
	}
	if s := m.Stats(); s.DroppedMessages != 0 || s.AckMessages != 0 {
		t.Fatalf("intra-node message engaged the reliable layer: %+v", s)
	}
}

// TestReliableDeterministic: two machines running the same traffic under
// the same plan agree on every virtual-time outcome.
func TestReliableDeterministic(t *testing.T) {
	run := func() (sim.Time, TrafficStats) {
		k, m := faultyMachine(t, faults.Plan{Seed: 5, DropRate: 0.1, AckDropRate: 0.1, SpikeRate: 0.05, SpikeExtra: 30 * sim.Microsecond})
		k.Spawn("rx", func(p *sim.Proc) {
			for range 200 {
				m.Endpoint(1).Recv(p, 0, 3)
			}
		})
		k.Spawn("tx", func(p *sim.Proc) {
			for i := range 200 {
				m.Endpoint(0).Send(1, 3, i, 128)
				p.Advance(50)
			}
		})
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return k.Now(), m.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("runs differ: %v/%v, %+v vs %+v", t1, t2, s1, s2)
	}
}

// TestLatencyFaultsDelayButPreserveOrder: a latency-only plan (no drops)
// keeps the plain path and MPI's non-overtaking guarantee.
func TestLatencyFaultsDelayButPreserveOrder(t *testing.T) {
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		m := New(k, testConfig())
		inj, err := faults.Compile(faults.Plan{Seed: seed, SpikeRate: 0.3, SpikeExtra: 100 * sim.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		m.EnableFaults(inj)
		ok := true
		k.Spawn("rx", func(p *sim.Proc) {
			for i := range 50 {
				msg := m.Endpoint(1).Recv(p, 0, 3)
				if msg.Payload.(int) != i {
					ok = false
				}
			}
		})
		k.Spawn("tx", func(p *sim.Proc) {
			for i := range 50 {
				m.Endpoint(0).Send(1, 3, i, 8)
				p.Advance(10)
			}
		})
		if err := k.Run(0); err != nil {
			return false
		}
		return ok && m.Stats().DroppedMessages == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedLinkSlowsDelivery: inside a degradation window the wire
// latency multiplies; outside it the link recovers.
func TestDegradedLinkSlowsDelivery(t *testing.T) {
	cfg := testConfig()
	k := sim.NewKernel()
	m := New(k, cfg)
	inj, err := faults.Compile(faults.Plan{
		Degrades: []faults.Degrade{{From: 0, Dur: 10 * sim.Microsecond, Factor: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.EnableFaults(inj)
	var inside, outside sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		m.Endpoint(1).Recv(p, 0, 1)
		inside = p.Now()
		m.Endpoint(1).Recv(p, 0, 1)
		outside = p.Now()
	})
	const gap = 20 * sim.Microsecond
	k.Spawn("tx", func(p *sim.Proc) {
		m.Endpoint(0).Send(1, 1, nil, 0) // departs at t=0, inside the window
		p.Advance(gap)                   // past the window
		m.Endpoint(0).Send(1, 1, nil, 0)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if inside != 5*cfg.InterNodeLatency {
		t.Fatalf("degraded delivery at %v, want %v", inside, 5*cfg.InterNodeLatency)
	}
	if outside != gap+cfg.InterNodeLatency {
		t.Fatalf("recovered delivery at %v, want %v", outside, gap+cfg.InterNodeLatency)
	}
}
