package cluster

import (
	"testing"
	"testing/quick"

	"dsmtx/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero cores per node", func(c *Config) { c.CoresPerNode = 0 }},
		{"zero link bandwidth", func(c *Config) { c.LinkBandwidth = 0 }},
		{"negative link bandwidth", func(c *Config) { c.LinkBandwidth = -1 }},
		{"zero intra bandwidth", func(c *Config) { c.IntraNodeBandwidth = 0 }},
		{"negative clock", func(c *Config) { c.ClockGHz = -1 }},
		{"negative inter latency", func(c *Config) { c.InterNodeLatency = -1 }},
		{"negative intra latency", func(c *Config) { c.IntraNodeLatency = -1 }},
		{"head node beyond nodes", func(c *Config) { c.HeadNode = c.Nodes }},
		{"head node without bandwidth", func(c *Config) { c.HeadNode = 0; c.HeadBandwidth = 0 }},
		{"negative head bandwidth", func(c *Config) { c.HeadNode = 1; c.HeadBandwidth = -2 }},
	}
	for _, tc := range cases {
		c := testConfig()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	// A valid head-node designation passes.
	c := testConfig()
	c.HeadNode, c.HeadBandwidth = 1, 5e9
	if err := c.Validate(); err != nil {
		t.Errorf("head-node config rejected: %v", err)
	}
	// Zero latencies are legal (idealized interconnect).
	c = testConfig()
	c.InterNodeLatency, c.IntraNodeLatency = 0, 0
	if err := c.Validate(); err != nil {
		t.Errorf("zero-latency config rejected: %v", err)
	}
}

func TestNodePlacementRoundRobin(t *testing.T) {
	cfg := testConfig() // 4 nodes x 2 cores
	wantNodes := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for r, want := range wantNodes {
		if got := cfg.NodeOf(r); got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestInstrTime(t *testing.T) {
	cfg := testConfig() // 3 GHz
	if got := cfg.InstrTime(3000); got != 1000*sim.Nanosecond {
		t.Fatalf("3000 instr @3GHz = %v, want 1µs", got)
	}
	if got := cfg.InstrTime(-5); got != 0 {
		t.Fatalf("negative instructions charged %v", got)
	}
}

func TestInterNodeLatencyApplied(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	var arrival sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		m.Endpoint(1).Recv(p, 0, 7) // rank 1 is node 1: inter-node
		arrival = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) {
		m.Endpoint(0).Send(1, 7, "x", 0)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if arrival != testConfig().InterNodeLatency {
		t.Fatalf("arrival = %v, want %v", arrival, testConfig().InterNodeLatency)
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	var intra, inter sim.Time
	// Rank 0 and 4 share node 0; rank 1 is on node 1.
	k.Spawn("rxIntra", func(p *sim.Proc) {
		m.Endpoint(4).Recv(p, 0, 1)
		intra = p.Now()
	})
	k.Spawn("rxInter", func(p *sim.Proc) {
		m.Endpoint(1).Recv(p, 0, 2)
		inter = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) {
		m.Endpoint(0).Send(4, 1, nil, 64)
		m.Endpoint(0).Send(1, 2, nil, 64)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if intra >= inter {
		t.Fatalf("intra-node %v not faster than inter-node %v", intra, inter)
	}
}

// Two back-to-back large messages through one NIC must serialize: the second
// arrives one transmission time after the first.
func TestNICSerialization(t *testing.T) {
	cfg := testConfig()
	cfg.LinkBandwidth = 1e9 // 1 byte/ns
	k := sim.NewKernel()
	m := New(k, cfg)
	var first, second sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		m.Endpoint(1).Recv(p, 0, 1)
		first = p.Now()
		m.Endpoint(1).Recv(p, 0, 1)
		second = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) {
		m.Endpoint(0).Send(1, 1, nil, 1000) // 1000 ns on the wire
		m.Endpoint(0).Send(1, 1, nil, 1000)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if second-first != 1000*sim.Nanosecond {
		t.Fatalf("gap = %v, want 1µs NIC serialization", second-first)
	}
}

func TestAnySourceMailbox(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	const tag = 9
	got := map[int]bool{}
	k.Spawn("rx", func(p *sim.Proc) {
		ep := m.Endpoint(0)
		ep.Mailbox(AnySource, tag) // register before traffic
		p.Advance(10)
		for i := 0; i < 3; i++ {
			msg := ep.Recv(p, AnySource, tag)
			got[msg.From] = true
		}
	})
	for _, src := range []int{1, 2, 3} {
		k.Spawn("tx", func(p *sim.Proc) {
			p.Advance(sim.Duration(src * 100))
			m.Endpoint(src).Send(0, tag, nil, 8)
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("received from %d sources, want 3", len(got))
	}
}

func TestTrafficStats(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	k.Spawn("rx1", func(p *sim.Proc) { m.Endpoint(1).Recv(p, 0, 1) })
	k.Spawn("rx4", func(p *sim.Proc) { m.Endpoint(4).Recv(p, 0, 1) })
	k.Spawn("tx", func(p *sim.Proc) {
		m.Endpoint(0).Send(1, 1, nil, 100) // inter-node
		m.Endpoint(0).Send(4, 1, nil, 50)  // intra-node
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Messages != 2 || s.Bytes != 150 || s.InterNodeBytes != 100 || s.IntraNodeBytes != 50 {
		t.Fatalf("stats = %+v", s)
	}
	m.ResetStats()
	if m.Stats() != (TrafficStats{}) {
		t.Fatal("ResetStats did not zero stats")
	}
}

func TestMessagesFIFOPerPair(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 100 {
			return true
		}
		k := sim.NewKernel()
		m := New(k, testConfig())
		var got []int
		k.Spawn("rx", func(p *sim.Proc) {
			for range sizes {
				msg := m.Endpoint(1).Recv(p, 0, 3)
				got = append(got, msg.Payload.(int))
			}
		})
		k.Spawn("tx", func(p *sim.Proc) {
			for i, sz := range sizes {
				m.Endpoint(0).Send(1, 3, i, int(sz))
				p.Advance(sim.Duration(sz % 7))
			}
		})
		if err := k.Run(0); err != nil {
			return false
		}
		for i := range sizes {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointRankPanicsOutOfRange(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range rank")
		}
	}()
	m.Endpoint(99)
}
