package core

import (
	"testing"

	"dsmtx/internal/faults"
	"dsmtx/internal/pipeline"
)

// The commit-shard knob grows Validate's surface; every rejection must name
// the offending field so a bad configuration is diagnosable from the
// message alone.
func TestValidateCommitShardErrors(t *testing.T) {
	cases := []struct {
		name  string
		cores int
		tune  func(cfg *Config)
		want  string
	}{
		{
			name:  "negative shard count",
			cores: 12,
			tune:  func(cfg *Config) { cfg.CommitShards = -1 },
			want:  "core: Config.CommitShards = -1, need >= 0",
		},
		{
			name:  "vote tag space exhausted",
			cores: 96,
			tune:  func(cfg *Config) { cfg.CommitShards = 61 },
			want:  "core: Config.CommitShards = 61 exhausts the control tag space (max 60)",
		},
		{
			name:  "page-server shards redundant",
			cores: 12,
			tune: func(cfg *Config) {
				cfg.Backend = BackendHost
				cfg.CommitShards = 2
				cfg.PageServShards = 2
			},
			want: "core: Config.PageServShards = 2: with Config.CommitShards = 2 the page service is already sharded across the commit ranks",
		},
		{
			name:  "crash faults need the single commit unit",
			cores: 12,
			tune: func(cfg *Config) {
				cfg.CommitShards = 2
				cfg.Faults = &faults.Plan{Crashes: []faults.Crash{{Rank: 0, At: 1, Downtime: 1}}}
			},
			want: "core: Config.CommitShards = 2: crash faults require the single commit unit (worker re-dispatch is lead-only)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(tc.cores, pipeline.SpecDOALL())
			tc.tune(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted the configuration")
			}
			if err.Error() != tc.want {
				t.Fatalf("Validate error:\n  got  %q\n  want %q", err.Error(), tc.want)
			}
		})
	}
}

// Legal shard counts — including 0, the "default to 1" spelling — validate.
func TestValidateCommitShardCounts(t *testing.T) {
	for _, shards := range []int{0, 1, 2, 4, 8} {
		cfg := smallConfig(16, pipeline.SpecDOALL())
		cfg.CommitShards = shards
		if err := cfg.Validate(); err != nil {
			t.Fatalf("CommitShards=%d: %v", shards, err)
		}
	}
}
