package core

import (
	"testing"

	"fmt"

	"dsmtx/internal/faults"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
)

// The commit-shard knob grows Validate's surface; every rejection must name
// the offending field so a bad configuration is diagnosable from the
// message alone.
func TestValidateCommitShardErrors(t *testing.T) {
	cases := []struct {
		name  string
		cores int
		tune  func(cfg *Config)
		want  string
	}{
		{
			name:  "negative shard count",
			cores: 12,
			tune:  func(cfg *Config) { cfg.CommitShards = -1 },
			want:  "core: Config.CommitShards = -1, need >= 0",
		},
		{
			name:  "vote tag space exhausted",
			cores: 96,
			tune:  func(cfg *Config) { cfg.CommitShards = 61 },
			want:  "core: Config.CommitShards = 61 exhausts the control tag space (max 60)",
		},
		{
			name:  "page-server shards redundant",
			cores: 12,
			tune: func(cfg *Config) {
				cfg.Backend = BackendHost
				cfg.CommitShards = 2
				cfg.PageServShards = 2
			},
			want: "core: Config.PageServShards = 2: with Config.CommitShards = 2 the page service is already sharded across the commit ranks",
		},
		{
			name:  "crash faults need the single commit unit",
			cores: 12,
			tune: func(cfg *Config) {
				cfg.CommitShards = 2
				cfg.Faults = &faults.Plan{Crashes: []faults.Crash{{Rank: 0, At: 1, Downtime: 1}}}
			},
			want: "core: Config.CommitShards = 2: crash faults require the single commit unit (worker re-dispatch is lead-only)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(tc.cores, pipeline.SpecDOALL())
			tc.tune(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted the configuration")
			}
			if err.Error() != tc.want {
				t.Fatalf("Validate error:\n  got  %q\n  want %q", err.Error(), tc.want)
			}
		})
	}
}

// The net backend narrows the configuration space: platforms are injected
// by the orchestration layer, fault injection stays vtime-only, and the
// commit pipeline cannot shard across processes. Every rejection must name
// the offending field.
func TestValidateNetBackendErrors(t *testing.T) {
	netPlat := func(int) (platform.Platform, error) {
		return nil, fmt.Errorf("unused: validation-only factory")
	}
	cases := []struct {
		name  string
		cores int
		tune  func(cfg *Config)
		want  string
	}{
		{
			name:  "net needs an injected platform",
			cores: 12,
			tune:  func(cfg *Config) { cfg.Backend = BackendNet },
			want:  "core: Config.Platform: the net backend needs an injected platform factory (run through internal/netrun or dsmtxrun -backend net)",
		},
		{
			name:  "commit shards cannot cross processes",
			cores: 12,
			tune: func(cfg *Config) {
				cfg.Backend = BackendNet
				cfg.Platform = netPlat
				cfg.CommitShards = 2
			},
			want: "core: Config.CommitShards = 2: commit shards share an in-process image arena; unsupported on the net backend",
		},
		{
			name:  "faults are vtime-only on net",
			cores: 12,
			tune: func(cfg *Config) {
				cfg.Backend = BackendNet
				cfg.Platform = netPlat
				cfg.Faults = &faults.Plan{DropRate: 0.01}
			},
			want: "core: Config.Faults: fault injection is built on the virtual-time kernel; unsupported on the net backend",
		},
		{
			name:  "faults are vtime-only on host",
			cores: 12,
			tune: func(cfg *Config) {
				cfg.Backend = BackendHost
				cfg.Faults = &faults.Plan{DropRate: 0.01}
			},
			want: "core: Config.Faults: fault injection is built on the virtual-time kernel; unsupported on the host backend",
		},
		{
			name:  "injected platform is net-only",
			cores: 12,
			tune:  func(cfg *Config) { cfg.Platform = netPlat },
			want:  "core: Config.Platform: injected platforms are a net-backend feature (the vtime backend builds its own)",
		},
		{
			name:  "injected platform is net-only on host",
			cores: 12,
			tune: func(cfg *Config) {
				cfg.Backend = BackendHost
				cfg.Platform = netPlat
			},
			want: "core: Config.Platform: injected platforms are a net-backend feature (the host backend builds its own)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(tc.cores, pipeline.SpecDOALL())
			tc.tune(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted the configuration")
			}
			if err.Error() != tc.want {
				t.Fatalf("Validate error:\n  got  %q\n  want %q", err.Error(), tc.want)
			}
		})
	}
}

// The net backend's supported envelope validates cleanly: an injected
// platform with default shards, any page-server shard count, and a tracer
// (observability is backend-agnostic).
func TestValidateNetBackendAccepts(t *testing.T) {
	for _, shards := range []int{0, 1, 2, 4} {
		cfg := smallConfig(16, pipeline.SpecDOALL())
		cfg.Backend = BackendNet
		cfg.Platform = func(int) (platform.Platform, error) { return nil, nil }
		cfg.PageServShards = shards
		cfg.Tracer = trace.New()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("PageServShards=%d: %v", shards, err)
		}
	}
}

// Legal shard counts — including 0, the "default to 1" spelling — validate.
func TestValidateCommitShardCounts(t *testing.T) {
	for _, shards := range []int{0, 1, 2, 4, 8} {
		cfg := smallConfig(16, pipeline.SpecDOALL())
		cfg.CommitShards = shards
		if err := cfg.Validate(); err != nil {
			t.Fatalf("CommitShards=%d: %v", shards, err)
		}
	}
}
