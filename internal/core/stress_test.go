package core

import (
	"testing"

	"dsmtx/internal/pipeline"
	"dsmtx/internal/sim"
)

// Deadlock-freedom stress tests. A protocol deadlock in the runtime shows
// up as unbounded virtual polling, so every run here carries a horizon: a
// system that has not finished within one virtual second is stuck.

// guarded runs prog and fails the test if it deadlocks or under-commits.
func guarded(t *testing.T, cfg Config, prog Program, wantCommits uint64) Result {
	t.Helper()
	cfg.Horizon = sim.Second
	sys, err := NewSystem(cfg, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("%v", err)
	}
	if res.Committed != wantCommits {
		t.Fatalf("stuck: committed %d/%d (misspecs %d)", res.Committed, wantCommits, res.Misspecs)
	}
	return res
}

// Regression for a real deadlock: under TLS, a worker's batched subTX
// markers sat unflushed while it blocked in SyncRecv; the commit unit could
// not advance past that iteration, so the recovery that would unblock the
// ring never fired. (Misspecs at iterations 1 and 4 on a 4-worker ring.)
func TestTLSSyncMarkerFlushDeadlock(t *testing.T) {
	plan := pipeline.SpecDOALL()
	plan.Sync = true
	prog := &tlsMisspecProg{n: 24, misspecs: misspecsOf(1, 4)}
	guarded(t, smallConfig(6, plan), prog, 24)
}

// Every misspec position x core count for the TLS ring.
func TestTLSMisspecPositionsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	plan := pipeline.SpecDOALL()
	plan.Sync = true
	for pos := uint64(0); pos < 24; pos++ {
		for _, cores := range []int{4, 6, 10} {
			prog := &tlsMisspecProg{n: 24, misspecs: misspecsOf(pos, (pos+3)%24)}
			guarded(t, smallConfig(cores, plan), prog, 24)
		}
	}
}

// Every misspec pair x core count for the 3-stage pipeline.
func TestPipelineMisspecPairsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	const n = 18
	for cores := 5; cores <= 9; cores++ {
		for a := uint64(0); a < n; a++ {
			for b := a; b < n; b++ {
				prog := &pipeProg{n: n, misspecs: misspecsOf(a, b)}
				guarded(t, smallConfig(cores, pipeline.SpecDSWP("S", "DOALL", "S")), prog, n)
			}
		}
	}
}

// Every conflict flip position for Spec-DOALL value-based detection.
func TestDoallFlipSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	for flip := uint64(0); flip < 30; flip++ {
		for _, cores := range []int{4, 7, 11, 16} {
			prog := &doallProg{n: 30, flip: flip}
			guarded(t, smallConfig(cores, pipeline.SpecDOALL()), prog, 30)
		}
	}
}

// Occupancy routing under misspeculation must not wedge the feeder.
func TestOccupancyRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	plan := pipeline.SpecDSWP("S", "DOALL", "S")
	plan.Occupancy = true
	for pos := uint64(0); pos < 16; pos++ {
		prog := &pipeProg{n: 16, misspecs: misspecsOf(pos)}
		guarded(t, smallConfig(7, plan), prog, 16)
	}
}
