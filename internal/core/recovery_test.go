package core

import (
	"testing"
	"testing/quick"

	"dsmtx/internal/pipeline"
	"dsmtx/internal/sim"
	"dsmtx/internal/uva"
)

// Deeper recovery-path coverage: back-to-back misspeculations, misspec on
// the first iteration, misspec storms, TLS recovery, and property tests
// over arbitrary misspec sets.

func misspecsOf(iters ...uint64) map[uint64]bool {
	m := make(map[uint64]bool)
	for _, k := range iters {
		m[k] = true
	}
	return m
}

func verifyPipeOut(t *testing.T, sys *System, prog *pipeProg) {
	t.Helper()
	img := sys.CommitImage()
	for k := uint64(0); k < prog.n; k++ {
		if got := img.Load(prog.out + uva.Addr(k*8)); got != prog.expect(k) {
			t.Fatalf("out[%d] = %d, want %d", k, got, prog.expect(k))
		}
	}
}

func TestMisspecOnFirstIteration(t *testing.T) {
	prog := &pipeProg{n: 15, misspecs: misspecsOf(0)}
	sys, res := runProg(t, smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
	if res.Misspecs != 1 || res.Committed != 15 {
		t.Fatalf("res = %+v", res)
	}
	verifyPipeOut(t, sys, prog)
}

func TestBackToBackMisspecs(t *testing.T) {
	prog := &pipeProg{n: 20, misspecs: misspecsOf(7, 8, 9)}
	sys, res := runProg(t, smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
	if res.Misspecs != 3 || res.Committed != 20 {
		t.Fatalf("res = %+v", res)
	}
	verifyPipeOut(t, sys, prog)
}

func TestMisspecStorm(t *testing.T) {
	// Every third iteration misspeculates: the pipeline spends most of its
	// time in recovery yet must still commit the exact sequential result.
	m := make(map[uint64]bool)
	for k := uint64(0); k < 30; k += 3 {
		m[k] = true
	}
	prog := &pipeProg{n: 30, misspecs: m}
	sys, res := runProg(t, smallConfig(7, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
	if res.Misspecs != 10 || res.Committed != 30 {
		t.Fatalf("res = %+v", res)
	}
	verifyPipeOut(t, sys, prog)
}

// tlsMisspecProg: a TLS running sum where chosen iterations take the
// speculated-away error path.
type tlsMisspecProg struct {
	n        uint64
	misspecs map[uint64]bool
	in, acc  uva.Addr
}

func (p *tlsMisspecProg) Setup(ctx *SeqCtx) {
	p.in = ctx.AllocWords(int(p.n))
	p.acc = ctx.AllocWords(1)
	for k := uint64(0); k < p.n; k++ {
		ctx.Store(p.in+uva.Addr(k*8), k*k+3)
	}
}

func (p *tlsMisspecProg) Stage(ctx *Ctx, _ int, iter uint64) bool {
	if iter >= p.n {
		return false
	}
	if p.misspecs[iter] {
		ctx.Misspec()
	}
	var sum uint64
	if ctx.EpochFirst() {
		sum = ctx.Load(p.acc)
	} else {
		sum = ctx.SyncRecv()
	}
	sum += ctx.Load(p.in + uva.Addr(iter*8))
	ctx.Write(p.acc, sum)
	ctx.SyncSend(sum)
	return true
}

func (p *tlsMisspecProg) SeqIter(ctx *SeqCtx, iter uint64) {
	// The error path contributes double (a retry with penalty, say).
	v := ctx.Load(p.in + uva.Addr(iter*8))
	if p.misspecs[iter] {
		v *= 2
	}
	ctx.Store(p.acc, ctx.Load(p.acc)+v)
}

func (p *tlsMisspecProg) expect() uint64 {
	var sum uint64
	for k := uint64(0); k < p.n; k++ {
		v := k*k + 3
		if p.misspecs[k] {
			v *= 2
		}
		sum += v
	}
	return sum
}

func TestTLSRecovery(t *testing.T) {
	prog := &tlsMisspecProg{n: 24, misspecs: misspecsOf(5, 13)}
	plan := pipeline.SpecDOALL()
	plan.Sync = true
	sys, res := runProg(t, smallConfig(6, plan), prog)
	if res.Misspecs != 2 || res.Committed != 24 {
		t.Fatalf("res = %+v", res)
	}
	if got := sys.CommitImage().Load(prog.acc); got != prog.expect() {
		t.Fatalf("acc = %d, want %d", got, prog.expect())
	}
}

// Property: for ANY misspeculation set the pipeline commits the sequential
// result, and Committed always equals the trip count.
func TestRecoveryProperty(t *testing.T) {
	f := func(raw []uint8, coreSel uint8) bool {
		const n = 18
		m := make(map[uint64]bool)
		for _, r := range raw {
			m[uint64(r)%n] = true
		}
		cores := []int{5, 6, 9, 12}[coreSel%4]
		prog := &pipeProg{n: n, misspecs: m}
		cfg := smallConfig(cores, pipeline.SpecDSWP("S", "DOALL", "S"))
		cfg.Horizon = sim.Second // a deadlock must fail, not hang
		sys, err := NewSystem(cfg, prog, nil)
		if err != nil {
			return false
		}
		res, err := sys.Run()
		if err != nil {
			return false
		}
		if res.Committed != n || res.Misspecs != uint64(len(m)) {
			return false
		}
		img := sys.CommitImage()
		for k := uint64(0); k < n; k++ {
			if img.Load(prog.out+uva.Addr(k*8)) != prog.expect(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Spec-DOALL conflict-detection path commits the sequential
// result for any flip point and core count.
func TestConflictDetectionProperty(t *testing.T) {
	f := func(flip uint8, coreSel uint8) bool {
		n := uint64(30)
		prog := &doallProg{n: n, flip: uint64(flip) % n}
		cores := []int{4, 7, 11, 16}[coreSel%4]
		cfg := smallConfig(cores, pipeline.SpecDOALL())
		cfg.Horizon = sim.Second
		sys, err := NewSystem(cfg, prog, nil)
		if err != nil {
			return false
		}
		if _, err := sys.Run(); err != nil {
			return false
		}
		img := sys.CommitImage()
		for k := uint64(0); k < n; k++ {
			if img.Load(prog.out+uva.Addr(k*8)) != prog.expect(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Recovery timing invariants: phases are non-negative and MIS runs slower
// than clean runs.
func TestRecoveryOverheadAccounting(t *testing.T) {
	clean := &pipeProg{n: 40}
	_, cleanRes := runProg(t, smallConfig(8, pipeline.SpecDSWP("S", "DOALL", "S")), clean)
	dirty := &pipeProg{n: 40, misspecs: misspecsOf(10, 20, 30)}
	_, dirtyRes := runProg(t, smallConfig(8, pipeline.SpecDSWP("S", "DOALL", "S")), dirty)
	if dirtyRes.Elapsed <= cleanRes.Elapsed {
		t.Fatalf("misspeculating run (%v) not slower than clean (%v)", dirtyRes.Elapsed, cleanRes.Elapsed)
	}
	for name, v := range map[string]int64{
		"ERM": int64(dirtyRes.ERM), "FLQ": int64(dirtyRes.FLQ),
		"SEQ": int64(dirtyRes.SEQ), "RFP": int64(dirtyRes.RFP),
	} {
		if v < 0 {
			t.Errorf("%s = %d, want >= 0", name, v)
		}
	}
	if dirtyRes.ERM == 0 || dirtyRes.SEQ == 0 {
		t.Error("ERM/SEQ phases should be nonzero with 3 recoveries")
	}
}

// The commit unit's memory after a run with recoveries must be reusable as
// the next invocation's initial image (epoch chaining under misspec).
func TestInvocationChainingAfterRecovery(t *testing.T) {
	prog := &pipeProg{n: 20, misspecs: misspecsOf(4)}
	cfg := smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S"))
	sys1, _ := runProg(t, cfg, prog)
	// Second invocation re-runs Setup against the same image; results must
	// still be exact.
	prog2 := &pipeProg{n: 20}
	sys2, err := NewSystem(cfg, prog2, sys1.CommitImage())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Run(); err != nil {
		t.Fatal(err)
	}
	verifyPipeOut(t, sys2, prog2)
}
