package core

import "dsmtx/internal/platform"

// Execution tracing (Fig. 3(c)): when Config.Trace is set, the runtime
// records every unit's per-MTX activity — worker subTX executions,
// try-commit validations, commits, recoveries — so the harness can render
// the paper's execution-model timeline and tools can inspect pipeline
// behaviour.

// TraceKind labels a trace event.
type TraceKind uint8

// Trace event kinds.
const (
	TraceSubTX    TraceKind = iota // a worker executed one subTX
	TraceValidate                  // the try-commit unit validated one MTX
	TraceCommit                    // the commit unit committed one MTX
	TraceRecovery                  // a recovery window (MTX = failed iteration)
)

func (k TraceKind) String() string {
	switch k {
	case TraceSubTX:
		return "subTX"
	case TraceValidate:
		return "validate"
	case TraceCommit:
		return "commit"
	case TraceRecovery:
		return "recovery"
	}
	return "invalid"
}

// TraceEvent is one recorded activity interval. Times are virtual on the
// vtime backend and wall-clock on host.
type TraceEvent struct {
	Kind       TraceKind
	MTX        uint64
	Stage      int // pipeline stage for TraceSubTX; -1 otherwise
	Tid        int // worker tid for TraceSubTX; -1 otherwise
	Start, End platform.Time
}

// trace appends an event if tracing is on. The mutex only matters on the
// host backend, where recording processes are concurrent goroutines; on
// vtime it is uncontended by construction.
func (s *System) trace(e TraceEvent) {
	if s.cfg.Trace {
		s.traceMu.Lock()
		s.events = append(s.events, e)
		s.traceMu.Unlock()
	}
}

// Trace returns the recorded events after Run (empty unless Config.Trace).
func (s *System) Trace() []TraceEvent { return s.events }
