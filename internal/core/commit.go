package core

import (
	"fmt"
	"math/bits"

	"sync/atomic"

	"dsmtx/internal/mem"
	"dsmtx/internal/mpi"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
	"dsmtx/internal/uva"
)

// cuNode is one commit unit. With a single commit shard it is the paper's
// commit unit: the only process holding authoritative memory, executing the
// sequential portions, committing each validated MTX atomically (group
// transaction commit) and orchestrating misspeculation recovery. With
// CommitShards > 1 each cuNode owns a consistent-hashed partition of the
// page space: every shard consumes all markers and verdicts (so decisions
// replicate deterministically), stages and applies only its own partition's
// writes, and MTXs whose writes span shards commit through an ordered
// two-phase vote coordinated by the shard owning the MTX's lowest written
// page. Shard 0 is the lead: Setup, termination and Finalize run there.
type cuNode struct {
	sys   *System
	shard int
	rank  int
	proc  platform.Proc
	comm  *mpi.Comm
	img   *mem.Image
	arena *uva.Arena

	in       []*entryCursor // per worker tid
	verdicts []*entryCursor // per try-commit shard

	staged []Entry // group-commit staging buffer, reused across MTXs

	// Cross-shard commit state (CommitShards > 1 only). curMask/curMin
	// accumulate the current MTX's write-owner mask and lowest written
	// address from the EndSub markers; votesBox receives ordered 2PC votes
	// addressed to this shard as coordinator; voteCount buffers early votes
	// from run-ahead participants (keyed by MTX).
	curMask   uint64
	curMin    uva.Addr
	votesBox  platform.Mailbox
	voteCount map[uint64]int

	routes   map[uint64]int
	epoch    uint64
	pollTime platform.Duration
	iter     uint64
	result   Result
	resumed  platform.Time // time of last recovery resume, 0 if none pending RFP

	// Stall attribution: pollTime split by what the poll was waiting for
	// (worker store streams vs try-commit verdicts vs cross-shard votes),
	// plus recovery-window accounting. rfpStart anchors the RFP span in
	// tracer time.
	stallStarve  platform.Duration
	stallVerdict platform.Duration
	voteWait     platform.Duration
	recWall      platform.Duration
	recAdv       platform.Duration
	recBlk       platform.Duration
	rfpStart     platform.Time

	// Crash-fault machinery, allocated only under a crash plan (sys.hbOn):
	// hbBox/rejoinBox collect any-source heartbeats and restart
	// announcements; lastHeard[w] is worker w's newest sign of life; the
	// red* fields account crash re-dispatch windows for stall attribution.
	hbBox     platform.Mailbox
	rejoinBox platform.Mailbox
	lastHeard []platform.Time
	redWall   platform.Duration
	redAdv    platform.Duration
	redBlk    platform.Duration

	// Misspeculation cause counters (nil when uninstrumented).
	cMissWorker   *trace.Counter
	cMissConflict *trace.Counter
}

func newCUNode(s *System, shard int) *cuNode {
	c := &cuNode{sys: s, shard: shard, rank: s.cfg.commitShardRank(shard), routes: make(map[uint64]int)}
	// The image exists from construction (single-threaded, before spawn) so
	// the lead shard can seed every partition during Setup via the federated
	// space; with one shard the seed image simply becomes the image.
	c.img = mem.NewImage(nil)
	if s.cfg.commitShards() == 1 && s.initialImage != nil {
		c.img = s.initialImage
	}
	c.img.Instrument(s.tr.Metrics())
	return c
}

// termVoteKey is the vote key non-lead shards send the lead on loop
// termination (no MTX carries this id).
const termVoteKey = ^uint64(0)

// seqSpace is the memory view sequential code (Setup, SeqIter, Finalize)
// runs against on this shard: the image itself with one commit unit, the
// federated per-shard view otherwise.
func (c *cuNode) seqSpace() mem.Space {
	if c.sys.cfg.commitShards() == 1 {
		return c.img
	}
	imgs := make([]*mem.Image, len(c.sys.cus))
	for k, cu := range c.sys.cus {
		imgs[k] = cu.img
	}
	return &shardSpace{sys: c.sys, imgs: imgs}
}

// coordinator resolves the ordered-2PC coordinator for the current MTX: the
// shard owning the MTX's lowest written page, or the lead for an MTX that
// wrote nothing.
func (c *cuNode) coordinator() int {
	if c.curMask == 0 {
		return 0
	}
	return c.sys.ownerOf(c.curMin.Page())
}

// crashSignal unwinds the commit loop when a worker crash is detected; the
// deferred handler in commitEpoch converts it into a crash recovery.
type crashSignal struct{ rank int }

func (c *cuNode) run(p platform.Proc) {
	c.proc = p
	c.comm = c.sys.world.Attach(c.rank, p)
	c.comm.SetTracer(c.sys.tr, c.rank)
	c.bind()

	seq := &SeqCtx{cfg: c.sys.cfg, proc: p, img: c.seqSpace(), arena: c.arena, instr: c.sys.instrTime}
	if c.shard == 0 {
		c.sys.prog.Setup(seq)
		// Publish the invocation-entry snapshot for Copy-On-Access service,
		// then open the parallel section: workers must not touch memory
		// before the sequential state exists. With a sharded pipeline the
		// lead wrote directly into every shard's image via the federated
		// space; peer shards have not touched their images yet (they park in
		// tagStart below), so the cross-image snapshots are race-free.
		c.sys.publishSnapshots(c.img)
		for k := 1; k < c.sys.cfg.commitShards(); k++ {
			c.comm.Send(c.sys.cfg.commitShardRank(k), tagStart, nil, 8)
		}
		for w := 0; w < c.sys.cfg.Workers(); w++ {
			c.comm.Send(w, tagStart, nil, 8)
		}
		for j := 0; j < c.sys.cfg.tcUnits(); j++ {
			c.comm.Send(c.sys.cfg.tryCommitRank(j), tagStart, nil, 8)
		}
		if c.sys.hbOn {
			// Workers begin heartbeating once they see tagStart; the
			// freshness clock starts now so setup time is never counted as
			// silence.
			for i := range c.lastHeard {
				c.lastHeard[i] = p.Now()
			}
		}
	} else {
		c.comm.Recv(c.sys.cfg.commitRank(), tagStart) // lead Setup must finish first
	}

	c.commitLoop(seq)
	if c.shard == 0 {
		c.sys.stopHeartbeats()
		if f, ok := c.sys.prog.(Finalizer); ok {
			f.Finalize(seq)
		}
	}
	// Shut this rank's page-server shard(s) down so the simulation can
	// drain: with a sharded commit pipeline each commit rank hosts exactly
	// one server on the base request tag; otherwise the single commit rank
	// hosts every shard.
	if c.sys.cfg.commitShards() > 1 {
		c.comm.Endpoint().Send(c.rank, tagPageReq, nil, 8)
		return
	}
	for shard := range c.sys.srvs {
		c.comm.Endpoint().Send(c.rank, c.sys.cfg.pageReqTag(shard), nil, 8)
	}
}

func (c *cuNode) bind() {
	c.comm.RegisterBarrierMailboxes()
	if c.sys.cfg.commitShards() > 1 {
		// The sequential arena is shared across shards: Setup, recovery
		// re-execution and Finalize may run on different shards but must
		// allocate from one bump pointer.
		c.arena = c.sys.seqArena
		ep := c.comm.Endpoint()
		c.votesBox = ep.Mailbox(platform.AnySource, tagCommitVoteBase+c.shard)
		ep.Mailbox(platform.AnySource, tagCtrl) // recovery epochs from any coordinator
		c.voteCount = make(map[uint64]int)
	} else {
		c.arena = uva.NewArena(0)
	}
	for w := 0; w < c.sys.cfg.Workers(); w++ {
		c.in = append(c.in, newEntryCursor(c.sys.toCUQ[w][c.shard].Receiver(c.comm)))
	}
	for j := 0; j < c.sys.cfg.tcUnits(); j++ {
		c.verdicts = append(c.verdicts, newEntryCursor(c.sys.verdictQ[j][c.shard].Receiver(c.comm)))
	}
	c.cMissWorker = c.sys.tr.Metrics().Counter("misspec.worker")
	c.cMissConflict = c.sys.tr.Metrics().Counter("misspec.conflict")
	if c.sys.hbOn {
		ep := c.comm.Endpoint()
		c.hbBox = ep.Mailbox(platform.AnySource, tagHeartbeat)
		c.rejoinBox = ep.Mailbox(platform.AnySource, tagRejoin)
		c.lastHeard = make([]platform.Time, c.sys.cfg.Workers())
	}
}

// commitLoop stages each MTX's stores from the worker streams, awaits the
// try-commit verdict, and either commits atomically or recovers. A detected
// worker crash unwinds the loop body (crashSignal), is repaired by
// recoverCrash, and the loop resumes from the same iteration.
func (c *cuNode) commitLoop(seq *SeqCtx) {
	for !c.commitEpoch(seq) {
	}
}

// commitEpoch runs the commit loop until loop termination (true) or until a
// worker crash unwinds it (false, with recovery already performed).
func (c *cuNode) commitEpoch(seq *SeqCtx) (done bool) {
	defer func() {
		if r := recover(); r != nil {
			cs, ok := r.(crashSignal)
			if !ok {
				panic(r)
			}
			c.recoverCrash(seq, cs.rank)
		}
	}()
	committer, hasCommitter := c.sys.prog.(Committer)
	nShards := c.sys.cfg.commitShards()
	for {
		iter := c.iter
		c.staged = c.staged[:0]
		c.curMask, c.curMin = 0, ^uva.Addr(0)
		misspec := false
		terminated := false
		for s := range c.sys.cfg.Plan.Stages {
			tid := c.routeOf(s, iter)
			subMiss, term := c.drainSub(tid, iter)
			if term {
				if s != 0 {
					panic(fmt.Sprintf("core: commit saw terminate mid-MTX %d at stage %d", iter, s))
				}
				terminated = true
				break
			}
			misspec = misspec || subMiss
		}
		if terminated {
			c.drainTerminates(iter)
			c.awaitTerminateVerdict()
			if nShards > 1 {
				if c.shard != 0 {
					// Ordered termination vote: tell the lead this shard's
					// partition is fully committed, then exit.
					c.comm.Send(c.sys.cfg.commitShardRank(0), tagCommitVoteBase, termVoteKey, 16)
					return true
				}
				c.awaitVotes(termVoteKey, nShards-1)
			}
			// Release every parked worker and the try-commit unit.
			done := ctrlMsg{epoch: c.epoch, done: true}
			for w := 0; w < c.sys.cfg.Workers(); w++ {
				c.comm.Send(w, tagCtrl, done, 24)
			}
			for j := 0; j < c.sys.cfg.tcUnits(); j++ {
				c.comm.Send(c.sys.cfg.tryCommitRank(j), tagCtrl, done, 24)
			}
			return true
		}
		// The verdict arrives after the try-commit unit has validated every
		// subTX of this MTX. Every shard consumes the same markers and
		// verdicts, so the commit/misspeculate decision replicates
		// identically without communication.
		markerMiss := misspec
		if !c.nextVerdict(iter) {
			misspec = true
		}
		if misspec {
			if nShards > 1 {
				coord := c.coordinator()
				if c.shard != coord {
					// Stop vote: prove this shard reached the failed MTX (and
					// so consumed every earlier vote) before the coordinator
					// broadcasts the recovery epoch.
					c.comm.Send(c.sys.cfg.commitShardRank(coord), tagCommitVoteBase+coord, iter, 16)
					c.followRecovery(iter)
					continue
				}
				c.awaitVotes(iter, nShards-1)
			}
			if markerMiss {
				c.cMissWorker.Inc()
			} else {
				c.cMissConflict.Inc()
			}
			c.result.Misspecs++
			c.recover(seq, iter)
			continue
		}
		spanStart := c.sys.tr.Now()
		// Group transaction commit: apply all stores in subTX order; the
		// last write to a location wins. With a sharded pipeline only this
		// partition's stores were routed here.
		var bulkBytes int
		for _, e := range c.staged {
			if e.Kind == entWriteBlk {
				c.img.StoreBytes(e.Addr, e.Payload.([]byte))
				bulkBytes += e.Bytes
				continue
			}
			c.img.Store(e.Addr, e.Val)
		}
		c.proc.Advance(c.sys.instrTime(int64(len(c.staged))*c.sys.cfg.StoreInstr +
			int64(float64(bulkBytes)*c.sys.cfg.BulkInstrPerByte)))
		if nShards > 1 {
			c.shardCommit(iter, spanStart, bulkBytes)
		} else {
			c.result.Committed++
			if hasCommitter {
				committer.Commit(seq, iter)
			}
			c.sys.trace(TraceEvent{Kind: TraceCommit, MTX: iter, Stage: -1, Tid: -1,
				Start: c.proc.Now(), End: c.proc.Now()})
			c.sys.tr.Span(trace.SpanCommit, c.rank, spanStart, iter, int64(len(c.staged)), int64(bulkBytes))
		}
		if c.resumed > 0 {
			c.result.RFP += c.proc.Now() - c.resumed
			c.sys.tr.Span(trace.SpanRFP, c.rank, c.rfpStart, iter, 0, 0)
			c.resumed = 0
		}
		delete(c.routes, iter)
		c.iter = iter + 1
	}
}

// shardCommit finishes a clean MTX under a sharded commit pipeline: the
// stores are already applied locally; participating shards send the
// coordinator their ordered prepare vote (the entire 2PC prepare round —
// the predefined commit order means ordering races cannot abort, only real
// conflicts, and those were already ruled out by the verdict), and the
// coordinator collects the votes before counting the MTX committed.
func (c *cuNode) shardCommit(iter uint64, spanStart platform.Time, bulkBytes int) {
	coord := c.coordinator()
	self := uint64(1) << uint(c.shard)
	if c.curMask&self != 0 {
		c.sys.tr.Span(trace.SpanShardCommit, c.rank, spanStart, iter, int64(len(c.staged)), int64(bulkBytes))
	}
	if c.shard != coord {
		if c.curMask&self != 0 {
			c.sys.tr.Instant(trace.InstShardVote, c.rank, iter, int64(coord), 0)
			c.comm.Send(c.sys.cfg.commitShardRank(coord), tagCommitVoteBase+coord, iter, 16)
		}
		return
	}
	if need := bits.OnesCount64(c.curMask &^ (1 << uint(coord))); need > 0 {
		voteStart := c.sys.tr.Now()
		c.awaitVotes(iter, need)
		c.sys.tr.Span(trace.SpanShardVoteWait, c.rank, voteStart, iter, int64(need), 0)
	}
	c.result.Committed++
	c.sys.trace(TraceEvent{Kind: TraceCommit, MTX: iter, Stage: -1, Tid: -1,
		Start: c.proc.Now(), End: c.proc.Now()})
	c.sys.tr.Span(trace.SpanCommit, c.rank, spanStart, iter, int64(len(c.staged)), int64(bulkBytes))
}

// awaitVotes blocks until `need` votes for `key` have arrived on this
// shard's coordinator mailbox. Votes for other MTXs (run-ahead participants
// of later MTXs this shard will coordinate) are buffered, never dropped.
func (c *cuNode) awaitVotes(key uint64, need int) {
	have := c.voteCount[key]
	delete(c.voteCount, key)
	backoff := c.sys.cfg.PollMin
	for have < need {
		if msg, ok := c.comm.TryRecvBox(c.votesBox); ok {
			if k := msg.Payload.(uint64); k == key {
				have++
			} else {
				c.voteCount[k]++
			}
			continue
		}
		c.proc.Advance(backoff)
		c.pollTime += backoff
		c.voteWait += backoff
		if backoff < c.sys.cfg.PollMax {
			backoff *= 2
		}
	}
}

// followRecovery is the non-coordinator shard's side of a cross-shard
// recovery: after sending its stop vote the shard awaits the coordinator's
// epoch broadcast, then runs the standard flush/re-protect barrier dance
// while the coordinator re-executes the failed iteration sequentially.
func (c *cuNode) followRecovery(failed uint64) {
	start := c.proc.Now()
	trStart := c.sys.tr.Now()
	adv0, blk0 := c.proc.Advanced(), c.proc.Blocked()
	msg := c.comm.Recv(platform.AnySource, tagCtrl)
	cm := msg.Payload.(ctrlMsg)
	c.epoch = cm.epoch

	c.comm.Barrier(c.sys.allRanks) // B1: everyone is in recovery mode
	for _, port := range c.in {
		port.abort(c.epoch)
	}
	for _, port := range c.verdicts {
		port.abort(c.epoch)
	}
	c.routes = make(map[uint64]int)
	c.comm.Barrier(c.sys.allRanks) // B2: queues flushed
	c.comm.Barrier(c.sys.allRanks) // B3: coordinator re-executed; resume

	end := c.proc.Now()
	c.recWall += end - start
	c.recAdv += c.proc.Advanced() - adv0
	c.recBlk += c.proc.Blocked() - blk0
	c.sys.tr.Span(trace.SpanRecovery, c.rank, trStart, failed, 0, 0)
	c.iter = cm.restart
	c.resumed = 0
}

// drainSub stages one subTX's stores into the reused staging buffer.
func (c *cuNode) drainSub(tid int, iter uint64) (misspec, term bool) {
	port := c.in[tid]
	for {
		e := c.consumeNext(port, &c.stallStarve)
		switch e.Kind {
		case entWrite, entWriteBlk:
			c.staged = append(c.staged, e)
		case entRoute:
			c.routes[e.MTX] = int(e.Val)
		case entMisspec:
			misspec = true
		case entEndSub:
			if e.MTX != iter {
				panic(fmt.Sprintf("core: commit expected EndSub %d from worker %d, got %d", iter, tid, e.MTX))
			}
			// Under a sharded pipeline the marker carries the subTX's
			// write-owner mask (Val) and lowest written address (Addr);
			// accumulate them so every shard derives the same coordinator.
			c.curMask |= e.Val
			if e.Val != 0 && e.Addr < c.curMin {
				c.curMin = e.Addr
			}
			return misspec, false
		case entTerminate:
			return false, true
		default:
			panic(fmt.Sprintf("core: commit: unexpected %v entry", e.Kind))
		}
	}
}

func (c *cuNode) drainTerminates(endIter uint64) {
	for tid := range c.in {
		if c.sys.layout.StageOf(tid) == 0 && c.sys.layout.WorkerOf(0, endIter) == tid {
			continue
		}
		for {
			e := c.consumeNext(c.in[tid], &c.stallStarve)
			if e.Kind == entTerminate {
				break
			}
		}
	}
}

// awaitTerminateVerdict waits for every try-commit shard to confirm it
// validated everything before the loop result is final.
func (c *cuNode) awaitTerminateVerdict() {
	for _, port := range c.verdicts {
		for {
			e := c.consumeNext(port, &c.stallVerdict)
			if e.Kind == entTerminate {
				break
			}
		}
	}
}

// nextVerdict returns the combined validation result for iter: every
// try-commit shard must approve its address partition.
func (c *cuNode) nextVerdict(iter uint64) bool {
	ok := true
	for _, port := range c.verdicts {
		e := c.consumeNext(port, &c.stallVerdict)
		if e.Kind != entVerdict {
			panic(fmt.Sprintf("core: unexpected %v entry on verdict queue", e.Kind))
		}
		if e.MTX != iter {
			panic(fmt.Sprintf("core: verdict for MTX %d while committing %d", e.MTX, iter))
		}
		ok = ok && e.Val == 1
	}
	return ok
}

func (c *cuNode) routeOf(s int, iter uint64) int {
	if s == c.sys.routedStage {
		idx, ok := c.routes[iter]
		if !ok {
			panic(fmt.Sprintf("core: commit has no route for MTX %d", iter))
		}
		return c.sys.layout.Assign[s][idx]
	}
	if c.sys.cfg.Plan.Stages[s].Kind == pipeline.Parallel {
		return c.sys.layout.WorkerOf(s, iter)
	}
	return c.sys.layout.Assign[s][0]
}

// consumeNext polls for the next entry, charging wait time both to the
// total (pollTime) and to the caller's stall bucket: starvation when
// waiting on worker store streams, verdict-wait when waiting on the
// try-commit unit.
func (c *cuNode) consumeNext(port *entryCursor, bucket *platform.Duration) Entry {
	backoff := c.sys.cfg.PollMin
	for {
		if e, ok := port.tryNext(); ok {
			return e
		}
		if c.hbBox != nil {
			// A stalled poll is exactly when a dead worker matters: either
			// this stream is the crashed worker's, or someone upstream of it
			// is transitively blocked on the crash.
			c.checkLiveness()
		}
		c.proc.Advance(backoff)
		c.pollTime += backoff
		*bucket += backoff
		if backoff < c.sys.cfg.PollMax {
			backoff *= 2
		}
	}
}

// checkLiveness drains liveness traffic and unwinds to crash recovery when
// a worker is down. Heartbeats are consumed at NIC level (no per-message
// receive charge — hardware keepalive tracking); the commit unit only reads
// the freshness table. A rejoin announcement carrying the current epoch is
// the primary detection trigger: it proves a crash happened in this epoch.
// A stale rejoin (from an epoch some recovery already ended) is dropped —
// the broadcast that ended that epoch is already in the worker's control
// mailbox and re-integrates it through the ordinary recovery path. The
// HeartbeatTimeout scan is the backstop for crashes whose downtime exceeds
// the patience of the commit unit.
func (c *cuNode) checkLiveness() {
	now := c.proc.Now()
	for {
		msg, ok := c.hbBox.TryRecv()
		if !ok {
			break
		}
		c.lastHeard[msg.From] = now
	}
	for {
		msg, ok := c.rejoinBox.TryRecv()
		if !ok {
			break
		}
		if msg.Payload.(uint64) == c.epoch {
			panic(crashSignal{rank: msg.From})
		}
	}
	cutoff := now - c.sys.cfg.HeartbeatTimeout
	for w, t := range c.lastHeard {
		if t < cutoff {
			c.sys.tr.Instant(trace.InstHeartbeatMiss, c.rank, uint64(w), int64(now-t), 0)
			c.lastHeard[w] = now // at most one recovery per detection
			panic(crashSignal{rank: w})
		}
	}
}

// recoverCrash re-integrates a crashed-and-restarted worker. The worker's
// speculative state died with it, but the commit unit's image holds every
// committed store, so this is §4.3's misspeculation protocol minus the SEQ
// phase — no iteration failed validation; the uncommitted window simply
// re-dispatches from the current commit point. Costs land in the red*
// buckets (the stall table's "crashed" column) and Result.Redispatch, kept
// apart from the ERM/FLQ/SEQ/RFP misspeculation accounting.
func (c *cuNode) recoverCrash(seq *SeqCtx, rank int) {
	start := c.proc.Now()
	trStart := c.sys.tr.Now()
	adv0, blk0 := c.proc.Advanced(), c.proc.Blocked()
	c.epoch++
	cm := ctrlMsg{epoch: c.epoch, restart: c.iter}
	for w := 0; w < c.sys.cfg.Workers(); w++ {
		c.comm.Send(w, tagCtrl, cm, 24)
	}
	for j := 0; j < c.sys.cfg.tcUnits(); j++ {
		c.comm.Send(c.sys.cfg.tryCommitRank(j), tagCtrl, cm, 24)
	}

	c.comm.Barrier(c.sys.allRanks) // B1: completes once the worker has rejoined

	for _, port := range c.in {
		port.abort(c.epoch)
	}
	for _, port := range c.verdicts {
		port.abort(c.epoch)
	}
	c.routes = make(map[uint64]int)

	c.comm.Barrier(c.sys.allRanks) // B2: queues flushed

	// No SEQ re-execution — nothing misspeculated. Refresh the COA snapshots
	// so the restarted worker pages in committed state.
	c.sys.publishSnapshots(c.img)

	c.comm.Barrier(c.sys.allRanks) // B3: resume parallel execution

	end := c.proc.Now()
	c.result.Crashes++
	c.result.Redispatch += end - start
	c.redWall += end - start
	c.redAdv += c.proc.Advanced() - adv0
	c.redBlk += c.proc.Blocked() - blk0
	c.sys.tr.Span(trace.SpanRedispatch, c.rank, trStart, uint64(rank), int64(c.iter), 0)
	for i := range c.lastHeard {
		c.lastHeard[i] = end // everyone proved liveness at the barriers
	}
}

// recover orchestrates the four-phase recovery of §4.3 for a misspeculated
// iteration: broadcast + barrier (ERM), queue flush + barrier (FLQ),
// sequential re-execution of the aborted iteration (SEQ), final barrier;
// the pipeline refill cost (RFP) is measured from resume to the next
// commit.
func (c *cuNode) recover(seq *SeqCtx, failed uint64) {
	start := c.proc.Now()
	trStart := c.sys.tr.Now()
	adv0, blk0 := c.proc.Advanced(), c.proc.Blocked()
	c.epoch++
	cm := ctrlMsg{epoch: c.epoch, restart: failed + 1}
	for w := 0; w < c.sys.cfg.Workers(); w++ {
		c.comm.Send(w, tagCtrl, cm, 24)
	}
	for j := 0; j < c.sys.cfg.tcUnits(); j++ {
		c.comm.Send(c.sys.cfg.tryCommitRank(j), tagCtrl, cm, 24)
	}
	// As cross-shard recovery coordinator, release the peer commit shards
	// parked in followRecovery. Their stop votes arrived before this
	// broadcast, so none of them can still be committing an earlier MTX.
	for k := 0; k < c.sys.cfg.commitShards(); k++ {
		if k != c.shard {
			c.comm.Send(c.sys.cfg.commitShardRank(k), tagCtrl, cm, 24)
		}
	}

	c.comm.Barrier(c.sys.allRanks) // B1: everyone is in recovery mode
	ermDone := c.proc.Now()
	c.result.ERM += ermDone - start
	trERM := c.sys.tr.Now()
	c.sys.tr.Span(trace.SpanERM, c.rank, trStart, failed, 0, 0)

	for _, port := range c.in {
		port.abort(c.epoch)
	}
	for _, port := range c.verdicts {
		port.abort(c.epoch)
	}
	c.routes = make(map[uint64]int)

	c.comm.Barrier(c.sys.allRanks) // B2: queues flushed
	flqDone := c.proc.Now()
	c.result.FLQ += flqDone - ermDone
	trFLQ := c.sys.tr.Now()
	c.sys.tr.Span(trace.SpanFLQ, c.rank, trERM, failed, 0, 0)

	// Re-execute the aborted iteration single-threaded against committed
	// state, then refresh the Copy-On-Access snapshot so restarted workers
	// initialize from the new committed memory.
	c.sys.prog.SeqIter(seq, failed)
	c.result.Committed++
	if committer, ok := c.sys.prog.(Committer); ok {
		committer.Commit(seq, failed)
	}
	c.sys.publishSnapshots(c.img)
	seqDone := c.proc.Now()
	c.result.SEQ += seqDone - flqDone
	c.sys.tr.Span(trace.SpanSEQ, c.rank, trFLQ, failed, 0, 0)

	c.comm.Barrier(c.sys.allRanks) // B3: resume parallel execution
	c.resumed = c.proc.Now()
	c.sys.trace(TraceEvent{Kind: TraceRecovery, MTX: failed, Stage: -1, Tid: -1,
		Start: start, End: c.resumed})
	c.sys.tr.Span(trace.SpanRecovery, c.rank, trStart, failed, 0, 0)
	c.rfpStart = c.sys.tr.Now()
	c.recWall += c.resumed - start
	c.recAdv += c.proc.Advanced() - adv0
	c.recBlk += c.proc.Blocked() - blk0
	c.iter = failed + 1
	for i := range c.lastHeard {
		// The barriers proved every worker alive; without this reset a long
		// SEQ re-execution would read as heartbeat silence.
		c.lastHeard[i] = c.proc.Now()
	}
}

// pageServer serves Copy-On-Access page requests from the invocation-entry
// snapshot of the commit unit's memory. Every shard shares the commit
// unit's rank (and NIC) but runs as its own process so page service
// continues while the commit unit is busy committing. With
// Config.PageServShards > 1 (host only) each shard owns a block-interleaved
// partition of the page space and listens on its own request tag, so
// concurrent worker faults stop serializing through one goroutine.
type pageServer struct {
	sys   *System
	shard int
	proc  platform.Proc
	comm  *mpi.Comm
	// snap is this shard's served snapshot. On vtime the cooperative
	// scheduler makes the commit unit's swap trivially atomic; on host the
	// commit unit and the page servers are separate goroutines, so
	// publication is atomic. Each shard gets its own snapshot image (frames
	// shared copy-on-write): a snapshot's internal lookup caches mutate on
	// reads, so concurrent shards must not share one.
	snap atomic.Pointer[mem.Image]

	// Served-request accounting (diagnostic; read after Run joins).
	Requests    uint64
	PagesServed uint64
	// depthHW is the high-water request backlog observed on this shard's
	// mailbox (host + tracer only; the stall report's shard-q column).
	depthHW int64

	// Metric handles (nil when uninstrumented).
	cReq   *trace.Counter
	cPages *trace.Counter
	gDepth *trace.Gauge
	hServe *trace.Histogram
}

func newPageServer(s *System, shard int) *pageServer { return &pageServer{sys: s, shard: shard} }

// setSnapshot swaps the snapshot served to workers; called by the commit
// unit at invocation start and after each recovery, always at points where
// no page request is in flight (before tagStart, and between recovery
// barriers B2 and B3).
func (ps *pageServer) setSnapshot(snap *mem.Image) { ps.snap.Store(snap) }

func (ps *pageServer) run(p platform.Proc) {
	// With a sharded commit pipeline each commit rank hosts one server for
	// its own partition on the base request tag; otherwise every server
	// shard shares the single commit rank and distinguishes by tag.
	tag := ps.sys.cfg.pageReqTag(ps.shard)
	if ps.sys.cfg.commitShards() > 1 {
		tag = tagPageReq
	}
	ps.proc = p
	ps.comm = ps.sys.world.Attach(ps.sys.pageSrvRank(ps.shard), p)
	box := ps.comm.Endpoint().Mailbox(platform.AnySource, tag)
	ps.cReq = ps.sys.tr.Metrics().Counter("coa.requests")
	ps.cPages = ps.sys.tr.Metrics().Counter("coa.pages.served")
	tr := ps.sys.tr
	// Host delivery instruments (the host mailbox exposes its backlog;
	// vtime's does not, and per-shard wall latency is meaningless there).
	var depther interface{ Depth() int }
	if tr.Enabled() && tr.Wall() {
		depther, _ = box.(interface{ Depth() int })
		ps.gDepth = tr.Metrics().Gauge(fmt.Sprintf("pagesrv.shard%d.depth", ps.shard))
		ps.hServe = tr.Metrics().Histogram(fmt.Sprintf("pagesrv.shard%d.serve.ns", ps.shard))
	}
	track := ps.sys.pageSrvTrack() + ps.shard
	for {
		msg := ps.comm.Endpoint().Recv(p, platform.AnySource, tag)
		if msg.Payload == nil {
			return // shutdown sentinel from the commit unit
		}
		if depther != nil {
			d := int64(depther.Depth())
			ps.gDepth.Set(d)
			if d > ps.depthHW {
				ps.depthHW = d
			}
		}
		t0 := tr.Now()
		req := msg.Payload.(pageReq)
		ps.Requests++
		ps.PagesServed += uint64(req.Count)
		ps.cReq.Inc()
		ps.cPages.Add(uint64(req.Count))
		ps.proc.Advance(ps.sys.instrTime(ps.sys.cfg.PageServInstr + 60*int64(req.Count)))
		snap := ps.snap.Load()
		pages := make([]*mem.Page, req.Count)
		for i := range pages {
			pages[i] = snap.CopyPage(req.Start + uva.PageID(i))
		}
		wire := req.Count*(uva.PageSize+8) + 56
		if req.Grain > 0 {
			wire = req.Grain + 56 // sub-page chunk (word-granularity ablation)
		}
		// RDMA put: wire time only, no per-byte CPU marshalling.
		ps.comm.Endpoint().SendClass(msg.From, tagPageReply, pages, wire, platform.ClassPage)
		if ps.hServe != nil {
			end := tr.Now()
			ps.hServe.Observe(int64(end - t0))
			tr.Span(trace.SpanPageServe, track, t0, uint64(req.Start), int64(req.Count), int64(wire))
		}
	}
}
