package core

import (
	"dsmtx/internal/uva"

	"fmt"

	"dsmtx/internal/cluster"
	"dsmtx/internal/faults"
	"dsmtx/internal/mpi"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/platform"
	"dsmtx/internal/queue"
	"dsmtx/internal/trace"
)

// Backend selects the execution platform a System runs on.
type Backend int

const (
	// BackendVTime (the zero value) executes on the deterministic
	// virtual-time simulator: modelled cluster, instruction charging,
	// bit-identical repeat runs.
	BackendVTime Backend = iota
	// BackendHost executes the same protocol live on host goroutines:
	// wall-clock time, no instruction or wire-time modelling,
	// scheduler-dependent interleaving. Protocol outcomes (committed MTXs,
	// checksums) match vtime; timings do not. The observability tracer runs
	// here too, bound to the monotonic wall clock with lock-free per-rank
	// span buffers; only fault injection (built on virtual-time timers and
	// deterministic rolls) is rejected.
	BackendHost
	// BackendNet executes the protocol across OS processes: each daemon
	// hosts a contiguous range of ranks on an embedded host platform, and
	// cross-daemon messages travel as wire frames over TCP (see
	// internal/platform/net and internal/wire). Protocol outcomes match
	// vtime and host; like host, timings are wall-clock. The platform is
	// injected through Config.Platform by the orchestration layer
	// (internal/netrun), which owns the connection mesh — core never
	// dials.
	BackendNet
)

// String names the backend as the -backend CLI flag spells it.
func (b Backend) String() string {
	switch b {
	case BackendHost:
		return "host"
	case BackendNet:
		return "net"
	}
	return "vtime"
}

// ParseBackend converts a -backend flag value into a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "vtime":
		return BackendVTime, nil
	case "host":
		return BackendHost, nil
	case "net":
		return BackendNet, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (have vtime, host, net)", s)
}

// Config assembles a DSMTX system.
type Config struct {
	// TotalCores is the number of cores devoted to the parallelization,
	// including the try-commit unit(s) and the commit unit (the x-axis of
	// Fig. 4); the rest are workers.
	TotalCores int

	// Backend selects the execution platform: the deterministic
	// virtual-time simulator (the default), live host goroutines, or
	// distributed daemon processes (net).
	Backend Backend

	// Platform supplies the execution platform for the net backend: the
	// orchestration layer (internal/netrun) builds one platform per
	// invocation, bound to its connection mesh, and core calls the factory
	// with the rank count it laid out. Required when Backend is BackendNet;
	// must be nil otherwise (vtime and host platforms are built by core).
	Platform func(ranks int) (platform.Platform, error)

	// Plan is the parallelization scheme laid out over the workers.
	Plan pipeline.Plan

	// Cluster, MPICost and Queue configure the substrate.
	Cluster cluster.Config
	MPICost mpi.Cost
	Queue   queue.Config

	// Per-operation CPU costs, in instructions.
	LoadInstr        int64   // private-memory load (beyond any forwarding)
	StoreInstr       int64   // private-memory store
	BulkInstrPerByte float64 // bulk (block) memory traffic, instructions/byte

	// MarkerFlushIters is how many iterations of validation/commit stream
	// (subTX markers, forwarded stores) a worker may batch before flushing
	// to the try-commit and commit units; the verdict stream batches the
	// same way. Larger values amortize per-message overheads at the
	// decoupled units but delay misspeculation detection — the batching /
	// refill-cost tradeoff of §5.4. Misspeculation markers always flush
	// immediately.
	MarkerFlushIters int

	// TryCommitUnits shards the try-commit stage across several cores by
	// address region — the parallelization the paper's §3.2 points at for
	// when validation serializes ("the algorithms of the try-commit unit
	// ... are parallelizable"). 0 or 1 means the paper's single unit.
	TryCommitUnits int

	// CommitShards partitions the commit pipeline itself: the page space is
	// consistent-hashed (HRW over 64-page blocks) across this many commit
	// units, each owning its partition's committed image and running its own
	// group-commit/COA loop. MTXs whose writes span shards commit through an
	// ordered two-phase vote: the shard owning the MTX's lowest written page
	// coordinates, and because the global commit order is predefined the
	// prepare round is a single ordered vote per participant — ordering races
	// cannot abort, only real conflicts can. 0 or 1 means the paper's single
	// commit unit and is byte-identical to the pre-sharding layout on both
	// backends.
	CommitShards int

	// OccWindow bounds outstanding iterations per worker under
	// occupancy-based routing; the router blocks for a completion ack when
	// every worker is saturated (bounded-queue backpressure).
	OccWindow int

	// COAGrainBytes models Copy-On-Access at sub-page granularity for the
	// §4.2 ablation ("the round-trip latency induced by COA can be
	// prohibitive if COA is done at a word granularity"): a fault then
	// takes PageSize/COAGrainBytes round trips to populate its page.
	// 0 (the default) is the paper's page granularity.
	COAGrainBytes int

	// COAPrefetch is how many contiguous non-resident pages one
	// Copy-On-Access fault pulls (read-ahead extending the paper's
	// "constructive prefetching" within a page to runs of pages).
	COAPrefetch    int
	PageServInstr  int64 // page-server CPU per served request
	PageFaultInstr int64 // worker-side fault handling per COA miss
	ProtectInstr   int64 // re-arming protection per resident page in recovery

	// PageServShards is the number of page-server processes serving
	// Copy-On-Access requests, each owning a block-interleaved partition of
	// the page space with its own published snapshot. 0 (the default)
	// resolves to 1 on vtime and pageShardsHostDefault on host; vtime
	// rejects explicit values above 1 (the modelled platform, like the
	// paper's, has one page server per commit unit — sharding exists so
	// concurrent host workers stop contending on a single server goroutine).
	PageServShards int

	// PollMin/PollMax bound the adaptive backoff used at blocking points
	// (the runtime polls so that control messages interrupt waits).
	PollMin platform.Duration
	PollMax platform.Duration

	// Trace records per-MTX activity of every unit (System.Trace) for
	// execution-model timelines (Fig. 3c).
	Trace bool

	// Faults, if non-nil and non-empty, injects the compiled fault plan:
	// inter-node message loss (with the cluster's ack/retransmit layer
	// engaged), latency spikes and degradation windows, straggler ranks,
	// and worker crashes with commit-unit-driven recovery. nil (the
	// default) and the empty plan leave every path byte-identical to a
	// fault-free build.
	Faults *faults.Plan

	// HeartbeatInterval/HeartbeatTimeout drive crash detection, active
	// only when the fault plan crashes a rank: workers heartbeat the
	// commit unit every interval, and the commit unit declares a silent
	// worker dead after the timeout. The timeout also bounds how long a
	// false positive can take to trigger a (survivable) spurious
	// recovery, so it trades detection delay against sensitivity to long
	// legitimate stalls.
	HeartbeatInterval platform.Duration
	HeartbeatTimeout  platform.Duration

	// Tracer, if non-nil, attaches the observability layer: per-rank
	// timeline spans (subTX, validate, commit, COA, recovery phases), the
	// metrics registry, and per-message-class traffic attribution. nil (the
	// default) keeps every hot path on the uninstrumented, allocation-free
	// fast path. On vtime the tracer reads the virtual clock and never
	// alters outcomes; on host it binds to the monotonic wall clock,
	// buffers spans in fixed per-rank lock-free rings, and additionally
	// instruments the delivery layer (ring depth, CAS retries, spills,
	// spin/park, page-service latency).
	Tracer *trace.Tracer

	// HostSpanBufCap caps each rank's lock-free span buffer on the host
	// backend (events beyond the cap are dropped and counted, never
	// blocked on). 0 means trace.DefaultSpanBufCap. vtime records into one
	// unbounded slice and rejects explicit values.
	HostSpanBufCap int

	// Horizon aborts the simulation if virtual time exceeds it (a safety
	// net for runtime bugs); 0 means none. The host backend ignores it
	// (bound wall time with test or command timeouts instead).
	Horizon platform.Duration
}

// DefaultConfig returns a configuration matching the paper's platform with
// the given core count and plan.
func DefaultConfig(totalCores int, plan pipeline.Plan) Config {
	return Config{
		TotalCores:       totalCores,
		Plan:             plan,
		Cluster:          cluster.DefaultConfig(),
		MPICost:          mpi.DefaultCost(),
		Queue:            queue.DefaultConfig(),
		LoadInstr:        4,
		StoreInstr:       4,
		BulkInstrPerByte: 0.15,
		MarkerFlushIters: 8,
		TryCommitUnits:   1,
		OccWindow:        1,
		COAPrefetch:      8,
		PageServInstr:    300,
		PageFaultInstr:   400,
		ProtectInstr:     30,
		PollMin:          100 * platform.Nanosecond,
		PollMax:          1600 * platform.Nanosecond,

		HeartbeatInterval: 20 * platform.Microsecond,
		HeartbeatTimeout:  500 * platform.Microsecond,
	}
}

// tcUnits reports the number of try-commit shards (>= 1).
func (c Config) tcUnits() int {
	if c.TryCommitUnits < 1 {
		return 1
	}
	return c.TryCommitUnits
}

// commitShards reports the number of commit units (>= 1).
func (c Config) commitShards() int {
	if c.CommitShards < 1 {
		return 1
	}
	return c.CommitShards
}

// Workers reports the number of worker threads (cores minus the try-commit
// unit(s) and the commit unit(s)).
func (c Config) Workers() int { return c.TotalCores - c.commitShards() - c.tcUnits() }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if c.Workers() < c.Plan.MinWorkers() {
		return fmt.Errorf("core: %d cores leave %d workers; plan %q needs %d",
			c.TotalCores, c.Workers(), c.Plan.Name, c.Plan.MinWorkers())
	}
	if c.TotalCores > c.Cluster.Ranks() {
		return fmt.Errorf("core: %d cores exceed the machine's %d", c.TotalCores, c.Cluster.Ranks())
	}
	if c.PollMin <= 0 || c.PollMax < c.PollMin {
		return fmt.Errorf("core: bad poll bounds [%v, %v]", c.PollMin, c.PollMax)
	}
	if c.Backend != BackendVTime && c.Backend != BackendHost && c.Backend != BackendNet {
		return fmt.Errorf("core: unknown backend %d", c.Backend)
	}
	if c.Backend != BackendVTime {
		// Fault injection is built on the virtual-time kernel (timers,
		// deterministic rolls); the live backends run the bare protocol.
		// The tracer is backend-agnostic and allowed on all of them.
		if !c.Faults.Empty() {
			return fmt.Errorf("core: Config.Faults: fault injection is built on the virtual-time kernel; unsupported on the %s backend", c.Backend)
		}
	}
	if c.Backend == BackendNet {
		if c.Platform == nil {
			return fmt.Errorf("core: Config.Platform: the net backend needs an injected platform factory (run through internal/netrun or dsmtxrun -backend net)")
		}
		if c.CommitShards > 1 {
			return fmt.Errorf("core: Config.CommitShards = %d: commit shards share an in-process image arena; unsupported on the net backend", c.CommitShards)
		}
	}
	if c.Platform != nil && c.Backend != BackendNet {
		return fmt.Errorf("core: Config.Platform: injected platforms are a net-backend feature (the %s backend builds its own)", c.Backend)
	}
	if c.HostSpanBufCap < 0 {
		return fmt.Errorf("core: Config.HostSpanBufCap = %d, need >= 0", c.HostSpanBufCap)
	}
	if c.Backend == BackendVTime && c.HostSpanBufCap > 0 {
		return fmt.Errorf("core: Config.HostSpanBufCap: span buffers are a host-backend feature (vtime records unbounded)")
	}
	if c.PageServShards < 0 {
		return fmt.Errorf("core: Config.PageServShards = %d, need >= 0", c.PageServShards)
	}
	if c.Backend == BackendVTime && c.PageServShards > 1 {
		return fmt.Errorf("core: Config.PageServShards = %d: the vtime backend models a single page server (sharding is host-only)", c.PageServShards)
	}
	if base := tagPageShardBase + c.PageServShards; base >= tagQueueBase {
		return fmt.Errorf("core: Config.PageServShards = %d exhausts the control tag space (max %d)",
			c.PageServShards, tagQueueBase-tagPageShardBase-1)
	}
	if c.CommitShards < 0 {
		return fmt.Errorf("core: Config.CommitShards = %d, need >= 0", c.CommitShards)
	}
	if base := tagCommitVoteBase + c.commitShards() - 1; base >= tagQueueBase {
		return fmt.Errorf("core: Config.CommitShards = %d exhausts the control tag space (max %d)",
			c.CommitShards, tagQueueBase-tagCommitVoteBase)
	}
	if c.CommitShards > 1 && c.PageServShards > 1 {
		return fmt.Errorf("core: Config.PageServShards = %d: with Config.CommitShards = %d the page service is already sharded across the commit ranks",
			c.PageServShards, c.CommitShards)
	}
	if c.CommitShards > 1 && c.Faults.HasCrashes() {
		return fmt.Errorf("core: Config.CommitShards = %d: crash faults require the single commit unit (worker re-dispatch is lead-only)", c.CommitShards)
	}
	if !c.Faults.Empty() {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		for _, cr := range c.Faults.Crashes {
			// Only workers crash: the commit unit holds the sole
			// non-speculative image (its loss is unrecoverable by design,
			// §4.3), and try-commit state is rebuilt only via the full
			// misspeculation path.
			if cr.Rank >= c.Workers() {
				return fmt.Errorf("core: crash rank %d is not a worker (workers are 0..%d)",
					cr.Rank, c.Workers()-1)
			}
		}
		for _, st := range c.Faults.Stragglers {
			if st.Rank >= c.TotalCores {
				return fmt.Errorf("core: straggler rank %d outside the %d-core system",
					st.Rank, c.TotalCores)
			}
		}
		if c.Faults.HasCrashes() && (c.HeartbeatInterval <= 0 || c.HeartbeatTimeout < c.HeartbeatInterval) {
			return fmt.Errorf("core: bad heartbeat bounds [%v, %v]", c.HeartbeatInterval, c.HeartbeatTimeout)
		}
	}
	return nil
}

// Rank layout: workers occupy ranks 0..W-1, then the try-commit unit(s),
// then the commit unit(s) (each commit rank also hosts a page-server
// process). Commit shard 0 is the lead: it runs Setup, the sequential
// portions, and termination.

func (c Config) tryCommitRank(shard int) int   { return c.Workers() + shard }
func (c Config) commitRank() int               { return c.Workers() + c.tcUnits() }
func (c Config) commitShardRank(shard int) int { return c.commitRank() + shard }

// tcShardBits aligns the shard key: addresses are sharded across try-commit
// units in 1 MiB regions, so bulk operations almost never straddle shards
// (and are split when they do).
const tcShardShift = 20

// tcShardOf maps an address to its owning try-commit shard.
func (c Config) tcShardOf(addr uva.Addr) int {
	return int((uint64(addr) >> tcShardShift) % uint64(c.tcUnits()))
}

// Control-plane message tags (queue tags are allocated from tagQueueBase).
const (
	tagCtrl      = 1 // commit unit -> workers/try-commit: recovery broadcast
	tagPageReq   = 2 // any -> page server (shard 0)
	tagPageReply = 3 // page server -> requester
	tagOccAck    = 4 // parallel worker -> routing worker: iteration done
	tagStart     = 5 // commit unit -> all: Setup done, parallel section open
	tagHeartbeat = 6 // worker -> commit unit: liveness beacon (crash plans only)
	tagRejoin    = 7 // restarted worker -> commit unit: crashed, need recovery
	// tagPageShardBase + s is page-server shard s's request tag for s >= 1;
	// shard 0 keeps tagPageReq so a single-shard system (all of vtime) is
	// byte-identical to the pre-sharding layout.
	tagPageShardBase = 7
	// tagCommitVoteBase + k is the ordered 2PC vote tag addressed to commit
	// shard k acting as coordinator (cross-shard commits, stop votes at a
	// false decision, and the termination votes to the lead shard). Unused —
	// and never registered — when CommitShards <= 1.
	tagCommitVoteBase = 40
	tagQueueBase      = 100
)

// pageShardsHostDefault is the auto shard count on the host backend: enough
// to keep page service off the critical path of a concurrent worker pool
// without spawning a goroutine per core.
const pageShardsHostDefault = 4

// pageShardBlock is the shard-interleave granularity in pages: the page
// space is dealt to shards in 64-page (256 KiB) blocks, so prefetch runs
// (COAPrefetch pages) almost never straddle shards while neighbouring
// working sets still spread across them.
const pageShardBlock = 64

// pageShards resolves the configured shard count (>= 1). With a sharded
// commit pipeline the page service is already partitioned across the commit
// ranks (one server per commit shard, each serving its own partition's
// snapshot), so per-rank page-server sharding collapses to 1.
func (c Config) pageShards() int {
	if c.commitShards() > 1 {
		return 1
	}
	if c.PageServShards > 0 {
		return c.PageServShards
	}
	if c.Backend != BackendVTime {
		// Host and net share the live delivery layer; net co-locates every
		// page-server shard with the commit rank, so sharding is safe there
		// too (one daemon owns them all).
		return pageShardsHostDefault
	}
	return 1
}

// pageReqTag is the request tag addressed to page-server shard s.
func (c Config) pageReqTag(s int) int {
	if s == 0 {
		return tagPageReq
	}
	return tagPageShardBase + s
}

// pageShardOf maps a page to the shard that owns it.
func (c Config) pageShardOf(id uva.PageID) int {
	return int((uint64(id) / pageShardBlock) % uint64(c.pageShards()))
}
