package core

import (
	"testing"

	"dsmtx/internal/pipeline"
	"dsmtx/internal/uva"
)

// API-misuse and edge-of-contract tests for the worker context.

// misuseProg runs a single callback as its only iteration's stage body.
type misuseProg struct {
	body func(ctx *Ctx)
	addr uva.Addr
}

func (p *misuseProg) Setup(ctx *SeqCtx)             { p.addr = ctx.AllocWords(4) }
func (p *misuseProg) SeqIter(ctx *SeqCtx, _ uint64) {}
func (p *misuseProg) Stage(ctx *Ctx, _ int, iter uint64) bool {
	if iter >= 1 {
		return false
	}
	p.body(ctx)
	return true
}

// expectRunPanic runs the program and expects the simulation to surface a
// panic from the stage body as a Run error.
func expectRunPanic(t *testing.T, body func(ctx *Ctx)) {
	t.Helper()
	prog := &misuseProg{body: body}
	sys, err := NewSystem(smallConfig(4, pipeline.SpecDOALL()), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("expected the misuse to fail the run")
	}
}

func TestConsumeWithoutProducePanics(t *testing.T) {
	expectRunPanic(t, func(ctx *Ctx) { ctx.Consume(0) })
}

func TestProduceToMissingEdgePanics(t *testing.T) {
	expectRunPanic(t, func(ctx *Ctx) { ctx.Produce(5, 1) })
}

func TestSyncWithoutRingPanics(t *testing.T) {
	expectRunPanic(t, func(ctx *Ctx) { ctx.SyncSend(1) })
	expectRunPanic(t, func(ctx *Ctx) { ctx.SyncRecv() })
}

func TestWriteToMissingEdgePanics(t *testing.T) {
	expectRunPanic(t, func(ctx *Ctx) { ctx.WriteTo(3, uva.Base(0)+8, 1) })
}

func TestCtxIntrospection(t *testing.T) {
	var iter, stage, poolSize int = -1, -1, -1
	prog := &misuseProg{body: func(ctx *Ctx) {
		iter = int(ctx.Iter())
		stage = ctx.Stage()
		poolSize = ctx.PoolSize()
		if !ctx.EpochFirst() {
			panic("iteration 0 must be epoch-first")
		}
		if ctx.PoolIndex() < 0 || ctx.PoolIndex() >= poolSize {
			panic("pool index out of range")
		}
	}}
	sys, err := NewSystem(smallConfig(5, pipeline.SpecDOALL()), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if iter != 0 || stage != 0 || poolSize != 3 {
		t.Fatalf("iter=%d stage=%d pool=%d", iter, stage, poolSize)
	}
}

func TestWorkerAllocFree(t *testing.T) {
	prog := &misuseProg{body: func(ctx *Ctx) {
		a := ctx.AllocWords(8)
		ctx.Store(a, 42)
		if ctx.Load(a) != 42 {
			panic("worker-local allocation lost a value")
		}
		ctx.Free(a)
		b := ctx.Alloc(64)
		if b.Owner() == 0 {
			panic("worker allocation must come from the worker's own region")
		}
	}}
	sys, err := NewSystem(smallConfig(4, pipeline.SpecDOALL()), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFloatHelpers(t *testing.T) {
	var got float64
	prog := &misuseProg{body: func(ctx *Ctx) {
		ctx.WriteFloat(ctx.w.sys.workers[0].arena.Alloc(8), 1.5) // worker-region scratch
		addr := prog0Addr(ctx)
		ctx.StoreFloat(addr, 2.25)
		got = ctx.LoadFloat(addr)
		ctx.WriteFloatCommit(addr+8, 3.5)
		if ctx.ReadFloat(addr+8) != 3.5 {
			panic("ReadFloat after WriteFloatCommit")
		}
	}}
	theProg = prog
	sys, err := NewSystem(smallConfig(4, pipeline.SpecDOALL()), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2.25 {
		t.Fatalf("LoadFloat = %v", got)
	}
}

// theProg lets the body closure reach its own program's addresses.
var theProg *misuseProg

func prog0Addr(ctx *Ctx) uva.Addr { return theProg.addr }

func TestSeqCtxOperations(t *testing.T) {
	cfg := smallConfig(4, pipeline.SpecDOALL())
	ran := false
	prog := &seqOpsProg{check: func(ctx *SeqCtx) {
		ran = true
		a := ctx.AllocWords(4)
		ctx.Store(a, 9)
		if ctx.Load(a) != 9 {
			t.Error("SeqCtx word round trip")
		}
		ctx.StoreFloat(a+8, 1.25)
		if ctx.LoadFloat(a+8) != 1.25 {
			t.Error("SeqCtx float round trip")
		}
		ctx.StoreBytes(a+16, []byte{1, 2, 3})
		if b := ctx.LoadBytes(a+16, 3); b[2] != 3 {
			t.Error("SeqCtx bulk round trip")
		}
		ctx.Free(a)
		ctx.Compute(100)
	}}
	if _, _, err := RunSequential(cfg, prog, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("Setup did not run")
	}
}

type seqOpsProg struct{ check func(ctx *SeqCtx) }

func (p *seqOpsProg) Setup(ctx *SeqCtx)             { p.check(ctx) }
func (p *seqOpsProg) SeqIter(ctx *SeqCtx, _ uint64) {}
func (p *seqOpsProg) Stage(ctx *Ctx, _ int, _ uint64) bool {
	return false
}
