package core

import (
	"fmt"

	"dsmtx/internal/mem"
	"dsmtx/internal/mpi"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/platform"
	"dsmtx/internal/queue"
	"dsmtx/internal/trace"
	"dsmtx/internal/uva"
)

// tcNode is the try-commit unit (§3.1, §3.2): it runs in its own pipeline
// stage, consuming every worker's speculative access stream in MTX/subTX
// order and validating each MTX with value-based conflict detection. It
// keeps its own private view of memory — initialized by Copy-On-Access like
// any worker and updated with each validated store — so a speculative load
// conflicts exactly when its observed value differs from the value the
// committed order produces.
type tcNode struct {
	sys     *System
	shard   int
	rank    int
	proc    platform.Proc
	comm    *mpi.Comm
	ctrlBox platform.Mailbox // cached (commit rank, tagCtrl) mailbox
	view    *mem.Image

	in       []*entryCursor           // per worker tid
	verdicts []*queue.SendPort[Entry] // per commit shard

	coa        coaClient
	sinceFlush int

	routes      map[uint64]int // iter -> pool index of routed stage
	epoch       uint64
	pollTime    platform.Duration
	nextIter    uint64
	pendingCtrl *ctrlMsg

	// Recovery-window accounting for stall attribution.
	recWall platform.Duration
	recAdv  platform.Duration
	recBlk  platform.Duration

	// Validated counts, for tests.
	Checked   uint64
	Conflicts uint64
}

func newTCNode(s *System, shard int) *tcNode {
	return &tcNode{sys: s, shard: shard, rank: s.cfg.tryCommitRank(shard), routes: make(map[uint64]int)}
}

func (t *tcNode) run(p platform.Proc) {
	t.proc = p
	t.comm = t.sys.world.Attach(t.rank, p)
	t.comm.SetTracer(t.sys.tr, t.rank)
	t.bind()
	t.comm.Recv(t.sys.cfg.commitRank(), tagStart) // Setup must finish first
	for {
		if t.epochLoop() {
			if t.awaitDoneOrRecovery() {
				return
			}
		}
		t.doRecovery()
	}
}

// awaitDoneOrRecovery parks a finished try-commit unit until the commit
// unit confirms completion (true) or orders a recovery (false).
func (t *tcNode) awaitDoneOrRecovery() bool {
	src := t.sys.ctrlSrc()
	for {
		msg := t.comm.Recv(src, tagCtrl)
		cm := msg.Payload.(ctrlMsg)
		if cm.done {
			return true
		}
		if cm.epoch > t.epoch {
			t.pendingCtrl = &cm
			return false
		}
	}
}

func (t *tcNode) bind() {
	ep := t.comm.Endpoint()
	// Under a sharded commit pipeline control traffic (recovery epochs) may
	// originate at any coordinator shard and COA replies at any owner shard.
	t.ctrlBox = ep.Mailbox(t.sys.ctrlSrc(), tagCtrl)
	ep.Mailbox(t.sys.pageReplySrc(), tagPageReply)
	t.comm.RegisterBarrierMailboxes()
	t.view = mem.NewImage(t.coaFault)
	// The view's pages are private Copy-On-Access clones; recovery's
	// wholesale discard can recycle the frames.
	t.view.ReleaseOnReset(true)
	t.view.Instrument(t.sys.tr.Metrics())
	for w := 0; w < t.sys.cfg.Workers(); w++ {
		t.in = append(t.in, newEntryCursor(t.sys.toTCQ[w][t.shard].Receiver(t.comm)))
	}
	for k := 0; k < t.sys.cfg.commitShards(); k++ {
		t.verdicts = append(t.verdicts, t.sys.verdictQ[t.shard][k].Sender(t.comm))
	}
}

// coaFault initializes the try-commit view by Copy-On-Access, like a worker.
func (t *tcNode) coaFault(id uva.PageID) *mem.Page {
	return t.coa.fetch(t.sys, t.comm, t.view, id)
}

func (t *tcNode) epochLoop() (terminated bool) {
	recovered := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(recoverySignal); ok {
					recovered = true
					return
				}
				panic(r)
			}
		}()
		terminated = t.validateLoop()
	}()
	return !recovered && terminated
}

// validateLoop processes MTXs in order; for each MTX it walks the subTX
// streams in stage order, applying stores to the view and checking loads
// against it.
func (t *tcNode) validateLoop() bool {
	for {
		iter := t.nextIter
		spanStart := t.sys.tr.Now()
		ok := true
		for s := range t.sys.cfg.Plan.Stages {
			tid := t.routeOf(s, iter)
			subOK, term := t.drainSub(tid, iter)
			if term {
				if s != 0 {
					panic(fmt.Sprintf("core: try-commit saw terminate mid-MTX %d at stage %d", iter, s))
				}
				t.drainTerminates(iter)
				for _, v := range t.verdicts {
					v.Produce(Entry{Kind: entTerminate, MTX: iter})
					v.Flush()
				}
				return true
			}
			ok = ok && subOK
		}
		verdictVal := uint64(1)
		if !ok {
			verdictVal = 0
			t.Conflicts++
		}
		for _, v := range t.verdicts {
			v.Produce(Entry{Kind: entVerdict, MTX: iter, Val: verdictVal})
		}
		t.sys.trace(TraceEvent{Kind: TraceValidate, MTX: iter, Stage: -1, Tid: -1,
			Start: t.proc.Now(), End: t.proc.Now()})
		t.sys.tr.Span(trace.SpanValidate, t.rank, spanStart, iter, int64(verdictVal), 0)
		t.sinceFlush++
		if !ok || t.sinceFlush >= t.sys.cfg.MarkerFlushIters {
			for _, v := range t.verdicts {
				v.Flush() // conflicts flush immediately; the rest batch
			}
			t.sinceFlush = 0
		}
		delete(t.routes, iter)
		t.nextIter = iter + 1
	}
}

// drainSub validates one subTX of one MTX from a worker's stream.
func (t *tcNode) drainSub(tid int, iter uint64) (ok, term bool) {
	ok = true
	port := t.in[tid]
	for {
		e := t.consumeNext(port)
		switch e.Kind {
		case entWrite:
			t.view.Store(e.Addr, e.Val)
		case entWriteBlk:
			t.view.StoreBytes(e.Addr, e.Payload.([]byte))
		case entRead:
			t.Checked++
			if t.view.Load(e.Addr) != e.Val {
				ok = false
			}
		case entReadBlk:
			t.Checked++
			t.proc.Advance(t.sys.instrTime(int64(float64(e.Bytes) * t.sys.cfg.BulkInstrPerByte)))
			if t.view.ChecksumRange(e.Addr, e.Bytes) != e.Val {
				ok = false
			}
		case entRoute:
			t.routes[e.MTX] = int(e.Val)
		case entMisspec:
			ok = false
		case entEndSub:
			if e.MTX != iter {
				panic(fmt.Sprintf("core: try-commit expected EndSub %d from worker %d, got %d", iter, tid, e.MTX))
			}
			return ok, false
		case entTerminate:
			return ok, true
		default:
			panic(fmt.Sprintf("core: try-commit: unexpected %v entry", e.Kind))
		}
	}
}

// drainTerminates consumes the final terminate marker from every worker
// stream that has not already delivered one.
func (t *tcNode) drainTerminates(endIter uint64) {
	for tid := range t.in {
		if t.sys.layout.StageOf(tid) == 0 && t.sys.layout.WorkerOf(0, endIter) == tid {
			continue // this stream's terminate was just consumed
		}
		for {
			e := t.consumeNext(t.in[tid])
			if e.Kind == entTerminate {
				break
			}
			// Entries from squashed run-ahead subTXs may precede the
			// marker; they are dead.
		}
	}
}

// routeOf resolves which worker ran stage s of iteration iter.
func (t *tcNode) routeOf(s int, iter uint64) int {
	if s == t.sys.routedStage {
		idx, ok := t.routes[iter]
		if !ok {
			panic(fmt.Sprintf("core: try-commit has no route for MTX %d", iter))
		}
		return t.sys.layout.Assign[s][idx]
	}
	if t.sys.cfg.Plan.Stages[s].Kind == pipeline.Parallel {
		return t.sys.layout.WorkerOf(s, iter)
	}
	return t.sys.layout.Assign[s][0]
}

func (t *tcNode) consumeNext(port *entryCursor) Entry {
	backoff := t.sys.cfg.PollMin
	for {
		if e, ok := port.tryNext(); ok {
			return e
		}
		t.checkCtrl()
		t.proc.Advance(backoff)
		t.pollTime += backoff
		if backoff < t.sys.cfg.PollMax {
			backoff *= 2
		}
	}
}

func (t *tcNode) checkCtrl() {
	msg, ok := t.comm.TryRecvBox(t.ctrlBox)
	if !ok {
		return
	}
	cm := msg.Payload.(ctrlMsg)
	if cm.epoch <= t.epoch {
		return
	}
	t.pendingCtrl = &cm
	panic(recoverySignal{})
}

func (t *tcNode) doRecovery() {
	cm := *t.pendingCtrl
	t.pendingCtrl = nil
	recStart := t.proc.Now()
	spanStart := t.sys.tr.Now()
	adv0, blk0 := t.proc.Advanced(), t.proc.Blocked()
	t.comm.Barrier(t.sys.allRanks) // B1: entered recovery mode
	for _, port := range t.in {
		port.abort(cm.epoch)
	}
	for _, v := range t.verdicts {
		v.Abort(cm.epoch)
	}
	t.routes = make(map[uint64]int)
	t.comm.Barrier(t.sys.allRanks) // B2: queues flushed
	t.proc.Advance(t.sys.instrTime(t.sys.cfg.ProtectInstr * int64(t.view.Resident())))
	t.view.Reset()
	t.epoch = cm.epoch
	t.nextIter = cm.restart
	t.comm.Barrier(t.sys.allRanks) // B3: resume
	t.recWall += t.proc.Now() - recStart
	t.recAdv += t.proc.Advanced() - adv0
	t.recBlk += t.proc.Blocked() - blk0
	t.sys.tr.Span(trace.SpanRecovery, t.rank, spanStart, cm.restart, 0, 0)
}
