// Package core implements the DSMTX runtime: software multi-threaded
// transactions (MTX) for clusters, enabling thread-level speculation and
// speculative pipeline parallelism on machines without shared memory.
//
// The design follows §3–§4 of the paper. A parallelized loop runs as a set
// of worker processes (one per pipeline-stage slot), a try-commit unit that
// validates transactions, and a commit unit that holds the authoritative
// memory and commits them — all in private address spaces, connected only by
// batched message queues. Each loop iteration is one MTX; each stage's share
// of the iteration is one subTX, ordered by sequential program order.
// Uncommitted stores are forwarded down the pipeline so later subTXs of the
// same MTX observe them; speculative loads are validated by value against
// the committed state; on misspeculation the commit unit orchestrates the
// four-phase recovery of §4.3.
package core

import "dsmtx/internal/uva"

// entryKind discriminates the records flowing through DSMTX queues.
type entryKind uint8

const (
	entWrite     entryKind = iota // speculative store: addr, value
	entRead                       // speculative load to validate: addr, value seen
	entWriteBlk                   // bulk speculative store: addr, Payload []byte
	entReadBlk                    // bulk speculative read: addr, Bytes length, Val checksum
	entData                       // application-level produce (pipeline dataflow)
	entRoute                      // iteration MTX routed to pool index Val (dynamic scheduling)
	entEndSub                     // end of this worker's subTX of MTX
	entMisspec                    // this MTX misspeculated (worker-detected)
	entTerminate                  // no iteration >= MTX exists on this stream
	entVerdict                    // try-commit unit's validation result for MTX (Val: 1 ok, 0 fail)
)

func (k entryKind) String() string {
	switch k {
	case entWrite:
		return "write"
	case entRead:
		return "read"
	case entWriteBlk:
		return "writeblk"
	case entReadBlk:
		return "readblk"
	case entData:
		return "data"
	case entRoute:
		return "route"
	case entEndSub:
		return "endsub"
	case entMisspec:
		return "misspec"
	case entTerminate:
		return "terminate"
	case entVerdict:
		return "verdict"
	}
	return "invalid"
}

// Entry is one queue record. Payload carries bulk application data for
// entData; Bytes is its modelled wire size.
type Entry struct {
	Kind    entryKind
	MTX     uint64
	Addr    uva.Addr
	Val     uint64
	Payload any
	Bytes   int
}

// pageReq asks the page server for a run of contiguous pages starting at
// Start (Copy-On-Access with read-ahead).
type pageReq struct {
	Start uva.PageID
	Count int
	// Grain, if nonzero, asks for one sub-page chunk of Grain bytes (the
	// word-granularity COA ablation); Count is 1.
	Grain int
}

// wireSize models the on-the-wire footprint of an entry.
func wireSize(e Entry) int {
	switch e.Kind {
	case entWrite, entRead:
		return 16 // packed addr + value
	case entWriteBlk:
		return 16 + e.Bytes
	case entReadBlk:
		return 24 // addr + length + checksum
	case entData:
		if e.Payload != nil {
			return 12 + e.Bytes
		}
		return 16
	case entRoute, entVerdict:
		return 16
	default: // markers
		return 12
	}
}
