package core

import "dsmtx/internal/queue"

// entryCursor adapts a RecvPort to batch draining: one TryConsumeBatch
// pulls every buffered entry at once — charging the same per-entry consume
// cost in a single Advance — and the drain loops then step through the
// buffer with no further scheduler interaction. A subTX boundary mid-batch
// simply leaves the remainder buffered for the next drain.
//
// Recovery must go through abort, which discards buffered entries (stale
// speculative state) along with the port's own state.
type entryCursor struct {
	port *queue.RecvPort[Entry]
	buf  []Entry
	pos  int
}

func newEntryCursor(port *queue.RecvPort[Entry]) *entryCursor {
	return &entryCursor{port: port}
}

// tryNext returns the next buffered entry, pulling a new batch from the
// port when the buffer is spent.
func (c *entryCursor) tryNext() (Entry, bool) {
	if c.pos < len(c.buf) {
		e := c.buf[c.pos]
		c.pos++
		return e, true
	}
	if b, ok := c.port.TryConsumeBatch(); ok {
		c.buf, c.pos = b, 1
		return b[0], true
	}
	c.buf, c.pos = nil, 0
	return Entry{}, false
}

// abort drops buffered entries and aborts the underlying port.
func (c *entryCursor) abort(epoch uint64) {
	c.buf, c.pos = nil, 0
	c.port.Abort(epoch)
}
