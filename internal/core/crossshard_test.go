package core

import (
	"sync"
	"testing"

	"dsmtx/internal/pipeline"
	"dsmtx/internal/uva"
)

// Cross-shard commit: an MTX whose write set spans pages owned by different
// commit shards must commit (or abort) atomically through the ordered vote,
// and the committed state must be independent of the shard count, of run
// repetition, and of host-process concurrency.

// crossRegions is the number of owner-block-separated output regions the
// fixture writes per iteration; with 2+ shards the HRW table almost surely
// scatters them across owners, and the test asserts that it did.
const crossRegions = 8

// crossProg writes every iteration's result into crossRegions regions, each
// allocated in its own 64-page owner block, plus a shared scale word that
// iteration flip rewrites — so every MTX is multi-shard and the flip forces
// a cross-shard misspeculation/recovery cycle.
type crossProg struct {
	n     uint64
	flip  uint64 // >= n disables the misspeculation
	scale uva.Addr
	outs  []uva.Addr
}

func (p *crossProg) Setup(ctx *SeqCtx) {
	p.scale = ctx.AllocWords(1)
	p.outs = p.outs[:0]
	for r := 0; r < crossRegions; r++ {
		// Pad to the next owner block so consecutive regions hash
		// independently in the HRW table.
		ctx.AllocWords(pageShardBlock * uva.PageWords)
		p.outs = append(p.outs, ctx.AllocWords(int(p.n)))
	}
	ctx.Store(p.scale, 5)
}

func (p *crossProg) Stage(ctx *Ctx, _ int, iter uint64) bool {
	if iter >= p.n {
		return false
	}
	s := ctx.Read(p.scale)
	ctx.Compute(1200)
	for r, out := range p.outs {
		ctx.Write(out+uva.Addr(iter*8), (iter+1)*s+uint64(r))
	}
	if iter == p.flip {
		ctx.Write(p.scale, 11)
	}
	return true
}

func (p *crossProg) SeqIter(ctx *SeqCtx, iter uint64) {
	s := ctx.Load(p.scale)
	ctx.Compute(1200)
	for r, out := range p.outs {
		ctx.Store(out+uva.Addr(iter*8), (iter+1)*s+uint64(r))
	}
	if iter == p.flip {
		ctx.Store(p.scale, 11)
	}
}

func (p *crossProg) expect(k uint64, r int) uint64 {
	s := uint64(5)
	if k > p.flip {
		s = 11
	}
	return (k+1)*s + uint64(r)
}

func crossConfig(shards int) Config {
	cfg := smallConfig(8+shards, pipeline.SpecDOALL())
	cfg.CommitShards = shards
	return cfg
}

// verifyCross checks the committed image against the sequential semantics.
func verifyCross(t *testing.T, sys *System, prog *crossProg) {
	t.Helper()
	img := sys.CommitImage()
	for r, out := range prog.outs {
		for k := uint64(0); k < prog.n; k++ {
			if got := img.Load(out + uva.Addr(k*8)); got != prog.expect(k, r) {
				t.Fatalf("out[%d][%d] = %d, want %d", r, k, got, prog.expect(k, r))
			}
		}
	}
}

func TestCrossShardCommit(t *testing.T) {
	for _, shards := range []int{2, 4} {
		prog := &crossProg{n: 48, flip: 13}
		sys, res := runProg(t, crossConfig(shards), prog)
		owners := map[int]bool{}
		for _, out := range prog.outs {
			owners[sys.ownerOf(out.Page())] = true
		}
		if len(owners) < 2 {
			t.Fatalf("shards=%d: fixture regions all landed on one owner; not a cross-shard test", shards)
		}
		if res.Committed != prog.n {
			t.Fatalf("shards=%d: committed %d, want %d", shards, res.Committed, prog.n)
		}
		if res.Misspecs == 0 {
			t.Fatalf("shards=%d: flip produced no misspeculation; cross-shard recovery not exercised", shards)
		}
		verifyCross(t, sys, prog)
	}
}

// TestCrossShardMatchesSingleShard pins shard-count independence: the
// committed MTX and misspeculation counts of the sharded pipeline equal the
// single-commit-unit run's, and both converge to the same memory.
func TestCrossShardMatchesSingleShard(t *testing.T) {
	base := &crossProg{n: 48, flip: 13}
	_, want := runProg(t, crossConfig(1), base)
	for _, shards := range []int{2, 4} {
		prog := &crossProg{n: 48, flip: 13}
		sys, res := runProg(t, crossConfig(shards), prog)
		if res.Committed != want.Committed || res.Misspecs != want.Misspecs {
			t.Fatalf("shards=%d: committed/misspecs %d/%d, 1-shard %d/%d",
				shards, res.Committed, res.Misspecs, want.Committed, want.Misspecs)
		}
		verifyCross(t, sys, prog)
	}
}

// TestCrossShardDeterministicRepeat runs the same sharded configuration
// repeatedly on vtime: every observable — virtual elapsed time included —
// must be bit-identical run to run.
func TestCrossShardDeterministicRepeat(t *testing.T) {
	prog := &crossProg{n: 48, flip: 13}
	_, first := runProg(t, crossConfig(4), prog)
	for rep := 1; rep < 3; rep++ {
		p := &crossProg{n: 48, flip: 13}
		_, res := runProg(t, crossConfig(4), p)
		if res.Elapsed != first.Elapsed || res.Committed != first.Committed ||
			res.Misspecs != first.Misspecs || res.Traffic != first.Traffic {
			t.Fatalf("rep %d diverged:\n  got  %+v\n  want %+v", rep, res, first)
		}
	}
}

// TestCrossShardDeterministicConcurrent runs independent sharded systems on
// concurrent host goroutines; results must match a solo run exactly, i.e.
// no shared mutable state leaks between System instances.
func TestCrossShardDeterministicConcurrent(t *testing.T) {
	ref := &crossProg{n: 48, flip: 13}
	_, want := runProg(t, crossConfig(4), ref)
	var wg sync.WaitGroup
	results := make([]Result, 4)
	errs := make([]error, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys, err := NewSystem(crossConfig(4), &crossProg{n: 48, flip: 13}, nil)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = sys.Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if results[i].Elapsed != want.Elapsed || results[i].Committed != want.Committed ||
			results[i].Misspecs != want.Misspecs {
			t.Fatalf("concurrent run %d diverged:\n  got  %+v\n  want %+v", i, results[i], want)
		}
	}
}
