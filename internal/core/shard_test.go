package core

import (
	"testing"
	"testing/quick"

	"dsmtx/internal/pipeline"
	"dsmtx/internal/sim"
	"dsmtx/internal/uva"
)

// Sharded try-commit (§3.2 "the algorithms of the try-commit unit ... are
// parallelizable"): everything that holds for one unit must hold for many.

func shardConfig(cores, shards int, plan pipeline.Plan) Config {
	cfg := smallConfig(cores, plan)
	cfg.TryCommitUnits = shards
	cfg.Horizon = sim.Second
	return cfg
}

func TestShardedRankLayout(t *testing.T) {
	cfg := shardConfig(10, 3, pipeline.SpecDOALL())
	if cfg.Workers() != 6 {
		t.Fatalf("Workers = %d, want 6 (10 cores - 3 TC - 1 CU)", cfg.Workers())
	}
	if cfg.tryCommitRank(0) != 6 || cfg.tryCommitRank(2) != 8 || cfg.commitRank() != 9 {
		t.Fatalf("ranks: tc0=%d tc2=%d cu=%d", cfg.tryCommitRank(0), cfg.tryCommitRank(2), cfg.commitRank())
	}
}

func TestShardedPipelineCorrect(t *testing.T) {
	for _, shards := range []int{2, 3} {
		prog := &pipeProg{n: 30}
		sys, err := NewSystem(shardConfig(8, shards, pipeline.SpecDSWP("S", "DOALL", "S")), prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 30 {
			t.Fatalf("shards=%d: committed %d", shards, res.Committed)
		}
		verifyPipeOut(t, sys, prog)
	}
}

func TestShardedConflictDetection(t *testing.T) {
	// The scale word and the out array land in the same 1 MiB shard region
	// here, but the mechanism must hold regardless: conflicts are detected
	// by whichever shard owns the address.
	prog := &doallProg{n: 40, flip: 9}
	sys, err := NewSystem(shardConfig(10, 2, pipeline.SpecDOALL()), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Misspecs == 0 || tcConflicts(sys) == 0 {
		t.Fatalf("no conflicts detected: %+v", res)
	}
	img := sys.CommitImage()
	for k := uint64(0); k < prog.n; k++ {
		if got := img.Load(prog.out + uva.Addr(k*8)); got != prog.expect(k) {
			t.Fatalf("out[%d] = %d, want %d", k, got, prog.expect(k))
		}
	}
}

// crossShardProg writes and validates a block spanning a shard boundary:
// the bulk entries must split so each shard checks its own partition.
type crossShardProg struct {
	n    uint64
	base uva.Addr // straddles a 1 MiB shard boundary
}

func (p *crossShardProg) Setup(ctx *SeqCtx) {
	// Burn address space up to just below the boundary, then allocate the
	// block across it.
	span := uva.Addr(1) << tcShardShift
	raw := ctx.Alloc(int64(span) - uva.PageSize - 512)
	_ = raw
	p.base = ctx.Alloc(64 << 10)
	if uint64(p.base)>>tcShardShift == (uint64(p.base)+64<<10)>>tcShardShift {
		panic("test setup: block does not straddle a shard boundary")
	}
}

func (p *crossShardProg) Stage(ctx *Ctx, _ int, iter uint64) bool {
	if iter >= p.n {
		return false
	}
	// Read the whole straddling block (validated), then write a slice of it.
	ctx.ReadBytes(p.base, 64<<10)
	chunk := make([]byte, 1024)
	for i := range chunk {
		chunk[i] = byte(iter)
	}
	ctx.WriteBytes(p.base+uva.Addr(iter*1024), chunk)
	ctx.Compute(20000)
	return true
}

func (p *crossShardProg) SeqIter(ctx *SeqCtx, iter uint64) {
	ctx.LoadBytes(p.base, 64<<10)
	chunk := make([]byte, 1024)
	for i := range chunk {
		chunk[i] = byte(iter)
	}
	ctx.StoreBytes(p.base+uva.Addr(iter*1024), chunk)
	ctx.Compute(20000)
}

func TestCrossShardBulkValidation(t *testing.T) {
	// Iterations read a straddling block that earlier iterations write: a
	// genuine cross-iteration dependence that misspeculates and recovers;
	// the split bulk validation must behave identically to one shard.
	run := func(shards int) (uint64, uint64) {
		prog := &crossShardProg{n: 12}
		sys, err := NewSystem(shardConfig(7, shards, pipeline.SpecDOALL()), prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != prog.n {
			t.Fatalf("shards=%d: committed %d", shards, res.Committed)
		}
		return sys.CommitImage().ChecksumRange(prog.base, 64<<10), res.Misspecs
	}
	c1, m1 := run(1)
	c2, m2 := run(2)
	if c1 != c2 {
		t.Fatalf("sharded checksum %#x != single-unit %#x", c2, c1)
	}
	if m1 == 0 || m2 == 0 {
		t.Fatalf("expected misspeculations (m1=%d m2=%d)", m1, m2)
	}
}

func TestShardedTLSRecovery(t *testing.T) {
	plan := pipeline.SpecDOALL()
	plan.Sync = true
	prog := &tlsMisspecProg{n: 24, misspecs: misspecsOf(1, 4)}
	sys, err := NewSystem(shardConfig(8, 2, plan), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 24 || res.Misspecs != 2 {
		t.Fatalf("res = %+v", res)
	}
	if got := sys.CommitImage().Load(prog.acc); got != prog.expect() {
		t.Fatalf("acc = %d, want %d", got, prog.expect())
	}
}

// Property: shard-range splitting covers [addr, addr+n) exactly once, in
// order, never crossing a boundary.
func TestShardRangeSplitProperty(t *testing.T) {
	w := &workerNode{}
	f := func(startOff uint32, n uint32) bool {
		addr := uva.Base(0) + uva.Addr(startOff&0x3FFFF8) // aligned, below 4 MiB
		ln := int(n % (3 << 20))
		covered := 0
		prevEnd := addr
		ok := true
		w.forEachShardRange(addr, ln, func(a uva.Addr, off, l int) {
			if a != prevEnd || off != covered || l <= 0 {
				ok = false
			}
			if uint64(a)>>tcShardShift != uint64(a+uva.Addr(l-1))>>tcShardShift {
				ok = false // segment crosses a shard boundary
			}
			covered += l
			prevEnd = a + uva.Addr(l)
		})
		return ok && covered == ln
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedRecoveryProperty(t *testing.T) {
	f := func(raw []uint8, shardSel uint8) bool {
		const n = 15
		m := make(map[uint64]bool)
		for _, r := range raw {
			m[uint64(r)%n] = true
		}
		shards := 1 + int(shardSel)%3
		prog := &pipeProg{n: n, misspecs: m}
		sys, err := NewSystem(shardConfig(9, shards, pipeline.SpecDSWP("S", "DOALL", "S")), prog, nil)
		if err != nil {
			return false
		}
		res, err := sys.Run()
		if err != nil || res.Committed != n {
			return false
		}
		img := sys.CommitImage()
		for k := uint64(0); k < n; k++ {
			if img.Load(prog.out+uva.Addr(k*8)) != prog.expect(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
