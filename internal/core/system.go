package core

import (
	"context"
	"fmt"
	"reflect"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"dsmtx/internal/cluster"
	"dsmtx/internal/faults"
	"dsmtx/internal/mem"
	"dsmtx/internal/mpi"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/platform"
	"dsmtx/internal/platform/host"
	"dsmtx/internal/platform/vtime"
	"dsmtx/internal/queue"
	"dsmtx/internal/sim"
	"dsmtx/internal/trace"
	"dsmtx/internal/uva"
)

// Program is a loop parallelized for DSMTX. Stage functions run on worker
// processes against the Ctx API; Setup, SeqIter and the optional hooks run
// on the commit unit against its authoritative image.
type Program interface {
	// Setup runs sequentially on the commit unit before the parallel
	// section, generating the initial non-speculative memory state.
	Setup(ctx *SeqCtx)

	// Stage executes pipeline stage `stage` of iteration `iter`. For the
	// first stage, returning false means iteration iter does not exist and
	// the loop terminates; other stages' return values are ignored.
	//
	// The runtime may unwind a Stage call (via panic it recovers itself)
	// when misspeculation recovery begins or when Ctx.Misspec is called;
	// stage code must not swallow panics.
	Stage(ctx *Ctx, stage int, iter uint64) bool

	// SeqIter re-executes iteration iter non-speculatively on the commit
	// unit during misspeculation recovery. It must reproduce the
	// iteration's committed effects exactly (including its rare paths).
	SeqIter(ctx *SeqCtx, iter uint64)
}

// Committer is an optional Program extension: Commit runs on the commit
// unit after each MTX commits (the commit_fun of Table 1).
type Committer interface {
	Commit(ctx *SeqCtx, iter uint64)
}

// Finalizer is an optional Program extension: Finalize runs on the commit
// unit after the loop terminates (e.g. final reductions).
type Finalizer interface {
	Finalize(ctx *SeqCtx)
}

// ctrlMsg is a commit-unit broadcast: either "enter recovery at epoch,
// restarting from iteration restart" or — with done set — "the whole run has
// committed; exit".
type ctrlMsg struct {
	epoch   uint64
	restart uint64
	done    bool
}

// recoverySignal unwinds worker/try-commit stacks to their main loops.
type recoverySignal struct{}

// Result summarizes one parallel execution. Durations are platform-neutral:
// virtual nanoseconds on the vtime backend, wall-clock nanoseconds on host
// (where the busy/poll accounting is zero — host processes are not charged).
type Result struct {
	Elapsed   platform.Duration
	Committed uint64 // MTXs committed (including recovery re-executions)
	Misspecs  uint64
	// Recovery phase totals across all misspeculations (Fig. 6).
	ERM platform.Duration // enter recovery mode: detection to first barrier
	FLQ platform.Duration // flush queues + re-protect
	SEQ platform.Duration // sequential re-execution of the aborted iteration
	RFP platform.Duration // refill pipeline: resume to first post-recovery commit
	// Crash-fault resilience totals (zero without a fault plan): worker
	// crashes survived, and the wall time of commit-unit crash recovery
	// (detection through pipeline restart — the re-dispatch cost).
	Crashes    uint64
	Redispatch platform.Duration
	// Traffic is the machine-wide wire traffic of the run.
	Traffic platform.TrafficStats
	Events  uint64 // simulation events (diagnostic; zero on host)
	// Busy-time accounting (diagnostic): virtual time each unit spent
	// computing vs polling empty queues.
	CUBusy, CUPoll, TCBusy, TCPoll, PageSrvBusy platform.Duration
	WorkerBusyMax                               platform.Duration
	WorkerBusyAvg                               platform.Duration
	PageRequests, PagesServed                   uint64
}

// Bandwidth reports the application's modelled communication bandwidth in
// bytes per second — total data transferred divided by execution time
// (Fig. 5a).
func (r Result) Bandwidth() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Traffic.Bytes) / r.Elapsed.Seconds()
}

// System is one configured DSMTX execution: a worker pool, a try-commit
// unit, a commit unit and a page server wired together by batched queues on
// a simulated cluster.
type System struct {
	cfg  Config
	prog Program
	// plat is the execution platform every protocol component runs against.
	// kernel and mach are the vtime backend's underlying simulator stack,
	// kept for the vtime-only subsystems (faults, tracing, heartbeat
	// timers); both are nil on the host backend.
	plat   platform.Platform
	kernel *sim.Kernel
	mach   *cluster.Machine
	world  *mpi.World
	layout pipeline.Layout

	workers []*workerNode
	tcs     []*tcNode
	cus     []*cuNode     // commit shards; cus[0] is the lead
	srvs    []*pageServer // page-server shards (always 1 on vtime)

	// owner is the HRW (rendezvous-hash) page-ownership table, built only
	// when CommitShards > 1: bucket b of the page space (64-page blocks,
	// modulo ownerBuckets) belongs to the commit shard whose hash weight for
	// b is highest. nil with a single commit unit, where ownerOf is
	// constant 0.
	owner []uint8

	// merged memoizes the sequential-checksum view over the per-shard
	// committed images (CommitImage at CommitShards > 1).
	merged *mem.Image

	// seqArena is the sequential allocation region shared by every commit
	// shard's SeqCtx when CommitShards > 1 (Setup, recovery re-execution and
	// Finalize may run on different shards but must share one bump pointer);
	// nil with a single commit unit, which owns its arena privately.
	seqArena *uva.Arena

	// Queue registry, keyed by endpoint tids.
	edgeQ    map[[2]int]*queue.Queue[Entry]
	toTCQ    [][]*queue.Queue[Entry]     // [worker][tc shard]
	toCUQ    [][]*queue.Queue[Entry]     // [worker][commit shard]
	verdictQ [][]*queue.Queue[Entry]     // [tc shard][commit shard]
	syncQ    map[int]*queue.Queue[Entry] // sender tid -> ring queue
	nextTag  int

	// routedStage is the parallel stage fed by a sequential predecessor,
	// or -1; routeSink is the sequential stage after it needing route
	// records, or -1.
	routedStage int
	routeSink   int

	allRanks []int

	initialImage *mem.Image

	// events collects the execution trace when cfg.Trace is set; traceMu
	// serializes appends on the host backend (see System.trace).
	traceMu sync.Mutex
	events  []TraceEvent

	// tr is cfg.Tracer (nil = observability disabled); stalls is the
	// per-rank stall attribution assembled after Run.
	tr     *trace.Tracer
	stalls trace.StallReport

	// inj is the compiled fault plan (nil = faults off); hbOn gates the
	// heartbeat/crash-detection machinery, which only a plan with crashes
	// needs — drop/latency/straggler plans leave the control plane
	// untouched.
	inj  *faults.Injector
	hbOn bool

	// Host-level heartbeat daemon state (see startHeartbeats): hbDark[w]
	// silences worker w's host while it is crashed; hbStopped/hbCancel shut
	// the ticker down when the commit unit finishes.
	hbDark    []bool
	hbStopped bool
	hbCancel  func()
}

// NewSystem validates the configuration and builds the (unstarted) system.
// initialImage, if non-nil, seeds the commit unit's memory before Setup —
// used to chain parallel invocations (e.g. training epochs).
func NewSystem(cfg Config, prog Program, initialImage *mem.Image) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.commitShards() > 1 {
		if _, ok := prog.(Committer); ok {
			return nil, fmt.Errorf("core: Config.CommitShards = %d: Committer programs need the single commit unit (the per-MTX hook is a sequential section)", cfg.CommitShards)
		}
	}
	layout, err := pipeline.NewLayout(cfg.Plan, cfg.Workers())
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:          cfg,
		prog:         prog,
		layout:       layout,
		edgeQ:        make(map[[2]int]*queue.Queue[Entry]),
		syncQ:        make(map[int]*queue.Queue[Entry]),
		nextTag:      tagQueueBase,
		routedStage:  -1,
		routeSink:    -1,
		initialImage: initialImage,
	}
	if err := s.analyzePlan(); err != nil {
		return nil, err
	}
	if cfg.commitShards() > 1 {
		s.buildOwnerTable()
	}
	// The commit unit's node doubles as page server; it gets the head
	// node's fat pipe (see cluster.Config.HeadNode).
	if s.cfg.Cluster.HeadNode < 0 {
		s.cfg.Cluster.HeadNode = s.cfg.Cluster.NodeOf(s.cfg.commitRank())
	}
	if cfg.Backend == BackendNet {
		// Distributed daemons. The orchestration layer owns the connection
		// mesh and injects a platform bound to it; core only supplies the
		// rank count its layout needs.
		if cfg.Platform == nil {
			return nil, fmt.Errorf("core: net backend needs Config.Platform (run through internal/netrun)")
		}
		p, err := cfg.Platform(s.cfg.Cluster.Ranks())
		if err != nil {
			return nil, err
		}
		s.plat = p
	} else if cfg.Backend == BackendHost {
		// Live goroutines under the same protocol. Validate already
		// rejected the vtime-only subsystems (faults); the cluster
		// topology still drives rank placement for traffic attribution.
		s.plat = host.New(s.cfg.Cluster.Ranks(), s.cfg.Cluster.NodeOf)
	} else {
		s.kernel = sim.NewKernel()
		s.mach = cluster.New(s.kernel, s.cfg.Cluster)
		if !cfg.Faults.Empty() {
			inj, err := faults.Compile(*cfg.Faults)
			if err != nil {
				return nil, err
			}
			s.inj = inj
			s.hbOn = inj.HasCrashes()
			s.mach.EnableFaults(inj)
		}
		s.plat = vtime.New(s.kernel, s.mach)
	}
	s.world = mpi.NewWorld(s.plat, cfg.MPICost)
	s.buildQueues()
	for r := 0; r < cfg.TotalCores; r++ {
		s.allRanks = append(s.allRanks, r)
	}
	s.bindTracer()
	return s, nil
}

// Reset prepares a finished System to execute another program on the same
// configuration, reusing everything NewSystem built — rank layout, queue
// registry, owner table, and the live host endpoint set — instead of
// rebuilding it. This is the warm worker-pool path (internal/engine): only
// the host backend supports reuse (vtime runs own a kernel event calendar,
// net ranks belong to a daemon mesh), and only plain runs do (no tracer,
// no MTX trace, no fault plan — their state is bound at construction).
// cfg is the configuration the caller would have passed to NewSystem for
// the new program; it must agree with the system's own on everything that
// shaped the layout. initialImage seeds the commit unit exactly as in
// NewSystem. On error the system is unchanged and still reusable for a
// compatible program.
func (s *System) Reset(cfg Config, prog Program, initialImage *mem.Image) error {
	if s.cfg.Backend != BackendHost {
		return fmt.Errorf("core: Reset reuses live host rank sets only (system backend %v)", s.cfg.Backend)
	}
	hp, ok := s.plat.(*host.Platform)
	if !ok {
		return fmt.Errorf("core: Reset needs a host platform, have %s", s.plat.Name())
	}
	switch {
	case cfg.Backend != s.cfg.Backend,
		cfg.TotalCores != s.cfg.TotalCores,
		cfg.CommitShards != s.cfg.CommitShards,
		cfg.PageServShards != s.cfg.PageServShards:
		return fmt.Errorf("core: Reset config mismatch (cores %d→%d, shards %d→%d)",
			s.cfg.TotalCores, cfg.TotalCores, s.cfg.CommitShards, cfg.CommitShards)
	case cfg.Tracer != nil || cfg.Trace || !cfg.Faults.Empty():
		return fmt.Errorf("core: Reset supports plain runs only (tracer/trace/faults bind at construction)")
	case !reflect.DeepEqual(cfg.Plan, s.cfg.Plan):
		return fmt.Errorf("core: Reset plan mismatch: %q vs %q", cfg.Plan.Name, s.cfg.Plan.Name)
	}
	if cfg.commitShards() > 1 {
		if _, isC := prog.(Committer); isC {
			return fmt.Errorf("core: Reset: Committer programs need the single commit unit")
		}
	}
	hp.Reset()
	s.prog = prog
	s.initialImage = initialImage
	s.workers, s.tcs, s.cus, s.srvs = nil, nil, nil, nil
	s.merged = nil
	s.seqArena = nil
	s.events = nil
	s.stalls = trace.StallReport{}
	s.hbDark, s.hbStopped, s.hbCancel = nil, false, nil
	return nil
}

// ownerBuckets is the consistent-hash table size: the page space is dealt
// to buckets in pageShardBlock (64-page) blocks, and each bucket is owned by
// one commit shard. 4096 buckets keep per-shard load within a fraction of a
// percent of uniform for any realistic shard count while the table stays one
// cache line short of 4 KiB.
const ownerBuckets = 4096

// splitmix64 is the mixing function behind the rendezvous hash — cheap,
// stateless, and well-distributed for sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// buildOwnerTable assigns every bucket to the commit shard with the highest
// rendezvous weight (HRW). Highest-random-weight hashing gives the CARP
// property the design calls for: growing from N to N+1 shards only moves the
// buckets the new shard wins — every other page keeps its owner.
func (s *System) buildOwnerTable() {
	n := s.cfg.commitShards()
	s.owner = make([]uint8, ownerBuckets)
	for b := 0; b < ownerBuckets; b++ {
		best, bestW := 0, uint64(0)
		for k := 0; k < n; k++ {
			if w := splitmix64(uint64(b)<<16 | uint64(k)); w >= bestW {
				bestW, best = w, k
			}
		}
		s.owner[b] = uint8(best)
	}
}

// ownerOf maps a page to the commit shard owning it: constant 0 with a
// single commit unit, else the HRW table keyed by the page's 64-page block.
func (s *System) ownerOf(id uva.PageID) int {
	if s.owner == nil {
		return 0
	}
	return int(s.owner[(uint64(id)/pageShardBlock)%ownerBuckets])
}

// ownerSpan is the byte span over which page ownership is constant: owners
// can only change at pageShardBlock page boundaries, so bulk operations are
// split at most every ownerSpan bytes.
const ownerSpan = pageShardBlock * uva.PageSize

// shardSpace is the federated view of committed memory over every commit
// shard's image: each access routes to the owner shard. Sequential code
// (Setup, recovery re-execution, Finalize) runs against it on whichever
// shard holds the sequential baton at that moment — always at a point where
// every other commit shard is parked (before tagStart, or between recovery
// barriers), so cross-image access needs no locking.
type shardSpace struct {
	sys  *System
	imgs []*mem.Image
}

var _ mem.Space = (*shardSpace)(nil)

func (sp *shardSpace) imgFor(addr uva.Addr) *mem.Image {
	return sp.imgs[sp.sys.ownerOf(addr.Page())]
}

func (sp *shardSpace) Load(addr uva.Addr) uint64     { return sp.imgFor(addr).Load(addr) }
func (sp *shardSpace) Store(addr uva.Addr, v uint64) { sp.imgFor(addr).Store(addr, v) }
func (sp *shardSpace) LoadFloat(addr uva.Addr) float64 {
	return sp.imgFor(addr).LoadFloat(addr)
}
func (sp *shardSpace) StoreFloat(addr uva.Addr, v float64) { sp.imgFor(addr).StoreFloat(addr, v) }

// forEachOwnerRange splits [addr, addr+n) at ownership-block boundaries and
// invokes fn per single-owner segment.
func forEachOwnerRange(addr uva.Addr, n int, fn func(a uva.Addr, off, ln int)) {
	for off := 0; off < n; {
		a := addr + uva.Addr(off)
		ln := n - off
		if rem := ownerSpan - int(uint64(a)&(ownerSpan-1)); ln > rem {
			ln = rem
		}
		fn(a, off, ln)
		off += ln
	}
}

func (sp *shardSpace) LoadBytes(addr uva.Addr, n int) []byte {
	out := make([]byte, n)
	forEachOwnerRange(addr, n, func(a uva.Addr, off, ln int) {
		copy(out[off:off+ln], sp.imgFor(a).LoadBytes(a, ln))
	})
	return out
}

func (sp *shardSpace) StoreBytes(addr uva.Addr, b []byte) {
	forEachOwnerRange(addr, len(b), func(a uva.Addr, off, ln int) {
		sp.imgFor(a).StoreBytes(a, b[off:off+ln])
	})
}

func (sp *shardSpace) ChecksumRange(addr uva.Addr, n int) uint64 {
	return mem.ChecksumBytes(sp.LoadBytes(addr, n))
}

// pageSrvTrack is the page server's synthetic timeline id: it shares the
// commit unit's rank, so it gets the first id past the real ranks.
func (s *System) pageSrvTrack() int { return s.cfg.TotalCores }

// bindTracer attaches cfg.Tracer to this invocation: stitches the
// platform's clock into the tracer's timeline (the vtime kernel, or the
// host's monotonic wall clock with per-rank span buffers), labels one track
// per rank (plus the page-server shards' synthetic tracks), and resolves
// queue metric handles. On host it also hands the tracer to the platform so
// the delivery layer (rings, parking, spills) self-instruments. A nil
// tracer leaves everything on the uninstrumented path.
func (s *System) bindTracer() {
	s.tr = s.cfg.Tracer
	if s.tr == nil {
		return
	}
	if s.kernel != nil {
		s.tr.BindKernel(s.kernel)
		s.mach.SetTracer(s.tr)
	} else {
		s.tr.BindWall(s.plat, s.cfg.HostSpanBufCap)
		// Both wall-clock platforms (host, and net's embedded host) expose
		// the delivery-layer instrumentation hook.
		if tp, ok := s.plat.(interface{ SetTracer(*trace.Tracer) }); ok {
			tp.SetTracer(s.tr)
		}
	}
	node := s.cfg.Cluster.NodeOf
	for w := 0; w < s.cfg.Workers(); w++ {
		s.tr.SetTrack(w, node(w), fmt.Sprintf("worker%d (S%d)", w, s.layout.StageOf(w)))
	}
	for j := 0; j < s.cfg.tcUnits(); j++ {
		r := s.cfg.tryCommitRank(j)
		s.tr.SetTrack(r, node(r), fmt.Sprintf("trycommit%d", j))
	}
	for k := 0; k < s.cfg.commitShards(); k++ {
		r := s.cfg.commitShardRank(k)
		label := "commit"
		if k > 0 {
			label = fmt.Sprintf("commit.shard%d", k)
		}
		s.tr.SetTrack(r, node(r), label)
	}
	for sh := 0; sh < s.pageSrvCount(); sh++ {
		label := "pagesrv"
		if sh > 0 {
			label = fmt.Sprintf("pagesrv%d", sh)
		}
		r := s.pageSrvRank(sh)
		s.tr.SetTrack(s.pageSrvTrack()+sh, node(r), label)
	}
	for _, q := range s.edgeQ {
		q.Instrument(s.tr)
	}
	for _, shards := range s.toTCQ {
		for _, q := range shards {
			q.Instrument(s.tr)
		}
	}
	for _, shards := range s.toCUQ {
		for _, q := range shards {
			q.Instrument(s.tr)
		}
	}
	for _, shards := range s.verdictQ {
		for _, q := range shards {
			q.Instrument(s.tr)
		}
	}
	for _, q := range s.syncQ {
		q.Instrument(s.tr)
	}
}

// pageSrvCount is the number of page-server processes: one per commit shard
// when the commit pipeline is sharded (each serves its own partition's
// snapshot), else the configured per-rank shard count.
func (s *System) pageSrvCount() int {
	if s.cfg.commitShards() > 1 {
		return s.cfg.commitShards()
	}
	return s.cfg.pageShards()
}

// pageSrvRank is the rank page-server shard sh shares a core with.
func (s *System) pageSrvRank(sh int) int {
	if s.cfg.commitShards() > 1 {
		return s.cfg.commitShardRank(sh)
	}
	return s.cfg.commitRank()
}

// ctrlSrc is the source workers and try-commit units accept control
// messages from: the single commit rank normally; any commit shard under a
// sharded pipeline (recovery epochs originate at the coordinator shard).
func (s *System) ctrlSrc() int {
	if s.cfg.commitShards() > 1 {
		return platform.AnySource
	}
	return s.cfg.commitRank()
}

// pageReplySrc is the source workers and try-commit units accept COA page
// replies from: the single commit rank normally; any owner shard under a
// sharded pipeline.
func (s *System) pageReplySrc() int {
	if s.cfg.commitShards() > 1 {
		return platform.AnySource
	}
	return s.cfg.commitRank()
}

// analyzePlan finds the routed parallel stage and its downstream route sink,
// and rejects shapes the runtime does not support.
func (s *System) analyzePlan() error {
	p := s.cfg.Plan
	nPar := 0
	for st, stage := range p.Stages {
		if stage.Kind != pipeline.Parallel {
			continue
		}
		nPar++
		if st > 0 {
			if p.Stages[st-1].Kind != pipeline.Sequential {
				return fmt.Errorf("core: plan %q: parallel stage %d fed by a parallel stage", p.Name, st)
			}
			s.routedStage = st
			for nxt := st + 1; nxt < len(p.Stages); nxt++ {
				if p.Stages[nxt].Kind == pipeline.Sequential {
					s.routeSink = nxt
					break
				}
			}
		}
	}
	if nPar > 1 {
		return fmt.Errorf("core: plan %q has %d parallel stages; the runtime supports one", p.Name, nPar)
	}
	if p.Sync && (len(p.Stages) != 1 || p.Stages[0].Kind != pipeline.Parallel) {
		return fmt.Errorf("core: plan %q: sync rings require a single parallel stage", p.Name)
	}
	return nil
}

func (s *System) allocTag() int {
	t := s.nextTag
	s.nextTag += 2
	return t
}

// wiringEdges reports every stage edge the system must create queues for:
// the plan's edges plus the implicit route-record edge feeder→sink.
func (s *System) wiringEdges() [][2]int {
	edges := s.cfg.Plan.Edges()
	if s.routedStage >= 0 && s.routeSink >= 0 {
		feeder := s.routedStage - 1
		found := false
		for _, e := range edges {
			if e == [2]int{feeder, s.routeSink} {
				found = true
			}
		}
		if !found {
			edges = append(edges, [2]int{feeder, s.routeSink})
		}
	}
	return edges
}

func (s *System) buildQueues() {
	qc := s.cfg.Queue
	for _, e := range s.wiringEdges() {
		for _, src := range s.layout.Assign[e[0]] {
			for _, dst := range s.layout.Assign[e[1]] {
				name := fmt.Sprintf("fwd%d-%d", src, dst)
				s.edgeQ[[2]int{src, dst}] = queue.New(s.world, name, src, dst, s.allocTag(), qc, wireSize)
			}
		}
	}
	// Queue names and tag-allocation order with one commit shard are exactly
	// the pre-sharding layout ("cu%d", "verdict%d"); extra shards append
	// ".%d"-suffixed queues in shard order.
	nCU := s.cfg.commitShards()
	for w := 0; w < s.cfg.Workers(); w++ {
		var shards []*queue.Queue[Entry]
		for j := 0; j < s.cfg.tcUnits(); j++ {
			shards = append(shards,
				queue.New(s.world, fmt.Sprintf("tc%d.%d", w, j), w, s.cfg.tryCommitRank(j), s.allocTag(), qc, wireSize))
		}
		s.toTCQ = append(s.toTCQ, shards)
		var cus []*queue.Queue[Entry]
		for k := 0; k < nCU; k++ {
			name := fmt.Sprintf("cu%d", w)
			if nCU > 1 {
				name = fmt.Sprintf("cu%d.%d", w, k)
			}
			cus = append(cus,
				queue.New(s.world, name, w, s.cfg.commitShardRank(k), s.allocTag(), qc, wireSize))
		}
		s.toCUQ = append(s.toCUQ, cus)
	}
	for j := 0; j < s.cfg.tcUnits(); j++ {
		var cus []*queue.Queue[Entry]
		for k := 0; k < nCU; k++ {
			name := fmt.Sprintf("verdict%d", j)
			if nCU > 1 {
				name = fmt.Sprintf("verdict%d.%d", j, k)
			}
			cus = append(cus,
				queue.New(s.world, name, s.cfg.tryCommitRank(j), s.cfg.commitShardRank(k), s.allocTag(), qc, wireSize))
		}
		s.verdictQ = append(s.verdictQ, cus)
	}
	if s.cfg.Plan.Sync {
		pool := s.layout.Assign[0]
		for i, w := range pool {
			next := pool[(i+1)%len(pool)]
			s.syncQ[w] = queue.New(s.world, fmt.Sprintf("sync%d", w), w, next, s.allocTag(), qc, wireSize)
		}
	}
}

// prevPool reports the pool predecessor of tid within its stage (the sync
// ring sender whose queue tid receives from).
func (s *System) prevPool(tid int) int {
	pool := s.layout.Assign[s.layout.StageOf(tid)]
	for i, w := range pool {
		if w == tid {
			return pool[(i+len(pool)-1)%len(pool)]
		}
	}
	panic("core: tid not in pool")
}

// applyDilation installs the fault plan's straggler multiplier (if any) on
// the process executing rank. Dilation stretches compute quanta only — wire
// time and queue latency are modelled elsewhere — which is exactly how a
// slow core (thermal throttling, co-tenant interference) presents. Fault
// plans exist only on the vtime backend, so the process is a *sim.Proc.
func (s *System) applyDilation(p platform.Proc, rank int) {
	if s.inj == nil {
		return
	}
	if d := s.inj.DilationFor(rank); d != nil {
		p.(*sim.Proc).SetDilation(d)
	}
}

// spawnRank starts a named protocol process on the platform, applying any
// straggler dilation configured for its rank. On the host backend the
// goroutine carries pprof labels (rank, role) so -cpuprofile output
// attributes samples per rank role; vtime processes are cooperative
// goroutines of one scheduler, where per-proc labels would only mislead.
func (s *System) spawnRank(name string, rank int, body func(platform.Proc)) {
	// On the net backend only this daemon's ranks run here; remote ranks
	// are spawned by their owning daemon and reached through the mesh.
	if lp, ok := s.plat.(interface{ LocalRank(int) bool }); ok && !lp.LocalRank(rank) {
		return
	}
	if s.plat.Concurrent() {
		role := strings.TrimRight(name, "0123456789")
		labels := pprof.Labels("dsmtx-rank", strconv.Itoa(rank), "dsmtx-role", role)
		s.plat.Spawn(name, func(p platform.Proc) {
			pprof.Do(context.Background(), labels, func(context.Context) { body(p) })
		})
		return
	}
	s.plat.Spawn(name, func(p platform.Proc) {
		s.applyDilation(p, rank)
		body(p)
	})
}

// publishSnapshots hands each page-server shard its own copy-on-write
// snapshot of the commit image. One Snapshot call per shard — not one
// shared image — because a snapshot's internal lookup caches mutate on
// reads; the underlying page frames are shared copy-on-write, so the extra
// snapshots cost one page-table copy each, not a memory copy.
func (s *System) publishSnapshots(img *mem.Image) {
	if s.cfg.commitShards() > 1 {
		// One server per commit shard, each serving its own shard's image;
		// img (the caller's local image) is ignored. Only called while every
		// other commit shard is parked (before tagStart, or between recovery
		// barriers B2 and B3), so snapshotting a peer's image is race-free.
		for k, ps := range s.srvs {
			ps.setSnapshot(s.cus[k].img.Snapshot())
		}
		return
	}
	for _, ps := range s.srvs {
		ps.setSnapshot(img.Snapshot())
	}
}

// shadowSetup replays the program's sequential Setup on net-backend daemons
// that do not host the commit rank. Setup establishes SPMD program state —
// arena-allocated addresses, cached layout — that every rank derives
// identically because the allocation sequence is deterministic; only the
// commit daemon's memory writes are authoritative, so the shadow run writes
// into a throwaway image and workers read the real values back through
// Copy-On-Access. Runs single-threaded before any rank spawns, mirroring
// the tagStart barrier that orders the real Setup before worker execution.
func (s *System) shadowSetup() {
	if s.cfg.Backend != BackendNet {
		return
	}
	lp, ok := s.plat.(interface{ LocalRank(int) bool })
	if !ok || lp.LocalRank(s.cfg.commitRank()) {
		return
	}
	seq := &SeqCtx{cfg: s.cfg, proc: shadowProc{}, img: mem.NewImage(nil), arena: uva.NewArena(0), instr: s.instrTime}
	s.prog.Setup(seq)
}

// shadowProc is the inert process behind shadowSetup: the shadow replay is
// off the critical path and outside the cost model, so time does not pass.
type shadowProc struct{}

func (shadowProc) Advance(platform.Duration)   {}
func (shadowProc) Yield()                      {}
func (shadowProc) Now() platform.Time          { return 0 }
func (shadowProc) Advanced() platform.Duration { return 0 }
func (shadowProc) Blocked() platform.Duration  { return 0 }
func (shadowProc) Name() string                { return "setup.shadow" }

// startHeartbeats launches the liveness daemon of the crash-fault model: a
// periodic kernel event that sends one 16-byte heartbeat per live worker
// host to the commit unit every HeartbeatInterval. It deliberately runs
// outside the worker processes — like a kernel keepalive thread on a real
// host, it keeps beating while the worker computes, so a long iteration is
// never mistaken for a dead host; silence means the host itself is dark.
// The messages ride the normal control plane (NIC serialization, the
// reliable layer when links are lossy), so liveness detection has a real,
// measured cost rather than a modelled-away one.
func (s *System) startHeartbeats() {
	if !s.hbOn {
		return
	}
	s.hbDark = make([]bool, s.cfg.Workers())
	cu := s.cfg.commitRank()
	period := s.cfg.HeartbeatInterval
	var tick func()
	schedule := func() {
		s.hbCancel = s.kernel.AtCancel(s.kernel.Now()+period, tick)
	}
	tick = func() {
		if s.hbStopped {
			return
		}
		for w := 0; w < s.cfg.Workers(); w++ {
			if !s.hbDark[w] {
				s.mach.Endpoint(w).Send(cu, tagHeartbeat, nil, 16)
			}
		}
		schedule()
	}
	schedule()
}

// stopHeartbeats cancels the daemon so the event calendar can drain; the
// cancelled tick is skipped without advancing virtual time.
func (s *System) stopHeartbeats() {
	if s.hbCancel != nil {
		s.hbStopped = true
		s.hbCancel()
	}
}

// Run executes the parallel invocation to completion and reports the
// result. The commit unit's final memory is available via CommitImage.
func (s *System) Run() (Result, error) {
	for k := 0; k < s.cfg.commitShards(); k++ {
		s.cus = append(s.cus, newCUNode(s, k))
	}
	if s.cfg.commitShards() > 1 {
		s.seqArena = uva.NewArena(0)
		if s.initialImage != nil {
			// Scatter the seed image to its owner shards before any process
			// starts (single-threaded here, so spawn gives happens-before).
			s.initialImage.ForEachResident(func(id uva.PageID, pg *mem.Page) {
				s.cus[s.ownerOf(id)].img.InstallPage(id, pg.Clone())
			})
		}
	}
	for j := 0; j < s.cfg.tcUnits(); j++ {
		s.tcs = append(s.tcs, newTCNode(s, j))
	}
	for sh := 0; sh < s.pageSrvCount(); sh++ {
		s.srvs = append(s.srvs, newPageServer(s, sh))
	}
	for w := 0; w < s.cfg.Workers(); w++ {
		s.workers = append(s.workers, newWorkerNode(s, w))
	}
	s.shadowSetup()
	// Spawn order: receivers of early traffic must bind mailboxes in their
	// spawn bodies before any delivery event fires; on vtime all spawns are
	// enqueued ahead of any send, so order here is just cosmetic. On host,
	// goroutines start immediately and registration can race delivery — the
	// host endpoint's any-source migration makes that safe.
	for k, cu := range s.cus {
		name := "commit"
		if k > 0 {
			name = fmt.Sprintf("commit%d", k)
		}
		s.spawnRank(name, cu.rank, cu.run)
	}
	for j, tc := range s.tcs {
		s.spawnRank(fmt.Sprintf("trycommit%d", j), tc.rank, tc.run)
	}
	// Page servers share their commit rank's core, so a straggler window on
	// that rank slows them too. Shard 0 keeps the pre-sharding name so vtime
	// process naming (and hence event ordering) is unchanged.
	for sh, ps := range s.srvs {
		name := "pagesrv"
		if sh > 0 {
			name = fmt.Sprintf("pagesrv%d", sh)
		}
		s.spawnRank(name, s.pageSrvRank(sh), ps.run)
	}
	for _, w := range s.workers {
		w := w
		s.spawnRank(fmt.Sprintf("worker%d", w.tid), w.rank, w.run)
	}
	s.startHeartbeats()
	if err := s.plat.Run(s.cfg.Horizon); err != nil {
		return Result{}, fmt.Errorf("core: %s on %d cores: %w", s.cfg.Plan.Name, s.cfg.TotalCores, err)
	}
	res := s.cus[0].result
	for _, c := range s.cus[1:] {
		r := c.result
		res.Committed += r.Committed
		res.Misspecs += r.Misspecs
		res.ERM += r.ERM
		res.FLQ += r.FLQ
		res.SEQ += r.SEQ
		res.RFP += r.RFP
		res.Crashes += r.Crashes
		res.Redispatch += r.Redispatch
	}
	res.Elapsed = s.plat.Now()
	res.Traffic = s.plat.Traffic()
	res.Events = s.plat.Events()
	// Nodes whose rank lives in another daemon (net backend) were never
	// spawned here; their proc is nil and their counters belong to the
	// owning process.
	for _, c := range s.cus {
		if c.proc == nil {
			continue
		}
		res.CUBusy += c.proc.Advanced() - c.pollTime
		res.CUPoll += c.pollTime
	}
	for _, tc := range s.tcs {
		if tc.proc == nil {
			continue
		}
		res.TCBusy += tc.proc.Advanced() - tc.pollTime
		res.TCPoll += tc.pollTime
	}
	for _, ps := range s.srvs {
		if ps.proc == nil {
			continue
		}
		res.PageSrvBusy += ps.proc.Advanced()
		res.PageRequests += ps.Requests
		res.PagesServed += ps.PagesServed
	}
	var sum platform.Duration
	spawned := 0
	for _, w := range s.workers {
		if w.proc == nil {
			continue
		}
		spawned++
		busy := w.proc.Advanced() - w.pollTime
		sum += busy
		if busy > res.WorkerBusyMax {
			res.WorkerBusyMax = busy
		}
	}
	if spawned > 0 {
		res.WorkerBusyAvg = sum / platform.Duration(spawned)
	}
	s.buildStallReport()
	// Recycle worker and try-commit page frames: their speculative images
	// are dead once the run ends (only the commit unit's memory is exposed
	// via CommitImage). Counters survive Reset for post-run diagnostics.
	for _, w := range s.workers {
		if w.img != nil {
			w.img.Reset()
		}
	}
	for _, tc := range s.tcs {
		if tc.view != nil {
			tc.view.Reset()
		}
	}
	return res, nil
}

// buildStallReport attributes each rank's virtual time across the stall
// causes. The identity per process is
//
//	Advanced + Blocked == Busy + Starvation + Backpressure + VerdictWait + Recovery + Blocked'
//
// where Recovery is the wall time of recovery windows (virtual time inside
// a window passes only in Advance or parks, so recWall == recAdv + recBlk
// and both are pulled out of the Busy/Blocked buckets) and Blocked'
// excludes parks inside recovery. The bucket *accounting* runs
// unconditionally — plain integer adds on paths that already do time
// arithmetic — but the report (its label strings and row slice) is only
// assembled when a tracer is attached, keeping the untraced Run
// allocation profile unchanged.
func (s *System) buildStallReport() {
	if s.tr == nil {
		return
	}
	s.stalls = trace.StallReport{}
	for _, w := range s.workers {
		if w.proc == nil {
			continue // remote rank (net backend): reported by its own daemon
		}
		s.stalls.Add(trace.StallRow{
			Track: w.rank,
			Label: fmt.Sprintf("worker%d", w.tid),
			Stage: fmt.Sprintf("S%d", w.stage),
			Busy:  w.proc.Advanced() - w.stallStarve - w.stallBack - w.recAdv - w.crashAdv,

			Backpressure: w.stallBack,
			Starvation:   w.stallStarve,
			Recovery:     w.recWall,
			Crashed:      w.crashWall,
			Blocked:      w.proc.Blocked() - w.recBlk - w.crashBlk,
		})
	}
	for _, tc := range s.tcs {
		if tc.proc == nil {
			continue
		}
		s.stalls.Add(trace.StallRow{
			Track:      tc.rank,
			Label:      fmt.Sprintf("trycommit%d", tc.shard),
			Stage:      "trycommit",
			Busy:       tc.proc.Advanced() - tc.pollTime - tc.recAdv,
			Starvation: tc.pollTime,
			Recovery:   tc.recWall,
			Blocked:    tc.proc.Blocked() - tc.recBlk,
		})
	}
	s.stalls.CommitShards = s.cfg.commitShards() > 1
	for k, c := range s.cus {
		if c.proc == nil {
			continue
		}
		label := "commit"
		if k > 0 {
			label = fmt.Sprintf("commit.shard%d", k)
		}
		s.stalls.Add(trace.StallRow{
			Track:       c.rank,
			Label:       label,
			Stage:       "commit",
			Busy:        c.proc.Advanced() - c.pollTime - c.recAdv - c.redAdv,
			Starvation:  c.stallStarve,
			VerdictWait: c.stallVerdict,
			VoteWait:    c.voteWait,
			Recovery:    c.recWall,
			Crashed:     c.redWall,
			Blocked:     c.proc.Blocked() - c.recBlk - c.redBlk,
		})
	}
	for sh, ps := range s.srvs {
		if ps.proc == nil {
			continue
		}
		label := "pagesrv"
		if sh > 0 {
			label = fmt.Sprintf("pagesrv%d", sh)
		}
		s.stalls.Add(trace.StallRow{
			Track:      s.pageSrvTrack() + sh,
			Label:      label,
			Stage:      "pagesrv",
			Busy:       ps.proc.Advanced(),
			Blocked:    ps.proc.Blocked(),
			ShardQueue: ps.depthHW,
		})
	}
	// Host runs add the delivery columns: wall time parked and overflow
	// spills, read from each rank's endpoint (so the commit row also covers
	// its co-located page-server shards, which share the rank's mailboxes).
	if hp, ok := s.plat.(interface {
		RankDelivery(int) (int64, uint64, uint64)
	}); ok {
		s.stalls.Host = true
		for i := range s.stalls.Rows {
			row := &s.stalls.Rows[i]
			if row.Track >= s.cfg.TotalCores {
				continue
			}
			parkNs, _, spills := hp.RankDelivery(row.Track)
			row.Park = sim.Time(parkNs)
			row.Spills = spills
		}
	}
}

// StallReport exposes the per-rank stall attribution assembled by Run;
// empty unless a Config.Tracer was attached.
func (s *System) StallReport() *trace.StallReport { return &s.stalls }

// CommitImage exposes the committed memory after Run, for checksum
// comparison against the sequential reference and for chaining invocations.
// With a sharded commit pipeline this is a copy-on-write merge of every
// shard's image (their page sets are disjoint by ownership), built once and
// memoized.
func (s *System) CommitImage() *mem.Image {
	if len(s.cus) == 0 {
		return nil
	}
	if s.cfg.commitShards() == 1 {
		return s.cus[0].img
	}
	if s.merged == nil {
		imgs := make([]*mem.Image, len(s.cus))
		for k, c := range s.cus {
			imgs[k] = c.img
		}
		s.merged = mem.Merge(imgs...)
	}
	return s.merged
}

// WorkerBusy reports each worker's non-poll busy time after Run, indexed
// by tid (diagnostic).
func (s *System) WorkerBusy() []platform.Duration {
	out := make([]platform.Duration, len(s.workers))
	for i, w := range s.workers {
		if w.proc == nil {
			continue // remote rank (net backend)
		}
		out[i] = w.proc.Advanced() - w.pollTime
	}
	return out
}

// Layout exposes the worker layout (examples and tests use it).
func (s *System) Layout() pipeline.Layout { return s.layout }

// instrTime converts instructions to time under the execution platform
// (modelled clock cycles on vtime; zero on host, where the instructions
// already cost real time).
func (s *System) instrTime(n int64) platform.Duration { return s.plat.InstrTime(n) }

// SeqCtx is the execution context for sequential code on the commit unit:
// Setup, SeqIter, Commit and Finalize — and for the pure sequential
// reference execution (RunSequential). It operates directly on the
// authoritative image.
type SeqCtx struct {
	cfg   Config
	proc  platform.Proc
	img   mem.Space
	arena *uva.Arena
	// instr converts instructions to platform time; nil means the cluster
	// clock (the pure sequential reference, which always runs in vtime).
	instr func(int64) platform.Duration
}

// instrTime converts an instruction count to this context's platform time.
func (c *SeqCtx) instrTime(n int64) platform.Duration {
	if c.instr != nil {
		return c.instr(n)
	}
	return c.cfg.Cluster.InstrTime(n)
}

// Load reads a word from committed memory.
func (c *SeqCtx) Load(addr uva.Addr) uint64 {
	c.proc.Advance(c.instrTime(c.cfg.LoadInstr))
	return c.img.Load(addr)
}

// Store writes a word to committed memory.
func (c *SeqCtx) Store(addr uva.Addr, v uint64) {
	c.proc.Advance(c.instrTime(c.cfg.StoreInstr))
	c.img.Store(addr, v)
}

// LoadFloat reads a float64 from committed memory.
func (c *SeqCtx) LoadFloat(addr uva.Addr) float64 { return floatOf(c.Load(addr)) }

// StoreFloat writes a float64 to committed memory.
func (c *SeqCtx) StoreFloat(addr uva.Addr, v float64) { c.Store(addr, bitsOf(v)) }

// Alloc allocates n bytes from the sequential region (owner 0).
func (c *SeqCtx) Alloc(n int64) uva.Addr { return c.arena.Alloc(n) }

// AllocWords allocates n words from the sequential region.
func (c *SeqCtx) AllocWords(n int) uva.Addr { return c.arena.AllocWords(n) }

// Free releases an allocation made via this context.
func (c *SeqCtx) Free(addr uva.Addr) { c.arena.Free(addr) }

// Compute charges n instructions of work to the commit unit.
func (c *SeqCtx) Compute(n int64) { c.proc.Advance(c.instrTime(n)) }

// LoadBytes reads a block from committed memory, charging bulk cost.
func (c *SeqCtx) LoadBytes(addr uva.Addr, n int) []byte {
	c.Compute(int64(float64(n) * c.cfg.BulkInstrPerByte))
	return c.img.LoadBytes(addr, n)
}

// StoreBytes writes a block to committed memory, charging bulk cost.
func (c *SeqCtx) StoreBytes(addr uva.Addr, b []byte) {
	c.Compute(int64(float64(len(b)) * c.cfg.BulkInstrPerByte))
	c.img.StoreBytes(addr, b)
}

// Image exposes the underlying memory space for bulk, cost-free
// initialization in Setup (e.g. loading input files); prefer Load/Store in
// modelled code. With a single commit unit this is its *mem.Image; with a
// sharded commit pipeline it is the federated per-shard view.
func (c *SeqCtx) Image() mem.Space { return c.img }
