// Wire codecs for the runtime's message payloads. The net backend can only
// ship payload types with registered codecs; this file registers every type
// the protocol sends between ranks — control broadcasts, page requests and
// replies, and queue batches of Entry records. Registration runs at init so
// any binary that links core (daemons, tests, tools) can serve either side
// of a connection.

package core

import (
	"dsmtx/internal/mem"
	"dsmtx/internal/queue"
	"dsmtx/internal/uva"
	"dsmtx/internal/wire"
)

// Payload kind bytes. 0-15 are wire built-ins (nil, uint64, []byte).
const (
	wireKindCtrl    = 0x10
	wireKindPageReq = 0x11
	wireKindPages   = 0x12
	wireKindBatch   = 0x13
)

func init() {
	wire.RegisterPayload(wireKindCtrl, ctrlMsg{}, "ctrl",
		func(e *wire.Encoder, v any) {
			m := v.(ctrlMsg)
			e.U64(m.epoch)
			e.U64(m.restart)
			done := uint8(0)
			if m.done {
				done = 1
			}
			e.U8(done)
		},
		func(d *wire.Decoder) any {
			var m ctrlMsg
			m.epoch = d.U64()
			m.restart = d.U64()
			m.done = d.U8() != 0
			return m
		})

	wire.RegisterPayload(wireKindPageReq, pageReq{}, "pagereq",
		func(e *wire.Encoder, v any) {
			r := v.(pageReq)
			e.U64(uint64(r.Start))
			e.Uvarint(uint64(r.Count))
			e.Uvarint(uint64(r.Grain))
		},
		func(d *wire.Decoder) any {
			var r pageReq
			r.Start = uva.PageID(d.U64())
			r.Count = d.Int()
			r.Grain = d.Int()
			return r
		})

	// Page replies: count, then each page's words raw — the zero-copy fast
	// path (one contiguous append per page, no per-word framing). Decode
	// checks the remaining byte budget before allocating each frame, so a
	// corrupt count cannot outrun the data that arrived.
	wire.RegisterPayload(wireKindPages, []*mem.Page(nil), "pages",
		func(e *wire.Encoder, v any) {
			pages := v.([]*mem.Page)
			e.Uvarint(uint64(len(pages)))
			for _, pg := range pages {
				e.U64s(pg.Words[:])
			}
		},
		func(d *wire.Decoder) any {
			n := d.Int()
			pages := make([]*mem.Page, 0, min(n, d.Remaining()/(8*uva.PageWords)+1))
			for i := 0; i < n && d.Err() == nil; i++ {
				pg := &mem.Page{}
				d.U64s(pg.Words[:])
				pages = append(pages, pg)
			}
			return pages
		})

	// Queue batches of Entry. An Entry payload is either nil or []byte
	// (entData bulk produce); any other dynamic type cannot cross a daemon
	// boundary and fails the encode, which the transport surfaces as a
	// platform failure.
	wire.RegisterPayload(wireKindBatch, queue.BatchPrototype[Entry](), "batch",
		func(e *wire.Encoder, v any) {
			queue.EncodeBatch(e, v, func(e *wire.Encoder, it Entry) {
				e.U8(uint8(it.Kind))
				e.Uvarint(it.MTX)
				e.U64(uint64(it.Addr))
				e.U64(it.Val)
				e.Uvarint(uint64(it.Bytes))
				switch p := it.Payload.(type) {
				case nil:
					e.U8(0)
				case []byte:
					e.U8(1)
					e.Blob(p)
				default:
					panic(errUnwirablePayload{})
				}
			})
		},
		func(d *wire.Decoder) any {
			return queue.DecodeBatch(d, func(d *wire.Decoder) Entry {
				var it Entry
				it.Kind = entryKind(d.U8())
				it.MTX = d.Uvarint()
				it.Addr = uva.Addr(d.U64())
				it.Val = d.U64()
				it.Bytes = d.Int()
				switch flag := d.U8(); flag {
				case 0:
				case 1:
					b := d.Blob()
					out := make([]byte, len(b))
					copy(out, b)
					it.Payload = out
				default:
					d.Failf("bad entry payload flag %d", flag)
				}
				return it
			})
		})
}

// errUnwirablePayload marks an Entry payload type the codec cannot ship.
type errUnwirablePayload struct{}

func (errUnwirablePayload) Error() string {
	return "core: Entry.Payload type has no wire encoding (net backend programs must produce []byte)"
}
