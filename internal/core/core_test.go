package core

import (
	"testing"

	"dsmtx/internal/pipeline"
	"dsmtx/internal/uva"
)

// smallCluster keeps test machines modest.
func smallConfig(cores int, plan pipeline.Plan) Config {
	cfg := DefaultConfig(cores, plan)
	cfg.Cluster.Nodes = 8
	cfg.Cluster.CoresPerNode = (cores + 7) / 8
	if cfg.Cluster.CoresPerNode < 1 {
		cfg.Cluster.CoresPerNode = 1
	}
	return cfg
}

// pipeProg is a 3-stage Spec-DSWP test program: stage 0 reads in[k] from
// memory and produces it; stage 1 computes f(x) with some virtual work;
// stage 2 writes out[k]. All program data lives in UVA memory.
type pipeProg struct {
	n        uint64
	in, out  uva.Addr
	misspecs map[uint64]bool // iterations whose stage-1 flags misspeculation
}

func (p *pipeProg) f(x uint64) uint64 { return x*2654435761 + 17 }

func (p *pipeProg) Setup(ctx *SeqCtx) {
	n := int(p.n)
	if n == 0 {
		n = 1
	}
	p.in = ctx.AllocWords(n)
	p.out = ctx.AllocWords(n)
	for k := uint64(0); k < p.n; k++ {
		ctx.Store(p.in+uva.Addr(k*8), k*3+1)
	}
}

func (p *pipeProg) Stage(ctx *Ctx, stage int, iter uint64) bool {
	switch stage {
	case 0:
		if iter >= p.n {
			return false
		}
		v := ctx.Load(p.in + uva.Addr(iter*8))
		ctx.Produce(1, v)
	case 1:
		if p.misspecs[iter] {
			ctx.Misspec()
		}
		v := ctx.Consume(0)
		ctx.Compute(30000) // the parallel stage dominates, as in DSWP+
		ctx.Produce(2, p.f(v))
	case 2:
		v := ctx.Consume(1)
		ctx.Write(p.out+uva.Addr(iter*8), v)
	}
	return true
}

func (p *pipeProg) SeqIter(ctx *SeqCtx, iter uint64) {
	v := ctx.Load(p.in + uva.Addr(iter*8))
	ctx.Compute(30000)
	ctx.Store(p.out+uva.Addr(iter*8), p.f(v))
}

func (p *pipeProg) expect(k uint64) uint64 { return p.f(k*3 + 1) }

func runProg(t *testing.T, cfg Config, prog Program) (*System, Result) {
	t.Helper()
	sys, err := NewSystem(cfg, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

func TestSpecDSWPPipelineCommitsCorrectly(t *testing.T) {
	prog := &pipeProg{n: 40}
	sys, res := runProg(t, smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
	if res.Committed != 40 {
		t.Fatalf("Committed = %d, want 40", res.Committed)
	}
	if res.Misspecs != 0 {
		t.Fatalf("Misspecs = %d, want 0", res.Misspecs)
	}
	img := sys.CommitImage()
	for k := uint64(0); k < prog.n; k++ {
		if got := img.Load(prog.out + uva.Addr(k*8)); got != prog.expect(k) {
			t.Fatalf("out[%d] = %d, want %d", k, got, prog.expect(k))
		}
	}
}

func TestPipelineZeroIterations(t *testing.T) {
	prog := &pipeProg{n: 0}
	_, res := runProg(t, smallConfig(5, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
	if res.Committed != 0 || res.Misspecs != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWorkerMisspecRecovers(t *testing.T) {
	prog := &pipeProg{n: 30, misspecs: map[uint64]bool{11: true}}
	sys, res := runProg(t, smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
	if res.Misspecs != 1 {
		t.Fatalf("Misspecs = %d, want 1", res.Misspecs)
	}
	// 30 total commits: 29 via the pipeline + 1 sequential re-execution.
	if res.Committed != 30 {
		t.Fatalf("Committed = %d, want 30", res.Committed)
	}
	if res.ERM <= 0 || res.SEQ <= 0 {
		t.Fatalf("recovery phases not measured: %+v", res)
	}
	img := sys.CommitImage()
	for k := uint64(0); k < prog.n; k++ {
		if got := img.Load(prog.out + uva.Addr(k*8)); got != prog.expect(k) {
			t.Fatalf("out[%d] = %d after recovery, want %d", k, got, prog.expect(k))
		}
	}
}

func TestMisspecOnLastIteration(t *testing.T) {
	prog := &pipeProg{n: 20, misspecs: map[uint64]bool{19: true}}
	sys, res := runProg(t, smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
	if res.Misspecs != 1 || res.Committed != 20 {
		t.Fatalf("res = %+v", res)
	}
	img := sys.CommitImage()
	if got := img.Load(prog.out + uva.Addr(19*8)); got != prog.expect(19) {
		t.Fatalf("out[19] = %d, want %d", got, prog.expect(19))
	}
}

func TestMultipleMisspecs(t *testing.T) {
	prog := &pipeProg{n: 40, misspecs: map[uint64]bool{5: true, 17: true, 33: true}}
	sys, res := runProg(t, smallConfig(7, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
	if res.Misspecs != 3 || res.Committed != 40 {
		t.Fatalf("res = %+v", res)
	}
	img := sys.CommitImage()
	for k := uint64(0); k < prog.n; k++ {
		if got := img.Load(prog.out + uva.Addr(k*8)); got != prog.expect(k) {
			t.Fatalf("out[%d] = %d, want %d", k, got, prog.expect(k))
		}
	}
}

// doallProg exercises Spec-DOALL with real cross-iteration conflict
// detection: every iteration Reads a shared scale factor; iteration flip
// Writes it. Iterations after flip that ran ahead speculatively loaded the
// stale value and must be squashed by the try-commit unit.
type doallProg struct {
	n        uint64
	flip     uint64
	scale    uva.Addr
	out      uva.Addr
	seqIters int
}

func (p *doallProg) Setup(ctx *SeqCtx) {
	p.scale = ctx.AllocWords(1)
	p.out = ctx.AllocWords(int(p.n))
	ctx.Store(p.scale, 5)
}

func (p *doallProg) Stage(ctx *Ctx, _ int, iter uint64) bool {
	if iter >= p.n {
		return false
	}
	s := ctx.Read(p.scale)
	ctx.Compute(1500)
	ctx.Write(p.out+uva.Addr(iter*8), (iter+1)*s)
	if iter == p.flip {
		ctx.Write(p.scale, 9)
	}
	return true
}

func (p *doallProg) SeqIter(ctx *SeqCtx, iter uint64) {
	p.seqIters++
	s := ctx.Load(p.scale)
	ctx.Compute(1500)
	ctx.Store(p.out+uva.Addr(iter*8), (iter+1)*s)
	if iter == p.flip {
		ctx.Store(p.scale, 9)
	}
}

func (p *doallProg) expect(k uint64) uint64 {
	if k <= p.flip {
		return (k + 1) * 5
	}
	return (k + 1) * 9
}

func TestValueBasedConflictDetection(t *testing.T) {
	prog := &doallProg{n: 48, flip: 13}
	sys, res := runProg(t, smallConfig(8, pipeline.SpecDOALL()), prog)
	if res.Misspecs == 0 {
		t.Fatal("expected at least one value-based misspeculation")
	}
	if tcConflicts(sys) == 0 {
		t.Fatal("try-commit unit recorded no conflicts")
	}
	img := sys.CommitImage()
	for k := uint64(0); k < prog.n; k++ {
		if got := img.Load(prog.out + uva.Addr(k*8)); got != prog.expect(k) {
			t.Fatalf("out[%d] = %d, want %d (misspecs=%d seq=%d)",
				k, got, prog.expect(k), res.Misspecs, prog.seqIters)
		}
	}
	if got := img.Load(prog.scale); got != 9 {
		t.Fatalf("scale = %d, want 9", got)
	}
}

// tlsProg is a running sum parallelized TLS-style: the accumulator is a
// synchronized dependence forwarded worker-to-worker around the ring.
type tlsProg struct {
	n       uint64
	in, acc uva.Addr
}

func (p *tlsProg) Setup(ctx *SeqCtx) {
	p.in = ctx.AllocWords(int(p.n))
	p.acc = ctx.AllocWords(1)
	for k := uint64(0); k < p.n; k++ {
		ctx.Store(p.in+uva.Addr(k*8), k+7)
	}
}

func (p *tlsProg) Stage(ctx *Ctx, _ int, iter uint64) bool {
	if iter >= p.n {
		return false
	}
	var sum uint64
	if ctx.EpochFirst() {
		sum = ctx.Load(p.acc)
	} else {
		sum = ctx.SyncRecv()
	}
	ctx.Compute(1000)
	sum += ctx.Load(p.in + uva.Addr(iter*8))
	ctx.Write(p.acc, sum)
	ctx.SyncSend(sum)
	return true
}

func (p *tlsProg) SeqIter(ctx *SeqCtx, iter uint64) {
	sum := ctx.Load(p.acc)
	ctx.Compute(1000)
	sum += ctx.Load(p.in + uva.Addr(iter*8))
	ctx.Store(p.acc, sum)
}

func TestTLSSyncRing(t *testing.T) {
	prog := &tlsProg{n: 36}
	plan := pipeline.SpecDOALL()
	plan.Name = "TLS"
	plan.Sync = true
	sys, res := runProg(t, smallConfig(6, plan), prog)
	if res.Committed != 36 {
		t.Fatalf("Committed = %d", res.Committed)
	}
	var want uint64
	for k := uint64(0); k < prog.n; k++ {
		want += k + 7
	}
	if got := sys.CommitImage().Load(prog.acc); got != want {
		t.Fatalf("acc = %d, want %d", got, want)
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() Result {
		prog := &pipeProg{n: 25, misspecs: map[uint64]bool{9: true}}
		_, res := runProg(t, smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
		return res
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.Traffic != b.Traffic || a.Events != b.Events {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMoreCoresRunFaster(t *testing.T) {
	elapsed := func(cores int) float64 {
		prog := &pipeProg{n: 120}
		_, res := runProg(t, smallConfig(cores, pipeline.SpecDSWP("S", "DOALL", "S")), prog)
		return res.Elapsed.Seconds()
	}
	t4, t10 := elapsed(5), elapsed(11)
	if t10 >= t4 {
		t.Fatalf("11 cores (%.6fs) not faster than 5 cores (%.6fs)", t10, t4)
	}
}

func TestOccupancyRoutingCorrectness(t *testing.T) {
	prog := &pipeProg{n: 50}
	plan := pipeline.SpecDSWP("S", "DOALL", "S")
	plan.Occupancy = true
	sys, res := runProg(t, smallConfig(7, plan), prog)
	if res.Committed != 50 {
		t.Fatalf("Committed = %d", res.Committed)
	}
	img := sys.CommitImage()
	for k := uint64(0); k < prog.n; k++ {
		if got := img.Load(prog.out + uva.Addr(k*8)); got != prog.expect(k) {
			t.Fatalf("out[%d] = %d, want %d", k, got, prog.expect(k))
		}
	}
}

func TestConfigValidation(t *testing.T) {
	plan := pipeline.SpecDSWP("S", "DOALL", "S")
	if _, err := NewSystem(smallConfig(4, plan), &pipeProg{n: 1}, nil); err == nil {
		t.Error("4 cores (2 workers) accepted for a 3-stage plan")
	}
	big := smallConfig(6, plan)
	big.TotalCores = big.Cluster.Ranks() + 1
	if _, err := NewSystem(big, &pipeProg{n: 1}, nil); err == nil {
		t.Error("core count beyond machine accepted")
	}
	sync := pipeline.SpecDSWP("S", "DOALL", "S")
	sync.Sync = true
	if _, err := NewSystem(smallConfig(6, sync), &pipeProg{n: 1}, nil); err == nil {
		t.Error("sync ring on a multi-stage plan accepted")
	}
}

func TestCOATransfersPages(t *testing.T) {
	prog := &pipeProg{n: 20}
	cfg := smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S"))
	sys, _ := runProg(t, cfg, prog)
	faults := uint64(0)
	for _, w := range sys.workers {
		faults += w.img.Faults
	}
	if faults == 0 {
		t.Fatal("no Copy-On-Access faults despite workers reading committed data")
	}
}

// With cluster.DefaultConfig placement, adjacent pipeline stages sit on
// different nodes; the run must still complete with high latency.
func TestHighLatencyStillCorrect(t *testing.T) {
	prog := &pipeProg{n: 20}
	cfg := smallConfig(6, pipeline.SpecDSWP("S", "DOALL", "S"))
	cfg.Cluster.InterNodeLatency = 50 * 1000 // 50µs
	sys, res := runProg(t, cfg, prog)
	if res.Committed != 20 {
		t.Fatalf("Committed = %d", res.Committed)
	}
	img := sys.CommitImage()
	if got := img.Load(prog.out + uva.Addr(19*8)); got != prog.expect(19) {
		t.Fatalf("out[19] = %d", got)
	}
}

// tcConflicts sums conflicts over all try-commit shards.
func tcConflicts(sys *System) uint64 {
	var n uint64
	for _, tc := range sys.tcs {
		n += tc.Conflicts
	}
	return n
}
