package core

import (
	"fmt"

	"dsmtx/internal/mem"
	"dsmtx/internal/platform"
	"dsmtx/internal/sim"
	"dsmtx/internal/uva"
)

// RunSequential executes a program single-threaded on one simulated core
// (always in virtual time, regardless of Config.Backend — the reference
// cost model is the simulator's): Setup, then SeqIter for each of n
// iterations in order, then Finalize.
// This is the baseline all speedups are measured against — the original
// sequential program, with the same per-operation cost model and no runtime
// overheads.
//
// initial, if non-nil, seeds memory (for chaining invocations); the final
// image is returned alongside the elapsed virtual time.
func RunSequential(cfg Config, prog Program, n uint64, initial *mem.Image) (platform.Duration, *mem.Image, error) {
	kernel := sim.NewKernel()
	img := initial
	if img == nil {
		img = mem.NewImage(nil)
	}
	kernel.Spawn("sequential", func(p *sim.Proc) {
		ctx := &SeqCtx{cfg: cfg, proc: p, img: img, arena: uva.NewArena(0)}
		prog.Setup(ctx)
		committer, hasCommitter := prog.(Committer)
		for k := uint64(0); k < n; k++ {
			prog.SeqIter(ctx, k)
			if hasCommitter {
				committer.Commit(ctx, k)
			}
		}
		if f, ok := prog.(Finalizer); ok {
			f.Finalize(ctx)
		}
	})
	if err := kernel.Run(cfg.Horizon); err != nil {
		return 0, nil, fmt.Errorf("core: sequential run: %w", err)
	}
	return kernel.Now(), img, nil
}
