package core

import (
	"fmt"
	"math"

	"dsmtx/internal/mem"
	"dsmtx/internal/uva"
)

func bitsOf(f float64) uint64  { return math.Float64bits(f) }
func floatOf(b uint64) float64 { return math.Float64frombits(b) }

// misspecSignal unwinds a stage body when it detects misspeculation.
type misspecSignal struct{}

// Ctx is the worker-side API a Program's stage code runs against — the Go
// rendering of the Table 1 worker operations. All addresses are unified
// virtual addresses, valid identically on every node.
//
// Memory discipline: Load/Store touch only this worker's private versioned
// memory (Copy-On-Access faults pull committed pages on first touch).
// Read additionally forwards the observed value to the try-commit unit for
// validation — use it for loads whose cross-iteration independence is
// speculated. Write additionally forwards the store down the pipeline and
// to the try-commit and commit units — every store whose effect must
// survive the loop (or be seen by later stages) must use Write/WriteTo,
// or it will be lost at commit time.
type Ctx struct {
	w    *workerNode
	iter uint64
}

// Iter reports the loop iteration (MTX) this subTX belongs to.
func (c *Ctx) Iter() uint64 { return c.iter }

// Stage reports the pipeline stage this worker executes.
func (c *Ctx) Stage() int { return c.w.stage }

// PoolIndex reports this worker's index within its stage's pool.
func (c *Ctx) PoolIndex() int { return c.w.poolIdx }

// PoolSize reports the number of workers in this worker's stage.
func (c *Ctx) PoolSize() int { return len(c.w.sys.layout.Assign[c.w.stage]) }

// EpochFirst reports whether this is the first iteration executed after the
// start of the loop or after a recovery — i.e. there is no in-flight
// predecessor iteration, so synchronized values must be read from committed
// memory rather than received.
func (c *Ctx) EpochFirst() bool { return c.iter == c.w.epochBase }

// Compute charges n instructions of computation to this worker.
func (c *Ctx) Compute(n int64) { c.w.proc.Advance(c.w.sys.instrTime(n)) }

// Load reads a word from private memory (COA on first touch of a page).
func (c *Ctx) Load(addr uva.Addr) uint64 {
	c.Compute(c.w.sys.cfg.LoadInstr)
	return c.w.img.Load(addr)
}

// Store writes a word to private memory only. The value is *not* forwarded:
// use it for thread-local scratch whose value never needs to commit.
func (c *Ctx) Store(addr uva.Addr, v uint64) {
	c.Compute(c.w.sys.cfg.StoreInstr)
	c.w.img.Store(addr, v)
}

// Read performs a speculative load: the loaded value is forwarded to the
// try-commit unit, which validates it against the committed state when this
// MTX tries to commit (the unified value prediction/checking of §3.1).
func (c *Ctx) Read(addr uva.Addr) uint64 {
	v := c.Load(addr)
	c.w.tcPort(addr).Produce(Entry{Kind: entRead, MTX: c.iter, Addr: addr, Val: v})
	return v
}

// Write performs a speculative store, forwarding it to every later pipeline
// stage of this MTX and to the try-commit and commit units (mtx_writeAll).
func (c *Ctx) Write(addr uva.Addr, v uint64) {
	c.Store(addr, v)
	e := Entry{Kind: entWrite, MTX: c.iter, Addr: addr, Val: v}
	for _, dstStage := range c.w.outStages {
		c.w.edgeOut[dstStage][c.w.routeFor(dstStage, c.iter)].Produce(e)
	}
	c.w.tcPort(addr).Produce(e)
	c.w.cuWrite(e)
}

// WriteTo performs a speculative store forwarded only to the worker
// executing stage dstStage of this MTX, plus the try-commit and commit
// units (a value needed by one consumer; mtx_writeTo).
func (c *Ctx) WriteTo(dstStage int, addr uva.Addr, v uint64) {
	c.Store(addr, v)
	e := Entry{Kind: entWrite, MTX: c.iter, Addr: addr, Val: v}
	ports, ok := c.w.edgeOut[dstStage]
	if !ok {
		panic(fmt.Sprintf("core: WriteTo(%d) from stage %d: no such edge", dstStage, c.w.stage))
	}
	ports[c.w.routeFor(dstStage, c.iter)].Produce(e)
	c.w.tcPort(addr).Produce(e)
	c.w.cuWrite(e)
}

// WriteCommit performs a speculative store forwarded only to the commit
// unit (mtx_writeTo targeting the commit process): for output-only data no
// later subTX or speculative load ever observes, skipping the pipeline and
// validation streams.
func (c *Ctx) WriteCommit(addr uva.Addr, v uint64) {
	c.Store(addr, v)
	c.w.cuWrite(Entry{Kind: entWrite, MTX: c.iter, Addr: addr, Val: v})
}

// WriteBytesCommit is the bulk form of WriteCommit.
func (c *Ctx) WriteBytesCommit(addr uva.Addr, b []byte) {
	c.StoreBytes(addr, b)
	c.w.cuWriteBlk(Entry{Kind: entWriteBlk, MTX: c.iter, Addr: addr, Payload: b, Bytes: len(b)})
}

// WriteFloatCommit is WriteCommit for float64 words.
func (c *Ctx) WriteFloatCommit(addr uva.Addr, v float64) { c.WriteCommit(addr, bitsOf(v)) }

// ReadFloat is Read for float64 words.
func (c *Ctx) ReadFloat(addr uva.Addr) float64 { return floatOf(c.Read(addr)) }

// WriteFloat is Write for float64 words.
func (c *Ctx) WriteFloat(addr uva.Addr, v float64) { c.Write(addr, bitsOf(v)) }

// LoadFloat is Load for float64 words.
func (c *Ctx) LoadFloat(addr uva.Addr) float64 { return floatOf(c.Load(addr)) }

// StoreFloat is Store for float64 words.
func (c *Ctx) StoreFloat(addr uva.Addr, v float64) { c.Store(addr, bitsOf(v)) }

// bulkCost charges block-transfer CPU time.
func (c *Ctx) bulkCost(n int) {
	c.w.proc.Advance(c.w.sys.instrTime(int64(float64(n) * c.w.sys.cfg.BulkInstrPerByte)))
}

// LoadBytes reads n bytes from private memory (COA faults page by page).
// Non-speculative: the block's independence must be guaranteed, e.g. by
// memory versioning.
func (c *Ctx) LoadBytes(addr uva.Addr, n int) []byte {
	c.bulkCost(n)
	return c.w.img.LoadBytes(addr, n)
}

// StoreBytes writes a block to private memory only.
func (c *Ctx) StoreBytes(addr uva.Addr, b []byte) {
	c.bulkCost(len(b))
	c.w.img.StoreBytes(addr, b)
}

// ReadBytes performs a bulk speculative read: the block's checksum is
// forwarded to the try-commit unit, which validates it against the
// committed bytes when this MTX tries to commit.
func (c *Ctx) ReadBytes(addr uva.Addr, n int) []byte {
	b := c.LoadBytes(addr, n)
	// Bulk reads split at shard boundaries so each try-commit shard can
	// validate its own address partition.
	c.w.forEachShardRange(addr, n, func(a uva.Addr, off, ln int) {
		c.w.tcPort(a).Produce(Entry{Kind: entReadBlk, MTX: c.iter, Addr: a,
			Val: mem.ChecksumBytes(b[off : off+ln]), Bytes: ln})
	})
	return b
}

// WriteBytes performs a bulk speculative store, forwarded like Write to
// every later stage and the try-commit and commit units.
func (c *Ctx) WriteBytes(addr uva.Addr, b []byte) {
	c.StoreBytes(addr, b)
	e := Entry{Kind: entWriteBlk, MTX: c.iter, Addr: addr, Payload: b, Bytes: len(b)}
	for _, dstStage := range c.w.outStages {
		c.w.edgeOut[dstStage][c.w.routeFor(dstStage, c.iter)].Produce(e)
	}
	c.w.forEachShardRange(addr, len(b), func(a uva.Addr, off, ln int) {
		c.w.tcPort(a).Produce(Entry{Kind: entWriteBlk, MTX: c.iter, Addr: a,
			Payload: b[off : off+ln], Bytes: ln})
	})
	c.w.cuWriteBlk(e)
}

// Produce enqueues a word of pipeline dataflow for stage dstStage of this
// MTX (mtx_produce). The consumer retrieves it with Consume in the same
// order.
func (c *Ctx) Produce(dstStage int, v uint64) {
	ports, ok := c.w.edgeOut[dstStage]
	if !ok {
		panic(fmt.Sprintf("core: Produce(%d) from stage %d: no such edge", dstStage, c.w.stage))
	}
	ports[c.w.routeFor(dstStage, c.iter)].Produce(Entry{Kind: entData, MTX: c.iter, Val: v})
}

// ProduceData enqueues bulk application data (e.g. an input block) with a
// modelled wire size of bytes.
func (c *Ctx) ProduceData(dstStage int, payload any, bytes int) {
	ports, ok := c.w.edgeOut[dstStage]
	if !ok {
		panic(fmt.Sprintf("core: ProduceData(%d) from stage %d: no such edge", dstStage, c.w.stage))
	}
	ports[c.w.routeFor(dstStage, c.iter)].Produce(
		Entry{Kind: entData, MTX: c.iter, Payload: payload, Bytes: bytes})
}

// Consume dequeues the next word produced for this subTX by stage
// fromStage. All of the producing subTX's data is available once this subTX
// starts; consuming more than was produced is a protocol violation.
func (c *Ctx) Consume(fromStage int) uint64 {
	return c.take(fromStage).Val
}

// ConsumeData dequeues the next bulk datum produced for this subTX.
func (c *Ctx) ConsumeData(fromStage int) any {
	return c.take(fromStage).Payload
}

func (c *Ctx) take(fromStage int) Entry {
	box := c.w.inbox[fromStage]
	if len(box) == 0 {
		panic(fmt.Sprintf("core: stage %d consumed more than stage %d produced in MTX %d",
			c.w.stage, fromStage, c.iter))
	}
	e := box[0]
	c.w.inbox[fromStage] = box[1:]
	return e
}

// SyncSend forwards a synchronized (non-speculated) cross-iteration value to
// the worker executing the next iteration, flushing immediately: this is
// the cyclic TLS/DOACROSS communication whose latency sits on the critical
// path.
func (c *Ctx) SyncSend(v uint64) {
	if c.w.syncOut == nil {
		panic("core: SyncSend without a sync ring (Plan.Sync)")
	}
	c.w.syncOut.Produce(Entry{Kind: entData, MTX: c.iter, Val: v})
	c.w.syncOut.Flush()
}

// SyncRecv blocks until the previous iteration's SyncSend value arrives.
func (c *Ctx) SyncRecv() uint64 {
	if c.w.syncIn == nil {
		panic("core: SyncRecv without a sync ring (Plan.Sync)")
	}
	// About to block mid-iteration: anything this worker has batched for
	// the try-commit/commit units must go out first, or a misspeculation
	// upstream of the ring could never be detected.
	c.w.flushMarkers()
	for {
		e := c.w.consumeNext(c.w.syncIn)
		if e.Kind == entData {
			return e.Val
		}
	}
}

// SyncSendVec forwards a vector of synchronized values to the next
// iteration in one flush — how TLS forwards a whole synchronized structure
// (e.g. a histogram) worker-to-worker.
func (c *Ctx) SyncSendVec(vals []uint64) {
	if c.w.syncOut == nil {
		panic("core: SyncSendVec without a sync ring (Plan.Sync)")
	}
	for _, v := range vals {
		c.w.syncOut.Produce(Entry{Kind: entData, MTX: c.iter, Val: v})
	}
	c.w.syncOut.Flush()
}

// SyncRecvVec receives n synchronized values from the previous iteration.
func (c *Ctx) SyncRecvVec(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = c.SyncRecv()
	}
	return out
}

// SyncSendFloat and SyncRecvFloat are float64 variants.
func (c *Ctx) SyncSendFloat(v float64) { c.SyncSend(bitsOf(v)) }

// SyncRecvFloat receives a synchronized float64.
func (c *Ctx) SyncRecvFloat() float64 { return floatOf(c.SyncRecv()) }

// Misspec declares that this MTX misspeculated (mtx_misspec): the stage body
// is abandoned, the misspeculation propagates to the commit unit, and
// recovery will re-execute the iteration sequentially.
func (c *Ctx) Misspec() {
	panic(misspecSignal{})
}

// Alloc allocates n bytes from this worker's own UVA region. Allocations
// are speculative: they are discarded on recovery.
func (c *Ctx) Alloc(n int64) uva.Addr { return c.w.arena.Alloc(n) }

// AllocWords allocates n words from this worker's region.
func (c *Ctx) AllocWords(n int) uva.Addr { return c.w.arena.AllocWords(n) }

// Free releases an allocation made by this worker.
func (c *Ctx) Free(addr uva.Addr) { c.w.arena.Free(addr) }
