package core

import (
	"fmt"
	"sort"

	"dsmtx/internal/faults"
	"dsmtx/internal/mem"
	"dsmtx/internal/mpi"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/platform"
	"dsmtx/internal/queue"
	"dsmtx/internal/trace"
	"dsmtx/internal/uva"
)

// workerNode is one worker process: it executes its pipeline stage's subTXs
// iteration after iteration in its own private memory, forwarding
// speculative state over queues.
type workerNode struct {
	sys     *System
	tid     int
	rank    int
	stage   int
	poolIdx int
	proc    platform.Proc
	comm    *mpi.Comm
	ctrlBox platform.Mailbox // cached (commit rank, tagCtrl) mailbox
	img     *mem.Image
	arena   *uva.Arena

	outStages []int                                  // sorted destination stages
	edgeOut   map[int]map[int]*queue.SendPort[Entry] // dstStage -> dstTid -> port
	inStages  []int                                  // sorted source stages
	edgeIn    map[int]map[int]*entryCursor           // fromStage -> srcTid -> cursor
	toTC      []*queue.SendPort[Entry]               // per try-commit shard
	toCU      []*queue.SendPort[Entry]               // per commit shard
	syncOut   *queue.SendPort[Entry]
	syncIn    *entryCursor

	// Per-iteration commit-shard write tracking (CommitShards > 1 only):
	// cuMask is the set of shards this subTX wrote, cuMin the lowest written
	// address; both ride out on the EndSub marker so every commit shard can
	// derive the cross-shard coordinator.
	cuMask uint64
	cuMin  uva.Addr

	inbox map[int][]Entry // fromStage -> data entries buffered for current iter

	// Feeder-side dynamic routing (this worker feeds the routed stage).
	feedsRouted bool
	routedPool  []int
	outstanding []int
	rrNext      int
	curRoute    int

	// Consumer-side routes for the routed stage (route-sink workers).
	routesIn map[uint64]int // iter -> srcTid

	coa        coaClient
	pollTime   platform.Duration
	sinceFlush int

	// Stall attribution: pollTime split by cause, plus recovery-window
	// accounting (wall time, and the advanced/blocked shares inside it).
	stallStarve platform.Duration // consumeNext polling an empty upstream queue
	stallBack   platform.Duration // occupancy-routing waits (downstream saturated)
	recWall     platform.Duration
	recAdv      platform.Duration
	recBlk      platform.Duration

	// Crash-fault machinery, active only when the plan schedules crashes
	// (sys.hbOn): crashes is this rank's sorted schedule with crashIdx the
	// next entry to fire; pendingCrash is set by the crash checkpoint and
	// consumed by doCrash. crashWall is the crash window (downtime + rejoin
	// wait) for stall attribution, with crashAdv/crashBlk its
	// advanced/blocked shares.
	crashes      []faults.Crash
	crashIdx     int
	pendingCrash *faults.Crash
	crashWall    platform.Duration
	crashAdv     platform.Duration
	crashBlk     platform.Duration

	epoch       uint64
	epochBase   uint64 // first iteration of the current epoch
	nextIter    uint64
	curIter     uint64
	poisoned    bool
	selfMisspec bool
	pendingCtrl *ctrlMsg
}

func newWorkerNode(s *System, tid int) *workerNode {
	return &workerNode{
		sys:      s,
		tid:      tid,
		rank:     tid,
		stage:    s.layout.StageOf(tid),
		poolIdx:  s.layout.PoolIndex(tid),
		edgeOut:  make(map[int]map[int]*queue.SendPort[Entry]),
		edgeIn:   make(map[int]map[int]*entryCursor),
		inbox:    make(map[int][]Entry),
		routesIn: make(map[uint64]int),
	}
}

func (w *workerNode) run(p platform.Proc) {
	w.proc = p
	w.comm = w.sys.world.Attach(w.rank, p)
	w.comm.SetTracer(w.sys.tr, w.rank)
	w.bind()
	w.comm.Recv(w.sys.cfg.commitRank(), tagStart) // Setup must finish first
	if w.sys.hbOn {
		w.crashes = w.sys.inj.CrashesFor(w.rank)
	}
	for {
		if w.epochLoop() {
			// Loop exit emitted — but the commit unit may still detect a
			// misspeculation in an earlier, uncommitted iteration and
			// rewind us. Park until its final verdict.
			if w.awaitDoneOrRecovery() {
				return
			}
		}
		if w.pendingCrash != nil {
			if w.doCrash() {
				return // the loop completed while this worker was down
			}
			// doCrash left pendingCtrl set: re-integrate below.
		}
		w.doRecovery()
	}
}

// awaitDoneOrRecovery blocks a terminated worker until the commit unit
// either confirms completion (true) or orders a recovery (false, with
// pendingCtrl set). The host heartbeat daemon keeps beating while the
// worker is parked here, so a terminated rank never reads as dead.
func (w *workerNode) awaitDoneOrRecovery() bool {
	src := w.sys.ctrlSrc()
	for {
		msg := w.comm.Recv(src, tagCtrl)
		cm := msg.Payload.(ctrlMsg)
		if cm.done {
			return true
		}
		if cm.epoch > w.epoch {
			w.pendingCtrl = &cm
			return false
		}
	}
}

// bind registers mailboxes and attaches queue ports; it runs before any
// traffic flows (all processes bind at virtual time zero).
func (w *workerNode) bind() {
	ep := w.comm.Endpoint()
	w.ctrlBox = ep.Mailbox(w.sys.ctrlSrc(), tagCtrl)
	ep.Mailbox(w.sys.pageReplySrc(), tagPageReply)
	w.comm.RegisterBarrierMailboxes()

	w.img = mem.NewImage(w.coaFault)
	// Worker pages are private Copy-On-Access clones; recovery's wholesale
	// discard can recycle the frames.
	w.img.ReleaseOnReset(true)
	w.img.Instrument(w.sys.tr.Metrics())
	w.arena = uva.NewArena(w.tid + 1)

	for key, q := range w.sys.edgeQ {
		src, dst := key[0], key[1]
		switch {
		case src == w.tid:
			dstStage := w.sys.layout.StageOf(dst)
			if w.edgeOut[dstStage] == nil {
				w.edgeOut[dstStage] = make(map[int]*queue.SendPort[Entry])
				w.outStages = append(w.outStages, dstStage)
			}
			w.edgeOut[dstStage][dst] = q.Sender(w.comm)
		case dst == w.tid:
			fromStage := w.sys.layout.StageOf(src)
			if w.edgeIn[fromStage] == nil {
				w.edgeIn[fromStage] = make(map[int]*entryCursor)
				w.inStages = append(w.inStages, fromStage)
			}
			w.edgeIn[fromStage][src] = newEntryCursor(q.Receiver(w.comm))
		}
	}
	sort.Ints(w.outStages)
	sort.Ints(w.inStages)

	for j := 0; j < w.sys.cfg.tcUnits(); j++ {
		w.toTC = append(w.toTC, w.sys.toTCQ[w.tid][j].Sender(w.comm))
	}
	for k := 0; k < w.sys.cfg.commitShards(); k++ {
		w.toCU = append(w.toCU, w.sys.toCUQ[w.tid][k].Sender(w.comm))
	}

	if w.sys.cfg.Plan.Sync {
		w.syncOut = w.sys.syncQ[w.tid].Sender(w.comm)
		w.syncIn = newEntryCursor(w.sys.syncQ[w.sys.prevPool(w.tid)].Receiver(w.comm))
	}
	if w.sys.routedStage >= 0 && w.stage == w.sys.routedStage-1 {
		w.feedsRouted = true
		w.routedPool = w.sys.layout.Assign[w.sys.routedStage]
		w.outstanding = make([]int, len(w.routedPool))
		if w.sys.cfg.Plan.Occupancy {
			ep.Mailbox(platform.AnySource, tagOccAck)
		}
	}
}

// coaFault implements Copy-On-Access: the first touch of a protected page
// requests a run of pages from the page server — the paper's constructive
// prefetching (a word request returns its whole page), extended with a
// read-ahead ramp over sequential fault streams.
func (w *workerNode) coaFault(id uva.PageID) *mem.Page {
	return w.coa.fetch(w.sys, w.comm, w.img, id)
}

// coaClient ramps read-ahead like an OS page cache: a fault adjacent to the
// previous fetched run doubles the window (up to COAPrefetch); a random
// fault resets to a single page, so scattered access wastes no bandwidth.
type coaClient struct {
	nextSeq uva.PageID
	window  int
}

func (c *coaClient) fetch(sys *System, comm *mpi.Comm, img *mem.Image, id uva.PageID) *mem.Page {
	cfg := sys.cfg
	spanStart := sys.tr.Now()
	comm.Proc().Advance(sys.instrTime(cfg.PageFaultInstr))
	// Requests go to the page-server shard owning the faulted page; replies
	// all come back on tagPageReply (one outstanding request per worker, so
	// shard replies never interleave). Under a sharded commit pipeline the
	// server is the owner shard's commit rank, reached on the base request
	// tag — ownership picks a rank, not a tag.
	dst := cfg.commitRank()
	reqTag := cfg.pageReqTag(cfg.pageShardOf(id))
	replySrc := dst
	if cfg.commitShards() > 1 {
		dst = cfg.commitShardRank(sys.ownerOf(id))
		reqTag = tagPageReq
		replySrc = platform.AnySource
	}
	if g := cfg.COAGrainBytes; g > 0 && g < uva.PageSize {
		// Sub-page COA: populate the faulted page one chunk at a time,
		// paying a full round trip per chunk — the cost §4.2 avoids by
		// transferring whole pages.
		ep := comm.Endpoint()
		var pg *mem.Page
		wire := 0
		for off := 0; off < uva.PageSize; off += g {
			ep.SendClass(dst, reqTag, pageReq{Start: id, Count: 1, Grain: g}, 24, platform.ClassPage)
			msg := ep.Recv(comm.Proc(), replySrc, tagPageReply)
			pg = msg.Payload.([]*mem.Page)[0]
			wire += msg.Bytes
		}
		sys.tr.Span(trace.SpanCOA, comm.Rank(), spanStart, uint64(id), 1, int64(wire))
		return pg
	}
	if id == c.nextSeq && c.window > 0 {
		c.window *= 2
		if c.window > cfg.COAPrefetch {
			c.window = cfg.COAPrefetch
		}
	} else {
		c.window = 1
	}
	// A bulk access declares exactly how far it reaches; fetch that run in
	// one round trip instead of ramping up to it.
	want := c.window
	if hint := img.AccessHint(); hint > id {
		if need := int(hint - id); need > want {
			want = need
		}
		if want > cfg.COAPrefetch {
			want = cfg.COAPrefetch
		}
	}
	count := 1
	owner := uva.PageAddr(id).Owner()
	shard := cfg.pageShardOf(id)
	for count < want {
		next := id + uva.PageID(count)
		// A prefetch run must stay within one owner region and one page-
		// server shard (each shard serves only its own partition); the
		// 64-page interleave blocks make shard truncation rare. Commit-shard
		// ownership bounds the run the same way: each commit shard's server
		// holds only its own partition's snapshot.
		if uva.PageAddr(next).Owner() != owner || cfg.pageShardOf(next) != shard || img.Has(next) {
			break
		}
		if cfg.commitShards() > 1 && sys.ownerOf(next) != sys.ownerOf(id) {
			break
		}
		count++
	}
	c.nextSeq = id + uva.PageID(count)
	// Page transfers use RDMA-style zero-copy (the paper's platform is
	// InfiniBand): a fixed per-operation CPU cost, wire time on the NIC,
	// and no per-byte marshalling.
	ep := comm.Endpoint()
	ep.SendClass(dst, reqTag, pageReq{Start: id, Count: count}, 24, platform.ClassPage)
	msg := ep.Recv(comm.Proc(), replySrc, tagPageReply)
	pages := msg.Payload.([]*mem.Page)
	for i := 1; i < len(pages); i++ {
		img.InstallPage(id+uva.PageID(i), pages[i])
	}
	sys.tr.Span(trace.SpanCOA, comm.Rank(), spanStart, uint64(id), int64(count), int64(msg.Bytes))
	return pages[0]
}

// epochLoop runs iterations until loop termination (true) or until a
// recovery broadcast unwinds it (false).
func (w *workerNode) epochLoop() (terminated bool) {
	recovered := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(recoverySignal); ok {
					recovered = true
					return
				}
				panic(r)
			}
		}()
		terminated = w.stageLoop()
	}()
	if recovered {
		return false
	}
	return terminated
}

func (w *workerNode) stageLoop() bool {
	first := len(w.inStages) == 0
	kind := w.sys.cfg.Plan.Stages[w.stage].Kind
	for {
		w.checkCtrl()
		var iter uint64
		switch {
		case first && kind == pipeline.Sequential:
			iter = w.nextIter
		case first: // self-scheduled parallel first stage (Spec-DOALL, TLS)
			iter = w.nextAssigned()
		default:
			it, term := w.refresh()
			if term {
				w.emitTerminate()
				return true
			}
			iter = it
		}
		w.curIter = iter
		if w.feedsRouted {
			w.chooseRoute(iter)
		}
		subTXStart := w.proc.Now()
		spanStart := w.sys.tr.Now()
		ok := true
		if !w.poisoned {
			ok = w.runStage(iter)
		}
		if first && !ok {
			w.emitTerminate()
			return true
		}
		w.endIter(iter)
		w.sys.trace(TraceEvent{Kind: TraceSubTX, MTX: iter, Stage: w.stage,
			Tid: w.tid, Start: subTXStart, End: w.proc.Now()})
		w.sys.tr.Span(trace.SpanSubTX, w.rank, spanStart, iter, int64(w.stage), 0)
		w.nextIter = iter + 1
		w.poisoned = false
		w.selfMisspec = false
	}
}

// nextAssigned reports the smallest iteration >= nextIter this worker owns
// under round-robin self-scheduling.
func (w *workerNode) nextAssigned() uint64 {
	pool := uint64(len(w.sys.layout.Assign[w.stage]))
	k := w.nextIter
	want := uint64(w.poolIdx)
	if rem := k % pool; rem != want {
		k += (want - rem + pool) % pool
	}
	return k
}

// runStage executes the program's stage body, converting Ctx.Misspec
// unwinding into the poisoned state.
func (w *workerNode) runStage(iter uint64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isMiss := r.(misspecSignal); isMiss {
				w.poisoned = true
				w.selfMisspec = true
				ok = true
				return
			}
			panic(r)
		}
	}()
	return w.sys.prog.Stage(&Ctx{w: w, iter: iter}, w.stage, iter)
}

// refresh consumes the predecessor subTX(s) of the next iteration: it
// applies forwarded uncommitted stores to private memory, buffers pipeline
// data for Consume, and learns the iteration number (mtx_begin's "updating
// memory with stores in this MTX by earlier subTXs").
func (w *workerNode) refresh() (iter uint64, term bool) {
	for k := range w.inbox {
		delete(w.inbox, k)
	}
	if w.sys.cfg.Plan.Stages[w.stage].Kind == pipeline.Parallel {
		// A fed parallel stage has exactly one inbound edge; the next
		// EndSub marker names the iteration routed to this worker.
		fromStage := w.inStages[0]
		var port *entryCursor
		for _, p := range w.edgeIn[fromStage] {
			port = p
		}
		return w.drainSub(port, fromStage, nil)
	}
	// Sequential stage: iteration nextIter, one subTX per inbound edge in
	// stage order (route records on earlier edges resolve later ones).
	iter = w.nextIter
	for _, fromStage := range w.inStages {
		srcTid := w.inboundRoute(fromStage, iter)
		port := w.edgeIn[fromStage][srcTid]
		if _, t := w.drainSub(port, fromStage, &iter); t {
			return 0, true
		}
	}
	return iter, false
}

// drainSub consumes one subTX worth of entries from port. If expect is
// non-nil the EndSub must match *expect; otherwise the EndSub's iteration is
// returned.
func (w *workerNode) drainSub(port *entryCursor, fromStage int, expect *uint64) (iter uint64, term bool) {
	for {
		e := w.consumeNext(port)
		switch e.Kind {
		case entWrite:
			w.img.Store(e.Addr, e.Val)
		case entWriteBlk:
			w.img.StoreBytes(e.Addr, e.Payload.([]byte))
		case entData:
			w.inbox[fromStage] = append(w.inbox[fromStage], e)
		case entRoute:
			w.routesIn[e.MTX] = w.sys.layout.Assign[w.sys.routedStage][e.Val]
		case entMisspec:
			w.poisoned = true
		case entEndSub:
			if expect != nil && e.MTX != *expect {
				panic(fmt.Sprintf("core: worker %d expected EndSub %d from stage %d, got %d",
					w.tid, *expect, fromStage, e.MTX))
			}
			return e.MTX, false
		case entTerminate:
			return 0, true
		default:
			panic(fmt.Sprintf("core: worker %d: unexpected %v entry in forward stream", w.tid, e.Kind))
		}
	}
}

// inboundRoute resolves which worker executed stage fromStage of iteration
// iter.
func (w *workerNode) inboundRoute(fromStage int, iter uint64) int {
	if fromStage == w.sys.routedStage {
		tid, ok := w.routesIn[iter]
		if !ok {
			panic(fmt.Sprintf("core: worker %d has no route record for MTX %d", w.tid, iter))
		}
		delete(w.routesIn, iter)
		return tid
	}
	return w.sys.layout.WorkerOf(fromStage, iter)
}

// routeFor resolves the destination worker for an outbound edge of the
// current iteration.
func (w *workerNode) routeFor(dstStage int, iter uint64) int {
	if dstStage == w.sys.routedStage {
		if !w.feedsRouted {
			panic("core: only the feeder stage may target the routed stage")
		}
		return w.routedPool[w.curRoute]
	}
	return w.sys.layout.WorkerOf(dstStage, iter)
}

// chooseRoute picks the routed-stage worker for an iteration — round-robin,
// or least-outstanding-work when occupancy routing is on (179.art) — and
// publishes the decision to the try-commit unit, the commit unit, and the
// downstream sequential stage.
func (w *workerNode) chooseRoute(iter uint64) {
	if w.sys.cfg.Plan.Occupancy {
		// Dispatch to the least-loaded worker, bounded: when every pool
		// member already holds OccWindow outstanding iterations, wait for
		// a completion ack — the backpressure a bounded queue gives the
		// paper's occupancy-based distributor.
		backoff := w.sys.cfg.PollMin
		for {
			for {
				msg, ok := w.comm.TryRecv(platform.AnySource, tagOccAck)
				if !ok {
					break
				}
				for i, tid := range w.routedPool {
					if tid == msg.From {
						w.outstanding[i]--
					}
				}
			}
			best := w.rrNext % len(w.routedPool)
			for off := 0; off < len(w.routedPool); off++ {
				i := (w.rrNext + off) % len(w.routedPool)
				if w.outstanding[i] < w.outstanding[best] {
					best = i
				}
			}
			if w.outstanding[best] < w.sys.cfg.OccWindow {
				w.curRoute = best
				break
			}
			w.flushMarkers()
			w.checkCtrl()
			w.proc.Advance(backoff)
			w.pollTime += backoff
			w.stallBack += backoff
			if backoff < w.sys.cfg.PollMax {
				backoff *= 2
			}
		}
	} else {
		w.curRoute = w.rrNext % len(w.routedPool)
	}
	w.rrNext = (w.curRoute + 1) % len(w.routedPool)
	w.outstanding[w.curRoute]++

	e := Entry{Kind: entRoute, MTX: iter, Val: uint64(w.curRoute)}
	w.tcBroadcast(e)
	w.cuBroadcast(e)
	if w.sys.routeSink >= 0 {
		w.edgeOut[w.sys.routeSink][w.sys.layout.Assign[w.sys.routeSink][0]].Produce(e)
	}
}

// endIter closes this worker's subTX: misspeculation markers (if any), the
// EndSub marker on every outbound stream, and an explicit flush so
// uncommitted values reach later subTXs promptly (mtx_end).
func (w *workerNode) endIter(iter uint64) {
	if w.poisoned || w.selfMisspec {
		w.sys.tr.Instant(trace.InstMisspec, w.rank, iter, 0, 0)
		miss := Entry{Kind: entMisspec, MTX: iter}
		for _, dstStage := range w.outStages {
			w.edgeOut[dstStage][w.routeFor(dstStage, iter)].Produce(miss)
		}
		w.tcBroadcast(miss)
		w.cuBroadcast(miss)
	}
	end := Entry{Kind: entEndSub, MTX: iter}
	if len(w.toCU) > 1 {
		// The marker carries this subTX's write-owner mask and lowest
		// written address (same wire size — markers never carry a payload);
		// every commit shard folds these into the MTX's coordinator choice.
		end.Addr, end.Val = w.cuMin, w.cuMask
	}
	for _, dstStage := range w.outStages {
		port := w.edgeOut[dstStage][w.routeFor(dstStage, iter)]
		port.Produce(end)
		port.Flush() // pipeline edges flush every subTX: consumers block on them
	}
	w.tcBroadcast(end)
	w.cuBroadcast(end)
	w.cuMask, w.cuMin = 0, 0
	// Validation/commit streams batch across iterations; misspeculation
	// flushes immediately so recovery is not delayed by batching.
	w.sinceFlush++
	if w.sinceFlush >= w.sys.cfg.MarkerFlushIters || w.poisoned || w.selfMisspec {
		w.flushMarkers()
	}
	if w.sys.cfg.Plan.Occupancy && w.stage == w.sys.routedStage {
		feeder := w.sys.layout.Assign[w.stage-1][0]
		w.comm.Send(feeder, tagOccAck, iter, 16)
	}
}

// emitTerminate broadcasts loop termination on every outbound stream.
func (w *workerNode) emitTerminate() {
	t := Entry{Kind: entTerminate, MTX: w.curIter}
	for _, dstStage := range w.outStages {
		// Iterate destinations in layout order, not map order: each send
		// serializes on the NIC, so a nondeterministic broadcast order
		// would perturb downstream virtual time.
		for _, dst := range w.sys.layout.Assign[dstStage] {
			port := w.edgeOut[dstStage][dst]
			port.Produce(t)
			port.Flush()
		}
	}
	w.tcBroadcast(t)
	w.cuBroadcast(t)
	w.flushMarkers()
}

// flushMarkers forces any batched validation/commit stream out. It MUST be
// called before a worker blocks mid-iteration (SyncRecv, occupancy waits):
// otherwise its completed subTX markers sit in the batch, the commit unit
// cannot advance past them, and a misspeculation that would unblock the
// ring is never detected — a deadlock.
func (w *workerNode) flushMarkers() {
	for _, port := range w.toTC {
		port.Flush()
	}
	for _, port := range w.toCU {
		port.Flush()
	}
	w.sinceFlush = 0
}

// tcPort routes a speculative access to the try-commit shard owning its
// address.
func (w *workerNode) tcPort(addr uva.Addr) *queue.SendPort[Entry] {
	return w.toTC[w.sys.cfg.tcShardOf(addr)]
}

// tcBroadcast sends a marker entry to every try-commit shard (each shard
// frames MTXs independently).
func (w *workerNode) tcBroadcast(e Entry) {
	for _, port := range w.toTC {
		port.Produce(e)
	}
}

// cuBroadcast sends a marker entry to every commit shard: each shard
// consumes the full marker stream so commit decisions replicate without
// communication.
func (w *workerNode) cuBroadcast(e Entry) {
	for _, port := range w.toCU {
		port.Produce(e)
	}
}

// cuWrite routes a committed-store entry to the commit shard owning its
// address, folding the destination into the subTX's write-owner mask.
func (w *workerNode) cuWrite(e Entry) {
	if len(w.toCU) == 1 {
		w.toCU[0].Produce(e)
		return
	}
	k := w.sys.ownerOf(e.Addr.Page())
	if w.cuMask == 0 || e.Addr < w.cuMin {
		w.cuMin = e.Addr
	}
	w.cuMask |= 1 << uint(k)
	w.toCU[k].Produce(e)
}

// cuWriteBlk routes a bulk store, splitting it at commit-shard ownership
// boundaries so each segment lands on its owner.
func (w *workerNode) cuWriteBlk(e Entry) {
	if len(w.toCU) == 1 {
		w.toCU[0].Produce(e)
		return
	}
	payload := e.Payload.([]byte)
	forEachOwnerRange(e.Addr, e.Bytes, func(a uva.Addr, off, ln int) {
		w.cuWrite(Entry{Kind: entWriteBlk, MTX: e.MTX, Addr: a, Payload: payload[off : off+ln], Bytes: ln})
	})
}

// forEachShardRange splits [addr, addr+n) at try-commit shard boundaries
// and invokes fn(segmentAddr, offset, length) per segment. With a single
// shard this is one call covering the whole range.
func (w *workerNode) forEachShardRange(addr uva.Addr, n int, fn func(a uva.Addr, off, ln int)) {
	const shardSpan = 1 << tcShardShift
	for off := 0; off < n; {
		a := addr + uva.Addr(off)
		ln := n - off
		if rem := shardSpan - int(uint64(a)&(shardSpan-1)); ln > rem {
			ln = rem
		}
		fn(a, off, ln)
		off += ln
	}
}

// consumeNext polls a queue with adaptive backoff, watching for the commit
// unit's recovery broadcast so blocked workers always unwind.
func (w *workerNode) consumeNext(port *entryCursor) Entry {
	backoff := w.sys.cfg.PollMin
	for {
		if e, ok := port.tryNext(); ok {
			return e
		}
		w.checkCtrl()
		w.proc.Advance(backoff)
		w.pollTime += backoff
		w.stallStarve += backoff
		if backoff < w.sys.cfg.PollMax {
			backoff *= 2
		}
	}
}

// checkCtrl unwinds to the recovery handler if the commit unit has
// broadcast a new epoch. Under a crash plan it doubles as the crash
// checkpoint: it sits on every worker poll/iteration path. A crash instant
// falling inside a barrier or a blocking receive fires at the next
// checkpoint — the simulation's fail-stop granularity.
func (w *workerNode) checkCtrl() {
	if msg, ok := w.comm.TryRecvBox(w.ctrlBox); ok {
		cm := msg.Payload.(ctrlMsg)
		if cm.epoch > w.epoch {
			w.pendingCtrl = &cm
			panic(recoverySignal{})
		}
	}
	if w.sys.hbOn {
		w.checkCrash()
	}
}

// checkCrash fires the next scheduled crash once virtual time reaches it.
func (w *workerNode) checkCrash() {
	if w.crashIdx >= len(w.crashes) {
		return
	}
	cr := w.crashes[w.crashIdx]
	if w.proc.Now() < cr.At {
		return
	}
	w.crashIdx++
	w.pendingCrash = &cr
	panic(recoverySignal{})
}

// doCrash models a fail-stop worker crash with restart: every piece of
// private state — speculative pages, arena, buffered pipeline data, route
// records — dies with the process. The host is dark for Downtime, then the
// replacement process announces itself to the commit unit (tagRejoin
// carries the pre-crash epoch) and waits, without heartbeating, for the
// epoch broadcast that re-integrates it; from there the ordinary §4.3
// recovery machinery (doRecovery) rebuilds the pipeline from committed
// state. Returns true if the loop completed while this worker was down.
func (w *workerNode) doCrash() (done bool) {
	cr := *w.pendingCrash
	w.pendingCrash = nil
	crashStart := w.proc.Now()
	spanStart := w.sys.tr.Now()
	adv0, blk0 := w.proc.Advanced(), w.proc.Blocked()
	account := func() {
		w.crashWall += w.proc.Now() - crashStart
		w.crashAdv += w.proc.Advanced() - adv0
		w.crashBlk += w.proc.Blocked() - blk0
		w.sys.tr.Span(trace.SpanCrash, w.rank, spanStart, uint64(w.rank), int64(cr.Downtime), 0)
	}

	// The host goes dark: its heartbeat daemon stops beating until restart.
	w.sys.hbDark[w.tid] = true

	// Private state dies with the process. Resetting the image here also
	// zeroes Resident(), so the restarted process re-protects an empty
	// address space for free in doRecovery — a fresh process has no pages.
	w.img.Reset()
	w.arena = uva.NewArena(w.tid + 1)
	for k := range w.inbox {
		delete(w.inbox, k)
	}
	w.routesIn = make(map[uint64]int)
	for i := range w.outstanding {
		w.outstanding[i] = 0
	}
	w.rrNext = 0
	w.poisoned = false
	w.selfMisspec = false
	w.cuMask, w.cuMin = 0, 0

	// The host is dark: nothing sent, nothing received, no heartbeats.
	w.proc.Advance(cr.Downtime)
	w.sys.hbDark[w.tid] = false // restarted: the keepalive daemon resumes

	// Restart. If an epoch broadcast arrived while dark (a concurrent
	// misspeculation recovery is blocked at its first barrier waiting for
	// us), join it — the commit unit then ignores our stale rejoin. At most
	// one such broadcast can be pending: recovery cannot complete without
	// this rank, so the commit unit cannot have moved further ahead.
	preEpoch := w.epoch
	rejoined := false
	backoff := w.sys.cfg.PollMin
	for {
		if msg, ok := w.comm.TryRecvBox(w.ctrlBox); ok {
			cm := msg.Payload.(ctrlMsg)
			if cm.done {
				account()
				return true
			}
			if cm.epoch > w.epoch {
				w.pendingCtrl = &cm
				account()
				return false
			}
			continue
		}
		if !rejoined {
			w.comm.Send(w.sys.cfg.commitRank(), tagRejoin, preEpoch, 16)
			rejoined = true
		}
		w.proc.Advance(backoff)
		if backoff < w.sys.cfg.PollMax {
			backoff *= 2
		}
	}
}

// doRecovery is the worker side of §4.3: barrier, flush speculative queues,
// barrier, discard speculative memory (re-arming page protection), final
// barrier, then resume at the restart iteration.
func (w *workerNode) doRecovery() {
	cm := *w.pendingCtrl
	w.pendingCtrl = nil
	recStart := w.proc.Now()
	spanStart := w.sys.tr.Now()
	adv0, blk0 := w.proc.Advanced(), w.proc.Blocked()

	w.comm.Barrier(w.sys.allRanks) // all threads have entered recovery mode

	for _, dstStage := range w.outStages {
		for _, dst := range w.sys.layout.Assign[dstStage] {
			w.edgeOut[dstStage][dst].Abort(cm.epoch)
		}
	}
	for _, fromStage := range w.inStages {
		for _, src := range w.sys.layout.Assign[fromStage] {
			w.edgeIn[fromStage][src].abort(cm.epoch)
		}
	}
	for _, port := range w.toTC {
		port.Abort(cm.epoch)
	}
	for _, port := range w.toCU {
		port.Abort(cm.epoch)
	}
	if w.syncOut != nil {
		w.syncOut.Abort(cm.epoch)
		w.syncIn.abort(cm.epoch)
	}
	for k := range w.inbox {
		delete(w.inbox, k)
	}
	w.routesIn = make(map[uint64]int)
	for i := range w.outstanding {
		w.outstanding[i] = 0
	}
	w.rrNext = 0

	w.comm.Barrier(w.sys.allRanks) // queues flushed everywhere

	// Reinstate access protection over the heap, discarding speculative
	// state; the cost scales with the pages this worker had touched.
	w.proc.Advance(w.sys.instrTime(w.sys.cfg.ProtectInstr * int64(w.img.Resident())))
	w.img.Reset()
	w.arena = uva.NewArena(w.tid + 1)

	w.epoch = cm.epoch
	w.epochBase = cm.restart
	w.nextIter = cm.restart
	w.poisoned = false
	w.selfMisspec = false
	w.cuMask, w.cuMin = 0, 0

	w.comm.Barrier(w.sys.allRanks) // commit unit has re-executed; resume

	w.recWall += w.proc.Now() - recStart
	w.recAdv += w.proc.Advanced() - adv0
	w.recBlk += w.proc.Blocked() - blk0
	w.sys.tr.Span(trace.SpanRecovery, w.rank, spanStart, cm.restart, 0, 0)
}
