package queue

import (
	"testing"

	"dsmtx/internal/sim"
	"dsmtx/internal/trace"
)

// TestProduceConsumeAllocBounded is an allocation-regression test for the
// queue hot path: steady-state Produce plus batch-drain Consume must
// amortize to well under one heap allocation per item. The ceiling covers
// world/queue setup and one allocation set per wire batch (slice, message,
// calendar event) with generous slack — reintroducing a per-item
// allocation blows through it.
func TestProduceConsumeAllocBounded(t *testing.T) {
	testProduceConsumeAllocBounded(t, nil)
}

// TestInstrumentedProduceConsumeAllocBounded holds the same ceiling with a
// metrics-only tracer attached: per-item counters, flush/drain histograms
// and the occupancy gauge are integer updates on resolved handles, so
// instrumentation must not move the queue hot path onto the heap. (A tracer
// with timeline recording on is allowed to allocate — it appends events —
// which is why the spans-off mode is the one pinned here.)
func TestInstrumentedProduceConsumeAllocBounded(t *testing.T) {
	testProduceConsumeAllocBounded(t, trace.NewMetricsOnly())
}

func testProduceConsumeAllocBounded(t *testing.T, tr *trace.Tracer) {
	const n = 4096
	runOnce := func() {
		k := sim.NewKernel()
		w := newWorld(k)
		q := New[uint64](w, "q", 0, 1, 100, DefaultConfig(), nil)
		q.Instrument(tr)
		k.Spawn("consumer", func(p *sim.Proc) {
			r := q.Receiver(w.Attach(1, p))
			got := 0
			for got < n {
				if batch, ok := r.TryConsumeBatch(); ok {
					got += len(batch)
					continue
				}
				p.Advance(100)
			}
		})
		k.Spawn("producer", func(p *sim.Proc) {
			s := q.Sender(w.Attach(0, p))
			for i := uint64(0); i < n; i++ {
				s.Produce(i)
			}
			s.Flush()
		})
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	per := testing.AllocsPerRun(5, runOnce)
	if perItem := per / n; perItem > 0.25 {
		t.Fatalf("produce/consume allocated %.3f times per item (%.0f per %d-item run), want <= 0.25",
			perItem, per, n)
	}
}
