package queue

import (
	"testing"
	"testing/quick"

	"dsmtx/internal/cluster"
	"dsmtx/internal/mpi"
	"dsmtx/internal/platform/vtime"
	"dsmtx/internal/sim"
)

func newWorld(k *sim.Kernel) *mpi.World {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	return mpi.NewWorld(vtime.New(k, cluster.New(k, cfg)), mpi.DefaultCost())
}

// mach recovers the simulated machine behind a vtime-backed test world.
func mach(w *mpi.World) *cluster.Machine {
	return w.Platform().(*vtime.Platform).Machine()
}

// run wires a producer proc at rank 0 and consumer proc at rank 1 around a
// queue and executes the kernel.
func run(t *testing.T, cfg Config, producer func(*SendPort[uint64]), consumer func(*RecvPort[uint64])) *sim.Kernel {
	t.Helper()
	k := sim.NewKernel()
	w := newWorld(k)
	q := New[uint64](w, "q", 0, 1, 100, cfg, nil)
	k.Spawn("consumer", func(p *sim.Proc) {
		consumer(q.Receiver(w.Attach(1, p)))
	})
	k.Spawn("producer", func(p *sim.Proc) {
		producer(q.Sender(w.Attach(0, p)))
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestFIFODelivery(t *testing.T) {
	const n = 1000
	var got []uint64
	run(t, DefaultConfig(),
		func(s *SendPort[uint64]) {
			for i := uint64(0); i < n; i++ {
				s.Produce(i)
			}
			s.Flush()
		},
		func(r *RecvPort[uint64]) {
			for i := 0; i < n; i++ {
				got = append(got, r.Consume())
			}
		})
	for i := uint64(0); i < n; i++ {
		if got[i] != i {
			t.Fatalf("got[%d] = %d", i, got[i])
		}
	}
}

func TestBatchingReducesMessages(t *testing.T) {
	const n = 512
	count := func(cfg Config) uint64 {
		var batches uint64
		run(t, cfg,
			func(s *SendPort[uint64]) {
				for i := uint64(0); i < n; i++ {
					s.Produce(i)
				}
				s.Flush()
				batches = s.Stats().Batches
			},
			func(r *RecvPort[uint64]) {
				for i := 0; i < n; i++ {
					r.Consume()
				}
			})
		return batches
	}
	opt := count(DefaultConfig())                 // 16-byte items, 4096-byte batches
	unopt := count(DefaultConfig().Unoptimized()) // flush every produce
	if unopt != n {
		t.Fatalf("unoptimized batches = %d, want %d", unopt, n)
	}
	if opt != n/256 {
		t.Fatalf("optimized batches = %d, want %d", opt, n/256)
	}
}

// The headline §5.3 measurement: the batched queue must sustain well over an
// order of magnitude more bandwidth than per-datum sends.
func TestQueueBandwidthVsRawMPI(t *testing.T) {
	const n = 20000
	bandwidth := func(cfg Config) float64 {
		k := run(t, cfg,
			func(s *SendPort[uint64]) {
				for i := uint64(0); i < n; i++ {
					s.Produce(i)
				}
				s.Flush()
			},
			func(r *RecvPort[uint64]) {
				for i := 0; i < n; i++ {
					r.Consume()
				}
			})
		return float64(n*8) / k.Now().Seconds() / 1e6 // MB/s of payload words
	}
	opt := bandwidth(DefaultConfig())
	unopt := bandwidth(DefaultConfig().Unoptimized())
	if opt < 100 {
		t.Errorf("optimized queue bandwidth = %.1f MB/s, want hundreds (paper: 480.7)", opt)
	}
	if unopt > 30 {
		t.Errorf("unoptimized bandwidth = %.1f MB/s, want low double digits (paper: 8.1-13.1)", unopt)
	}
	if opt < 20*unopt {
		t.Errorf("optimized/unoptimized = %.1f, want >= 20x (paper: ~37x)", opt/unopt)
	}
}

func TestWindowBoundsInFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchBytes = 16 // one item per batch
	cfg.Window = 2
	var producerDone, consumerStart sim.Time
	run(t, cfg,
		func(s *SendPort[uint64]) {
			for i := uint64(0); i < 10; i++ {
				s.Produce(i)
			}
			s.Flush()
			producerDone = sim.Time(0) // set below via closure? use stats instead
			_ = producerDone
		},
		func(r *RecvPort[uint64]) {
			r.comm.Proc().Advance(10 * sim.Millisecond) // consumer is slow to start
			consumerStart = r.comm.Proc().Now()
			for i := uint64(0); i < 10; i++ {
				if got := r.Consume(); got != i {
					t.Errorf("consume %d = %d", i, got)
				}
			}
		})
	if consumerStart != 10*sim.Millisecond {
		t.Fatalf("consumer started at %v", consumerStart)
	}
}

// With a bounded window and a stalled consumer, the producer must block
// rather than run ahead.
func TestWindowBlocksProducer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchBytes = 16
	cfg.Window = 3
	var thirdFlushAt, fifthFlushAt sim.Time
	run(t, cfg,
		func(s *SendPort[uint64]) {
			for i := uint64(0); i < 5; i++ {
				s.Produce(i) // each produce flushes (one item per batch)
				switch i {
				case 2:
					thirdFlushAt = s.comm.Proc().Now()
				case 4:
					fifthFlushAt = s.comm.Proc().Now()
				}
			}
		},
		func(r *RecvPort[uint64]) {
			r.comm.Proc().Advance(5 * sim.Millisecond)
			for i := 0; i < 5; i++ {
				r.Consume()
			}
		})
	if thirdFlushAt >= sim.Millisecond {
		t.Fatalf("first 3 batches should flow freely, third at %v", thirdFlushAt)
	}
	if fifthFlushAt < 5*sim.Millisecond {
		t.Fatalf("fifth batch at %v, want blocked until consumer drains at 5ms", fifthFlushAt)
	}
}

func TestEpochDiscardsStaleBatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchBytes = 16
	run(t, cfg,
		func(s *SendPort[uint64]) {
			s.Produce(1) // epoch 0 — will be stale by the time it is read
			s.Flush()
			s.comm.Proc().Advance(sim.Millisecond)
			s.Abort(1)
			s.Produce(2) // epoch 1
			s.Flush()
		},
		func(r *RecvPort[uint64]) {
			r.comm.Proc().Advance(500 * sim.Microsecond)
			r.Abort(1) // recovery: advance epoch before consuming
			if got := r.Consume(); got != 2 {
				t.Errorf("consumed %d from stale epoch, want 2", got)
			}
		})
}

func TestAbortDiscardsPendingProduce(t *testing.T) {
	run(t, DefaultConfig(),
		func(s *SendPort[uint64]) {
			s.Produce(11)
			if s.PendingItems() != 1 {
				t.Errorf("pending = %d", s.PendingItems())
			}
			s.Abort(1)
			if s.PendingItems() != 0 {
				t.Errorf("pending after abort = %d", s.PendingItems())
			}
			s.Produce(22)
			s.Flush()
		},
		func(r *RecvPort[uint64]) {
			r.Abort(1)
			if got := r.Consume(); got != 22 {
				t.Errorf("got %d, want 22", got)
			}
		})
}

func TestTryConsume(t *testing.T) {
	run(t, DefaultConfig(),
		func(s *SendPort[uint64]) {
			s.comm.Proc().Advance(sim.Millisecond)
			s.Produce(7)
			s.Flush()
		},
		func(r *RecvPort[uint64]) {
			if _, ok := r.TryConsume(); ok {
				t.Error("TryConsume returned value before producer ran")
			}
			r.comm.Proc().Advance(2 * sim.Millisecond)
			v, ok := r.TryConsume()
			if !ok || v != 7 {
				t.Errorf("TryConsume = %d, %v; want 7, true", v, ok)
			}
		})
}

func TestPortRankValidation(t *testing.T) {
	k := sim.NewKernel()
	w := newWorld(k)
	q := New[uint64](w, "q", 0, 1, 100, DefaultConfig(), nil)
	k.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Sender on wrong rank did not panic")
			}
		}()
		q.Sender(w.Attach(1, p))
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

// Property: for any payload sequence and any batch size, delivery is exact
// and in order.
func TestDeliveryProperty(t *testing.T) {
	f := func(vals []uint64, batchKB uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 300 {
			vals = vals[:300]
		}
		cfg := DefaultConfig()
		cfg.BatchBytes = (int(batchKB%8) + 1) * 64
		k := sim.NewKernel()
		w := newWorld(k)
		q := New[uint64](w, "q", 0, 1, 100, cfg, nil)
		ok := true
		k.Spawn("consumer", func(p *sim.Proc) {
			r := q.Receiver(w.Attach(1, p))
			for _, want := range vals {
				if got := r.Consume(); got != want {
					ok = false
				}
			}
		})
		k.Spawn("producer", func(p *sim.Proc) {
			s := q.Sender(w.Attach(0, p))
			for _, v := range vals {
				s.Produce(v)
			}
			s.Flush()
		})
		if err := k.Run(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
