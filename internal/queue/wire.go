// Wire hooks for the net backend: batch[T] is unexported (senders and
// receivers only ever see ports), so the codec that ships batches across
// daemon boundaries lives here, parameterized by an item codec the protocol
// layer supplies (internal/core registers Entry's).

package queue

import "dsmtx/internal/wire"

// BatchPrototype returns a zero batch[T] for wire.RegisterPayload — the
// registry needs the concrete dynamic type without exporting it.
func BatchPrototype[T any]() any { return batch[T]{} }

// EncodeBatch appends a batch[T]'s wire encoding: epoch, modelled byte
// size, item count, then each item through the supplied codec.
func EncodeBatch[T any](e *wire.Encoder, payload any, item func(*wire.Encoder, T)) {
	b := payload.(batch[T])
	e.U64(b.epoch)
	e.Uvarint(uint64(b.bytes))
	e.Uvarint(uint64(len(b.items)))
	for _, it := range b.items {
		item(e, it)
	}
}

// DecodeBatch reads a batch[T] back. Items are append-grown rather than
// preallocated from the count, so a corrupt count cannot drive allocation
// beyond the bytes that actually arrived (each item read past the end
// latches the decoder error and stops the loop).
func DecodeBatch[T any](d *wire.Decoder, item func(*wire.Decoder) T) any {
	var b batch[T]
	b.epoch = d.U64()
	b.bytes = d.Int()
	n := d.Int()
	for i := 0; i < n && d.Err() == nil; i++ {
		b.items = append(b.items, item(d))
	}
	return b
}
