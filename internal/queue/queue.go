// Package queue implements DSMTX's batched message queues (§4.2, §5.3).
//
// Pipelined execution is insensitive to communication latency but very
// sensitive to the per-datum send/receive overhead: one OpenMPI send/receive
// pair costs 500–2,295 instructions. A DSMTX queue therefore buffers
// produced values on the sender and issues one MPI message per full batch,
// amortizing the call overhead across many values — the paper measures
// 480.7 MB/s through the queue against 13.1 MB/s for raw MPI_Send. The
// queue owns its buffer space, unlike MPI_Bsend, so producers never manage
// buffers.
//
// Batches carry an epoch number; misspeculation recovery bumps the epoch on
// both ports, making every in-flight batch from the aborted execution
// self-discarding — that is the "flush the message queues" step of §4.3 in
// a form that is robust to messages still in the network.
//
// Optional credit-based flow control (Config.Window > 0) bounds in-flight
// batches; the DSMTX runtime runs with unbounded windows (the decoupling
// between workers and the commit unit is the point of the design), while
// bounded windows are exercised by tests and the ablation benchmarks.
//
// Queues inherit reliability from the layer below: under fault injection
// the cluster retransmits lost batches and releases them in order, so
// batch FIFO order, epoch discard, and credit accounting all survive a
// lossy interconnect unmodified (pinned by the lossy-link queue test).
package queue

import (
	"fmt"

	"dsmtx/internal/mpi"
	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
)

// Config tunes a queue.
type Config struct {
	// BatchBytes is the flush threshold: a send is issued once the pending
	// batch reaches this many wire bytes. 0 or negative means every produce
	// flushes immediately — the "NonOptimized" configuration of Fig. 5(b).
	BatchBytes int
	// Window bounds the number of unacknowledged batches in flight;
	// 0 means unbounded.
	Window int
	// ProduceInstr/ConsumeInstr are the CPU instructions charged per
	// produce/consume into/out of the local buffer.
	ProduceInstr int64
	ConsumeInstr int64
}

// DefaultConfig returns the optimized configuration: 4 KiB batches,
// unbounded window, and light per-operation costs (a handful of
// instructions to append to a local buffer).
func DefaultConfig() Config {
	return Config{
		BatchBytes:   4096,
		Window:       0,
		ProduceInstr: 45,
		ConsumeInstr: 45,
	}
}

// Unoptimized returns cfg altered to flush on every produce, modelling
// direct MPI_Send per datum for the Fig. 5(b) comparison.
func (c Config) Unoptimized() Config {
	c.BatchBytes = 0
	return c
}

// batch is the unit that crosses the network.
type batch[T any] struct {
	epoch uint64
	items []T
	bytes int
}

const batchHeaderBytes = 32
const creditBytes = 8

// Queue describes one unidirectional, typed channel between two ranks.
// Create it once, then bind a SendPort on the producing process and a
// RecvPort on the consuming process.
type Queue[T any] struct {
	name     string
	world    *mpi.World
	src, dst int
	tag      int // data tag; tag+1 carries credits back
	cfg      Config
	size     func(T) int

	// Instrumentation handles, resolved once by Instrument. All remain nil
	// on uninstrumented queues; every use is a nil-safe single branch, so
	// the disabled state adds zero allocations to Produce/Consume.
	tr         *trace.Tracer
	cProduced  *trace.Counter
	cConsumed  *trace.Counter
	hFlushFill *trace.Histogram
	hFlushWire *trace.Histogram
	hDrain     *trace.Histogram
	gOccupancy *trace.Gauge
}

// Instrument attaches a tracer: Produce/Consume bump shared counters,
// flushes record batch fill ("queue.flush.items"/"queue.flush.bytes") and a
// timeline instant on the sender's rank, batch admissions record drain size
// and an instant on the receiver's rank, and the sender's pending-item
// level drives the "queue.occupancy" gauge. Call before binding ports or
// traffic flows; a nil tracer is a no-op.
func (q *Queue[T]) Instrument(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	m := tr.Metrics()
	q.tr = tr
	q.cProduced = m.Counter("queue.produced")
	q.cConsumed = m.Counter("queue.consumed")
	q.hFlushFill = m.Histogram("queue.flush.items")
	q.hFlushWire = m.Histogram("queue.flush.bytes")
	q.hDrain = m.Histogram("queue.drain.items")
	q.gOccupancy = m.Gauge("queue.occupancy")
}

// New creates a queue from src to dst using tag and tag+1. size reports the
// modelled wire size of an element; nil means 16 bytes (an address/value
// tuple).
func New[T any](world *mpi.World, name string, src, dst, tag int, cfg Config, size func(T) int) *Queue[T] {
	if size == nil {
		size = func(T) int { return 16 }
	}
	return &Queue[T]{name: name, world: world, src: src, dst: dst, tag: tag, cfg: cfg, size: size}
}

// Name reports the queue's diagnostic name.
func (q *Queue[T]) Name() string { return q.name }

// SendStats counts sender-side activity.
type SendStats struct {
	Items   uint64
	Batches uint64
	Bytes   uint64
}

// SendPort is the producer's end. All methods must be called from the
// process owning comm.
type SendPort[T any] struct {
	q         *Queue[T]
	comm      *mpi.Comm
	creditBox platform.Mailbox // cached credit mailbox (Window > 0)
	epoch     uint64
	pending   batch[T]
	credits   int
	stats     SendStats
}

// Sender binds the producing process to the queue.
func (q *Queue[T]) Sender(comm *mpi.Comm) *SendPort[T] {
	if comm.Rank() != q.src {
		panic(fmt.Sprintf("queue %s: Sender rank %d, want %d", q.name, comm.Rank(), q.src))
	}
	s := &SendPort[T]{q: q, comm: comm, credits: q.cfg.Window}
	if q.cfg.Window > 0 {
		// Credits come back on tag+1; register the mailbox up front.
		s.creditBox = comm.Endpoint().Mailbox(q.dst, q.tag+1)
	}
	return s
}

// Produce appends v to the pending batch, flushing if the batch is full.
func (s *SendPort[T]) Produce(v T) {
	cfg := s.q.cfg
	s.comm.Proc().Advance(s.q.world.InstrTime(cfg.ProduceInstr))
	s.pending.items = append(s.pending.items, v)
	s.pending.bytes += s.q.size(v)
	s.stats.Items++
	s.q.cProduced.Inc()
	s.q.gOccupancy.Set(int64(len(s.pending.items)))
	if s.pending.bytes >= cfg.BatchBytes {
		s.Flush()
	}
}

// Flush transmits the pending batch, if any. DSMTX calls it at subTX ends so
// uncommitted values reach later stages promptly.
func (s *SendPort[T]) Flush() {
	if len(s.pending.items) == 0 {
		return
	}
	if s.q.cfg.Window > 0 {
		s.acquireCredit()
	}
	b := batch[T]{epoch: s.epoch, items: s.pending.items, bytes: s.pending.bytes}
	wire := b.bytes + batchHeaderBytes
	s.comm.SendClass(s.q.dst, s.q.tag, b, wire, platform.ClassQueue)
	s.stats.Batches++
	s.stats.Bytes += uint64(wire)
	s.q.hFlushFill.Observe(int64(len(b.items)))
	s.q.hFlushWire.Observe(int64(wire))
	s.q.tr.Instant(trace.InstFlush, s.comm.Rank(), 0, int64(len(b.items)), int64(wire))
	s.pending = batch[T]{}
}

func (s *SendPort[T]) acquireCredit() {
	// Harvest any credits that already arrived.
	for {
		msg, ok := s.comm.TryRecvBox(s.creditBox)
		if !ok {
			break
		}
		s.noteCredit(msg)
	}
	for s.credits == 0 {
		s.noteCredit(s.comm.Recv(s.q.dst, s.q.tag+1))
	}
	s.credits--
}

func (s *SendPort[T]) noteCredit(msg platform.Message) {
	if msg.Payload.(uint64) == s.epoch {
		s.credits++
	}
}

// Epoch reports the port's current epoch.
func (s *SendPort[T]) Epoch() uint64 { return s.epoch }

// Abort discards the pending batch, restores the full credit window and
// advances to the given epoch; any batch already in flight becomes stale.
func (s *SendPort[T]) Abort(epoch uint64) {
	s.pending = batch[T]{}
	s.credits = s.q.cfg.Window
	s.epoch = epoch
}

// Stats returns a snapshot of sender-side counters.
func (s *SendPort[T]) Stats() SendStats { return s.stats }

// PendingItems reports how many produced values await the next flush.
func (s *SendPort[T]) PendingItems() int { return len(s.pending.items) }

// RecvPort is the consumer's end.
type RecvPort[T any] struct {
	q    *Queue[T]
	comm *mpi.Comm
	box  platform.Mailbox // cached mailbox handle for the poll path
	// batched marks a concurrent platform (host): several batches can be
	// pending at once, so TryConsumeBatch drains the whole mailbox backlog
	// in one call instead of admitting one message per call. On vtime the
	// per-message path is kept so the charge sequence stays bit-identical.
	batched bool
	msgBuf  []platform.Message // reusable drain buffer (batched only)
	epoch   uint64
	cur     []T
	items   uint64
}

// Receiver binds the consuming process to the queue.
func (q *Queue[T]) Receiver(comm *mpi.Comm) *RecvPort[T] {
	if comm.Rank() != q.dst {
		panic(fmt.Sprintf("queue %s: Receiver rank %d, want %d", q.name, comm.Rank(), q.dst))
	}
	return &RecvPort[T]{
		q: q, comm: comm,
		box:     comm.Endpoint().Mailbox(q.src, q.tag),
		batched: q.world.Platform().Concurrent(),
	}
}

// Consume blocks until a value of the current epoch is available and
// returns it. Stale-epoch batches are discarded silently.
func (r *RecvPort[T]) Consume() T {
	cfg := r.q.cfg
	r.comm.Proc().Advance(r.q.world.InstrTime(cfg.ConsumeInstr))
	for len(r.cur) == 0 {
		msg := r.comm.Recv(r.q.src, r.q.tag)
		r.admit(msg)
	}
	v := r.cur[0]
	r.cur = r.cur[1:]
	r.items++
	r.q.cConsumed.Inc()
	return v
}

// TryConsume returns a value if one is available now, without blocking.
func (r *RecvPort[T]) TryConsume() (T, bool) {
	for len(r.cur) == 0 {
		msg, ok := r.comm.TryRecvBox(r.box)
		if !ok {
			var zero T
			return zero, false
		}
		r.admit(msg)
	}
	cfg := r.q.cfg
	r.comm.Proc().Advance(r.q.world.InstrTime(cfg.ConsumeInstr))
	v := r.cur[0]
	r.cur = r.cur[1:]
	r.items++
	r.q.cConsumed.Inc()
	return v, true
}

// TryConsumeBatch returns every value currently buffered on the port — the
// remainder of the in-progress batch, or a newly arrived one — without
// blocking. It charges the same per-value consume cost as the equivalent
// sequence of TryConsume calls, but in a single Advance, so draining a
// batch costs one scheduler interaction instead of one per value. The
// returned slice is the port's internal buffer: it is valid until the next
// operation on the port and must not be retained.
func (r *RecvPort[T]) TryConsumeBatch() ([]T, bool) {
	if r.batched {
		if len(r.cur) == 0 {
			r.drainAll()
		}
		if len(r.cur) == 0 {
			return nil, false
		}
	}
	for len(r.cur) == 0 {
		msg, ok := r.comm.TryRecvBox(r.box)
		if !ok {
			return nil, false
		}
		r.admit(msg)
	}
	cfg := r.q.cfg
	r.comm.Proc().Advance(r.q.world.InstrTime(cfg.ConsumeInstr * int64(len(r.cur))))
	out := r.cur
	r.cur = nil
	r.items += uint64(len(out))
	r.q.cConsumed.Add(uint64(len(out)))
	return out, true
}

// drainAll takes every batch pending on the mailbox in one ring drain and
// concatenates the current-epoch items; stale batches discard as in admit,
// and credits (if windowed) are acknowledged per batch.
func (r *RecvPort[T]) drainAll() {
	r.msgBuf = r.comm.TryRecvBoxBatch(r.box, r.msgBuf[:0])
	for i := range r.msgBuf {
		r.admit(r.msgBuf[i])
		r.msgBuf[i] = platform.Message{} // drop the payload reference
	}
}

func (r *RecvPort[T]) admit(msg platform.Message) {
	b := msg.Payload.(batch[T])
	if b.epoch != r.epoch {
		return // stale speculative state from before a recovery
	}
	if len(r.cur) == 0 {
		r.cur = b.items
	} else {
		// Batched drain admitted more than one batch this call.
		r.cur = append(r.cur, b.items...)
	}
	r.q.hDrain.Observe(int64(len(b.items)))
	r.q.tr.Instant(trace.InstDrain, r.comm.Rank(), 0, int64(len(b.items)), 0)
	if r.q.cfg.Window > 0 {
		r.comm.Send(r.q.src, r.q.tag+1, r.epoch, creditBytes)
	}
}

// Abort discards buffered and pending input and advances to the given
// epoch: the receiver half of the recovery-time queue flush.
func (r *RecvPort[T]) Abort(epoch uint64) {
	r.cur = nil
	for {
		if _, ok := r.box.TryRecv(); !ok {
			break
		}
	}
	r.epoch = epoch
}

// Consumed reports how many values this port has delivered.
func (r *RecvPort[T]) Consumed() uint64 { return r.items }
