package queue

import (
	"testing"

	"dsmtx/internal/faults"
	"dsmtx/internal/sim"
)

// TestBatchesSurviveLossyLink: queue batches ride the cluster's reliable
// layer under fault injection — FIFO delivery and credit-window flow
// control hold at a drop rate that forces many retransmissions.
func TestBatchesSurviveLossyLink(t *testing.T) {
	const n = 2000
	for _, window := range []int{0, 2} {
		k := sim.NewKernel()
		w := newWorld(k)
		inj, err := faults.Compile(faults.Plan{Seed: 17, DropRate: 0.1, AckDropRate: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		mach(w).EnableFaults(inj)
		cfg := DefaultConfig()
		cfg.Window = window
		q := New[uint64](w, "q", 0, 1, 100, cfg, nil)
		var got []uint64
		k.Spawn("consumer", func(p *sim.Proc) {
			r := q.Receiver(w.Attach(1, p))
			for range n {
				got = append(got, r.Consume())
			}
		})
		k.Spawn("producer", func(p *sim.Proc) {
			s := q.Sender(w.Attach(0, p))
			for i := uint64(0); i < n; i++ {
				s.Produce(i)
			}
			s.Flush()
		})
		if err := k.Run(0); err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		for i := uint64(0); i < n; i++ {
			if got[i] != i {
				t.Fatalf("window %d: got[%d] = %d", window, i, got[i])
			}
		}
		if s := mach(w).Stats(); s.RetransMessages == 0 {
			t.Fatalf("window %d: no retransmissions at 10%% drop: %+v", window, s)
		}
	}
}
