package mem

import (
	"testing"

	"dsmtx/internal/trace"
	"dsmtx/internal/uva"
)

// Allocation-regression tests: the hot-path claims of the chunked page
// table. Ceilings are generous (the claim is "bounded", not "exactly N")
// but tight enough that reintroducing a per-op allocation fails.

// TestLoadStoreAllocFree pins steady-state Load/Store on resident pages at
// zero heap allocations: the chunk map lookup, slot cache, and COW check
// all run without touching the heap once pages are faulted in.
func TestLoadStoreAllocFree(t *testing.T) {
	im := NewImage(nil)
	const pages = 16
	base := uva.Base(1)
	for p := 0; p < pages; p++ {
		im.Store(base+uva.Addr(p)*uva.PageSize, 1) // pre-fault
	}
	var sink uint64
	per := testing.AllocsPerRun(20, func() {
		for p := 0; p < pages; p++ {
			a := base + uva.Addr(p)*uva.PageSize
			im.Store(a, sink)
			sink += im.Load(a)
		}
	})
	if per > 0 {
		t.Fatalf("resident Load/Store allocated %.1f times per %d-op run, want 0", per, 2*pages)
	}
}

// TestLoadStoreBytesAllocBounded bounds the bulk path: LoadBytes allocates
// the destination slice and nothing else; StoreBytes over resident
// exclusively-owned pages allocates nothing.
func TestLoadStoreBytesAllocBounded(t *testing.T) {
	im := NewImage(nil)
	base := uva.Base(2)
	buf := make([]byte, 3*uva.PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	im.StoreBytes(base, buf) // pre-fault and take ownership
	per := testing.AllocsPerRun(20, func() {
		im.StoreBytes(base, buf)
	})
	if per > 0 {
		t.Fatalf("resident StoreBytes allocated %.1f times per run, want 0", per)
	}
	per = testing.AllocsPerRun(20, func() {
		im.LoadBytes(base, len(buf))
	})
	if per > 2 { // destination slice (+ size-class slack)
		t.Fatalf("LoadBytes allocated %.1f times per run, want <= 2", per)
	}
}

// TestInstrumentedLoadStoreAllocFree pins the instrumented image to the
// same zero-allocation claim: metric handles are plain integer adds, so
// attaching a registry must not put the resident Load/Store fast path (or
// the fault/reset cycle, below) back on the heap.
func TestInstrumentedLoadStoreAllocFree(t *testing.T) {
	im := NewImage(nil)
	im.Instrument(trace.NewMetrics())
	const pages = 16
	base := uva.Base(7)
	for p := 0; p < pages; p++ {
		im.Store(base+uva.Addr(p)*uva.PageSize, 1)
	}
	var sink uint64
	per := testing.AllocsPerRun(20, func() {
		for p := 0; p < pages; p++ {
			a := base + uva.Addr(p)*uva.PageSize
			im.Store(a, sink)
			sink += im.Load(a)
		}
	})
	if per > 0 {
		t.Fatalf("instrumented resident Load/Store allocated %.1f times per run, want 0", per)
	}
}

// TestInstrumentedFaultPathUsesPool repeats the fault/reset pool test with
// metrics attached: the fault counter, recycle counter, and resident gauge
// sit on those paths and must not add heap traffic.
func TestInstrumentedFaultPathUsesPool(t *testing.T) {
	im := NewImage(nil)
	im.ReleaseOnReset(true)
	im.Instrument(trace.NewMetrics())
	const pages = 64
	base := uva.Base(8)
	per := testing.AllocsPerRun(50, func() {
		for p := 0; p < pages; p++ {
			im.Store(base+uva.Addr(p)*uva.PageSize, uint64(p))
		}
		im.Reset()
	})
	if per > pages/2 {
		t.Fatalf("instrumented fault/reset cycle allocated %.1f times per %d-page round, want <= %d",
			per, pages, pages/2)
	}
}

// TestFaultPathUsesPool checks that Reset with frame release enabled lets
// refault cycles run from the page pool: repeated fault-in/reset rounds
// must stay far below one page allocation per fault.
func TestFaultPathUsesPool(t *testing.T) {
	im := NewImage(nil)
	im.ReleaseOnReset(true)
	const pages = 64
	base := uva.Base(3)
	per := testing.AllocsPerRun(50, func() {
		for p := 0; p < pages; p++ {
			im.Store(base+uva.Addr(p)*uva.PageSize, uint64(p))
		}
		im.Reset()
	})
	// Each round faults 64 pages and allocates chunk-map bookkeeping; the
	// page frames themselves must come from the pool, not the heap.
	if per > pages/2 {
		t.Fatalf("fault/reset cycle allocated %.1f times per %d-page round, want <= %d",
			per, pages, pages/2)
	}
}
