package mem

import (
	"fmt"

	"dsmtx/internal/uva"
)

// Bulk byte access. Workload kernels move blocks (input files, compression
// buffers, frames) through memory; doing that word-by-word would drown the
// simulation in events, so these helpers move whole ranges while still
// faulting pages through the normal Copy-On-Access path. Start addresses
// must be word-aligned; lengths are arbitrary.

// LoadBytes copies n bytes starting at addr out of the image.
func (im *Image) LoadBytes(addr uva.Addr, n int) []byte {
	checkAligned(addr)
	if n < 0 {
		panic(fmt.Sprintf("mem: LoadBytes(%v, %d)", addr, n))
	}
	out := make([]byte, n)
	im.LoadOps += uint64((n + 7) / 8)
	if n > 0 {
		im.hintEnd = (addr + uva.Addr(n-1)).Page() + 1
		defer func() { im.hintEnd = 0 }()
	}
	for done := 0; done < n; {
		a := addr + uva.Addr(done)
		pg := im.page(a.Page())
		off := a.PageOffset()
		chunk := min(uva.PageSize-off, n-done)
		copyOut(out[done:done+chunk], pg, off)
		done += chunk
	}
	return out
}

// StoreBytes copies b into the image starting at addr, copying shared
// (snapshot-aliased) pages first. A store covering an entire page installs
// a fresh page without faulting: fetching a page only to overwrite every
// byte would waste a Copy-On-Access round trip (write-allocate bypass).
func (im *Image) StoreBytes(addr uva.Addr, b []byte) {
	checkAligned(addr)
	im.StoreOps += uint64((len(b) + 7) / 8)
	if len(b) > 0 {
		im.hintEnd = (addr + uva.Addr(len(b)-1)).Page() + 1
		defer func() { im.hintEnd = 0 }()
	}
	for done := 0; done < len(b); {
		a := addr + uva.Addr(done)
		id := a.Page()
		off := a.PageOffset()
		chunk := min(uva.PageSize-off, len(b)-done)
		var pg *Page
		if off == 0 && chunk == uva.PageSize {
			pg = new(Page)
			im.pages[id] = pg
			delete(im.shared, id)
		} else {
			pg = im.page(id)
			if im.shared[id] {
				pg = pg.Clone()
				im.pages[id] = pg
				delete(im.shared, id)
			}
		}
		copyIn(pg, off, b[done:done+chunk])
		done += chunk
	}
}

// ChecksumRange returns the FNV-1a checksum of n bytes at addr, faulting
// pages as needed — how the try-commit unit validates bulk speculative
// reads.
func (im *Image) ChecksumRange(addr uva.Addr, n int) uint64 {
	return ChecksumBytes(im.LoadBytes(addr, n))
}

// ChecksumBytes is FNV-1a over b.
func ChecksumBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// copyOut extracts bytes [off, off+len(dst)) of a page (little-endian word
// layout).
func copyOut(dst []byte, pg *Page, off int) {
	for i := range dst {
		b := off + i
		dst[i] = byte(pg.Words[b>>3] >> ((b & 7) * 8))
	}
}

// copyIn writes src into a page at byte offset off.
func copyIn(pg *Page, off int, src []byte) {
	for i, c := range src {
		b := off + i
		shift := uint((b & 7) * 8)
		pg.Words[b>>3] = pg.Words[b>>3]&^(0xff<<shift) | uint64(c)<<shift
	}
}
