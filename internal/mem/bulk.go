package mem

import (
	"encoding/binary"
	"fmt"

	"dsmtx/internal/uva"
)

// Bulk byte access. Workload kernels move blocks (input files, compression
// buffers, frames) through memory; doing that word-by-word would drown the
// simulation in events, so these helpers move whole ranges while still
// faulting pages through the normal Copy-On-Access path. Start addresses
// must be word-aligned; lengths are arbitrary.

// LoadBytes copies n bytes starting at addr out of the image.
func (im *Image) LoadBytes(addr uva.Addr, n int) []byte {
	checkAligned(addr)
	if n < 0 {
		panic(fmt.Sprintf("mem: LoadBytes(%v, %d)", addr, n))
	}
	out := make([]byte, n)
	im.LoadOps += uint64((n + 7) / 8)
	if n > 0 {
		im.hintEnd = (addr + uva.Addr(n-1)).Page() + 1
		defer func() { im.hintEnd = 0 }()
	}
	for done := 0; done < n; {
		a := addr + uva.Addr(done)
		id := a.Page()
		s := im.slot(id)
		if s.pg == nil {
			im.fill(id, s)
		}
		off := a.PageOffset()
		chunk := min(uva.PageSize-off, n-done)
		copyOut(out[done:done+chunk], s.pg, off)
		done += chunk
	}
	return out
}

// StoreBytes copies b into the image starting at addr, copying shared
// (snapshot-aliased) pages first. A store covering an entire page installs
// a fresh page without faulting: fetching a page only to overwrite every
// byte would waste a Copy-On-Access round trip (write-allocate bypass).
func (im *Image) StoreBytes(addr uva.Addr, b []byte) {
	checkAligned(addr)
	im.StoreOps += uint64((len(b) + 7) / 8)
	if len(b) > 0 {
		im.hintEnd = (addr + uva.Addr(len(b)-1)).Page() + 1
		defer func() { im.hintEnd = 0 }()
	}
	for done := 0; done < len(b); {
		a := addr + uva.Addr(done)
		id := a.Page()
		off := a.PageOffset()
		chunk := min(uva.PageSize-off, len(b)-done)
		s := im.slot(id)
		if off == 0 && chunk == uva.PageSize {
			// Full-page overwrite: skip the fault; reuse the resident frame
			// in place when this image owns it exclusively, else install a
			// raw pool frame (every byte is written below).
			if s.pg == nil {
				s.pg = getPageRaw()
				im.resident++
				im.gResident.Add(1)
			} else if s.shared {
				s.pg = getPageRaw()
			}
			s.shared = false
		} else {
			if s.pg == nil {
				im.fill(id, s)
			}
			if s.shared {
				s.pg, s.shared = clonePage(s.pg), false
			}
		}
		copyIn(s.pg, off, b[done:done+chunk])
		done += chunk
	}
}

// ChecksumRange returns the FNV-1a checksum of n bytes at addr, faulting
// pages as needed — how the try-commit unit validates bulk speculative
// reads.
func (im *Image) ChecksumRange(addr uva.Addr, n int) uint64 {
	return ChecksumBytes(im.LoadBytes(addr, n))
}

// ChecksumBytes is FNV-1a over b.
func ChecksumBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// copyOut extracts bytes [off, off+len(dst)) of a page (little-endian word
// layout): byte k of a word is Words[k>>3] >> ((k&7)*8), so whole words
// move with a single little-endian store.
func copyOut(dst []byte, pg *Page, off int) {
	i := 0
	for ; i < len(dst) && (off+i)&7 != 0; i++ {
		b := off + i
		dst[i] = byte(pg.Words[b>>3] >> ((b & 7) * 8))
	}
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], pg.Words[(off+i)>>3])
	}
	for ; i < len(dst); i++ {
		b := off + i
		dst[i] = byte(pg.Words[b>>3] >> ((b & 7) * 8))
	}
}

// copyIn writes src into a page at byte offset off, whole words at a time
// where alignment allows.
func copyIn(pg *Page, off int, src []byte) {
	i := 0
	for ; i < len(src) && (off+i)&7 != 0; i++ {
		b := off + i
		shift := uint((b & 7) * 8)
		pg.Words[b>>3] = pg.Words[b>>3]&^(0xff<<shift) | uint64(src[i])<<shift
	}
	for ; i+8 <= len(src); i += 8 {
		pg.Words[(off+i)>>3] = binary.LittleEndian.Uint64(src[i:])
	}
	for ; i < len(src); i++ {
		b := off + i
		shift := uint((b & 7) * 8)
		pg.Words[b>>3] = pg.Words[b>>3]&^(0xff<<shift) | uint64(src[i])<<shift
	}
}
