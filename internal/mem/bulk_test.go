package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"dsmtx/internal/uva"
)

func TestBulkRoundTrip(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0)
	data := []byte("the quick brown fox jumps over the lazy dog")
	im.StoreBytes(addr, data)
	if got := im.LoadBytes(addr, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("LoadBytes = %q", got)
	}
}

func TestBulkCrossesPages(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0) + uva.PageSize - 16 // straddles a page boundary
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i * 7)
	}
	im.StoreBytes(addr, data)
	if got := im.LoadBytes(addr, len(data)); !bytes.Equal(got, data) {
		t.Fatal("cross-page block corrupted")
	}
	if im.Resident() != 2 {
		t.Fatalf("Resident = %d, want 2 pages", im.Resident())
	}
}

func TestBulkInteroperatesWithWords(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0)
	im.Store(addr, 0x0807060504030201)
	got := im.LoadBytes(addr, 8)
	for i := byte(0); i < 8; i++ {
		if got[i] != i+1 {
			t.Fatalf("byte %d = %d (little-endian layout expected)", i, got[i])
		}
	}
}

func TestBulkCopyOnWriteSnapshot(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0)
	im.StoreBytes(addr, []byte("aaaa"))
	snap := im.Snapshot()
	im.StoreBytes(addr, []byte("bbbb"))
	if string(snap.LoadBytes(addr, 4)) != "aaaa" {
		t.Fatal("snapshot corrupted by bulk store")
	}
}

func TestChecksumRangeMatchesBytes(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0)
	data := []byte{1, 2, 3, 4, 5}
	im.StoreBytes(addr, data)
	if im.ChecksumRange(addr, 5) != ChecksumBytes(data) {
		t.Fatal("ChecksumRange != ChecksumBytes")
	}
}

func TestChecksumSensitivity(t *testing.T) {
	a := ChecksumBytes([]byte{0, 0, 1})
	b := ChecksumBytes([]byte{0, 1, 0})
	if a == b {
		t.Fatal("checksum insensitive to byte order")
	}
}

// Property: StoreBytes/LoadBytes round-trips at arbitrary aligned offsets
// and lengths.
func TestBulkProperty(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		im := NewImage(nil)
		addr := uva.Base(0) + uva.Addr(off&0x1fff)*8
		im.StoreBytes(addr, data)
		return bytes.Equal(im.LoadBytes(addr, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
