// Package mem implements the versioned page memory under DSMTX.
//
// Each process in the system — every worker, the try-commit unit, the commit
// unit — holds a private Image: a software page table over the unified
// virtual address space. Pages a process has never touched are "protected";
// the first access faults and invokes the image's fault handler, which in
// DSMTX performs Copy-On-Access — fetching the whole 4 KiB page from the
// commit unit's memory (§3.1, §4.2). Reset drops every resident page,
// re-arming protection: that is how speculative state is discarded wholesale
// during misspeculation recovery (§4.3).
//
// Go has no user-level memory protection, so the page-table state machine
// is explicit; the protocol it triggers (fault → page request → page reply →
// install) matches the paper's, and the transfer costs are charged by the
// runtime's fault handler.
//
// Host-side layout: the page table is two-level — a map of 512-page chunks
// (2 MiB of address space each) holding dense slot arrays — plus a
// per-image last-slot cache, so the common case of touching the same page
// (or the same 2 MiB region) repeatedly does no map lookup at all. Pages
// are recycled through a free list (sync.Pool) on images that opt in with
// ReleaseOnReset; none of this is visible in simulated time.
package mem

import (
	"fmt"
	"math"
	"sync"

	"dsmtx/internal/trace"
	"dsmtx/internal/uva"
)

// Page is 4 KiB of memory stored as 512 words; DSMTX operates on memory at
// word granularity (§4.2), so word arrays lose nothing.
type Page struct {
	Words [uva.PageWords]uint64
}

// Clone returns a copy of the page.
func (pg *Page) Clone() *Page {
	c := *pg
	return &c
}

// pagePool recycles Page frames across images and runs. Pages enter the
// pool only from images that opted in via ReleaseOnReset (worker and
// try-commit images, whose pages are exclusively owned clones), so a pooled
// frame is never still referenced. The pool is also shared by simulations
// running concurrently on the host (the experiment scheduler's fan-out):
// that is safe because sync.Pool is goroutine-safe and every taker fully
// initializes the frame before use — getPageRaw callers overwrite every
// word, getPageZero clears — so no kernel can observe another's contents.
var pagePool sync.Pool

// getPageRaw returns a page frame with undefined contents; callers must
// overwrite every word (full-page install, whole-page clone).
func getPageRaw() *Page {
	if v := pagePool.Get(); v != nil {
		return v.(*Page)
	}
	return new(Page)
}

// getPageZero returns a zeroed page frame.
func getPageZero() *Page {
	if v := pagePool.Get(); v != nil {
		pg := v.(*Page)
		*pg = Page{}
		return pg
	}
	return new(Page)
}

// clonePage returns a pooled copy of src.
func clonePage(src *Page) *Page {
	dst := getPageRaw()
	*dst = *src
	return dst
}

// FaultFunc resolves a page miss, returning the page contents to install
// (Copy-On-Access from the commit unit), or nil to install a zero page
// (fresh thread-local allocation). It may block the calling process and
// charge virtual time.
type FaultFunc func(id uva.PageID) *Page

// Page-table geometry: pageID's low chunkShift bits index a dense slot
// array; the rest select the chunk. 512 slots of 16 bytes keep a chunk at
// 8 KiB — one chunk typically covers a workload's whole working set for one
// owner region.
const (
	chunkShift = 9
	chunkPages = 1 << chunkShift
	chunkMask  = chunkPages - 1
)

// pageSlot is one page-table entry: the resident page (nil = protected) and
// whether a snapshot still aliases it (copy on write).
type pageSlot struct {
	pg     *Page
	shared bool
}

type pageChunk struct {
	slots [chunkPages]pageSlot
}

// noPage is the last-slot cache's "empty" sentinel (no valid page ID — it
// would imply an address with all bits set).
const noPage = ^uva.PageID(0)

// Image is one process's view of the unified address space.
type Image struct {
	chunks  map[uint64]*pageChunk
	fault   FaultFunc
	hintEnd uva.PageID // one past the last page of an in-flight bulk access

	// Hot-path caches: the last slot touched (same-page accesses skip all
	// lookup) and the last chunk touched (same-region accesses skip the
	// chunk map).
	lastID    uva.PageID
	lastSlot  *pageSlot
	lastKey   uint64
	lastChunk *pageChunk

	resident int
	release  bool // return exclusively-owned pages to the pool on Reset

	// Counters for tests and instrumentation.
	Faults   uint64
	LoadOps  uint64
	StoreOps uint64

	// Metric handles, resolved once by Instrument; nil on uninstrumented
	// images (every use is a nil-safe single branch). They sit on the fault
	// and reset paths only — the resident Load/Store fast path is untouched.
	cFaults   *trace.Counter
	cRecycled *trace.Counter
	gResident *trace.Gauge
}

// NewImage returns an empty image whose misses are resolved by fault
// (nil means "install zero pages" — the commit unit's own image works this
// way, since it holds the authoritative state).
func NewImage(fault FaultFunc) *Image {
	return &Image{
		chunks: make(map[uint64]*pageChunk),
		fault:  fault,
		lastID: noPage,
	}
}

// Instrument attaches shared metric handles: page faults bump
// "mem.pages.faulted", frames returned to the pool on Reset bump
// "mem.pages.recycled", and the cluster-wide resident-page level drives the
// "mem.resident.pages" gauge (its Max is the high-water mark). A nil
// registry is a no-op.
func (im *Image) Instrument(m *trace.Metrics) {
	if m == nil {
		return
	}
	im.cFaults = m.Counter("mem.pages.faulted")
	im.cRecycled = m.Counter("mem.pages.recycled")
	im.gResident = m.Gauge("mem.resident.pages")
}

// ReleaseOnReset opts this image into page recycling: Reset (and nothing
// else) returns its exclusively-owned pages to the shared frame pool. Only
// safe when no pointer to a resident page outlives the image's speculative
// state — true for worker and try-commit images, whose pages are private
// Copy-On-Access clones; never enabled for the commit unit's authoritative
// image or for user-built images.
func (im *Image) ReleaseOnReset(on bool) { im.release = on }

// AccessHint reports the page just past the current bulk access — fault
// handlers use it to size read-ahead exactly; 0 when no bulk access is in
// flight.
func (im *Image) AccessHint() uva.PageID { return im.hintEnd }

// SetFault replaces the fault handler (used when wiring a worker's image to
// its communication channels after construction).
func (im *Image) SetFault(fault FaultFunc) { im.fault = fault }

// Resident reports how many pages the image currently holds.
func (im *Image) Resident() int { return im.resident }

// Has reports whether a page is resident (unprotected).
func (im *Image) Has(id uva.PageID) bool {
	if ch, ok := im.chunks[uint64(id)>>chunkShift]; ok {
		return ch.slots[uint64(id)&chunkMask].pg != nil
	}
	return false
}

// slot returns the page-table entry for id, allocating its chunk if needed,
// and primes the last-slot cache.
func (im *Image) slot(id uva.PageID) *pageSlot {
	key := uint64(id) >> chunkShift
	ch := im.lastChunk
	if ch == nil || key != im.lastKey {
		var ok bool
		ch, ok = im.chunks[key]
		if !ok {
			ch = new(pageChunk)
			im.chunks[key] = ch
		}
		im.lastKey, im.lastChunk = key, ch
	}
	s := &ch.slots[uint64(id)&chunkMask]
	im.lastID, im.lastSlot = id, s
	return s
}

// fill resolves a protected slot through the fault handler. The handler may
// block and recursively install read-ahead pages into this image; s stays
// valid (slots never move) and the slot's final contents match the
// handler's answer for id.
func (im *Image) fill(id uva.PageID, s *pageSlot) {
	im.Faults++
	im.cFaults.Inc()
	var pg *Page
	if im.fault != nil {
		pg = im.fault(id)
	}
	if pg == nil {
		pg = getPageZero()
	}
	if s.pg == nil {
		im.resident++
		im.gResident.Add(1)
	}
	s.pg, s.shared = pg, false
}

func (im *Image) page(id uva.PageID) *Page {
	s := im.slot(id)
	if s.pg == nil {
		im.fill(id, s)
	}
	return s.pg
}

func checkAligned(addr uva.Addr) {
	if !addr.Aligned() {
		panic(fmt.Sprintf("mem: unaligned word access at %v", addr))
	}
}

// Load reads the word at addr, faulting the page in if protected.
func (im *Image) Load(addr uva.Addr) uint64 {
	checkAligned(addr)
	im.LoadOps++
	id := addr.Page()
	s := im.lastSlot
	if s == nil || id != im.lastID {
		s = im.slot(id)
	}
	if s.pg == nil {
		im.fill(id, s)
	}
	return s.pg.Words[addr.WordIndex()]
}

// Store writes the word at addr, faulting the page in if protected. A page
// aliased by a snapshot is copied first (copy-on-write).
func (im *Image) Store(addr uva.Addr, v uint64) {
	checkAligned(addr)
	im.StoreOps++
	id := addr.Page()
	s := im.lastSlot
	if s == nil || id != im.lastID {
		s = im.slot(id)
	}
	if s.pg == nil {
		im.fill(id, s)
	}
	if s.shared {
		s.pg, s.shared = clonePage(s.pg), false
	}
	s.pg.Words[addr.WordIndex()] = v
}

// LoadFloat and StoreFloat give workloads float64 views of words.
func (im *Image) LoadFloat(addr uva.Addr) float64 { return math.Float64frombits(im.Load(addr)) }

// StoreFloat stores a float64 into the word at addr.
func (im *Image) StoreFloat(addr uva.Addr, v float64) { im.Store(addr, math.Float64bits(v)) }

// InstallPage places a received page into the image, unprotecting it.
// Used by the COA client when a page reply arrives.
func (im *Image) InstallPage(id uva.PageID, pg *Page) {
	if pg == nil {
		pg = getPageZero()
	}
	s := im.slot(id)
	if s.pg == nil {
		im.resident++
		im.gResident.Add(1)
	}
	s.pg, s.shared = pg, false
}

// CopyPage returns a copy of a page for transmission, faulting it in if
// needed. The copy comes from the shared frame pool: the Copy-On-Access
// serve path clones a page per request, and receivers (worker and
// try-commit images) recycle the frames on Reset.
func (im *Image) CopyPage(id uva.PageID) *Page { return clonePage(im.page(id)) }

// Reset drops every resident page, re-arming protection over the whole
// space: the recovery step "reinstate the access protection to the heap
// area, discarding the remaining speculative state".
func (im *Image) Reset() {
	if im.release {
		recycled := 0
		for _, ch := range im.chunks {
			for i := range ch.slots {
				if s := &ch.slots[i]; s.pg != nil && !s.shared {
					pagePool.Put(s.pg)
					recycled++
				}
			}
		}
		im.cRecycled.Add(uint64(recycled))
	}
	im.gResident.Add(-int64(im.resident))
	im.chunks = make(map[uint64]*pageChunk)
	im.lastID = noPage
	im.lastSlot = nil
	im.lastKey = 0
	im.lastChunk = nil
	im.resident = 0
}

// Space is the word/byte access surface workload code programs against. A
// single *Image satisfies it directly; with a sharded commit pipeline the
// runtime hands sequential code (Setup, Finalize, recovery re-execution) a
// federated view that routes each access to the owning shard's image.
type Space interface {
	Load(addr uva.Addr) uint64
	Store(addr uva.Addr, v uint64)
	LoadFloat(addr uva.Addr) float64
	StoreFloat(addr uva.Addr, v float64)
	LoadBytes(addr uva.Addr, n int) []byte
	StoreBytes(addr uva.Addr, b []byte)
	ChecksumRange(addr uva.Addr, n int) uint64
}

var _ Space = (*Image)(nil)

// ForEachResident calls fn for every resident page. Iteration order is
// unspecified (it follows the chunk map); callers that need determinism must
// not depend on order. The page pointer is the live frame — do not retain it
// across mutations of the image.
func (im *Image) ForEachResident(fn func(uva.PageID, *Page)) {
	for key, ch := range im.chunks {
		base := key << chunkShift
		for i := range ch.slots {
			if pg := ch.slots[i].pg; pg != nil {
				fn(uva.PageID(base|uint64(i)), pg)
			}
		}
	}
}

// Merge builds one copy-on-write image over the union of the inputs'
// resident pages. Inputs must hold disjoint page sets (true for commit
// shards, which partition the page space by ownership hash); pages are
// aliased, not copied, and marked shared on both sides so any later store —
// through the merged view or a source image — copies first.
func Merge(imgs ...*Image) *Image {
	out := NewImage(nil)
	for _, im := range imgs {
		if im == nil {
			continue
		}
		im.ForEachResident(func(id uva.PageID, pg *Page) {
			s := out.slot(id)
			if s.pg != nil {
				panic(fmt.Sprintf("mem: Merge inputs overlap at page %#x", uint64(id)))
			}
			out.resident++
			s.pg, s.shared = pg, true
		})
		// Mark the source slots shared too: the merged view now aliases them.
		for _, ch := range im.chunks {
			for i := range ch.slots {
				if ch.slots[i].pg != nil {
					ch.slots[i].shared = true
				}
			}
		}
	}
	return out
}

// Snapshot returns a frozen copy-on-write view of the image as it is now.
// The snapshot has no fault handler: it answers only for pages resident at
// snapshot time (plus zero pages elsewhere). The commit unit takes one per
// parallel invocation — and a fresh one after recovery — for the page server
// to serve COA requests from, since committed state keeps advancing while
// workers must initialize from the invocation-entry state.
func (im *Image) Snapshot() *Image {
	snap := NewImage(nil)
	snap.resident = im.resident
	for key, ch := range im.chunks {
		for i := range ch.slots {
			if ch.slots[i].pg != nil {
				ch.slots[i].shared = true
			}
		}
		dup := *ch
		snap.chunks[key] = &dup
	}
	return snap
}
