// Package mem implements the versioned page memory under DSMTX.
//
// Each process in the system — every worker, the try-commit unit, the commit
// unit — holds a private Image: a software page table over the unified
// virtual address space. Pages a process has never touched are "protected";
// the first access faults and invokes the image's fault handler, which in
// DSMTX performs Copy-On-Access — fetching the whole 4 KiB page from the
// commit unit's memory (§3.1, §4.2). Reset drops every resident page,
// re-arming protection: that is how speculative state is discarded wholesale
// during misspeculation recovery (§4.3).
//
// Go has no user-level memory protection, so the page-table state machine
// is explicit; the protocol it triggers (fault → page request → page reply →
// install) matches the paper's, and the transfer costs are charged by the
// runtime's fault handler.
package mem

import (
	"fmt"
	"math"

	"dsmtx/internal/uva"
)

// Page is 4 KiB of memory stored as 512 words; DSMTX operates on memory at
// word granularity (§4.2), so word arrays lose nothing.
type Page struct {
	Words [uva.PageWords]uint64
}

// Clone returns a copy of the page.
func (pg *Page) Clone() *Page {
	c := *pg
	return &c
}

// FaultFunc resolves a page miss, returning the page contents to install
// (Copy-On-Access from the commit unit), or nil to install a zero page
// (fresh thread-local allocation). It may block the calling process and
// charge virtual time.
type FaultFunc func(id uva.PageID) *Page

// Image is one process's view of the unified address space.
type Image struct {
	pages   map[uva.PageID]*Page
	shared  map[uva.PageID]bool // page is aliased by a snapshot: copy on write
	fault   FaultFunc
	hintEnd uva.PageID // one past the last page of an in-flight bulk access

	// Counters for tests and instrumentation.
	Faults   uint64
	LoadOps  uint64
	StoreOps uint64
}

// NewImage returns an empty image whose misses are resolved by fault
// (nil means "install zero pages" — the commit unit's own image works this
// way, since it holds the authoritative state).
func NewImage(fault FaultFunc) *Image {
	return &Image{
		pages:  make(map[uva.PageID]*Page),
		shared: make(map[uva.PageID]bool),
		fault:  fault,
	}
}

// AccessHint reports the page just past the current bulk access — fault
// handlers use it to size read-ahead exactly; 0 when no bulk access is in
// flight.
func (im *Image) AccessHint() uva.PageID { return im.hintEnd }

// SetFault replaces the fault handler (used when wiring a worker's image to
// its communication channels after construction).
func (im *Image) SetFault(fault FaultFunc) { im.fault = fault }

// Resident reports how many pages the image currently holds.
func (im *Image) Resident() int { return len(im.pages) }

// Has reports whether a page is resident (unprotected).
func (im *Image) Has(id uva.PageID) bool {
	_, ok := im.pages[id]
	return ok
}

func (im *Image) page(id uva.PageID) *Page {
	if pg, ok := im.pages[id]; ok {
		return pg
	}
	im.Faults++
	var pg *Page
	if im.fault != nil {
		pg = im.fault(id)
	}
	if pg == nil {
		pg = new(Page)
	}
	im.pages[id] = pg
	return pg
}

func checkAligned(addr uva.Addr) {
	if !addr.Aligned() {
		panic(fmt.Sprintf("mem: unaligned word access at %v", addr))
	}
}

// Load reads the word at addr, faulting the page in if protected.
func (im *Image) Load(addr uva.Addr) uint64 {
	checkAligned(addr)
	im.LoadOps++
	return im.page(addr.Page()).Words[addr.WordIndex()]
}

// Store writes the word at addr, faulting the page in if protected. A page
// aliased by a snapshot is copied first (copy-on-write).
func (im *Image) Store(addr uva.Addr, v uint64) {
	checkAligned(addr)
	im.StoreOps++
	id := addr.Page()
	pg := im.page(id)
	if im.shared[id] {
		pg = pg.Clone()
		im.pages[id] = pg
		delete(im.shared, id)
	}
	pg.Words[addr.WordIndex()] = v
}

// LoadFloat and StoreFloat give workloads float64 views of words.
func (im *Image) LoadFloat(addr uva.Addr) float64 { return math.Float64frombits(im.Load(addr)) }

// StoreFloat stores a float64 into the word at addr.
func (im *Image) StoreFloat(addr uva.Addr, v float64) { im.Store(addr, math.Float64bits(v)) }

// InstallPage places a received page into the image, unprotecting it.
// Used by the COA client when a page reply arrives.
func (im *Image) InstallPage(id uva.PageID, pg *Page) {
	if pg == nil {
		pg = new(Page)
	}
	im.pages[id] = pg
}

// CopyPage returns a copy of a page for transmission, faulting it in if
// needed.
func (im *Image) CopyPage(id uva.PageID) *Page { return im.page(id).Clone() }

// Reset drops every resident page, re-arming protection over the whole
// space: the recovery step "reinstate the access protection to the heap
// area, discarding the remaining speculative state".
func (im *Image) Reset() {
	im.pages = make(map[uva.PageID]*Page)
	im.shared = make(map[uva.PageID]bool)
}

// Snapshot returns a frozen copy-on-write view of the image as it is now.
// The snapshot has no fault handler: it answers only for pages resident at
// snapshot time (plus zero pages elsewhere). The commit unit takes one per
// parallel invocation — and a fresh one after recovery — for the page server
// to serve COA requests from, since committed state keeps advancing while
// workers must initialize from the invocation-entry state.
func (im *Image) Snapshot() *Image {
	snap := NewImage(nil)
	for id, pg := range im.pages {
		snap.pages[id] = pg
		snap.shared[id] = true
		im.shared[id] = true
	}
	return snap
}
