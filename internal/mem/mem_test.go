package mem

import (
	"testing"
	"testing/quick"

	"dsmtx/internal/uva"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(1)
	im.Store(addr, 42)
	if got := im.Load(addr); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0)
	im.StoreFloat(addr, 3.14159)
	if got := im.LoadFloat(addr); got != 3.14159 {
		t.Fatalf("LoadFloat = %v", got)
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	im := NewImage(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	im.Load(uva.Base(0) + 3)
}

func TestFaultHandlerInvokedOncePerPage(t *testing.T) {
	faults := 0
	im := NewImage(func(id uva.PageID) *Page {
		faults++
		pg := new(Page)
		pg.Words[0] = uint64(id)
		return pg
	})
	base := uva.Base(2)
	if im.Load(base) != uint64(base.Page()) {
		t.Fatal("faulted page content wrong")
	}
	im.Load(base + 8)
	im.Store(base+16, 1)
	if faults != 1 {
		t.Fatalf("faults = %d, want 1 (page granularity)", faults)
	}
	// A different page faults separately.
	im.Load(base + uva.PageSize)
	if faults != 2 {
		t.Fatalf("faults = %d, want 2", faults)
	}
}

func TestNilFaultHandlerZeroFills(t *testing.T) {
	im := NewImage(nil)
	if v := im.Load(uva.Base(7)); v != 0 {
		t.Fatalf("zero page load = %d", v)
	}
}

func TestResetDropsAllPagesAndRefaults(t *testing.T) {
	faults := 0
	im := NewImage(func(uva.PageID) *Page { faults++; return nil })
	addr := uva.Base(0)
	im.Store(addr, 99)
	im.Reset()
	if im.Resident() != 0 {
		t.Fatalf("Resident = %d after Reset", im.Resident())
	}
	if v := im.Load(addr); v != 0 {
		t.Fatalf("speculative store survived Reset: %d", v)
	}
	if faults != 2 {
		t.Fatalf("faults = %d, want 2 (refault after reset)", faults)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	commit := NewImage(nil)
	addr := uva.Base(0)
	commit.Store(addr, 10)
	snap := commit.Snapshot()

	// Later commits must not leak into the snapshot.
	commit.Store(addr, 20)
	if got := snap.Load(addr); got != 10 {
		t.Fatalf("snapshot sees %d, want 10", got)
	}
	if got := commit.Load(addr); got != 20 {
		t.Fatalf("commit image sees %d, want 20", got)
	}
}

func TestSnapshotDoesNotFaultMisses(t *testing.T) {
	commit := NewImage(nil)
	commit.Store(uva.Base(0), 1)
	snap := commit.Snapshot()
	// A page absent at snapshot time reads as zero.
	if v := snap.Load(uva.Base(3)); v != 0 {
		t.Fatalf("missing page read %d", v)
	}
}

func TestSnapshotOfSnapshotChain(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0)
	im.Store(addr, 1)
	s1 := im.Snapshot()
	im.Store(addr, 2)
	s2 := im.Snapshot()
	im.Store(addr, 3)
	if s1.Load(addr) != 1 || s2.Load(addr) != 2 || im.Load(addr) != 3 {
		t.Fatalf("chain = %d,%d,%d; want 1,2,3", s1.Load(addr), s2.Load(addr), im.Load(addr))
	}
}

func TestInstallPage(t *testing.T) {
	im := NewImage(func(uva.PageID) *Page {
		t.Fatal("fault handler must not run for installed page")
		return nil
	})
	pg := new(Page)
	pg.Words[5] = 77
	addr := uva.Base(1)
	im.InstallPage(addr.Page(), pg)
	if got := im.Load(addr + 5*8); got != 77 {
		t.Fatalf("installed page word = %d, want 77", got)
	}
	im.InstallPage(addr.Page()+1, nil) // nil installs a zero page
	if got := im.Load(addr + uva.PageSize); got != 0 {
		t.Fatalf("nil install word = %d, want 0", got)
	}
}

func TestCopyPageIndependent(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0)
	im.Store(addr, 5)
	cp := im.CopyPage(addr.Page())
	im.Store(addr, 6)
	if cp.Words[addr.WordIndex()] != 5 {
		t.Fatal("CopyPage aliased live page")
	}
}

func TestCounters(t *testing.T) {
	im := NewImage(nil)
	addr := uva.Base(0)
	im.Store(addr, 1)
	im.Load(addr)
	im.Load(addr)
	if im.StoreOps != 1 || im.LoadOps != 2 || im.Faults != 1 {
		t.Fatalf("counters = store %d load %d fault %d", im.StoreOps, im.LoadOps, im.Faults)
	}
}

// Property: an Image behaves like a map[addr]word for arbitrary word-aligned
// store/load sequences, including across a Snapshot boundary (snapshot must
// keep the old values, live image the new).
func TestImageVsMapProperty(t *testing.T) {
	f := func(writes []struct {
		Slot uint16
		Val  uint64
	}) bool {
		im := NewImage(nil)
		model := map[uva.Addr]uint64{}
		base := uva.Base(0)
		half := len(writes) / 2
		for _, w := range writes[:half] {
			addr := base + uva.Addr(w.Slot)*8
			im.Store(addr, w.Val)
			model[addr] = w.Val
		}
		snapModel := map[uva.Addr]uint64{}
		for k, v := range model {
			snapModel[k] = v
		}
		snap := im.Snapshot()
		for _, w := range writes[half:] {
			addr := base + uva.Addr(w.Slot)*8
			im.Store(addr, w.Val)
			model[addr] = w.Val
		}
		for addr, want := range model {
			if im.Load(addr) != want {
				return false
			}
		}
		for addr, want := range snapModel {
			if snap.Load(addr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
