package workloads

import (
	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// 464.h264ref — video encoder. Groups of Pictures (GoPs) are encoded in
// parallel: each iteration motion-estimates and encodes one GoP against its
// own intra frame, with DSMTX's dynamic memory versioning giving every
// worker private copies of the encoder's frame buffers (breaking the false
// dependences that serialize a shared-buffer encoder). A sequential stage
// assembles the bitstream in order. Speedup is limited primarily by the
// number of GoPs available.
//
// TLS: the encoder's rate-control state is a synchronized dependence whose
// source and sink sit inside the per-frame inner loop; the conservative TLS
// placement receives it before the GoP and releases it after, effectively
// serializing execution — the paper's explanation for the flat TLS curve.

const (
	h264GoPs       = 72
	h264Frames     = 4  // frames per GoP (1 intra + 3 predicted)
	h264Dim        = 48 // luma frame is h264Dim x h264Dim
	h264MB         = 16 // macroblock edge
	h264Search     = 4  // motion search range (±)
	h264InstrPerOp = 2  // per SAD accumulate
)

type h264Prog struct {
	tls  bool
	gops uint64
	seed uint64

	frames uva.Addr // raw video: gops * frames * dim*dim bytes
	stream uva.Addr // output bitstream
	strLen uva.Addr // per-GoP encoded length
	cursor uva.Addr // bitstream cursor (loop-carried, last stage)
	rate   uva.Addr // rate-control accumulator
}

func newH264Prog(in Input, tls bool) *h264Prog {
	return &h264Prog{tls: tls, gops: uint64(h264GoPs * in.scale()), seed: in.Seed}
}

// H264 returns the Table 2 entry.
func H264() *Benchmark {
	return &Benchmark{
		Name:        "464.h264ref",
		Suite:       "SPEC CINT 2006",
		Description: "video encoder",
		Paradigm:    "Spec-DSWP+[DOALL,S]",
		SpecTypes:   "MV",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newH264Prog(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newH264Prog(in, true) },
	}
}

func (p *h264Prog) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	return pipeline.SpecDSWP("DOALL", "S")
}

func (p *h264Prog) Iterations() uint64 { return p.gops }

const h264FrameBytes = h264Dim * h264Dim

func (p *h264Prog) gopAddr(g uint64) uva.Addr {
	return p.frames + uva.Addr(g*h264Frames*h264FrameBytes)
}

func (p *h264Prog) Setup(ctx *core.SeqCtx) {
	total := int64(p.gops) * h264Frames * h264FrameBytes
	p.frames = ctx.Alloc(total)
	p.stream = ctx.Alloc(total) // encoded output is smaller; total is a bound
	p.strLen = ctx.AllocWords(int(p.gops))
	p.cursor = ctx.AllocWords(1)
	p.rate = ctx.AllocWords(1)
	img := ctx.Image()
	r := newRNG(p.seed)
	// Synthesize video: a drifting gradient plus noise, so motion search
	// finds real (nonzero) motion vectors.
	buf := make([]byte, h264FrameBytes)
	for g := uint64(0); g < p.gops; g++ {
		for f := 0; f < h264Frames; f++ {
			shift := int(g%7) + f*2
			for y := 0; y < h264Dim; y++ {
				for x := 0; x < h264Dim; x++ {
					v := (x + y + shift) * 3
					if r.intn(16) == 0 {
						v += r.intn(32)
					}
					buf[y*h264Dim+x] = byte(v)
				}
			}
			img.StoreBytes(p.gopAddr(g)+uva.Addr(f*h264FrameBytes), buf)
		}
	}
	ctx.Store(p.cursor, 0)
	ctx.Store(p.rate, 0)
}

// sad is the sum of absolute differences between a macroblock at (mx,my)
// in cur and (mx+dx, my+dy) in ref.
func sad(cur, ref []byte, mx, my, dx, dy int) (int, bool) {
	if mx+dx < 0 || my+dy < 0 || mx+dx+h264MB > h264Dim || my+dy+h264MB > h264Dim {
		return 0, false
	}
	s := 0
	for y := 0; y < h264MB; y++ {
		co := (my+y)*h264Dim + mx
		ro := (my+dy+y)*h264Dim + mx + dx
		for x := 0; x < h264MB; x++ {
			d := int(cur[co+x]) - int(ref[ro+x])
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s, true
}

// encodeGoP motion-estimates and entropy-packs one GoP; ops is the real SAD
// accumulate count. The quantizer derives from the GoP index, keeping the
// encode a pure function of the input (rate control is bookkeeping handled
// by the sequential stage).
func (p *h264Prog) encodeGoP(gop []byte, g uint64) (out []byte, ops int64) {
	quant := 8 + int(g%4)
	out = append(out, byte(quant))
	for f := 1; f < h264Frames; f++ {
		cur := gop[f*h264FrameBytes : (f+1)*h264FrameBytes]
		ref := gop[(f-1)*h264FrameBytes : f*h264FrameBytes]
		for my := 0; my+h264MB <= h264Dim; my += h264MB {
			for mx := 0; mx+h264MB <= h264Dim; mx += h264MB {
				bestS, bestDx, bestDy := 1<<30, 0, 0
				for dy := -h264Search; dy <= h264Search; dy++ {
					for dx := -h264Search; dx <= h264Search; dx++ {
						s, ok := sad(cur, ref, mx, my, dx, dy)
						if !ok {
							continue
						}
						ops += h264MB * h264MB
						if s < bestS {
							bestS, bestDx, bestDy = s, dx, dy
						}
					}
				}
				// Pack motion vector + quantized residual energy.
				out = append(out, byte(bestDx+h264Search), byte(bestDy+h264Search),
					byte(bestS/quant), byte(bestS/quant>>8))
			}
		}
	}
	return out, ops
}

func (p *h264Prog) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // parallel: encode one GoP in private frame buffers
		if iter >= p.gops {
			return false
		}
		gop := ctx.LoadBytes(p.gopAddr(iter), h264Frames*h264FrameBytes)
		out, ops := p.encodeGoP(gop, iter)
		ctx.Compute(ops * h264InstrPerOp)
		ctx.ProduceData(1, out, len(out))
	case 1: // sequential: assemble the bitstream, track rate
		out := ctx.ConsumeData(0).([]byte)
		cur := ctx.Load(p.cursor)
		ctx.WriteBytesCommit(p.stream+uva.Addr(cur), out)
		ctx.WriteCommit(p.strLen+uva.Addr(iter*8), uint64(len(out)))
		ctx.WriteCommit(p.cursor, cur+uint64(alignUp(len(out))))
		ctx.WriteCommit(p.rate, ctx.Load(p.rate)+uint64(len(out)))
	}
	return true
}

// tlsStage holds the rate-control token across the whole GoP encode — the
// conservative synchronization placement that serializes TLS here.
func (p *h264Prog) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.gops {
		return false
	}
	var cur, rate uint64
	if ctx.EpochFirst() {
		cur, rate = ctx.Load(p.cursor), ctx.Load(p.rate)
	} else {
		v := ctx.SyncRecvVec(2)
		cur, rate = v[0], v[1]
	}
	gop := ctx.LoadBytes(p.gopAddr(iter), h264Frames*h264FrameBytes)
	out, ops := p.encodeGoP(gop, iter)
	ctx.Compute(ops * h264InstrPerOp)
	ctx.WriteBytesCommit(p.stream+uva.Addr(cur), out)
	ctx.WriteCommit(p.strLen+uva.Addr(iter*8), uint64(len(out)))
	newCur := cur + uint64(alignUp(len(out)))
	ctx.WriteCommit(p.cursor, newCur)
	ctx.WriteCommit(p.rate, rate+uint64(len(out)))
	ctx.SyncSendVec([]uint64{newCur, rate + uint64(len(out))})
	return true
}

func (p *h264Prog) SeqIter(ctx *core.SeqCtx, iter uint64) {
	gop := ctx.LoadBytes(p.gopAddr(iter), h264Frames*h264FrameBytes)
	out, ops := p.encodeGoP(gop, iter)
	ctx.Compute(ops * h264InstrPerOp)
	cur := ctx.Load(p.cursor)
	ctx.StoreBytes(p.stream+uva.Addr(cur), out)
	ctx.Store(p.strLen+uva.Addr(iter*8), uint64(len(out)))
	ctx.Store(p.cursor, cur+uint64(alignUp(len(out))))
	ctx.Store(p.rate, ctx.Load(p.rate)+uint64(len(out)))
}

func (p *h264Prog) Checksum(img *mem.Image) uint64 {
	h := img.Load(p.cursor)
	h = mix(h, img.Load(p.rate))
	h = mix(h, img.ChecksumRange(p.stream, int(img.Load(p.cursor))))
	return h
}
