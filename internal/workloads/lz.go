package workloads

// lzCompress is the real compression kernel behind the 164.gzip workload: a
// greedy LZ77 with a 3-byte hash match finder, emitting a byte-oriented
// token stream (flag 0: literal run; flag 1: back-reference). lzDecompress
// inverts it exactly; tests round-trip every block.

import (
	"encoding/binary"
	"math/bits"
)

const (
	lzHashBits = 12
	lzMinMatch = 4
	lzMaxMatch = 255
	lzMaxDist  = 1 << 15
)

// lzMatchLen returns the longest common prefix (capped at limit) of
// src[c:] and src[i:], comparing eight bytes at a time. Both windows stay
// within src: c < i and i+limit <= len(src).
func lzMatchLen(src []byte, c, i, limit int) int {
	n := 0
	for n+8 <= limit {
		x := binary.LittleEndian.Uint64(src[c+n:]) ^ binary.LittleEndian.Uint64(src[i+n:])
		if x != 0 {
			n += bits.TrailingZeros64(x) >> 3
			return n
		}
		n += 8
	}
	for n < limit && src[c+n] == src[i+n] {
		n++
	}
	return n
}

// lzCompress returns the compressed form of src and the number of match
// probes performed (a faithful work measure for cost charging).
func lzCompress(src []byte) (out []byte, probes int) {
	return lzCompressInto(src, nil)
}

// lzCompressInto is lzCompress writing into buf (grown as needed), so
// callers can recycle the token stream when it is only an intermediate.
func lzCompressInto(src, buf []byte) (out []byte, probes int) {
	var table [1 << lzHashBits]int32 // stores position+1; 0 means empty
	// Worst case (incompressible input) is all literal runs: the payload
	// plus a 2-byte header per 255-byte run. Size for that so the stream
	// never regrows mid-block.
	if need := len(src) + len(src)/128 + 16; cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	out = buf[:0]
	litStart := 0
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > 255 {
				n = 255
			}
			out = append(out, 0, byte(n))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	i := 0
	for i+lzMinMatch <= len(src) {
		// One 32-bit load instead of three byte loads; identical hash
		// value (little-endian v holds b0|b1<<8|b2<<16).
		v := binary.LittleEndian.Uint32(src[i:])
		h := ((v&0xff)<<16 | v&0xff00 | v>>16&0xff) * 2654435761 >> (32 - lzHashBits)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		probes++
		if cand >= 0 && i-cand < lzMaxDist && src[cand] == src[i] {
			// Extend the match; one probe per matched byte.
			limit := len(src) - i
			if limit > lzMaxMatch {
				limit = lzMaxMatch
			}
			length := lzMatchLen(src, cand, i, limit)
			probes += length
			if length >= lzMinMatch {
				flushLits(i)
				dist := i - cand
				out = append(out, 1, byte(length), byte(dist), byte(dist>>8))
				i += length
				litStart = i
				continue
			}
		}
		i++
	}
	flushLits(len(src))
	return out, probes
}

// lzDecompress inverts lzCompress.
func lzDecompress(comp []byte) []byte {
	var out []byte
	for i := 0; i < len(comp); {
		switch comp[i] {
		case 0:
			n := int(comp[i+1])
			out = append(out, comp[i+2:i+2+n]...)
			i += 2 + n
		case 1:
			length := int(comp[i+1])
			dist := int(comp[i+2]) | int(comp[i+3])<<8
			start := len(out) - dist
			for k := 0; k < length; k++ {
				out = append(out, out[start+k])
			}
			i += 4
		default:
			panic("workloads: corrupt LZ stream")
		}
	}
	return out
}

// mtfRLE is the 256.bzip2 kernel: a move-to-front transform followed by
// run-length encoding and an order-0 frequency table, the core stages of
// bzip2's pipeline after the block sort. mtfRLEInverse inverts it.
func mtfRLE(src []byte) (out []byte, work int) {
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	mtf := make([]byte, len(src))
	for i, c := range src {
		// Find c's rank and move it to front.
		var r int
		for alphabet[r] != c {
			r++
		}
		work += r + 1
		copy(alphabet[1:r+1], alphabet[:r])
		alphabet[0] = c
		mtf[i] = byte(r)
	}
	// Encode the MTF ranks: zero runs (dominant for compressible data) as
	// 0x00+count, small ranks as single bytes, large ranks escaped — the
	// same zero-run coding bzip2 applies before its entropy coder.
	out = make([]byte, 0, len(src)/2+260)
	for i := 0; i < len(mtf); {
		r := mtf[i]
		if r == 0 {
			j := i
			for j < len(mtf) && mtf[j] == 0 && j-i < 255 {
				j++
			}
			out = append(out, 0x00, byte(j-i))
			i = j
			work += 2
			continue
		}
		if r < 0xF0 {
			out = append(out, r+1) // ranks 1..239 shift up one
		} else {
			out = append(out, 0xFF, r)
		}
		i++
		work++
	}
	return out, work
}

// mtfRLEInverse recovers the original block.
func mtfRLEInverse(comp []byte) []byte {
	var mtf []byte
	for i := 0; i < len(comp); {
		switch {
		case comp[i] == 0x00:
			for k := 0; k < int(comp[i+1]); k++ {
				mtf = append(mtf, 0)
			}
			i += 2
		case comp[i] == 0xFF:
			mtf = append(mtf, comp[i+1])
			i += 2
		default:
			mtf = append(mtf, comp[i]-1)
			i++
		}
	}
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	out := make([]byte, len(mtf))
	for i, r := range mtf {
		c := alphabet[r]
		copy(alphabet[1:int(r)+1], alphabet[:int(r)])
		alphabet[0] = c
		out[i] = c
	}
	return out
}
