package workloads

// lzCompress is the real compression kernel behind the 164.gzip workload: a
// greedy LZ77 with a 3-byte hash match finder, emitting a byte-oriented
// token stream (flag 0: literal run; flag 1: back-reference). lzDecompress
// inverts it exactly; tests round-trip every block.

const (
	lzHashBits = 12
	lzMinMatch = 4
	lzMaxMatch = 255
	lzMaxDist  = 1 << 15
)

func lzHash(b []byte) uint32 {
	return (uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])) * 2654435761 >> (32 - lzHashBits)
}

// lzCompress returns the compressed form of src and the number of match
// probes performed (a faithful work measure for cost charging).
func lzCompress(src []byte) (out []byte, probes int) {
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	out = make([]byte, 0, len(src)/2+16)
	litStart := 0
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > 255 {
				n = 255
			}
			out = append(out, 0, byte(n))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	i := 0
	for i+lzMinMatch <= len(src) {
		h := lzHash(src[i:])
		cand := table[h]
		table[h] = int32(i)
		probes++
		if cand >= 0 && i-int(cand) < lzMaxDist && src[cand] == src[i] {
			// Extend the match.
			length := 0
			for i+length < len(src) && length < lzMaxMatch &&
				src[int(cand)+length] == src[i+length] {
				length++
				probes++
			}
			if length >= lzMinMatch {
				flushLits(i)
				dist := i - int(cand)
				out = append(out, 1, byte(length), byte(dist), byte(dist>>8))
				i += length
				litStart = i
				continue
			}
		}
		i++
	}
	flushLits(len(src))
	return out, probes
}

// lzDecompress inverts lzCompress.
func lzDecompress(comp []byte) []byte {
	var out []byte
	for i := 0; i < len(comp); {
		switch comp[i] {
		case 0:
			n := int(comp[i+1])
			out = append(out, comp[i+2:i+2+n]...)
			i += 2 + n
		case 1:
			length := int(comp[i+1])
			dist := int(comp[i+2]) | int(comp[i+3])<<8
			start := len(out) - dist
			for k := 0; k < length; k++ {
				out = append(out, out[start+k])
			}
			i += 4
		default:
			panic("workloads: corrupt LZ stream")
		}
	}
	return out
}

// mtfRLE is the 256.bzip2 kernel: a move-to-front transform followed by
// run-length encoding and an order-0 frequency table, the core stages of
// bzip2's pipeline after the block sort. mtfRLEInverse inverts it.
func mtfRLE(src []byte) (out []byte, work int) {
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	mtf := make([]byte, len(src))
	for i, c := range src {
		// Find c's rank and move it to front.
		var r int
		for alphabet[r] != c {
			r++
		}
		work += r + 1
		copy(alphabet[1:r+1], alphabet[:r])
		alphabet[0] = c
		mtf[i] = byte(r)
	}
	// Encode the MTF ranks: zero runs (dominant for compressible data) as
	// 0x00+count, small ranks as single bytes, large ranks escaped — the
	// same zero-run coding bzip2 applies before its entropy coder.
	out = make([]byte, 0, len(src)/2+260)
	for i := 0; i < len(mtf); {
		r := mtf[i]
		if r == 0 {
			j := i
			for j < len(mtf) && mtf[j] == 0 && j-i < 255 {
				j++
			}
			out = append(out, 0x00, byte(j-i))
			i = j
			work += 2
			continue
		}
		if r < 0xF0 {
			out = append(out, r+1) // ranks 1..239 shift up one
		} else {
			out = append(out, 0xFF, r)
		}
		i++
		work++
	}
	return out, work
}

// mtfRLEInverse recovers the original block.
func mtfRLEInverse(comp []byte) []byte {
	var mtf []byte
	for i := 0; i < len(comp); {
		switch {
		case comp[i] == 0x00:
			for k := 0; k < int(comp[i+1]); k++ {
				mtf = append(mtf, 0)
			}
			i += 2
		case comp[i] == 0xFF:
			mtf = append(mtf, comp[i+1])
			i += 2
		default:
			mtf = append(mtf, comp[i]-1)
			i++
		}
	}
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	out := make([]byte, len(mtf))
	for i, r := range mtf {
		c := alphabet[r]
		copy(alphabet[1:int(r)+1], alphabet[:int(r)])
		alphabet[0] = c
		out[i] = c
	}
	return out
}
