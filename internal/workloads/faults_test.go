package workloads

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/faults"
	"dsmtx/internal/sim"
	"dsmtx/internal/trace"
)

// faultRun executes crc32 at 16 cores under the given fault plan, with an
// optional tracer, and returns the result (plus the Chrome trace bytes when
// traced).
func faultRun(t *testing.T, in Input, plan *faults.Plan, tr *trace.Tracer) (Result, []byte) {
	t.Helper()
	b, err := ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(b, in, DSMTX, 16, func(cfg *core.Config) {
		cfg.Faults = plan
		cfg.Tracer = tr
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		return res, nil
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestEmptyFaultPlanIsByteIdentical pins the zero-cost-when-off contract: a
// non-nil but empty plan must leave every virtual-time outcome identical to
// a nil plan — no reliable-layer state, no heartbeats, no extra events.
func TestEmptyFaultPlanIsByteIdentical(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.02}
	withNil, _ := faultRun(t, in, nil, nil)
	withEmpty, _ := faultRun(t, in, &faults.Plan{}, nil)
	if !reflect.DeepEqual(withNil, withEmpty) {
		t.Fatalf("empty plan perturbed the run:\n nil   %+v\n empty %+v", withNil, withEmpty)
	}
}

// TestFaultedRunsBitIdentical extends the repeat-run determinism pin to a
// lossy interconnect: identical fault seeds must reproduce every Result
// field — including the drop/retransmission counters — across repeated and
// concurrent runs.
func TestFaultedRunsBitIdentical(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.001}
	plan := &faults.Plan{
		Seed: 9, DropRate: 0.002, AckDropRate: 0.002,
		SpikeRate: 0.01, SpikeExtra: 20 * sim.Microsecond,
	}
	base, _ := faultRun(t, in, plan, nil)
	if base.Traffic.RetransMessages == 0 {
		t.Fatal("plan never forced a retransmission; raise the drop rate")
	}
	again, _ := faultRun(t, in, plan, nil)
	if !reflect.DeepEqual(again, base) {
		t.Fatalf("repeat faulted run differs:\n got %+v\nwant %+v", again, base)
	}
	results := make([]Result, 3)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], _ = faultRun(t, in, plan, nil)
		}()
	}
	wg.Wait()
	for i, got := range results {
		if !reflect.DeepEqual(got, base) {
			t.Errorf("concurrent faulted run %d differs:\n got %+v\nwant %+v", i, got, base)
		}
	}
}

// TestCrashSurvivalMatchesSequential injects a mid-run worker crash (the
// crash instant is derived from a clean run's elapsed time, so the test
// self-scales) and requires the run to complete with the sequential
// reference checksum, a recorded crash, and re-dispatch time attributed in
// the stall table's crashed column.
func TestCrashSurvivalMatchesSequential(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.001}
	clean, _ := faultRun(t, in, nil, nil)
	b, err := ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	_, wantSum, err := RunSequentialRef(b, in)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Checksum != wantSum {
		t.Fatalf("clean run checksum %#x != sequential %#x", clean.Checksum, wantSum)
	}
	plan := &faults.Plan{
		Crashes: []faults.Crash{
			{Rank: 1, At: clean.Elapsed / 2, Downtime: 100 * sim.Microsecond},
		},
	}
	res, _ := faultRun(t, in, plan, trace.New())
	if res.Crashes == 0 {
		t.Fatal("scheduled crash never fired")
	}
	if res.Redispatch <= 0 {
		t.Fatal("crash recovery accounted no re-dispatch time")
	}
	if res.Checksum != wantSum {
		t.Fatalf("crashed run checksum %#x != sequential %#x", res.Checksum, wantSum)
	}
	if res.Elapsed <= clean.Elapsed {
		t.Fatalf("crash was free: %v with crash vs %v clean", res.Elapsed, clean.Elapsed)
	}
	var crashed sim.Time
	for _, row := range res.Stalls.Rows {
		crashed += row.Crashed
	}
	if crashed <= 0 {
		t.Fatal("stall attribution has no time in the crashed column")
	}
}

// TestCrashedRunsBitIdentical: the full crash/rejoin/re-dispatch path must
// itself be deterministic, down to the exported trace bytes.
func TestCrashedRunsBitIdentical(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.001}
	clean, _ := faultRun(t, in, nil, nil)
	plan := &faults.Plan{
		Seed: 3, DropRate: 0.001, AckDropRate: 0.001,
		Crashes: []faults.Crash{
			{Rank: 2, At: clean.Elapsed / 3, Downtime: 50 * sim.Microsecond},
		},
	}
	res1, trace1 := faultRun(t, in, plan, trace.New())
	res2, trace2 := faultRun(t, in, plan, trace.New())
	if res1.Crashes == 0 {
		t.Fatal("scheduled crash never fired")
	}
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("crashed-run traces differ: %d vs %d bytes", len(trace1), len(trace2))
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("crashed runs differ:\n got %+v\nwant %+v", res2, res1)
	}
}

// TestStragglerSlowsRunButPreservesResult: a straggler window dilates one
// rank's compute; the run must finish later than the clean run with the
// same commits and checksum.
func TestStragglerSlowsRunButPreservesResult(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.001}
	clean, _ := faultRun(t, in, nil, nil)
	plan := &faults.Plan{
		Stragglers: []faults.Straggler{
			{Rank: 1, From: 0, Dur: clean.Elapsed, Factor: 4},
		},
	}
	slow, _ := faultRun(t, in, plan, nil)
	if slow.Elapsed <= clean.Elapsed {
		t.Fatalf("straggler was free: %v vs clean %v", slow.Elapsed, clean.Elapsed)
	}
	if slow.Checksum != clean.Checksum || slow.Committed != clean.Committed {
		t.Fatalf("straggler changed the computation: %+v vs %+v", slow, clean)
	}
}
