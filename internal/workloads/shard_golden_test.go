package workloads

import (
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/platform"
)

// TestBackendEquivalenceCommitShards extends the backend-equivalence gate
// across the sharded commit pipeline: for every shard count both backends
// must reproduce the sequential checksum with identical committed and
// misspeculation counts. Part of the -race gate in verify.sh, which makes
// the cross-shard vote and the AnySource control mailboxes part of the
// host data-race audit.
func TestBackendEquivalenceCommitShards(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.02}
	b, err := ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	_, seqCheck, err := RunSequentialRef(b, in)
	if err != nil {
		t.Fatal(err)
	}
	var base Result
	for _, shards := range []int{1, 2, 4} {
		vres, err := RunParallel(b, in, DSMTX, 12, func(cfg *core.Config) {
			cfg.CommitShards = shards
		})
		if err != nil {
			t.Fatalf("vtime shards=%d: %v", shards, err)
		}
		hres, err := RunParallel(b, in, DSMTX, 12, func(cfg *core.Config) {
			cfg.Backend = core.BackendHost
			cfg.CommitShards = shards
		})
		if err != nil {
			t.Fatalf("host shards=%d: %v", shards, err)
		}
		if vres.Checksum != seqCheck {
			t.Errorf("shards=%d: vtime checksum %#x != sequential %#x", shards, vres.Checksum, seqCheck)
		}
		if hres.Checksum != seqCheck {
			t.Errorf("shards=%d: host checksum %#x != sequential %#x", shards, hres.Checksum, seqCheck)
		}
		if hres.Committed != vres.Committed || hres.Misspecs != vres.Misspecs {
			t.Errorf("shards=%d: host committed/misspecs %d/%d, vtime %d/%d",
				shards, hres.Committed, hres.Misspecs, vres.Committed, vres.Misspecs)
		}
		if shards == 1 {
			base = vres
		} else if vres.Committed != base.Committed || vres.Misspecs != base.Misspecs {
			t.Errorf("shards=%d: committed/misspecs %d/%d differ from 1-shard %d/%d",
				shards, vres.Committed, vres.Misspecs, base.Committed, base.Misspecs)
		}
	}
}

// TestSingleShardByteIdentity pins the CommitShards=1 layout to the
// pre-sharding runtime, observable for observable: virtual elapsed time,
// checksum, committed/misspec counts, wire bytes, kernel events and message
// totals captured on the commit of record before the sharded pipeline
// landed. Any drift here means the default configuration stopped being the
// paper's single-commit-unit machine.
func TestSingleShardByteIdentity(t *testing.T) {
	goldens := []struct {
		bench     string
		cores     int
		rate      float64
		elapsed   platform.Duration
		checksum  uint64
		committed uint64
		misspecs  uint64
		bytes     uint64
		events    uint64
		msgs      uint64
	}{
		{"crc32", 8, 0, 9238487, 0xd1cdbc30c4e397f0, 96, 0, 0, 0, 0},
		{"crc32", 8, 0.02, 13062054, 0x87b5799474782c7c, 96, 1, 8984460, 25957, 842},
		{"164.gzip", 11, 0, 8412691, 0xa84730583335fe25, 250, 0, 0, 0, 0},
		{"blackscholes", 8, 0, 26715527, 0xc763396f78d6acbf, 252, 0, 0, 0, 0},
		{"swaptions", 9, 0, 3667441, 0x2ef919486377735c, 128, 0, 0, 0, 0},
	}
	for _, g := range goldens {
		b, err := ByName(g.bench)
		if err != nil {
			t.Fatal(err)
		}
		in := Input{Scale: 1, Seed: 42, MisspecRate: g.rate}
		res, err := RunParallel(b, in, DSMTX, g.cores, nil)
		if err != nil {
			t.Fatalf("%s@%d: %v", g.bench, g.cores, err)
		}
		if res.Elapsed != g.elapsed || res.Checksum != g.checksum ||
			res.Committed != g.committed || res.Misspecs != g.misspecs {
			t.Errorf("%s@%d rate=%v: elapsed=%d checksum=%#x committed=%d misspecs=%d, want %d/%#x/%d/%d",
				g.bench, g.cores, g.rate, res.Elapsed, res.Checksum, res.Committed, res.Misspecs,
				g.elapsed, g.checksum, g.committed, g.misspecs)
		}
		// The full wire/event fingerprint is pinned on the recovery-bearing
		// row; the zero-valued goldens only pin the result fields above.
		if g.bytes != 0 && (res.Bytes != g.bytes || res.Events != g.events || res.Traffic.Messages != g.msgs) {
			t.Errorf("%s@%d rate=%v: bytes=%d events=%d msgs=%d, want %d/%d/%d",
				g.bench, g.cores, g.rate, res.Bytes, res.Events, res.Traffic.Messages,
				g.bytes, g.events, g.msgs)
		}
	}
}
