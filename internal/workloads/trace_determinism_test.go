package workloads

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/trace"
)

// traceRun executes one benchmark configuration with a fresh tracer and
// returns the run result plus the exported Chrome trace bytes.
func traceRun(t *testing.T, name string, cores int, in Input, tr *trace.Tracer) (Result, []byte) {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var tune func(*core.Config)
	if tr != nil {
		tune = func(cfg *core.Config) { cfg.Tracer = tr }
	}
	res, err := RunParallel(b, in, DSMTX, cores, tune)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		return res, nil
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestChromeTraceDeterministic is the golden determinism test: two runs of
// the same configuration from the same seed must export byte-identical
// Chrome traces. The input includes misspeculation so recovery spans (ERM,
// FLQ, SEQ, RFP) are part of the comparison, not just the steady state.
func TestChromeTraceDeterministic(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.02}
	res1, trace1 := traceRun(t, "crc32", 16, in, trace.New())
	res2, trace2 := traceRun(t, "crc32", 16, in, trace.New())
	if res1.Misspecs == 0 {
		t.Fatal("want misspeculations so recovery spans are exercised")
	}
	if len(trace1) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("trace bytes differ between identical runs: %d vs %d bytes", len(trace1), len(trace2))
	}
	if res1.Elapsed != res2.Elapsed || res1.Checksum != res2.Checksum {
		t.Fatalf("results differ between identical runs: %+v vs %+v", res1, res2)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace1, &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("exported trace holds no events")
	}
}

// TestRepeatRunsBitIdentical pins in-process run-to-run determinism on a
// wide configuration: 256.bzip2 at 96 cores has a ~90-worker DOALL stage,
// so any iteration-order nondeterminism in a broadcast (e.g. ranging over
// the per-stage port map when emitting terminate markers, which once
// permuted NIC serialization order run to run) shifts arrival times and
// shows up in Events and the recovery totals. Every Result field must be
// identical, not just the rendered ones.
func TestRepeatRunsBitIdentical(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.001}
	base, _ := traceRun(t, "256.bzip2", 96, in, nil)
	if base.Misspecs == 0 {
		t.Fatal("want misspeculations so the recovery path is exercised")
	}
	again, _ := traceRun(t, "256.bzip2", 96, in, nil)
	if !reflect.DeepEqual(again, base) {
		t.Fatalf("repeat run differs:\n got %+v\nwant %+v", again, base)
	}
}

// TestConcurrentRunsBitIdentical is the host-parallel variant: simulations
// running concurrently on the host (as the experiment scheduler does) must
// not perturb each other — each kernel's outcome is a pure function of its
// configuration. Under -race this doubles as the scheduler's race smoke.
func TestConcurrentRunsBitIdentical(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.001}
	base, _ := traceRun(t, "256.bzip2", 96, in, nil)
	names := []string{"164.gzip", "130.li", "256.bzip2"}
	results := make([]Result, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(2)
		go func() {
			defer wg.Done()
			b, err := ByName(name)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := RunParallel(b, DefaultInput(), DSMTX, 32, nil); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			results[i], _ = traceRun(t, "256.bzip2", 96, in, nil)
		}()
	}
	wg.Wait()
	for i, got := range results {
		if !reflect.DeepEqual(got, base) {
			t.Errorf("run concurrent with %s differs:\n got %+v\nwant %+v", names[i], got, base)
		}
	}
}

// TestTracingDoesNotPerturbVirtualTime pins the binding invariant of the
// observability layer: attaching a tracer must not alter any virtual-time
// outcome. Every figure-relevant field of the result — elapsed time,
// commits, misspeculations, recovery phase totals, wire traffic — must be
// bit-identical with tracing on and off.
func TestTracingDoesNotPerturbVirtualTime(t *testing.T) {
	in := Input{Scale: 1, Seed: 42, MisspecRate: 0.02}
	plain, _ := traceRun(t, "crc32", 16, in, nil)
	traced, _ := traceRun(t, "crc32", 16, in, trace.New())
	if plain.Elapsed != traced.Elapsed {
		t.Errorf("Elapsed: %v untraced vs %v traced", plain.Elapsed, traced.Elapsed)
	}
	if plain.Checksum != traced.Checksum {
		t.Errorf("Checksum: %#x untraced vs %#x traced", plain.Checksum, traced.Checksum)
	}
	if plain.Committed != traced.Committed || plain.Misspecs != traced.Misspecs {
		t.Errorf("commits: %d/%d untraced vs %d/%d traced",
			plain.Committed, plain.Misspecs, traced.Committed, traced.Misspecs)
	}
	if plain.ERM != traced.ERM || plain.FLQ != traced.FLQ || plain.SEQ != traced.SEQ || plain.RFP != traced.RFP {
		t.Errorf("recovery phases differ: ERM %v/%v FLQ %v/%v SEQ %v/%v RFP %v/%v",
			plain.ERM, traced.ERM, plain.FLQ, traced.FLQ,
			plain.SEQ, traced.SEQ, plain.RFP, traced.RFP)
	}
	if plain.Bytes != traced.Bytes || plain.Traffic != traced.Traffic {
		t.Errorf("traffic differs: %+v untraced vs %+v traced", plain.Traffic, traced.Traffic)
	}
	// Per-class sums must reproduce the totals bit-identically.
	tr := traced.Traffic
	if tr.QueueBytes+tr.PageBytes+tr.ControlBytes != tr.Bytes {
		t.Errorf("class bytes %d+%d+%d do not sum to total %d",
			tr.QueueBytes, tr.PageBytes, tr.ControlBytes, tr.Bytes)
	}
	if tr.QueueMessages+tr.PageMessages+tr.ControlMessages != tr.Messages {
		t.Errorf("class messages %d+%d+%d do not sum to total %d",
			tr.QueueMessages, tr.PageMessages, tr.ControlMessages, tr.Messages)
	}
}
