package workloads

import (
	"fmt"
	"strconv"
	"strings"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// 130.li — Lisp interpreter. Each iteration interprets one script from the
// input batch. The parallelization speculates that scripts are independent:
// that none modifies the interpreter's global environment (memory value
// speculation — reads of globals are validated) and that none exits the
// interpreter (control-flow speculation). Accesses to the environment are
// transactional; a rare (set! g …) script invalidates in-flight readers and
// a rare (exit) is caught in-thread.
//
// DSMTX: DSWP+[Spec-DOALL,S] — interpret in parallel, print in order.
// TLS: the print is a synchronized dependence; the paper observes TLS
// "limited due to synchronization arising from the print instruction".

const (
	liScripts       = 600
	liSlotBytes     = 320
	liInstrPerEval  = 100
	liLineBytes     = 24    // fixed-width output record per script
	liTLSPrintInstr = 30000 // the in-order print path of the TLS version
)

type liProg struct {
	tls     bool
	scripts uint64
	seed    uint64
	special map[uint64]int // iteration -> 1 (set!) or 2 (exit)

	slots    uva.Addr // script texts
	out      uva.Addr // per-script result words
	printBuf uva.Addr // the "printed" output records
	printCur uva.Addr // print cursor (loop-carried)
	g        uva.Addr // the global environment variable
}

func newLiProg(in Input, tls bool) *liProg {
	n := uint64(liScripts * in.scale())
	p := &liProg{tls: tls, scripts: n, seed: in.Seed, special: make(map[uint64]int)}
	// Alternate environment writers and interpreter exits, deterministically.
	for i, iter := range misspecList(n, in.MisspecRate, in.Seed+4) {
		p.special[iter] = 1 + i%2
	}
	return p
}

// Lisp returns the Table 2 entry.
func Lisp() *Benchmark {
	return &Benchmark{
		Name:        "130.li",
		Suite:       "SPEC CINT 95",
		Description: "lisp interpreter",
		Paradigm:    "DSWP+[Spec-DOALL,S]",
		SpecTypes:   "CFS,MVS,MV",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newLiProg(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newLiProg(in, true) },
	}
}

func (p *liProg) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	return pipeline.DSWP("Spec-DOALL", "S")
}

func (p *liProg) Iterations() uint64 { return p.scripts }

func (p *liProg) slotAddr(i uint64) uva.Addr { return p.slots + uva.Addr(i*liSlotBytes) }

// script generates the deterministic source text for one iteration.
func (p *liProg) script(iter uint64) string {
	switch p.special[iter] {
	case 1:
		return "(set! g (+ g 7))"
	case 2:
		return "(exit)"
	}
	r := newRNG(mix(p.seed, iter*131))
	switch r.intn(5) {
	case 0: // environment reader
		return fmt.Sprintf("(define (f n) (if (< n 2) n (+ (f (- n 1)) (f (- n 2))))) (+ (f %d) g)", 9+r.intn(3))
	case 1: // tail-recursive sum
		return fmt.Sprintf("(define (sum n acc) (if (= n 0) acc (sum (- n 1) (+ acc n)))) (sum %d 0)", 150+r.intn(100))
	default: // fibonacci tower
		return fmt.Sprintf("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib %d)", 9+r.intn(4))
	}
}

func (p *liProg) Setup(ctx *core.SeqCtx) {
	p.slots = ctx.Alloc(int64(p.scripts) * liSlotBytes)
	p.out = ctx.AllocWords(int(p.scripts))
	p.printBuf = ctx.Alloc(int64(p.scripts) * liLineBytes)
	p.printCur = ctx.AllocWords(1)
	p.g = ctx.AllocWords(1)
	img := ctx.Image()
	for i := uint64(0); i < p.scripts; i++ {
		text := p.script(i)
		slot := make([]byte, liSlotBytes)
		copy(slot, text)
		img.StoreBytes(p.slotAddr(i), slot)
	}
	ctx.Store(p.g, 1000)
	ctx.Store(p.printCur, 0)
}

// env adapts the interpreter's global-variable access to either worker
// (transactional) or sequential memory.
type liEnv struct {
	getG func() int64
	setG func(int64)
	exit func() // invoked by (exit)
}

// interpret runs one script and reports the result and the eval-step count
// (the work measure).
func (p *liProg) interpret(src string, env liEnv) (result int64, steps int64) {
	it := &liInterp{env: env}
	forms := parseLisp(src)
	var v int64
	for _, f := range forms {
		v = it.eval(f, nil)
	}
	return v, it.steps
}

// formatLine renders the fixed-width output record the print stage emits.
func formatLine(iter uint64, v int64) []byte {
	line := make([]byte, liLineBytes)
	copy(line, fmt.Sprintf("%06d %d\n", iter, v))
	return line
}

func (p *liProg) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // parallel: interpret the script transactionally
		if iter >= p.scripts {
			return false
		}
		src := string(ctx.LoadBytes(p.slotAddr(iter), liSlotBytes))
		env := liEnv{
			getG: func() int64 { return int64(ctx.Read(p.g)) },
			setG: func(v int64) { ctx.Write(p.g, uint64(v)) },
			exit: func() { ctx.Misspec() }, // speculated: no script exits
		}
		v, steps := p.interpret(src, env)
		ctx.Compute(steps * liInstrPerEval)
		ctx.WriteCommit(p.out+uva.Addr(iter*8), uint64(v))
		ctx.Produce(1, uint64(v))
	case 1: // sequential: print in order
		v := int64(ctx.Consume(0))
		cur := ctx.Load(p.printCur)
		ctx.Compute(800) // formatting
		ctx.WriteBytesCommit(p.printBuf+uva.Addr(cur), formatLine(iter, v))
		ctx.WriteCommit(p.printCur, cur+liLineBytes)
	}
	return true
}

func (p *liProg) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.scripts {
		return false
	}
	src := string(ctx.LoadBytes(p.slotAddr(iter), liSlotBytes))
	env := liEnv{
		getG: func() int64 { return int64(ctx.Read(p.g)) },
		setG: func(v int64) { ctx.Write(p.g, uint64(v)) },
		exit: func() { ctx.Misspec() },
	}
	v, steps := p.interpret(src, env)
	ctx.Compute(steps * liInstrPerEval)
	ctx.WriteCommit(p.out+uva.Addr(iter*8), uint64(v))
	// The print is synchronized: the cursor token serializes formatting
	// and output across iterations.
	var cur uint64
	if ctx.EpochFirst() {
		cur = ctx.Load(p.printCur)
	} else {
		cur = ctx.SyncRecv()
	}
	ctx.Compute(liTLSPrintInstr)
	ctx.WriteBytesCommit(p.printBuf+uva.Addr(cur), formatLine(iter, v))
	ctx.WriteCommit(p.printCur, cur+liLineBytes)
	ctx.SyncSend(cur + liLineBytes)
	return true
}

func (p *liProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	src := string(ctx.LoadBytes(p.slotAddr(iter), liSlotBytes))
	exited := false
	env := liEnv{
		getG: func() int64 { return int64(ctx.Load(p.g)) },
		setG: func(v int64) { ctx.Store(p.g, uint64(v)) },
		exit: func() { exited = true },
	}
	v, steps := p.interpret(src, env)
	if exited {
		v = -1 // batch mode: (exit) is recorded, not fatal
	}
	ctx.Compute(steps * liInstrPerEval)
	ctx.Store(p.out+uva.Addr(iter*8), uint64(v))
	cur := ctx.Load(p.printCur)
	ctx.Compute(800)
	ctx.StoreBytes(p.printBuf+uva.Addr(cur), formatLine(iter, v))
	ctx.Store(p.printCur, cur+liLineBytes)
}

func (p *liProg) Checksum(img *mem.Image) uint64 {
	h := img.Load(p.g)
	h = mix(h, img.Load(p.printCur))
	h = mix(h, img.ChecksumRange(p.out, int(p.scripts)*8))
	h = mix(h, img.ChecksumRange(p.printBuf, int(p.scripts)*liLineBytes))
	return h
}

// --- the interpreter ---

// liInterp evaluates parsed forms. Functions are global (defined by
// (define (name args…) body)); locals are the active call's frame.
type liInterp struct {
	env   liEnv
	funcs map[string]liFunc
	steps int64
}

type liFunc struct {
	params []string
	body   any
}

type frame map[string]int64

func (it *liInterp) eval(form any, f frame) int64 {
	it.steps++
	switch v := form.(type) {
	case int64:
		return v
	case string:
		if f != nil {
			if val, ok := f[v]; ok {
				return val
			}
		}
		if v == "g" {
			return it.env.getG()
		}
		panic("li: unbound symbol " + v)
	case []any:
		return it.evalList(v, f)
	}
	panic(fmt.Sprintf("li: bad form %T", form))
}

func (it *liInterp) evalList(list []any, f frame) int64 {
	if len(list) == 0 {
		return 0
	}
	head, _ := list[0].(string)
	switch head {
	case "define":
		sig := list[1].([]any)
		name := sig[0].(string)
		var params []string
		for _, p := range sig[1:] {
			params = append(params, p.(string))
		}
		if it.funcs == nil {
			it.funcs = make(map[string]liFunc)
		}
		it.funcs[name] = liFunc{params: params, body: list[2]}
		return 0
	case "if":
		if it.eval(list[1], f) != 0 {
			return it.eval(list[2], f)
		}
		return it.eval(list[3], f)
	case "set!":
		v := it.eval(list[2], f)
		it.env.setG(v)
		return v
	case "exit":
		it.env.exit()
		return 0
	case "+", "-", "*", "<", "=":
		a := it.eval(list[1], f)
		b := it.eval(list[2], f)
		switch head {
		case "+":
			return a + b
		case "-":
			return a - b
		case "*":
			return a * b
		case "<":
			if a < b {
				return 1
			}
			return 0
		default:
			if a == b {
				return 1
			}
			return 0
		}
	}
	// Function application.
	fn, ok := it.funcs[head]
	if !ok {
		panic("li: undefined function " + head)
	}
	callFrame := make(frame, len(fn.params))
	for i, pname := range fn.params {
		callFrame[pname] = it.eval(list[i+1], f)
	}
	return it.eval(fn.body, callFrame)
}

// parseLisp tokenizes and parses source into a list of top-level forms.
func parseLisp(src string) []any {
	src = strings.ReplaceAll(src, "(", " ( ")
	src = strings.ReplaceAll(src, ")", " ) ")
	src = strings.TrimRight(src, "\x00")
	tokens := strings.Fields(src)
	var forms []any
	pos := 0
	for pos < len(tokens) {
		form, next := parseForm(tokens, pos)
		forms = append(forms, form)
		pos = next
	}
	return forms
}

func parseForm(tokens []string, pos int) (any, int) {
	tok := tokens[pos]
	if tok == "(" {
		var list []any
		pos++
		for tokens[pos] != ")" {
			var form any
			form, pos = parseForm(tokens, pos)
			list = append(list, form)
		}
		return list, pos + 1
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return n, pos + 1
	}
	return tok, pos + 1
}
