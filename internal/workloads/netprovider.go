package workloads

import "dsmtx/internal/netrun"

// Register the benchmark table as netrun's workload provider, so any binary
// linking workloads can serve net-backend jobs as a daemon (netrun itself
// stays workload-agnostic).
func init() {
	netrun.SetProvider(func(spec netrun.JobSpec) (netrun.ProgramSet, error) {
		b, err := ByName(spec.Bench)
		if err != nil {
			return netrun.ProgramSet{}, err
		}
		in := Input{Scale: spec.Scale, MisspecRate: spec.MisspecRate, Seed: spec.Seed}
		invocations := b.Invocations
		if invocations < 1 {
			invocations = 1
		}
		return netrun.ProgramSet{
			Invocations: invocations,
			New:         func(inv int) netrun.Program { return b.NewDSMTX(in, inv) },
		}, nil
	})
}
