package workloads

import (
	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// 256.bzip2 — file compressor. Like 164.gzip the pipeline is read /
// compress / write, but the block size is fixed and known in the first
// stage, so no Y-branch is needed; error-handling control-flow paths are
// speculated not taken, and DSMTX's versioning gives each worker its own
// block arrays. The compression kernel (move-to-front + run-length
// encoding, the heart of bzip2's post-sort pipeline) costs far more
// compute per byte than gzip's, so bandwidth pressure is lower and
// scalability better.
//
// The paper notes TLS beats Spec-DSWP slightly here: Spec-DSWP streams the
// whole input through the first stage, while TLS sends each worker only the
// file descriptor and lets it read its own block — reproduced below by TLS
// workers pulling their blocks via Copy-On-Access instead of the pipeline.

const (
	bzBlocks       = 260
	bzBlockBytes   = 16 << 10
	bzInstrPerUnit = 11 // per unit of MTF/RLE work actually performed
)

type bzProg struct {
	tls     bool
	blocks  uint64
	seed    uint64
	errIter map[uint64]bool // blocks tripping the speculated error path

	input  uva.Addr
	output uva.Addr
	outLen uva.Addr
	outCur uva.Addr
}

func newBzProg(in Input, tls bool) *bzProg {
	blocks := uint64(bzBlocks * in.scale())
	return &bzProg{
		tls:     tls,
		blocks:  blocks,
		seed:    in.Seed,
		errIter: misspecSet(blocks, in.MisspecRate, in.Seed+3),
	}
}

// Bzip2 returns the Table 2 entry.
func Bzip2() *Benchmark {
	return &Benchmark{
		Name:        "256.bzip2",
		Suite:       "SPEC CINT 2000",
		Description: "file compressor",
		Paradigm:    "Spec-DSWP+[S,DOALL,S]",
		SpecTypes:   "CFS,MV",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newBzProg(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newBzProg(in, true) },
	}
}

func (p *bzProg) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	return pipeline.SpecDSWP("S", "DOALL", "S")
}

func (p *bzProg) Iterations() uint64 { return p.blocks }

func (p *bzProg) blockAddr(i uint64) uva.Addr { return p.input + uva.Addr(i*bzBlockBytes) }

func (p *bzProg) Setup(ctx *core.SeqCtx) {
	total := int64(p.blocks) * bzBlockBytes
	p.input = ctx.Alloc(total)
	p.output = ctx.Alloc(2*total + int64(p.blocks)*512)
	p.outLen = ctx.AllocWords(int(p.blocks))
	p.outCur = ctx.AllocWords(1)
	img := ctx.Image()
	for i := uint64(0); i < p.blocks; i++ {
		data := newRNG(mix(p.seed, i*31)).bytes(bzBlockBytes)
		if p.errIter[i] {
			data[0] = 0xFE // triggers the speculated-not-taken error path
		}
		img.StoreBytes(p.blockAddr(i), data)
	}
	ctx.Store(p.outCur, 0)
}

func (p *bzProg) compress(block []byte) (comp []byte, instr int64, errPath bool) {
	if block[0] == 0xFE {
		return nil, 0, true
	}
	comp, work := mtfRLE(block)
	return comp, int64(work) * bzInstrPerUnit, false
}

func (p *bzProg) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // sequential: read the fixed-size block, stream it down
		if iter >= p.blocks {
			return false
		}
		block := ctx.LoadBytes(p.blockAddr(iter), bzBlockBytes)
		ctx.ProduceData(1, block, bzBlockBytes)
	case 1: // parallel: compress
		block := ctx.ConsumeData(0).([]byte)
		comp, instr, errPath := p.compress(block)
		if errPath {
			ctx.Misspec()
		}
		ctx.Compute(instr)
		ctx.ProduceData(2, comp, len(comp))
	case 2: // sequential: write
		comp := ctx.ConsumeData(1).([]byte)
		out := ctx.Load(p.outCur)
		ctx.WriteBytesCommit(p.output+uva.Addr(out), comp)
		ctx.WriteCommit(p.outLen+uva.Addr(iter*8), uint64(len(comp)))
		ctx.WriteCommit(p.outCur, out+uint64(alignUp(len(comp))))
	}
	return true
}

// tlsStage reads its own block (only the "file descriptor" — the block
// index — is implicit) and synchronizes the output cursor after
// compressing.
func (p *bzProg) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.blocks {
		return false
	}
	block := ctx.LoadBytes(p.blockAddr(iter), bzBlockBytes)
	comp, instr, errPath := p.compress(block)
	if errPath {
		ctx.Misspec()
	}
	ctx.Compute(instr)
	var out uint64
	if ctx.EpochFirst() {
		out = ctx.Load(p.outCur)
	} else {
		out = ctx.SyncRecv()
	}
	// Forward the cursor the moment it is known (the optimal sync
	// placement): the block write itself happens off the critical path.
	newOut := out + uint64(alignUp(len(comp)))
	ctx.SyncSend(newOut)
	ctx.WriteBytesCommit(p.output+uva.Addr(out), comp)
	ctx.WriteCommit(p.outLen+uva.Addr(iter*8), uint64(len(comp)))
	ctx.WriteCommit(p.outCur, newOut)
	return true
}

func (p *bzProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	block := ctx.LoadBytes(p.blockAddr(iter), bzBlockBytes)
	comp, instr, errPath := p.compress(block)
	if errPath {
		// The error path stores the block uncompressed.
		comp = block
		instr = int64(len(block))
	}
	ctx.Compute(instr)
	out := ctx.Load(p.outCur)
	ctx.StoreBytes(p.output+uva.Addr(out), comp)
	ctx.Store(p.outLen+uva.Addr(iter*8), uint64(len(comp)))
	ctx.Store(p.outCur, out+uint64(alignUp(len(comp))))
}

func (p *bzProg) Checksum(img *mem.Image) uint64 {
	h := img.Load(p.outCur)
	h = mix(h, img.ChecksumRange(p.output, int(img.Load(p.outCur))))
	h = mix(h, img.ChecksumRange(p.outLen, int(p.blocks)*8))
	return h
}

// decompressAll reconstructs the original input (test support). Error-path
// blocks were stored raw.
func (p *bzProg) decompressAll(img *mem.Image) []byte {
	var out []byte
	off := uint64(0)
	for i := uint64(0); i < p.blocks; i++ {
		n := img.Load(p.outLen + uva.Addr(i*8))
		comp := img.LoadBytes(p.output+uva.Addr(off), int(n))
		if p.errIter[i] {
			out = append(out, comp...)
		} else {
			out = append(out, mtfRLEInverse(comp)...)
		}
		off += uint64(alignUp(int(n)))
	}
	return out
}
