package workloads

import (
	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// crc32 — polynomial code checksum over a set of input files (the paper's
// reference implementation benchmark). Each iteration block-reads one file
// and computes its CRC-32; a sequential stage combines the per-file CRCs
// into the report. Speculation: CFS on the error path (a corrupt file) plus
// memory versioning. Speedup is limited by the number of input files.
//
// DSMTX: DSWP+[Spec-DOALL,S]. TLS: the combine step is a synchronized
// cross-iteration dependence carried around the ring.

const (
	crcFiles        = 96
	crcFileBytes    = 64 << 10
	crcInstrPerByte = 20 // table-driven software CRC, byte at a time
)

// crcTable is the IEEE CRC-32 table (computed once; read-only).
var crcTable = func() [256]uint32 {
	var t [256]uint32
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xedb88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}()

func crc32sum(b []byte) uint32 {
	c := ^uint32(0)
	for _, x := range b {
		c = crcTable[byte(c)^x] ^ (c >> 8)
	}
	return ^c
}

type crcProg struct {
	tls     bool
	files   uint64
	seed    uint64
	corrupt map[uint64]bool

	input uva.Addr // file i at input + i*crcFileBytes
	out   uva.Addr // per-file CRC words
	acc   uva.Addr // combined running checksum (loop-carried)
}

func newCRCProg(in Input, tls bool) *crcProg {
	files := uint64(crcFiles * in.scale())
	return &crcProg{
		tls:     tls,
		files:   files,
		seed:    in.Seed,
		corrupt: misspecSet(files, in.MisspecRate, in.Seed),
	}
}

// CRC32 returns the Table 2 entry.
func CRC32() *Benchmark {
	return &Benchmark{
		Name:        "crc32",
		Suite:       "Ref. Impl.",
		Description: "polynomial code checksum",
		Paradigm:    "DSWP+[Spec-DOALL,S]",
		SpecTypes:   "CFS,MV",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newCRCProg(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newCRCProg(in, true) },
	}
}

func (p *crcProg) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	return pipeline.DSWP("Spec-DOALL", "S")
}

func (p *crcProg) Iterations() uint64 { return p.files }

func (p *crcProg) fileAddr(i uint64) uva.Addr { return p.input + uva.Addr(i*crcFileBytes) }

func (p *crcProg) Setup(ctx *core.SeqCtx) {
	p.input = ctx.Alloc(int64(p.files) * crcFileBytes)
	p.out = ctx.AllocWords(int(p.files))
	p.acc = ctx.AllocWords(1)
	img := ctx.Image() // input "files" pre-exist; loading them is not timed
	for i := uint64(0); i < p.files; i++ {
		data := newRNG(mix(p.seed, i)).bytes(crcFileBytes)
		if p.corrupt[i] {
			data[0] = 0xFF // corrupt-header marker: the speculated-away error path
		}
		img.StoreBytes(p.fileAddr(i), data)
	}
	ctx.Store(p.acc, 0)
}

// checkFile performs the real per-file work and reports the CRC, or ok =
// false for the corrupt-header error path.
func (p *crcProg) checkFile(data []byte) (crc uint64, ok bool) {
	if data[0] == 0xFF {
		return 0, false
	}
	return uint64(crc32sum(data)), true
}

func (p *crcProg) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // parallel: block-read the file, compute its CRC
		if iter >= p.files {
			return false
		}
		data := ctx.LoadBytes(p.fileAddr(iter), crcFileBytes)
		crc, ok := p.checkFile(data)
		if !ok {
			ctx.Misspec() // speculated: "errors do not occur"
		}
		ctx.Compute(crcInstrPerByte * crcFileBytes)
		ctx.Produce(1, crc)
	case 1: // sequential: record and combine
		crc := ctx.Consume(0)
		ctx.WriteCommit(p.out+uva.Addr(iter*8), crc)
		ctx.WriteCommit(p.acc, mix(ctx.Load(p.acc), crc))
	}
	return true
}

func (p *crcProg) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.files {
		return false
	}
	data := ctx.LoadBytes(p.fileAddr(iter), crcFileBytes)
	crc, ok := p.checkFile(data)
	if !ok {
		ctx.Misspec()
	}
	ctx.Compute(crcInstrPerByte * crcFileBytes)
	// The combined checksum is synchronized: received from the previous
	// iteration, forwarded to the next.
	var acc uint64
	if ctx.EpochFirst() {
		acc = ctx.Load(p.acc)
	} else {
		acc = ctx.SyncRecv()
	}
	acc = mix(acc, crc)
	ctx.WriteCommit(p.acc, acc)
	ctx.SyncSend(acc)
	ctx.WriteCommit(p.out+uva.Addr(iter*8), crc)
	return true
}

func (p *crcProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	data := ctx.LoadBytes(p.fileAddr(iter), crcFileBytes)
	crc, ok := p.checkFile(data)
	if !ok {
		crc = 0xDEADBEEF // the rare error path: record a sentinel
	} else {
		ctx.Compute(crcInstrPerByte * crcFileBytes)
	}
	ctx.Store(p.out+uva.Addr(iter*8), crc)
	ctx.Store(p.acc, mix(ctx.Load(p.acc), crc))
}

func (p *crcProg) Checksum(img *mem.Image) uint64 {
	h := img.Load(p.acc)
	for i := uint64(0); i < p.files; i++ {
		h = mix(h, img.Load(p.out+uva.Addr(i*8)))
	}
	return h
}
