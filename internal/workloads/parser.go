package workloads

import (
	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// 197.parser — English sentence parser with a link-grammar-style
// dictionary. Each iteration parses one sentence: every word is looked up
// in the dictionary (which workers copy from the commit unit page by page
// on access — the paper notes "an entire dictionary must be copied from the
// commit unit", making communication bandwidth the bottleneck past 32
// cores), then adjacent words' link requirements are matched with an
// ambiguity-retry loop. Global parser options are speculated to be reset at
// the end of each iteration (MVS: reads are validated); error sentences
// take a speculated-not-taken path (CFS).
//
// DSMTX: Spec-DSWP+[S,DOALL,S]. TLS: the parse statistics are synchronized.

const (
	parSentences   = 800
	parDictEntries = 4096 // x 4 words = 128 KiB of dictionary
	parBucketWords = 32   // one lookup pulls an 8-entry bucket
	parMaxWords    = 22
	parInstrProbe  = 800  // dictionary probe + link scan per word
	parInstrWord   = 1400 // linkage work per word per ambiguity pass
)

type parProg struct {
	tls       bool
	sentences uint64
	seed      uint64
	special   map[uint64]int // 1 = error sentence (CFS), 2 = option writer (MVS)

	dict uva.Addr // entries: key, left-links, right-links, flags
	sent uva.Addr // sentences: parMaxWords+1 words each (len-prefixed)
	out  uva.Addr // parse cost per sentence
	opt  uva.Addr // global parser option word (speculated stable)
	errs uva.Addr // error count
}

func newParProg(in Input, tls bool) *parProg {
	n := uint64(parSentences * in.scale())
	p := &parProg{tls: tls, sentences: n, seed: in.Seed, special: make(map[uint64]int)}
	for i, iter := range misspecList(n, in.MisspecRate, in.Seed+5) {
		p.special[iter] = 1 + i%2
	}
	return p
}

// Parser returns the Table 2 entry.
func Parser() *Benchmark {
	return &Benchmark{
		Name:        "197.parser",
		Suite:       "SPEC CINT 2000",
		Description: "English parser",
		Paradigm:    "Spec-DSWP+[S,DOALL,S]",
		SpecTypes:   "CFS,MVS,MV",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newParProg(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newParProg(in, true) },
	}
}

func (p *parProg) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	return pipeline.SpecDSWP("S", "DOALL", "S")
}

func (p *parProg) Iterations() uint64 { return p.sentences }

const parSentWords = parMaxWords + 1

func (p *parProg) sentAddr(i uint64) uva.Addr { return p.sent + uva.Addr(i*parSentWords*8) }

func (p *parProg) Setup(ctx *core.SeqCtx) {
	p.dict = ctx.AllocWords(parDictEntries * 4)
	p.sent = ctx.AllocWords(int(p.sentences) * parSentWords)
	p.out = ctx.AllocWords(int(p.sentences))
	p.opt = ctx.AllocWords(1)
	p.errs = ctx.AllocWords(1)
	img := ctx.Image()
	r := newRNG(p.seed)
	for e := 0; e < parDictEntries; e++ {
		a := p.dict + uva.Addr(e*4*8)
		img.Store(a, uint64(e)*2654435761+1) // word key
		// Common link classes live in the high bits; the rare, strict
		// classes the default dialect (opt=3) checks live in the low two.
		img.Store(a+8, (r.next()|r.next())&0xfc|(r.next()&0x3))  // left link set
		img.Store(a+16, (r.next()|r.next())&0xfc|(r.next()&0x3)) // right link set
		img.Store(a+24, uint64(r.intn(4)))                       // flags
	}
	for s := uint64(0); s < p.sentences; s++ {
		rs := newRNG(mix(p.seed, s*977))
		n := 12 + rs.intn(parMaxWords-12)
		a := p.sentAddr(s)
		img.Store(a, uint64(n))
		for w := 1; w <= n; w++ {
			word := uint64(rs.intn(parDictEntries))
			if p.special[s] == 1 && w == 1 {
				word = 1 << 40 // unknown word: the error path
			}
			img.Store(a+uva.Addr(w*8), word)
		}
	}
	ctx.Store(p.opt, 3) // default dialect options
	ctx.Store(p.errs, 0)
}

// lookup pulls the dictionary bucket holding entry idx via the given bulk
// loader and returns the entry's (left, right, flags).
func (p *parProg) lookup(load func(uva.Addr, int) []byte, idx uint64) (left, right, flags uint64) {
	bucket := idx &^ 7 // 8 entries per 256-byte bucket
	b := load(p.dict+uva.Addr(bucket*4*8), parBucketWords*8)
	words := unpackWords(b)
	off := (idx - bucket) * 4
	return words[off+1], words[off+2], words[off+3]
}

// parse does the real linkage work: look up every word, then repeatedly try
// to match adjacent link requirements under the dialect options, relaxing
// one constraint per ambiguity pass. It reports a cost measure, the pass
// count, and whether the sentence hit the error path.
func (p *parProg) parse(load func(uva.Addr, int) []byte, sentence []uint64, opt uint64) (cost uint64, passes int, errPath bool) {
	type entry struct{ left, right, flags uint64 }
	entries := make([]entry, len(sentence))
	for i, w := range sentence {
		if w >= parDictEntries {
			return 0, 0, true // unknown word: error path
		}
		l, r, f := p.lookup(load, w)
		entries[i] = entry{l, r, f}
	}
	relax := uint64(0)
	for passes = 1; ; passes++ {
		ok := true
		cost = 0
		for i := 0; i+1 < len(entries); i++ {
			match := entries[i].right & entries[i+1].left & (opt | relax)
			if match == 0 {
				ok = false
			}
			cost += uint64(popcount(match)) + entries[i].flags
		}
		// The final pass accepts the best-effort linkage (the real parser
		// emits its least-cost parse rather than failing).
		if ok || passes == 8 {
			return cost, passes, false
		}
		relax = relax<<1 | 1 // admit one more link class per pass
	}
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func (p *parProg) loadSentence(load func(uva.Addr, int) []byte, iter uint64) []uint64 {
	words := unpackWords(load(p.sentAddr(iter), parSentWords*8))
	n := words[0]
	return words[1 : 1+n]
}

func (p *parProg) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // sequential: read the sentence
		if iter >= p.sentences {
			return false
		}
		sentence := p.loadSentence(ctx.LoadBytes, iter)
		for _, w := range sentence {
			ctx.Produce(1, w)
		}
		ctx.Produce(1, ^uint64(0)) // terminator
	case 1: // parallel: parse against the (versioned) dictionary
		var sentence []uint64
		for {
			w := ctx.Consume(0)
			if w == ^uint64(0) {
				break
			}
			sentence = append(sentence, w)
		}
		opt := ctx.Read(p.opt) // speculated-stable global options
		cost, passes, errPath := p.parse(ctx.LoadBytes, sentence, opt)
		if errPath {
			ctx.Misspec()
		}
		if p.special[iter] == 2 {
			ctx.Write(p.opt, opt|8) // rare dialect switch invalidates readers
		}
		ctx.Compute(int64(len(sentence))*parInstrProbe + int64(passes)*int64(len(sentence))*parInstrWord)
		ctx.Produce(2, cost)
	case 2: // sequential: record results
		cost := ctx.Consume(1)
		ctx.WriteCommit(p.out+uva.Addr(iter*8), cost)
	}
	return true
}

func (p *parProg) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.sentences {
		return false
	}
	sentence := p.loadSentence(ctx.LoadBytes, iter)
	opt := ctx.Read(p.opt)
	cost, passes, errPath := p.parse(ctx.LoadBytes, sentence, opt)
	if errPath {
		ctx.Misspec()
	}
	if p.special[iter] == 2 {
		ctx.Write(p.opt, opt|8)
	}
	ctx.Compute(int64(len(sentence))*parInstrProbe + int64(passes)*int64(len(sentence))*parInstrWord)
	ctx.WriteCommit(p.out+uva.Addr(iter*8), cost)
	// Parse statistics are synchronized around the ring.
	var errs uint64
	if ctx.EpochFirst() {
		errs = ctx.Load(p.errs)
	} else {
		errs = ctx.SyncRecv()
	}
	ctx.Compute(1500)
	ctx.WriteCommit(p.errs, errs)
	ctx.SyncSend(errs)
	return true
}

func (p *parProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	sentence := p.loadSentence(ctx.LoadBytes, iter)
	opt := ctx.Load(p.opt)
	cost, passes, errPath := p.parse(ctx.LoadBytes, sentence, opt)
	if errPath {
		// The error path: count it, emit a zero parse.
		ctx.Store(p.errs, ctx.Load(p.errs)+1)
		ctx.Compute(2000)
		ctx.Store(p.out+uva.Addr(iter*8), 0)
		return
	}
	if p.special[iter] == 2 {
		ctx.Store(p.opt, opt|8)
	}
	ctx.Compute(int64(len(sentence))*parInstrProbe + int64(passes)*int64(len(sentence))*parInstrWord)
	ctx.Store(p.out+uva.Addr(iter*8), cost)
}

func (p *parProg) Checksum(img *mem.Image) uint64 {
	h := img.Load(p.opt)
	h = mix(h, img.Load(p.errs))
	h = mix(h, img.ChecksumRange(p.out, int(p.sentences)*8))
	return h
}
