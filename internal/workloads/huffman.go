package workloads

// Canonical Huffman coding — the entropy-coding half of 164.gzip's deflate
// (the LZ77 token stream gets bit-packed with an order-0 canonical code).
// The header stores the 256 code lengths plus the payload length; decoding
// rebuilds the canonical code from lengths alone, as deflate does.

import "slices"

// huffEncode compresses b; work counts the operations performed (for cost
// charging). The output is self-describing and decoded by huffDecode.
func huffEncode(b []byte) (out []byte, work int64) {
	// Four sub-histograms break the store-to-load dependency chain on
	// repeated bytes; counts are identical to a single-table pass.
	var f0, f1, f2, f3 [256]int
	n := 0
	for ; n+4 <= len(b); n += 4 {
		f0[b[n]]++
		f1[b[n+1]]++
		f2[b[n+2]]++
		f3[b[n+3]]++
	}
	for ; n < len(b); n++ {
		f0[b[n]]++
	}
	var freq [256]int
	for s := range freq {
		freq[s] = f0[s] + f1[s] + f2[s] + f3[s]
	}
	work += int64(len(b))
	lengths := huffLengths(freq)
	codes := canonicalCodes(lengths)

	// Incompressible blocks emit about one output byte per input byte;
	// size the buffer for that so growth doesn't copy the block mid-emit.
	out = make([]byte, 0, len(b)+len(b)/8+264)
	// Header: payload length (4 bytes) + 256 code lengths.
	out = append(out, byte(len(b)), byte(len(b)>>8), byte(len(b)>>16), byte(len(b)>>24))
	out = append(out, lengths[:]...)

	// Codes go out MSB-first (prefix decodability), so reverse them into
	// the LSB-first accumulator — exactly deflate's convention. Reversing
	// once per symbol here instead of once per input byte keeps the
	// emission loop to a table lookup.
	var rcodes [256]uint64
	for s := range codes {
		rcodes[s] = uint64(reverseBits(codes[s], lengths[s]))
	}
	var acc uint64 // bit accumulator, LSB-first
	var nbits uint
	for _, c := range b {
		acc |= rcodes[c] << nbits
		nbits += uint(lengths[c])
		// Flush four bytes at a time; nbits stays below 32 between
		// iterations, so a code (at most 32 bits) never overflows acc.
		if nbits >= 32 {
			out = append(out, byte(acc), byte(acc>>8), byte(acc>>16), byte(acc>>24))
			acc >>= 32
			nbits -= 32
		}
		work += int64(lengths[c])
	}
	for nbits >= 8 {
		out = append(out, byte(acc))
		acc >>= 8
		nbits -= 8
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out, work
}

// huffDecode inverts huffEncode.
func huffDecode(comp []byte) []byte {
	n := int(comp[0]) | int(comp[1])<<8 | int(comp[2])<<16 | int(comp[3])<<24
	var lengths [256]byte
	copy(lengths[:], comp[4:260])
	codes := canonicalCodes(lengths)

	// Build a (length, code) -> symbol lookup.
	type key struct {
		length byte
		code   uint32
	}
	decode := make(map[key]byte)
	maxLen := byte(0)
	for s := 0; s < 256; s++ {
		if lengths[s] == 0 {
			continue
		}
		decode[key{lengths[s], codes[s]}] = byte(s)
		if lengths[s] > maxLen {
			maxLen = lengths[s]
		}
	}

	out := make([]byte, 0, n)
	bits := comp[260:]
	var code uint32
	var length byte
	bitAt := func(i int) uint32 { return uint32(bits[i>>3]>>(i&7)) & 1 }
	for i := 0; len(out) < n; i++ {
		code = code<<1 | bitAt(i) // MSB-first accumulation
		length++
		if sym, ok := decode[key{length, code}]; ok {
			out = append(out, sym)
			code, length = 0, 0
		} else if length > maxLen {
			panic("workloads: corrupt Huffman stream")
		}
	}
	return out
}

// reverseBits reverses the low n bits of v.
func reverseBits(v uint32, n byte) uint32 {
	var r uint32
	for i := byte(0); i < n; i++ {
		r = r<<1 | (v>>i)&1
	}
	return r
}

// huffLengths computes code lengths with the classic two-queue Huffman
// construction over the 256-symbol alphabet: leaves sorted once by
// (weight, symbol), merged nodes appended to a second queue in creation
// order (their weights are nondecreasing), so the two lightest live nodes
// are always at the queue fronts. Equal-weight ties prefer the merged
// queue, matching the selection order of a (weight, symbol) comparison
// where merged nodes carry symbol -1. O(n log n) for the one sort, O(n)
// for the merges.
func huffLengths(freq [256]int) [256]byte {
	type node struct {
		weight      int
		sym         int // >= 0 for leaves
		left, right int // indices into nodes, -1 for leaves
	}
	// Sorting packed weight<<8|sym keys is the (weight, symbol) order
	// without a comparator closure. Everything is bounded by the 256-symbol
	// alphabet (at most 511 tree nodes), so all scratch lives on the stack.
	var keyArr [256]uint64
	keys := keyArr[:0]
	for s, f := range freq {
		if f > 0 {
			keys = append(keys, uint64(f)<<8|uint64(s))
		}
	}
	nLeaves := len(keys)
	switch nLeaves {
	case 0:
		return [256]byte{}
	case 1:
		var lengths [256]byte
		lengths[keys[0]&0xff] = 1
		return lengths
	}
	slices.Sort(keys)
	var nodeArr [511]node
	nodes := nodeArr[:0]
	for _, k := range keys {
		nodes = append(nodes, node{weight: int(k >> 8), sym: int(k & 0xff), left: -1, right: -1})
	}
	var mergedArr [255]int
	merged := mergedArr[:0] // FIFO of merged-node indices
	h1, h2 := 0, 0
	pick := func() int {
		if h2 < len(merged) && (h1 >= nLeaves || nodes[merged[h2]].weight <= nodes[h1].weight) {
			i := merged[h2]
			h2++
			return i
		}
		i := h1
		h1++
		return i
	}
	for range nLeaves - 1 {
		l := pick()
		r := pick()
		nodes = append(nodes, node{weight: nodes[l].weight + nodes[r].weight, sym: -1, left: l, right: r})
		merged = append(merged, len(nodes)-1)
	}
	// Children always precede parents, so one reverse pass propagates
	// depths from the root (the last node) without recursion.
	var lengths [256]byte
	var depthArr [511]byte
	depth := depthArr[:len(nodes)]
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		if n.sym >= 0 {
			lengths[n.sym] = depth[i]
			continue
		}
		depth[n.left] = depth[i] + 1
		depth[n.right] = depth[i] + 1
	}
	return lengths
}

// canonicalCodes assigns canonical codes (shorter codes first, then by
// symbol) from lengths, as RFC 1951 does. Visiting length buckets in
// ascending order and symbols in ascending order within each bucket IS the
// (length, symbol) sort, without sorting.
func canonicalCodes(lengths [256]byte) [256]uint32 {
	maxLen := byte(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	var codes [256]uint32
	code := uint32(0)
	prevLen := byte(0)
	for l := byte(1); l != 0 && l <= maxLen; l++ {
		for s := 0; s < 256; s++ {
			if lengths[s] != l {
				continue
			}
			code <<= (l - prevLen)
			codes[s] = code
			code++
			prevLen = l
		}
	}
	return codes
}
