package workloads

// Canonical Huffman coding — the entropy-coding half of 164.gzip's deflate
// (the LZ77 token stream gets bit-packed with an order-0 canonical code).
// The header stores the 256 code lengths plus the payload length; decoding
// rebuilds the canonical code from lengths alone, as deflate does.

import "sort"

// huffEncode compresses b; work counts the operations performed (for cost
// charging). The output is self-describing and decoded by huffDecode.
func huffEncode(b []byte) (out []byte, work int64) {
	var freq [256]int
	for _, c := range b {
		freq[c]++
	}
	work += int64(len(b))
	lengths := huffLengths(freq)
	codes := canonicalCodes(lengths)

	out = make([]byte, 0, len(b)/2+264)
	// Header: payload length (4 bytes) + 256 code lengths.
	out = append(out, byte(len(b)), byte(len(b)>>8), byte(len(b)>>16), byte(len(b)>>24))
	out = append(out, lengths[:]...)

	var acc uint64 // bit accumulator, LSB-first
	var nbits uint
	for _, c := range b {
		// Codes go out MSB-first (prefix decodability), so reverse them
		// into the LSB-first accumulator — exactly deflate's convention.
		acc |= uint64(reverseBits(codes[c], lengths[c])) << nbits
		nbits += uint(lengths[c])
		for nbits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			nbits -= 8
		}
		work += int64(lengths[c])
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out, work
}

// huffDecode inverts huffEncode.
func huffDecode(comp []byte) []byte {
	n := int(comp[0]) | int(comp[1])<<8 | int(comp[2])<<16 | int(comp[3])<<24
	var lengths [256]byte
	copy(lengths[:], comp[4:260])
	codes := canonicalCodes(lengths)

	// Build a (length, code) -> symbol lookup.
	type key struct {
		length byte
		code   uint32
	}
	decode := make(map[key]byte)
	maxLen := byte(0)
	for s := 0; s < 256; s++ {
		if lengths[s] == 0 {
			continue
		}
		decode[key{lengths[s], codes[s]}] = byte(s)
		if lengths[s] > maxLen {
			maxLen = lengths[s]
		}
	}

	out := make([]byte, 0, n)
	bits := comp[260:]
	var code uint32
	var length byte
	bitAt := func(i int) uint32 { return uint32(bits[i>>3]>>(i&7)) & 1 }
	for i := 0; len(out) < n; i++ {
		code = code<<1 | bitAt(i) // MSB-first accumulation
		length++
		if sym, ok := decode[key{length, code}]; ok {
			out = append(out, sym)
			code, length = 0, 0
		} else if length > maxLen {
			panic("workloads: corrupt Huffman stream")
		}
	}
	return out
}

// reverseBits reverses the low n bits of v.
func reverseBits(v uint32, n byte) uint32 {
	var r uint32
	for i := byte(0); i < n; i++ {
		r = r<<1 | (v>>i)&1
	}
	return r
}

// huffLengths computes code lengths with the classic two-queue Huffman
// construction over the 256-symbol alphabet.
func huffLengths(freq [256]int) [256]byte {
	type node struct {
		weight      int
		sym         int // >= 0 for leaves
		left, right int // indices into nodes, -1 for leaves
	}
	var nodes []node
	var live []int
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, node{weight: f, sym: s, left: -1, right: -1})
			live = append(live, len(nodes)-1)
		}
	}
	switch len(live) {
	case 0:
		return [256]byte{}
	case 1:
		var lengths [256]byte
		lengths[nodes[live[0]].sym] = 1
		return lengths
	}
	for len(live) > 1 {
		// Pick the two lightest (selection over <= 511 entries; cheap).
		sort.Slice(live, func(i, j int) bool {
			a, b := nodes[live[i]], nodes[live[j]]
			if a.weight != b.weight {
				return a.weight < b.weight
			}
			return a.sym < b.sym // deterministic ties
		})
		l, r := live[0], live[1]
		nodes = append(nodes, node{weight: nodes[l].weight + nodes[r].weight, sym: -1, left: l, right: r})
		live = append([]int{len(nodes) - 1}, live[2:]...)
	}
	var lengths [256]byte
	var walk func(i int, depth byte)
	walk = func(i int, depth byte) {
		if nodes[i].sym >= 0 {
			lengths[nodes[i].sym] = depth
			return
		}
		walk(nodes[i].left, depth+1)
		walk(nodes[i].right, depth+1)
	}
	walk(live[0], 0)
	return lengths
}

// canonicalCodes assigns canonical codes (shorter codes first, then by
// symbol) from lengths, as RFC 1951 does.
func canonicalCodes(lengths [256]byte) [256]uint32 {
	type sl struct {
		sym    int
		length byte
	}
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].length != syms[j].length {
			return syms[i].length < syms[j].length
		}
		return syms[i].sym < syms[j].sym
	})
	var codes [256]uint32
	code := uint32(0)
	prevLen := byte(0)
	for _, e := range syms {
		code <<= (e.length - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.length
	}
	return codes
}
