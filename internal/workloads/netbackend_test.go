package workloads

import (
	"os"
	"testing"

	"dsmtx/internal/netrun"
)

// checkBackendEquivalenceNet is the distributed sibling of
// checkBackendEquivalence: the same benchmark runs sequentially, on the
// virtual-time kernel, and as a real multi-process job — the test binary
// re-execs itself as a loopback daemon fleet (see TestMain) and the ranks
// talk TCP. All three must agree on the committed checksum, and net must
// match vtime's committed/misspec counts exactly.
func checkBackendEquivalenceNet(t *testing.T, name string, in Input, cores, daemons int) {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}

	_, seqCheck, err := RunSequentialRef(b, in)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := RunParallel(b, in, DSMTX, cores, nil)
	if err != nil {
		t.Fatalf("vtime: %v", err)
	}
	if vres.Checksum != seqCheck {
		t.Fatalf("vtime checksum %#x != sequential %#x", vres.Checksum, seqCheck)
	}

	cl, err := netrun.LaunchLocal(daemons, os.Args[0])
	if err != nil {
		t.Fatalf("launch daemons: %v", err)
	}
	defer cl.Close()
	nres, err := cl.Run(netrun.JobSpec{
		Bench:       name,
		Scale:       in.Scale,
		MisspecRate: in.MisspecRate,
		Seed:        in.Seed,
		Cores:       cores,
	})
	if err != nil {
		t.Fatalf("net: %v", err)
	}

	if nres.Checksum != seqCheck {
		t.Errorf("net checksum %#x != sequential %#x", nres.Checksum, seqCheck)
	}
	if nres.Committed != vres.Committed {
		t.Errorf("net committed %d != vtime %d", nres.Committed, vres.Committed)
	}
	if nres.Misspecs != vres.Misspecs {
		t.Errorf("net misspecs %d != vtime %d", nres.Misspecs, vres.Misspecs)
	}
	if nres.Elapsed <= 0 {
		t.Errorf("net elapsed %v, want > 0", nres.Elapsed)
	}
	if in.MisspecRate > 0 && nres.Misspecs == 0 {
		t.Errorf("misspec rate %v produced no misspeculations on net", in.MisspecRate)
	}
	if in.MisspecRate == 0 && nres.Misspecs != 0 {
		t.Errorf("misspec rate 0 produced %d misspeculations on net", nres.Misspecs)
	}
	t.Logf("%s net: %d daemons, committed %d, misspecs %d, traffic %d msgs / %d bytes",
		name, nres.Daemons, nres.Committed, nres.Misspecs, nres.Traffic.Messages, nres.Traffic.Bytes)
}

func TestBackendEquivalenceNetCRC32(t *testing.T) {
	checkBackendEquivalenceNet(t, "crc32", Input{Scale: 1, Seed: 42, MisspecRate: 0.02}, 8, 2)
}

func TestBackendEquivalenceNetBlackscholes(t *testing.T) {
	checkBackendEquivalenceNet(t, "blackscholes", Input{Scale: 1, Seed: 42}, 8, 2)
}

func TestBackendEquivalenceNetGzip(t *testing.T) {
	checkBackendEquivalenceNet(t, "164.gzip", Input{Scale: 1, Seed: 42}, 11, 2)
}
