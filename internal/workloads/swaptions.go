package workloads

import (
	"math"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/uva"
)

// swaptions — PARSEC portfolio pricing. The outermost loop prices one
// swaption per iteration with an HJM-framework Monte-Carlo simulation;
// speculation is control-flow speculation on an error condition during
// price calculation (a simulated path blowing up). The paper notes the TLS
// and DSMTX parallelizations coincide (both Spec-DOALL with no
// communication except on misspeculation), and that scalability is limited
// by the input size — the number of swaptions.

const (
	swnSwaptions  = 128
	swnTrials     = 1024 // Monte-Carlo paths per swaption
	swnSteps      = 40   // time steps per path
	swnInstrPerOp = 14   // exp/accumulate per step
	swnParamWords = 4    // strike, years, tenor index, seed
)

type swnProg struct {
	n    uint64
	seed uint64
	bad  map[uint64]bool

	params uva.Addr
	out    uva.Addr // price per swaption (float64 bits)
}

func newSwnProg(in Input) *swnProg {
	n := uint64(swnSwaptions * in.scale())
	return &swnProg{n: n, seed: in.Seed, bad: misspecSet(n, in.MisspecRate, in.Seed+2)}
}

// Swaptions returns the Table 2 entry.
func Swaptions() *Benchmark {
	return &Benchmark{
		Name:        "swaptions",
		Suite:       "PARSEC",
		Description: "portfolio pricing",
		Paradigm:    "Spec-DOALL",
		SpecTypes:   "CFS",
		Invocations: 1,
		// Both parallelizations are Spec-DOALL, as in the paper.
		NewDSMTX: func(in Input, _ int) Program { return newSwnProg(in) },
		NewTLS:   func(in Input, _ int) Program { return newSwnProg(in) },
	}
}

func (p *swnProg) Plan() pipeline.Plan { return pipeline.SpecDOALL() }

func (p *swnProg) Iterations() uint64 { return p.n }

func (p *swnProg) paramAddr(i uint64) uva.Addr {
	return p.params + uva.Addr(i*swnParamWords*8)
}

func (p *swnProg) Setup(ctx *core.SeqCtx) {
	p.params = ctx.AllocWords(int(p.n) * swnParamWords)
	p.out = ctx.AllocWords(int(p.n))
	img := ctx.Image()
	r := newRNG(p.seed)
	for i := uint64(0); i < p.n; i++ {
		a := p.paramAddr(i)
		strike := 0.02 + 0.06*r.float()
		years := 1 + 9*r.float()
		if p.bad[i] {
			years = -1 // invalid maturity: the speculated error path
		}
		img.Store(a, bitsOf(strike))
		img.Store(a+8, bitsOf(years))
		img.Store(a+16, uint64(r.intn(8)))
		img.Store(a+24, r.next())
	}
}

// price runs the HJM-lite Monte-Carlo: simulate forward-rate paths, value
// the swaption payoff on each, and average. bad = invalid parameters.
func (p *swnProg) price(strike, years float64, tenor int, seed uint64) (float64, bool) {
	if years <= 0 || strike <= 0 {
		return 0, true
	}
	r := newRNG(seed)
	dt := years / swnSteps
	var sum float64
	for trial := 0; trial < swnTrials; trial++ {
		rate := 0.04
		for s := 0; s < swnSteps; s++ {
			// Log-normal short-rate step with antithetic-ish noise.
			z := 2*r.float() - 1
			rate *= math.Exp((0.01-rate*0.1)*dt + 0.15*z*math.Sqrt(dt))
		}
		payoff := rate - strike - 0.002*float64(tenor)
		if payoff > 0 {
			sum += payoff * math.Exp(-rate*years)
		}
	}
	return sum / swnTrials, false
}

func (p *swnProg) runIter(load func(uva.Addr) uint64, iter uint64) (float64, bool) {
	a := p.paramAddr(iter)
	strike := floatOf(load(a))
	years := floatOf(load(a + 8))
	tenor := int(load(a + 16))
	seed := load(a + 24)
	return p.price(strike, years, tenor, seed)
}

func (p *swnProg) Stage(ctx *core.Ctx, _ int, iter uint64) bool {
	if iter >= p.n {
		return false
	}
	v, bad := p.runIter(ctx.Load, iter)
	if bad {
		ctx.Misspec() // speculated: "no error occurs during price calculation"
	}
	ctx.Compute(swnInstrPerOp * swnTrials * swnSteps)
	ctx.WriteFloatCommit(p.out+uva.Addr(iter*8), v)
	return true
}

func (p *swnProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	v, bad := p.runIter(ctx.Load, iter)
	if bad {
		v = -1 // the rare error path records a sentinel price
		ctx.Compute(200)
	} else {
		ctx.Compute(swnInstrPerOp * swnTrials * swnSteps)
	}
	ctx.StoreFloat(p.out+uva.Addr(iter*8), v)
}

func (p *swnProg) Checksum(img *mem.Image) uint64 {
	return img.ChecksumRange(p.out, int(p.n)*8)
}
