// Package workloads implements the paper's 11 benchmarks (Table 2) as real
// computational kernels parallelized for DSMTX.
//
// Each benchmark provides a DSMTX program (its best Spec-DSWP / Spec-DOALL
// parallelization) and a TLS program (the comparison runtime's DOACROSS-
// style parallelization), both runnable sequentially for the speedup
// baseline. The kernels reproduce the original benchmarks' loop structure,
// dependence pattern, speculation types and communication behaviour; their
// computation is real (compressors compress, the interpreter interprets,
// CRCs check out), with virtual-time cost charged in proportion to the work
// actually performed.
package workloads

import (
	"fmt"
	"sort"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
)

// Input configures a benchmark run.
type Input struct {
	// Scale multiplies the default problem size (1 = the evaluation size).
	Scale int
	// MisspecRate is the fraction of iterations the generated input causes
	// to misspeculate (the paper's Fig. 6 uses 0.001). Benchmarks without
	// input-dependent misspeculation ignore it.
	MisspecRate float64
	// Seed makes input generation deterministic.
	Seed uint64
}

// DefaultInput is the evaluation-sized input.
func DefaultInput() Input { return Input{Scale: 1, Seed: 42} }

func (in Input) scale() int {
	if in.Scale <= 0 {
		return 1
	}
	return in.Scale
}

// Program is a runnable benchmark variant: a core.Program plus the sizing
// and verification hooks the harness needs.
type Program interface {
	core.Program
	// Plan is the parallelization scheme this program is written for.
	Plan() pipeline.Plan
	// Iterations is the loop trip count (for the sequential reference).
	Iterations() uint64
	// Checksum summarizes the program's output from committed memory; the
	// parallel and sequential executions must agree.
	Checksum(img *mem.Image) uint64
}

// Benchmark is one Table 2 row.
type Benchmark struct {
	Name        string
	Suite       string
	Description string
	Paradigm    string // DSMTX parallelization, in the paper's notation
	SpecTypes   string // CFS / MVS / MV
	// Invocations is the number of parallel invocations chained through
	// committed memory (e.g. training epochs); 1 for single-loop programs.
	Invocations int
	// NewDSMTX and NewTLS build the two parallelizations for invocation
	// inv of [0, Invocations).
	NewDSMTX func(in Input, inv int) Program
	NewTLS   func(in Input, inv int) Program
}

// All returns the Table 2 benchmarks in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{
		Alvinn(),
		Lisp(),
		Gzip(),
		Art(),
		Parser(),
		Bzip2(),
		Hmmer(),
		H264(),
		CRC32(),
		Blackscholes(),
		Swaptions(),
	}
}

// ByName finds a benchmark; it returns an error naming the options
// otherwise.
func ByName(name string) (*Benchmark, error) {
	var names []string
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
		names = append(names, b.Name)
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, names)
}

// rng is xorshift64*, deterministic across runs and platforms.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float returns a value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// bytes fills a deterministic pseudo-random buffer with text-like byte
// statistics: literal letters interleaved with repeated phrases, so
// compressors find real matches (roughly 2x compressible).
func (r *rng) bytes(n int) []byte {
	b := make([]byte, n)
	i := 0
	for i < n {
		if i > 64 && r.intn(2) == 0 {
			length := 6 + r.intn(18)
			off := 1 + r.intn(60)
			for k := 0; k < length && i < n; k++ {
				b[i] = b[i-off]
				i++
			}
			continue
		}
		b[i] = byte('a' + r.intn(26))
		i++
	}
	return b
}

// misspecList returns the corrupted iterations in ascending order (for
// deterministic role assignment).
func misspecList(n uint64, rate float64, seed uint64) []uint64 {
	set := misspecSet(n, rate, seed)
	out := make([]uint64, 0, len(set))
	for iter := range set {
		out = append(out, iter)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// misspecSet picks the iterations a given misspeculation rate corrupts.
func misspecSet(n uint64, rate float64, seed uint64) map[uint64]bool {
	set := make(map[uint64]bool)
	if rate <= 0 {
		return set
	}
	r := newRNG(seed ^ 0xabcdef)
	count := int(float64(n) * rate)
	if count == 0 && rate > 0 {
		count = 1
	}
	for len(set) < count && uint64(len(set)) < n {
		set[uint64(r.intn(int(n)))] = true
	}
	return set
}

// mix folds a value into a running checksum (used to build output
// checksums that are order-sensitive).
func mix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}
