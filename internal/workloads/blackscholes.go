package workloads

import (
	"math"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// blackscholes — PARSEC option pricing. Each iteration prices a chunk of
// European options with the closed-form Black–Scholes formula; speculation
// is control-flow speculation on the error condition (an invalid option
// whose parameters fail validation). A sequential stage accumulates the
// error count and stores prices in order.
//
// DSMTX: DSWP+[Spec-DOALL,S]. TLS: the error-count accumulator is a
// synchronized dependence; the paper observes the TLS curve peaking around
// 52 cores as ring latency catches up with per-chunk work.

const (
	bsChunks       = 252
	bsOptsPerChunk = 512  // one chunk's prices fill whole pages exactly
	bsInstrPerOpt  = 3000 // exp/log/sqrt-heavy closed form
	bsOptWords     = 6    // S, K, r, v, T, call/put flag
	bsTLSSyncInstr = 25000
)

type bsProg struct {
	tls    bool
	chunks uint64
	seed   uint64
	bad    map[uint64]bool // chunks containing an invalid option

	opts   uva.Addr // option parameters, bsOptWords words each
	prices uva.Addr // one word (float64 bits) per option
	errs   uva.Addr // running error count (loop-carried)
}

func newBSProg(in Input, tls bool) *bsProg {
	chunks := uint64(bsChunks * in.scale())
	return &bsProg{
		tls:    tls,
		chunks: chunks,
		seed:   in.Seed,
		bad:    misspecSet(chunks, in.MisspecRate, in.Seed+1),
	}
}

// Blackscholes returns the Table 2 entry.
func Blackscholes() *Benchmark {
	return &Benchmark{
		Name:        "blackscholes",
		Suite:       "PARSEC",
		Description: "option pricing",
		Paradigm:    "DSWP+[Spec-DOALL,S]",
		SpecTypes:   "CFS",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newBSProg(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newBSProg(in, true) },
	}
}

func (p *bsProg) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	return pipeline.DSWP("Spec-DOALL", "S")
}

func (p *bsProg) Iterations() uint64 { return p.chunks }

func (p *bsProg) optAddr(chunk uint64, i int) uva.Addr {
	return p.opts + uva.Addr((chunk*bsOptsPerChunk+uint64(i))*bsOptWords*8)
}

func (p *bsProg) Setup(ctx *core.SeqCtx) {
	n := p.chunks * bsOptsPerChunk
	p.opts = ctx.AllocWords(int(n) * bsOptWords)
	p.prices = ctx.AllocWords(int(n))
	p.errs = ctx.AllocWords(1)
	img := ctx.Image()
	r := newRNG(p.seed)
	for c := uint64(0); c < p.chunks; c++ {
		for i := 0; i < bsOptsPerChunk; i++ {
			a := p.optAddr(c, i)
			spot := 20 + 100*r.float()
			strike := 20 + 100*r.float()
			rate := 0.01 + 0.05*r.float()
			vol := 0.1 + 0.5*r.float()
			tm := 0.25 + 2*r.float()
			if p.bad[c] && i == 0 {
				vol = -1 // invalid volatility: the speculated error path
			}
			call := uint64(r.intn(2))
			for w, v := range []float64{spot, strike, rate, vol, tm} {
				img.Store(a+uva.Addr(w*8), bitsOf(v))
			}
			img.Store(a+5*8, call)
		}
	}
	ctx.Store(p.errs, 0)
}

// cnd is the cumulative normal distribution (Abramowitz–Stegun), as the
// PARSEC kernel uses.
func cnd(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	k := 1 / (1 + 0.2316419*x)
	w := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-x*x/2)*
		k*(0.319381530+k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	if neg {
		return 1 - w
	}
	return w
}

func blackScholes(spot, strike, rate, vol, tm float64, call bool) float64 {
	d1 := (math.Log(spot/strike) + (rate+vol*vol/2)*tm) / (vol * math.Sqrt(tm))
	d2 := d1 - vol*math.Sqrt(tm)
	if call {
		return spot*cnd(d1) - strike*math.Exp(-rate*tm)*cnd(d2)
	}
	return strike*math.Exp(-rate*tm)*cnd(-d2) - spot*cnd(-d1)
}

// priceChunk prices a chunk from its packed parameter block; bad = an
// invalid option was found (the error path).
func (p *bsProg) priceChunk(params []byte) (prices []float64, bad bool) {
	prices = make([]float64, bsOptsPerChunk)
	for i := 0; i < bsOptsPerChunk; i++ {
		base := i * bsOptWords * 8
		word := func(w int) uint64 {
			var v uint64
			for k := 7; k >= 0; k-- {
				v = v<<8 | uint64(params[base+w*8+k])
			}
			return v
		}
		spot := floatOf(word(0))
		strike := floatOf(word(1))
		rate := floatOf(word(2))
		vol := floatOf(word(3))
		tm := floatOf(word(4))
		call := word(5) == 1
		if vol <= 0 || tm <= 0 || spot <= 0 {
			return nil, true
		}
		prices[i] = blackScholes(spot, strike, rate, vol, tm, call)
	}
	return prices, false
}

func (p *bsProg) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // parallel: price the chunk
		if iter >= p.chunks {
			return false
		}
		// One bulk read covers the chunk's parameters (page-granular COA).
		params := ctx.LoadBytes(p.optAddr(iter, 0), bsOptsPerChunk*bsOptWords*8)
		prices, bad := p.priceChunk(params)
		if bad {
			ctx.Misspec()
		}
		ctx.Compute(bsInstrPerOpt * bsOptsPerChunk)
		for _, v := range prices[:4] { // spot-check values flow to the next stage
			ctx.Produce(1, bitsOf(v))
		}
		ctx.WriteBytesCommit(p.prices+uva.Addr(iter*bsOptsPerChunk*8), packFloats(prices))
	case 1: // sequential: validation bookkeeping
		var sum float64
		for i := 0; i < 4; i++ {
			sum += floatOf(ctx.Consume(0))
		}
		if sum < 0 {
			ctx.WriteCommit(p.errs, ctx.Load(p.errs)+1)
		}
	}
	return true
}

func (p *bsProg) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.chunks {
		return false
	}
	params := ctx.LoadBytes(p.optAddr(iter, 0), bsOptsPerChunk*bsOptWords*8)
	prices, bad := p.priceChunk(params)
	if bad {
		ctx.Misspec()
	}
	ctx.Compute(bsInstrPerOpt * bsOptsPerChunk)
	ctx.WriteBytesCommit(p.prices+uva.Addr(iter*bsOptsPerChunk*8), packFloats(prices))
	// Error-count bookkeeping is synchronized across iterations.
	var errs uint64
	if ctx.EpochFirst() {
		errs = ctx.Load(p.errs)
	} else {
		errs = ctx.SyncRecv()
	}
	ctx.Compute(bsTLSSyncInstr) // the serial validation section
	ctx.WriteCommit(p.errs, errs)
	ctx.SyncSend(errs)
	return true
}

func (p *bsProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	params := ctx.LoadBytes(p.optAddr(iter, 0), bsOptsPerChunk*bsOptWords*8)
	prices, bad := p.priceChunk(params)
	if bad {
		// The error path: price the valid options, count the error.
		prices = make([]float64, bsOptsPerChunk)
		ctx.Store(p.errs, ctx.Load(p.errs)+1)
		ctx.Compute(bsInstrPerOpt * bsOptsPerChunk / 2)
	} else {
		ctx.Compute(bsInstrPerOpt * bsOptsPerChunk)
	}
	ctx.StoreBytes(p.prices+uva.Addr(iter*bsOptsPerChunk*8), packFloats(prices))
}

func (p *bsProg) Checksum(img *mem.Image) uint64 {
	return img.ChecksumRange(p.prices, int(p.chunks)*bsOptsPerChunk*8)
}

func packFloats(fs []float64) []byte {
	b := make([]byte, len(fs)*8)
	for i, f := range fs {
		v := bitsOf(f)
		for k := 0; k < 8; k++ {
			b[i*8+k] = byte(v >> (8 * k))
		}
	}
	return b
}

func bitsOf(f float64) uint64  { return math.Float64bits(f) }
func floatOf(b uint64) float64 { return math.Float64frombits(b) }
