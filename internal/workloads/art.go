package workloads

import (
	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// 179.art — image recognition with an Adaptive Resonance Theory network.
// Each iteration scans one window of the input image against the learned F2
// category weights; the vigilance search loop's trip count varies wildly
// with window content, so iteration times are highly unbalanced. The paper
// addresses this by having the first stage distribute work by queue
// occupancy instead of round-robin (Plan.Occupancy); memory versioning
// gives each worker a private copy of the weight arrays.
//
// DSMTX: Spec-DSWP+[S,DOALL,S] with occupancy routing. TLS: round-robin
// with the recognition counts synchronized — the round-trip communication
// makes the TLS curve grow slower, as in the paper.

const (
	artWindows   = 400
	artDims      = 256
	artCats      = 24
	artInstrMAC  = 3
	artVigilance = 0.97
	artMaxPasses = 60
)

type artProg struct {
	tls     bool
	windows uint64
	seed    uint64

	weights uva.Addr // F2 weights: artCats x artDims floats
	inputs  uva.Addr // windows: artDims floats each
	out     uva.Addr // chosen category per window
	counts  uva.Addr // per-category hit counts
}

func newArtProg(in Input, tls bool) *artProg {
	return &artProg{tls: tls, windows: uint64(artWindows * in.scale()), seed: in.Seed}
}

// Art returns the Table 2 entry.
func Art() *Benchmark {
	return &Benchmark{
		Name:        "179.art",
		Suite:       "SPEC CFP 2000",
		Description: "image recognition",
		Paradigm:    "Spec-DSWP+[S,DOALL,S]",
		SpecTypes:   "MV",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newArtProg(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newArtProg(in, true) },
	}
}

func (p *artProg) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	plan := pipeline.SpecDSWP("S", "DOALL", "S")
	plan.Occupancy = true
	return plan
}

func (p *artProg) Iterations() uint64 { return p.windows }

func (p *artProg) windowAddr(i uint64) uva.Addr { return p.inputs + uva.Addr(i*artDims*8) }

func (p *artProg) Setup(ctx *core.SeqCtx) {
	p.weights = ctx.AllocWords(artCats * artDims)
	p.inputs = ctx.AllocWords(int(p.windows) * artDims)
	p.out = ctx.AllocWords(int(p.windows))
	p.counts = ctx.AllocWords(artCats)
	img := ctx.Image()
	r := newRNG(p.seed)
	for i := 0; i < artCats*artDims; i++ {
		img.Store(p.weights+uva.Addr(i*8), bitsOf(r.float()))
	}
	for w := uint64(0); w < p.windows; w++ {
		// Most windows resemble a category (fast resonance); a minority are
		// far from every category and churn through the full vigilance
		// search — the unbalanced trip counts the paper describes.
		base := r.intn(artCats)
		noise := 0.02
		if r.intn(10) < 4 {
			noise = 1.0 // hard window: pure noise, never resonates
		}
		for d := 0; d < artDims; d++ {
			wv := floatOf(img.Load(p.weights + uva.Addr((base*artDims+d)*8)))
			img.Store(p.windowAddr(w)+uva.Addr(d*8), bitsOf(wv*(1-noise)+noise*r.float()))
		}
	}
}

// classify runs the F1/F2 resonance search: score every category, then run
// feedback passes that blend the F1 activity toward the best-matching
// prototype until the similarity passes vigilance. Windows close to a
// prototype resonate in one pass; far-off windows churn through many — the
// unbalanced inner-loop trip count the paper describes. macs reports the
// real multiply-accumulate count.
func classify(window []float64, weights []float64) (cat int, macs int64) {
	act := make([]float64, artDims)
	copy(act, window)
	best := 0
	for pass := 0; pass < artMaxPasses; pass++ {
		// F2: score all categories against the current F1 activity.
		bestScore := -1.0
		var actNorm float64
		for _, v := range act {
			actNorm += v * v
		}
		for c := 0; c < artCats; c++ {
			var dot, wnorm float64
			for d := 0; d < artDims; d++ {
				wv := weights[c*artDims+d]
				dot += wv * act[d]
				wnorm += wv * wv
			}
			macs += artDims
			score := 0.0
			if denom := actNorm * wnorm; denom > 0 {
				score = dot * dot / denom
			}
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		if bestScore >= artVigilance {
			return best, macs
		}
		// F1 feedback: blend activity toward the winning prototype.
		for d := 0; d < artDims; d++ {
			act[d] = 0.97*act[d] + 0.03*weights[best*artDims+d]
		}
		macs += artDims
	}
	return best, macs
}

func unpackFloats(b []byte) []float64 {
	w := unpackWords(b)
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = floatOf(v)
	}
	return out
}

func (p *artProg) weightsOf(load func(uva.Addr, int) []byte) []float64 {
	return unpackFloats(load(p.weights, artCats*artDims*8))
}

func (p *artProg) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // sequential: read the window, dispatch by occupancy
		if iter >= p.windows {
			return false
		}
		window := ctx.LoadBytes(p.windowAddr(iter), artDims*8)
		ctx.ProduceData(1, window, artDims*8)
	case 1: // parallel: classify
		window := unpackFloats(ctx.ConsumeData(0).([]byte))
		weights := p.weightsOf(ctx.LoadBytes)
		cat, macs := classify(window, weights)
		ctx.Compute(macs * artInstrMAC)
		ctx.Produce(2, uint64(cat))
	case 2: // sequential: record
		cat := ctx.Consume(1)
		ctx.WriteCommit(p.out+uva.Addr(iter*8), cat)
		slot := p.counts + uva.Addr(cat*8)
		ctx.WriteCommit(slot, ctx.Load(slot)+1)
	}
	return true
}

func (p *artProg) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.windows {
		return false
	}
	window := unpackFloats(ctx.LoadBytes(p.windowAddr(iter), artDims*8))
	weights := p.weightsOf(ctx.LoadBytes)
	cat, macs := classify(window, weights)
	ctx.Compute(macs * artInstrMAC)
	ctx.WriteCommit(p.out+uva.Addr(iter*8), uint64(cat))
	// The per-category counts are synchronized around the ring.
	counts := make([]uint64, artCats)
	if ctx.EpochFirst() {
		for c := 0; c < artCats; c++ {
			counts[c] = ctx.Load(p.counts + uva.Addr(c*8))
		}
	} else {
		counts = ctx.SyncRecvVec(artCats)
	}
	counts[cat]++
	ctx.WriteCommit(p.counts+uva.Addr(cat*8), counts[cat])
	ctx.SyncSendVec(counts)
	return true
}

func (p *artProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	window := unpackFloats(ctx.LoadBytes(p.windowAddr(iter), artDims*8))
	weights := unpackFloats(ctx.LoadBytes(p.weights, artCats*artDims*8))
	cat, macs := classify(window, weights)
	ctx.Compute(macs * artInstrMAC)
	ctx.Store(p.out+uva.Addr(iter*8), uint64(cat))
	slot := p.counts + uva.Addr(uint64(cat)*8)
	ctx.Store(slot, ctx.Load(slot)+1)
}

func (p *artProg) Checksum(img *mem.Image) uint64 {
	h := img.ChecksumRange(p.out, int(p.windows)*8)
	h = mix(h, img.ChecksumRange(p.counts, artCats*8))
	return h
}
