package workloads

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/sim"
	"dsmtx/internal/uva"
)

// Kernel-level unit tests: each benchmark's computational heart, exercised
// directly (the runtime-level equivalence tests live in workloads_test.go).

// seqSetup runs a program's Setup against a fresh image, for direct kernel
// access.
func seqSetup(t *testing.T, prog Program) *mem.Image {
	t.Helper()
	cfg := coreDefaultFor(prog)
	elapsed, img, err := core.RunSequential(cfg, prog, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 0 {
		t.Fatal("negative time")
	}
	return img
}

func TestSwaptionsPriceProperties(t *testing.T) {
	p := newSwnProg(DefaultInput())
	// Invalid parameters take the error path.
	if _, bad := p.price(-0.01, 5, 1, 7); !bad {
		t.Fatal("negative strike accepted")
	}
	if _, bad := p.price(0.05, -1, 1, 7); !bad {
		t.Fatal("negative maturity accepted")
	}
	// Prices are finite, non-negative, and deterministic in the seed.
	f := func(seed uint64, k uint8) bool {
		strike := 0.02 + float64(k%50)/1000
		a, bad1 := p.price(strike, 5, 2, seed)
		b, bad2 := p.price(strike, 5, 2, seed)
		return !bad1 && !bad2 && a == b && a >= 0 && !math.IsNaN(a) && !math.IsInf(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
	// A deeper out-of-the-money strike cannot cost more.
	lo, _ := p.price(0.02, 5, 2, 99)
	hi, _ := p.price(0.09, 5, 2, 99)
	if hi > lo {
		t.Fatalf("price(strike=.09)=%v > price(strike=.02)=%v", hi, lo)
	}
}

func TestH264SADProperties(t *testing.T) {
	cur := make([]byte, h264FrameBytes)
	ref := make([]byte, h264FrameBytes)
	for i := range cur {
		cur[i] = byte(i % 200) // stay clear of byte overflow for the shift test
		ref[i] = cur[i]
	}
	// Identical frames: zero SAD at zero displacement.
	if s, ok := sad(cur, ref, 16, 16, 0, 0); !ok || s != 0 {
		t.Fatalf("sad(identical) = %d, %v", s, ok)
	}
	// Out-of-frame displacements are rejected.
	if _, ok := sad(cur, ref, 0, 0, -1, 0); ok {
		t.Fatal("out-of-frame candidate accepted")
	}
	// A uniform brightness shift of d over the block gives SAD 256*d.
	for i := range ref {
		ref[i] = cur[i] + 3
	}
	if s, _ := sad(cur, ref, 16, 16, 0, 0); s != 3*h264MB*h264MB {
		t.Fatalf("sad(shift 3) = %d, want %d", s, 3*h264MB*h264MB)
	}
}

func TestH264EncodeDeterministicAndMoving(t *testing.T) {
	p := newH264Prog(DefaultInput(), false)
	img := seqSetup(t, p)
	gop := img.LoadBytes(p.gopAddr(3), h264Frames*h264FrameBytes)
	a, ops1 := p.encodeGoP(gop, 3)
	b, ops2 := p.encodeGoP(gop, 3)
	if !bytes.Equal(a, b) || ops1 != ops2 {
		t.Fatal("encode not deterministic")
	}
	if ops1 == 0 || len(a) < 10 {
		t.Fatalf("suspicious encode: %d ops, %d bytes", ops1, len(a))
	}
	// The drifting gradient must yield at least one nonzero motion vector.
	nonzero := false
	for i := 1; i+3 < len(a); i += 4 {
		if a[i] != h264Search || a[i+1] != h264Search {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("no motion found in drifting synthetic video")
	}
}

func TestParserParseBehaviour(t *testing.T) {
	p := newParProg(DefaultInput(), false)
	img := seqSetup(t, p)
	load := func(a uva.Addr, n int) []byte { return img.LoadBytes(a, n) }
	sentence := p.loadSentence(load, 3)
	if len(sentence) < 12 || len(sentence) > parMaxWords {
		t.Fatalf("sentence length %d", len(sentence))
	}
	cost, passes, errPath := p.parse(load, sentence, 3)
	if errPath {
		t.Fatal("normal sentence took the error path")
	}
	if passes < 1 || passes > 8 {
		t.Fatalf("passes = %d", passes)
	}
	// Unknown words (out-of-dictionary) hit the error path.
	if _, _, err2 := p.parse(load, []uint64{1 << 40}, 3); !err2 {
		t.Fatal("unknown word not flagged")
	}
	// More permissive options cannot fail where stricter ones succeeded,
	// and parsing is deterministic.
	cost2, passes2, _ := p.parse(load, sentence, 3)
	if cost != cost2 || passes != passes2 {
		t.Fatal("parse not deterministic")
	}
	_, passesLoose, _ := p.parse(load, sentence, 0xff)
	if passesLoose > passes {
		t.Fatalf("looser options needed more passes (%d > %d)", passesLoose, passes)
	}
}

func TestAlvinnGradientDirection(t *testing.T) {
	p := newAlvProg(DefaultInput(), 0)
	img := seqSetup(t, p)
	weights := unpackFloats(img.LoadBytes(p.weights, alvWeightLen*8))
	raw := img.LoadBytes(p.chunkSamplesAddr(0), alvChunkSize*alvSampleBytes)
	grad, macs := p.chunkGradient(weights, raw)
	if macs == 0 {
		t.Fatal("no work counted")
	}
	// Applying a small step along the gradient must reduce the squared
	// error on the chunk (it is the gradient of -error).
	errOf := func(w []float64) float64 {
		g := &alvProg{}
		_ = g
		var total float64
		samples := make([]float64, len(raw))
		for i, b := range raw {
			samples[i] = float64(b) / 255
			if i%alvSampleBytes >= alvIn {
				samples[i] = float64(b)
			}
		}
		w1 := w[:alvIn*alvHid]
		w2 := w[alvIn*alvHid:]
		for s := 0; s < alvChunkSize; s++ {
			in := samples[s*alvSampleBytes : s*alvSampleBytes+alvIn]
			target := samples[s*alvSampleBytes+alvIn : (s+1)*alvSampleBytes]
			var hid [alvHid]float64
			for h := 0; h < alvHid; h++ {
				var sum float64
				for i := 0; i < alvIn; i++ {
					sum += in[i] * w1[i*alvHid+h]
				}
				hid[h] = sigmoid(sum)
			}
			for o := 0; o < alvOut; o++ {
				var sum float64
				for h := 0; h < alvHid; h++ {
					sum += hid[h] * w2[h*alvOut+o]
				}
				d := target[o] - sigmoid(sum)
				total += d * d
			}
		}
		return total
	}
	before := errOf(weights)
	stepped := make([]float64, len(weights))
	for i := range weights {
		stepped[i] = weights[i] + 0.01*float64(grad[i])/(1<<alvFixShift)
	}
	after := errOf(stepped)
	if after >= before {
		t.Fatalf("gradient step increased error: %v -> %v", before, after)
	}
}

func TestAlvinnAccumulateExact(t *testing.T) {
	slot := make([]byte, alvWeightLen*8)
	g1 := make([]int64, alvWeightLen)
	g2 := make([]int64, alvWeightLen)
	for i := range g1 {
		g1[i] = int64(i) - 800
		g2[i] = int64(i * i % 977)
	}
	slot = accumulate(accumulate(slot, g1), g2)
	words := unpackWords(slot)
	for i := range g1 {
		if int64(words[i]) != g1[i]+g2[i] {
			t.Fatalf("slot[%d] = %d, want %d", i, int64(words[i]), g1[i]+g2[i])
		}
	}
}

func TestArtClassifyDeterministicAndValid(t *testing.T) {
	p := newArtProg(DefaultInput(), false)
	img := seqSetup(t, p)
	weights := unpackFloats(img.LoadBytes(p.weights, artCats*artDims*8))
	for w := uint64(0); w < 10; w++ {
		win := unpackFloats(img.LoadBytes(p.windowAddr(w), artDims*8))
		c1, m1 := classify(win, weights)
		c2, m2 := classify(win, weights)
		if c1 != c2 || m1 != m2 {
			t.Fatal("classify not deterministic")
		}
		if c1 < 0 || c1 >= artCats {
			t.Fatalf("category %d out of range", c1)
		}
	}
}

func TestHmmerScoreBatchShape(t *testing.T) {
	p := newHmmProg(DefaultInput(), false)
	img := seqSetup(t, p)
	emit, trans := p.tables(func(a uva.Addr, n int) []byte { return img.LoadBytes(a, n) })
	if len(emit) != hmmStates*hmmAlphabet || len(trans) != hmmStates*3 {
		t.Fatalf("table sizes %d/%d", len(emit), len(trans))
	}
	batch := img.LoadBytes(p.batchAddr(0), hmmSeqsPerBatch*hmmSeqLen)
	scores, maxScore := p.scoreBatch(batch, emit, trans)
	if len(scores) != hmmSeqsPerBatch {
		t.Fatalf("%d scores", len(scores))
	}
	var expectMax uint64
	for _, s := range scores {
		if s > expectMax {
			expectMax = s
		}
	}
	if maxScore != expectMax {
		t.Fatalf("maxScore %d != max(scores) %d", maxScore, expectMax)
	}
}

func TestGzipCompressionRatioSane(t *testing.T) {
	p := newGzProg(DefaultInput(), false)
	img := seqSetup(t, p)
	block := img.LoadBytes(p.input, gzBlockBytes)
	comp, instr := p.compress(block)
	if len(comp) >= gzBlockBytes {
		t.Fatalf("text-like block expanded: %d -> %d", gzBlockBytes, len(comp))
	}
	if instr == 0 {
		t.Fatal("no work charged")
	}
	if got := lzDecompress(huffDecode(comp)); !bytes.Equal(got, block) {
		t.Fatal("round trip failed")
	}
}

func TestBzip2CompressionRatioSane(t *testing.T) {
	p := newBzProg(DefaultInput(), false)
	img := seqSetup(t, p)
	block := img.LoadBytes(p.blockAddr(1), bzBlockBytes)
	comp, instr, errPath := p.compress(block)
	if errPath {
		t.Fatal("normal block took the error path")
	}
	if len(comp) >= bzBlockBytes {
		t.Fatalf("text-like block expanded: %d -> %d", bzBlockBytes, len(comp))
	}
	if instr == 0 {
		t.Fatal("no work charged")
	}
	if got := mtfRLEInverse(comp); !bytes.Equal(got, block) {
		t.Fatal("round trip failed")
	}
}

func TestCRCCorruptHeaderPath(t *testing.T) {
	p := newCRCProg(Input{Scale: 1, Seed: 1, MisspecRate: 0.05}, false)
	if len(p.corrupt) == 0 {
		t.Fatal("no corrupt files at 5% rate")
	}
	img := seqSetup(t, p)
	var iter uint64
	for k := range p.corrupt {
		iter = k
		break
	}
	data := img.LoadBytes(p.fileAddr(iter), crcFileBytes)
	if _, ok := p.checkFile(data); ok {
		t.Fatal("corrupt file passed the check")
	}
}

func TestBSChunkPageAlignment(t *testing.T) {
	// bsOptsPerChunk is chosen so one chunk's prices fill whole pages; the
	// commit path depends on it for write-allocate bypass.
	if (bsOptsPerChunk*8)%uva.PageSize != 0 {
		t.Fatalf("chunk price block %d bytes is not page-multiple", bsOptsPerChunk*8)
	}
}

func TestSeqCtxCostsCharged(t *testing.T) {
	// Sequential references must charge time for their work: a benchmark
	// with zero sequential time would produce infinite speedups.
	for _, b := range All() {
		prog := b.NewDSMTX(Input{Scale: 1, Seed: 3}, 0)
		elapsed, _, err := core.RunSequential(coreDefaultFor(prog), prog, min64(prog.Iterations(), 3), nil)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if elapsed <= sim.Time(0) {
			t.Errorf("%s: sequential run charged no time", b.Name)
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
