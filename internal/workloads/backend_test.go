package workloads

import (
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/faults"
)

// The host backend runs the same DSMTX protocol as the vtime simulator but
// on live goroutines with nondeterministic interleaving. Protocol outcomes
// must nonetheless be backend-invariant: misspeculations come from the
// input's deterministic per-iteration misspec set (not from timing), and
// Copy-On-Access pages are served from the invocation-entry snapshot, so
// the values any iteration observes — and hence the committed state — do
// not depend on scheduling. These tests pin that equivalence: both backends
// must reproduce the sequential reference checksum with identical committed
// MTX counts. They are part of the -race gate in verify.sh, which also
// makes them the data-race audit of the host execution path.

// checkBackendEquivalence runs one benchmark on both backends at the same
// core count and cross-checks them against the sequential reference.
func checkBackendEquivalence(t *testing.T, name string, in Input, cores int) {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	_, seqCheck, err := RunSequentialRef(b, in)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := RunParallel(b, in, DSMTX, cores, nil)
	if err != nil {
		t.Fatalf("vtime: %v", err)
	}
	hres, err := RunParallel(b, in, DSMTX, cores, func(cfg *core.Config) {
		cfg.Backend = core.BackendHost
	})
	if err != nil {
		t.Fatalf("host: %v", err)
	}
	if vres.Checksum != seqCheck {
		t.Errorf("vtime checksum %#x != sequential %#x", vres.Checksum, seqCheck)
	}
	if hres.Checksum != seqCheck {
		t.Errorf("host checksum %#x != sequential %#x", hres.Checksum, seqCheck)
	}
	if hres.Committed != vres.Committed {
		t.Errorf("committed MTXs differ: host %d, vtime %d", hres.Committed, vres.Committed)
	}
	if hres.Misspecs != vres.Misspecs {
		t.Errorf("misspeculations differ: host %d, vtime %d", hres.Misspecs, vres.Misspecs)
	}
	if hres.Elapsed <= 0 {
		t.Errorf("host elapsed %v, want > 0 wall time", hres.Elapsed)
	}
	if in.MisspecRate > 0 && hres.Misspecs == 0 {
		t.Errorf("misspec rate %v produced no misspeculations; recovery path not exercised", in.MisspecRate)
	}
}

func TestBackendEquivalenceCRC32(t *testing.T) {
	// MisspecRate forces real misspeculation/recovery cycles — four-phase
	// recovery (barriers, queue flush, SEQ re-execution, snapshot refresh)
	// runs live on goroutines and must still converge to the same state.
	checkBackendEquivalence(t, "crc32", Input{Scale: 1, Seed: 42, MisspecRate: 0.02}, 8)
}

func TestBackendEquivalenceBlackscholes(t *testing.T) {
	checkBackendEquivalence(t, "blackscholes", Input{Scale: 1, Seed: 42}, 8)
}

func TestBackendEquivalenceGzip(t *testing.T) {
	// A pipelined (multi-stage) plan: exercises cross-stage forwarding and
	// route records over the host mailboxes.
	checkBackendEquivalence(t, "164.gzip", Input{Scale: 1, Seed: 42}, 11)
}

// TestHostBackendRejectsVTimeOnlyFeatures pins the validation boundary:
// the fault and tracing subsystems are built on the virtual-time kernel.
func TestHostBackendRejectsVTimeOnlyFeatures(t *testing.T) {
	b, err := ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.NewDSMTX(Input{Scale: 1, Seed: 42}, 0)
	cfg := core.DefaultConfig(8, prog.Plan())
	cfg.Backend = core.BackendHost
	cfg.Faults = &faults.Plan{Seed: 1, DropRate: 0.1}
	if _, err := core.NewSystem(cfg, prog, nil); err == nil {
		t.Fatal("host backend accepted a fault plan")
	}
}
