package workloads

import (
	"sync"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// 164.gzip — file compressor. The pipeline is read-block / compress-block /
// write-block. gzip's variable block size means the next block's start is
// known only after the current block compresses; the Y-branch transform
// starts blocks at fixed intervals instead, breaking the dependence for the
// DSMTX parallelization (Spec-DSWP+[S,DOALL,S]) — DSMTX's memory versioning
// gives every compressing worker its own copy of the block arrays. The
// whole input streams through the first stage's NIC, which is why gzip has
// the paper's highest bandwidth requirement and limited scalability.
//
// TLS cannot use the Y-branch (the block boundary is a synchronized
// dependence received before compressing), so its iterations serialize on
// compression — the paper's low, flat TLS curve.

const (
	gzBlocks         = 250
	gzBlockBytes     = 24 << 10
	gzInstrPerProbe  = 14 // hash probe + match extension step
	gzInstrPerHuffOp = 3  // per Huffman operation (count/emit bit)
)

type gzProg struct {
	tls    bool
	blocks uint64
	seed   uint64

	input  uva.Addr // the file, gzBlocks * gzBlockBytes
	output uva.Addr // compressed blocks, back to back
	outLen uva.Addr // per-block compressed length words
	cursor uva.Addr // input cursor (loop-carried, stage 0)
	outCur uva.Addr // output cursor (loop-carried, stage 2)
}

func newGzProg(in Input, tls bool) *gzProg {
	return &gzProg{tls: tls, blocks: uint64(gzBlocks * in.scale()), seed: in.Seed}
}

// Gzip returns the Table 2 entry.
func Gzip() *Benchmark {
	return &Benchmark{
		Name:        "164.gzip",
		Suite:       "SPEC CINT 2000",
		Description: "file compressor",
		Paradigm:    "Spec-DSWP+[S,DOALL,S]",
		SpecTypes:   "MV",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newGzProg(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newGzProg(in, true) },
	}
}

func (p *gzProg) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	return pipeline.SpecDSWP("S", "DOALL", "S")
}

func (p *gzProg) Iterations() uint64 { return p.blocks }

func (p *gzProg) Setup(ctx *core.SeqCtx) {
	total := int64(p.blocks) * gzBlockBytes
	p.input = ctx.Alloc(total)
	p.output = ctx.Alloc(total + int64(p.blocks)*512)
	p.outLen = ctx.AllocWords(int(p.blocks))
	p.cursor = ctx.AllocWords(1)
	p.outCur = ctx.AllocWords(1)
	img := ctx.Image()
	data := gzInput(p.seed, total)
	const chunk = 1 << 16
	for off := int64(0); off < total; off += chunk {
		n := int64(chunk)
		if total-off < n {
			n = total - off
		}
		img.StoreBytes(p.input+uva.Addr(off), data[off:off+n])
	}
	ctx.Store(p.cursor, 0)
	ctx.Store(p.outCur, 0)
}

// gzInputCache memoizes the generated input file: benchmark sweeps re-run
// Setup for every (workers, rate) point over the same input, and pushing
// megabytes through the rng dominates Setup's host cost. rng.bytes
// back-references within each call's buffer, so the stream depends on the
// chunking — the cache reproduces Setup's exact 64 KiB chunk loop and is
// byte-identical to direct generation. Host-parallel sweeps hit this map
// from many goroutines at once: stored slices are never mutated after
// insertion, and LoadOrStore keeps a lost race harmless (both runs see some
// byte-identical buffer).
var gzInputCache sync.Map // gzInputKey -> []byte

type gzInputKey struct {
	seed  uint64
	total int64
}

func gzInput(seed uint64, total int64) []byte {
	key := gzInputKey{seed, total}
	if v, ok := gzInputCache.Load(key); ok {
		return v.([]byte)
	}
	r := newRNG(seed)
	data := make([]byte, 0, total)
	const chunk = 1 << 16
	for off := int64(0); off < total; off += chunk {
		n := chunk
		if total-off < int64(n) {
			n = int(total - off)
		}
		data = append(data, r.bytes(n)...)
	}
	v, _ := gzInputCache.LoadOrStore(key, data)
	return v.([]byte)
}

// lzScratch recycles the LZ77 token stream between compress calls: it is
// consumed by huffEncode and never escapes, so the buffer can go straight
// back in the pool. Safe under concurrent simulations: each Get hands the
// buffer to exactly one goroutine, and lzCompressInto overwrites from
// offset zero before any read.
var lzScratch sync.Pool

// compress does the block's real work — LZ77 then canonical Huffman, the
// two halves of deflate; costs derive from the operations each half
// actually performed.
func (p *gzProg) compress(block []byte) (comp []byte, instr int64) {
	buf, _ := lzScratch.Get().([]byte)
	lz, probes := lzCompressInto(block, buf)
	comp, huffWork := huffEncode(lz)
	lzScratch.Put(lz[:0])
	return comp, int64(probes)*gzInstrPerProbe + huffWork*gzInstrPerHuffOp
}

func (p *gzProg) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // sequential: read a block at a fixed (Y-branch) interval
		if iter >= p.blocks {
			return false
		}
		cur := ctx.Load(p.cursor)
		block := ctx.LoadBytes(p.input+uva.Addr(cur), gzBlockBytes)
		ctx.WriteCommit(p.cursor, cur+gzBlockBytes)
		ctx.ProduceData(1, block, gzBlockBytes)
	case 1: // parallel: compress
		block := ctx.ConsumeData(0).([]byte)
		comp, instr := p.compress(block)
		ctx.Compute(instr)
		ctx.ProduceData(2, comp, len(comp))
	case 2: // sequential: write the compressed block
		comp := ctx.ConsumeData(1).([]byte)
		out := ctx.Load(p.outCur)
		ctx.WriteBytesCommit(p.output+uva.Addr(out), comp)
		ctx.WriteCommit(p.outLen+uva.Addr(iter*8), uint64(len(comp)))
		ctx.WriteCommit(p.outCur, out+uint64(alignUp(len(comp))))
	}
	return true
}

// tlsStage serializes on the block boundary: without the Y-branch the input
// cursor is a synchronized dependence resolved only after compressing.
func (p *gzProg) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.blocks {
		return false
	}
	var cur, out uint64
	if ctx.EpochFirst() {
		cur, out = ctx.Load(p.cursor), ctx.Load(p.outCur)
	} else {
		v := ctx.SyncRecvVec(2)
		cur, out = v[0], v[1]
	}
	block := ctx.LoadBytes(p.input+uva.Addr(cur), gzBlockBytes)
	comp, instr := p.compress(block)
	ctx.Compute(instr)
	// Only now is the next block's start (and output position) known.
	ctx.WriteCommit(p.cursor, cur+gzBlockBytes)
	ctx.WriteBytesCommit(p.output+uva.Addr(out), comp)
	ctx.WriteCommit(p.outLen+uva.Addr(iter*8), uint64(len(comp)))
	newOut := out + uint64(alignUp(len(comp)))
	ctx.WriteCommit(p.outCur, newOut)
	ctx.SyncSendVec([]uint64{cur + gzBlockBytes, newOut})
	return true
}

func (p *gzProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	cur := ctx.Load(p.cursor)
	block := ctx.LoadBytes(p.input+uva.Addr(cur), gzBlockBytes)
	ctx.Store(p.cursor, cur+gzBlockBytes)
	comp, instr := p.compress(block)
	ctx.Compute(instr)
	out := ctx.Load(p.outCur)
	ctx.StoreBytes(p.output+uva.Addr(out), comp)
	ctx.Store(p.outLen+uva.Addr(iter*8), uint64(len(comp)))
	ctx.Store(p.outCur, out+uint64(alignUp(len(comp))))
}

func (p *gzProg) Checksum(img *mem.Image) uint64 {
	h := img.Load(p.outCur)
	h = mix(h, img.ChecksumRange(p.output, int(img.Load(p.outCur))))
	h = mix(h, img.ChecksumRange(p.outLen, int(p.blocks)*8))
	return h
}

// decompressAll reconstructs the original input from committed memory (test
// support: compression must round-trip).
func (p *gzProg) decompressAll(img *mem.Image) []byte {
	var out []byte
	off := uint64(0)
	for i := uint64(0); i < p.blocks; i++ {
		n := img.Load(p.outLen + uva.Addr(i*8))
		comp := img.LoadBytes(p.output+uva.Addr(off), int(n))
		out = append(out, lzDecompress(huffDecode(comp))...)
		off += uint64(alignUp(int(n)))
	}
	return out
}

// alignUp rounds a length to the word size so block starts stay aligned.
func alignUp(n int) int { return (n + 7) &^ 7 }
