package workloads

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHuffmanRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{7, 7, 7, 7},
		[]byte("the quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte("ab"), 5000),
		newRNG(5).bytes(30000),
	}
	for i, src := range cases {
		comp, work := huffEncode(src)
		if len(src) > 0 && work == 0 {
			t.Errorf("case %d: no work counted", i)
		}
		got := huffDecode(comp)
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: round trip failed (%d -> %d -> %d bytes)", i, len(src), len(comp), len(got))
		}
	}
}

func TestHuffmanCompressesSkewedInput(t *testing.T) {
	// 90% one symbol: entropy << 8 bits/symbol, so the stream must shrink
	// well below raw size despite the 260-byte header.
	src := make([]byte, 20000)
	r := newRNG(9)
	for i := range src {
		if r.intn(10) != 0 {
			src[i] = 'e'
		} else {
			src[i] = byte('a' + r.intn(20))
		}
	}
	comp, _ := huffEncode(src)
	if len(comp) > len(src)/2 {
		t.Fatalf("skewed input compressed to %d/%d", len(comp), len(src))
	}
}

func TestHuffmanCanonicalProperty(t *testing.T) {
	// Kraft equality for the constructed lengths, and decodability for any
	// payload.
	f := func(data []byte) bool {
		comp, _ := huffEncode(data)
		return bytes.Equal(huffDecode(comp), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanKraftInequality(t *testing.T) {
	var freq [256]int
	r := newRNG(3)
	for i := 0; i < 150; i++ {
		freq[r.intn(256)] += 1 + r.intn(1000)
	}
	lengths := huffLengths(freq)
	sum := 0.0
	used := 0
	for s, l := range lengths {
		if freq[s] > 0 && l == 0 {
			t.Fatalf("symbol %d has frequency but no code", s)
		}
		if l > 0 {
			sum += 1 / float64(uint64(1)<<l)
			used++
		}
	}
	if used > 1 && sum > 1.0000001 {
		t.Fatalf("Kraft sum %v > 1: not a prefix code", sum)
	}
}
