package workloads

import (
	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/uva"
)

// 456.hmmer — gene sequence database search. Each iteration Viterbi-scores
// a batch of database sequences against a profile HMM (the parallel first
// stage); the second, sequential stage computes the score histogram and the
// max-reduction. Memory versioning gives every worker its own copy of the
// profile and DP matrices.
//
// DSMTX: Spec-DSWP+[DOALL,S]. TLS: the histogram/max updates are a
// synchronized dependence, whose cyclic forwarding limits scaling as core
// counts grow — the paper's explanation for TLS falling behind.

const (
	hmmBatches      = 400
	hmmSeqsPerBatch = 48
	hmmSeqLen       = 48
	hmmStates       = 32
	hmmAlphabet     = 20
	hmmInstrPerCell = 10
	hmmBins         = 25
)

type hmmProg struct {
	tls     bool
	batches uint64
	seed    uint64

	profile uva.Addr // emission scores: state*alphabet int words
	trans   uva.Addr // transition scores: 3 per state
	seqs    uva.Addr // database: one byte per residue
	out     uva.Addr // per-batch max score
	hist    uva.Addr // hmmBins histogram words
	globMax uva.Addr // global max score (reduction)
}

func newHmmProg(in Input, tls bool) *hmmProg {
	return &hmmProg{tls: tls, batches: uint64(hmmBatches * in.scale()), seed: in.Seed}
}

// Hmmer returns the Table 2 entry.
func Hmmer() *Benchmark {
	return &Benchmark{
		Name:        "456.hmmer",
		Suite:       "SPEC CINT 2006",
		Description: "gene sequence database search",
		Paradigm:    "Spec-DSWP+[DOALL,S]",
		SpecTypes:   "MV",
		Invocations: 1,
		NewDSMTX:    func(in Input, _ int) Program { return newHmmProg(in, false) },
		NewTLS:      func(in Input, _ int) Program { return newHmmProg(in, true) },
	}
}

func (p *hmmProg) Plan() pipeline.Plan {
	if p.tls {
		return tlsrt.Plan()
	}
	return pipeline.SpecDSWP("DOALL", "S")
}

func (p *hmmProg) Iterations() uint64 { return p.batches }

func (p *hmmProg) batchAddr(b uint64) uva.Addr {
	return p.seqs + uva.Addr(b*hmmSeqsPerBatch*hmmSeqLen)
}

func (p *hmmProg) Setup(ctx *core.SeqCtx) {
	p.profile = ctx.AllocWords(hmmStates * hmmAlphabet)
	p.trans = ctx.AllocWords(hmmStates * 3)
	dbBytes := int64(p.batches) * hmmSeqsPerBatch * hmmSeqLen
	p.seqs = ctx.Alloc(dbBytes)
	p.out = ctx.AllocWords(int(p.batches))
	p.hist = ctx.AllocWords(hmmBins)
	p.globMax = ctx.AllocWords(1)
	img := ctx.Image()
	r := newRNG(p.seed)
	for i := 0; i < hmmStates*hmmAlphabet; i++ {
		img.Store(p.profile+uva.Addr(i*8), uint64(r.intn(17))) // emission score 0..16
	}
	for i := 0; i < hmmStates*3; i++ {
		img.Store(p.trans+uva.Addr(i*8), uint64(r.intn(5))) // transition penalty 0..4
	}
	db := make([]byte, dbBytes)
	for i := range db {
		db[i] = byte(r.intn(hmmAlphabet))
	}
	img.StoreBytes(p.seqs, db)
	ctx.Store(p.globMax, 0)
}

// viterbi scores one sequence against the profile: a real
// match/insert/delete DP with integer scores.
func viterbi(seq []byte, emit, trans []uint64) uint64 {
	prev := make([]int64, hmmStates+1)
	cur := make([]int64, hmmStates+1)
	var best int64
	for i := 0; i < len(seq); i++ {
		c := int(seq[i])
		for s := 1; s <= hmmStates; s++ {
			e := int64(emit[(s-1)*hmmAlphabet+c])
			tMatch := int64(trans[(s-1)*3])
			tIns := int64(trans[(s-1)*3+1])
			tDel := int64(trans[(s-1)*3+2])
			m := prev[s-1] + e - tMatch
			if v := prev[s] + e - tIns - 1; v > m {
				m = v
			}
			if v := cur[s-1] - tDel - 2; v > m {
				m = v
			}
			if m < 0 {
				m = 0
			}
			cur[s] = m
			if m > best {
				best = m
			}
		}
		prev, cur = cur, prev
	}
	return uint64(best)
}

// scoreBatch does the batch's real work from raw bytes; profile tables are
// passed in decoded.
func (p *hmmProg) scoreBatch(batch []byte, emit, trans []uint64) (scores []uint64, maxScore uint64) {
	scores = make([]uint64, hmmSeqsPerBatch)
	for s := 0; s < hmmSeqsPerBatch; s++ {
		sc := viterbi(batch[s*hmmSeqLen:(s+1)*hmmSeqLen], emit, trans)
		scores[s] = sc
		if sc > maxScore {
			maxScore = sc
		}
	}
	return scores, maxScore
}

func unpackWords(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		var v uint64
		for k := 7; k >= 0; k-- {
			v = v<<8 | uint64(b[i*8+k])
		}
		out[i] = v
	}
	return out
}

func (p *hmmProg) tables(load func(uva.Addr, int) []byte) (emit, trans []uint64) {
	emit = unpackWords(load(p.profile, hmmStates*hmmAlphabet*8))
	trans = unpackWords(load(p.trans, hmmStates*3*8))
	return emit, trans
}

func (p *hmmProg) bin(score uint64) uva.Addr {
	b := score / 8
	if b >= hmmBins {
		b = hmmBins - 1
	}
	return p.hist + uva.Addr(b*8)
}

func (p *hmmProg) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	if p.tls {
		return p.tlsStage(ctx, iter)
	}
	switch stage {
	case 0: // parallel: score the batch
		if iter >= p.batches {
			return false
		}
		emit, trans := p.tables(ctx.LoadBytes)
		batch := ctx.LoadBytes(p.batchAddr(iter), hmmSeqsPerBatch*hmmSeqLen)
		scores, maxScore := p.scoreBatch(batch, emit, trans)
		ctx.Compute(hmmInstrPerCell * hmmSeqsPerBatch * hmmSeqLen * hmmStates)
		for _, sc := range scores {
			ctx.Produce(1, sc)
		}
		ctx.WriteCommit(p.out+uva.Addr(iter*8), maxScore)
	case 1: // sequential: histogram + max reduction
		var maxScore uint64
		for s := 0; s < hmmSeqsPerBatch; s++ {
			sc := ctx.Consume(0)
			ctx.WriteCommit(p.bin(sc), ctx.Load(p.bin(sc))+1)
			if sc > maxScore {
				maxScore = sc
			}
		}
		if maxScore > ctx.Load(p.globMax) {
			ctx.WriteCommit(p.globMax, maxScore)
		}
	}
	return true
}

func (p *hmmProg) tlsStage(ctx *core.Ctx, iter uint64) bool {
	if iter >= p.batches {
		return false
	}
	emit, trans := p.tables(ctx.LoadBytes)
	batch := ctx.LoadBytes(p.batchAddr(iter), hmmSeqsPerBatch*hmmSeqLen)
	scores, maxScore := p.scoreBatch(batch, emit, trans)
	ctx.Compute(hmmInstrPerCell * hmmSeqsPerBatch * hmmSeqLen * hmmStates)
	ctx.WriteCommit(p.out+uva.Addr(iter*8), maxScore)
	// The histogram and global max are synchronized dependences: their
	// whole state is forwarded around the ring, iteration to iteration.
	state := make([]uint64, hmmBins+1)
	if ctx.EpochFirst() {
		for b := 0; b < hmmBins; b++ {
			state[b] = ctx.Load(p.hist + uva.Addr(b*8))
		}
		state[hmmBins] = ctx.Load(p.globMax)
	} else {
		state = ctx.SyncRecvVec(hmmBins + 1)
	}
	ctx.Compute(3000) // serial histogram update section
	for _, sc := range scores {
		b := int(uint64(p.bin(sc)-p.hist) / 8)
		state[b]++
	}
	if maxScore > state[hmmBins] {
		state[hmmBins] = maxScore
	}
	for b := 0; b < hmmBins; b++ {
		ctx.WriteCommit(p.hist+uva.Addr(b*8), state[b])
	}
	ctx.WriteCommit(p.globMax, state[hmmBins])
	ctx.SyncSendVec(state)
	return true
}

func (p *hmmProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	emit, trans := p.tables(ctx.LoadBytes)
	batch := ctx.LoadBytes(p.batchAddr(iter), hmmSeqsPerBatch*hmmSeqLen)
	scores, maxScore := p.scoreBatch(batch, emit, trans)
	ctx.Compute(hmmInstrPerCell * hmmSeqsPerBatch * hmmSeqLen * hmmStates)
	for _, sc := range scores {
		ctx.Store(p.bin(sc), ctx.Load(p.bin(sc))+1)
	}
	ctx.Store(p.out+uva.Addr(iter*8), maxScore)
	if maxScore > ctx.Load(p.globMax) {
		ctx.Store(p.globMax, maxScore)
	}
}

func (p *hmmProg) Checksum(img *mem.Image) uint64 {
	h := img.Load(p.globMax)
	for b := 0; b < hmmBins; b++ {
		h = mix(h, img.Load(p.hist+uva.Addr(b*8)))
	}
	h = mix(h, img.ChecksumRange(p.out, int(p.batches)*8))
	return h
}
