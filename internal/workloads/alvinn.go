package workloads

import (
	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/uva"
)

// 052.alvinn — neural network training. The parallelized loop is the
// per-chunk gradient computation at the second level of the training loop
// nest: every invocation (epoch) forward/backward-propagates the training
// chunks in parallel, each worker accumulating into its own gradient array
// (the paper's accumulator expansion), and ends with a sequential reduction
// over those arrays plus the weight update. As the paper notes, every
// invocation re-initializes workers with data from the commit unit
// (Copy-On-Access of weights and samples) and communicates the reduction
// arrays back at the end — those synchronizations, i.e. communication
// bandwidth, bound the speedup.
//
// Gradients accumulate in 44.20 fixed point, so the reduction is exact and
// independent of summation order — the committed result is identical for
// any worker count, and to the sequential reference.
//
// TLS and DSMTX parallelizations are identical: Spec-DOALL with no
// cross-iteration communication (the paper makes the same observation).
// The loop has no speculated dependences that can manifest, so it never
// misspeculates (it is excluded from the paper's recovery study).

const (
	alvEpochs    = 2
	alvChunks    = 496
	alvChunkSize = 16 // samples per iteration
	alvIn        = 96
	alvHid       = 16
	alvOut       = 8
	alvInstrMAC  = 8
	alvWeightLen = alvIn*alvHid + alvHid*alvOut // 1664 words
	alvSlotWords = 2048                         // slot stride: 4 whole pages
	alvSlots     = 128                          // max accumulator slots
	alvLearnRate = 0.02
	alvFixShift  = 20 // fixed-point fraction bits
)

type alvProg struct {
	epoch  int
	chunks uint64
	seed   uint64

	weights uva.Addr // network weights (carried across invocations)
	samples uva.Addr // inputs+targets per sample
	grads   uva.Addr // per-slot gradient accumulators (int64 fixed point)
}

// Samples are stored as bytes (the real ALVINN's retina inputs are pixel
// intensities), decoded to [0,1] floats in the kernel.
const alvSampleBytes = alvIn + alvOut

func newAlvProg(in Input, inv int) *alvProg {
	return &alvProg{epoch: inv, chunks: uint64(alvChunks * in.scale()), seed: in.Seed}
}

// Alvinn returns the Table 2 entry.
func Alvinn() *Benchmark {
	return &Benchmark{
		Name:        "052.alvinn",
		Suite:       "SPEC CFP 92",
		Description: "neural network",
		Paradigm:    "Spec-DOALL",
		SpecTypes:   "MV",
		Invocations: alvEpochs,
		NewDSMTX:    func(in Input, inv int) Program { return newAlvProg(in, inv) },
		NewTLS:      func(in Input, inv int) Program { return newAlvProg(in, inv) },
	}
}

func (p *alvProg) Plan() pipeline.Plan { return pipeline.SpecDOALL() }

func (p *alvProg) Iterations() uint64 { return p.chunks }

func (p *alvProg) chunkSamplesAddr(iter uint64) uva.Addr {
	return p.samples + uva.Addr(iter*alvChunkSize*alvSampleBytes)
}

func (p *alvProg) slotAddr(slot int) uva.Addr {
	return p.grads + uva.Addr(slot*alvSlotWords*8)
}

func (p *alvProg) Setup(ctx *core.SeqCtx) {
	// Allocation order is identical every epoch, so addresses persist
	// across invocations and the weight state carries through the image.
	p.weights = ctx.AllocWords(alvWeightLen)
	p.samples = ctx.Alloc(int64(p.chunks) * alvChunkSize * alvSampleBytes)
	p.grads = ctx.AllocWords(alvSlots * alvSlotWords)
	img := ctx.Image()
	if p.epoch == 0 {
		r := newRNG(p.seed)
		for i := 0; i < alvWeightLen; i++ {
			img.Store(p.weights+uva.Addr(i*8), bitsOf(0.2*r.float()-0.1))
		}
	}
	r := newRNG(p.seed + 7)
	data := make([]byte, int(p.chunks)*alvChunkSize*alvSampleBytes)
	for s := 0; s < int(p.chunks)*alvChunkSize; s++ {
		base := s * alvSampleBytes
		for d := 0; d < alvIn; d++ {
			data[base+d] = byte(r.intn(256))
		}
		for o := 0; o < alvOut; o++ {
			data[base+alvIn+o] = byte(o % 2)
		}
	}
	img.StoreBytes(p.samples, data)
	// Accumulator slots start each epoch zeroed.
	zero := make([]byte, alvSlotWords*8)
	for c := 0; c < alvSlots; c++ {
		img.StoreBytes(p.slotAddr(c), zero)
	}
}

// chunkGradient is the real work: forward and backward passes over the
// chunk's byte-encoded samples, producing the fixed-point weight gradient.
func (p *alvProg) chunkGradient(weights []float64, raw []byte) (grad []int64, macs int64) {
	samples := make([]float64, len(raw))
	for i, b := range raw {
		samples[i] = float64(b) / 255
		if i%alvSampleBytes >= alvIn {
			samples[i] = float64(b) // targets are 0/1 labels
		}
	}
	g := make([]float64, alvWeightLen)
	w1 := weights[:alvIn*alvHid]
	w2 := weights[alvIn*alvHid:]
	g1 := g[:alvIn*alvHid]
	g2 := g[alvIn*alvHid:]
	for s := 0; s < alvChunkSize; s++ {
		in := samples[s*alvSampleBytes : s*alvSampleBytes+alvIn]
		target := samples[s*alvSampleBytes+alvIn : (s+1)*alvSampleBytes]
		var hid [alvHid]float64
		for h := 0; h < alvHid; h++ {
			var sum float64
			for i := 0; i < alvIn; i++ {
				sum += in[i] * w1[i*alvHid+h]
			}
			macs += alvIn
			hid[h] = sigmoid(sum)
		}
		var out [alvOut]float64
		for o := 0; o < alvOut; o++ {
			var sum float64
			for h := 0; h < alvHid; h++ {
				sum += hid[h] * w2[h*alvOut+o]
			}
			macs += alvHid
			out[o] = sigmoid(sum)
		}
		var dOut [alvOut]float64
		for o := 0; o < alvOut; o++ {
			dOut[o] = (target[o] - out[o]) * out[o] * (1 - out[o])
		}
		for h := 0; h < alvHid; h++ {
			var dh float64
			for o := 0; o < alvOut; o++ {
				g2[h*alvOut+o] += hid[h] * dOut[o]
				dh += w2[h*alvOut+o] * dOut[o]
			}
			macs += 2 * alvOut
			dh *= hid[h] * (1 - hid[h])
			for i := 0; i < alvIn; i++ {
				g1[i*alvHid+h] += in[i] * dh
			}
			macs += alvIn
		}
	}
	grad = make([]int64, alvWeightLen)
	for i, v := range g {
		grad[i] = int64(v * (1 << alvFixShift))
	}
	return grad, macs
}

func sigmoid(x float64) float64 {
	// A rational approximation keeps the kernel branch-free and cheap.
	if x < 0 {
		return 1 - sigmoid(-x)
	}
	return 1 - 1/(2+2*x+x*x)
}

// accumulate adds a gradient into a packed slot image.
func accumulate(slot []byte, grad []int64) []byte {
	words := unpackWords(slot)
	for i, g := range grad {
		words[i] = uint64(int64(words[i]) + g)
	}
	out := make([]byte, len(slot))
	for i, w := range words {
		for k := 0; k < 8; k++ {
			out[i*8+k] = byte(w >> (8 * k))
		}
	}
	return out
}

func (p *alvProg) Stage(ctx *core.Ctx, _ int, iter uint64) bool {
	if iter >= p.chunks {
		return false
	}
	weights := unpackFloats(ctx.LoadBytes(p.weights, alvWeightLen*8))
	raw := ctx.LoadBytes(p.chunkSamplesAddr(iter), alvChunkSize*alvSampleBytes)
	grad, macs := p.chunkGradient(weights, raw)
	ctx.Compute(macs * alvInstrMAC)
	// Accumulator expansion: add into this worker's private slot; only the
	// worker's last chunk communicates the reduction array back.
	slotA := p.slotAddr(ctx.PoolIndex())
	var slot []byte
	if iter < uint64(ctx.PoolSize()) {
		slot = make([]byte, alvWeightLen*8) // first chunk: fresh accumulator
	} else {
		slot = ctx.LoadBytes(slotA, alvWeightLen*8)
	}
	slot = accumulate(slot, grad)
	if iter+uint64(ctx.PoolSize()) >= p.chunks {
		ctx.WriteBytesCommit(slotA, slot) // last chunk: commit the reduction array
	} else {
		ctx.StoreBytes(slotA, slot)
	}
	return true
}

// SeqIter accumulates into slot iter%alvSlots; the fixed-point sum makes the
// final reduction identical to any parallel slot arrangement. (alvinn has
// no speculated dependences that can manifest, so this path only serves the
// sequential reference.)
func (p *alvProg) SeqIter(ctx *core.SeqCtx, iter uint64) {
	weights := unpackFloats(ctx.LoadBytes(p.weights, alvWeightLen*8))
	raw := ctx.LoadBytes(p.chunkSamplesAddr(iter), alvChunkSize*alvSampleBytes)
	grad, macs := p.chunkGradient(weights, raw)
	ctx.Compute(macs * alvInstrMAC)
	slotA := p.slotAddr(int(iter % alvSlots))
	slot := ctx.LoadBytes(slotA, alvWeightLen*8)
	ctx.StoreBytes(slotA, accumulate(slot, grad))
}

// Finalize is the end-of-invocation reduction: sum the accumulator slots
// and apply the weight update sequentially on the commit unit.
func (p *alvProg) Finalize(ctx *core.SeqCtx) {
	sum := make([]int64, alvWeightLen)
	for c := 0; c < alvSlots; c++ {
		words := unpackWords(ctx.LoadBytes(p.slotAddr(c), alvWeightLen*8))
		for i, w := range words {
			sum[i] += int64(w)
		}
	}
	ctx.Compute(alvSlots * alvWeightLen)
	weights := unpackFloats(ctx.LoadBytes(p.weights, alvWeightLen*8))
	scale := alvLearnRate / float64(p.chunks*alvChunkSize) / (1 << alvFixShift)
	for i := range weights {
		weights[i] += scale * float64(sum[i])
	}
	ctx.Compute(3 * alvWeightLen)
	ctx.StoreBytes(p.weights, packFloats(weights))
}

func (p *alvProg) Checksum(img *mem.Image) uint64 {
	return img.ChecksumRange(p.weights, alvWeightLen*8)
}
