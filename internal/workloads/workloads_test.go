package workloads

import (
	"bytes"
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/sim"
)

func coreDefaultFor(prog Program) core.Config {
	return core.DefaultConfig(prog.Plan().MinWorkers()+2, prog.Plan())
}

func coreRunSeq(cfg core.Config, prog Program) (sim.Time, *mem.Image, error) {
	return core.RunSequential(cfg, prog, prog.Iterations(), nil)
}

// small shrinks a benchmark input so correctness tests stay fast; Scale=1
// is exercised by the benchmark harness.
func small() Input { return Input{Scale: 1, Seed: 42} }

// checkAgainstSequential verifies that a parallel execution commits exactly
// the sequential program's output.
func checkAgainstSequential(t *testing.T, b *Benchmark, in Input, paradigm Paradigm, cores int) Result {
	t.Helper()
	seqTime, seqCheck, err := RunSequentialRef(b, in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(b, in, paradigm, cores, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != seqCheck {
		t.Fatalf("%s/%s@%d: checksum %#x != sequential %#x (misspecs=%d)",
			b.Name, paradigm, cores, res.Checksum, seqCheck, res.Misspecs)
	}
	if res.Elapsed <= 0 || seqTime <= 0 {
		t.Fatalf("%s/%s@%d: non-positive time", b.Name, paradigm, cores)
	}
	return res
}

func TestAllBenchmarksMatchSequentialDSMTX(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size correctness sweep")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			checkAgainstSequential(t, b, small(), DSMTX, 11)
		})
	}
}

func TestAllBenchmarksMatchSequentialTLS(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size correctness sweep")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			checkAgainstSequential(t, b, small(), TLS, 8)
		})
	}
}

func TestMisspeculatingInputsStillCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("misspeculation sweep")
	}
	in := small()
	in.MisspecRate = 0.005 // well above the paper's 0.1% to force recoveries
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			res := checkAgainstSequential(t, b, in, DSMTX, 10)
			switch b.Name {
			case "052.alvinn", "179.art", "456.hmmer", "464.h264ref", "164.gzip":
				// No input-dependent misspeculation (the paper excludes
				// these from the recovery study).
			default:
				if res.Misspecs == 0 {
					t.Errorf("%s: expected misspeculations at rate 0.005", b.Name)
				}
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registry has %d benchmarks, want 11", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if b.Paradigm == "" || b.SpecTypes == "" || b.Suite == "" {
			t.Errorf("%s: incomplete Table 2 metadata: %+v", b.Name, b)
		}
		if _, err := ByName(b.Name); err != nil {
			t.Errorf("ByName(%s): %v", b.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestLZRoundTrip(t *testing.T) {
	r := newRNG(7)
	for _, n := range []int{0, 1, 5, 100, 4096, 40000} {
		src := r.bytes(n)
		comp, probes := lzCompress(src)
		if n > 1000 && probes == 0 {
			t.Error("no probes counted")
		}
		if got := lzDecompress(comp); !bytes.Equal(got, src) {
			t.Fatalf("LZ round-trip failed at n=%d", n)
		}
	}
}

func TestLZCompresses(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 1000)
	comp, _ := lzCompress(src)
	if len(comp) >= len(src)/4 {
		t.Fatalf("repetitive input compressed to %d/%d", len(comp), len(src))
	}
}

func TestMTFRLERoundTrip(t *testing.T) {
	r := newRNG(9)
	for _, n := range []int{0, 1, 64, 5000} {
		src := r.bytes(n)
		comp, work := mtfRLE(src)
		if n > 100 && work == 0 {
			t.Error("no work counted")
		}
		if got := mtfRLEInverse(comp); !bytes.Equal(got, src) {
			t.Fatalf("MTF/RLE round-trip failed at n=%d", n)
		}
	}
}

func TestLispInterpreter(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"(+ 1 2)", 3},
		{"(* 6 7)", 42},
		{"(if (< 1 2) 10 20)", 10},
		{"(define (sq x) (* x x)) (sq 9)", 81},
		{"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)", 55},
		{"(define (sum n acc) (if (= n 0) acc (sum (- n 1) (+ acc n)))) (sum 10 0)", 55},
	}
	p := &liProg{}
	for _, c := range cases {
		got, steps := p.interpret(c.src, liEnv{})
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.src, got, c.want)
		}
		if steps == 0 {
			t.Errorf("%s: no steps counted", c.src)
		}
	}
}

func TestLispGlobalAndExit(t *testing.T) {
	g := int64(5)
	exited := false
	env := liEnv{
		getG: func() int64 { return g },
		setG: func(v int64) { g = v },
		exit: func() { exited = true },
	}
	p := &liProg{}
	if got, _ := p.interpret("(+ g 1)", env); got != 6 {
		t.Fatalf("(+ g 1) = %d", got)
	}
	p.interpret("(set! g 100)", env)
	if g != 100 {
		t.Fatalf("set! left g = %d", g)
	}
	p.interpret("(exit)", env)
	if !exited {
		t.Fatal("(exit) not routed to env")
	}
}

func TestCRCKernel(t *testing.T) {
	// CRC-32 of "123456789" is the classic check value 0xCBF43926.
	if got := crc32sum([]byte("123456789")); got != 0xCBF43926 {
		t.Fatalf("crc32 check value = %#x", got)
	}
}

func TestBlackScholesKnownValue(t *testing.T) {
	// Standard textbook case: S=100 K=100 r=5% v=20% T=1 call ≈ 10.45.
	v := blackScholes(100, 100, 0.05, 0.2, 1, true)
	if v < 10.2 || v < 0 || v > 10.7 {
		t.Fatalf("call price = %v, want ~10.45", v)
	}
	put := blackScholes(100, 100, 0.05, 0.2, 1, false)
	if put < 5.3 || put > 5.9 {
		t.Fatalf("put price = %v, want ~5.57 (put-call parity)", put)
	}
}

func TestViterbiMonotonicity(t *testing.T) {
	r := newRNG(3)
	emit := make([]uint64, hmmStates*hmmAlphabet)
	trans := make([]uint64, hmmStates*3)
	for i := range emit {
		emit[i] = uint64(r.intn(17))
	}
	seq := make([]byte, hmmSeqLen)
	for i := range seq {
		seq[i] = byte(r.intn(hmmAlphabet))
	}
	base := viterbi(seq, emit, trans)
	if base == 0 {
		t.Fatal("viterbi scored 0 for a scoreable sequence")
	}
	// Raising every emission score cannot lower the best path score.
	for i := range emit {
		emit[i] += 5
	}
	if higher := viterbi(seq, emit, trans); higher <= base {
		t.Fatalf("score %d not above base %d after raising emissions", higher, base)
	}
}

func TestClassifyImbalance(t *testing.T) {
	r := newRNG(11)
	weights := make([]float64, artCats*artDims)
	for i := range weights {
		weights[i] = r.float()
	}
	// A window equal to a prototype resonates immediately…
	easy := make([]float64, artDims)
	copy(easy, weights[:artDims])
	_, easyMacs := classify(easy, weights)
	// …while an adversarial window churns through feedback passes.
	hard := make([]float64, artDims)
	for i := range hard {
		hard[i] = float64(i % 2)
	}
	_, hardMacs := classify(hard, weights)
	if hardMacs <= easyMacs {
		t.Fatalf("no imbalance: easy=%d hard=%d macs", easyMacs, hardMacs)
	}
}

func TestGzipDecompressesToInput(t *testing.T) {
	if testing.Short() {
		t.Skip("compression round-trip through the runtime")
	}
	b := Gzip()
	in := small()
	res, err := RunParallel(b, in, DSMTX, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Round-trip: run sequentially, decompress committed output, compare
	// with the generated input.
	prog := b.NewDSMTX(in, 0).(*gzProg)
	cfg := coreDefaultFor(prog)
	_, img, err := coreRunSeq(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	got := prog.decompressAll(img)
	want := img.LoadBytes(prog.input, int(prog.blocks)*gzBlockBytes)
	if !bytes.Equal(got, want) {
		t.Fatal("gzip output does not decompress to the input")
	}
}

func TestBzip2DecompressesToInput(t *testing.T) {
	if testing.Short() {
		t.Skip("compression round-trip through the runtime")
	}
	prog := Bzip2().NewDSMTX(small(), 0).(*bzProg)
	cfg := coreDefaultFor(prog)
	_, img, err := coreRunSeq(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	got := prog.decompressAll(img)
	want := img.LoadBytes(prog.input, int(prog.blocks)*bzBlockBytes)
	if !bytes.Equal(got, want) {
		t.Fatal("bzip2 output does not decompress to the input")
	}
}

func TestMisspecSet(t *testing.T) {
	s := misspecSet(1000, 0.01, 1)
	if len(s) != 10 {
		t.Fatalf("misspecSet(1000, 1%%) picked %d", len(s))
	}
	if len(misspecSet(1000, 0, 1)) != 0 {
		t.Fatal("zero rate produced misspecs")
	}
	if len(misspecSet(1000, 0.0001, 1)) != 1 {
		t.Fatal("tiny rate should round up to one")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(5), newRNG(5)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng nondeterministic")
		}
	}
}
