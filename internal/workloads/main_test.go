package workloads

import (
	"os"
	"testing"

	"dsmtx/internal/netrun"
)

// TestMain lets net-backend tests re-exec this test binary as a daemon
// fleet: netrun.LaunchLocal(n, os.Args[0]) forks copies with DaemonEnv set,
// and those copies divert into the daemon loop instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv(netrun.DaemonEnv) == "1" {
		os.Exit(netrun.DaemonMain())
	}
	os.Exit(m.Run())
}
