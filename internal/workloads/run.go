package workloads

import (
	"fmt"

	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
)

// Paradigm selects which parallelization of a benchmark to run.
type Paradigm int

// The two parallelization families the paper compares.
const (
	DSMTX Paradigm = iota
	TLS
)

func (p Paradigm) String() string {
	if p == TLS {
		return "TLS"
	}
	return "DSMTX"
}

// Result aggregates a benchmark execution across its invocations.
// Durations are virtual nanoseconds under the vtime backend and wall-clock
// nanoseconds under host.
type Result struct {
	Elapsed   platform.Duration
	Checksum  uint64
	Committed uint64
	Misspecs  uint64
	ERM, FLQ  platform.Duration
	SEQ, RFP  platform.Duration
	Bytes     uint64 // total wire traffic
	Events    uint64
	// Crash-fault resilience totals (zero without a fault plan): worker
	// crashes survived and the wall time spent re-dispatching after them.
	Crashes    uint64
	Redispatch platform.Duration
	// Traffic breaks the wire total down by message class (queue batches,
	// Copy-On-Access pages, control); its Bytes field equals the Bytes
	// total above.
	Traffic platform.TrafficStats
	// Stalls aggregates per-rank stall attribution across invocations when
	// the run was tuned with a core.Config.Tracer; empty otherwise.
	Stalls trace.StallReport
	// Trace holds the MTX lifecycle events of every invocation when the
	// run was tuned with core.Config.Trace.
	Trace []core.TraceEvent
}

// Bandwidth reports wire bytes per second of execution.
func (r Result) Bandwidth() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds()
}

// SystemFactory builds (or recycles) the core.System for one invocation:
// cfg is the invocation's tuned configuration, prog its program, img the
// committed image chained from the previous invocation (nil on the first).
// The default factory is core.NewSystem; internal/engine substitutes one
// that resets warm pooled systems instead of rebuilding.
type SystemFactory func(cfg core.Config, prog Program, img *mem.Image) (*core.System, error)

// RunParallel executes the benchmark under DSMTX with the chosen paradigm
// on the given core count, chaining invocations through committed memory.
// tune, if non-nil, may adjust each invocation's runtime configuration
// (e.g. queue batch sizes for the Fig. 5b comparison).
func RunParallel(b *Benchmark, in Input, paradigm Paradigm, cores int, tune func(*core.Config)) (Result, error) {
	return RunParallelSystems(b, in, paradigm, cores, tune, nil)
}

// RunParallelSystems is RunParallel with an explicit system factory, so a
// caller owning warm rank sets can reuse them across invocations and jobs.
// A nil factory builds each invocation's system fresh via core.NewSystem.
func RunParallelSystems(b *Benchmark, in Input, paradigm Paradigm, cores int, tune func(*core.Config), factory SystemFactory) (Result, error) {
	if factory == nil {
		factory = func(cfg core.Config, prog Program, img *mem.Image) (*core.System, error) {
			return core.NewSystem(cfg, prog, img)
		}
	}
	var agg Result
	var img *mem.Image
	invocations := b.Invocations
	if invocations < 1 {
		invocations = 1
	}
	for inv := 0; inv < invocations; inv++ {
		var prog Program
		if paradigm == TLS {
			prog = b.NewTLS(in, inv)
		} else {
			prog = b.NewDSMTX(in, inv)
		}
		cfg := core.DefaultConfig(cores, prog.Plan())
		if tune != nil {
			tune(&cfg)
		}
		sys, err := factory(cfg, prog, img)
		if err != nil {
			return Result{}, fmt.Errorf("%s/%s: %w", b.Name, paradigm, err)
		}
		res, err := sys.Run()
		if err != nil {
			return Result{}, fmt.Errorf("%s/%s inv %d: %w", b.Name, paradigm, inv, err)
		}
		img = sys.CommitImage()
		agg.Elapsed += res.Elapsed
		agg.Committed += res.Committed
		agg.Misspecs += res.Misspecs
		agg.ERM += res.ERM
		agg.FLQ += res.FLQ
		agg.SEQ += res.SEQ
		agg.RFP += res.RFP
		agg.Bytes += res.Traffic.Bytes
		agg.Events += res.Events
		agg.Crashes += res.Crashes
		agg.Redispatch += res.Redispatch
		agg.Traffic.Add(res.Traffic)
		agg.Stalls.Merge(sys.StallReport())
		agg.Trace = append(agg.Trace, sys.Trace()...)
		if inv == invocations-1 {
			agg.Checksum = prog.Checksum(img)
		}
	}
	return agg, nil
}

// RunSequentialRef executes the benchmark's sequential reference (the
// original single-threaded program with the same cost model) and reports
// its elapsed virtual time and output checksum.
func RunSequentialRef(b *Benchmark, in Input) (platform.Duration, uint64, error) {
	return RunSequentialTuned(b, in, nil)
}

// RunSequentialTuned is RunSequentialRef with a configuration hook, so
// machine-model comparisons (e.g. the §7 manycore) can measure their
// sequential baseline on the same machine as the parallel run.
func RunSequentialTuned(b *Benchmark, in Input, tune func(*core.Config)) (platform.Duration, uint64, error) {
	var total platform.Duration
	var img *mem.Image
	var check uint64
	invocations := b.Invocations
	if invocations < 1 {
		invocations = 1
	}
	for inv := 0; inv < invocations; inv++ {
		prog := b.NewDSMTX(in, inv)
		cfg := core.DefaultConfig(cores1(prog), prog.Plan())
		if tune != nil {
			tune(&cfg)
		}
		elapsed, out, err := core.RunSequential(cfg, prog, prog.Iterations(), img)
		if err != nil {
			return 0, 0, fmt.Errorf("%s sequential inv %d: %w", b.Name, inv, err)
		}
		total += elapsed
		img = out
		if inv == invocations-1 {
			check = prog.Checksum(img)
		}
	}
	return total, check, nil
}

// cores1 picks a valid (unused) core count for sequential cost accounting.
func cores1(prog Program) int { return prog.Plan().MinWorkers() + 2 }
