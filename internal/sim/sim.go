// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and runs "processes" — ordinary Go
// functions hosted on goroutines — in strict cooperative alternation: at any
// instant exactly one process (or the kernel itself) is executing. Processes
// spend virtual time with Proc.Advance, communicate over Chan values, and
// synchronize on Barrier values. Events scheduled for the same virtual
// instant fire in schedule order, so runs are reproducible bit-for-bit.
//
// The DSMTX runtime and its cluster substrate run unmodified on this kernel:
// all of their logic executes for real; only the passage of time is
// simulated. That is what lets a laptop measure the behaviour of a
// 128-core cluster deterministically.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dsmtx/internal/platform"
)

// Time is a point in virtual time, measured in virtual nanoseconds from the
// start of the run. It aliases the platform-neutral clock type, so values
// flow unconverted between the simulator and the runtime layers above.
type Time = platform.Time

// Duration aliases Time for readability when a length of time is meant.
type Duration = Time

// Convenient virtual-time units.
const (
	Nanosecond  = platform.Nanosecond
	Microsecond = platform.Microsecond
	Millisecond = platform.Millisecond
	Second      = platform.Second
)

// ErrDeadlock is returned (wrapped) by Run when live processes remain but no
// event can ever wake them.
var ErrDeadlock = errors.New("sim: deadlock")

// event is a single entry in the kernel's calendar: either "resume process p"
// or "call fn" at time t. Same-time events fire in seq order. dead, when
// non-nil and set, marks a cancelled event: it is discarded on pop without
// firing and without moving the clock.
type event struct {
	t    Time
	seq  uint64
	p    *Proc
	fn   func()
	dead *bool
}

// eventHeap is a hand-rolled binary min-heap over event values. Avoiding
// container/heap keeps push/pop free of interface boxing — they were the
// simulator's top allocation site. (t, seq) is a total order, so the pop
// sequence is independent of heap internals.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) peek() event { return h[0] }

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) popMin() event {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = event{} // drop the p/fn references
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// killSentinel unwinds a process goroutine when the kernel shuts down.
type killSentinel struct{}

// Kernel owns the virtual clock and the event calendar.
//
// A Kernel must be driven from a single goroutine via Run; processes are
// created with Spawn before or during the run.
type Kernel struct {
	now     Time
	events  eventHeap
	seq     uint64
	procs   []*Proc
	live    int
	yield   chan struct{}
	killing bool
	failure error
	stopped bool
	horizon Time // active Run's horizon (0 = unbounded); guards the Advance fast path
	// Stats
	nEvents uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events reports how many calendar events have fired so far.
func (k *Kernel) Events() uint64 { return k.nEvents }

func (k *Kernel) schedule(t Time, p *Proc, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.events.push(event{t: t, seq: k.seq, p: p, fn: fn})
}

// At schedules fn to run at virtual time t (or now, if t is in the past).
// fn runs on the kernel's goroutine and must not block.
func (k *Kernel) At(t Time, fn func()) { k.schedule(t, nil, fn) }

// After schedules fn to run d from now. fn must not block.
func (k *Kernel) After(d Duration, fn func()) { k.schedule(k.now+d, nil, fn) }

// AtCancel schedules fn like At and returns a cancel function. Cancelled
// events are discarded when popped — before the clock moves to their
// timestamp — so an armed-then-cancelled timer (e.g. a retransmission
// timeout whose ack arrived) can never stretch the virtual clock or the
// run's elapsed time. Cancelling after the event fired is a no-op.
func (k *Kernel) AtCancel(t Time, fn func()) (cancel func()) {
	if t < k.now {
		t = k.now
	}
	dead := new(bool)
	k.seq++
	k.events.push(event{t: t, seq: k.seq, fn: fn, dead: dead})
	return func() { *dead = true }
}

// Spawn creates a new process executing fn and schedules it to start at the
// current virtual time. The name appears in deadlock reports.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			if _, killed := r.(killSentinel); r != nil && !killed {
				if k.failure == nil {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.state = procDone
			k.live--
			k.yield <- struct{}{}
		}()
		if k.killing {
			panic(killSentinel{})
		}
		fn(p)
	}()
	k.schedule(k.now, p, nil)
	return p
}

// Run drives the calendar until it drains, a process panics, Stop is called,
// or the horizon (if positive) is reached. It returns a deadlock error when
// live processes remain blocked with an empty calendar.
func (k *Kernel) Run(horizon Time) error {
	k.horizon = horizon
	for len(k.events) > 0 && !k.stopped && k.failure == nil {
		if horizon > 0 && k.events.peek().t > horizon {
			break
		}
		e := k.events.popMin()
		if e.dead != nil && *e.dead {
			continue
		}
		k.now = e.t
		k.nEvents++
		if e.fn != nil {
			e.fn()
			continue
		}
		if e.p.state == procDone {
			continue
		}
		e.p.state = procRunning
		e.p.resume <- struct{}{}
		<-k.yield
	}
	var deadlock error
	if k.failure == nil && k.live > 0 && !k.stopped && horizon <= 0 {
		deadlock = fmt.Errorf("%w: %d live process(es) blocked: %s", ErrDeadlock, k.live, k.blockedNames())
	}
	k.kill()
	if k.failure != nil {
		return k.failure
	}
	return deadlock
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// kill unwinds every still-parked process so no goroutines leak.
func (k *Kernel) kill() {
	k.killing = true
	for _, p := range k.procs {
		if p.state == procBlocked {
			p.state = procRunning
			p.resume <- struct{}{}
			<-k.yield
		}
	}
	// Processes scheduled in the calendar but never started also unwind.
	for len(k.events) > 0 {
		e := k.events.popMin()
		if e.p != nil && e.p.state == procReady {
			e.p.state = procRunning
			e.p.resume <- struct{}{}
			<-k.yield
		}
	}
}

func (k *Kernel) blockedNames() string {
	var names []string
	for _, p := range k.procs {
		if p.state == procBlocked {
			names = append(names, p.name+" ("+p.blockedOn+")")
		}
	}
	sort.Strings(names)
	if len(names) > 8 {
		names = append(names[:8], fmt.Sprintf("… %d more", len(names)-8))
	}
	return strings.Join(names, ", ")
}

type procState uint8

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// Proc is the handle a process uses to interact with virtual time. Every
// blocking operation takes the Proc of the calling process.
type Proc struct {
	k         *Kernel
	name      string
	resume    chan struct{}
	state     procState
	blockedOn string
	advanced  Time
	blocked   Time
	dilate    func(Time, Duration) Duration
}

// SetDilation installs a compute-time dilation hook: every subsequent
// Advance(d) spends dilate(now, d) instead of d. The fault layer uses it
// to model straggler ranks; nil removes the hook. Dilated time counts as
// busy time in Advanced, exactly as if the work really were slower.
func (p *Proc) SetDilation(dilate func(now Time, d Duration) Duration) {
	p.dilate = dilate
}

// Advanced reports the total virtual time this process has spent in
// Advance — its busy time, as opposed to blocking waits.
func (p *Proc) Advanced() Time { return p.advanced }

// Blocked reports the total virtual time this process has spent parked in
// blocking waits (message receives, barriers, conds) — the complement of
// Advanced in the stall-attribution report. Time parked inside Advance
// itself is excluded: that is busy time already counted by Advanced.
func (p *Proc) Blocked() Time { return p.blocked }

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel hosting this process.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park suspends the process until something schedules it again. The caller
// must already have registered the process somewhere it can be woken from.
//
// Instead of handing control back to the kernel loop (two channel
// handshakes per process switch: parker→kernel, kernel→next), the parking
// goroutine takes the driving seat itself: it pops calendar events in
// exactly the (t, seq) order the kernel loop would, runs fn events inline,
// and hands the seat directly to the next process (one handshake) — or to
// itself with no handshake at all, the common case when a poll backoff
// expires or an inline delivery wakes this very process. Event order, clock
// movement and the event count are bit-for-bit identical to kernel-driven
// dispatch; only which goroutine executes the pop changes. The kernel loop
// still owns startup, termination, deadlock detection and the horizon: the
// driver hands the seat back to it whenever one of those conditions holds.
func (p *Proc) park(reason string) {
	p.state = procBlocked
	p.blockedOn = reason
	t0 := p.k.now
	p.drive()
	if p.k.killing {
		panic(killSentinel{})
	}
	p.blockedOn = ""
	if reason != "advance" {
		// Advance parks are busy time (already in advanced); everything
		// else is a genuine blocking wait.
		p.blocked += p.k.now - t0
	}
}

// drive dispatches calendar events on the parked process's goroutine until
// this process is resumed (return) or the kernel loop must take over
// (stop/failure, empty calendar, horizon reached — hand the seat back and
// wait for resume).
func (p *Proc) drive() {
	k := p.k
	for {
		if k.stopped || k.killing || k.failure != nil || len(k.events) == 0 ||
			(k.horizon > 0 && k.events[0].t > k.horizon) {
			k.yield <- struct{}{}
			<-p.resume
			return
		}
		e := k.events.popMin()
		if e.dead != nil && *e.dead {
			continue
		}
		k.now = e.t
		k.nEvents++
		if e.fn != nil {
			e.fn()
			continue
		}
		if e.p.state == procDone {
			continue
		}
		e.p.state = procRunning
		if e.p == p {
			return
		}
		e.p.resume <- struct{}{}
		<-p.resume
		return
	}
}

// wake schedules a blocked process to resume at the current virtual time.
// Callers must ensure the process is woken at most once per park.
func (p *Proc) wake() { p.k.schedule(p.k.now, p, nil) }

// Advance spends d of virtual time — the simulation analogue of computing
// for d. Negative and zero durations yield the processor without advancing
// the clock (same-time events scheduled earlier still run first).
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		d = 0
	}
	if p.dilate != nil {
		d = p.dilate(p.k.now, d)
	}
	p.advanced += d
	k := p.k
	// Fast path: when no calendar entry fires at or before now+d, the
	// kernel's next action after a park would be popping this process's own
	// resume event — so bump the clock in place and keep running. Event
	// order is bit-for-bit unchanged; only the park/resume goroutine
	// handshake (the dominant host cost per Advance) is skipped. Strict
	// alternation makes the direct clock/heap access safe: the driving seat
	// (kernel or another process) is parked for as long as this process
	// runs.
	if !k.stopped && !k.killing &&
		(len(k.events) == 0 || k.events[0].t > k.now+d) &&
		(k.horizon <= 0 || k.now+d <= k.horizon) {
		k.now += d
		return
	}
	k.schedule(k.now+d, p, nil)
	p.park("advance")
}

// Yield lets every other event at the current instant run before resuming.
func (p *Proc) Yield() { p.Advance(0) }
