package sim

import "dsmtx/internal/platform"

// Chan is a FIFO channel between simulation processes.
//
// With capacity > 0, Send blocks while the buffer is full; with capacity 0
// the buffer is unbounded and Send never blocks. Push inserts a value
// without a sending process, for use from kernel callbacks (e.g. a network
// delivering a message at a future instant).
type Chan[T any] struct {
	k      *Kernel
	name   string
	buf    []T
	cap    int
	sendQ  []*Proc
	recvQ  []*Proc
	closed bool
}

// NewChan creates a channel. capacity 0 means unbounded.
func NewChan[T any](k *Kernel, name string, capacity int) *Chan[T] {
	return &Chan[T]{k: k, name: name, cap: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Name reports the channel's diagnostic name.
func (c *Chan[T]) Name() string { return c.name }

// Send enqueues v, blocking p while the channel is at capacity.
// Sending on a closed channel panics, as with native channels.
func (c *Chan[T]) Send(p *Proc, v T) {
	for c.cap > 0 && len(c.buf) >= c.cap && !c.closed {
		c.sendQ = append(c.sendQ, p)
		p.park("send " + c.name)
	}
	if c.closed {
		panic("sim: send on closed channel " + c.name)
	}
	c.buf = append(c.buf, v)
	c.wakeOneRecv()
}

// Push enqueues v ignoring capacity, without blocking. It may be called from
// kernel callbacks. Pushing to a closed channel drops the value.
func (c *Chan[T]) Push(v T) {
	if c.closed {
		return
	}
	c.buf = append(c.buf, v)
	c.wakeOneRecv()
}

// Recv dequeues a value, blocking p until one is available. ok is false only
// if the channel is closed and drained. The receiver must be a *Proc of this
// channel's kernel; the platform.Proc parameter lets Chan[platform.Message]
// satisfy platform.Mailbox directly.
func (c *Chan[T]) Recv(p platform.Proc) (v T, ok bool) {
	pp := p.(*Proc)
	for len(c.buf) == 0 {
		if c.closed {
			return v, false
		}
		c.recvQ = append(c.recvQ, pp)
		pp.park("recv " + c.name)
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.wakeOneSend()
	return v, true
}

// TryRecv dequeues a value if one is buffered, never blocking.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) == 0 {
		return v, false
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.wakeOneSend()
	return v, true
}

// TryRecvBatch appends every buffered value to into and returns the
// extended slice, never blocking. It exists to satisfy platform.Mailbox;
// blocked senders are woken just as by repeated TryRecv.
func (c *Chan[T]) TryRecvBatch(into []T) []T {
	for {
		v, ok := c.TryRecv()
		if !ok {
			return into
		}
		into = append(into, v)
	}
}

// Drain discards all buffered values and returns how many were dropped.
// Waiting senders are woken so they can re-attempt their sends.
func (c *Chan[T]) Drain() int {
	n := len(c.buf)
	c.buf = nil
	for len(c.sendQ) > 0 {
		c.wakeOneSend()
	}
	return n
}

// Close marks the channel closed: queued values may still be received;
// blocked receivers wake with ok=false.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for len(c.recvQ) > 0 {
		c.wakeOneRecv()
	}
	for len(c.sendQ) > 0 {
		c.wakeOneSend()
	}
}

func (c *Chan[T]) wakeOneRecv() {
	if len(c.recvQ) == 0 {
		return
	}
	p := c.recvQ[0]
	c.recvQ = c.recvQ[1:]
	p.wake()
}

func (c *Chan[T]) wakeOneSend() {
	if len(c.sendQ) == 0 {
		return
	}
	p := c.sendQ[0]
	c.sendQ = c.sendQ[1:]
	p.wake()
}

// Barrier blocks processes until n of them have arrived, then releases the
// whole generation at once. It is reusable across generations.
type Barrier struct {
	k       *Kernel
	name    string
	n       int
	waiting []*Proc
	arrived int
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(k *Kernel, name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	return &Barrier{k: k, name: name, n: n}
}

// Wait blocks p until n parties (including p) have called Wait.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		for _, w := range b.waiting {
			w.wake()
		}
		b.waiting = b.waiting[:0]
		return
	}
	b.waiting = append(b.waiting, p)
	p.park("barrier " + b.name)
}

// Cond is a single-owner condition: processes Wait on it and a Broadcast
// wakes them all. Unlike sync.Cond there is no lock — the cooperative
// scheduler guarantees exclusivity.
type Cond struct {
	name    string
	waiting []*Proc
}

// NewCond creates a condition variable with a diagnostic name.
func NewCond(name string) *Cond { return &Cond{name: name} }

// Wait parks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiting = append(c.waiting, p)
	p.park("cond " + c.name)
}

// Broadcast wakes every waiter and returns how many were woken.
func (c *Cond) Broadcast() int {
	n := len(c.waiting)
	for _, w := range c.waiting {
		w.wake()
	}
	c.waiting = c.waiting[:0]
	return n
}
