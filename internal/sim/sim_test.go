package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAdvanceAccumulatesTime(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("w", func(p *Proc) {
		p.Advance(5 * Microsecond)
		p.Advance(10 * Microsecond)
		end = p.Now()
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if end != 15*Microsecond {
		t.Fatalf("end = %v, want 15µs", end)
	}
}

func TestSpawnStartsAtCurrentTime(t *testing.T) {
	k := NewKernel()
	var childStart Time
	k.Spawn("parent", func(p *Proc) {
		p.Advance(7)
		k.Spawn("child", func(c *Proc) { childStart = c.Now() })
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if childStart != 7 {
		t.Fatalf("child started at %d, want 7", childStart)
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		k.At(100, func() { order = append(order, i) })
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestAtAndAfterCallbacks(t *testing.T) {
	k := NewKernel()
	var at, after Time
	k.At(50, func() { at = k.Now() })
	k.Spawn("w", func(p *Proc) {
		p.Advance(10)
		k.After(5, func() { after = k.Now() })
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 50 || after != 15 {
		t.Fatalf("at=%d after=%d, want 50, 15", at, after)
	}
}

func TestChanSendRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "c", 0)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Advance(10)
			ch.Send(p, i)
		}
		ch.Close()
	})
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("received %d values, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestBoundedChanBlocksSender(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "c", 2)
	var sendDone Time
	k.Spawn("producer", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Send(p, 3) // must block until the consumer drains one
		sendDone = p.Now()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Advance(100)
		ch.Recv(p)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if sendDone != 100 {
		t.Fatalf("third send completed at %d, want 100", sendDone)
	}
}

func TestChanPushFromCallback(t *testing.T) {
	k := NewKernel()
	ch := NewChan[string](k, "net", 0)
	var at Time
	k.At(42, func() { ch.Push("hello") })
	k.Spawn("rx", func(p *Proc) {
		v, ok := ch.Recv(p)
		if !ok || v != "hello" {
			t.Errorf("recv = %q, %v", v, ok)
		}
		at = p.Now()
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 42 {
		t.Fatalf("delivery at %d, want 42", at)
	}
}

func TestChanDrainWakesSenders(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "c", 1)
	blocked := false
	k.Spawn("producer", func(p *Proc) {
		ch.Send(p, 1)
		blocked = true
		ch.Send(p, 2)
		blocked = false
	})
	k.Spawn("drainer", func(p *Proc) {
		p.Advance(10)
		if n := ch.Drain(); n != 1 {
			t.Errorf("drained %d, want 1", n)
		}
	})
	k.Spawn("rx", func(p *Proc) {
		p.Advance(20)
		if v, ok := ch.Recv(p); !ok || v != 2 {
			t.Errorf("recv after drain = %d, %v; want 2, true", v, ok)
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if blocked {
		t.Fatal("producer still blocked after drain")
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "never", 0)
	k.Spawn("stuck", func(p *Proc) { ch.Recv(p) })
	err := k.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) { panic("kaboom") })
	err := k.Run(0)
	if err == nil || errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want panic error", err)
	}
}

func TestKillUnwindsBlockedProcsOnPanic(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "c", 0)
	cleaned := false
	k.Spawn("waiter", func(p *Proc) {
		defer func() { cleaned = true }()
		ch.Recv(p)
	})
	k.Spawn("boom", func(p *Proc) {
		p.Advance(1)
		panic("die")
	})
	if err := k.Run(0); err == nil {
		t.Fatal("expected error")
	}
	if !cleaned {
		t.Fatal("blocked proc's defer did not run during kill")
	}
}

func TestBarrierReleasesAllAtOnce(t *testing.T) {
	k := NewKernel()
	const n = 5
	b := NewBarrier(k, "b", n)
	var release [n]Time
	for i := 0; i < n; i++ {
		k.Spawn("w", func(p *Proc) {
			p.Advance(Duration(i * 10))
			b.Wait(p)
			release[i] = p.Now()
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, r := range release {
		if r != 40 {
			t.Fatalf("worker %d released at %d, want 40 (last arrival)", i, r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "b", 2)
	rounds := 0
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Advance(Duration(i + 1))
				b.Wait(p)
				if i == 0 {
					rounds++
				}
			}
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel()
	c := NewCond("cv")
	woken := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Spawn("b", func(p *Proc) {
		p.Advance(10)
		if n := c.Broadcast(); n != 4 {
			t.Errorf("broadcast woke %d, want 4", n)
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Advance(10)
			ticks++
		}
	})
	if err := k.Run(95); err != nil {
		t.Fatal(err)
	}
	if ticks != 9 {
		t.Fatalf("ticks = %d, want 9", ticks)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Spawn("w", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(1)
			n++
			if n == 10 {
				k.Stop()
			}
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
}

// TestDeterminism runs an irregular workload twice and requires identical
// event counts and finish times.
func TestDeterminism(t *testing.T) {
	run := func() (Time, uint64, int) {
		k := NewKernel()
		ch := NewChan[int](k, "c", 3)
		sum := 0
		for w := 0; w < 7; w++ {
			k.Spawn("p", func(p *Proc) {
				for i := 0; i < 20; i++ {
					p.Advance(Duration((w*13 + i*7) % 11))
					ch.Send(p, w*100+i)
				}
			})
		}
		k.Spawn("c", func(p *Proc) {
			for i := 0; i < 140; i++ {
				v, _ := ch.Recv(p)
				sum += v
				p.Advance(3)
			}
		})
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return k.Now(), k.Events(), sum
	}
	t1, e1, s1 := run()
	t2, e2, s2 := run()
	if t1 != t2 || e1 != e2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", t1, e1, s1, t2, e2, s2)
	}
}

// Property: a chain of Advances always lands exactly at the sum of the
// (clamped) durations, regardless of interleaved processes.
func TestAdvanceSumProperty(t *testing.T) {
	f := func(durs []int16) bool {
		if len(durs) > 64 {
			durs = durs[:64]
		}
		k := NewKernel()
		var want, got Time
		for _, d := range durs {
			dd := Duration(d)
			if dd < 0 {
				dd = 0
			}
			want += dd
		}
		k.Spawn("noise", func(p *Proc) {
			for i := 0; i < len(durs); i++ {
				p.Advance(5)
			}
		})
		k.Spawn("w", func(p *Proc) {
			for _, d := range durs {
				p.Advance(Duration(d))
			}
			got = p.Now()
		})
		if err := k.Run(0); err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO order is preserved through a channel for any payload set.
func TestChanFIFOProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		k := NewKernel()
		ch := NewChan[uint32](k, "c", 4)
		var got []uint32
		k.Spawn("tx", func(p *Proc) {
			for _, v := range vals {
				ch.Send(p, v)
				p.Advance(Duration(v % 3))
			}
			ch.Close()
		})
		k.Spawn("rx", func(p *Proc) {
			for {
				v, ok := ch.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
				p.Advance(1)
			}
		})
		if err := k.Run(0); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSpawnAfterStopUnwinds(t *testing.T) {
	k := NewKernel()
	started := false
	k.Spawn("a", func(p *Proc) {
		k.Stop()
		k.Spawn("late", func(p *Proc) { started = true; p.Advance(1) })
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if started {
		t.Fatal("process spawned after Stop still ran")
	}
}

func TestAdvanceNegativeClamps(t *testing.T) {
	k := NewKernel()
	k.Spawn("w", func(p *Proc) {
		p.Advance(-50)
		if p.Now() != 0 {
			t.Errorf("negative Advance moved time to %v", p.Now())
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestProcAdvancedAccounting(t *testing.T) {
	k := NewKernel()
	var proc *Proc
	k.Spawn("w", func(p *Proc) {
		proc = p
		p.Advance(100)
		p.Advance(23)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if proc.Advanced() != 123 {
		t.Fatalf("Advanced = %v, want 123", proc.Advanced())
	}
}
