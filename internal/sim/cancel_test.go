package sim

import "testing"

// TestAtCancelFires: an uncancelled AtCancel event behaves exactly like At.
func TestAtCancelFires(t *testing.T) {
	k := NewKernel()
	fired := false
	k.AtCancel(5*Microsecond, func() { fired = true })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	if k.Now() != 5*Microsecond {
		t.Fatalf("clock = %v, want 5µs", k.Now())
	}
}

// TestAtCancelDoesNotAdvanceClock pins the property the retransmit layer
// depends on: a cancelled timer far in the future must not drag the
// virtual clock (and therefore a run's Elapsed) out to its timestamp.
func TestAtCancelDoesNotAdvanceClock(t *testing.T) {
	k := NewKernel()
	cancel := k.AtCancel(Second, func() { t.Error("cancelled event fired") })
	k.At(2*Microsecond, func() { cancel() })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 2*Microsecond {
		t.Fatalf("clock = %v, want 2µs (cancelled event must not move it)", k.Now())
	}
}

// TestAtCancelAfterFire: cancelling an already-fired event is a no-op.
func TestAtCancelAfterFire(t *testing.T) {
	k := NewKernel()
	fired := 0
	cancel := k.AtCancel(Microsecond, func() { fired++ })
	k.At(2*Microsecond, func() { cancel() })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
}

// TestSetDilation: a dilation hook stretches Advance quanta (including
// through the park-free fast path) and the stretch lands in Advanced.
func TestSetDilation(t *testing.T) {
	k := NewKernel()
	var end Time
	var busy Time
	k.Spawn("straggler", func(p *Proc) {
		p.SetDilation(func(now Time, d Duration) Duration {
			if now >= 10*Microsecond && now < 20*Microsecond {
				return 3 * d
			}
			return d
		})
		p.Advance(10 * Microsecond) // outside window: 10µs
		p.Advance(5 * Microsecond)  // inside window: 15µs
		p.SetDilation(nil)
		p.Advance(5 * Microsecond) // hook removed: 5µs
		end = p.Now()
		busy = p.Advanced()
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if end != 30*Microsecond {
		t.Fatalf("end = %v, want 30µs", end)
	}
	if busy != 30*Microsecond {
		t.Fatalf("Advanced = %v, want 30µs (dilation is busy time)", busy)
	}
}
