// Package clitest is the table-test helper the commands' flag tests
// share: every dsmtx binary pins its parseFlags rejection paths with the
// same loop, so the loop lives here (a separate package keeps "testing"
// out of the binaries' import graphs).
package clitest

import (
	"strings"
	"testing"
)

// RejectCase is one invalid command line and, optionally, a substring the
// error must carry (empty accepts any error).
type RejectCase struct {
	Args []string
	Want string
}

// RejectAll asserts parse rejects every case, with the wanted substring
// when one is given.
func RejectAll[O any](t *testing.T, parse func(args []string) (O, error), cases []RejectCase) {
	t.Helper()
	for _, c := range cases {
		_, err := parse(c.Args)
		if err == nil {
			t.Errorf("parseFlags(%v) accepted invalid arguments", c.Args)
			continue
		}
		if c.Want != "" && !strings.Contains(err.Error(), c.Want) {
			t.Errorf("parseFlags(%v) err = %v, want substring %q", c.Args, err, c.Want)
		}
	}
}
