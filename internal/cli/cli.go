// Package cli is the scaffolding every dsmtx command shares: the main
// frame (plain prefixed logging, flag parsing, fatal exit on error) and
// the live metrics endpoint any binary can serve during a run. Commands
// keep their parse/run pairs as pure functions — testable without a
// process — and hand them to Main.
package cli

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"

	"dsmtx/internal/trace"
)

// Main is the command frame: configure the logger, parse os.Args[1:],
// run, and exit fatally on error. parse and run stay side-effect-free so
// command tests drive them directly.
func Main[O any](name string, parse func(args []string) (O, error), run func(O) error) {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
	opts, err := parse(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

// ServeMetrics starts an HTTP listener publishing a live snapshot of the
// tracer's metrics registry as JSON at /metrics (expvar-style; instruments
// update atomically, so sampling mid-run is safe). It returns a shutdown
// function; binding failures (port taken, bad address) surface immediately
// rather than mid-run.
func ServeMetrics(addr string, tr *trace.Tracer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-metrics-addr: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr.Metrics().WriteJSON(w)
	})
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	// Close the listener and wait for Serve to return before reporting the
	// port free: repeated invocations (tests, scripted sweeps) rebind the
	// same address immediately after stop().
	var once sync.Once
	return func() {
		once.Do(func() {
			srv.Close()
			<-done
		})
	}, nil
}
