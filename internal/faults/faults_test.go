package faults

import (
	"math"
	"testing"

	"dsmtx/internal/sim"
)

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"seed=7,drop=0.01",
		"seed=7,drop=0.0001,ackdrop=0.02,spike=0.002:50us",
		"seed=1,degrade=2x@1ms+500us",
		"seed=9,straggler=r3:4x@200us+1ms,crash=r2@1ms+300us,rto=20us,attempts=12",
		"drop=0.01,crash=r0@0ns+5us,crash=r0@2ms+5us,crash=r4@1ms+1ms",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := p.Format()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(Format(%q)) = Parse(%q): %v", spec, canon, err)
		}
		if canon2 := p2.Format(); canon2 != canon {
			t.Errorf("Format not stable for %q: %q then %q", spec, canon, canon2)
		}
	}
}

func TestSpecCanonicalForm(t *testing.T) {
	// Clause order and window sorting are normalized; durations render in
	// their largest exact unit.
	p, err := Parse("crash=r2@1500us+300us,drop=0.01,seed=7,crash=r1@1ms+2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := "seed=7,drop=0.01,crash=r1@1ms+2ms,crash=r2@1500us+300us"
	if got := p.Format(); got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"drop",                      // no value
		"bogus=1",                   // unknown key
		"drop=x",                    // not a number
		"drop=1.5",                  // rate outside [0,1]
		"spike=0.1",                 // missing duration
		"spike=0.1:banana",          // bad duration
		"spike=0.1:10",              // unitless duration
		"straggler=3:2x@0ns+1ms",    // rank without r prefix
		"straggler=r3:0.5x@0ns+1ms", // factor below 1
		"crash=r1@1ms",              // missing downtime
		"crash=r-1@1ms+1ms",         // negative rank
		"degrade=2x@1ms+0ns",        // empty window
		"attempts=99",               // above encodable cap
		"rto=-5us",                  // negative timeout
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
	p := Plan{Seed: 42, RTO: DefaultRTO, MaxAttempts: 3}
	if !p.Empty() {
		t.Error("seed/rto/attempts alone should leave the plan empty")
	}
	p.DropRate = 0.1
	if p.Empty() {
		t.Error("drop rate makes the plan non-empty")
	}
}

// TestDecisionsDeterministicAndOrderFree pins the core contract: a fault
// decision depends only on its identity, never on query order or on other
// queries in between.
func TestDecisionsDeterministicAndOrderFree(t *testing.T) {
	in, err := Compile(Plan{Seed: 99, DropRate: 0.3, AckDropRate: 0.2, SpikeRate: 0.5, SpikeExtra: 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	type q struct {
		from, to int
		seq      uint64
		attempt  int
	}
	queries := []q{{0, 5, 0, 0}, {0, 5, 0, 1}, {5, 0, 0, 0}, {3, 7, 19, 0}, {3, 7, 20, 0}}
	forward := make([]bool, len(queries))
	for i, e := range queries {
		forward[i] = in.DropData(e.from, e.to, e.seq, e.attempt)
	}
	// Reverse order, with unrelated rolls interleaved.
	for i := len(queries) - 1; i >= 0; i-- {
		e := queries[i]
		in.DropAck(e.to, e.from, e.seq)
		in.ExtraLatency(e.from, e.to, e.seq, e.attempt, 0, sim.Microsecond)
		if got := in.DropData(e.from, e.to, e.seq, e.attempt); got != forward[i] {
			t.Fatalf("DropData(%+v) flipped between orders", e)
		}
	}
	// Distinct seeds must decorrelate the stream.
	in2, _ := Compile(Plan{Seed: 100, DropRate: 0.3})
	same := 0
	for seq := uint64(0); seq < 64; seq++ {
		if in.DropData(1, 2, seq, 0) == in2.DropData(1, 2, seq, 0) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("seed change did not alter the decision stream")
	}
}

// TestDropRateStatistics sanity-checks the hash-to-uniform mapping: the
// empirical drop frequency must track the configured rate.
func TestDropRateStatistics(t *testing.T) {
	const rate, n = 0.1, 20000
	in, err := Compile(Plan{Seed: 1, DropRate: rate})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for seq := uint64(0); seq < n; seq++ {
		if in.DropData(2, 9, seq, 0) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-rate) > 0.02 {
		t.Fatalf("empirical drop rate %.4f, want ~%.2f", got, rate)
	}
}

func TestRTOBackoff(t *testing.T) {
	in, err := Compile(Plan{DropRate: 0.01, RTO: 10 * sim.Microsecond, MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	for attempt, want := range []sim.Duration{10, 20, 40, 80} {
		if got := in.RTO(attempt); got != want*sim.Microsecond {
			t.Fatalf("RTO(%d) = %v, want %v", attempt, got, want*sim.Microsecond)
		}
	}
	if in.MaxAttempts() != 5 {
		t.Fatalf("MaxAttempts = %d", in.MaxAttempts())
	}
	// Defaults apply when unset.
	in2, _ := Compile(Plan{DropRate: 0.01})
	if in2.RTO(0) != DefaultRTO || in2.MaxAttempts() != DefaultMaxAttempts {
		t.Fatalf("defaults not applied: rto=%v attempts=%d", in2.RTO(0), in2.MaxAttempts())
	}
}

func TestExtraLatency(t *testing.T) {
	in, err := Compile(Plan{
		Seed:     3,
		Degrades: []Degrade{{From: 1 * sim.Millisecond, Dur: 1 * sim.Millisecond, Factor: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := 2 * sim.Microsecond
	if got := in.ExtraLatency(0, 1, 0, 0, 0, base); got != 0 {
		t.Fatalf("outside window: extra = %v, want 0", got)
	}
	at := sim.Time(1500 * sim.Microsecond)
	if got := in.ExtraLatency(0, 1, 0, 0, at, base); got != 2*base {
		t.Fatalf("inside 3x window: extra = %v, want %v", got, 2*base)
	}
}

func TestDilation(t *testing.T) {
	in, err := Compile(Plan{
		Stragglers: []Straggler{{Rank: 3, From: sim.Time(100 * sim.Microsecond), Dur: 1 * sim.Millisecond, Factor: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.DilationFor(0) != nil {
		t.Fatal("rank 0 should not straggle")
	}
	f := in.DilationFor(3)
	if f == nil {
		t.Fatal("rank 3 should straggle")
	}
	d := 10 * sim.Microsecond
	if got := f(0, d); got != d {
		t.Fatalf("before window: %v, want %v", got, d)
	}
	if got := f(sim.Time(200*sim.Microsecond), d); got != 4*d {
		t.Fatalf("inside window: %v, want %v", got, 4*d)
	}
	if got := f(sim.Time(2*sim.Millisecond), d); got != d {
		t.Fatalf("after window: %v, want %v", got, d)
	}
}

func TestCrashSchedule(t *testing.T) {
	in, err := Compile(Plan{Crashes: []Crash{
		{Rank: 2, At: sim.Time(5 * sim.Millisecond), Downtime: sim.Millisecond},
		{Rank: 2, At: sim.Time(1 * sim.Millisecond), Downtime: sim.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cs := in.CrashesFor(2)
	if len(cs) != 2 || cs[0].At > cs[1].At {
		t.Fatalf("crash schedule not sorted: %+v", cs)
	}
	if in.CrashesFor(0) != nil {
		t.Fatal("rank 0 has no crashes")
	}
	if !in.HasCrashes() {
		t.Fatal("HasCrashes = false")
	}
}
