// Package faults is the deterministic fault-injection subsystem. A Plan
// describes *what* can go wrong — transient inter-node message loss,
// latency spikes and sustained link degradation, straggler ranks, and
// worker crashes — and Compile turns it into an Injector the cluster and
// core layers consult at well-defined points. Every decision is a pure
// function of the plan seed and the identity of the event being decided
// (link endpoints, per-link sequence number, retransmit attempt), computed
// with a splitmix64-style finalizer: no wall clock, no shared PRNG stream,
// no dependence on the order in which the simulator happens to ask. Two
// runs with the same plan therefore inject byte-identical fault schedules,
// and concurrent simulations cannot perturb each other.
//
// All times in a Plan are virtual (sim.Time / sim.Duration, nanoseconds).
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dsmtx/internal/sim"
)

// Defaults applied by Compile when the plan leaves the field zero.
const (
	// DefaultRTO is the base retransmit timeout for the reliable-link
	// layer; it doubles per attempt (exponential backoff).
	DefaultRTO = 20 * sim.Microsecond
	// DefaultMaxAttempts bounds retransmissions per message. At drop rate
	// p the chance of losing all attempts is p^n — for p=0.01, n=12 that
	// is 1e-24, i.e. unreachable in any shipped scenario; exceeding it is
	// a configuration error and panics.
	DefaultMaxAttempts = 12
	// maxAttemptsCap keeps the attempt count encodable alongside the
	// per-link sequence number in the decision hash.
	maxAttemptsCap = 32
)

// Degrade is a sustained link degradation: while active, inter-node
// latency is multiplied by Factor (applied to every inter-node link).
type Degrade struct {
	From   sim.Time
	Dur    sim.Duration
	Factor float64 // >= 1
}

// Straggler slows one rank's compute: every compute quantum beginning
// inside the window costs Factor times its nominal virtual duration.
type Straggler struct {
	Rank   int
	From   sim.Time
	Dur    sim.Duration
	Factor float64 // >= 1
}

// Crash kills a worker rank at virtual time At. The rank loses all
// speculative state, is silent for Downtime, then restarts and rejoins;
// the commit unit re-dispatches its in-flight iterations.
type Crash struct {
	Rank     int
	At       sim.Time
	Downtime sim.Duration
}

// Plan is a declarative fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision. Identical plans with
	// identical seeds produce identical fault schedules.
	Seed uint64
	// DropRate is the per-transmission loss probability on inter-node
	// links (each retransmission rolls independently).
	DropRate float64
	// AckDropRate is the loss probability for the acks of the reliable
	// layer (forcing spurious retransmissions).
	AckDropRate float64
	// SpikeRate is the per-message probability of adding SpikeExtra
	// latency to an inter-node delivery.
	SpikeRate  float64
	SpikeExtra sim.Duration
	// RTO is the base retransmit timeout (0 = DefaultRTO); backoff is
	// exponential per attempt.
	RTO sim.Duration
	// MaxAttempts bounds retransmissions (0 = DefaultMaxAttempts).
	MaxAttempts int

	Degrades   []Degrade
	Stragglers []Straggler
	Crashes    []Crash
}

// Empty reports whether the plan injects nothing at all. Seed, RTO and
// MaxAttempts alone do not make a plan non-empty: with no faults the
// resilience layer is never engaged.
func (p *Plan) Empty() bool {
	return p == nil || (p.DropRate == 0 && p.AckDropRate == 0 && p.SpikeRate == 0 &&
		len(p.Degrades) == 0 && len(p.Stragglers) == 0 && len(p.Crashes) == 0)
}

// LinkFaults reports whether the plan requires the reliable (ack +
// retransmit) link layer: any chance of message or ack loss.
func (p *Plan) LinkFaults() bool {
	return p != nil && (p.DropRate > 0 || p.AckDropRate > 0)
}

// HasCrashes reports whether the plan crashes any rank; only then do
// heartbeats and commit-unit liveness monitoring switch on.
func (p *Plan) HasCrashes() bool { return p != nil && len(p.Crashes) > 0 }

// Validate rejects plans that cannot be injected coherently. Rank upper
// bounds are the caller's business (the core layer knows the worker
// count); everything else is checked here.
func (p *Plan) Validate() error {
	check01 := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", name, v)
		}
		return nil
	}
	if err := check01("drop rate", p.DropRate); err != nil {
		return err
	}
	if err := check01("ack drop rate", p.AckDropRate); err != nil {
		return err
	}
	if err := check01("spike rate", p.SpikeRate); err != nil {
		return err
	}
	if p.SpikeExtra < 0 {
		return fmt.Errorf("faults: spike extra latency %v negative", p.SpikeExtra)
	}
	if p.SpikeRate > 0 && p.SpikeExtra <= 0 {
		return fmt.Errorf("faults: spike rate %g needs a positive extra latency", p.SpikeRate)
	}
	if p.RTO < 0 {
		return fmt.Errorf("faults: negative RTO %v", p.RTO)
	}
	if p.MaxAttempts < 0 || p.MaxAttempts > maxAttemptsCap {
		return fmt.Errorf("faults: max attempts %d outside [0,%d]", p.MaxAttempts, maxAttemptsCap)
	}
	for _, d := range p.Degrades {
		if d.Factor < 1 {
			return fmt.Errorf("faults: degrade factor %g below 1", d.Factor)
		}
		if d.From < 0 || d.Dur <= 0 {
			return fmt.Errorf("faults: degrade window [%v +%v) invalid", d.From, d.Dur)
		}
	}
	for _, s := range p.Stragglers {
		if s.Rank < 0 {
			return fmt.Errorf("faults: straggler rank %d negative", s.Rank)
		}
		if s.Factor < 1 {
			return fmt.Errorf("faults: straggler factor %g below 1", s.Factor)
		}
		if s.From < 0 || s.Dur <= 0 {
			return fmt.Errorf("faults: straggler window [%v +%v) invalid", s.From, s.Dur)
		}
	}
	for _, c := range p.Crashes {
		if c.Rank < 0 {
			return fmt.Errorf("faults: crash rank %d negative", c.Rank)
		}
		if c.At < 0 || c.Downtime <= 0 {
			return fmt.Errorf("faults: crash at %v downtime %v invalid", c.At, c.Downtime)
		}
	}
	return nil
}

// Injector is a compiled, immutable Plan ready for consultation from the
// cluster (drops, latency, retransmit pacing) and core (stragglers,
// crashes) layers. Safe for use from any number of concurrently running
// simulations because it holds no mutable state.
type Injector struct {
	plan       Plan
	stragglers map[int][]Straggler
	crashes    map[int][]Crash
}

// Compile validates the plan, applies RTO/MaxAttempts defaults, and
// indexes the per-rank schedules.
func Compile(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.RTO == 0 {
		p.RTO = DefaultRTO
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	in := &Injector{plan: p}
	if len(p.Stragglers) > 0 {
		in.stragglers = make(map[int][]Straggler)
		for _, s := range p.Stragglers {
			in.stragglers[s.Rank] = append(in.stragglers[s.Rank], s)
		}
		for _, ws := range in.stragglers {
			sort.Slice(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
		}
	}
	if len(p.Crashes) > 0 {
		in.crashes = make(map[int][]Crash)
		for _, c := range p.Crashes {
			in.crashes[c.Rank] = append(in.crashes[c.Rank], c)
		}
		for _, cs := range in.crashes {
			sort.Slice(cs, func(i, j int) bool { return cs[i].At < cs[j].At })
		}
	}
	return in, nil
}

// Plan returns the compiled plan with defaults applied.
func (in *Injector) Plan() Plan { return in.plan }

// LinkFaults mirrors Plan.LinkFaults on the compiled form.
func (in *Injector) LinkFaults() bool { return in.plan.LinkFaults() }

// HasLatencyFaults reports whether deliveries may be delayed (spikes or
// degradation) even when nothing is dropped.
func (in *Injector) HasLatencyFaults() bool {
	return in.plan.SpikeRate > 0 || len(in.plan.Degrades) > 0
}

// HasCrashes mirrors Plan.HasCrashes on the compiled form.
func (in *Injector) HasCrashes() bool { return in.plan.HasCrashes() }

// mix is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Decision-kind salts keep the drop, ack-drop and spike streams
// statistically independent even for the same (link, seq) identity.
const (
	kindDrop uint64 = iota + 1
	kindAckDrop
	kindSpike
)

// roll maps a fully-qualified decision identity to a uniform [0,1) float.
func (in *Injector) roll(kind uint64, from, to int, seq uint64) float64 {
	h := mix(in.plan.Seed ^ kind)
	h = mix(h ^ (uint64(uint32(from))<<32 | uint64(uint32(to))))
	h = mix(h ^ seq)
	return float64(h>>11) / (1 << 53)
}

// DropData decides whether transmission `attempt` of message `seq` on the
// from→to link is lost. Each attempt rolls independently.
func (in *Injector) DropData(from, to int, seq uint64, attempt int) bool {
	if in.plan.DropRate == 0 {
		return false
	}
	return in.roll(kindDrop, from, to, seq*maxAttemptsCap+uint64(attempt)) < in.plan.DropRate
}

// DropAck decides whether ack instance `ackSeq` on the from→to link is
// lost. ackSeq must be unique per physical ack (the cluster keeps a
// monotone counter) so duplicate acks roll independently.
func (in *Injector) DropAck(from, to int, ackSeq uint64) bool {
	if in.plan.AckDropRate == 0 {
		return false
	}
	return in.roll(kindAckDrop, from, to, ackSeq) < in.plan.AckDropRate
}

// ExtraLatency returns the additional delivery latency for transmission
// `attempt` of message `seq` departing at virtual time `at`, given the
// link's base inter-node latency: a probabilistic spike plus any active
// sustained degradation window.
func (in *Injector) ExtraLatency(from, to int, seq uint64, attempt int, at sim.Time, base sim.Duration) sim.Duration {
	var extra sim.Duration
	if in.plan.SpikeRate > 0 &&
		in.roll(kindSpike, from, to, seq*maxAttemptsCap+uint64(attempt)) < in.plan.SpikeRate {
		extra += in.plan.SpikeExtra
	}
	for _, d := range in.plan.Degrades {
		if at >= d.From && at < d.From+d.Dur {
			extra += sim.Duration(float64(base) * (d.Factor - 1))
		}
	}
	return extra
}

// RTO returns the retransmit timeout for the given attempt number:
// base << attempt (exponential backoff).
func (in *Injector) RTO(attempt int) sim.Duration {
	if attempt > 16 {
		attempt = 16
	}
	return in.plan.RTO << uint(attempt)
}

// MaxAttempts returns the transmission bound (with defaults applied).
func (in *Injector) MaxAttempts() int { return in.plan.MaxAttempts }

// DilationFor returns the compute-time dilation function for a rank, or
// nil if the rank never straggles. The returned function multiplies any
// compute quantum that *begins* inside a straggler window; quanta are
// microsecond-scale against millisecond-scale windows, so per-quantum
// resolution is accurate without splitting quanta across boundaries.
func (in *Injector) DilationFor(rank int) func(sim.Time, sim.Duration) sim.Duration {
	ws := in.stragglers[rank]
	if len(ws) == 0 {
		return nil
	}
	return func(now sim.Time, d sim.Duration) sim.Duration {
		for _, w := range ws {
			if now >= w.From && now < w.From+w.Dur {
				return sim.Duration(float64(d) * w.Factor)
			}
		}
		return d
	}
}

// CrashesFor returns the crash schedule for a rank, sorted by At.
func (in *Injector) CrashesFor(rank int) []Crash { return in.crashes[rank] }

// ---------------------------------------------------------------------------
// Spec strings
//
// Plans travel through CLI flags and experiment-cache keys as compact spec
// strings. The grammar is a comma-separated clause list:
//
//	seed=N                      PRNG seed (decimal)
//	drop=F                      inter-node loss probability
//	ackdrop=F                   ack loss probability
//	spike=F:DUR                 latency-spike probability and magnitude
//	degrade=Fx@START+DUR        sustained latency multiplier window
//	straggler=rR:Fx@START+DUR   per-rank compute multiplier window
//	crash=rR@START+DUR          kill rank R at START for DUR
//	rto=DUR                     base retransmit timeout
//	attempts=N                  retransmission bound
//
// Durations accept ns/us/µs/ms/s suffixes. Format renders the canonical
// form (fixed clause order, sorted windows, smallest exact unit), and
// Parse(Format(p)) round-trips, so canonicalized specs are stable cache
// keys.

// Parse builds a Plan from a spec string. The empty string is the empty
// plan.
func Parse(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		key, val, ok := strings.Cut(clause, "=")
		if !ok || val == "" {
			return Plan{}, fmt.Errorf("faults: bad clause %q (want key=value)", clause)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			p.DropRate, err = parseRate(val)
		case "ackdrop":
			p.AckDropRate, err = parseRate(val)
		case "spike":
			rate, dur, found := strings.Cut(val, ":")
			if !found {
				return Plan{}, fmt.Errorf("faults: bad spike %q (want RATE:DUR)", val)
			}
			if p.SpikeRate, err = parseRate(rate); err == nil {
				p.SpikeExtra, err = parseDur(dur)
			}
		case "rto":
			p.RTO, err = parseDur(val)
		case "attempts":
			p.MaxAttempts, err = strconv.Atoi(val)
		case "degrade":
			var d Degrade
			if d.Factor, d.From, d.Dur, err = parseWindow(val); err == nil {
				p.Degrades = append(p.Degrades, d)
			}
		case "straggler":
			rank, rest, found := strings.Cut(val, ":")
			if !found {
				return Plan{}, fmt.Errorf("faults: bad straggler %q (want rR:Fx@START+DUR)", val)
			}
			var s Straggler
			if s.Rank, err = parseRank(rank); err == nil {
				if s.Factor, s.From, s.Dur, err = parseWindow(rest); err == nil {
					p.Stragglers = append(p.Stragglers, s)
				}
			}
		case "crash":
			rank, rest, found := strings.Cut(val, "@")
			if !found {
				return Plan{}, fmt.Errorf("faults: bad crash %q (want rR@START+DUR)", val)
			}
			var c Crash
			if c.Rank, err = parseRank(rank); err == nil {
				if c.At, c.Downtime, err = parseSpan(rest); err == nil {
					p.Crashes = append(p.Crashes, c)
				}
			}
		default:
			return Plan{}, fmt.Errorf("faults: unknown clause key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: clause %q: %v", clause, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Format renders the canonical spec string for the plan: clauses in fixed
// order, windows sorted, zero fields omitted. Format of the zero plan is
// "".
func (p *Plan) Format() string {
	if p == nil {
		return ""
	}
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if p.Seed != 0 {
		add(fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.DropRate != 0 {
		add("drop=" + fmtRate(p.DropRate))
	}
	if p.AckDropRate != 0 {
		add("ackdrop=" + fmtRate(p.AckDropRate))
	}
	if p.SpikeRate != 0 {
		add("spike=" + fmtRate(p.SpikeRate) + ":" + fmtDur(p.SpikeExtra))
	}
	degrades := append([]Degrade(nil), p.Degrades...)
	sort.Slice(degrades, func(i, j int) bool {
		return degrades[i].From < degrades[j].From
	})
	for _, d := range degrades {
		add(fmt.Sprintf("degrade=%sx@%s+%s", fmtRate(d.Factor), fmtDur(sim.Duration(d.From)), fmtDur(d.Dur)))
	}
	stragglers := append([]Straggler(nil), p.Stragglers...)
	sort.Slice(stragglers, func(i, j int) bool {
		a, b := stragglers[i], stragglers[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.From < b.From
	})
	for _, s := range stragglers {
		add(fmt.Sprintf("straggler=r%d:%sx@%s+%s", s.Rank, fmtRate(s.Factor), fmtDur(sim.Duration(s.From)), fmtDur(s.Dur)))
	}
	crashes := append([]Crash(nil), p.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		a, b := crashes[i], crashes[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.At < b.At
	})
	for _, c := range crashes {
		add(fmt.Sprintf("crash=r%d@%s+%s", c.Rank, fmtDur(sim.Duration(c.At)), fmtDur(c.Downtime)))
	}
	if p.RTO != 0 {
		add("rto=" + fmtDur(p.RTO))
	}
	if p.MaxAttempts != 0 {
		add(fmt.Sprintf("attempts=%d", p.MaxAttempts))
	}
	return strings.Join(parts, ",")
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func parseRank(s string) (int, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad rank %q (want rN)", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad rank %q (want rN)", s)
	}
	return n, nil
}

// parseWindow parses "Fx@START+DUR" (factor, window start, window length).
func parseWindow(s string) (factor float64, from sim.Time, dur sim.Duration, err error) {
	f, rest, ok := strings.Cut(s, "x@")
	if !ok {
		return 0, 0, 0, fmt.Errorf("bad window %q (want Fx@START+DUR)", s)
	}
	if factor, err = parseRate(f); err != nil {
		return 0, 0, 0, err
	}
	from, dur, err = parseSpan(rest)
	return factor, from, dur, err
}

// parseSpan parses "START+DUR".
func parseSpan(s string) (from sim.Time, dur sim.Duration, err error) {
	start, length, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("bad span %q (want START+DUR)", s)
	}
	f, err := parseDur(start)
	if err != nil {
		return 0, 0, err
	}
	d, err := parseDur(length)
	if err != nil {
		return 0, 0, err
	}
	return sim.Time(f), d, nil
}

var durUnits = []struct {
	suffix string
	scale  sim.Duration
}{
	{"ns", sim.Nanosecond},
	{"us", sim.Microsecond},
	{"µs", sim.Microsecond},
	{"ms", sim.Millisecond},
	{"s", sim.Second},
}

func parseDur(s string) (sim.Duration, error) {
	for _, u := range durUnits {
		if num, ok := strings.CutSuffix(s, u.suffix); ok {
			// "s" also terminates "ns"/"us"/"ms"; the table is ordered so
			// the longer suffixes match first, but a trailing digit check
			// keeps "17" from slipping through as unitless.
			v, err := strconv.ParseFloat(num, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("bad duration %q", s)
			}
			return sim.Duration(v * float64(u.scale)), nil
		}
	}
	return 0, fmt.Errorf("bad duration %q (want number + ns/us/ms/s)", s)
}

// fmtDur renders a duration in its largest exact unit so canonical specs
// stay human-readable ("1500us", not "1500000ns").
func fmtDur(d sim.Duration) string {
	switch {
	case d == 0:
		return "0ns"
	case d%sim.Second == 0:
		return strconv.FormatInt(int64(d/sim.Second), 10) + "s"
	case d%sim.Millisecond == 0:
		return strconv.FormatInt(int64(d/sim.Millisecond), 10) + "ms"
	case d%sim.Microsecond == 0:
		return strconv.FormatInt(int64(d/sim.Microsecond), 10) + "us"
	default:
		return strconv.FormatInt(int64(d), 10) + "ns"
	}
}

// fmtRate renders probabilities and factors without trailing zeros.
func fmtRate(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
