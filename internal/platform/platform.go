// Package platform defines the execution-platform abstraction the DSMTX
// runtime runs against: a clock, processes, message endpoints with
// per-(source, tag) mailboxes, and instruction-cost charging. The protocol
// layers above — core, queue, mpi, the COA page path — speak only these
// interfaces, so the same runtime executes either in deterministic virtual
// time (platform/vtime, a thin adapter over the sim + cluster stack) or
// live on host threads (platform/host, real goroutines and wall-clock
// time). The paper's contribution is the runtime protocol, not the
// simulator; this package is the seam that keeps them separable.
//
// The package also owns the vocabulary both worlds share: Time/Duration,
// Message, MsgClass, and TrafficStats. sim and cluster alias these types
// (type Time = platform.Time, ...), so existing code and golden outputs are
// unchanged — the vtime backend is bit-identical to the pre-platform stack
// by construction.
package platform

import "fmt"

// Time is a point on the platform clock in nanoseconds from the start of
// the run: virtual nanoseconds under vtime, wall-clock nanoseconds under
// host.
type Time int64

// Duration aliases Time for readability when a length of time is meant.
type Duration = Time

// Convenient time units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// String renders the time using the largest sensible unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// MsgClass labels a message's role for bandwidth attribution: the Fig. 5a
// harness and the metrics report split wire traffic into queue batches,
// Copy-On-Access page transfers, and everything else (control: verdicts
// travel in queues, but barriers, credits, start/ctrl and occupancy acks
// are control).
type MsgClass uint8

// Message classes. The zero value is ClassControl, so untagged sends (the
// default path) count as control traffic.
const (
	ClassControl MsgClass = iota
	ClassQueue
	ClassPage
)

// Message is one unit of data in flight between ranks.
type Message struct {
	From, To int
	Tag      int
	Payload  any
	Bytes    int // modelled wire size; must be >= 0
	Class    MsgClass
	// Seq is the reliable-layer per-link sequence number; only meaningful
	// when fault injection routes the message through the ack/retransmit
	// path (zero otherwise).
	Seq uint64
}

// AnySource registers a mailbox that receives messages from every sender
// using a given tag. Register such mailboxes before any traffic flows.
const AnySource = -1

// TrafficStats accumulates wire traffic for an entire run; the figure-5a
// bandwidth numbers divide these by execution time. The per-class fields
// are a breakdown of the same traffic: QueueBytes + PageBytes +
// ControlBytes == Bytes (and likewise for messages).
type TrafficStats struct {
	Messages       uint64
	Bytes          uint64
	InterNodeBytes uint64
	IntraNodeBytes uint64

	QueueMessages   uint64
	QueueBytes      uint64
	PageMessages    uint64
	PageBytes       uint64
	ControlMessages uint64
	ControlBytes    uint64

	// Resilience-layer accounting, all zero when fault injection is off.
	// Retransmissions and acks are real wire traffic, so their bytes are
	// *also* counted in the totals and class sums above; these fields say
	// how much of that traffic the fault layer caused. Dropped messages
	// consumed the sender's NIC but never arrived.
	DroppedMessages uint64
	DroppedBytes    uint64
	RetransMessages uint64
	RetransBytes    uint64
	AckMessages     uint64
	AckBytes        uint64
}

// Add accumulates another run's traffic into t (multi-invocation totals).
func (t *TrafficStats) Add(o TrafficStats) {
	t.Messages += o.Messages
	t.Bytes += o.Bytes
	t.InterNodeBytes += o.InterNodeBytes
	t.IntraNodeBytes += o.IntraNodeBytes
	t.QueueMessages += o.QueueMessages
	t.QueueBytes += o.QueueBytes
	t.PageMessages += o.PageMessages
	t.PageBytes += o.PageBytes
	t.ControlMessages += o.ControlMessages
	t.ControlBytes += o.ControlBytes
	t.DroppedMessages += o.DroppedMessages
	t.DroppedBytes += o.DroppedBytes
	t.RetransMessages += o.RetransMessages
	t.RetransBytes += o.RetransBytes
	t.AckMessages += o.AckMessages
	t.AckBytes += o.AckBytes
}

// Proc is the handle a runtime process uses to spend time and identify
// itself. Under vtime it is a *sim.Proc (cooperative, virtual clock);
// under host it is a live goroutine's handle (Advance yields or sleeps,
// busy/blocked accounting is zero).
type Proc interface {
	// Advance spends d of platform time: virtual time under vtime; under
	// host, small durations yield the processor and large ones sleep.
	// Non-positive durations yield without advancing the clock.
	Advance(d Duration)
	// Yield lets other runnable work proceed before resuming.
	Yield()
	// Now reports the current platform time.
	Now() Time
	// Advanced reports total time spent in Advance — busy time. Host
	// processes report zero (there is no charged compute on host).
	Advanced() Duration
	// Blocked reports total time spent parked in blocking waits. Host
	// processes report zero.
	Blocked() Duration
	// Name reports the process name given at Spawn.
	Name() string
}

// Mailbox is a handle to one (source, tag) receive queue; poll-heavy paths
// cache it to skip the per-call map lookup.
type Mailbox interface {
	// Recv dequeues a message, blocking p until one is available. ok is
	// false only if the mailbox is closed and drained.
	Recv(p Proc) (Message, bool)
	// TryRecv dequeues a pending message without blocking.
	TryRecv() (Message, bool)
	// TryRecvBatch appends every immediately available message to into and
	// returns the extended slice, never blocking. Batch consumers (queue
	// drains) use it to take a whole backlog in one call: on host this
	// empties the lock-free ring without per-message synchronization; on
	// vtime it is a TryRecv loop.
	TryRecvBatch(into []Message) []Message
}

// Endpoint is one rank's attachment to the interconnect. Mailboxes are
// keyed by (source, tag); register any-source mailboxes with
// Mailbox(AnySource, tag) before traffic with that tag flows.
type Endpoint interface {
	// Rank reports this endpoint's rank.
	Rank() int
	// Node reports the node hosting this endpoint.
	Node() int
	// Send injects a message; it does not charge CPU time (the mpi layer
	// adds per-call instruction costs). Under vtime delivery happens at the
	// modelled arrival time; under host it is immediate.
	Send(to, tag int, payload any, bytes int)
	// SendClass is Send with an explicit traffic class for bandwidth
	// attribution; the class changes accounting only, never timing.
	SendClass(to, tag int, payload any, bytes int, class MsgClass)
	// Recv blocks p until a message from the given source (or AnySource)
	// with the given tag arrives, and returns it.
	Recv(p Proc, from, tag int) Message
	// TryRecv returns a pending message without blocking.
	TryRecv(from, tag int) (Message, bool)
	// Mailbox returns (creating if needed) the mailbox for messages from a
	// specific source rank (or AnySource) carrying the given tag.
	Mailbox(from, tag int) Mailbox
}

// Platform is one execution world: a clock, a set of rank endpoints, and a
// process scheduler. core.System drives exactly one Platform per run.
type Platform interface {
	// Name identifies the backend ("vtime" or "host").
	Name() string
	// Ranks reports the number of communication endpoints.
	Ranks() int
	// NodeOf reports the node hosting a rank (placement model).
	NodeOf(rank int) int
	// Endpoint returns the communication endpoint for a rank.
	Endpoint(rank int) Endpoint
	// InstrTime converts an instruction count into platform time: modelled
	// core-clock time under vtime, zero under host (real instructions
	// already cost real time).
	InstrTime(instructions int64) Duration
	// Spawn starts a new process executing fn. Under vtime the process
	// starts when Run drives the calendar; under host the goroutine starts
	// immediately.
	Spawn(name string, fn func(p Proc))
	// Run executes spawned processes to completion and returns the first
	// process failure, if any. horizon (if positive) bounds virtual time
	// under vtime; host ignores it.
	Run(horizon Duration) error
	// Now reports the current platform time.
	Now() Time
	// Events reports how many scheduler events have fired (zero on host).
	Events() uint64
	// Traffic returns a snapshot of accumulated wire traffic.
	Traffic() TrafficStats
	// Concurrent reports whether processes run truly concurrently (host) —
	// shared runtime state then needs synchronization — or in strict
	// cooperative alternation (vtime).
	Concurrent() bool
}
