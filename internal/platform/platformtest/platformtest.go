// Package platformtest is the delivery conformance suite shared by every
// concurrent platform backend. A backend adapts itself to the World
// interface — producer endpoints, a consumer rank, and the consumer-side
// delivery metrics — and the suite pins the contracts DSMTX's protocol
// correctness rests on:
//
//   - per-producer FIFO: messages from one rank arrive in send order, even
//     across ring-overflow spills and (on net) reconnect replay;
//   - any-source migration: messages delivered before the consumer registers
//     its any-source mailbox fold in without loss or reorder;
//   - counter algebra: every message is exactly one ring enqueue or one
//     spill, every spill folds back exactly once, and every message is
//     dequeued exactly once.
//
// The host backend runs the suite over in-process rings; the net backend
// runs it with producers in one mesh and the consumer in another, so the
// same assertions audit the TCP framing, sequence numbering, and the
// reader's injection into the very same rings.
package platformtest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
)

// World is one delivery domain under test: some producer ranks, one
// consumer rank, and the delivery-layer metrics on the consumer side.
type World interface {
	// Producers reports the number of producer ranks, numbered 0..n-1.
	Producers() int
	// ConsumerRank reports the rank producers send to.
	ConsumerRank() int
	// ProducerEndpoint returns producer rank i's endpoint. Sends must be
	// safe from bare goroutines (the host contract).
	ProducerEndpoint(i int) platform.Endpoint
	// ConsumerEndpoint returns the consumer rank's endpoint, for mailbox
	// registration and draining.
	ConsumerEndpoint() platform.Endpoint
	// SpawnConsumer registers fn as the consumer process; Run drives it.
	SpawnConsumer(fn func(p platform.Proc))
	// Run executes spawned processes to completion.
	Run() error
	// Tracer exposes the consumer side's metrics registry (the suite
	// attaches no tracer itself; the World must wire one in).
	Tracer() *trace.Tracer
}

// Factory builds a fresh World with the given producer count. Each subtest
// gets its own world; the factory registers any cleanup on t.
type Factory func(t *testing.T, producers int) World

// ringSize mirrors the host delivery ring capacity; storms send well past
// it so the overflow path is always exercised.
const ringSize = 256

// Run executes the full conformance suite against the backend.
func Run(t *testing.T, factory Factory) {
	t.Run("FIFOPerProducerStorm", func(t *testing.T) { fifoStorm(t, factory) })
	t.Run("AnySourceBatchDrain", func(t *testing.T) { batchDrain(t, factory) })
	t.Run("SpillUnspillAlgebra", func(t *testing.T) { spillAlgebra(t, factory) })
}

// fifoStorm hammers the consumer from 8 concurrent producers while a
// blocking consumer drains; per-producer FIFO must hold across overflow
// spills and any transport reordering hazards. Under -race this is the
// data-race audit of the whole delivery path.
func fifoStorm(t *testing.T, factory Factory) {
	const producers = 8
	perProducer := 4000
	if testing.Short() {
		perProducer = 500
	}
	w := factory(t, producers)
	dst := w.ConsumerRank()
	box := w.ConsumerEndpoint().Mailbox(platform.AnySource, 5)
	var wg sync.WaitGroup
	for src := 0; src < producers; src++ {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := w.ProducerEndpoint(src)
			for i := 0; i < perProducer; i++ {
				ep.Send(dst, 5, uint64(i), 8)
			}
		}()
	}
	var consumeErr error
	w.SpawnConsumer(func(p platform.Proc) {
		nextFrom := make([]uint64, producers)
		for n := 0; n < producers*perProducer; n++ {
			msg, _ := box.Recv(p)
			if msg.Payload.(uint64) != nextFrom[msg.From] {
				consumeErr = fmt.Errorf("source %d delivered %d, want %d (message %d)",
					msg.From, msg.Payload, nextFrom[msg.From], n)
				return
			}
			nextFrom[msg.From]++
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if consumeErr != nil {
		t.Fatal(consumeErr)
	}
	if msg, ok := box.TryRecv(); ok {
		t.Fatalf("stray message after full consumption: %+v", msg)
	}
}

// batchDrain sends the whole load before the consumer registers its
// any-source mailbox — delivery lands in auto-created exact boxes — then
// folds and drains in one TryRecvBatch. Order per source must survive the
// migration, and the batch must take ring and overflow alike.
func batchDrain(t *testing.T, factory Factory) {
	const producers = 3
	const perProducer = ringSize + 20 // the fold must carry overflow too
	w := factory(t, producers)
	dst := w.ConsumerRank()
	var wg sync.WaitGroup
	for src := 0; src < producers; src++ {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := w.ProducerEndpoint(src)
			for i := 0; i < perProducer; i++ {
				ep.Send(dst, 9, uint64(i), 8)
			}
		}()
	}
	wg.Wait()
	total := uint64(producers * perProducer)
	waitDelivered(t, w, total)

	box := w.ConsumerEndpoint().Mailbox(platform.AnySource, 9)
	got := box.TryRecvBatch(nil)
	if uint64(len(got)) != total {
		t.Fatalf("batch drained %d, want %d", len(got), total)
	}
	nextFrom := make([]uint64, producers)
	for i, msg := range got {
		if msg.Payload.(uint64) != nextFrom[msg.From] {
			t.Fatalf("batch[%d]: source %d delivered %d, want %d", i, msg.From, msg.Payload, nextFrom[msg.From])
		}
		nextFrom[msg.From]++
	}
}

// spillAlgebra drives an unconsumed overflow storm, then drains it
// single-threaded and checks the delivery counters close exactly: enqueues
// plus spills account for every send, every spill unspills once, every
// message dequeues once.
func spillAlgebra(t *testing.T, factory Factory) {
	const producers = 8
	perProducer := 2000
	if testing.Short() {
		perProducer = 500
	}
	w := factory(t, producers)
	dst := w.ConsumerRank()
	// Register the any-source box up front so the whole storm funnels into
	// one ring (auto-created exact boxes would give each source its own 256
	// slots and dilute the spill pressure).
	box := w.ConsumerEndpoint().Mailbox(platform.AnySource, 5)
	var wg sync.WaitGroup
	for src := 0; src < producers; src++ {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := w.ProducerEndpoint(src)
			for i := 0; i < perProducer; i++ {
				ep.Send(dst, 5, uint64(i), 8)
			}
		}()
	}
	wg.Wait()
	total := uint64(producers * perProducer)
	waitDelivered(t, w, total)

	m := w.Tracer().Metrics()
	if spills := m.Counter("host.ring.spill").Value(); spills < total-ringSize {
		t.Fatalf("spills = %d, want >= %d (ring holds only %d)", spills, total-ringSize, ringSize)
	}

	nextFrom := make([]uint64, producers)
	for n := uint64(0); n < total; n++ {
		msg, ok := box.TryRecv()
		if !ok {
			t.Fatalf("backlog dry after %d of %d messages", n, total)
		}
		if msg.Payload.(uint64) != nextFrom[msg.From] {
			t.Fatalf("source %d delivered %d, want %d: spill broke per-producer FIFO",
				msg.From, msg.Payload, nextFrom[msg.From])
		}
		nextFrom[msg.From]++
	}
	if msg, ok := box.TryRecv(); ok {
		t.Fatalf("stray message after full drain: %+v", msg)
	}

	enq := m.Counter("host.ring.enqueue").Value()
	deq := m.Counter("host.ring.dequeue").Value()
	spill := m.Counter("host.ring.spill").Value()
	unspill := m.Counter("host.ring.unspill").Value()
	if enq+spill != total {
		t.Errorf("enqueue %d + spill %d != %d sends", enq, spill, total)
	}
	if deq != total {
		t.Errorf("dequeue = %d, want %d", deq, total)
	}
	if unspill != spill {
		t.Errorf("unspill = %d, want %d (every spilled message folds back exactly once)", unspill, spill)
	}
}

// waitDelivered blocks until the consumer-side delivery counters account
// for n messages — on host delivery is synchronous and this returns at
// once; on net it rides the transport's actual arrival.
func waitDelivered(t *testing.T, w World, n uint64) {
	t.Helper()
	m := w.Tracer().Metrics()
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := m.Counter("host.ring.enqueue").Value() + m.Counter("host.ring.spill").Value()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d messages before timeout", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}
