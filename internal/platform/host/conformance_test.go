package host

import (
	"testing"

	"dsmtx/internal/platform"
	"dsmtx/internal/platform/platformtest"
	"dsmtx/internal/trace"
)

// hostWorld adapts the in-process host platform to the shared delivery
// conformance suite: producers and consumer share one Platform, so the
// suite exercises the rings directly with no transport in between.
type hostWorld struct {
	producers int
	h         *Platform
	tr        *trace.Tracer
}

func (w *hostWorld) Producers() int                           { return w.producers }
func (w *hostWorld) ConsumerRank() int                        { return w.producers }
func (w *hostWorld) ProducerEndpoint(i int) platform.Endpoint { return w.h.Endpoint(i) }
func (w *hostWorld) ConsumerEndpoint() platform.Endpoint      { return w.h.Endpoint(w.producers) }
func (w *hostWorld) SpawnConsumer(fn func(p platform.Proc))   { w.h.Spawn("consumer", fn) }
func (w *hostWorld) Run() error                               { return w.h.Run(0) }
func (w *hostWorld) Tracer() *trace.Tracer                    { return w.tr }

func TestDeliveryConformance(t *testing.T) {
	platformtest.Run(t, func(t *testing.T, producers int) platformtest.World {
		h := New(producers+1, nil)
		tr := trace.NewMetricsOnly()
		h.SetTracer(tr)
		return &hostWorld{producers: producers, h: h, tr: tr}
	})
}
