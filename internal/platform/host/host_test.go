package host

import (
	"errors"
	"strings"
	"testing"

	"dsmtx/internal/platform"
)

// TestSendRecv moves a message between two live processes through the
// blocking mailbox path.
func TestSendRecv(t *testing.T) {
	h := New(2, nil)
	h.Spawn("sender", func(p platform.Proc) {
		h.Endpoint(0).Send(1, 7, "hello", 5)
	})
	var got platform.Message
	h.Spawn("receiver", func(p platform.Proc) {
		got = h.Endpoint(1).Recv(p, 0, 7)
	})
	if err := h.Run(0); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "hello" || got.From != 0 || got.Tag != 7 || got.Bytes != 5 {
		t.Fatalf("received %+v", got)
	}
}

// TestAnySourceMigration pins the registration race the vtime backend
// cannot have: a message delivered before any receiver registered its tag
// parks in an auto-created exact box, and a later any-source registration
// must fold that box in rather than strand the message.
func TestAnySourceMigration(t *testing.T) {
	h := New(2, nil)
	// Deliver first: creates the auto box for (0, tag 3) on rank 1.
	h.Endpoint(0).Send(1, 3, "early", 5)
	// Register any-source afterwards; the early message must migrate.
	msg, ok := h.Endpoint(1).TryRecv(platform.AnySource, 3)
	if !ok || msg.Payload != "early" {
		t.Fatalf("any-source receive after early delivery: %+v ok=%v", msg, ok)
	}
	// Future sends from the same source route to the any-source box too.
	h.Endpoint(0).Send(1, 3, "late", 4)
	msg, ok = h.Endpoint(1).TryRecv(platform.AnySource, 3)
	if !ok || msg.Payload != "late" {
		t.Fatalf("any-source receive after migration: %+v ok=%v", msg, ok)
	}
}

// TestFailureUnwindsBlockedRecv kills one process and requires Run to
// return its error instead of deadlocking on the peer parked in Recv.
func TestFailureUnwindsBlockedRecv(t *testing.T) {
	h := New(2, nil)
	h.Spawn("victim", func(p platform.Proc) {
		h.Endpoint(1).Recv(p, 0, 1) // no sender: blocks until failure
	})
	h.Spawn("crasher", func(p platform.Proc) {
		panic(errors.New("boom"))
	})
	err := h.Run(0)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run returned %v, want the crasher's panic", err)
	}
}

// TestTrafficAccounting checks class and node attribution of sent bytes.
func TestTrafficAccounting(t *testing.T) {
	h := New(4, func(rank int) int { return rank / 2 }) // ranks 0,1 on node 0
	h.Endpoint(0).SendClass(1, 1, nil, 100, platform.ClassQueue)
	h.Endpoint(0).SendClass(2, 1, nil, 40, platform.ClassPage)
	h.Endpoint(3).Send(0, 2, nil, 7)
	s := h.Traffic()
	if s.Messages != 3 || s.Bytes != 147 {
		t.Fatalf("messages %d bytes %d, want 3/147", s.Messages, s.Bytes)
	}
	if s.QueueBytes != 100 || s.PageBytes != 40 || s.ControlBytes != 7 {
		t.Fatalf("class bytes queue %d page %d control %d", s.QueueBytes, s.PageBytes, s.ControlBytes)
	}
	if s.IntraNodeBytes != 100 || s.InterNodeBytes != 47 {
		t.Fatalf("intra %d inter %d, want 100/47", s.IntraNodeBytes, s.InterNodeBytes)
	}
}

// TestPlatformShape pins the host backend's contract constants.
func TestPlatformShape(t *testing.T) {
	h := New(3, nil)
	if !h.Concurrent() {
		t.Error("host must report Concurrent")
	}
	if h.Name() != "host" {
		t.Errorf("name %q", h.Name())
	}
	if h.InstrTime(1_000_000) != 0 {
		t.Error("host must not charge instruction time")
	}
	if h.Ranks() != 3 || h.NodeOf(2) != 0 {
		t.Errorf("ranks %d nodeOf(2) %d", h.Ranks(), h.NodeOf(2))
	}
	if h.Events() != 0 {
		t.Error("host has no event calendar")
	}
}
