// Package host executes the DSMTX runtime live on host threads: every
// platform process is a real goroutine, the clock is the wall clock, and
// messages move through sync-based mailboxes with no modelled latency,
// bandwidth, or instruction cost. The protocol above is identical to the
// vtime backend — same speculation, forwarding, validation, commit, and
// recovery paths — but interleaving is whatever the Go scheduler produces,
// so only protocol outcomes (committed MTX counts, output checksums) are
// reproducible, not timings.
//
// Deliberately unmodelled here: NIC serialization and latency (sends
// deliver immediately), per-instruction CPU charges (InstrTime is zero —
// real instructions already cost real time), and the vtime-only subsystems
// (fault injection, tracing, heartbeat timers), which core.Config.Validate
// rejects for this backend.
package host

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dsmtx/internal/platform"
)

// sleepFloor is the shortest Advance the OS timer can honor usefully; below
// it (poll backoffs are 100 ns–1.6 µs) Advance yields the processor instead
// of sleeping, keeping poll loops responsive without busy-burning a core.
const sleepFloor = 100 * platform.Microsecond

// killSentinel unwinds a blocked process goroutine after another process
// has failed, so Run can return instead of deadlocking.
type killSentinel struct{}

// Platform is a live-goroutine execution world.
type Platform struct {
	ranks  int
	nodeOf func(int) int
	start  time.Time
	eps    []*endpoint
	wg     sync.WaitGroup

	statsMu sync.Mutex
	stats   platform.TrafficStats

	failed  atomic.Bool
	failMu  sync.Mutex
	failure error
}

// New builds a host platform with the given number of rank endpoints.
// nodeOf assigns ranks to nodes for traffic attribution only (there is no
// placement-dependent timing on host); nil places every rank on node 0.
func New(ranks int, nodeOf func(int) int) *Platform {
	if ranks < 1 {
		panic(fmt.Sprintf("host: ranks = %d, need >= 1", ranks))
	}
	if nodeOf == nil {
		nodeOf = func(int) int { return 0 }
	}
	h := &Platform{ranks: ranks, nodeOf: nodeOf, start: time.Now()}
	h.eps = make([]*endpoint, ranks)
	for r := range h.eps {
		h.eps[r] = &endpoint{h: h, rank: r, boxes: make(map[mbKey]*mailbox)}
	}
	return h
}

// Name identifies the backend.
func (h *Platform) Name() string { return "host" }

// Ranks reports the number of endpoints.
func (h *Platform) Ranks() int { return h.ranks }

// NodeOf reports the node a rank is attributed to.
func (h *Platform) NodeOf(rank int) int { return h.nodeOf(rank) }

// Endpoint returns the communication endpoint for a rank.
func (h *Platform) Endpoint(rank int) platform.Endpoint { return h.endpoint(rank) }

func (h *Platform) endpoint(rank int) *endpoint {
	if rank < 0 || rank >= len(h.eps) {
		panic(fmt.Sprintf("host: rank %d out of range [0,%d)", rank, len(h.eps)))
	}
	return h.eps[rank]
}

// InstrTime is zero on host: the instructions were really executed, so
// their cost is already in the wall clock.
func (h *Platform) InstrTime(int64) platform.Duration { return 0 }

// Spawn starts fn on its own goroutine immediately. A panic other than the
// internal unwind sentinel records the first failure and wakes every
// blocked process so Run can return it.
func (h *Platform) Spawn(name string, fn func(p platform.Proc)) {
	h.wg.Add(1)
	p := &proc{h: h, name: name}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(killSentinel); !killed {
					h.fail(fmt.Errorf("host: process %q panicked: %v\n%s", name, r, debug.Stack()))
				}
			}
			h.wg.Done()
		}()
		fn(p)
	}()
}

// Run waits for every spawned process to finish. The horizon is ignored:
// wall time has no calendar to bound (callers wanting a wall-clock cap use
// test or command timeouts).
func (h *Platform) Run(platform.Duration) error {
	h.wg.Wait()
	h.failMu.Lock()
	defer h.failMu.Unlock()
	return h.failure
}

// Now reports wall-clock nanoseconds since the platform was created.
func (h *Platform) Now() platform.Time { return platform.Time(time.Since(h.start)) }

// Events is zero: there is no event calendar on host.
func (h *Platform) Events() uint64 { return 0 }

// Traffic returns a snapshot of accumulated wire traffic. Message and byte
// counts are real; there is no dropped/retransmit accounting (delivery is
// reliable and immediate).
func (h *Platform) Traffic() platform.TrafficStats {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	return h.stats
}

// Concurrent is true: processes are real goroutines, so shared runtime
// state must be synchronized.
func (h *Platform) Concurrent() bool { return true }

// fail records the first failure and wakes every blocked receiver; their
// Recv panics with the unwind sentinel, draining the WaitGroup.
func (h *Platform) fail(err error) {
	h.failMu.Lock()
	if h.failure == nil {
		h.failure = err
	}
	h.failMu.Unlock()
	h.failed.Store(true)
	for _, e := range h.eps {
		e.mu.Lock()
		for _, b := range e.boxes {
			b.cond.Broadcast()
		}
		e.mu.Unlock()
	}
}

func (h *Platform) account(msg platform.Message) {
	h.statsMu.Lock()
	h.stats.Messages++
	h.stats.Bytes += uint64(msg.Bytes)
	switch msg.Class {
	case platform.ClassQueue:
		h.stats.QueueMessages++
		h.stats.QueueBytes += uint64(msg.Bytes)
	case platform.ClassPage:
		h.stats.PageMessages++
		h.stats.PageBytes += uint64(msg.Bytes)
	default:
		h.stats.ControlMessages++
		h.stats.ControlBytes += uint64(msg.Bytes)
	}
	if h.nodeOf(msg.From) == h.nodeOf(msg.To) {
		h.stats.IntraNodeBytes += uint64(msg.Bytes)
	} else {
		h.stats.InterNodeBytes += uint64(msg.Bytes)
	}
	h.statsMu.Unlock()
}

// proc is a live goroutine's platform handle.
type proc struct {
	h    *Platform
	name string
}

// Advance spends d of wall time. Zero and negative durations (every
// instruction charge on host) return immediately; short positive ones —
// poll backoffs — yield the processor; long ones sleep. The failure check
// unwinds poll loops that would otherwise spin after another process died.
func (p *proc) Advance(d platform.Duration) {
	if p.h.failed.Load() {
		panic(killSentinel{})
	}
	if d <= 0 {
		return
	}
	if d < sleepFloor {
		runtime.Gosched()
		return
	}
	time.Sleep(time.Duration(d))
}

// Yield lets other goroutines run.
func (p *proc) Yield() { runtime.Gosched() }

// Now reports wall-clock time since the platform started.
func (p *proc) Now() platform.Time { return p.h.Now() }

// Advanced is zero: host processes have no charged busy time.
func (p *proc) Advanced() platform.Duration { return 0 }

// Blocked is zero: host processes have no accounted blocking time.
func (p *proc) Blocked() platform.Duration { return 0 }

// Name reports the process name given at Spawn.
func (p *proc) Name() string { return p.name }

type mbKey struct{ from, tag int }

// endpoint is one rank's mailbox set. A single per-endpoint mutex guards
// the box map and every box's buffer, which makes delivery-box selection
// and the any-source migration in boxLocked atomic with respect to each
// other.
type endpoint struct {
	h     *Platform
	rank  int
	mu    sync.Mutex
	boxes map[mbKey]*mailbox
}

// mailbox is one (source, tag) receive queue; cond shares the endpoint
// mutex.
type mailbox struct {
	e    *endpoint
	cond sync.Cond
	buf  []platform.Message
	// auto marks a box created by delivery before any receiver registered
	// it; any-source registration may fold such boxes in (see boxLocked).
	auto bool
}

// Rank reports this endpoint's rank.
func (e *endpoint) Rank() int { return e.rank }

// Node reports the node this endpoint is attributed to.
func (e *endpoint) Node() int { return e.h.nodeOf(e.rank) }

// Mailbox returns (creating if needed) the mailbox for (from, tag).
func (e *endpoint) Mailbox(from, tag int) platform.Mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.boxLocked(from, tag, false)
}

// boxLocked returns or creates the (from, tag) box; e.mu must be held.
// Unlike vtime — where registration always happens before traffic because
// startup is cooperative — a host sender can race a receiver's any-source
// registration, parking early messages in auto-created exact boxes. When a
// receiver registers the any-source box for a tag, those stray boxes are
// drained into it and deleted, so neither the queued messages nor future
// sends from the same source can strand behind an exact match.
func (e *endpoint) boxLocked(from, tag int, auto bool) *mailbox {
	key := mbKey{from, tag}
	if b, ok := e.boxes[key]; ok {
		if !auto {
			b.auto = false
		}
		return b
	}
	b := &mailbox{e: e, auto: auto}
	b.cond.L = &e.mu
	if from == platform.AnySource {
		for k, eb := range e.boxes {
			if k.tag == tag && eb.auto {
				b.buf = append(b.buf, eb.buf...)
				delete(e.boxes, k)
			}
		}
	}
	e.boxes[key] = b
	return b
}

// deliver routes a message exactly like the vtime endpoint: exact box if
// registered, else the any-source box for the tag, else a fresh exact box.
func (e *endpoint) deliver(msg platform.Message) {
	e.mu.Lock()
	var b *mailbox
	if eb, ok := e.boxes[mbKey{msg.From, msg.Tag}]; ok {
		b = eb
	} else if ab, ok := e.boxes[mbKey{platform.AnySource, msg.Tag}]; ok {
		b = ab
	} else {
		b = e.boxLocked(msg.From, msg.Tag, true)
	}
	b.buf = append(b.buf, msg)
	b.cond.Signal()
	e.mu.Unlock()
}

// Send injects a message; delivery is immediate and reliable.
func (e *endpoint) Send(to, tag int, payload any, bytes int) {
	e.SendClass(to, tag, payload, bytes, platform.ClassControl)
}

// SendClass is Send with an explicit traffic class.
func (e *endpoint) SendClass(to, tag int, payload any, bytes int, class platform.MsgClass) {
	if bytes < 0 {
		panic("host: negative message size")
	}
	msg := platform.Message{From: e.rank, To: to, Tag: tag, Payload: payload, Bytes: bytes, Class: class}
	e.h.account(msg)
	e.h.endpoint(to).deliver(msg)
}

// Recv blocks until a matching message arrives.
func (e *endpoint) Recv(p platform.Proc, from, tag int) platform.Message {
	msg, ok := e.Mailbox(from, tag).Recv(p)
	if !ok {
		panic("host: mailbox closed")
	}
	return msg
}

// TryRecv returns a pending matching message without blocking.
func (e *endpoint) TryRecv(from, tag int) (platform.Message, bool) {
	return e.Mailbox(from, tag).TryRecv()
}

// Recv dequeues a message, blocking until one arrives. It unwinds with the
// kill sentinel if the platform has failed, so a dead peer cannot leave
// this process parked forever.
func (b *mailbox) Recv(platform.Proc) (platform.Message, bool) {
	b.e.mu.Lock()
	for len(b.buf) == 0 {
		if b.e.h.failed.Load() {
			b.e.mu.Unlock()
			panic(killSentinel{})
		}
		b.cond.Wait()
	}
	msg := b.buf[0]
	b.buf = b.buf[1:]
	b.e.mu.Unlock()
	return msg, true
}

// TryRecv dequeues a pending message without blocking.
func (b *mailbox) TryRecv() (platform.Message, bool) {
	b.e.mu.Lock()
	defer b.e.mu.Unlock()
	if len(b.buf) == 0 {
		return platform.Message{}, false
	}
	msg := b.buf[0]
	b.buf = b.buf[1:]
	return msg, true
}
