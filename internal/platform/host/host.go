// Package host executes the DSMTX runtime live on host threads: every
// platform process is a real goroutine, the clock is the wall clock, and
// messages move through lock-free ring mailboxes (see ring.go) with no
// modelled latency, bandwidth, or instruction cost. The protocol above is
// identical to the vtime backend — same speculation, forwarding, validation,
// commit, and recovery paths — but interleaving is whatever the Go scheduler
// produces, so only protocol outcomes (committed MTX counts, output
// checksums) are reproducible, not timings.
//
// Deliberately unmodelled here: NIC serialization and latency (sends
// deliver immediately), per-instruction CPU charges (InstrTime is zero —
// real instructions already cost real time), and the vtime-only subsystems
// (fault injection, heartbeat timers), which core.Config.Validate rejects
// for this backend. Observability is supported: SetTracer attaches the
// wall-clock tracer, instrumenting the delivery layer itself — ring
// enqueue/dequeue, CAS retries, overflow spills, spin-vs-park outcomes,
// wake signals, park latency — with resolved atomic metric handles, so the
// instrumented hot path stays lock- and allocation-free and the
// tracer-nil path is one pointer check.
package host

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
)

// sleepFloor is the shortest Advance the OS timer can honor usefully; below
// it (poll backoffs are 100 ns–1.6 µs) Advance yields the processor instead
// of sleeping, keeping poll loops responsive without busy-burning a core.
const sleepFloor = 100 * platform.Microsecond

// killSentinel unwinds a blocked process goroutine after another process
// has failed, so Run can return instead of deadlocking.
type killSentinel struct{}

// Platform is a live-goroutine execution world.
type Platform struct {
	ranks  int
	nodeOf func(int) int
	start  time.Time
	eps    []*endpoint
	wg     sync.WaitGroup

	// tel is the delivery-layer instrumentation (nil = uninstrumented; hot
	// paths pay one pointer check). Set before Spawn via SetTracer.
	tel *telemetry

	// remote, when set, diverts sends to ranks that are not local to this
	// process (nil = every rank is local; hot paths pay one pointer check).
	// Set before Spawn via SetRemote; the net backend installs it.
	remote *remoteHook

	failed   atomic.Bool
	down     chan struct{} // closed on first failure; unparks blocked receivers
	downOnce sync.Once
	failMu   sync.Mutex
	failure  error
}

// telemetry holds the tracer and its resolved metric handles for the
// delivery layer. Handles are atomic instruments resolved once here, so the
// ring hot paths never touch the registry's name map.
type telemetry struct {
	tr *trace.Tracer

	cEnq     *trace.Counter   // host.ring.enqueue: messages placed in a ring slot
	cDeq     *trace.Counter   // host.ring.dequeue: messages consumed (ring or overflow)
	cCAS     *trace.Counter   // host.ring.cas.retry: producer claim retries under contention
	cSpill   *trace.Counter   // host.ring.spill: messages spilled to an overflow list
	cUnspill *trace.Counter   // host.ring.unspill: messages folded back from overflow
	cSpinHit *trace.Counter   // host.recv.spin: blocking receives satisfied within the spin budget
	cPark    *trace.Counter   // host.recv.park: blocking receives that parked
	cWake    *trace.Counter   // host.recv.wake: wake tokens sent to parked receivers
	gDepth   *trace.Gauge     // host.ring.depth: ring occupancy at enqueue (max = high-water)
	hParkNs  *trace.Histogram // host.recv.park.ns: wall time per park
}

// SetTracer attaches the wall-clock tracer to the delivery layer. Must be
// called before Spawn (core binds it at System construction). A nil tracer
// leaves the platform on the uninstrumented path.
func (h *Platform) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	m := tr.Metrics()
	h.tel = &telemetry{
		tr:       tr,
		cEnq:     m.Counter("host.ring.enqueue"),
		cDeq:     m.Counter("host.ring.dequeue"),
		cCAS:     m.Counter("host.ring.cas.retry"),
		cSpill:   m.Counter("host.ring.spill"),
		cUnspill: m.Counter("host.ring.unspill"),
		cSpinHit: m.Counter("host.recv.spin"),
		cPark:    m.Counter("host.recv.park"),
		cWake:    m.Counter("host.recv.wake"),
		gDepth:   m.Gauge("host.ring.depth"),
		hParkNs:  m.Histogram("host.recv.park.ns"),
	}
}

// remoteHook is the transport seam a distributed backend installs: local
// decides whether a destination rank lives in this process, send ships a
// fully-formed message (already accounted) to its owner.
type remoteHook struct {
	local func(rank int) bool
	send  func(msg platform.Message)
}

// SetRemote installs the remote-rank transport hook. Must be called before
// Spawn. Sends to ranks for which local reports false are handed to send
// after traffic accounting instead of being delivered to an in-process
// mailbox; messages arriving from other processes enter through Inject.
func (h *Platform) SetRemote(local func(rank int) bool, send func(msg platform.Message)) {
	h.remote = &remoteHook{local: local, send: send}
}

// Inject delivers a message that originated in another process into the
// destination rank's mailboxes, exactly as a local send would. Safe to call
// from any goroutine (transport readers call it concurrently).
func (h *Platform) Inject(msg platform.Message) {
	h.endpoint(msg.To).deliver(msg)
}

// Abort fails the platform from outside a proc — the transport calls it
// when a connection dies — unwinding every blocked receiver so Run returns
// the error instead of deadlocking on ranks that will never hear again.
func (h *Platform) Abort(err error) { h.fail(err) }

// RankDelivery reports a rank's endpoint-level delivery accounting: wall
// nanoseconds parked in mailbox waits, the number of parks, and overflow
// spills into the rank's mailboxes. All zero unless a tracer is attached.
// Read after Run for the stall report's host columns.
func (h *Platform) RankDelivery(rank int) (parkNs int64, parks, spills uint64) {
	e := h.endpoint(rank)
	return e.del.parkNs.Load(), e.del.parks.Load(), e.del.spills.Load()
}

// New builds a host platform with the given number of rank endpoints.
// nodeOf assigns ranks to nodes for traffic attribution only (there is no
// placement-dependent timing on host); nil places every rank on node 0.
func New(ranks int, nodeOf func(int) int) *Platform {
	if ranks < 1 {
		panic(fmt.Sprintf("host: ranks = %d, need >= 1", ranks))
	}
	if nodeOf == nil {
		nodeOf = func(int) int { return 0 }
	}
	h := &Platform{ranks: ranks, nodeOf: nodeOf, start: time.Now(), down: make(chan struct{})}
	h.eps = make([]*endpoint, ranks)
	for r := range h.eps {
		h.eps[r] = &endpoint{h: h, rank: r, boxes: make(map[mbKey]*mailbox)}
	}
	return h
}

// Reset returns a finished platform to its just-built state so a pooled
// rank set can run another job without reallocating endpoints: the wall
// clock restarts, every mailbox registration and traffic counter is
// cleared, and the failure latch is re-armed. Callers must only invoke it
// after Run has returned (no process goroutines are live); the endpoint
// array itself — the expensive part — is retained.
func (h *Platform) Reset() {
	h.start = time.Now()
	h.failed.Store(false)
	h.failMu.Lock()
	h.failure = nil
	h.failMu.Unlock()
	h.down = make(chan struct{})
	h.downOnce = sync.Once{}
	for _, e := range h.eps {
		e.boxes = make(map[mbKey]*mailbox)
		s := &e.stats
		s.messages.Store(0)
		s.bytes.Store(0)
		s.queueMsgs.Store(0)
		s.queueBytes.Store(0)
		s.pageMsgs.Store(0)
		s.pageBytes.Store(0)
		s.ctrlMsgs.Store(0)
		s.ctrlBytes.Store(0)
		s.intraBytes.Store(0)
		s.interBytes.Store(0)
		e.del.parkNs.Store(0)
		e.del.parks.Store(0)
		e.del.spills.Store(0)
	}
}

// Name identifies the backend.
func (h *Platform) Name() string { return "host" }

// Ranks reports the number of endpoints.
func (h *Platform) Ranks() int { return h.ranks }

// NodeOf reports the node a rank is attributed to.
func (h *Platform) NodeOf(rank int) int { return h.nodeOf(rank) }

// Endpoint returns the communication endpoint for a rank.
func (h *Platform) Endpoint(rank int) platform.Endpoint { return h.endpoint(rank) }

func (h *Platform) endpoint(rank int) *endpoint {
	if rank < 0 || rank >= len(h.eps) {
		panic(fmt.Sprintf("host: rank %d out of range [0,%d)", rank, len(h.eps)))
	}
	return h.eps[rank]
}

// InstrTime is zero on host: the instructions were really executed, so
// their cost is already in the wall clock.
func (h *Platform) InstrTime(int64) platform.Duration { return 0 }

// Spawn starts fn on its own goroutine immediately. A panic other than the
// internal unwind sentinel records the first failure and wakes every
// blocked process so Run can return it.
func (h *Platform) Spawn(name string, fn func(p platform.Proc)) {
	h.wg.Add(1)
	p := &proc{h: h, name: name}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(killSentinel); !killed {
					h.fail(fmt.Errorf("host: process %q panicked: %v\n%s", name, r, debug.Stack()))
				}
			}
			h.wg.Done()
		}()
		fn(p)
	}()
}

// Run waits for every spawned process to finish. The horizon is ignored:
// wall time has no calendar to bound (callers wanting a wall-clock cap use
// test or command timeouts).
func (h *Platform) Run(platform.Duration) error {
	h.wg.Wait()
	h.failMu.Lock()
	defer h.failMu.Unlock()
	return h.failure
}

// Now reports wall-clock nanoseconds since the platform was created.
func (h *Platform) Now() platform.Time { return platform.Time(time.Since(h.start)) }

// Events is zero: there is no event calendar on host.
func (h *Platform) Events() uint64 { return 0 }

// Traffic sums the per-endpoint counters into a snapshot. Message and byte
// counts are real; there is no dropped/retransmit accounting (delivery is
// reliable and immediate).
func (h *Platform) Traffic() platform.TrafficStats {
	var t platform.TrafficStats
	for _, e := range h.eps {
		s := &e.stats
		t.Messages += s.messages.Load()
		t.Bytes += s.bytes.Load()
		t.QueueMessages += s.queueMsgs.Load()
		t.QueueBytes += s.queueBytes.Load()
		t.PageMessages += s.pageMsgs.Load()
		t.PageBytes += s.pageBytes.Load()
		t.ControlMessages += s.ctrlMsgs.Load()
		t.ControlBytes += s.ctrlBytes.Load()
		t.IntraNodeBytes += s.intraBytes.Load()
		t.InterNodeBytes += s.interBytes.Load()
	}
	return t
}

// Concurrent is true: processes are real goroutines, so shared runtime
// state must be synchronized.
func (h *Platform) Concurrent() bool { return true }

// fail records the first failure and closes the down channel; every parked
// receiver's select wakes, re-checks failed, and panics with the unwind
// sentinel, draining the WaitGroup.
func (h *Platform) fail(err error) {
	h.failMu.Lock()
	if h.failure == nil {
		h.failure = err
	}
	h.failMu.Unlock()
	h.failed.Store(true)
	h.downOnce.Do(func() { close(h.down) })
}

// proc is a live goroutine's platform handle.
type proc struct {
	h    *Platform
	name string
}

// Advance spends d of wall time. Zero and negative durations (every
// instruction charge on host) return immediately; short positive ones —
// poll backoffs — yield the processor; long ones sleep. The failure check
// unwinds poll loops that would otherwise spin after another process died.
func (p *proc) Advance(d platform.Duration) {
	if p.h.failed.Load() {
		panic(killSentinel{})
	}
	if d <= 0 {
		return
	}
	if d < sleepFloor {
		runtime.Gosched()
		return
	}
	time.Sleep(time.Duration(d))
}

// Yield lets other goroutines run.
func (p *proc) Yield() { runtime.Gosched() }

// Now reports wall-clock time since the platform started.
func (p *proc) Now() platform.Time { return p.h.Now() }

// Advanced is zero: host processes have no charged busy time.
func (p *proc) Advanced() platform.Duration { return 0 }

// Blocked is zero: host processes have no accounted blocking time.
func (p *proc) Blocked() platform.Duration { return 0 }

// Name reports the process name given at Spawn.
func (p *proc) Name() string { return p.name }

type mbKey struct{ from, tag int }

// epStats is one endpoint's sender-side traffic accounting. Plain atomics:
// sends from different ranks touch different endpoints, so the old global
// stats mutex would have been the last cross-rank serialization point on
// the send path.
type epStats struct {
	messages   atomic.Uint64
	bytes      atomic.Uint64
	queueMsgs  atomic.Uint64
	queueBytes atomic.Uint64
	pageMsgs   atomic.Uint64
	pageBytes  atomic.Uint64
	ctrlMsgs   atomic.Uint64
	ctrlBytes  atomic.Uint64
	intraBytes atomic.Uint64
	interBytes atomic.Uint64
}

// endpoint is one rank's mailbox set. The RWMutex guards only the box map:
// delivery takes the read lock (many senders in parallel) and enqueues into
// the lock-free mailbox while still holding it, so an any-source migration
// (write lock) can never fold a box while a delivery into it is in flight —
// the message is either in the box before the fold drains it, or routed
// after the fold sees the new any-source box.
type endpoint struct {
	h     *Platform
	rank  int
	mu    sync.RWMutex
	boxes map[mbKey]*mailbox
	stats epStats
	del   epDelivery
}

// epDelivery is one endpoint's receiver-side delivery accounting, updated
// only when a tracer is attached (see Platform.RankDelivery).
type epDelivery struct {
	parkNs atomic.Int64
	parks  atomic.Uint64
	spills atomic.Uint64
}

// Rank reports this endpoint's rank.
func (e *endpoint) Rank() int { return e.rank }

// Node reports the node this endpoint is attributed to.
func (e *endpoint) Node() int { return e.h.nodeOf(e.rank) }

// Mailbox returns (creating if needed) the mailbox for (from, tag).
func (e *endpoint) Mailbox(from, tag int) platform.Mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.boxLocked(from, tag, false)
}

// boxLocked returns or creates the (from, tag) box; e.mu must be held for
// writing. Unlike vtime — where registration always happens before traffic
// because startup is cooperative — a host sender can race a receiver's
// any-source registration, parking early messages in auto-created exact
// boxes. When a receiver registers the any-source box for a tag, those
// stray boxes are drained into it and deleted, so neither the queued
// messages nor future sends from the same source can strand behind an
// exact match.
func (e *endpoint) boxLocked(from, tag int, auto bool) *mailbox {
	key := mbKey{from, tag}
	if b, ok := e.boxes[key]; ok {
		if !auto {
			b.auto = false
		}
		return b
	}
	b := newMailbox(e, tag, auto)
	if from == platform.AnySource {
		for k, eb := range e.boxes {
			if k.tag == tag && eb.auto {
				eb.drainInto(b)
				delete(e.boxes, k)
			}
		}
	}
	e.boxes[key] = b
	return b
}

// deliver routes a message exactly like the vtime endpoint: exact box if
// registered, else the any-source box for the tag, else a fresh exact box.
// The fast path — box already exists — runs under the read lock only.
func (e *endpoint) deliver(msg platform.Message) {
	e.mu.RLock()
	b, ok := e.boxes[mbKey{msg.From, msg.Tag}]
	if !ok {
		b, ok = e.boxes[mbKey{platform.AnySource, msg.Tag}]
	}
	if ok {
		b.enqueue(msg)
		e.mu.RUnlock()
		return
	}
	e.mu.RUnlock()
	// No box yet: take the write lock and re-resolve — a racing receiver
	// may have registered (or another delivery auto-created) a box in the
	// gap, and enqueueing into a stale choice would strand the message.
	e.mu.Lock()
	b, ok = e.boxes[mbKey{msg.From, msg.Tag}]
	if !ok {
		b, ok = e.boxes[mbKey{platform.AnySource, msg.Tag}]
	}
	if !ok {
		b = e.boxLocked(msg.From, msg.Tag, true)
	}
	b.enqueue(msg)
	e.mu.Unlock()
}

// Send injects a message; delivery is immediate and reliable.
func (e *endpoint) Send(to, tag int, payload any, bytes int) {
	e.SendClass(to, tag, payload, bytes, platform.ClassControl)
}

// SendClass is Send with an explicit traffic class.
func (e *endpoint) SendClass(to, tag int, payload any, bytes int, class platform.MsgClass) {
	if bytes < 0 {
		panic("host: negative message size")
	}
	msg := platform.Message{From: e.rank, To: to, Tag: tag, Payload: payload, Bytes: bytes, Class: class}
	e.account(msg)
	if rh := e.h.remote; rh != nil && !rh.local(to) {
		rh.send(msg)
		return
	}
	e.h.endpoint(to).deliver(msg)
}

func (e *endpoint) account(msg platform.Message) {
	s := &e.stats
	s.messages.Add(1)
	s.bytes.Add(uint64(msg.Bytes))
	switch msg.Class {
	case platform.ClassQueue:
		s.queueMsgs.Add(1)
		s.queueBytes.Add(uint64(msg.Bytes))
	case platform.ClassPage:
		s.pageMsgs.Add(1)
		s.pageBytes.Add(uint64(msg.Bytes))
	default:
		s.ctrlMsgs.Add(1)
		s.ctrlBytes.Add(uint64(msg.Bytes))
	}
	if e.h.nodeOf(msg.From) == e.h.nodeOf(msg.To) {
		s.intraBytes.Add(uint64(msg.Bytes))
	} else {
		s.interBytes.Add(uint64(msg.Bytes))
	}
}

// Recv blocks until a matching message arrives.
func (e *endpoint) Recv(p platform.Proc, from, tag int) platform.Message {
	msg, ok := e.Mailbox(from, tag).Recv(p)
	if !ok {
		panic("host: mailbox closed")
	}
	return msg
}

// TryRecv returns a pending matching message without blocking.
func (e *endpoint) TryRecv(from, tag int) (platform.Message, bool) {
	return e.Mailbox(from, tag).TryRecv()
}
