package host

import (
	"fmt"
	"sync"
	"testing"

	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
)

func testBox(t *testing.T) *mailbox {
	t.Helper()
	h := New(2, nil)
	return h.endpoint(1).Mailbox(0, 1).(*mailbox)
}

// TestRingWraparound pushes several full laps through the ring and checks
// FIFO order across the seq-number wrap at each lap boundary.
func TestRingWraparound(t *testing.T) {
	b := testBox(t)
	const laps = 3
	next := 0
	for lap := 0; lap < laps; lap++ {
		for i := 0; i < ringSize; i++ {
			b.enqueue(platform.Message{Bytes: lap*ringSize + i})
		}
		for {
			msg, ok := b.tryDequeue()
			if !ok {
				break
			}
			if msg.Bytes != next {
				t.Fatalf("dequeued %d, want %d", msg.Bytes, next)
			}
			next++
		}
	}
	if next != laps*ringSize {
		t.Fatalf("consumed %d messages, want %d", next, laps*ringSize)
	}
}

// TestRingEmptyAndFullBoundaries pins the two boundary behaviours: an empty
// ring reports no message, and filling past capacity spills to the overflow
// list without losing order — including the stragglers rule, where ring
// entries published before a spill drain before the spilled ones.
func TestRingEmptyAndFullBoundaries(t *testing.T) {
	b := testBox(t)
	if _, ok := b.tryDequeue(); ok {
		t.Fatal("empty ring produced a message")
	}
	total := ringSize + 50 // forces 50 spills
	for i := 0; i < total; i++ {
		b.enqueue(platform.Message{Bytes: i})
	}
	if !b.ovSet.Load() {
		t.Fatal("overfilled ring did not set the overflow flag")
	}
	for i := 0; i < total; i++ {
		msg, ok := b.tryDequeue()
		if !ok {
			t.Fatalf("ring+overflow dry after %d of %d messages", i, total)
		}
		if msg.Bytes != i {
			t.Fatalf("dequeued %d at position %d", msg.Bytes, i)
		}
	}
	if _, ok := b.tryDequeue(); ok {
		t.Fatal("drained ring produced a message")
	}
	if b.ovSet.Load() {
		t.Fatal("overflow flag survived a full drain")
	}
	// The box must return to pure ring operation after the drain.
	b.enqueue(platform.Message{Bytes: 7})
	if msg, ok := b.tryDequeue(); !ok || msg.Bytes != 7 {
		t.Fatalf("post-overflow enqueue: %+v ok=%v", msg, ok)
	}
}

// TestRingBatchDrain checks TryRecvBatch takes the whole backlog — ring and
// overflow — in one call, in order.
func TestRingBatchDrain(t *testing.T) {
	b := testBox(t)
	total := ringSize + 10
	for i := 0; i < total; i++ {
		b.enqueue(platform.Message{Bytes: i})
	}
	got := b.TryRecvBatch(nil)
	if len(got) != total {
		t.Fatalf("batch drained %d, want %d", len(got), total)
	}
	for i, msg := range got {
		if msg.Bytes != i {
			t.Fatalf("batch[%d] = %d", i, msg.Bytes)
		}
	}
}

// TestAnySourceMigrationOrder delivers from several sources into auto-created
// exact boxes, then registers the any-source box and checks per-source FIFO
// order survives the fold (cross-source order is unspecified).
func TestAnySourceMigrationOrder(t *testing.T) {
	h := New(4, nil)
	const perSource = ringSize + 20 // the fold must carry overflow too
	for i := 0; i < perSource; i++ {
		for src := 0; src < 3; src++ {
			h.Endpoint(src).Send(3, 9, nil, i)
		}
	}
	box := h.Endpoint(3).Mailbox(platform.AnySource, 9)
	nextFrom := map[int]int{}
	n := 0
	for {
		msg, ok := box.TryRecv()
		if !ok {
			break
		}
		if msg.Bytes != nextFrom[msg.From] {
			t.Fatalf("source %d delivered %d, want %d", msg.From, msg.Bytes, nextFrom[msg.From])
		}
		nextFrom[msg.From]++
		n++
	}
	if n != 3*perSource {
		t.Fatalf("migrated %d messages, want %d", n, 3*perSource)
	}
}

// TestRingMultiProducerStress hammers one mailbox from many concurrent
// producers while the consumer drains under the blocking Recv path; with
// -race this is the data-race audit of the ring, overflow, and park/wake
// machinery. Per-producer FIFO must hold even across overflow spills.
func TestRingMultiProducerStress(t *testing.T) {
	const producers = 8
	perProducer := 20000
	if testing.Short() {
		perProducer = 2000
	}
	h := New(producers+1, nil)
	box := h.Endpoint(producers).Mailbox(platform.AnySource, 5)
	var wg sync.WaitGroup
	for src := 0; src < producers; src++ {
		wg.Add(1)
		h.Spawn(fmt.Sprintf("producer%d", src), func(p platform.Proc) {
			defer wg.Done()
			ep := h.Endpoint(src)
			for i := 0; i < perProducer; i++ {
				ep.Send(producers, 5, nil, i)
			}
		})
	}
	var consumeErr error
	h.Spawn("consumer", func(p platform.Proc) {
		nextFrom := make([]int, producers)
		for n := 0; n < producers*perProducer; n++ {
			msg, _ := box.Recv(p)
			if msg.Bytes != nextFrom[msg.From] {
				consumeErr = fmt.Errorf("source %d delivered %d, want %d (message %d)",
					msg.From, msg.Bytes, nextFrom[msg.From], n)
				return
			}
			nextFrom[msg.From]++
		}
	})
	if err := h.Run(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if consumeErr != nil {
		t.Fatal(consumeErr)
	}
	if msg, ok := box.TryRecv(); ok {
		t.Fatalf("stray message after full consumption: %+v", msg)
	}
}

// TestRingSpillCountersStorm drives an 8-producer overflow storm into one
// unconsumed mailbox with the delivery telemetry attached, then drains it
// single-threaded. The counters must be exact — every message is either a
// ring enqueue or a spill, every spill is eventually unspilled, every
// message is dequeued exactly once — and the once-spilled-always-spill rule
// must keep per-producer FIFO order across the ring/overflow boundary.
// Under -race this doubles as the data-race audit of the counter hooks.
func TestRingSpillCountersStorm(t *testing.T) {
	const producers = 8
	perProducer := 4000
	if testing.Short() {
		perProducer = 500
	}
	h := New(producers+1, nil)
	tr := trace.NewMetricsOnly()
	h.SetTracer(tr)
	box := h.Endpoint(producers).Mailbox(platform.AnySource, 5)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for src := 0; src < producers; src++ {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ep := h.Endpoint(src)
			for i := 0; i < perProducer; i++ {
				ep.Send(producers, 5, nil, i)
			}
		}()
	}
	close(start)
	wg.Wait()

	// No consumer ran, so all but ringSize messages must have spilled.
	total := uint64(producers * perProducer)
	m := tr.Metrics()
	if spills := m.Counter("host.ring.spill").Value(); spills < total-ringSize {
		t.Fatalf("spills = %d, want >= %d (ring holds only %d)", spills, total-ringSize, ringSize)
	}

	nextFrom := make([]int, producers)
	for n := uint64(0); n < total; n++ {
		msg, ok := box.TryRecv()
		if !ok {
			t.Fatalf("backlog dry after %d of %d messages", n, total)
		}
		if msg.Bytes != nextFrom[msg.From] {
			t.Fatalf("source %d delivered %d, want %d: spill broke per-producer FIFO",
				msg.From, msg.Bytes, nextFrom[msg.From])
		}
		nextFrom[msg.From]++
	}
	if msg, ok := box.TryRecv(); ok {
		t.Fatalf("stray message after full drain: %+v", msg)
	}

	enq := m.Counter("host.ring.enqueue").Value()
	deq := m.Counter("host.ring.dequeue").Value()
	spill := m.Counter("host.ring.spill").Value()
	unspill := m.Counter("host.ring.unspill").Value()
	if enq+spill != total {
		t.Errorf("enqueue %d + spill %d != %d sends", enq, spill, total)
	}
	if deq != total {
		t.Errorf("dequeue = %d, want %d", deq, total)
	}
	if unspill != spill {
		t.Errorf("unspill = %d, want %d (every spilled message folds back exactly once)", unspill, spill)
	}
	if _, _, epSpills := h.RankDelivery(producers); epSpills != spill {
		t.Errorf("RankDelivery spills = %d, counter says %d", epSpills, spill)
	}
}

// TestInstrumentedRingOpsAllocFree pins the instrumented hot path at zero
// allocations: attaching the tracer must cost counters' atomic adds only,
// never a heap allocation, on the enqueue/dequeue cycle.
func TestInstrumentedRingOpsAllocFree(t *testing.T) {
	h := New(2, nil)
	h.SetTracer(trace.NewMetricsOnly())
	box := h.Endpoint(1).Mailbox(0, 1).(*mailbox)
	allocs := testing.AllocsPerRun(1000, func() {
		box.enqueue(platform.Message{From: 0, Tag: 1})
		if _, ok := box.tryDequeue(); !ok {
			t.Fatal("enqueued message not dequeued")
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented enqueue/dequeue allocates %.1f per op, want 0", allocs)
	}
}

// TestRingParkWake forces the consumer past its spin budget so the
// park/wake handshake (not just opportunistic polling) moves the message.
func TestRingParkWake(t *testing.T) {
	h := New(2, nil)
	box := h.Endpoint(1).Mailbox(0, 2)
	release := make(chan struct{})
	var got platform.Message
	h.Spawn("receiver", func(p platform.Proc) {
		close(release) // receiver is live; it will exhaust its spins and park
		got, _ = box.Recv(p)
	})
	h.Spawn("sender", func(p platform.Proc) {
		<-release
		// Give the receiver time to burn its spin budget and park. Not
		// deterministic, but both outcomes (wake from park, last-poll catch)
		// must deliver; under -race and repeated CI runs the parked path is
		// exercised with overwhelming probability.
		for i := 0; i < 10000; i++ {
			p.Yield()
		}
		h.Endpoint(0).Send(1, 2, "wake", 4)
	})
	if err := h.Run(0); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "wake" {
		t.Fatalf("received %+v", got)
	}
}
