// Lock-free mailbox for the host backend.
//
// Each (source, tag) mailbox is a bounded Vyukov-style ring buffer — multi-
// producer because several sender goroutines (and any-source aggregation)
// can target one box, single-consumer because a mailbox belongs to exactly
// one receiving rank. The common case — deliver, poll, drain — touches only
// atomics: no mutex, no cond, no channel operation. Two slow paths preserve
// the old mutex mailbox's semantics:
//
//   - Overflow. The protocol assumes unbounded mailboxes (queue Window=0
//     means any number of batches may be in flight), so a full ring must not
//     block or drop. Producers that find the ring full append to a small
//     mutex-guarded overflow list and set ovSet; while ovSet is up, every
//     producer spills, so ring entries never overtake older overflow
//     entries. The consumer folds overflow back in — after one more ring
//     drain under the same lock, which orders any ring entries published
//     before a spill ahead of the spilled ones — and clears the flag.
//
//   - Parking. A receiver in blocking Recv spins through a bounded budget of
//     polls (yielding the processor between attempts), then parks on a
//     1-token wake channel. Producers notify only when they observe the
//     parked flag — the empty→nonempty transition with a waiting consumer —
//     so a busy consumer costs senders one atomic load, not a futex wake.
//     The platform's down channel, closed on failure, unparks every blocked
//     receiver so a dead peer cannot strand the rest.
package host

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dsmtx/internal/platform"
	"dsmtx/internal/sim"
	"dsmtx/internal/trace"
)

const (
	// ringBits sizes the lock-free buffer: 2^8 = 256 messages per mailbox
	// before producers spill to the overflow list. Queue batches are capped
	// well below this, so spills happen only under extreme receiver lag.
	ringBits = 8
	ringSize = 1 << ringBits
	ringMask = ringSize - 1

	// spinBudget is how many empty polls a blocking Recv tolerates before
	// parking. Each iteration yields the processor, so the budget bounds
	// scheduler pressure, not burned cycles.
	spinBudget = 64
)

// cell is one ring slot. seq is the Vyukov sequence: slot i%ringSize is
// writable for ticket i when seq == i, readable when seq == i+1, and free
// for the next lap once the consumer stores i+ringSize.
type cell struct {
	seq atomic.Uint64
	msg platform.Message
}

// mailbox is one (source, tag) receive queue.
type mailbox struct {
	e   *endpoint
	tag int // the box's message tag (delivery telemetry attribution)
	// auto marks a box created by delivery before any receiver registered
	// it; any-source registration may fold such boxes in (see boxLocked).
	auto bool

	head  atomic.Uint64 // next ticket to consume; written only by the consumer
	tail  atomic.Uint64 // next ticket to produce; CAS-claimed by producers
	cells [ringSize]cell

	ovMu     sync.Mutex
	ovSet    atomic.Bool
	overflow []platform.Message

	// waiting is set by the consumer just before it parks on wake; a
	// producer that clears it sends the single wake token.
	waiting atomic.Bool
	wake    chan struct{}
}

func newMailbox(e *endpoint, tag int, auto bool) *mailbox {
	b := &mailbox{e: e, tag: tag, auto: auto, wake: make(chan struct{}, 1)}
	for i := range b.cells {
		b.cells[i].seq.Store(uint64(i))
	}
	return b
}

// enqueue delivers one message. It never blocks: a full ring spills to the
// overflow list. Safe for any number of concurrent producers.
func (b *mailbox) enqueue(msg platform.Message) {
	tel := b.e.h.tel
	if b.ovSet.Load() {
		// Once one producer has spilled, all producers spill until the
		// consumer drains the list; otherwise a fresh ring entry could be
		// consumed ahead of an older overflow entry from the same sender.
		b.spill(msg)
		return
	}
	pos := b.tail.Load()
	for {
		c := &b.cells[pos&ringMask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if b.tail.CompareAndSwap(pos, pos+1) {
				c.msg = msg
				c.seq.Store(pos + 1)
				if tel != nil {
					tel.cEnq.Inc()
					if d := int64(pos+1) - int64(b.head.Load()); d > 0 {
						tel.gDepth.Set(d)
					}
				}
				b.notify()
				return
			}
			if tel != nil {
				tel.cCAS.Inc()
			}
			pos = b.tail.Load()
		case seq < pos:
			// The consumer is a full lap behind this ticket: ring full.
			b.spill(msg)
			return
		default:
			// Another producer advanced tail past us; retry at the front.
			if tel != nil {
				tel.cCAS.Inc()
			}
			pos = b.tail.Load()
		}
	}
}

func (b *mailbox) spill(msg platform.Message) {
	b.ovMu.Lock()
	b.overflow = append(b.overflow, msg)
	depth := len(b.overflow)
	b.ovSet.Store(true)
	b.ovMu.Unlock()
	if tel := b.e.h.tel; tel != nil {
		tel.cSpill.Inc()
		b.e.del.spills.Add(1)
		tel.tr.Instant(trace.InstRingSpill, b.e.rank, 0, int64(b.tag), int64(depth))
	}
	b.notify()
}

// notify wakes a parked consumer. While the consumer is running (the common
// case) this is one atomic load.
func (b *mailbox) notify() {
	if b.waiting.Load() && b.waiting.CompareAndSwap(true, false) {
		if tel := b.e.h.tel; tel != nil {
			tel.cWake.Inc()
		}
		select {
		case b.wake <- struct{}{}:
		default:
		}
	}
}

// tryDequeue pops the oldest available message. Single-consumer only.
func (b *mailbox) tryDequeue() (platform.Message, bool) {
	pos := b.head.Load()
	c := &b.cells[pos&ringMask]
	if c.seq.Load() == pos+1 {
		msg := c.msg
		c.msg = platform.Message{}
		c.seq.Store(pos + ringSize)
		b.head.Store(pos + 1)
		if tel := b.e.h.tel; tel != nil {
			tel.cDeq.Inc()
		}
		return msg, true
	}
	if b.ovSet.Load() {
		return b.unspill()
	}
	return platform.Message{}, false
}

// Depth reports the queued backlog: ring occupancy plus any overflow. Exact
// for the single consumer between its own dequeues; an approximation while
// producers race it. Core's page servers poll it for the per-shard queue
// depth gauge.
func (b *mailbox) Depth() int {
	d := int(int64(b.tail.Load()) - int64(b.head.Load()))
	if d < 0 {
		d = 0
	}
	if b.ovSet.Load() {
		b.ovMu.Lock()
		d += len(b.overflow)
		b.ovMu.Unlock()
	}
	return d
}

// unspill consumes from the overflow list. Acquiring ovMu synchronizes with
// every producer that spilled, which makes their earlier ring publications
// visible — so one more ring check under the lock keeps per-producer FIFO:
// a producer's ring entries are always consumed before its spilled ones.
func (b *mailbox) unspill() (platform.Message, bool) {
	tel := b.e.h.tel
	b.ovMu.Lock()
	pos := b.head.Load()
	c := &b.cells[pos&ringMask]
	if c.seq.Load() == pos+1 {
		msg := c.msg
		c.msg = platform.Message{}
		c.seq.Store(pos + ringSize)
		b.head.Store(pos + 1)
		b.ovMu.Unlock()
		if tel != nil {
			tel.cDeq.Inc()
		}
		return msg, true
	}
	if len(b.overflow) == 0 {
		b.ovSet.Store(false)
		b.ovMu.Unlock()
		return platform.Message{}, false
	}
	msg := b.overflow[0]
	b.overflow[0] = platform.Message{}
	b.overflow = b.overflow[1:]
	if len(b.overflow) == 0 {
		b.overflow = nil
		b.ovSet.Store(false)
	}
	b.ovMu.Unlock()
	if tel != nil {
		tel.cUnspill.Inc()
		tel.cDeq.Inc()
	}
	return msg, true
}

// Recv dequeues a message, spinning through the budget and then parking
// until one arrives. It unwinds with the kill sentinel if the platform has
// failed, so a dead peer cannot leave this process parked forever.
func (b *mailbox) Recv(platform.Proc) (platform.Message, bool) {
	h := b.e.h
	tel := h.tel
	for i := 0; i < spinBudget; i++ {
		if msg, ok := b.tryDequeue(); ok {
			if tel != nil && i > 0 {
				tel.cSpinHit.Inc()
			}
			return msg, true
		}
		if h.failed.Load() {
			panic(killSentinel{})
		}
		runtime.Gosched()
	}
	parked := false
	var parkT0 time.Time
	var spanT0 sim.Time
	for {
		// Publish intent to park, then re-check: a producer that enqueued
		// after our last poll either sees waiting and sends the token, or
		// published its message before our store — this final tryDequeue
		// finds it. Either way no wakeup is lost.
		b.waiting.Store(true)
		if msg, ok := b.tryDequeue(); ok {
			b.waiting.Store(false)
			select {
			case <-b.wake: // drop a token raced in by a producer
			default:
			}
			if parked {
				b.endPark(parkT0, spanT0)
			}
			return msg, true
		}
		if h.failed.Load() {
			b.waiting.Store(false)
			panic(killSentinel{})
		}
		if tel != nil && !parked {
			parked = true
			tel.cPark.Inc()
			b.e.del.parks.Add(1)
			parkT0 = time.Now()
			spanT0 = tel.tr.Now()
		}
		select {
		case <-b.wake:
		case <-h.down:
		}
	}
}

// endPark closes out one park episode: wall time spent parked feeds the
// park-latency histogram, the endpoint's stall attribution, and (when spans
// are on) a recv.park span on the rank's track.
func (b *mailbox) endPark(parkT0 time.Time, spanT0 sim.Time) {
	tel := b.e.h.tel
	if tel == nil {
		return
	}
	d := time.Since(parkT0).Nanoseconds()
	tel.hParkNs.Observe(d)
	b.e.del.parkNs.Add(d)
	tel.tr.Span(trace.SpanRecvPark, b.e.rank, spanT0, 0, int64(b.tag), 0)
}

// TryRecv dequeues a pending message without blocking.
func (b *mailbox) TryRecv() (platform.Message, bool) {
	return b.tryDequeue()
}

// TryRecvBatch appends every immediately available message to into and
// returns the extended slice. One call drains the whole ring (and any
// overflow), replacing a poll-per-message loop on the consumer side.
func (b *mailbox) TryRecvBatch(into []platform.Message) []platform.Message {
	for {
		msg, ok := b.tryDequeue()
		if !ok {
			return into
		}
		into = append(into, msg)
	}
}

// drainInto moves every queued message into dst in order. The caller must
// hold the endpoint write lock, which excludes concurrent producers; auto
// boxes never had a consumer, so the single-consumer rule holds too.
func (b *mailbox) drainInto(dst *mailbox) {
	for {
		msg, ok := b.tryDequeue()
		if !ok {
			return
		}
		dst.enqueue(msg)
	}
}
