// Package vtime adapts the deterministic virtual-time stack — the sim
// discrete-event kernel plus the cluster machine model — to the platform
// interfaces. It is a zero-cost veneer: every method forwards to the same
// kernel/machine call the runtime made before the platform layer existed,
// and sim.Time aliases platform.Time, so vtime executions are bit-identical
// to the pre-platform simulator.
package vtime

import (
	"dsmtx/internal/cluster"
	"dsmtx/internal/platform"
	"dsmtx/internal/sim"
)

// Platform is a virtual-time execution world over one kernel and one
// simulated cluster machine.
type Platform struct {
	k *sim.Kernel
	m *cluster.Machine
	// cfg caches the machine's immutable configuration: InstrTime sits on
	// every mpi charge path, and going through Machine.Config() would copy
	// the whole struct per call.
	cfg cluster.Config
}

// New wraps an existing kernel and machine. Callers that need the vtime-only
// subsystems (fault injection, tracing, heartbeat timers) keep their own
// references to k and m; the runtime protocol sees only the platform.
func New(k *sim.Kernel, m *cluster.Machine) *Platform {
	return &Platform{k: k, m: m, cfg: m.Config()}
}

// Kernel returns the underlying simulation kernel.
func (v *Platform) Kernel() *sim.Kernel { return v.k }

// Machine returns the underlying cluster machine.
func (v *Platform) Machine() *cluster.Machine { return v.m }

// Name identifies the backend.
func (v *Platform) Name() string { return "vtime" }

// Ranks reports the machine's total rank count.
func (v *Platform) Ranks() int { return v.m.Config().Ranks() }

// NodeOf reports the node hosting a rank.
func (v *Platform) NodeOf(rank int) int { return v.m.Config().NodeOf(rank) }

// Endpoint returns the rank's attachment to the simulated interconnect.
func (v *Platform) Endpoint(rank int) platform.Endpoint { return v.m.Endpoint(rank) }

// InstrTime charges instructions at the machine's modelled clock rate.
func (v *Platform) InstrTime(instructions int64) platform.Duration {
	return v.cfg.InstrTime(instructions)
}

// Spawn creates a simulation process; it starts when Run drives the
// calendar.
func (v *Platform) Spawn(name string, fn func(p platform.Proc)) {
	v.k.Spawn(name, func(p *sim.Proc) { fn(p) })
}

// Run drives the event calendar to completion (or to the horizon).
func (v *Platform) Run(horizon platform.Duration) error { return v.k.Run(horizon) }

// Now reports the current virtual time.
func (v *Platform) Now() platform.Time { return v.k.Now() }

// Events reports how many calendar events have fired.
func (v *Platform) Events() uint64 { return v.k.Events() }

// Traffic returns the machine's accumulated wire traffic.
func (v *Platform) Traffic() platform.TrafficStats { return v.m.Stats() }

// Concurrent is false: simulation processes run in strict cooperative
// alternation, so runtime state needs no synchronization.
func (v *Platform) Concurrent() bool { return false }
