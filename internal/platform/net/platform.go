package net

import (
	"fmt"

	"dsmtx/internal/platform"
	"dsmtx/internal/platform/host"
)

// Platform is one invocation's execution platform on the mesh: a fresh
// host platform carrying this daemon's local ranks, with the remote hook
// diverting cross-daemon sends onto the wire. Everything else — mailbox
// rings, spill accounting, wall-clock tracing, /metrics — is the host
// delivery layer, reused unchanged behind the sockets.
type Platform struct {
	*host.Platform
	mesh    *Mesh
	gen     uint64
	ownerOf func(rank int) int
}

// Platform builds and binds the platform for one invocation (generation
// numbers must be strictly increasing within a job). The active ranks —
// the ones the runtime actually spawns — are split contiguously across the
// mesh's daemons; endpoints beyond active (idle cluster ranks) belong to
// the last daemon but are never spawned anywhere. Only local ranks are
// spawned by the caller (LocalRank); every rank has an endpoint so local
// senders can address remote ones.
func (m *Mesh) Platform(gen uint64, ranks, active int) (*Platform, error) {
	daemons := len(m.cfg.Addrs)
	if active > ranks {
		active = ranks
	}
	if active < daemons {
		return nil, fmt.Errorf("net: %d active ranks across %d daemons: need at least one rank per daemon", active, daemons)
	}
	ownerOf := func(rank int) int {
		if rank >= active {
			return daemons - 1
		}
		return rank * daemons / active
	}
	inner := host.New(ranks, ownerOf)
	inner.SetRemote(
		func(rank int) bool { return ownerOf(rank) == m.cfg.Self },
		func(msg platform.Message) { m.send(gen, ownerOf, msg) },
	)
	if err := m.bind(gen, &binding{gen: gen, plat: inner, ownerOf: ownerOf}); err != nil {
		return nil, err
	}
	return &Platform{Platform: inner, mesh: m, gen: gen, ownerOf: ownerOf}, nil
}

// Name identifies the backend.
func (p *Platform) Name() string { return "net" }

// LocalRank reports whether a rank lives in this process. The runtime
// spawns only local ranks; remote ones are reached through the mesh.
func (p *Platform) LocalRank(rank int) bool {
	return p.ownerOf(rank) == p.mesh.cfg.Self
}

// Run executes the local ranks and surfaces transport failures alongside
// protocol ones.
func (p *Platform) Run(limit platform.Duration) error {
	err := p.Platform.Run(limit)
	if merr := p.mesh.Err(); merr != nil {
		return merr
	}
	return err
}
