package net

import (
	gonet "net"
	"sync"
	"testing"

	"dsmtx/internal/platform"
	"dsmtx/internal/platform/platformtest"
	"dsmtx/internal/trace"
)

// netWorld adapts a two-daemon loopback mesh to the shared delivery
// conformance suite. Ranks split contiguously, so low producer ranks live
// with daemon 0 and the rest share daemon 1 with the consumer: the same
// assertions cover remote producers (TCP framing, sequence numbers, reader
// injection) and local ones (plain ring delivery) in one storm.
type netWorld struct {
	producers int
	p0, p1    *Platform
	tr        *trace.Tracer
}

func (w *netWorld) Producers() int    { return w.producers }
func (w *netWorld) ConsumerRank() int { return w.producers }

// ProducerEndpoint returns rank i's endpoint on the daemon that owns it, so
// every send is accounted — and routed — from its home platform.
func (w *netWorld) ProducerEndpoint(i int) platform.Endpoint {
	if w.p0.LocalRank(i) {
		return w.p0.Endpoint(i)
	}
	return w.p1.Endpoint(i)
}

func (w *netWorld) ConsumerEndpoint() platform.Endpoint    { return w.p1.Endpoint(w.producers) }
func (w *netWorld) SpawnConsumer(fn func(p platform.Proc)) { w.p1.Spawn("consumer", fn) }

func (w *netWorld) Run() error {
	var wg sync.WaitGroup
	wg.Add(1)
	var err0 error
	go func() {
		defer wg.Done()
		err0 = w.p0.Run(0)
	}()
	err1 := w.p1.Run(0)
	wg.Wait()
	if err1 != nil {
		return err1
	}
	return err0
}

func (w *netWorld) Tracer() *trace.Tracer { return w.tr }

func TestDeliveryConformance(t *testing.T) {
	platformtest.Run(t, func(t *testing.T, producers int) platformtest.World {
		ln, err := gonet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs := []string{ln.Addr().String(), ""}
		m0 := NewMesh(MeshConfig{JobID: 7, Self: 0, Addrs: addrs, Logf: t.Logf})
		m0.ServeListener(ln)
		m1 := NewMesh(MeshConfig{JobID: 7, Self: 1, Addrs: addrs, Logf: t.Logf})
		t.Cleanup(func() {
			m1.Close()
			m0.Close()
		})
		ranks := producers + 1
		p0, err := m0.Platform(0, ranks, ranks)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := m1.Platform(0, ranks, ranks)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.NewMetricsOnly()
		p1.SetTracer(tr)
		return &netWorld{producers: producers, p0: p0, p1: p1, tr: tr}
	})
}
