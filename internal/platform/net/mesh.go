// Package net is the distributed execution backend: each daemon process
// hosts a contiguous range of ranks on an embedded host platform, and a
// Mesh of TCP connections carries every cross-daemon message as a wire
// frame. The runtime protocol above is unchanged — commit order is
// predefined, so the transport only has to deliver reliably and in
// per-link order, which one TCP connection per daemon pair plus
// serial-number sequencing and reconnect-replay provides.
//
// Split of responsibilities: a Mesh lives for a whole job (connections
// persist across invocations); a Platform wraps one fresh host platform
// per invocation and binds it to the mesh under a generation number.
// Frames for a generation that has not bound yet are buffered and drained
// at bind; frames for a finished generation are dropped.
package net

import (
	"bufio"
	"fmt"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"

	"dsmtx/internal/platform"
	"dsmtx/internal/platform/host"
	"dsmtx/internal/wire"
)

// MeshConfig describes one daemon's view of the job's connection mesh.
type MeshConfig struct {
	// JobID pairs connections with their job; a Hello with the wrong job is
	// rejected (a stale daemon from a previous run redialing).
	JobID uint64
	// Self is this daemon's index in Addrs.
	Self int
	// Addrs lists every daemon's data listener address, indexed by daemon.
	// Daemon i dials daemon j iff i > j, so Addrs[j] for j >= Self is never
	// dialed and may be empty.
	Addrs []string
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// flushBatch bounds how many queued messages a writer drains into one
// buffered write before flushing — batched flush without unbounded latency.
const flushBatch = 64

// ackEvery is how many accepted frames a reader lets accumulate before
// publishing a cumulative ack (which trims the sender's replay log).
const ackEvery = 64

// outDepth is the per-peer send queue depth; senders block when it fills,
// which backpressures workers against a slow link.
const outDepth = 4096

// dialGiveUp bounds total redial time before the mesh declares the peer
// unreachable and aborts the job. A variable so tests can shorten the
// give-up window.
var dialGiveUp = 20 * time.Second

// Mesh is one daemon's set of peer connections for a job.
type Mesh struct {
	cfg   MeshConfig
	peers []*peer

	mu      sync.Mutex
	bound   *binding
	pending map[uint64][]platform.Message
	failure error

	done     chan struct{} // closed by Close: writers say Goodbye and exit
	aborted  chan struct{} // closed by abort: senders stop blocking
	abortOne sync.Once
	closeOne sync.Once
	wg       sync.WaitGroup

	lns   []gonet.Listener
	lnsMu sync.Mutex
}

// binding is the platform currently attached to the mesh.
type binding struct {
	gen     uint64
	plat    *host.Platform
	ownerOf func(rank int) int
}

// NewMesh builds the mesh and starts dialing every lower-indexed peer.
// Connections to higher-indexed peers arrive through AcceptData (or
// ServeListener). Messages queued before a connection is up are sent once
// it is, so callers need no readiness barrier.
func NewMesh(cfg MeshConfig) *Mesh {
	m := &Mesh{
		cfg:     cfg,
		pending: make(map[uint64][]platform.Message),
		done:    make(chan struct{}),
		aborted: make(chan struct{}),
	}
	m.peers = make([]*peer, len(cfg.Addrs))
	for i := range m.peers {
		if i == cfg.Self {
			continue
		}
		p := &peer{
			m:       m,
			idx:     i,
			dialer:  cfg.Self > i,
			out:     make(chan outMsg, outDepth),
			connCh:  make(chan *session, 1),
			ackIn:   make(chan wire.Seq, 16),
			ackNote: make(chan struct{}, 1),
		}
		m.peers[i] = p
		m.wg.Add(1)
		go p.writeLoop()
		if p.dialer {
			p.dialing.Store(true)
			go p.dial()
		}
	}
	return m
}

// logf emits a connection diagnostic when the config asked for them.
func (m *Mesh) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Err reports the mesh failure, or nil.
func (m *Mesh) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failure
}

// abort latches the first transport failure and fails the bound platform so
// every blocked rank unwinds instead of waiting on a link that died.
func (m *Mesh) abort(err error) {
	m.mu.Lock()
	if m.failure == nil {
		m.failure = err
	}
	b := m.bound
	m.mu.Unlock()
	m.abortOne.Do(func() { close(m.aborted) })
	if b != nil {
		b.plat.Abort(err)
	}
	m.logf("net: mesh abort: %v", err)
}

// Close says Goodbye on every connection, stops the listeners this mesh
// serves, and waits for the writer goroutines. Call after the last
// invocation's result is collected — at that point the protocol guarantees
// every message has been consumed.
func (m *Mesh) Close() {
	m.closeOne.Do(func() { close(m.done) })
	m.lnsMu.Lock()
	for _, ln := range m.lns {
		ln.Close()
	}
	m.lns = nil
	m.lnsMu.Unlock()
	m.wg.Wait()
}

// send queues msg for the daemon owning msg.To. Called from rank
// goroutines via the host platform's remote hook.
func (m *Mesh) send(gen uint64, ownerOf func(int) int, msg platform.Message) {
	p := m.peers[ownerOf(msg.To)]
	select {
	case p.out <- outMsg{gen: gen, msg: msg}:
	case <-m.aborted:
		// The job is failing; the sender will be unwound on its next
		// Advance. Dropping is safe — nobody will consume this message.
	case <-m.done:
	}
}

// route delivers an accepted inbound message to the bound platform, or
// buffers it for a generation that has not bound yet. Stale generations are
// dropped. Injection for the bound generation happens under the mesh lock
// so a concurrent Bind cannot reorder a peer's frames around its pending
// drain.
func (m *Mesh) route(gen uint64, msg platform.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.bound
	switch {
	case b != nil && gen == b.gen:
		b.plat.Inject(msg)
	case b == nil || gen > b.gen:
		m.pending[gen] = append(m.pending[gen], msg)
	default:
		// gen < bound: a straggler from a finished invocation.
	}
}

// bind attaches a platform as the given generation, draining any frames
// that arrived early and forgetting older generations.
func (m *Mesh) bind(gen uint64, b *binding) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failure != nil {
		return m.failure
	}
	if m.bound != nil && gen <= m.bound.gen {
		return fmt.Errorf("net: generation %d already bound (have %d)", gen, m.bound.gen)
	}
	m.bound = b
	for g := range m.pending {
		if g < gen {
			delete(m.pending, g)
		}
	}
	for _, msg := range m.pending[gen] {
		b.plat.Inject(msg)
	}
	delete(m.pending, gen)
	return nil
}

// outMsg is one queued cross-daemon message with its generation tag.
type outMsg struct {
	gen uint64
	msg platform.Message
}

// session is one live TCP connection to a peer. A new session replaces the
// old one on reconnect; dead is closed by whichever side notices failure
// first so an idle writer still learns the conn is gone.
type session struct {
	conn     gonet.Conn
	peerLast wire.Seq // peer's last received seq, from its Hello: replay after this
	dead     chan struct{}
	deadOne  sync.Once
}

func (s *session) kill() { s.deadOne.Do(func() { close(s.dead) }) }

// sentFrame is one unacked data frame kept for reconnect-replay.
type sentFrame struct {
	seq wire.Seq
	buf []byte
}

// peer is the send/receive state for one remote daemon.
type peer struct {
	m      *Mesh
	idx    int
	dialer bool

	out     chan outMsg
	connCh  chan *session
	ackIn   chan wire.Seq // acks the peer sent us: trim the replay log
	ackNote chan struct{} // reader nudges writer to emit an ack
	ackDue  atomic.Uint32 // cumulative seq to ack, published by the reader

	lastRecv atomic.Uint32 // highest in-order seq received from this peer
	dialing  atomic.Bool
	cur      atomic.Pointer[session] // most recently attached session (diagnostics, tests)
}

// dial connects to the peer with exponential backoff, performs the Hello
// exchange, and attaches the session. Gives up (and aborts the mesh) after
// dialGiveUp of consecutive failures.
func (p *peer) dial() {
	defer p.dialing.Store(false)
	addr := p.m.cfg.Addrs[p.idx]
	backoff := 50 * time.Millisecond
	deadline := time.Now().Add(dialGiveUp)
	for {
		select {
		case <-p.m.done:
			return
		case <-p.m.aborted:
			return
		default:
		}
		conn, err := gonet.DialTimeout("tcp", addr, 5*time.Second)
		if err == nil {
			hello, herr := p.handshakeDial(conn)
			if herr == nil {
				p.attach(conn, hello.LastRecv)
				return
			}
			conn.Close()
			err = herr
		}
		if time.Now().After(deadline) {
			p.m.abort(fmt.Errorf("net: peer %d (%s) unreachable: %w", p.idx, addr, err))
			return
		}
		p.m.logf("net: dial peer %d (%s): %v; retrying in %v", p.idx, addr, err, backoff)
		select {
		case <-time.After(backoff):
		case <-p.m.done:
			return
		case <-p.m.aborted:
			return
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// handshakeDial runs the dialer side of the Hello exchange: send ours, read
// theirs.
func (p *peer) handshakeDial(conn gonet.Conn) (wire.Hello, error) {
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetDeadline(time.Time{})
	ours := wire.Hello{
		Role:     wire.RoleData,
		JobID:    p.m.cfg.JobID,
		Peer:     p.m.cfg.Self,
		LastRecv: wire.Seq(p.lastRecv.Load()),
	}
	if _, err := conn.Write(wire.AppendHello(nil, ours)); err != nil {
		return wire.Hello{}, err
	}
	typ, body, _, err := wire.ReadFrame(conn, nil)
	if err != nil {
		return wire.Hello{}, err
	}
	if typ != wire.FrameHello {
		return wire.Hello{}, fmt.Errorf("net: expected hello, got frame type %d", typ)
	}
	theirs, err := wire.ParseHello(body)
	if err != nil {
		return wire.Hello{}, err
	}
	if theirs.JobID != p.m.cfg.JobID || theirs.Peer != p.idx {
		return wire.Hello{}, fmt.Errorf("net: hello mismatch: job %d peer %d", theirs.JobID, theirs.Peer)
	}
	return theirs, nil
}

// AcceptData attaches an inbound data connection whose Hello has already
// been read (the daemon's listener dispatches on the first frame). It
// replies with this side's Hello and starts the session.
func (m *Mesh) AcceptData(conn gonet.Conn, h wire.Hello) error {
	if h.JobID != m.cfg.JobID {
		conn.Close()
		return fmt.Errorf("net: hello for job %d, serving %d", h.JobID, m.cfg.JobID)
	}
	if h.Peer < 0 || h.Peer >= len(m.peers) || m.peers[h.Peer] == nil || h.Peer == m.cfg.Self {
		conn.Close()
		return fmt.Errorf("net: hello from unknown peer %d", h.Peer)
	}
	p := m.peers[h.Peer]
	ours := wire.Hello{
		Role:     wire.RoleData,
		JobID:    m.cfg.JobID,
		Peer:     m.cfg.Self,
		LastRecv: wire.Seq(p.lastRecv.Load()),
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	_, err := conn.Write(wire.AppendHello(nil, ours))
	conn.SetDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return err
	}
	p.attach(conn, h.LastRecv)
	return nil
}

// ServeListener accepts data connections on ln until the mesh closes —
// the accept loop a standalone daemon (or an in-process test mesh) needs.
// The listener is closed by Mesh.Close.
func (m *Mesh) ServeListener(ln gonet.Listener) {
	m.lnsMu.Lock()
	m.lns = append(m.lns, ln)
	m.lnsMu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed by Close
			}
			go func() {
				typ, body, _, err := wire.ReadFrame(conn, nil)
				if err != nil {
					conn.Close()
					return
				}
				h, err := wire.ParseHello(body)
				if typ != wire.FrameHello || err != nil {
					conn.Close()
					return
				}
				if err := m.AcceptData(conn, h); err != nil {
					m.logf("%v", err)
				}
			}()
		}
	}()
}

// attach hands a fresh session to the writer and starts its reader.
func (p *peer) attach(conn gonet.Conn, peerLast wire.Seq) {
	s := &session{conn: conn, peerLast: peerLast, dead: make(chan struct{})}
	p.cur.Store(s)
	go p.readLoop(s)
	select {
	case p.connCh <- s:
	case <-p.m.done:
		conn.Close()
	}
}

// readLoop demultiplexes one session's inbound frames: data frames are
// admitted in serial order (duplicates from replay overlap dropped, gaps
// fatal) and routed into the bound platform's mailbox rings; acks trim the
// peer writer's replay log; Goodbye ends the session cleanly.
func (p *peer) readLoop(s *session) {
	defer s.kill()
	var buf []byte
	var unacked int
	for {
		typ, body, nbuf, err := wire.ReadFrame(s.conn, buf)
		if err != nil {
			// Connection lost. The writer redials (dialer side) or waits for
			// the peer to redial (acceptor side); only handshake exhaustion
			// aborts the job.
			return
		}
		buf = nbuf
		switch typ {
		case wire.FrameMsg:
			d := wire.NewDecoder(body)
			seq := wire.Seq(d.U32())
			gen := d.Uvarint()
			msg := d.Message()
			if d.Err() != nil {
				p.m.abort(fmt.Errorf("net: corrupt frame from peer %d: %w", p.idx, d.Err()))
				return
			}
			last := wire.Seq(p.lastRecv.Load())
			if !seq.After(last) {
				continue // duplicate from reconnect replay
			}
			if seq != last.Next() {
				p.m.abort(fmt.Errorf("net: sequence gap from peer %d: have %d, got %d", p.idx, last, seq))
				return
			}
			p.lastRecv.Store(uint32(seq))
			p.m.route(gen, msg)
			if unacked++; unacked >= ackEvery {
				unacked = 0
				p.ackDue.Store(uint32(seq))
				select {
				case p.ackNote <- struct{}{}:
				default:
				}
			}
		case wire.FrameAck:
			d := wire.NewDecoder(body)
			ack := wire.Seq(d.U32())
			if d.Err() != nil {
				p.m.abort(fmt.Errorf("net: corrupt ack from peer %d: %w", p.idx, d.Err()))
				return
			}
			select {
			case p.ackIn <- ack:
			default:
				// A dropped ack only delays replay-log trimming; the next
				// ack is cumulative and supersedes it.
			}
		case wire.FrameGoodbye:
			return
		default:
			p.m.abort(fmt.Errorf("net: unexpected frame type %d from peer %d", typ, p.idx))
			return
		}
	}
}

// writeLoop owns the peer's outbound side: it encodes queued messages into
// sequenced frames with batched flush, keeps unacked frames for replay,
// emits cumulative acks on the reader's nudge, and survives reconnects by
// replaying everything after the peer's acknowledged position.
func (p *peer) writeLoop() {
	defer p.m.wg.Done()
	var (
		s    *session
		bw   *bufio.Writer
		seq  wire.Seq // last sent
		log  []sentFrame
		enc  wire.Encoder
		fail = func(err error) {
			// Drop the session; recovery is a redial (dialer) or a fresh
			// accepted conn (acceptor).
			s.kill()
			s.conn.Close()
			s, bw = nil, nil
			if p.dialer && p.dialing.CompareAndSwap(false, true) {
				go p.dial()
			}
			_ = err
		}
	)
	trim := func(ack wire.Seq) {
		i := 0
		for i < len(log) && !log[i].seq.After(ack) {
			i++
		}
		log = log[i:]
	}
	encode := func(om outMsg) (err error) {
		// A registered codec may panic on a payload it cannot represent
		// (e.g. an Entry carrying a non-serializable type) — a protocol
		// bug, surfaced as a job failure rather than a daemon crash.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("net: encoding for peer %d: %v", p.idx, r)
			}
		}()
		return enc.Message(om.msg)
	}
	writeMsg := func(om outMsg) error {
		seq = seq.Next()
		enc.Reset()
		start := enc.BeginFrame(wire.FrameMsg)
		enc.U32(uint32(seq))
		enc.Uvarint(om.gen)
		if err := encode(om); err != nil {
			// Unencodable payload is a protocol bug, not a link failure.
			p.m.abort(err)
			return nil
		}
		enc.FinishFrame(start)
		frame := append([]byte(nil), enc.Bytes()...)
		log = append(log, sentFrame{seq: seq, buf: frame})
		if bw == nil {
			return nil // queued in the log; sent by replay when a conn is up
		}
		_, err := bw.Write(frame)
		return err
	}
	writeAck := func() error {
		if bw == nil {
			return nil
		}
		enc.Reset()
		start := enc.BeginFrame(wire.FrameAck)
		enc.U32(p.ackDue.Load())
		enc.FinishFrame(start)
		_, err := bw.Write(enc.Bytes())
		return err
	}
	adopt := func(ns *session) {
		if s != nil {
			s.kill()
			s.conn.Close()
		}
		s = ns
		bw = bufio.NewWriterSize(s.conn, 64<<10)
		trim(s.peerLast)
		for _, f := range log {
			if _, err := bw.Write(f.buf); err != nil {
				fail(err)
				return
			}
		}
		if err := bw.Flush(); err != nil {
			fail(err)
		}
	}
	for {
		if s == nil {
			select {
			case ns := <-p.connCh:
				adopt(ns)
				continue
			case om := <-p.out:
				if err := writeMsg(om); err != nil {
					fail(err)
				}
				continue
			case ack := <-p.ackIn:
				trim(ack)
				continue
			case <-p.m.done:
				return
			}
		}
		select {
		case om := <-p.out:
			err := writeMsg(om)
			// Batched flush: drain whatever else is queued (bounded) before
			// paying the syscall.
			for n := 0; err == nil && n < flushBatch; n++ {
				select {
				case om := <-p.out:
					err = writeMsg(om)
					continue
				default:
				}
				break
			}
			if err == nil && bw != nil {
				err = bw.Flush()
			}
			if err != nil {
				fail(err)
			}
		case <-p.ackNote:
			if err := writeAck(); err != nil {
				fail(err)
				continue
			}
			if err := bw.Flush(); err != nil {
				fail(err)
			}
		case ack := <-p.ackIn:
			trim(ack)
		case ns := <-p.connCh:
			adopt(ns)
		case <-s.dead:
			fail(fmt.Errorf("net: connection to peer %d lost", p.idx))
		case <-p.m.done:
			enc.Reset()
			start := enc.BeginFrame(wire.FrameGoodbye)
			enc.FinishFrame(start)
			bw.Write(enc.Bytes())
			bw.Flush()
			s.conn.Close()
			return
		}
	}
}
