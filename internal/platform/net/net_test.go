package net

import (
	"fmt"
	gonet "net"
	"sync"
	"testing"
	"time"

	"dsmtx/internal/platform"
)

// twoMeshes builds an in-process pair of meshes connected over loopback
// TCP: daemon 0 listens, daemon 1 dials (the i > j dial rule).
func twoMeshes(t *testing.T) (*Mesh, *Mesh) {
	t.Helper()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String(), ""}
	m0 := NewMesh(MeshConfig{JobID: 42, Self: 0, Addrs: addrs, Logf: t.Logf})
	m0.ServeListener(ln)
	m1 := NewMesh(MeshConfig{JobID: 42, Self: 1, Addrs: addrs, Logf: t.Logf})
	t.Cleanup(func() {
		m1.Close()
		m0.Close()
	})
	return m0, m1
}

func TestCrossDaemonRoundTrip(t *testing.T) {
	m0, m1 := twoMeshes(t)
	p0, err := m0.Platform(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m1.Platform(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p0.LocalRank(0) || p0.LocalRank(1) || !p1.LocalRank(1) {
		t.Fatal("rank ownership split is wrong")
	}
	if p0.Name() != "net" {
		t.Fatalf("Name = %q", p0.Name())
	}

	var got uint64
	p1.Spawn("echo", func(pr platform.Proc) {
		ep := p1.Endpoint(1)
		msg := ep.Recv(pr, 0, 7)
		ep.Send(0, 8, msg.Payload.(uint64)+1, 16)
	})
	p0.Spawn("ping", func(pr platform.Proc) {
		ep := p0.Endpoint(0)
		ep.Send(1, 7, uint64(99), 16)
		got = p0.Endpoint(0).Recv(pr, 1, 8).Payload.(uint64)
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p1.Run(0) }()
	if err := p0.Run(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got != 100 {
		t.Fatalf("round trip payload = %d, want 100", got)
	}
}

// TestCrossDaemonOrderAndVolume pushes well past the ack threshold in both
// directions and checks per-link FIFO plus every built-in payload kind.
func TestCrossDaemonOrderAndVolume(t *testing.T) {
	const n = 1000
	m0, m1 := twoMeshes(t)
	p0, err := m0.Platform(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m1.Platform(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	var recvErr error
	p1.Spawn("sink", func(pr platform.Proc) {
		ep := p1.Endpoint(1)
		for i := 0; i < n; i++ {
			msg := ep.Recv(pr, 0, 5)
			switch want := i; i % 3 {
			case 0:
				if v, ok := msg.Payload.(uint64); !ok || v != uint64(want) {
					recvErr = fmt.Errorf("msg %d: payload %v", i, msg.Payload)
					return
				}
			case 1:
				if b, ok := msg.Payload.([]byte); !ok || len(b) != 1 || b[0] != byte(want) {
					recvErr = fmt.Errorf("msg %d: payload %v", i, msg.Payload)
					return
				}
			case 2:
				if msg.Payload != nil {
					recvErr = fmt.Errorf("msg %d: payload %v, want nil", i, msg.Payload)
					return
				}
			}
		}
		ep.Send(0, 6, uint64(n), 8)
	})
	p0.Spawn("source", func(pr platform.Proc) {
		ep := p0.Endpoint(0)
		for i := 0; i < n; i++ {
			switch i % 3 {
			case 0:
				ep.Send(1, 5, uint64(i), 8)
			case 1:
				ep.Send(1, 5, []byte{byte(i)}, 9)
			case 2:
				ep.Send(1, 5, nil, 8)
			}
		}
		if v := ep.Recv(pr, 1, 6).Payload.(uint64); v != n {
			recvErr = fmt.Errorf("final ack = %d", v)
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p1.Run(0) }()
	if err := p0.Run(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
}

// TestGenerationBuffering starts generation 1 on daemon 0 and sends before
// daemon 1 has bound generation 1; the frames must buffer in the mesh and
// drain when the platform binds.
func TestGenerationBuffering(t *testing.T) {
	m0, m1 := twoMeshes(t)
	// Generation 0 on both sides completes an invocation.
	p0, err := m0.Platform(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m1.Platform(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1.Spawn("g0", func(pr platform.Proc) { p1.Endpoint(1).Recv(pr, 0, 1) })
	p0.Spawn("g0", func(pr platform.Proc) { p0.Endpoint(0).Send(1, 1, nil, 8) })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p1.Run(0) }()
	if err := p0.Run(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Daemon 0 moves to generation 1 and sends immediately; daemon 1 binds
	// late.
	q0, err := m0.Platform(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	q0.Spawn("g1", func(pr platform.Proc) { q0.Endpoint(0).Send(1, 2, uint64(7), 8) })
	go q0.Run(0)
	time.Sleep(50 * time.Millisecond)

	q1, err := m1.Platform(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	q1.Spawn("g1", func(pr platform.Proc) {
		got = q1.Endpoint(1).Recv(pr, 0, 2).Payload.(uint64)
	})
	if err := q1.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("buffered generation payload = %d, want 7", got)
	}
}

// TestReconnectReplay kills the established connection mid-stream; the
// dialer must redial and replay unacked frames, and the receiver must see
// an uninterrupted, duplicate-free sequence.
func TestReconnectReplay(t *testing.T) {
	m0, m1 := twoMeshes(t)
	p0, err := m0.Platform(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m1.Platform(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	var recvErr error
	p0.Spawn("sink", func(pr platform.Proc) {
		ep := p0.Endpoint(0)
		for i := 0; i < n; i++ {
			v := ep.Recv(pr, 1, 3).Payload.(uint64)
			if v != uint64(i) {
				recvErr = fmt.Errorf("msg %d: got %d", i, v)
				return
			}
		}
	})
	p1.Spawn("source", func(pr platform.Proc) {
		ep := p1.Endpoint(1)
		for i := 0; i < n; i++ {
			ep.Send(0, 3, uint64(i), 8)
			if i == n/2 {
				// Sever the live connection from the sender side; the
				// writer must fail over, redial, and replay.
				if s := currentSession(m1.peers[0]); s != nil {
					s.conn.Close()
				}
			}
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p1.Run(0) }()
	if err := p0.Run(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
}

// currentSession exposes the live connection for fault injection.
func currentSession(p *peer) *session { return p.cur.Load() }

func TestJobIDMismatchRejected(t *testing.T) {
	old := dialGiveUp
	dialGiveUp = 500 * time.Millisecond
	defer func() { dialGiveUp = old }()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String(), ""}
	m0 := NewMesh(MeshConfig{JobID: 1, Self: 0, Addrs: addrs})
	m0.ServeListener(ln)
	defer m0.Close()
	// A dialer from another job must not attach; its dial loop eventually
	// aborts its own mesh.
	m1 := NewMesh(MeshConfig{JobID: 2, Self: 1, Addrs: addrs})
	defer m1.Close()
	deadline := time.Now().Add(dialGiveUp + 10*time.Second)
	for m1.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("mismatched dialer never aborted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
