package uva

import (
	"testing"
	"testing/quick"
)

func TestOwnerEncoding(t *testing.T) {
	for _, owner := range []int{0, 1, 2, 31, 128, 1000} {
		base := Base(owner)
		if base.Owner() != owner {
			t.Errorf("Base(%d).Owner() = %d", owner, base.Owner())
		}
		last := Addr(uint64(Limit(owner)) - WordSize)
		if last.Owner() != owner {
			t.Errorf("last addr of region %d decodes owner %d", owner, last.Owner())
		}
	}
}

func TestBaseSkipsNullPage(t *testing.T) {
	if Base(0) != PageSize {
		t.Fatalf("Base(0) = %#x, want first page skipped", uint64(Base(0)))
	}
}

func TestAddrGeometry(t *testing.T) {
	a := Addr(3*PageSize + 24)
	if a.Page() != 3 {
		t.Errorf("Page() = %d, want 3", a.Page())
	}
	if a.PageOffset() != 24 {
		t.Errorf("PageOffset() = %d, want 24", a.PageOffset())
	}
	if a.WordIndex() != 3 {
		t.Errorf("WordIndex() = %d, want 3", a.WordIndex())
	}
	if !a.Aligned() || Addr(uint64(a)+1).Aligned() {
		t.Error("alignment check wrong")
	}
	if PageAddr(a.Page()) != Addr(3*PageSize) {
		t.Error("PageAddr roundtrip failed")
	}
}

func TestArenaAllocAligned(t *testing.T) {
	a := NewArena(2)
	for _, size := range []int64{1, 7, 8, 9, 4096, 3} {
		addr := a.Alloc(size)
		if !addr.Aligned() {
			t.Errorf("Alloc(%d) = %v not aligned", size, addr)
		}
		if addr.Owner() != 2 {
			t.Errorf("Alloc(%d) owner = %d, want 2", size, addr.Owner())
		}
	}
}

func TestArenaAllocationsDisjoint(t *testing.T) {
	a := NewArena(0)
	type span struct{ lo, hi uint64 }
	var spans []span
	for i := int64(1); i < 40; i++ {
		addr := a.Alloc(i * 3)
		lo, hi := uint64(addr), uint64(addr)+uint64(roundUp(i*3))
		for _, s := range spans {
			if lo < s.hi && s.lo < hi {
				t.Fatalf("allocation [%#x,%#x) overlaps [%#x,%#x)", lo, hi, s.lo, s.hi)
			}
		}
		spans = append(spans, span{lo, hi})
	}
}

func TestArenaFreeReuses(t *testing.T) {
	a := NewArena(1)
	x := a.Alloc(64)
	a.Free(x)
	y := a.Alloc(64)
	if x != y {
		t.Fatalf("freed block not reused: %v then %v", x, y)
	}
}

func TestArenaLiveAccounting(t *testing.T) {
	a := NewArena(0)
	x := a.Alloc(100) // rounds to 104
	if a.Live() != 104 {
		t.Fatalf("Live = %d, want 104", a.Live())
	}
	a.Free(x)
	if a.Live() != 0 {
		t.Fatalf("Live after free = %d, want 0", a.Live())
	}
}

func TestArenaDoubleFreePanics(t *testing.T) {
	a := NewArena(0)
	x := a.Alloc(8)
	a.Free(x)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(x)
}

func TestAllocWords(t *testing.T) {
	a := NewArena(0)
	addr := a.AllocWords(16)
	if a.Live() != 128 {
		t.Fatalf("AllocWords(16) live = %d, want 128", a.Live())
	}
	a.Free(addr)
}

// Property: any interleaving of allocs and frees keeps live allocations
// disjoint and owner-tagged.
func TestArenaProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewArena(5)
		var liveAddrs []Addr
		for _, op := range ops {
			if op%3 == 0 && len(liveAddrs) > 0 {
				a.Free(liveAddrs[0])
				liveAddrs = liveAddrs[1:]
				continue
			}
			size := int64(op%200) + 1
			addr := a.Alloc(size)
			if addr.Owner() != 5 || !addr.Aligned() {
				return false
			}
			liveAddrs = append(liveAddrs, addr)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBadOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Base(-1)
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := NewArena(0)
	defer func() {
		if recover() == nil {
			t.Fatal("region exhaustion did not panic")
		}
	}()
	// A single region is 1 TiB; two allocations of 600 GiB exhaust it.
	a.Alloc(600 << 30)
	a.Alloc(600 << 30)
}

func TestAllocZeroPanics(t *testing.T) {
	a := NewArena(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	a.Alloc(0)
}
