// Package uva implements the Unified Virtual Address space of DSMTX (§3.3).
//
// Every thread in the system sees the same virtual addresses: a pointer
// produced by thread 1 is valid on thread 2 with no translation. The address
// space is statically partitioned into per-owner regions, with the owner
// encoded in the upper bits of the address, so any node can tell from an
// address alone which thread's region it lives in. Memory allocation is
// satisfied thread-locally from the owner's region (the system `malloc` and
// `free` are hooked in the paper; here workloads call Arena.Alloc/Free).
package uva

import "fmt"

// Addr is a unified virtual address. Word accesses must be 8-byte aligned.
type Addr uint64

// Address-space geometry. Each owner gets 2^OwnerShift bytes (1 TiB) of
// virtual space; pages are 4 KiB as on the paper's platform.
const (
	PageShift  = 12
	PageSize   = 1 << PageShift // 4096
	WordSize   = 8
	PageWords  = PageSize / WordSize
	OwnerShift = 40
	MaxOwners  = 1 << 20
)

// PageID identifies a 4 KiB page.
type PageID uint64

// Owner reports the thread whose region contains a.
func (a Addr) Owner() int { return int(a >> OwnerShift) }

// Page reports the page containing a.
func (a Addr) Page() PageID { return PageID(a >> PageShift) }

// PageOffset reports a's byte offset within its page.
func (a Addr) PageOffset() int { return int(a & (PageSize - 1)) }

// WordIndex reports a's word index within its page; a must be word-aligned.
func (a Addr) WordIndex() int { return int(a&(PageSize-1)) >> 3 }

// Aligned reports whether a is word-aligned.
func (a Addr) Aligned() bool { return a&(WordSize-1) == 0 }

// String renders the address with its owner for diagnostics.
func (a Addr) String() string {
	return fmt.Sprintf("uva:%d:%#x", a.Owner(), uint64(a)&((1<<OwnerShift)-1))
}

// Base reports the first usable address of an owner's region. The first page
// of every region is left unmapped so that 0-ish addresses fault, as a null
// guard.
func Base(owner int) Addr {
	if owner < 0 || owner >= MaxOwners {
		panic(fmt.Sprintf("uva: owner %d out of range", owner))
	}
	return Addr(uint64(owner)<<OwnerShift + PageSize)
}

// Limit reports the first address past an owner's region.
func Limit(owner int) Addr { return Addr(uint64(owner+1) << OwnerShift) }

// PageAddr reports the first address of a page.
func PageAddr(id PageID) Addr { return Addr(uint64(id) << PageShift) }

// Arena is a thread-local allocator over one owner's region: a bump pointer
// with size-segregated free lists. Allocations are 8-byte aligned.
//
// In DSMTX only the owning thread allocates from its arena, so Arena needs
// no locking; the unified address space makes the resulting pointers valid
// everywhere.
type Arena struct {
	owner int
	next  Addr
	limit Addr
	free  map[int64][]Addr // size class -> free addresses
	sizes map[Addr]int64   // live allocation sizes (for Free without size)
	live  int64            // bytes currently allocated
}

// NewArena creates the allocator for an owner's region.
func NewArena(owner int) *Arena {
	return &Arena{
		owner: owner,
		next:  Base(owner),
		limit: Limit(owner),
		free:  make(map[int64][]Addr),
		sizes: make(map[Addr]int64),
	}
}

// Owner reports the arena's owner thread.
func (a *Arena) Owner() int { return a.owner }

// Live reports the number of bytes currently allocated.
func (a *Arena) Live() int64 { return a.live }

func roundUp(n int64) int64 { return (n + WordSize - 1) &^ (WordSize - 1) }

// Alloc returns the address of a fresh size-byte allocation.
func (a *Arena) Alloc(size int64) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("uva: Alloc(%d)", size))
	}
	size = roundUp(size)
	if list := a.free[size]; len(list) > 0 {
		addr := list[len(list)-1]
		a.free[size] = list[:len(list)-1]
		a.sizes[addr] = size
		a.live += size
		return addr
	}
	addr := a.next
	if Addr(uint64(addr)+uint64(size)) > a.limit {
		panic(fmt.Sprintf("uva: owner %d region exhausted", a.owner))
	}
	a.next = Addr(uint64(addr) + uint64(size))
	a.sizes[addr] = size
	a.live += size
	return addr
}

// AllocWords allocates n 8-byte words.
func (a *Arena) AllocWords(n int) Addr { return a.Alloc(int64(n) * WordSize) }

// Free recycles an allocation made by this arena. Freeing an unknown address
// panics — that is a use-after-free or cross-arena free in the making.
func (a *Arena) Free(addr Addr) {
	size, ok := a.sizes[addr]
	if !ok {
		panic(fmt.Sprintf("uva: Free(%v): not a live allocation of owner %d", addr, a.owner))
	}
	delete(a.sizes, addr)
	a.free[size] = append(a.free[size], addr)
	a.live -= size
}
