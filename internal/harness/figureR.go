package harness

import (
	"fmt"

	"dsmtx/internal/faults"
	"dsmtx/internal/sim"
	"dsmtx/internal/stats"
	"dsmtx/internal/workloads"
)

// Figure R (resilience) is not in the paper: it extends the evaluation with
// the deterministic fault-injection subsystem, measuring how DSMTX speedup
// degrades as the commodity-cluster assumption erodes — message loss on the
// interconnect, a straggling host, and a worker crash with restart. Every
// faulty run must still produce the sequential reference checksum; the
// figure reports the performance cost of surviving, never wrong answers.

// FigRDropRates is the symmetric loss sweep (data and acks) of the drop
// columns.
var FigRDropRates = []float64{1e-4, 1e-3, 1e-2}

// FigRBenches picks one pipeline benchmark (164.gzip, Spec-DSWP) and one
// DOALL benchmark (blackscholes) so both communication patterns face the
// faults.
func FigRBenches() []string { return []string{"164.gzip", "blackscholes"} }

// FigRCores are the cluster sizes of the resilience sweep.
func FigRCores() []int { return []int{32, 96} }

// figRSeed seeds every Figure R fault plan; the plans — not the workload
// inputs — own fault randomness.
const figRSeed = 7

func figRDropPlan(rate float64) *faults.Plan {
	return &faults.Plan{Seed: figRSeed, DropRate: rate, AckDropRate: rate}
}

// figRStragglerPlan slows worker rank 1's host to half speed for the whole
// run (the window deliberately outlasts any simulated execution).
func figRStragglerPlan() *faults.Plan {
	return &faults.Plan{Stragglers: []faults.Straggler{
		{Rank: 1, From: 0, Dur: 3600 * sim.Second, Factor: 2},
	}}
}

// figRCrashPlan schedules one mid-invocation crash of worker rank 1 with a
// downtime of a tenth of the clean invocation; both instants derive from
// the clean run's elapsed time, so the plan self-scales across benchmarks
// and core counts.
func figRCrashPlan(cleanPerInvocation sim.Time) *faults.Plan {
	return &faults.Plan{Crashes: []faults.Crash{
		{Rank: 1, At: cleanPerInvocation / 2, Downtime: cleanPerInvocation / 10},
	}}
}

// parFaultSpec is parSpec plus a canonical fault-plan string.
func parFaultSpec(bench string, in workloads.Input, cores int, plan *faults.Plan) PointSpec {
	s := parSpec(bench, in, workloads.DSMTX, cores, KnobNone)
	s.Faults = plan.Format()
	return s
}

// PointsFigureR lists one Figure R cell's statically known points: the
// sequential reference, the clean run, the drop sweep, and the straggler
// run. The crash point cannot be listed here — its plan derives from the
// clean run's elapsed time — so RunFigureR resolves it on demand; it still
// passes through the disk cache like every other point.
func PointsFigureR(b *workloads.Benchmark, in workloads.Input, cores int) []PointSpec {
	cores = clampCores(b, in, cores)
	specs := []PointSpec{
		seqSpec(b.Name, in, KnobNone),
		parSpec(b.Name, in, workloads.DSMTX, cores, KnobNone),
	}
	for _, rate := range FigRDropRates {
		specs = append(specs, parFaultSpec(b.Name, in, cores, figRDropPlan(rate)))
	}
	return append(specs, parFaultSpec(b.Name, in, cores, figRStragglerPlan()))
}

// FigRDrop is one loss-rate cell.
type FigRDrop struct {
	Rate    float64
	Speedup float64
	Retrans uint64 // retransmitted messages the loss forced
}

// FigRRow is one benchmark/core-count resilience breakdown.
type FigRRow struct {
	Bench     string
	Cores     int
	Clean     float64 // fault-free speedup over sequential
	Drop      []FigRDrop
	Crash     float64 // speedup with one worker crash per invocation
	Crashes   uint64  // crashes survived across the run
	RedispMS  float64 // commit-unit re-dispatch wall time, milliseconds
	Straggler float64 // speedup with rank 1 at half speed
}

// RunFigureR measures one Figure R cell.
func RunFigureR(b *workloads.Benchmark, in workloads.Input, cores int) (FigRRow, error) {
	return new(Runner).RunFigureR(b, in, cores)
}

// RunFigureR measures one resilience cell through the runner's memo/cache.
func (r *Runner) RunFigureR(b *workloads.Benchmark, in workloads.Input, cores int) (FigRRow, error) {
	cores = clampCores(b, in, cores)
	row := FigRRow{Bench: b.Name, Cores: cores}
	seqTime, seqCheck, err := r.runSequential(b, in, KnobNone)
	if err != nil {
		return row, err
	}
	clean, err := r.runParallel(b, in, workloads.DSMTX, cores, KnobNone)
	if err != nil {
		return row, err
	}
	if clean.Checksum != seqCheck {
		return row, fmt.Errorf("%s@%d: clean checksum mismatch", b.Name, cores)
	}
	row.Clean = seqTime.Seconds() / clean.Elapsed.Seconds()

	check := func(label string, res workloads.Result) error {
		if res.Checksum != seqCheck {
			return fmt.Errorf("%s@%d %s: checksum %#x != sequential %#x — a fault corrupted the computation",
				b.Name, cores, label, res.Checksum, seqCheck)
		}
		return nil
	}
	for _, rate := range FigRDropRates {
		res, err := r.runPoint(parFaultSpec(b.Name, in, cores, figRDropPlan(rate)))
		if err != nil {
			return row, err
		}
		if err := check(fmt.Sprintf("drop %g", rate), res); err != nil {
			return row, err
		}
		row.Drop = append(row.Drop, FigRDrop{
			Rate:    rate,
			Speedup: seqTime.Seconds() / res.Elapsed.Seconds(),
			Retrans: res.Traffic.RetransMessages,
		})
	}

	invocations := b.Invocations
	if invocations < 1 {
		invocations = 1
	}
	crashPlan := figRCrashPlan(clean.Elapsed / sim.Time(invocations))
	crashRes, err := r.runPoint(parFaultSpec(b.Name, in, cores, crashPlan))
	if err != nil {
		return row, err
	}
	if err := check("crash", crashRes); err != nil {
		return row, err
	}
	if crashRes.Crashes == 0 {
		return row, fmt.Errorf("%s@%d: scheduled crash never fired", b.Name, cores)
	}
	row.Crash = seqTime.Seconds() / crashRes.Elapsed.Seconds()
	row.Crashes = crashRes.Crashes
	row.RedispMS = crashRes.Redispatch.Seconds() * 1e3

	stragRes, err := r.runPoint(parFaultSpec(b.Name, in, cores, figRStragglerPlan()))
	if err != nil {
		return row, err
	}
	if err := check("straggler", stragRes); err != nil {
		return row, err
	}
	row.Straggler = seqTime.Seconds() / stragRes.Elapsed.Seconds()
	return row, nil
}

// RenderFigureR prints the resilience table.
func RenderFigureR(rows []FigRRow) string {
	header := []string{"benchmark", "cores", "clean"}
	for _, rate := range FigRDropRates {
		header = append(header, fmt.Sprintf("drop %g", rate))
	}
	header = append(header, "crash", "straggler", "retrans@1%", "crashes", "redisp ms")
	tb := stats.Table{Header: header}
	for _, r := range rows {
		cells := []string{r.Bench, fmt.Sprint(r.Cores), stats.FormatSpeedup(r.Clean)}
		var worstRetrans uint64
		for _, d := range r.Drop {
			cells = append(cells, stats.FormatSpeedup(d.Speedup))
			worstRetrans = d.Retrans
		}
		cells = append(cells, stats.FormatSpeedup(r.Crash), stats.FormatSpeedup(r.Straggler),
			fmt.Sprint(worstRetrans), fmt.Sprint(r.Crashes), fmt.Sprintf("%.3f", r.RedispMS))
		tb.AddRow(cells...)
	}
	return "Figure R: speedup under injected faults (all runs reproduce the sequential checksum)\n" + tb.String()
}
