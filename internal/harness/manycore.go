package harness

import (
	"fmt"

	"dsmtx/internal/stats"
	"dsmtx/internal/workloads"
)

// §7 extension: "DSMTX may also be useful for emerging manycore
// architectures that discard chip-wide cache coherence [the 48-core Intel
// part]. These architectures offer challenges similar to those found in
// clusters." Same runtime, same programs, a different machine model — the
// on-die mesh's 10x lower latency mainly helps the latency-exposed TLS
// parallelizations, while Spec-DSWP (latency-tolerant by construction)
// gains less: the paper's Fig. 1 argument, inverted.

// ManycoreRow compares one benchmark at 48 cores on the cluster vs. the
// coherence-free manycore.
type ManycoreRow struct {
	Bench                      string
	ClusterDSMTX, ClusterTLS   float64
	ManycoreDSMTX, ManycoreTLS float64
}

// RunManycore measures one benchmark on both machines at 48 cores.
func RunManycore(b *workloads.Benchmark, in workloads.Input) (ManycoreRow, error) {
	return new(Runner).RunManycore(b, in)
}

// RunManycore measures one §7 row through the runner's memo/cache. The
// manycore's cores are slower, so each machine's speedup is measured
// against a sequential run on that same machine (the KnobManycore
// sequential point).
func (r *Runner) RunManycore(b *workloads.Benchmark, in workloads.Input) (ManycoreRow, error) {
	row := ManycoreRow{Bench: b.Name}
	run := func(p workloads.Paradigm, knob string) (float64, error) {
		seqTime, _, err := r.runSequential(b, in, knob)
		if err != nil {
			return 0, err
		}
		res, err := r.runParallel(b, in, p, 48, knob)
		if err != nil {
			return 0, err
		}
		return seqTime.Seconds() / res.Elapsed.Seconds(), nil
	}
	var err error
	if row.ClusterDSMTX, err = run(workloads.DSMTX, KnobNone); err != nil {
		return row, err
	}
	if row.ClusterTLS, err = run(workloads.TLS, KnobNone); err != nil {
		return row, err
	}
	if row.ManycoreDSMTX, err = run(workloads.DSMTX, KnobManycore); err != nil {
		return row, err
	}
	if row.ManycoreTLS, err = run(workloads.TLS, KnobManycore); err != nil {
		return row, err
	}
	return row, nil
}

// RenderManycore prints the comparison.
func RenderManycore(rows []ManycoreRow) string {
	tb := stats.Table{Header: []string{
		"benchmark", "cluster DSMTX", "cluster TLS", "manycore DSMTX", "manycore TLS"}}
	for _, r := range rows {
		tb.AddRow(r.Bench,
			stats.FormatSpeedup(r.ClusterDSMTX), stats.FormatSpeedup(r.ClusterTLS),
			stats.FormatSpeedup(r.ManycoreDSMTX), stats.FormatSpeedup(r.ManycoreTLS))
	}
	return fmt.Sprintf("§7 extension: 48 cores, InfiniBand cluster vs coherence-free manycore\n%s", tb.String())
}
