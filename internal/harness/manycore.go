package harness

import (
	"fmt"

	"dsmtx/internal/cluster"
	"dsmtx/internal/core"
	"dsmtx/internal/stats"
	"dsmtx/internal/workloads"
)

// §7 extension: "DSMTX may also be useful for emerging manycore
// architectures that discard chip-wide cache coherence [the 48-core Intel
// part]. These architectures offer challenges similar to those found in
// clusters." Same runtime, same programs, a different machine model — the
// on-die mesh's 10x lower latency mainly helps the latency-exposed TLS
// parallelizations, while Spec-DSWP (latency-tolerant by construction)
// gains less: the paper's Fig. 1 argument, inverted.

// ManycoreRow compares one benchmark at 48 cores on the cluster vs. the
// coherence-free manycore.
type ManycoreRow struct {
	Bench                      string
	ClusterDSMTX, ClusterTLS   float64
	ManycoreDSMTX, ManycoreTLS float64
}

// RunManycore measures one benchmark on both machines at 48 cores.
func RunManycore(b *workloads.Benchmark, in workloads.Input) (ManycoreRow, error) {
	row := ManycoreRow{Bench: b.Name}
	manycore := func(cfg *core.Config) {
		cfg.Cluster = cluster.ManycoreConfig() // head placement resolves at NewSystem
	}
	run := func(p workloads.Paradigm, tune func(*core.Config)) (float64, error) {
		// The manycore's cores are slower; speedup is measured against a
		// sequential run on the same machine.
		seqCfgTune := tune
		prog := b.NewDSMTX(in, 0)
		seqCfg := core.DefaultConfig(prog.Plan().MinWorkers()+2, prog.Plan())
		if seqCfgTune != nil {
			seqCfgTune(&seqCfg)
		}
		seqTime, _, err := core.RunSequential(seqCfg, prog, prog.Iterations(), nil)
		if err != nil {
			return 0, err
		}
		res, err := workloads.RunParallel(b, in, p, 48, tune)
		if err != nil {
			return 0, err
		}
		return seqTime.Seconds() / res.Elapsed.Seconds(), nil
	}
	var err error
	if row.ClusterDSMTX, err = run(workloads.DSMTX, nil); err != nil {
		return row, err
	}
	if row.ClusterTLS, err = run(workloads.TLS, nil); err != nil {
		return row, err
	}
	if row.ManycoreDSMTX, err = run(workloads.DSMTX, manycore); err != nil {
		return row, err
	}
	if row.ManycoreTLS, err = run(workloads.TLS, manycore); err != nil {
		return row, err
	}
	return row, nil
}

// RenderManycore prints the comparison.
func RenderManycore(rows []ManycoreRow) string {
	tb := stats.Table{Header: []string{
		"benchmark", "cluster DSMTX", "cluster TLS", "manycore DSMTX", "manycore TLS"}}
	for _, r := range rows {
		tb.AddRow(r.Bench,
			stats.FormatSpeedup(r.ClusterDSMTX), stats.FormatSpeedup(r.ClusterTLS),
			stats.FormatSpeedup(r.ManycoreDSMTX), stats.FormatSpeedup(r.ManycoreTLS))
	}
	return fmt.Sprintf("§7 extension: 48 cores, InfiniBand cluster vs coherence-free manycore\n%s", tb.String())
}
