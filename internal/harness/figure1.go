package harness

import (
	"fmt"

	"dsmtx/internal/sim"
	"dsmtx/internal/stats"
)

// Figure 1: DSWP tolerates inter-core latency, DOACROSS does not. The toy
// loop has four single-cycle statements A;B;C;D with the dependences of
// Fig. 1(b): B(i)→A(i+1) (loop-carried list walk), B(i)→C(i) (value), and
// C(i)→C(i+1) (work may modify the list). Two cores, communication latency
// L cycles. The paper's numbers: at L=1 both run 2 cycles/iter; at L=2
// DOACROSS degrades to 3 while DSWP stays at 2.

// Fig1Result reports steady-state cycles per iteration.
type Fig1Result struct {
	Latency        int
	DOACROSS, DSWP float64
}

// RunFigure1 simulates both schedules for the given latency (in cycles).
func RunFigure1(latency int) Fig1Result {
	const iters = 400
	return Fig1Result{
		Latency:  latency,
		DOACROSS: doacrossCyclesPerIter(latency, iters),
		DSWP:     dswpCyclesPerIter(latency, iters),
	}
}

const cycle = sim.Nanosecond

// doacrossCyclesPerIter schedules whole iterations on alternating cores;
// the loop-carried B→A dependence crosses cores every iteration (cyclic
// communication).
func doacrossCyclesPerIter(latency, iters int) float64 {
	k := sim.NewKernel()
	tokens := [2]*sim.Chan[int]{
		sim.NewChan[int](k, "to0", 0),
		sim.NewChan[int](k, "to1", 0),
	}
	var last sim.Time
	for core := 0; core < 2; core++ {
		core := core
		k.Spawn(fmt.Sprintf("core%d", core), func(p *sim.Proc) {
			for i := core; i < iters; i += 2 {
				if i > 0 {
					tokens[core].Recv(p) // B(i-1)'s value arrives
				}
				p.Advance(2 * cycle) // A;B
				// Forward the list pointer to the other core: a value
				// produced in cycle t is usable in cycle t+L.
				next := tokens[1-core]
				v := i
				k.After(sim.Duration(latency-1)*cycle, func() { next.Push(v) })
				p.Advance(2 * cycle) // C;D overlap with the next iteration's A;B
				if i >= iters-2 {
					last = p.Now()
				}
			}
		})
	}
	if err := k.Run(0); err != nil {
		panic(err)
	}
	return float64(last) / float64(iters)
}

// dswpCyclesPerIter pipelines the loop: core 1 runs A;B for every
// iteration (the dependence recurrence stays local), core 2 runs C;D,
// consuming B's values through a unidirectional queue.
func dswpCyclesPerIter(latency, iters int) float64 {
	k := sim.NewKernel()
	q := sim.NewChan[int](k, "q", 0)
	var last sim.Time
	k.Spawn("stage1", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			p.Advance(2 * cycle) // A;B — recurrence local to this core
			v := i
			k.After(sim.Duration(latency-1)*cycle, func() { q.Push(v) })
		}
	})
	k.Spawn("stage2", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			q.Recv(p)
			p.Advance(2 * cycle) // C;D — C's self-dependence local too
			last = p.Now()
		}
	})
	if err := k.Run(0); err != nil {
		panic(err)
	}
	// Exclude the pipeline-fill time, as the paper's steady-state numbers do.
	fill := sim.Duration(1+latency) * cycle
	return float64(last-fill) / float64(iters)
}

// RenderFigure1 prints the latency-tolerance comparison.
func RenderFigure1(results []Fig1Result) string {
	tb := stats.Table{Header: []string{"latency (cycles)", "DOACROSS cyc/iter", "DSWP cyc/iter"}}
	for _, r := range results {
		tb.AddRow(fmt.Sprint(r.Latency), fmt.Sprintf("%.2f", r.DOACROSS), fmt.Sprintf("%.2f", r.DSWP))
	}
	return "Figure 1: DSWP latency tolerance vs DOACROSS\n" + tb.String()
}
