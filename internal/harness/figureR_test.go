package harness

import (
	"strings"
	"testing"

	"dsmtx/internal/workloads"
)

// TestFigureRResilience: every faulted run reproduces the sequential
// checksum, the scheduled crash fires and is survived, and the straggler
// and loss sweeps slow the run without corrupting it. crc32 keeps the
// test fast; the CLI sweep uses FigRBenches.
func TestFigureRResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience sweep")
	}
	b, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunFigureR(b, workloads.DefaultInput(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if row.Clean <= 1 {
		t.Errorf("clean speedup %.2f, want > 1", row.Clean)
	}
	if len(row.Drop) != len(FigRDropRates) {
		t.Fatalf("drop cells = %d, want %d", len(row.Drop), len(FigRDropRates))
	}
	worst := row.Drop[len(row.Drop)-1]
	if worst.Retrans == 0 {
		t.Errorf("1%% loss forced no retransmits")
	}
	if worst.Speedup > row.Clean {
		t.Errorf("lossy speedup %.2f exceeds clean %.2f", worst.Speedup, row.Clean)
	}
	if row.Crashes == 0 {
		t.Errorf("crash variant survived zero crashes")
	}
	if row.Crash >= row.Clean {
		t.Errorf("crashed speedup %.2f should trail clean %.2f", row.Crash, row.Clean)
	}
	if row.RedispMS <= 0 {
		t.Errorf("re-dispatch time not accounted: %+v", row)
	}
	if row.Straggler >= row.Clean {
		t.Errorf("straggler speedup %.2f should trail clean %.2f", row.Straggler, row.Clean)
	}
	out := RenderFigureR([]FigRRow{row})
	if !strings.Contains(out, "crc32") || !strings.Contains(out, "crashes") {
		t.Fatalf("render: %q", out)
	}
	specs := PointsFigureR(b, workloads.DefaultInput(), 16)
	if len(specs) != 2+len(FigRDropRates)+1 {
		t.Fatalf("PointsFigureR = %d specs", len(specs))
	}
	for _, s := range specs[2:] {
		if s.Faults == "" {
			t.Errorf("fault point %s missing plan", s.String())
		}
	}
}
