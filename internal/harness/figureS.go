package harness

import (
	"fmt"

	"dsmtx/internal/stats"
	"dsmtx/internal/workloads"
)

// Figure S (sharding) is not in the paper: it extends the evaluation past
// the paper's 128-core platform to a 64-node, 16-core cluster (KnobBigCluster)
// where the single commit unit of §4 becomes the bottleneck, and sweeps the
// commit-shard count. Each shard owns a consistent-hashed slice of the page
// space with its own validate/group-commit/COA loop; multi-shard MTXs commit
// through the ordered cross-shard vote. Every cell must reproduce the
// single-shard checksum — the sweep measures committed-MTX throughput, never
// different answers.

// FigSShards is the commit-shard sweep; 1 is the paper's layout and the
// baseline of each row.
var FigSShards = []int{1, 2, 4, 8}

// FigSBenches covers one pipeline benchmark (164.gzip, Spec-DSWP) and two
// DOALL benchmarks so commit traffic with both communication patterns hits
// the sharded pipeline.
func FigSBenches() []string { return []string{"164.gzip", "crc32", "blackscholes"} }

// FigSCores are the cluster sizes of the sharding sweep — the scale at which
// commit-unit serialization starts to dominate.
func FigSCores() []int { return []int{512, 1024} }

// figSScale multiplies the problem size: at 512-1024 cores the default
// inputs drain before the commit pipeline saturates, so without it the
// sweep would measure pipeline fill instead of commit throughput.
const figSScale = 4

func figSInput(in workloads.Input) workloads.Input {
	if in.Scale < 1 {
		in.Scale = 1
	}
	in.Scale *= figSScale
	return in
}

// figSSpec is parSpec on the big cluster plus the commit-shard count; a
// single shard omits the field so the point is identical to a plain
// KnobBigCluster run.
func figSSpec(bench string, in workloads.Input, cores, shards int) PointSpec {
	s := parSpec(bench, in, workloads.DSMTX, cores, KnobBigCluster)
	if shards > 1 {
		s.CommitShards = shards
	}
	return s
}

// PointsFigureS lists one Figure S cell's points for the parallel prefetch.
func PointsFigureS(b *workloads.Benchmark, in workloads.Input, cores int) []PointSpec {
	in = figSInput(in)
	cores = clampCores(b, in, cores)
	var specs []PointSpec
	for _, shards := range FigSShards {
		specs = append(specs, figSSpec(b.Name, in, cores, shards))
	}
	return specs
}

// FigSCell is one shard count's measurement.
type FigSCell struct {
	Shards     int
	Throughput float64 // committed MTXs per simulated second
	Relative   float64 // throughput over the 1-shard baseline
}

// FigSRow is one benchmark/core-count sweep over FigSShards.
type FigSRow struct {
	Bench string
	Cores int
	Cells []FigSCell
}

// RunFigureS measures one Figure S cell through the runner's memo/cache.
func (r *Runner) RunFigureS(b *workloads.Benchmark, in workloads.Input, cores int) (FigSRow, error) {
	in = figSInput(in)
	cores = clampCores(b, in, cores)
	row := FigSRow{Bench: b.Name, Cores: cores}
	var baseCheck uint64
	var baseTput float64
	for _, shards := range FigSShards {
		res, err := r.runPoint(figSSpec(b.Name, in, cores, shards))
		if err != nil {
			return row, err
		}
		if shards == FigSShards[0] {
			baseCheck = res.Checksum
		} else if res.Checksum != baseCheck {
			return row, fmt.Errorf("%s@%d shards=%d: checksum %#x != 1-shard %#x — sharding changed the computation",
				b.Name, cores, shards, res.Checksum, baseCheck)
		}
		tput := float64(res.Committed) / res.Elapsed.Seconds()
		if shards == FigSShards[0] {
			baseTput = tput
		}
		row.Cells = append(row.Cells, FigSCell{
			Shards:     shards,
			Throughput: tput,
			Relative:   tput / baseTput,
		})
	}
	return row, nil
}

// RenderFigureS prints the commit-shard throughput table.
func RenderFigureS(rows []FigSRow) string {
	header := []string{"benchmark", "cores"}
	for _, shards := range FigSShards {
		header = append(header, fmt.Sprintf("%d shard(s)", shards))
	}
	tb := stats.Table{Header: header}
	for _, r := range rows {
		cells := []string{r.Bench, fmt.Sprint(r.Cores)}
		for _, c := range r.Cells {
			cells = append(cells, fmt.Sprintf("%.0f/s (%.2fx)", c.Throughput, c.Relative))
		}
		tb.AddRow(cells...)
	}
	return "Figure S: committed-MTX throughput vs commit shards, 64x16-core cluster (every cell reproduces the 1-shard checksum)\n" + tb.String()
}
