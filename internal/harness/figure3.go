package harness

import (
	"fmt"
	"strings"

	"dsmtx/internal/core"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/sim"
	"dsmtx/internal/uva"
)

// Figure 3(c): the DSMTX execution model, rendered from a live trace. The
// example loop of Fig. 1(a) runs as a two-stage pipeline — stage 1 (the
// list walk, sequential) on one core, stage 2 (work) on a worker pool —
// with the try-commit and commit units in their own pipeline stages. The
// timeline shows workers running ahead and executing later MTXs while the
// decoupled units validate and commit earlier ones (the paper's
// "Worker1 executing MTX_k while the commit unit commits MTX_i, k > i").

// fig3Prog is the Fig. 1(a) loop: B walks, C computes, D(write) happens at
// commit.
type fig3Prog struct {
	n       uint64
	in, out uva.Addr
}

func (p *fig3Prog) Setup(ctx *core.SeqCtx) {
	p.in = ctx.AllocWords(int(p.n))
	p.out = ctx.AllocWords(int(p.n))
	for k := uint64(0); k < p.n; k++ {
		ctx.Store(p.in+uva.Addr(k*8), k*5+3)
	}
}

func (p *fig3Prog) Stage(ctx *core.Ctx, stage int, iter uint64) bool {
	switch stage {
	case 0: // B: the walk
		if iter >= p.n {
			return false
		}
		ctx.Compute(9000)
		ctx.Produce(1, ctx.Load(p.in+uva.Addr(iter*8)))
	case 1: // C: work(node); D is the commit unit applying the write
		v := ctx.Consume(0)
		ctx.Compute(30000)
		ctx.Write(p.out+uva.Addr(iter*8), v*v+1)
	}
	return true
}

func (p *fig3Prog) SeqIter(ctx *core.SeqCtx, iter uint64) {
	v := ctx.Load(p.in + uva.Addr(iter*8))
	ctx.Compute(39000)
	ctx.Store(p.out+uva.Addr(iter*8), v*v+1)
}

// Fig3Result carries the trace and layout needed to render the timeline.
type Fig3Result struct {
	Events  []core.TraceEvent
	Workers int
	Elapsed sim.Time
}

// RunFigure3 executes the Fig. 1(a) loop on a 5-core DSMTX system (as in
// the paper's diagram: one stage-1 core, two stage-2 cores, try-commit,
// commit) with tracing on.
func RunFigure3() (Fig3Result, error) {
	prog := &fig3Prog{n: 10}
	cfg := core.DefaultConfig(5, pipeline.SpecDSWP("S", "DOALL"))
	cfg.Trace = true
	cfg.MarkerFlushIters = 1 // per-iteration flushes, so the diagram shows each MTX's validate/commit
	cfg.Cluster.InterNodeLatency = 500 * sim.Nanosecond
	sys, err := core.NewSystem(cfg, prog, nil)
	if err != nil {
		return Fig3Result{}, err
	}
	res, err := sys.Run()
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{Events: sys.Trace(), Workers: cfg.Workers(), Elapsed: res.Elapsed}, nil
}

// RenderFigure3 draws the execution-model timeline: one row per unit, MTX
// numbers painted over virtual time.
func RenderFigure3(r Fig3Result) string {
	const width = 100
	if len(r.Events) == 0 {
		return "Figure 3: (no trace)\n"
	}
	start, end := r.Events[0].Start, sim.Time(0)
	for _, e := range r.Events {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	span := float64(end - start)
	col := func(t sim.Time) int {
		c := int(float64(t-start) / span * (width - 1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	rows := map[string][]byte{}
	order := []string{}
	row := func(name string) []byte {
		if _, ok := rows[name]; !ok {
			rows[name] = []byte(strings.Repeat(".", width))
			order = append(order, name)
		}
		return rows[name]
	}
	// Predeclare rows in the paper's order.
	row("Stage1  (core 1)")
	for wkr := 1; wkr <= r.Workers-1; wkr++ {
		row(fmt.Sprintf("Stage2  (core %d)", wkr+1))
	}
	row("TryCommit unit")
	row("Commit unit")
	paint := func(name string, e core.TraceEvent) {
		line := row(name)
		lo, hi := col(e.Start), col(e.End)
		for c := lo; c <= hi; c++ {
			line[c] = byte('0' + e.MTX%10)
		}
	}
	for _, e := range r.Events {
		switch e.Kind {
		case core.TraceSubTX:
			if e.Stage == 0 {
				paint("Stage1  (core 1)", e)
			} else {
				paint(fmt.Sprintf("Stage2  (core %d)", e.Tid+1), e)
			}
		case core.TraceValidate:
			paint("TryCommit unit", e)
		case core.TraceCommit:
			paint("Commit unit", e)
		}
	}
	var b strings.Builder
	b.WriteString("Figure 3(c): DSMTX execution model (digits are MTX numbers mod 10; time runs right)\n")
	for _, name := range order {
		fmt.Fprintf(&b, "%-18s |%s|\n", name, rows[name])
	}
	fmt.Fprintf(&b, "%-18s  0%*s\n", "", width, r.Elapsed.String())
	b.WriteString("\nWorkers run ahead executing later MTXs while the decoupled try-commit\n")
	b.WriteString("and commit units validate and commit earlier ones (pipeline fill at left).\n")
	return b.String()
}
