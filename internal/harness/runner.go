package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dsmtx/internal/engine"
	"dsmtx/internal/expsched"
	"dsmtx/internal/platform"
	"dsmtx/internal/workloads"
)

// A Runner executes experiment points — the isolated, deterministic
// simulations behind every figure cell — through three layers: an
// in-process memo (points shared between figures run once per process),
// an optional content-addressed disk cache, and the simulations
// themselves. Prefetch fans a deduplicated point list across Workers
// host CPUs; because every point is independent and the figure methods
// then read the memo in their original sequential order, all rendered
// output is byte-identical to a Workers=1 run.
//
// The zero value is a sequential, uncached runner, which is exactly the
// pre-scheduler behaviour of the package-level Run functions.
type Runner struct {
	// Workers bounds concurrent simulations during Prefetch; <= 1 runs
	// sequentially.
	Workers int
	// Cache, when non-nil, persists point results keyed by their full
	// configuration and the simulator-source fingerprint.
	Cache *expsched.Cache
	// Progress, when non-nil, is called after each Prefetch point with
	// how it was satisfied ("run" or "cache"). Calls are serialized.
	Progress func(done, total int, spec PointSpec, source string)

	mu    sync.Mutex
	memo  map[PointSpec]pointRecord
	stats RunnerStats

	engOnce sync.Once
	eng     *engine.Engine
}

// engine lazily builds the job engine every simulation routes through.
// Admission is unbounded — Prefetch's worker pool already bounds the
// harness's concurrency — and the engine-level result cache stays off:
// the Runner layers its own memo and fingerprinted disk cache above.
func (r *Runner) engine() *engine.Engine {
	r.engOnce.Do(func() { r.eng = engine.New(engine.Config{}) })
	return r.eng
}

// RunnerStats counts how points were satisfied.
type RunnerStats struct {
	Computed  int // simulations actually run
	CacheHits int // points satisfied from the disk cache
	MemoHits  int // repeat requests satisfied from the in-process memo
}

// Stats returns a snapshot of the counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Point kinds. A PointSpec's Kind decides which fields are meaningful
// and which simulation it names.
const (
	pointParallel = "parallel" // one RunParallel: Bench, Paradigm, Cores, Scale, Seed, Rate, Knob
	pointSeq      = "seq"      // one sequential reference: Bench, Scale, Seed, Rate, Knob
	pointMicro    = "micro"    // one §5.3 bandwidth measurement: Knob = mechanism
)

// Named configuration variations, registered by name so cache keys can
// capture them (an opaque tune closure cannot be hashed). The vocabulary
// lives in internal/engine now; the harness aliases it.
const (
	KnobNone       = engine.KnobNone
	KnobQueueUnopt = engine.KnobQueueUnopt // Fig. 5b: flush every produce
	KnobManycore   = engine.KnobManycore   // §7: coherence-free manycore machine model
	KnobBigCluster = engine.KnobBigCluster // Figure S: 64 × 16 cores, same InfiniBand
)

// PointSpec is the complete identity of one experiment point: everything
// that can change its result, and nothing else. It doubles as the memo
// key (it is comparable) and, JSON-marshalled, as the cache key.
type PointSpec struct {
	Kind     string  `json:"kind"`
	Bench    string  `json:"bench"`
	Paradigm string  `json:"paradigm"`
	Cores    int     `json:"cores"`
	Scale    int     `json:"scale"`
	Seed     uint64  `json:"seed"`
	Rate     float64 `json:"rate"`
	Knob     string  `json:"knob"`
	// Faults is a canonical faults.Plan spec string (faults.Plan.Format),
	// empty for fault-free points. Canonical form matters: the spec is part
	// of the cache key, so two spellings of one plan must not split points.
	Faults string `json:"faults,omitempty"`
	// CommitShards is the commit-pipeline shard count; 0 or 1 (omitted from
	// the key) is the single commit unit, so pre-sharding cache entries stay
	// valid for every existing point.
	CommitShards int `json:"commit_shards,omitempty"`
}

// String renders a compact human label for progress reporting.
func (s PointSpec) String() string {
	switch s.Kind {
	case pointSeq:
		label := s.Bench + " seq"
		if s.Knob != "" {
			label += "/" + s.Knob
		}
		return label
	case pointMicro:
		return "micro/" + s.Knob
	default:
		label := fmt.Sprintf("%s %s@%d", s.Bench, s.Paradigm, s.Cores)
		if s.Knob != "" {
			label += "/" + s.Knob
		}
		if s.Faults != "" {
			label += "/" + s.Faults
		}
		if s.CommitShards > 1 {
			label += fmt.Sprintf("/cs%d", s.CommitShards)
		}
		return label
	}
}

// parSpec and seqSpec build normalized specs (Scale <= 0 means 1, as
// Input does), so equivalent configurations share one point.
func parSpec(bench string, in workloads.Input, paradigm workloads.Paradigm, cores int, knob string) PointSpec {
	return PointSpec{Kind: pointParallel, Bench: bench, Paradigm: paradigm.String(),
		Cores: cores, Scale: normScale(in.Scale), Seed: in.Seed, Rate: in.MisspecRate, Knob: knob}
}

func seqSpec(bench string, in workloads.Input, knob string) PointSpec {
	return PointSpec{Kind: pointSeq, Bench: bench,
		Scale: normScale(in.Scale), Seed: in.Seed, Rate: in.MisspecRate, Knob: knob}
}

func microSpec(mechanism string) PointSpec {
	return PointSpec{Kind: pointMicro, Knob: mechanism}
}

func normScale(scale int) int {
	if scale <= 0 {
		return 1
	}
	return scale
}

// pointRecord is a point's serializable result; exactly one field group
// is populated, per Kind.
type pointRecord struct {
	Result   *resultRecord     `json:"result,omitempty"`    // parallel
	SeqTime  platform.Duration `json:"seq_time,omitempty"`  // seq
	SeqCheck uint64            `json:"seq_check,omitempty"` // seq
	MBps     float64           `json:"mbps,omitempty"`      // micro
}

// resultRecord mirrors the cacheable subset of workloads.Result. Traced
// runs never pass through the Runner (a Tracer cannot be named in a
// PointSpec), so Stalls and Trace are always empty here and the
// reconstruction below is lossless.
type resultRecord struct {
	Elapsed   platform.Duration `json:"elapsed"`
	Checksum  uint64            `json:"checksum"`
	Committed uint64            `json:"committed"`
	Misspecs  uint64            `json:"misspecs"`
	ERM       platform.Duration `json:"erm"`
	FLQ       platform.Duration `json:"flq"`
	SEQ       platform.Duration `json:"seq"`
	RFP       platform.Duration `json:"rfp"`
	Bytes     uint64            `json:"bytes"`
	Events    uint64            `json:"events"`
	// Crash-resilience totals; zero for fault-free points.
	Crashes    uint64                `json:"crashes,omitempty"`
	Redispatch platform.Duration     `json:"redispatch,omitempty"`
	Traffic    platform.TrafficStats `json:"traffic"`
}

func recordFromResult(res workloads.Result) *resultRecord {
	return &resultRecord{
		Elapsed: res.Elapsed, Checksum: res.Checksum, Committed: res.Committed,
		Misspecs: res.Misspecs, ERM: res.ERM, FLQ: res.FLQ, SEQ: res.SEQ, RFP: res.RFP,
		Bytes: res.Bytes, Events: res.Events,
		Crashes: res.Crashes, Redispatch: res.Redispatch, Traffic: res.Traffic,
	}
}

func (rec *resultRecord) toResult() workloads.Result {
	return workloads.Result{
		Elapsed: rec.Elapsed, Checksum: rec.Checksum, Committed: rec.Committed,
		Misspecs: rec.Misspecs, ERM: rec.ERM, FLQ: rec.FLQ, SEQ: rec.SEQ, RFP: rec.RFP,
		Bytes: rec.Bytes, Events: rec.Events,
		Crashes: rec.Crashes, Redispatch: rec.Redispatch, Traffic: rec.Traffic,
	}
}

// resolve satisfies one point: memo, then disk cache, then simulation.
// It reports where the result came from ("memo", "cache", "run").
func (r *Runner) resolve(spec PointSpec) (pointRecord, string, error) {
	r.mu.Lock()
	if rec, ok := r.memo[spec]; ok {
		r.stats.MemoHits++
		r.mu.Unlock()
		return rec, "memo", nil
	}
	r.mu.Unlock()

	var rec pointRecord
	if r.Cache != nil {
		if ok, err := r.Cache.Get(spec, &rec); err != nil {
			return pointRecord{}, "", err
		} else if ok {
			r.remember(spec, rec, "cache")
			return rec, "cache", nil
		}
	}
	rec, err := r.compute(spec)
	if err != nil {
		return pointRecord{}, "", err
	}
	if r.Cache != nil {
		if err := r.Cache.Put(spec, rec); err != nil {
			return pointRecord{}, "", err
		}
	}
	r.remember(spec, rec, "run")
	return rec, "run", nil
}

func (r *Runner) remember(spec PointSpec, rec pointRecord, source string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.memo == nil {
		r.memo = make(map[PointSpec]pointRecord)
	}
	r.memo[spec] = rec
	if source == "cache" {
		r.stats.CacheHits++
	} else {
		r.stats.Computed++
	}
}

// compute runs the simulation a spec names: parallel and sequential
// points are engine submissions (a PointSpec is a strict subset of a
// JobSpec); the micro bandwidth measurement stays harness-local.
func (r *Runner) compute(spec PointSpec) (pointRecord, error) {
	switch spec.Kind {
	case pointParallel:
		res, err := r.engine().Submit(context.Background(), engine.JobSpec{
			Kind: engine.KindParallel, Bench: spec.Bench, Paradigm: spec.Paradigm,
			Cores: spec.Cores, Scale: spec.Scale, Seed: spec.Seed, Rate: spec.Rate,
			Knob: spec.Knob, Faults: spec.Faults, CommitShards: spec.CommitShards,
		})
		if err != nil {
			return pointRecord{}, err
		}
		return pointRecord{Result: recordFromResult(res.Result)}, nil
	case pointSeq:
		res, err := r.engine().Submit(context.Background(), engine.JobSpec{
			Kind: engine.KindSeq, Bench: spec.Bench, Scale: spec.Scale,
			Seed: spec.Seed, Rate: spec.Rate, Knob: spec.Knob,
		})
		if err != nil {
			return pointRecord{}, err
		}
		return pointRecord{SeqTime: res.SeqTime, SeqCheck: res.SeqCheck}, nil
	case pointMicro:
		mbps, err := microBandwidth(spec.Knob)
		if err != nil {
			return pointRecord{}, err
		}
		return pointRecord{MBps: mbps}, nil
	}
	return pointRecord{}, fmt.Errorf("harness: unknown point kind %q", spec.Kind)
}

// runParallel is the Runner-mediated replacement for a direct
// workloads.RunParallel call in the figure harnesses.
func (r *Runner) runParallel(b *workloads.Benchmark, in workloads.Input, paradigm workloads.Paradigm, cores int, knob string) (workloads.Result, error) {
	return r.runPoint(parSpec(b.Name, in, paradigm, cores, knob))
}

// runPoint resolves an arbitrary parallel point spec (Figure R builds specs
// directly, since fault plans are part of the point identity).
func (r *Runner) runPoint(spec PointSpec) (workloads.Result, error) {
	rec, _, err := r.resolve(spec)
	if err != nil {
		return workloads.Result{}, err
	}
	if rec.Result == nil {
		return workloads.Result{}, fmt.Errorf("harness: point %s resolved without a parallel result", spec)
	}
	return rec.Result.toResult(), nil
}

// runSequential is the Runner-mediated replacement for RunSequentialRef.
func (r *Runner) runSequential(b *workloads.Benchmark, in workloads.Input, knob string) (platform.Duration, uint64, error) {
	rec, _, err := r.resolve(seqSpec(b.Name, in, knob))
	if err != nil {
		return 0, 0, err
	}
	return rec.SeqTime, rec.SeqCheck, nil
}

// Prefetch resolves every given point, deduplicated, across the worker
// pool. Afterwards the figure methods replay against the warm memo in
// their original order, so rendering stays deterministic byte-for-byte.
func (r *Runner) Prefetch(specs []PointSpec) error {
	seen := make(map[PointSpec]bool, len(specs))
	uniq := specs[:0:0]
	for _, s := range specs {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	var done atomic.Int64
	var progressMu sync.Mutex
	_, err := expsched.Map(r.Workers, len(uniq), func(i int) (struct{}, error) {
		_, source, err := r.resolve(uniq[i])
		if err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", uniq[i], err)
		}
		if r.Progress != nil {
			n := int(done.Add(1))
			progressMu.Lock()
			r.Progress(n, len(uniq), uniq[i], source)
			progressMu.Unlock()
		}
		return struct{}{}, nil
	})
	return err
}

// simSourceDirs are the packages whose sources determine simulated
// results. The cache fingerprint covers exactly these: editing anything
// else (rendering, CLI, docs, tests) keeps cached points valid, while
// any kernel/runtime/workload change invalidates every entry.
var simSourceDirs = []string{
	"internal/cluster", "internal/core", "internal/engine", "internal/faults",
	"internal/mem", "internal/mpi", "internal/pipeline", "internal/platform",
	"internal/queue", "internal/sim", "internal/tlsrt", "internal/uva",
	"internal/workloads",
}

// recordSchema versions the pointRecord layout; bump it when the record
// changes shape so old entries cannot be misdecoded.
const recordSchema = "record-v2"

// ResultFingerprint computes the cache fingerprint for this checkout:
// the record schema plus a digest of the simulation sources (located by
// walking up from the working directory to go.mod). Outside a checkout
// it falls back to digesting the running executable — coarser, but still
// sound: a rebuild can only invalidate, never falsely hit.
func ResultFingerprint() (string, error) {
	if root, ok := moduleRoot(); ok {
		dirs := make([]string, len(simSourceDirs))
		for i, d := range simSourceDirs {
			dirs[i] = filepath.Join(root, filepath.FromSlash(d))
		}
		fp, err := expsched.SourceFingerprint(dirs...)
		if err != nil {
			return "", err
		}
		return recordSchema + ":src:" + fp, nil
	}
	fp, err := expsched.ExecutableFingerprint()
	if err != nil {
		return "", err
	}
	return recordSchema + ":exe:" + fp, nil
}

// moduleRoot finds the dsmtx checkout by walking up from the working
// directory until a go.mod appears.
func moduleRoot() (string, bool) {
	dir, err := os.Getwd()
	if err != nil {
		return "", false
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}
