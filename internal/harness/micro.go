package harness

import (
	"fmt"

	"dsmtx/internal/cluster"
	"dsmtx/internal/mpi"
	"dsmtx/internal/platform/vtime"
	"dsmtx/internal/queue"
	"dsmtx/internal/sim"
	"dsmtx/internal/stats"
)

// §5.3 micro-benchmark: sustained bandwidth streaming 8-byte values between
// two ranks on different nodes — through a DSMTX queue versus raw MPI
// primitives. The paper measures 480.7 MB/s for the queue against 13.1,
// 12.7 and 8.1 MB/s for MPI_Send, MPI_Bsend and MPI_Isend.

// MicroResult reports MB/s per mechanism.
type MicroResult struct {
	QueueMBps, SendMBps, BsendMBps, IsendMBps float64
}

const microWords = 50000

func microWorld(k *sim.Kernel) *mpi.World {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cfg.CoresPerNode = 1
	return mpi.NewWorld(vtime.New(k, cluster.New(k, cfg)), mpi.DefaultCost())
}

// RunMicroQueue measures all four mechanisms.
func RunMicroQueue() MicroResult {
	res, err := new(Runner).RunMicroQueue()
	if err != nil {
		panic(err) // unreachable without a cache: the measurements cannot fail
	}
	return res
}

// RunMicroQueue measures the four mechanisms through the runner's
// memo/cache; each is its own schedulable point.
func (r *Runner) RunMicroQueue() (MicroResult, error) {
	var out MicroResult
	for _, m := range microMechanisms {
		rec, _, err := r.resolve(microSpec(m))
		if err != nil {
			return out, err
		}
		switch m {
		case "queue":
			out.QueueMBps = rec.MBps
		case "send":
			out.SendMBps = rec.MBps
		case "bsend":
			out.BsendMBps = rec.MBps
		case "isend":
			out.IsendMBps = rec.MBps
		}
	}
	return out, nil
}

// microBandwidth runs one mechanism's measurement by name.
func microBandwidth(mechanism string) (float64, error) {
	switch mechanism {
	case "queue":
		return microQueueBandwidth(), nil
	case "send":
		return microMPIBandwidth(func(c *mpi.Comm) { c.Send(1, 1, nil, 8) }), nil
	case "bsend":
		return microMPIBandwidth(func(c *mpi.Comm) { c.Bsend(1, 1, nil, 8) }), nil
	case "isend":
		return microMPIBandwidth(func(c *mpi.Comm) { c.Isend(1, 1, nil, 8).Wait() }), nil
	}
	return 0, fmt.Errorf("harness: unknown micro mechanism %q", mechanism)
}

func microQueueBandwidth() float64 {
	k := sim.NewKernel()
	w := microWorld(k)
	q := queue.New[uint64](w, "micro", 0, 1, 100, queue.DefaultConfig(), nil)
	k.Spawn("rx", func(p *sim.Proc) {
		r := q.Receiver(w.Attach(1, p))
		for i := 0; i < microWords; i++ {
			r.Consume()
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		s := q.Sender(w.Attach(0, p))
		for i := uint64(0); i < microWords; i++ {
			s.Produce(i)
		}
		s.Flush()
	})
	if err := k.Run(0); err != nil {
		panic(err)
	}
	return float64(microWords*8) / k.Now().Seconds() / 1e6
}

func microMPIBandwidth(send func(*mpi.Comm)) float64 {
	k := sim.NewKernel()
	w := microWorld(k)
	k.Spawn("rx", func(p *sim.Proc) {
		c := w.Attach(1, p)
		for i := 0; i < microWords; i++ {
			c.Recv(0, 1)
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		c := w.Attach(0, p)
		for i := 0; i < microWords; i++ {
			send(c)
		}
	})
	if err := k.Run(0); err != nil {
		panic(err)
	}
	return float64(microWords*8) / k.Now().Seconds() / 1e6
}

// RenderMicro prints the comparison with the paper's reference numbers.
func RenderMicro(r MicroResult) string {
	tb := stats.Table{Header: []string{"mechanism", "MB/s (measured)", "MB/s (paper)"}}
	tb.AddRow("DSMTX queue", fmt.Sprintf("%.1f", r.QueueMBps), "480.7")
	tb.AddRow("MPI_Send", fmt.Sprintf("%.1f", r.SendMBps), "13.1")
	tb.AddRow("MPI_Bsend", fmt.Sprintf("%.1f", r.BsendMBps), "12.7")
	tb.AddRow("MPI_Isend", fmt.Sprintf("%.1f", r.IsendMBps), "8.1")
	return "§5.3 micro-benchmark: fine-grained communication bandwidth\n" + tb.String()
}
