package harness

import (
	"strings"
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/workloads"
)

// TestFigure3ExecutionModel checks the traced timeline exhibits the
// paper's Fig. 3(c) properties: decoupled units trail the workers, commits
// happen in MTX order, and workers run ahead of the commit frontier.
func TestFigure3ExecutionModel(t *testing.T) {
	r, err := RunFigure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) == 0 {
		t.Fatal("no trace recorded")
	}
	var commits, validates, subtxs []core.TraceEvent
	for _, e := range r.Events {
		switch e.Kind {
		case core.TraceCommit:
			commits = append(commits, e)
		case core.TraceValidate:
			validates = append(validates, e)
		case core.TraceSubTX:
			subtxs = append(subtxs, e)
		}
	}
	if len(commits) != 10 || len(validates) != 10 {
		t.Fatalf("commits=%d validates=%d, want 10 each", len(commits), len(validates))
	}
	// Commits are in MTX order and each follows its validation.
	valAt := map[uint64]core.TraceEvent{}
	for _, v := range validates {
		valAt[v.MTX] = v
	}
	for i, c := range commits {
		if c.MTX != uint64(i) {
			t.Fatalf("commit %d is MTX %d — out of order", i, c.MTX)
		}
		if c.End < valAt[c.MTX].End {
			t.Fatalf("MTX %d committed at %v before validation at %v", c.MTX, c.End, valAt[c.MTX].End)
		}
	}
	// Decoupling: some worker subTX for a later MTX finishes before an
	// earlier MTX commits ("Worker1 executing MTX_k while the commit unit
	// is still committing MTX_i, k > i").
	decoupled := false
	for _, s := range subtxs {
		for _, c := range commits {
			if s.MTX > c.MTX+1 && s.End < c.End {
				decoupled = true
			}
		}
	}
	if !decoupled {
		t.Fatal("no run-ahead observed: workers never outpaced the commit frontier")
	}
	out := RenderFigure3(r)
	for _, want := range []string{"Stage1", "Stage2", "TryCommit", "Commit unit"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestManycoreComparison: the §7 machine runs the same programs; lower
// latency helps the latency-exposed TLS parallelization more than the
// latency-tolerant pipeline.
func TestManycoreComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("manycore sweep")
	}
	b, err := workloads.ByName("456.hmmer")
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunManycore(b, workloads.DefaultInput())
	if err != nil {
		t.Fatal(err)
	}
	if row.ManycoreDSMTX < 1 || row.ManycoreTLS < 1 {
		t.Fatalf("manycore runs did not speed up: %+v", row)
	}
	// TLS's relative deficit shrinks on the low-latency mesh.
	clusterGap := row.ClusterDSMTX / row.ClusterTLS
	manycoreGap := row.ManycoreDSMTX / row.ManycoreTLS
	if manycoreGap >= clusterGap {
		t.Fatalf("TLS should close the gap on-die: cluster D/T=%.2f manycore D/T=%.2f",
			clusterGap, manycoreGap)
	}
	if !strings.Contains(RenderManycore([]ManycoreRow{row}), "456.hmmer") {
		t.Error("render missing row")
	}
}
