package harness

import (
	"math"
	"strings"
	"testing"

	"dsmtx/internal/stats"
	"dsmtx/internal/workloads"
)

// TestFigure1LatencyTolerance reproduces the paper's Fig. 1 numbers
// exactly: at latency 1 both schedules run 2 cycles/iteration; at latency 2
// DOACROSS degrades to 3 while DSWP stays at 2.
func TestFigure1LatencyTolerance(t *testing.T) {
	r1 := RunFigure1(1)
	if math.Abs(r1.DOACROSS-2) > 0.05 || math.Abs(r1.DSWP-2) > 0.05 {
		t.Fatalf("latency 1: DOACROSS %.2f DSWP %.2f, want 2.0 / 2.0", r1.DOACROSS, r1.DSWP)
	}
	r2 := RunFigure1(2)
	if math.Abs(r2.DOACROSS-3) > 0.05 {
		t.Fatalf("latency 2: DOACROSS %.2f, want 3.0", r2.DOACROSS)
	}
	if math.Abs(r2.DSWP-2) > 0.05 {
		t.Fatalf("latency 2: DSWP %.2f, want 2.0 (latency tolerant)", r2.DSWP)
	}
	out := RenderFigure1([]Fig1Result{r1, r2})
	if !strings.Contains(out, "DOACROSS") {
		t.Fatalf("render: %q", out)
	}
}

// TestFigure1LatencyScaling: DSWP stays at 2 cycles/iter across a latency
// sweep while DOACROSS grows linearly — the core motivation of the paper.
func TestFigure1LatencyScaling(t *testing.T) {
	for _, lat := range []int{1, 2, 4, 8, 16} {
		r := RunFigure1(lat)
		if math.Abs(r.DSWP-2) > 0.1 {
			t.Errorf("latency %d: DSWP %.2f, want ~2", lat, r.DSWP)
		}
		want := float64(1 + lat) // A;B then wait for the token
		if lat == 1 {
			want = 2
		}
		if math.Abs(r.DOACROSS-want) > 0.1 {
			t.Errorf("latency %d: DOACROSS %.2f, want ~%.0f", lat, r.DOACROSS, want)
		}
	}
}

// TestMicroQueueBandwidth reproduces §5.3: batched queues sustain well over
// an order of magnitude more bandwidth than per-datum MPI primitives, and
// Isend is the slowest fine-grained primitive.
func TestMicroQueueBandwidth(t *testing.T) {
	r := RunMicroQueue()
	if r.QueueMBps < 150 {
		t.Errorf("queue bandwidth %.1f MB/s, want hundreds (paper: 480.7)", r.QueueMBps)
	}
	for name, v := range map[string]float64{"Send": r.SendMBps, "Bsend": r.BsendMBps, "Isend": r.IsendMBps} {
		if v < 4 || v > 40 {
			t.Errorf("MPI_%s bandwidth %.1f MB/s, want low double digits", name, v)
		}
	}
	if r.QueueMBps < 15*r.SendMBps {
		t.Errorf("queue/send ratio %.1f, want >= 15 (paper: ~37)", r.QueueMBps/r.SendMBps)
	}
	if r.IsendMBps >= r.SendMBps {
		t.Errorf("Isend (%.1f) should be slower than Send (%.1f), as the paper measures", r.IsendMBps, r.SendMBps)
	}
	if !strings.Contains(RenderMicro(r), "480.7") {
		t.Error("render missing paper reference value")
	}
}

// TestTable2Render checks the Table 2 inventory renders all 11 rows with
// the paper's paradigm notation.
func TestTable2Render(t *testing.T) {
	out := RenderTable2()
	for _, want := range []string{
		"052.alvinn", "Spec-DOALL", "130.li", "DSWP+[Spec-DOALL,S]",
		"164.gzip", "Spec-DSWP+[S,DOALL,S]", "456.hmmer", "Spec-DSWP+[DOALL,S]",
		"CFS,MVS,MV", "swaptions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

// TestFigure4ShapeClaims runs a reduced Fig. 4 sweep and asserts the
// paper's qualitative results hold per benchmark.
func TestFigure4ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	cores := []int{8, 64, 128}
	in := workloads.DefaultInput()
	results := map[string]Fig4Series{}
	for _, b := range workloads.All() {
		s, err := RunFigure4(b, in, cores)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		results[b.Name] = s
	}
	at := func(name string, core int) (d, tls float64) {
		s := results[name]
		for i, c := range s.Cores {
			if c == core {
				return s.DSMTX[i], s.TLS[i]
			}
		}
		t.Fatalf("%s: no data at %d cores", name, core)
		return 0, 0
	}

	// 052.alvinn / swaptions: TLS and DSMTX parallelizations coincide.
	for _, name := range []string{"052.alvinn", "swaptions"} {
		d, tls := at(name, 128)
		if math.Abs(d-tls)/d > 0.02 {
			t.Errorf("%s: D %.1f vs TLS %.1f should coincide", name, d, tls)
		}
	}
	// 130.li, 464.h264ref: TLS limited by synchronization; DSMTX far ahead.
	for _, name := range []string{"130.li", "464.h264ref"} {
		d, tls := at(name, 128)
		if d < 4*tls {
			t.Errorf("%s: D %.1f should dominate TLS %.1f (paper: TLS sync-bound)", name, d, tls)
		}
	}
	// 164.gzip: bandwidth-bound — the lowest DSMTX plateau of the suite.
	gz, _ := at("164.gzip", 128)
	for name := range results {
		if name == "164.gzip" {
			continue
		}
		d, _ := at(name, 128)
		if d < gz {
			t.Errorf("%s (%.1f) below gzip (%.1f); gzip should be the bandwidth-bound floor", name, d, gz)
		}
	}
	// 256.bzip2: TLS slightly better than Spec-DSWP (input streaming).
	d, tls := at("256.bzip2", 128)
	if tls <= d {
		t.Errorf("256.bzip2: TLS %.1f should beat Spec-DSWP %.1f (paper §5.2)", tls, d)
	}
	// 456.hmmer, blackscholes: DSMTX keeps scaling where TLS flattens.
	for _, name := range []string{"456.hmmer", "blackscholes"} {
		d64, t64 := at(name, 64)
		d128, t128 := at(name, 128)
		if d128 <= d64 {
			t.Errorf("%s: DSMTX should still scale 64→128 (%.1f → %.1f)", name, d64, d128)
		}
		if t128 > t64*1.15 {
			t.Errorf("%s: TLS should flatten past 64 cores (%.1f → %.1f)", name, t64, t128)
		}
	}
	// 197.parser: bandwidth becomes the bottleneck past ~64 cores.
	p64, _ := at("197.parser", 64)
	p128, _ := at("197.parser", 128)
	if p128 >= p64 {
		t.Errorf("197.parser: should decline past its peak (%.1f → %.1f)", p64, p128)
	}

	// Panel (l): geomeans. The paper reports 49x (DSMTX best) vs 15x (TLS).
	var series []Fig4Series
	for _, b := range workloads.All() {
		series = append(series, results[b.Name])
	}
	g := Geomean(series)
	last := len(g.Cores) - 1
	if g.Best[last] < 20 {
		t.Errorf("DSMTX-best geomean at 128 = %.1f, want >> 1 (paper: 49)", g.Best[last])
	}
	if g.TLS[last] < 5 {
		t.Errorf("TLS geomean at 128 = %.1f, want >> 1 (paper: 15)", g.TLS[last])
	}
	if g.Best[last] < 2.2*g.TLS[last] {
		t.Errorf("DSMTX-best/TLS = %.1f/%.1f = %.2f, want >= 2.2 (paper: ~3.3)",
			g.Best[last], g.TLS[last], g.Best[last]/g.TLS[last])
	}
	t.Logf("geomean at 128 cores: DSMTX %.1fx, TLS %.1fx, best %.1fx (paper: 49x / 15x)",
		g.DSMTX[last], g.TLS[last], g.Best[last])
}

// TestFigure5aBandwidthRanking: gzip's bandwidth requirement towers over
// the others, and bandwidth grows with core count (Fig. 5a).
func TestFigure5aBandwidthRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth sweep")
	}
	in := workloads.DefaultInput()
	rows := map[string]Fig5aRow{}
	for _, name := range []string{"164.gzip", "256.bzip2", "blackscholes", "swaptions"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		row, err := RunFigure5a(b, in)
		if err != nil {
			t.Fatal(err)
		}
		rows[name] = row
	}
	// gzip transfers a similar volume to bzip2 but computes far less, so
	// its bandwidth requirement is much higher (the paper's explanation of
	// their different scalability).
	if rows["164.gzip"].KBps[0] < 1.5*rows["256.bzip2"].KBps[0] {
		t.Errorf("gzip bandwidth %.0f should clearly exceed bzip2 %.0f",
			rows["164.gzip"].KBps[0], rows["256.bzip2"].KBps[0])
	}
	// swaptions barely communicates.
	if rows["swaptions"].KBps[0] > rows["164.gzip"].KBps[0]/10 {
		t.Errorf("swaptions bandwidth %.0f should be tiny next to gzip %.0f",
			rows["swaptions"].KBps[0], rows["164.gzip"].KBps[0])
	}
	out := RenderFigure5a([]Fig5aRow{rows["164.gzip"]})
	if !strings.Contains(out, "164.gzip") {
		t.Error("render missing row")
	}
}

// TestFigure5bOptimizationEffect: batched communication beats per-datum
// MPI sends for benchmarks whose data is not already chunked (Fig. 5b).
func TestFigure5bOptimizationEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization sweep")
	}
	in := workloads.DefaultInput()
	// 197.parser forwards words individually: batching matters. 164.gzip
	// produces whole blocks: the paper notes it gains nothing.
	bParser, _ := workloads.ByName("197.parser")
	rowParser, err := RunFigure5b(bParser, in, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rowParser.Optimized < 1.5*rowParser.NonOptimized {
		t.Errorf("parser: optimized %.1f vs non %.1f, want >= 1.5x gain",
			rowParser.Optimized, rowParser.NonOptimized)
	}
	bGzip, _ := workloads.ByName("164.gzip")
	rowGzip, err := RunFigure5b(bGzip, in, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rowGzip.Optimized > 1.8*rowGzip.NonOptimized {
		t.Errorf("gzip: optimized %.1f vs non %.1f — already-chunked data should gain little",
			rowGzip.Optimized, rowGzip.NonOptimized)
	}
	out := RenderFigure5b([]Fig5bRow{rowParser, rowGzip})
	if !strings.Contains(out, "geomean") {
		t.Error("render missing geomean")
	}
}

// TestFigure6Recovery: with 0.1% misspeculation the run stays correct,
// recovery phases are measured, and RFP dominates the breakdown (Fig. 6).
func TestFigure6Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep")
	}
	in := workloads.DefaultInput()
	for _, name := range []string{"crc32", "blackscholes"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		row, err := RunFigure6(b, in, 0.01, 32)
		if err != nil {
			t.Fatal(err)
		}
		if row.Misspecs == 0 {
			t.Errorf("%s: no misspeculations at rate 1%%", name)
		}
		if row.MIS >= row.Clean {
			t.Errorf("%s: misspeculating run (%.1fx) should be slower than clean (%.1fx)",
				name, row.MIS, row.Clean)
		}
		if row.ERM <= 0 || row.SEQ <= 0 {
			t.Errorf("%s: recovery phases unmeasured: %+v", name, row)
		}
	}
}

// TestGeomeanHelper checks panel (l) math on synthetic series.
func TestGeomeanHelper(t *testing.T) {
	series := []Fig4Series{
		{Bench: "a", Cores: []int{8, 128}, DSMTX: []float64{2, 40}, TLS: []float64{2, 10}},
		{Bench: "b", Cores: []int{8, 128}, DSMTX: []float64{8, 10}, TLS: []float64{8, 40}},
	}
	g := Geomean(series)
	if math.Abs(g.DSMTX[1]-20) > 1e-9 { // sqrt(40*10)
		t.Fatalf("DSMTX geomean = %v", g.DSMTX[1])
	}
	if math.Abs(g.Best[1]-40) > 1e-9 { // sqrt(40*40)
		t.Fatalf("best geomean = %v", g.Best[1])
	}
	if got := stats.Geomean([]float64{40, 10}); math.Abs(got-20) > 1e-9 {
		t.Fatalf("stats.Geomean = %v", got)
	}
}
