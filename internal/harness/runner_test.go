package harness

import (
	"reflect"
	"testing"

	"dsmtx/internal/expsched"
	"dsmtx/internal/workloads"
)

// testPoints enumerates a small but representative sweep: Fig. 4, 5a,
// 5b, 6, the §7 manycore comparison and the §5.3 micro-benchmark, on the
// cheapest kernels.
func testPoints(in workloads.Input, t *testing.T) (specs []PointSpec, crc, bls *workloads.Benchmark) {
	t.Helper()
	var err error
	if crc, err = workloads.ByName("crc32"); err != nil {
		t.Fatal(err)
	}
	if bls, err = workloads.ByName("blackscholes"); err != nil {
		t.Fatal(err)
	}
	specs = append(specs, PointsFigure4(crc, in, []int{8, 16})...)
	specs = append(specs, PointsFigure4(bls, in, []int{8, 16})...)
	specs = append(specs, PointsFigure5a(crc, in)...)
	specs = append(specs, PointsFigure5b(crc, in, 16)...)
	specs = append(specs, PointsFigure6(crc, in, 0.01, 16)...)
	specs = append(specs, PointsManycore(crc, in)...)
	specs = append(specs, PointsMicro()...)
	return specs, crc, bls
}

// figures resolves every figure struct the test sweep renders, through
// the given runner.
type figures struct {
	Fig4Crc, Fig4Bls Fig4Series
	Fig5a            Fig5aRow
	Fig5b            Fig5bRow
	Fig6             Fig6Row
	Many             ManycoreRow
	Micro            MicroResult
}

func runFigures(t *testing.T, r *Runner, in workloads.Input, crc, bls *workloads.Benchmark) figures {
	t.Helper()
	var f figures
	var err error
	if f.Fig4Crc, err = r.RunFigure4(crc, in, []int{8, 16}); err != nil {
		t.Fatal(err)
	}
	if f.Fig4Bls, err = r.RunFigure4(bls, in, []int{8, 16}); err != nil {
		t.Fatal(err)
	}
	if f.Fig5a, err = r.RunFigure5a(crc, in); err != nil {
		t.Fatal(err)
	}
	if f.Fig5b, err = r.RunFigure5b(crc, in, 16); err != nil {
		t.Fatal(err)
	}
	if f.Fig6, err = r.RunFigure6(crc, in, 0.01, 16); err != nil {
		t.Fatal(err)
	}
	if f.Many, err = r.RunManycore(crc, in); err != nil {
		t.Fatal(err)
	}
	if f.Micro, err = r.RunMicroQueue(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestParallelMatchesSequential pins the DESIGN.md §6 invariant for the
// scheduler: a host-parallel prefetched sweep produces results equal
// field-for-field to a sequential run, so everything rendered from them
// is byte-identical.
func TestParallelMatchesSequential(t *testing.T) {
	in := workloads.DefaultInput()
	specs, crc, bls := testPoints(in, t)

	seq := &Runner{Workers: 1}
	want := runFigures(t, seq, in, crc, bls)

	par := &Runner{Workers: 8}
	if err := par.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	prefetched := par.Stats()
	got := runFigures(t, par, in, crc, bls)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel results differ from sequential:\n got %+v\nwant %+v", got, want)
	}
	if gr, wr := RenderFigure4(got.Fig4Crc), RenderFigure4(want.Fig4Crc); gr != wr {
		t.Errorf("rendered output differs:\n%s\nvs\n%s", gr, wr)
	}
	// The enumerators must name every point the figure methods resolve:
	// replaying against the warm memo may not compute anything new.
	after := par.Stats()
	if after.Computed != prefetched.Computed {
		t.Errorf("figure methods computed %d extra points after Prefetch — enumerators incomplete",
			after.Computed-prefetched.Computed)
	}
	if prefetched.CacheHits != 0 {
		t.Errorf("no cache configured but CacheHits = %d", prefetched.CacheHits)
	}
}

// TestWarmCacheRerun: a second runner over the same cache directory
// resolves the whole sweep from disk — zero simulations — and produces
// identical figures.
func TestWarmCacheRerun(t *testing.T) {
	in := workloads.DefaultInput()
	specs, crc, bls := testPoints(in, t)
	dir := t.TempDir()
	cache, err := expsched.OpenCache(dir, "test-fingerprint")
	if err != nil {
		t.Fatal(err)
	}

	cold := &Runner{Workers: 8, Cache: cache}
	if err := cold.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	want := runFigures(t, cold, in, crc, bls)
	if s := cold.Stats(); s.CacheHits != 0 || s.Computed == 0 {
		t.Fatalf("cold run stats: %+v", s)
	}

	warmCache, err := expsched.OpenCache(dir, "test-fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	warm := &Runner{Workers: 8, Cache: warmCache}
	if err := warm.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	got := runFigures(t, warm, in, crc, bls)
	s := warm.Stats()
	if s.Computed != 0 {
		t.Errorf("warm rerun computed %d points, want 0 (100%% cache hits)", s.Computed)
	}
	if s.CacheHits != cold.Stats().Computed {
		t.Errorf("warm rerun cache hits = %d, want %d", s.CacheHits, cold.Stats().Computed)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cached results differ:\n got %+v\nwant %+v", got, want)
	}

	// A fingerprint change (simulated code edit) must invalidate everything.
	staleCache, err := expsched.OpenCache(dir, "other-fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	stale := &Runner{Workers: 8, Cache: staleCache}
	if _, _, err := stale.resolve(specs[0]); err != nil {
		t.Fatal(err)
	}
	if s := stale.Stats(); s.CacheHits != 0 || s.Computed != 1 {
		t.Errorf("fingerprint change: stats %+v, want a recompute", s)
	}
}

// TestPrefetchProgress: the callback sees every deduplicated point
// exactly once with a monotonically complete done count.
func TestPrefetchProgress(t *testing.T) {
	in := workloads.DefaultInput()
	crc, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	specs := PointsFigure5b(crc, in, 8)
	specs = append(specs, specs...) // duplicates must collapse
	var calls int
	seen := map[PointSpec]int{}
	r := &Runner{Workers: 4, Progress: func(done, total int, spec PointSpec, source string) {
		calls++
		seen[spec]++
		if total != 3 || done < 1 || done > total {
			t.Errorf("progress done=%d total=%d", done, total)
		}
		if source != "run" {
			t.Errorf("source = %q, want run", source)
		}
	}}
	if err := r.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(seen) != 3 {
		t.Errorf("progress calls = %d over %d specs, want 3 unique", calls, len(seen))
	}
}

// TestRunnerStatsMemo: repeat requests inside one process hit the memo,
// not the simulator.
func TestRunnerStatsMemo(t *testing.T) {
	in := workloads.DefaultInput()
	crc, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	r := new(Runner)
	if _, _, err := r.runSequential(crc, in, KnobNone); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.runSequential(crc, in, KnobNone); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Computed != 1 || s.MemoHits != 1 {
		t.Errorf("stats = %+v, want 1 computed + 1 memo hit", s)
	}
}
