package harness

import "dsmtx/internal/workloads"

// Point enumerators: each figure's Run method decomposes into a flat
// list of independent experiment points. A driver collects the lists for
// everything it is about to render, hands the union to Runner.Prefetch
// (which deduplicates — the sequential references are shared by Figs. 4,
// 5b and 6), and then calls the Run methods, which replay against the
// warm memo in their original order. Each enumerator must name exactly
// the points its Run method resolves.

// PointsFigure4 lists one benchmark's Fig. 4 panel: the sequential
// reference plus a DSMTX and a TLS run per core count.
func PointsFigure4(b *workloads.Benchmark, in workloads.Input, cores []int) []PointSpec {
	specs := []PointSpec{seqSpec(b.Name, in, KnobNone)}
	for _, c := range cores {
		c = clampCores(b, in, c)
		specs = append(specs,
			parSpec(b.Name, in, workloads.DSMTX, c, KnobNone),
			parSpec(b.Name, in, workloads.TLS, c, KnobNone))
	}
	return specs
}

// PointsFigure5a lists the four consecutive-core bandwidth runs.
func PointsFigure5a(b *workloads.Benchmark, in workloads.Input) []PointSpec {
	base := minCores(b.NewDSMTX(in, 0))
	var specs []PointSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, parSpec(b.Name, in, workloads.DSMTX, base+i, KnobNone))
	}
	return specs
}

// PointsFigure5b lists the communication-optimization comparison at one
// core count: sequential reference, batched run, flush-every-produce run.
func PointsFigure5b(b *workloads.Benchmark, in workloads.Input, cores int) []PointSpec {
	return []PointSpec{
		seqSpec(b.Name, in, KnobNone),
		parSpec(b.Name, in, workloads.DSMTX, cores, KnobNone),
		parSpec(b.Name, in, workloads.DSMTX, cores, KnobQueueUnopt),
	}
}

// PointsFigure6 lists one benchmark/core-count recovery cell: clean and
// misspeculating variants of both the reference and the parallel run.
func PointsFigure6(b *workloads.Benchmark, in workloads.Input, rate float64, cores int) []PointSpec {
	mis := in
	mis.MisspecRate = rate
	return []PointSpec{
		seqSpec(b.Name, in, KnobNone),
		parSpec(b.Name, in, workloads.DSMTX, cores, KnobNone),
		seqSpec(b.Name, mis, KnobNone),
		parSpec(b.Name, mis, workloads.DSMTX, cores, KnobNone),
	}
}

// PointsManycore lists one benchmark's §7 comparison: both machine
// models, each with its own sequential baseline and both paradigms at 48
// cores.
func PointsManycore(b *workloads.Benchmark, in workloads.Input) []PointSpec {
	var specs []PointSpec
	for _, knob := range []string{KnobNone, KnobManycore} {
		specs = append(specs,
			seqSpec(b.Name, in, knob),
			parSpec(b.Name, in, workloads.DSMTX, 48, knob),
			parSpec(b.Name, in, workloads.TLS, 48, knob))
	}
	return specs
}

// microMechanisms are the §5.3 bandwidth measurements, in render order.
var microMechanisms = []string{"queue", "send", "bsend", "isend"}

// PointsMicro lists the §5.3 queue-vs-MPI measurements.
func PointsMicro() []PointSpec {
	var specs []PointSpec
	for _, m := range microMechanisms {
		specs = append(specs, microSpec(m))
	}
	return specs
}

// clampCores raises a requested core count to the plan's minimum, the
// same adjustment RunFigure4 applies before running.
func clampCores(b *workloads.Benchmark, in workloads.Input, c int) int {
	if minc := minCores(b.NewDSMTX(in, 0)); c < minc {
		return minc
	}
	return c
}
